(* cmvrp_race — a typedtree-level escape/confinement analysis proving the
   tree's domain-safety invariants (docs/RACES.md).

   Where cmvrp_lint (tools/lint) pattern-matches parsetrees, this pass
   consumes the [.cmt] artifacts that [dune build @check] leaves behind,
   so it sees resolved paths and inferred types.  It

   1. builds an intra-library call graph (top-level functions, local
      functions, and the closures handed to parallel entry points),
   2. runs an escape analysis classifying every mutable root — refs,
      arrays, [Hashtbl]/[Queue]/[Buffer]/[Stack] values, records with
      mutable fields — as domain-confined, atomic, mutex-guarded,
      shared-read or shared-unguarded, by tracking which values are
      reachable from closures passed to [Pool.map]/[Pool.init]/
      [Pool.both]/[Pool.run_tasks]/[Domain.spawn], and
   3. reports shared-unguarded roots as blocking findings carrying the
      capture path (root -> parallel entry -> call chain -> access).

   Soundness limits (deliberate, documented in docs/RACES.md): aliasing
   across function boundaries is summarized by a merged-parameter
   effect, not tracked per position; first-class functions that are
   stored in data structures rather than called or spawned are
   attributed to their lexical context; heap escape (a root stowed in
   another structure and mutated through the alias) is invisible.
   Findings can be waived at the definition or access line with a
   "race: allow <reason>" comment, or suppressed tree-wide by a
   committed baseline file of [file:root] fingerprints. *)

(* ------------------------------------------------------------------ *)
(* Small helpers.                                                      *)
(* ------------------------------------------------------------------ *)

let strip_wrap name =
  (* "Race_fixtures__Leaked_ref" -> "Leaked_ref": dune's wrapped-library
     mangling uses a double underscore. *)
  let n = String.length name in
  let rec last_sep i best =
    if i + 2 > n then best
    else if name.[i] = '_' && name.[i + 1] = '_' then last_sep (i + 1) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some j when j < n -> String.sub name j (n - j)
  | _ -> name

let canon_path p =
  let comps =
    String.split_on_char '.' (Path.name p)
    |> List.filter (fun c -> c <> "")
    |> List.map strip_wrap
  in
  let comps = match comps with "Stdlib" :: (_ :: _ as rest) -> rest | c -> c in
  String.concat "." comps

type loc_info = { lf : string; ll : int; lc : int; lcnum : int }

let loc_info (loc : Location.t) =
  let p = loc.loc_start in
  {
    lf = p.Lexing.pos_fname;
    ll = p.Lexing.pos_lnum;
    lc = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    lcnum = p.Lexing.pos_cnum;
  }

type extent = { xf : string; xs : int; xe : int }

let extent_of (loc : Location.t) =
  {
    xf = loc.loc_start.Lexing.pos_fname;
    xs = loc.loc_start.Lexing.pos_cnum;
    xe = loc.loc_end.Lexing.pos_cnum;
  }

let inside (l : loc_info) (x : extent) =
  l.lf = x.xf && l.lcnum >= x.xs && l.lcnum < x.xe

(* ------------------------------------------------------------------ *)
(* Type mutability classes.                                            *)
(* ------------------------------------------------------------------ *)

type tclass =
  | Imm  (* no shared mutable state reachable *)
  | Sync  (* Mutex/Condition/Semaphore — synchronization devices *)
  | Atom  (* Atomic.t — safe to share *)
  | Mut  (* refs, arrays, tables, mutable records, ... *)

let tclass_rank = function Imm -> 0 | Sync -> 1 | Atom -> 2 | Mut -> 3
let tclass_max a b = if tclass_rank a >= tclass_rank b then a else b

(* [None] means "immutable spine, class of the type arguments". *)
let builtin_class = function
  | "ref" | "array" | "floatarray" | "Bytes.t" | "bytes" | "Hashtbl.t"
  | "Queue.t" | "Stack.t" | "Buffer.t" | "Dynarray.t" ->
      Some Mut
  | "Atomic.t" -> Some Atom
  | "Mutex.t" | "Condition.t" | "Semaphore.Counting.t" | "Semaphore.Binary.t"
  | "Domain.t" ->
      Some Sync
  | "list" | "option" | "result" | "Either.t" | "Seq.t" | "Lazy.t" -> None
  | _ -> Some Imm

type decl_tables = {
  decls : (string, Types.type_declaration) Hashtbl.t;
  memo : (string, tclass) Hashtbl.t;
}

let rec class_of_type tbl (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Ttuple ts ->
      List.fold_left (fun a t -> tclass_max a (class_of_type tbl t)) Imm ts
  | Tpoly (t, _) -> class_of_type tbl t
  | Tconstr (p, args, _) -> (
      let name = canon_path p in
      match Hashtbl.find_opt tbl.memo name with
      | Some c -> c
      | None -> (
          match builtin_class name with
          | Some Imm when Hashtbl.mem tbl.decls name -> class_of_decl tbl name args
          | Some c -> c
          | None ->
              List.fold_left
                (fun a t -> tclass_max a (class_of_type tbl t))
                Imm args))
  | _ -> Imm

and class_of_decl tbl name args =
  Hashtbl.replace tbl.memo name Imm (* recursion guard *);
  let decl = Hashtbl.find tbl.decls name in
  let mutable_labels lds =
    List.exists
      (fun (l : Types.label_declaration) -> l.ld_mutable = Asttypes.Mutable)
      lds
  in
  let c =
    match decl.Types.type_kind with
    | Types.Type_record (labels, _) ->
        if mutable_labels labels then Mut
        else
          List.fold_left
            (fun acc (ld : Types.label_declaration) ->
              tclass_max acc (class_of_type tbl ld.ld_type))
            Imm labels
    | Types.Type_variant (constrs, _) ->
        List.fold_left
          (fun acc (cd : Types.constructor_declaration) ->
            match cd.cd_args with
            | Types.Cstr_tuple ts ->
                List.fold_left
                  (fun a t -> tclass_max a (class_of_type tbl t))
                  acc ts
            | Types.Cstr_record lds ->
                if mutable_labels lds then Mut
                else
                  List.fold_left
                    (fun a (l : Types.label_declaration) ->
                      tclass_max a (class_of_type tbl l.ld_type))
                    acc lds)
          Imm constrs
    | _ -> (
        match decl.Types.type_manifest with
        | Some t -> class_of_type tbl t
        | None -> Imm)
  in
  let c =
    if c = Mut then Mut
    else List.fold_left (fun a t -> tclass_max a (class_of_type tbl t)) c args
  in
  Hashtbl.replace tbl.memo name c;
  c

(* ------------------------------------------------------------------ *)
(* Model: owners, targets, events.                                     *)
(* ------------------------------------------------------------------ *)

type okey =
  | O_init of string  (* module initialization code *)
  | O_fn of string  (* top-level function "Mod.f" *)
  | O_localfn of string * string  (* local function: module, unique name *)
  | O_closure of string * int  (* closure at a parallel entry: file, start *)

type owner = {
  ok : okey;
  o_disp : string;
  o_loc : loc_info;
  o_ext : extent;
  mutable o_locks : bool;  (* body mentions Mutex.lock/protect directly *)
}

type raw_target =
  | T_local of string * string * string  (* module, unique name, name *)
  | T_path of string  (* canonical dotted path *)

type kind = Read | Write

type access = {
  a_target : raw_target;
  a_kind : kind;
  a_owner : int;
  a_loc : loc_info;
  a_class : tclass;
}

type call = {
  c_target : raw_target;
  c_owner : int;
  c_loc : loc_info;
  c_roots : (raw_target * tclass) list;
      (* argument expressions that are root paths, with their classes *)
  c_lambdas : extent list;  (* syntactic-function arguments, for guards *)
}

type spawn_target = S_owner of raw_target | S_closure of int

type spawn = {
  s_entry : string;
  s_owner : int;
  s_loc : loc_info;
  s_target : spawn_target;
}

type minfo = {
  mi_top_fn : (string, string) Hashtbl.t;
  mi_top_root : (string, string) Hashtbl.t;
}

type groot = { gr_loc : loc_info; gr_class : tclass }

type state = {
  tt : decl_tables;
  mutable owners : owner array;
  mutable n_owners : int;
  owner_idx : (okey, int) Hashtbl.t;
  mutable accesses : access list;
  mutable calls : call list;
  mutable spawns : spawn list;
  glob_fn_owner : (string, int) Hashtbl.t;
  localfn_owner : (string * string, int) Hashtbl.t;
  glob_roots : (string, groot) Hashtbl.t;
  local_defs : (string * string, string * loc_info) Hashtbl.t;
  modinfo : (string, minfo) Hashtbl.t;
  param_of : (string * string, int) Hashtbl.t;
      (* param ident -> owner index of the function binding it *)
}

let new_state () =
  {
    tt = { decls = Hashtbl.create 256; memo = Hashtbl.create 256 };
    owners = [||];
    n_owners = 0;
    owner_idx = Hashtbl.create 256;
    accesses = [];
    calls = [];
    spawns = [];
    glob_fn_owner = Hashtbl.create 256;
    localfn_owner = Hashtbl.create 256;
    glob_roots = Hashtbl.create 64;
    local_defs = Hashtbl.create 1024;
    modinfo = Hashtbl.create 64;
    param_of = Hashtbl.create 512;
  }

let no_loc = { lf = ""; ll = 0; lc = 0; lcnum = 0 }
let no_ext = { xf = ""; xs = 0; xe = 0 }

let add_owner st o =
  match Hashtbl.find_opt st.owner_idx o.ok with
  | Some i -> i
  | None ->
      let i = st.n_owners in
      if i >= Array.length st.owners then begin
        let bigger = Array.make (max 64 (2 * Array.length st.owners)) o in
        Array.blit st.owners 0 bigger 0 i;
        st.owners <- bigger
      end;
      st.owners.(i) <- o;
      st.n_owners <- i + 1;
      Hashtbl.replace st.owner_idx o.ok i;
      i

(* Parallel entry points: the only constructs that move a closure onto
   another domain.  [Pool.run_tasks] is Pool's internal fan-out; it is
   in the set so pool.ml itself is analyzed under the same rules. *)
let parallel_entries =
  [ "Pool.map"; "Pool.init"; "Pool.both"; "Pool.run_tasks"; "Domain.spawn" ]

(* Stdlib calls with a known write effect on an argument position. *)
let mutator_writes = function
  | ":=" | "incr" | "decr" -> [ 0 ]
  | "Hashtbl.add" | "Hashtbl.replace" | "Hashtbl.remove" | "Hashtbl.reset"
  | "Hashtbl.clear" | "Hashtbl.filter_map_inplace" | "Hashtbl.add_seq"
  | "Hashtbl.replace_seq" ->
      [ 0 ]
  | "Queue.push" | "Queue.add" | "Queue.pop" | "Queue.take" | "Queue.take_opt"
  | "Queue.pop_opt" | "Queue.clear" | "Queue.add_seq" ->
      [ 0 ]
  | "Queue.transfer" -> [ 0; 1 ]
  | "Buffer.add_char" | "Buffer.add_string" | "Buffer.add_bytes"
  | "Buffer.add_substring" | "Buffer.add_subbytes" | "Buffer.add_buffer"
  | "Buffer.add_channel" | "Buffer.clear" | "Buffer.reset" | "Buffer.truncate"
    ->
      [ 0 ]
  | "Stack.pop" | "Stack.pop_opt" | "Stack.clear" -> [ 0 ]
  | "Stack.push" -> [ 1 ]
  | "Array.set" | "Array.unsafe_set" | "Array.fill" | "Float.Array.set"
  | "Float.Array.unsafe_set" | "Float.Array.fill" | "Bytes.set"
  | "Bytes.unsafe_set" | "Bytes.fill" ->
      [ 0 ]
  | "Array.blit" | "Bytes.blit" | "Bytes.blit_string" | "Float.Array.blit" ->
      [ 2 ]
  | "Array.sort" | "Array.fast_sort" | "Array.stable_sort" -> [ 1 ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Pass 1: per-module registries (bindings, type decls, def sites).    *)
(* ------------------------------------------------------------------ *)

let is_function_binding (vb : Typedtree.value_binding) =
  Race_compat.function_param_idents vb.vb_expr <> None
  ||
  match Types.get_desc vb.vb_expr.exp_type with
  | Types.Tarrow _ -> true
  | _ -> false

let register_module st modname (str : Typedtree.structure) =
  let mi = { mi_top_fn = Hashtbl.create 32; mi_top_root = Hashtbl.create 32 } in
  Hashtbl.replace st.modinfo modname mi;
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match Race_compat.pat_vars vb.vb_pat with
              | [ (id, loc) ] ->
                  let name = modname ^ "." ^ Ident.name id in
                  if is_function_binding vb then
                    Hashtbl.replace mi.mi_top_fn (Ident.unique_name id) name
                  else begin
                    Hashtbl.replace mi.mi_top_root (Ident.unique_name id) name;
                    Hashtbl.replace st.glob_roots name
                      {
                        gr_loc = loc_info loc;
                        gr_class = class_of_type st.tt vb.vb_expr.exp_type;
                      }
                  end
              | _ -> ())
            vbs
      | Tstr_type (_, decls) ->
          List.iter
            (fun (d : Typedtree.type_declaration) ->
              Hashtbl.replace st.tt.decls
                (modname ^ "." ^ d.typ_name.txt)
                d.typ_type)
            decls
      | _ -> ())
    str.str_items;
  List.iter
    (fun (id, loc) ->
      Hashtbl.replace st.local_defs
        (modname, Ident.unique_name id)
        (Ident.name id, loc_info loc))
    (Race_compat.structure_pattern_vars str)

let preregister_fn_owners st modname =
  (* Top-level functions become owners before the walk so that forward
     and cross-module references resolve as call edges.  Local
     functions become known as their bindings are walked; an earlier
     mention degrades to a (dropped) function-typed access. *)
  let mi = Hashtbl.find st.modinfo modname in
  Hashtbl.iter
    (fun _stamp name ->
      if not (Hashtbl.mem st.glob_fn_owner name) then begin
        let oi =
          add_owner st
            {
              ok = O_fn name;
              o_disp = name;
              o_loc = no_loc;
              o_ext = no_ext;
              o_locks = false;
            }
        in
        Hashtbl.replace st.glob_fn_owner name oi
      end)
    mi.mi_top_fn

(* ------------------------------------------------------------------ *)
(* Pass 2: the event-collecting traversal.                             *)
(* ------------------------------------------------------------------ *)

type walk_ctx = { st : state; modname : string; mutable cur : int }

let resolve_head_name w (p : Path.t) =
  (* Canonical name used for entry/mutator/guard lookups: local idents
     of top-level functions resolve through the module registry. *)
  match p with
  | Path.Pident id -> (
      let mi = Hashtbl.find w.st.modinfo w.modname in
      match Hashtbl.find_opt mi.mi_top_fn (Ident.unique_name id) with
      | Some n -> n
      | None -> (
          match Hashtbl.find_opt mi.mi_top_root (Ident.unique_name id) with
          | Some n -> n
          | None -> Ident.name id))
  | _ -> canon_path p

let raw_of_path w (p : Path.t) =
  match p with
  | Path.Pident id -> T_local (w.modname, Ident.unique_name id, Ident.name id)
  | _ -> T_path (canon_path p)

let rec base_root_of (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (b, _, _) -> base_root_of b
  | _ -> None

let is_arrow (e : Typedtree.expression) =
  match Types.get_desc e.exp_type with Types.Tarrow _ -> true | _ -> false

let record_access w target k loc cls =
  w.st.accesses <-
    { a_target = target; a_kind = k; a_owner = w.cur; a_loc = loc_info loc; a_class = cls }
    :: w.st.accesses

let record_call w target loc roots lambdas =
  w.st.calls <-
    { c_target = target; c_owner = w.cur; c_loc = loc_info loc; c_roots = roots; c_lambdas = lambdas }
    :: w.st.calls

(* A function-valued ident occurrence is an edge in the call graph (it
   may be invoked wherever it flows); a non-function ident is a read. *)
let record_use w (p : Path.t) (e : Typedtree.expression) =
  let target = raw_of_path w p in
  let is_fn =
    match target with
    | T_local (m, s, _) ->
        Hashtbl.mem w.st.localfn_owner (m, s)
        ||
        let mi = Hashtbl.find w.st.modinfo w.modname in
        Hashtbl.mem mi.mi_top_fn s
    | T_path n -> Hashtbl.mem w.st.glob_fn_owner n
  in
  if is_fn then record_call w target e.exp_loc [] []
  else if is_arrow e then () (* unknown external function value *)
  else record_access w target Read e.exp_loc (class_of_type w.st.tt e.exp_type)

let arrow_idents_in w (e : Typedtree.expression) =
  (* Conservative spawn-target scan for non-lambda arguments of
     parallel entries: any function-valued identifier inside may end up
     invoked on another domain. *)
  let acc = ref [] in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub x ->
          (match x.Typedtree.exp_desc with
          | Texp_ident (p, _, _) when is_arrow x -> acc := raw_of_path w p :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.expr sub x);
    }
  in
  iter.expr iter e;
  !acc

let walk_iterator w =
  let open Tast_iterator in
  let set_extent oi (vb : Typedtree.value_binding) =
    (* Pre-registered top-level owners have empty extents: fill in. *)
    let o = w.st.owners.(oi) in
    w.st.owners.(oi) <-
      {
        o with
        o_loc = loc_info vb.vb_expr.exp_loc;
        o_ext = extent_of vb.vb_expr.exp_loc;
      }
  in
  let rec it =
    {
      default_iterator with
      expr = (fun _sub e -> expr e);
      value_binding = (fun _sub vb -> value_binding vb);
    }
  and expr (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> record_use w p e
    | Texp_setfield (b, _, _, v) ->
        (match base_root_of b with
        | Some p ->
            record_access w (raw_of_path w p) Write e.exp_loc
              (class_of_type w.st.tt b.exp_type)
        | None -> ());
        it.expr it b;
        it.expr it v
    | Texp_apply ({ exp_desc = Texp_ident (hp, _, _); exp_loc = hloc; _ }, args)
      ->
        let head = resolve_head_name w hp in
        let plain_args = List.filter_map (fun (_, a) -> a) args in
        if List.mem head parallel_entries then
          List.iter
            (fun (a : Typedtree.expression) ->
              if Race_compat.function_param_idents a <> None then begin
                (* A literal closure crossing onto other domains: give
                   it an owner and walk its body in that context. *)
                let okey =
                  O_closure
                    (a.exp_loc.loc_start.pos_fname, a.exp_loc.loc_start.pos_cnum)
                in
                let ci =
                  add_owner w.st
                    {
                      ok = okey;
                      o_disp = "closure";
                      o_loc = loc_info a.exp_loc;
                      o_ext = extent_of a.exp_loc;
                      o_locks = false;
                    }
                in
                w.st.spawns <-
                  { s_entry = head; s_owner = w.cur; s_loc = loc_info e.exp_loc; s_target = S_closure ci }
                  :: w.st.spawns;
                let saved = w.cur in
                w.cur <- ci;
                it.expr it a;
                w.cur <- saved
              end
              else begin
                List.iter
                  (fun t ->
                    w.st.spawns <-
                      { s_entry = head; s_owner = w.cur; s_loc = loc_info e.exp_loc; s_target = S_owner t }
                      :: w.st.spawns)
                  (arrow_idents_in w a);
                it.expr it a
              end)
            plain_args
        else begin
          if head = "Mutex.lock" || head = "Mutex.protect" then
            w.st.owners.(w.cur).o_locks <- true;
          List.iteri
            (fun i (a : Typedtree.expression) ->
              if List.mem i (mutator_writes head) then
                match base_root_of a with
                | Some p ->
                    record_access w (raw_of_path w p) Write a.exp_loc
                      (class_of_type w.st.tt a.exp_type)
                | None -> ())
            plain_args;
          let target = raw_of_path w hp in
          let roots =
            List.filter_map
              (fun (a : Typedtree.expression) ->
                match base_root_of a with
                | Some p ->
                    Some (raw_of_path w p, class_of_type w.st.tt a.exp_type)
                | None -> None)
              plain_args
          in
          let lambdas =
            List.filter_map
              (fun (a : Typedtree.expression) ->
                if Race_compat.function_param_idents a <> None then
                  Some (extent_of a.exp_loc)
                else None)
              plain_args
          in
          record_call w target hloc roots lambdas;
          List.iter (fun a -> it.expr it a) plain_args
        end
    | _ -> default_iterator.expr it e
  and value_binding (vb : Typedtree.value_binding) =
    if is_function_binding vb then begin
      let okey, disp =
        match Race_compat.pat_vars vb.vb_pat with
        | [ (id, _) ] -> (
            let mi = Hashtbl.find w.st.modinfo w.modname in
            match Hashtbl.find_opt mi.mi_top_fn (Ident.unique_name id) with
            | Some n -> (O_fn n, n)
            | None ->
                ( O_localfn (w.modname, Ident.unique_name id),
                  w.modname ^ "." ^ Ident.name id ^ " (local)" ))
        | _ ->
            ( O_closure
                ( vb.vb_expr.exp_loc.loc_start.pos_fname,
                  vb.vb_expr.exp_loc.loc_start.pos_cnum ),
              "fn" )
      in
      let oi =
        add_owner w.st
          {
            ok = okey;
            o_disp = disp;
            o_loc = loc_info vb.vb_expr.exp_loc;
            o_ext = extent_of vb.vb_expr.exp_loc;
            o_locks = false;
          }
      in
      (match okey with
      | O_fn n ->
          Hashtbl.replace w.st.glob_fn_owner n oi;
          set_extent oi vb
      | O_localfn (m, s) ->
          Hashtbl.replace w.st.localfn_owner (m, s) oi;
          set_extent oi vb
      | _ -> ());
      (match Race_compat.function_param_idents vb.vb_expr with
      | Some ids ->
          List.iter
            (fun id -> Hashtbl.replace w.st.param_of (w.modname, Ident.unique_name id) oi)
            ids
      | None -> ());
      let saved = w.cur in
      w.cur <- oi;
      it.expr it vb.vb_expr;
      w.cur <- saved
    end
    else it.expr it vb.vb_expr
  in
  it

(* ------------------------------------------------------------------ *)
(* Analysis proper.                                                    *)
(* ------------------------------------------------------------------ *)

type root_id = R_localr of string * string | R_globalr of string

let resolve_fn_owner st = function
  | T_local (m, s, _) -> (
      match Hashtbl.find_opt st.localfn_owner (m, s) with
      | Some i -> Some i
      | None -> (
          match Hashtbl.find_opt st.modinfo m with
          | None -> None
          | Some mi -> (
              match Hashtbl.find_opt mi.mi_top_fn s with
              | Some n -> Hashtbl.find_opt st.glob_fn_owner n
              | None -> None)))
  | T_path n -> Hashtbl.find_opt st.glob_fn_owner n

(* A raw target that denotes mutable *data* (not a function). *)
let resolve_root st = function
  | T_local (m, s, n) -> (
      match Hashtbl.find_opt st.modinfo m with
      | None -> Some (R_localr (m, s), n)
      | Some mi ->
          if Hashtbl.mem mi.mi_top_fn s then None
          else (
            match Hashtbl.find_opt mi.mi_top_root s with
            | Some gname -> Some (R_globalr gname, gname)
            | None ->
                if Hashtbl.mem st.localfn_owner (m, s) then None
                else Some (R_localr (m, s), n)))
  | T_path n ->
      if Hashtbl.mem st.glob_roots n then Some (R_globalr n, n) else None

type finding = {
  f_root : string;
  f_root_file : string;
  f_root_line : int;
  f_kind : kind;
  f_file : string;
  f_line : int;
  f_col : int;
  f_entry : string;
  f_entry_file : string;
  f_entry_line : int;
  f_path : string list;
  f_message : string;
}

type classification = {
  n_confined : int;
  n_atomic : int;
  n_guarded : int;
  n_shared_read : int;
  n_unguarded : int;
}

type report = {
  scanned_cmts : int;
  roots : (string * string * int * string) list;
      (* name, file, line, class — mutable/atomic roots only *)
  findings : finding list;  (* unwaived, unbaselined *)
  waived : int;
  baselined : int;
  unused_baseline : string list;
  classes : classification;
}

(* --- waiver comments ----------------------------------------------- *)

let find_sub s sub ~from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  if m = 0 then None else go from

let waiver_lines_of_source src =
  let lines = ref [] in
  List.iteri
    (fun i line ->
      match find_sub line "race:" ~from:0 with
      | None -> ()
      | Some j ->
          let rest =
            String.trim (String.sub line (j + 5) (String.length line - j - 5))
          in
          if String.length rest >= 5 && String.sub rest 0 5 = "allow" then
            lines := (i + 1) :: !lines)
    (String.split_on_char '\n' src);
  !lines

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source_candidates ~source_roots file =
  List.map (fun r -> Filename.concat r file) source_roots
  @ [ file; Filename.concat ".." file; Filename.concat "_build/default" file ]

let waivers_for ~source_roots =
  let memo = Hashtbl.create 16 in
  fun file ->
    match Hashtbl.find_opt memo file with
    | Some set -> set
    | None ->
        let set =
          List.fold_left
            (fun acc cand ->
              match acc with
              | Some _ -> acc
              | None ->
                  if Sys.file_exists cand && not (Sys.is_directory cand) then
                    Some (waiver_lines_of_source (read_file cand))
                  else None)
            None
            (source_candidates ~source_roots file)
        in
        let set = Option.value ~default:[] set in
        Hashtbl.replace memo file set;
        set

(* --- cmt discovery -------------------------------------------------- *)

let rec collect_cmts acc path =
  if not (Sys.file_exists path) then
    invalid_arg (Printf.sprintf "no such file or directory: %s" path)
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry -> collect_cmts acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* --- per-root assembled info ---------------------------------------- *)

type rinfo = {
  r_name : string;
  r_defloc : loc_info option;
  mutable r_cls : tclass;
  mutable r_accs : (kind * bool * bool * loc_info * int) list;
      (* kind, guarded, shared, loc, owner *)
}

(* Merged parameter effect of a function: read/write x guarded/not. *)
type eff = {
  mutable e_ru : bool;
  mutable e_wu : bool;
  mutable e_rg : bool;
  mutable e_wg : bool;
}

let compare_findings a b =
  match String.compare a.f_file b.f_file with
  | 0 -> (
      match Int.compare a.f_line b.f_line with
      | 0 -> String.compare a.f_root b.f_root
      | c -> c)
  | c -> c

let analyze ?(baseline = []) ?(source_roots = [ "." ]) paths =
  let st = new_state () in
  let cmts =
    List.fold_left collect_cmts [] paths |> List.sort_uniq String.compare
  in
  let structures = ref [] in
  List.iter
    (fun cmt ->
      match Cmt_format.read_cmt cmt with
      | { cmt_annots = Cmt_format.Implementation str; cmt_modname; _ } ->
          let modname = strip_wrap cmt_modname in
          if not (Hashtbl.mem st.modinfo modname) then begin
            register_module st modname str;
            structures := (modname, str) :: !structures
          end
      | _ -> ()
      | exception Cmt_format.Error _ -> ()
      | exception Cmi_format.Error _ -> ())
    cmts;
  let structures = List.rev !structures in
  List.iter (fun (m, _) -> preregister_fn_owners st m) structures;
  List.iter
    (fun (modname, str) ->
      let init =
        add_owner st
          {
            ok = O_init modname;
            o_disp = modname ^ " (module init)";
            o_loc = no_loc;
            o_ext = no_ext;
            o_locks = false;
          }
      in
      let w = { st; modname; cur = init } in
      let it = walk_iterator w in
      it.structure it str)
    structures;
  (* Guard regions: closure arguments at call sites of lock-wrapping
     functions (and of [Mutex.protect] itself). *)
  let guard_regions = Hashtbl.create 32 in
  List.iter
    (fun c ->
      match c.c_lambdas with
      | [] -> ()
      | _ :: _ -> begin
        let is_guard =
          (match c.c_target with
          | T_path ("Mutex.protect" | "Mutex.lock") -> true
          | _ -> false)
          ||
          match resolve_fn_owner st c.c_target with
          | Some oi -> st.owners.(oi).o_locks
          | None -> false
        in
        if is_guard then
          List.iter
            (fun x ->
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt guard_regions x.xf)
              in
              Hashtbl.replace guard_regions x.xf ((x.xs, x.xe) :: prev))
            c.c_lambdas
      end)
    st.calls;
  let lock_extents =
    (* code lexically inside a function that takes the lock itself *)
    let acc = ref [] in
    for oi = 0 to st.n_owners - 1 do
      let o = st.owners.(oi) in
      if o.o_locks && o.o_ext.xf <> "" then acc := o.o_ext :: !acc
    done;
    !acc
  in
  let guarded_loc (l : loc_info) =
    (match Hashtbl.find_opt guard_regions l.lf with
    | None -> false
    | Some regions -> List.exists (fun (s, e) -> l.lcnum >= s && l.lcnum < e) regions)
    || List.exists (fun x -> inside l x) lock_extents
  in
  (* Parameter-effect fixpoint (merged over all parameters: argument
     positions are not tracked — labels reorder anyway). *)
  let peff : (int, eff) Hashtbl.t = Hashtbl.create 128 in
  let eff_of oi =
    match Hashtbl.find_opt peff oi with
    | Some e -> e
    | None ->
        let e = { e_ru = false; e_wu = false; e_rg = false; e_wg = false } in
        Hashtbl.replace peff oi e;
        e
  in
  List.iter
    (fun a ->
      match a.a_target with
      | T_local (m, s, _) -> (
          match Hashtbl.find_opt st.param_of (m, s) with
          | Some oi -> (
              let e = eff_of oi in
              match (a.a_kind, guarded_loc a.a_loc) with
              | Read, false -> e.e_ru <- true
              | Read, true -> e.e_rg <- true
              | Write, false -> e.e_wu <- true
              | Write, true -> e.e_wg <- true)
          | None -> ())
      | T_path _ -> ())
    st.accesses;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun c ->
        match resolve_fn_owner st c.c_target with
        | None -> ()
        | Some callee -> (
            match Hashtbl.find_opt peff callee with
            | None -> ()
            | Some ce ->
                List.iter
                  (fun (r, _) ->
                    match r with
                    | T_local (m, s, _) -> (
                        match Hashtbl.find_opt st.param_of (m, s) with
                        | Some oi ->
                            let e = eff_of oi in
                            let bump get set =
                              if get ce && not (get e) then begin
                                set e;
                                changed := true
                              end
                            in
                            bump (fun x -> x.e_ru) (fun x -> x.e_ru <- true);
                            bump (fun x -> x.e_wu) (fun x -> x.e_wu <- true);
                            bump (fun x -> x.e_rg) (fun x -> x.e_rg <- true);
                            bump (fun x -> x.e_wg) (fun x -> x.e_wg <- true)
                        | None -> ())
                    | T_path _ -> ())
                  c.c_roots))
      st.calls
  done;
  (* Parallel reachability (BFS; keeps the first spawn provenance). *)
  let parallel = Array.make (max 1 st.n_owners) false in
  let provenance = Array.make (max 1 st.n_owners) None in
  let queue = Queue.create () in
  let seed oi prov =
    if oi >= 0 && oi < st.n_owners && not parallel.(oi) then begin
      parallel.(oi) <- true;
      provenance.(oi) <- Some prov;
      Queue.push oi queue
    end
  in
  List.iter
    (fun s ->
      let prov = (s.s_entry, s.s_loc, s.s_owner, None) in
      match s.s_target with
      | S_closure ci -> seed ci prov
      | S_owner t -> (
          match resolve_fn_owner st t with
          | Some oi -> seed oi prov
          | None -> ()))
    st.spawns;
  let calls_by_owner = Hashtbl.create 256 in
  List.iter
    (fun c ->
      match resolve_fn_owner st c.c_target with
      | None -> ()
      | Some callee ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt calls_by_owner c.c_owner)
          in
          Hashtbl.replace calls_by_owner c.c_owner (callee :: prev))
    st.calls;
  while not (Queue.is_empty queue) do
    let oi = Queue.pop queue in
    List.iter
      (fun callee ->
        if not parallel.(callee) then begin
          parallel.(callee) <- true;
          (match provenance.(oi) with
          | Some (entry, sloc, sowner, _) ->
              provenance.(callee) <- Some (entry, sloc, sowner, Some oi)
          | None -> ());
          Queue.push callee queue
        end)
      (Option.value ~default:[] (Hashtbl.find_opt calls_by_owner oi))
  done;
  (* A definition site lexically inside any parallel owner's extent
     executes per-task on the worker domain: that root is a fresh
     per-invocation value, not shared state. *)
  let parallel_extents = Hashtbl.create 32 in
  Array.iteri
    (fun oi p ->
      if p && oi < st.n_owners then begin
        let x = st.owners.(oi).o_ext in
        if x.xf <> "" then
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt parallel_extents x.xf)
          in
          Hashtbl.replace parallel_extents x.xf ((x.xs, x.xe) :: prev)
      end)
    parallel;
  let def_in_parallel (l : loc_info) =
    match Hashtbl.find_opt parallel_extents l.lf with
    | None -> false
    | Some regions ->
        List.exists (fun (s, e) -> l.lcnum >= s && l.lcnum < e) regions
  in
  (* Effective accesses per root: direct + parameter-translated. *)
  let root_tbl : (root_id, rinfo) Hashtbl.t = Hashtbl.create 256 in
  let root_info rid name =
    match Hashtbl.find_opt root_tbl rid with
    | Some r -> r
    | None ->
        let defloc, cls =
          match rid with
          | R_globalr n -> (
              match Hashtbl.find_opt st.glob_roots n with
              | Some g -> (Some g.gr_loc, g.gr_class)
              | None -> (None, Imm))
          | R_localr (m, s) -> (
              match Hashtbl.find_opt st.local_defs (m, s) with
              | Some (_, l) -> (Some l, Imm)
              | None -> (None, Imm))
        in
        let r = { r_name = name; r_defloc = defloc; r_cls = cls; r_accs = [] } in
        Hashtbl.replace root_tbl rid r;
        r
  in
  let consider target k cls guarded loc owner =
    match resolve_root st target with
    | None -> ()
    | Some (rid, name) ->
        let r = root_info rid name in
        r.r_cls <- tclass_max r.r_cls cls;
        let shared =
          parallel.(owner)
          &&
          match r.r_defloc with
          | Some dl -> not (def_in_parallel dl)
          | None -> true
        in
        r.r_accs <- (k, guarded, shared, loc, owner) :: r.r_accs
  in
  List.iter
    (fun a ->
      consider a.a_target a.a_kind a.a_class (guarded_loc a.a_loc) a.a_loc
        a.a_owner)
    st.accesses;
  List.iter
    (fun c ->
      match resolve_fn_owner st c.c_target with
      | None -> ()
      | Some callee -> (
          match Hashtbl.find_opt peff callee with
          | None -> ()
          | Some e ->
              let site_guarded = guarded_loc c.c_loc in
              List.iter
                (fun (r, cls) ->
                  if e.e_ru then consider r Read cls site_guarded c.c_loc c.c_owner;
                  if e.e_wu then consider r Write cls site_guarded c.c_loc c.c_owner;
                  if e.e_rg then consider r Read cls true c.c_loc c.c_owner;
                  if e.e_wg then consider r Write cls true c.c_loc c.c_owner)
                c.c_roots))
    st.calls;
  (* Classification and findings. *)
  let waivers = waivers_for ~source_roots in
  let waived_at file line =
    file <> "" && file <> "<unknown>"
    &&
    let lines = waivers file in
    List.mem line lines || List.mem (line - 1) lines
  in
  let baseline_used = Hashtbl.create 8 in
  let in_baseline file root =
    let fp = file ^ ":" ^ root in
    if List.mem fp baseline then begin
      Hashtbl.replace baseline_used fp ();
      true
    end
    else false
  in
  let findings = ref [] and waived = ref 0 and baselined = ref 0 in
  let n_confined = ref 0
  and n_atomic = ref 0
  and n_guarded = ref 0
  and n_shared_read = ref 0
  and n_unguarded = ref 0 in
  let roots_out = ref [] in
  Hashtbl.iter
    (fun _rid (r : rinfo) ->
      match r.r_cls with
      | Imm | Sync -> ()
      | Atom -> (
          incr n_atomic;
          match r.r_defloc with
          | Some l -> roots_out := (r.r_name, l.lf, l.ll, "atomic") :: !roots_out
          | None -> ())
      | Mut ->
          let accs = List.rev r.r_accs in
          let par_unguarded k =
            List.find_opt
              (fun (kind, guarded, shared, _, _) ->
                kind = k && shared && not guarded)
              accs
          in
          let any_unguarded_write =
            List.exists
              (fun (kind, guarded, _, _, _) -> kind = Write && not guarded)
              accs
          in
          let has_shared = List.exists (fun (_, _, shared, _, _) -> shared) accs in
          let def_file, def_line =
            match r.r_defloc with Some l -> (l.lf, l.ll) | None -> ("<unknown>", 0)
          in
          let primary =
            match par_unguarded Write with
            | Some a -> Some (Write, a)
            | None -> (
                match par_unguarded Read with
                | Some a when any_unguarded_write -> Some (Read, a)
                | _ -> None)
          in
          let cls_name =
            match primary with
            | Some _ -> "shared-unguarded"
            | None ->
                if not has_shared then "confined"
                else if
                  List.exists
                    (fun (_, guarded, shared, _, _) -> shared && guarded)
                    accs
                then "mutex-guarded"
                else "shared-read"
          in
          (match cls_name with
          | "mutex-guarded" -> incr n_guarded
          | "shared-read" -> incr n_shared_read
          | "confined" -> incr n_confined
          | _ -> ());
          roots_out := (r.r_name, def_file, def_line, cls_name) :: !roots_out;
          (match primary with
          | None -> ()
          | Some (k, (_, _, _, loc, owner)) ->
              incr n_unguarded;
              let entry, entry_loc, path =
                match provenance.(owner) with
                | Some (entry, sloc, sowner, via) ->
                    let chain =
                      [
                        st.owners.(sowner).o_disp;
                        Printf.sprintf "%s @ %s:%d" entry sloc.lf sloc.ll;
                      ]
                      @ (match via with
                        | Some mid when mid <> owner -> [ st.owners.(mid).o_disp ]
                        | _ -> [])
                      @ [ st.owners.(owner).o_disp ]
                    in
                    (entry, sloc, chain)
                | None -> ("<parallel>", loc, [ st.owners.(owner).o_disp ])
              in
              if waived_at def_file def_line || waived_at loc.lf loc.ll then
                incr waived
              else if in_baseline def_file r.r_name then incr baselined
              else
                findings :=
                  {
                    f_root = r.r_name;
                    f_root_file = def_file;
                    f_root_line = def_line;
                    f_kind = k;
                    f_file = loc.lf;
                    f_line = loc.ll;
                    f_col = loc.lc;
                    f_entry = entry;
                    f_entry_file = entry_loc.lf;
                    f_entry_line = entry_loc.ll;
                    f_path = path;
                    f_message =
                      Printf.sprintf
                        "mutable root `%s` (defined %s:%d) is %s on a parallel \
                         domain without a guard; it crosses at %s (%s:%d)"
                        r.r_name def_file def_line
                        (match k with
                        | Write -> "written"
                        | Read -> "read (while written elsewhere)")
                        entry entry_loc.lf entry_loc.ll;
                  }
                  :: !findings))
    root_tbl;
  let unused_baseline =
    List.filter (fun fp -> not (Hashtbl.mem baseline_used fp)) baseline
  in
  {
    scanned_cmts = List.length structures;
    roots =
      List.sort
        (fun (a, af, al, _) (b, bf, bl, _) ->
          match String.compare af bf with
          | 0 -> (
              match Int.compare al bl with 0 -> String.compare a b | c -> c)
          | c -> c)
        !roots_out;
    findings = List.sort compare_findings !findings;
    waived = !waived;
    baselined = !baselined;
    unused_baseline;
    classes =
      {
        n_confined = !n_confined;
        n_atomic = !n_atomic;
        n_guarded = !n_guarded;
        n_shared_read = !n_shared_read;
        n_unguarded = !n_unguarded;
      };
  }

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)
(* ------------------------------------------------------------------ *)

let kind_name = function Read -> "read" | Write -> "write"

let json_report r =
  Json.Obj
    [
      ("tool", Json.String "cmvrp_race");
      ("schema_version", Json.Int 1);
      ("scanned_cmts", Json.Int r.scanned_cmts);
      ("findings_count", Json.Int (List.length r.findings));
      ("waived", Json.Int r.waived);
      ("baselined", Json.Int r.baselined);
      ( "classification",
        Json.Obj
          [
            ("confined", Json.Int r.classes.n_confined);
            ("atomic", Json.Int r.classes.n_atomic);
            ("mutex_guarded", Json.Int r.classes.n_guarded);
            ("shared_read", Json.Int r.classes.n_shared_read);
            ("shared_unguarded", Json.Int r.classes.n_unguarded);
          ] );
      ( "findings",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("root", Json.String f.f_root);
                   ("root_file", Json.String f.f_root_file);
                   ("root_line", Json.Int f.f_root_line);
                   ("kind", Json.String (kind_name f.f_kind));
                   ("file", Json.String f.f_file);
                   ("line", Json.Int f.f_line);
                   ("col", Json.Int f.f_col);
                   ("entry", Json.String f.f_entry);
                   ("entry_file", Json.String f.f_entry_file);
                   ("entry_line", Json.Int f.f_entry_line);
                   ("path", Json.List (List.map (fun s -> Json.String s) f.f_path));
                   ("message", Json.String f.f_message);
                 ])
             r.findings) );
      ( "unused_baseline",
        Json.List (List.map (fun s -> Json.String s) r.unused_baseline) );
    ]

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d:%d: [race] %s@\n    capture path: %s" f.f_file
    f.f_line f.f_col f.f_message
    (String.concat " -> " f.f_path)

let pp_summary fmt r =
  Format.fprintf fmt
    "cmvrp_race: %d cmts scanned; roots: %d confined, %d atomic, %d \
     mutex-guarded, %d shared-read, %d shared-unguarded; %d finding%s (%d \
     waived, %d baselined)"
    r.scanned_cmts r.classes.n_confined r.classes.n_atomic r.classes.n_guarded
    r.classes.n_shared_read r.classes.n_unguarded
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    r.waived r.baselined
