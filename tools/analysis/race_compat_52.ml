(* Typedtree constructors whose shape changed between OCaml 5.1 and 5.2.
   This file is the 5.2+ side; dune copies the matching variant to
   race_compat.ml based on %{ocaml_version} (see ./dune).  Everything
   else in the analyzer pattern-matches only on constructors whose
   representation is identical across the supported compilers. *)

open Typedtree

(* All value identifiers bound by a pattern, with their binding sites.
   5.2 added a [Uid.t] to [Tpat_var] and [Tpat_alias]. *)
let pat_vars (type k) (p : k general_pattern) : (Ident.t * Location.t) list =
  let acc = ref [] in
  let f : 'k. Tast_iterator.iterator -> 'k general_pattern -> unit =
    fun (type l) sub (q : l general_pattern) ->
     (match q.pat_desc with
     | Tpat_var (id, s, _) -> acc := (id, s.Asttypes.loc) :: !acc
     | Tpat_alias (_, id, s, _) -> acc := (id, s.Asttypes.loc) :: !acc
     | _ -> ());
     Tast_iterator.default_iterator.pat sub q
  in
  let it = { Tast_iterator.default_iterator with pat = f } in
  it.pat it p;
  List.rev !acc

(* If [e] is a syntactic function, the identifiers bound by its whole
   parameter chain; [None] for any other expression.  5.2 functions are
   n-ary: [Texp_function of { params; body }]. *)
let rec function_param_idents e =
  match e.exp_desc with
  | Texp_function { params; body; _ } ->
      let of_param p =
        match p.fp_kind with
        | Tparam_pat pat -> List.map fst (pat_vars pat)
        | Tparam_optional_default (pat, _) -> List.map fst (pat_vars pat)
      in
      let here = List.concat_map of_param params in
      let more =
        match body with
        | Tfunction_body b ->
            Option.value ~default:[] (function_param_idents b)
        | Tfunction_cases fc ->
            List.concat_map
              (fun c -> List.map fst (pat_vars c.c_lhs))
              fc.fc_cases
      in
      Some (here @ more)
  | _ -> None

(* Every value identifier bound anywhere in a structure (lets, function
   parameters, match cases), with binding sites — the analyzer's
   definition-site registry. *)
let structure_pattern_vars (str : structure) : (Ident.t * Location.t) list =
  let acc = ref [] in
  let f : 'k. Tast_iterator.iterator -> 'k general_pattern -> unit =
    fun (type l) sub (q : l general_pattern) ->
     (match q.pat_desc with
     | Tpat_var (id, s, _) -> acc := (id, s.Asttypes.loc) :: !acc
     | Tpat_alias (_, id, s, _) -> acc := (id, s.Asttypes.loc) :: !acc
     | _ -> ());
     Tast_iterator.default_iterator.pat sub q
  in
  let it = { Tast_iterator.default_iterator with pat = f } in
  it.structure it str;
  List.rev !acc
