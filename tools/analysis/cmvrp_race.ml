(* cmvrp_race — domain-safety (escape/confinement) analysis driver.

   Usage: cmvrp_race [--json] [--out FILE] [--baseline FILE]
                     [--source-root DIR] [PATH ...]

   Analyzes every .cmt under the given files/directories (default:
   _build/default/lib — run `dune build @check` first).  Human-readable
   findings go to stdout; [--json] switches stdout to the
   machine-readable report, and [--out FILE] additionally writes that
   report to FILE (CI uploads it as an artifact).  [--baseline FILE]
   suppresses known findings listed as `file:root` lines;
   [--source-root DIR] (repeatable) tells the waiver scanner where the
   sources live when the analyzer does not run from the repo root.
   Exit codes: 0 clean, 1 findings, 2 usage or I/O error.  Analysis
   model, waivers, and baseline workflow: docs/RACES.md. *)

let usage () =
  print_string
    "cmvrp_race [--json] [--out FILE] [--baseline FILE] [--source-root DIR] \
     [PATH ...]\n\
     Escape/confinement analysis over .cmt artifacts (default scope:\n\
     _build/default/lib; build them with `dune build @check`).  Reports\n\
     mutable state reachable from Pool/Domain closures without a guard;\n\
     see docs/RACES.md.  Exit 0 = clean, 1 = findings, 2 = bad\n\
     invocation.\n"

let read_baseline file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then lines := line :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let () =
  let json = ref false
  and out = ref None
  and baseline_file = ref None
  and source_roots = ref []
  and show_roots = ref false
  and paths = ref [] in
  let bad m =
    prerr_endline ("cmvrp_race: " ^ m);
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse_args rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse_args rest
    | [ "--out" ] -> bad "--out needs a file argument"
    | "--baseline" :: file :: rest ->
        baseline_file := Some file;
        parse_args rest
    | [ "--baseline" ] -> bad "--baseline needs a file argument"
    | "--source-root" :: dir :: rest ->
        source_roots := dir :: !source_roots;
        parse_args rest
    | [ "--source-root" ] -> bad "--source-root needs a directory argument"
    | "--roots" :: rest ->
        show_roots := true;
        parse_args rest
    | ("-h" | "--help") :: _ ->
        usage ();
        exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        bad ("unknown option " ^ arg)
    | path :: rest ->
        paths := path :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let paths =
    match List.rev !paths with [] -> [ "_build/default/lib" ] | ps -> ps
  in
  let baseline =
    match !baseline_file with
    | None -> []
    | Some file -> (
        try read_baseline file with Sys_error m -> bad m)
  in
  let source_roots =
    match List.rev !source_roots with [] -> [ "." ] | rs -> rs
  in
  match Race_core.analyze ~baseline ~source_roots paths with
  | exception Invalid_argument m -> bad m
  | exception Sys_error m -> bad m
  | report ->
      let j = Race_core.json_report report in
      (match !out with
      | None -> ()
      | Some file ->
          let oc = open_out file in
          output_string oc (Json.to_string j);
          output_char oc '\n';
          close_out oc);
      if !json then print_endline (Json.to_string j)
      else begin
        if !show_roots then
          List.iter
            (fun (name, file, line, cls) ->
              Format.printf "%s:%d: %-16s %s@." file line cls name)
            report.Race_core.roots;
        List.iter
          (fun f -> Format.printf "%a@." Race_core.pp_finding f)
          report.Race_core.findings;
        List.iter
          (fun fp ->
            Format.printf "cmvrp_race: stale baseline entry (no finding): %s@."
              fp)
          report.Race_core.unused_baseline;
        Format.printf "%a@." Race_core.pp_summary report
      end;
      match report.Race_core.findings with [] -> exit 0 | _ -> exit 1
