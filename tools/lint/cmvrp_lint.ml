(* cmvrp_lint — static enforcement of the project's domain invariants.

   Usage: cmvrp_lint [--json] [--out FILE] [PATH ...]

   Lints every .ml under the given files/directories (default:
   lib bin bench tools).  Human-readable diagnostics go to stdout;
   [--json] switches stdout to the machine-readable report, and
   [--out FILE] additionally writes that report to FILE (CI uploads it
   as an artifact).  Exit codes: 0 clean (advisory diagnostics such as
   unused-waiver do not fail the run), 1 violations found, 2 usage or
   I/O error.  Rules and waiver syntax: docs/LINT.md. *)

let usage () =
  print_string
    "cmvrp_lint [--json] [--out FILE] [PATH ...]\n\
     Checks .ml sources (default scope: lib bin bench tools) against\n\
     the project rules; see docs/LINT.md.  Exit 0 = clean (advisories\n\
     allowed), 1 = violations, 2 = bad invocation.\n"

let () =
  let json = ref false and out = ref None and paths = ref [] in
  let bad m =
    prerr_endline ("cmvrp_lint: " ^ m);
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse_args rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse_args rest
    | [ "--out" ] -> bad "--out needs a file argument"
    | ("-h" | "--help") :: _ ->
        usage ();
        exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        bad ("unknown option " ^ arg)
    | path :: rest ->
        paths := path :: !paths;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let paths =
    match List.rev !paths with
    | [] -> [ "lib"; "bin"; "bench"; "tools" ]
    | ps -> ps
  in
  match Lint_rules.run paths with
  | exception Invalid_argument m -> bad m
  | exception Sys_error m -> bad m
  | checked_files, diags ->
      let report = Lint_rules.json_report ~checked_files diags in
      (match !out with
      | None -> ()
      | Some file ->
          let oc = open_out file in
          output_string oc (Json.to_string report);
          output_char oc '\n';
          close_out oc);
      let blocking =
        List.filter (fun d -> not d.Lint_rules.advisory) diags
      in
      if !json then print_endline (Json.to_string report)
      else begin
        List.iter
          (fun d -> Format.printf "%a@." Lint_rules.pp_diagnostic d)
          diags;
        Format.printf
          "cmvrp_lint: %d file%s checked, %d violation%s, %d advisor%s@."
          checked_files
          (if checked_files = 1 then "" else "s")
          (List.length blocking)
          (if List.length blocking = 1 then "" else "s")
          (List.length diags - List.length blocking)
          (if List.length diags - List.length blocking = 1 then "y" else "ies")
      end;
      match blocking with [] -> exit 0 | _ -> exit 1
