(** The [cmvrp_lint] rule engine: parsetree-level enforcement of the
    project's domain invariants (exact L1/energy bookkeeping, handler
    purity, observability naming) over [.ml] sources.

    The checks are purely syntactic — the tool parses with
    [compiler-libs] but never type-checks, so it is fast, needs no build
    context, and works on fixture files that reference unknown modules.
    The flip side is documented per rule in [docs/LINT.md]: e.g. the
    polymorphic-comparison rule recognizes call sites by name, not by
    type.

    Any diagnostic can be waived at its line (or the line above) with a
    comment: [(* lint: allow <rule-id> *)], several ids separated by
    commas or spaces.  A waiver that suppresses nothing is itself
    reported under the advisory [unused-waiver] rule, so stale markers
    cannot accumulate. *)

type diagnostic = {
  rule : string;  (** one of {!rule_ids}, or ["parse-error"] *)
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler messages *)
  message : string;
  advisory : bool;
      (** Advisory diagnostics are reported but do not fail the run
          (the CLI exits 0 if only advisories remain).  Today only
          [unused-waiver] is advisory. *)
}

val rule_ids : string list
(** The enforced rules, in documentation order:
    [poly-compare], [handler-raise], [missing-mli], [print-in-lib],
    [metric-name], [unsafe-array], [energy-arith], [catch-all],
    [domain-confine], plus the advisory [unused-waiver]. *)

val run : string list -> int * diagnostic list
(** [run paths] lints every [.ml] file under the given files/directories
    (recursively, skipping [_build] and dot-directories) and returns
    [(checked_files, diagnostics)], diagnostics sorted by
    file/line/column.  Raises [Invalid_argument] on a path that does not
    exist. *)

val json_report : checked_files:int -> diagnostic list -> Json.t
(** Machine-readable report ([schema_version 1]): tool name, file and
    violation counts, and one object per diagnostic. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** [file:line:col: [rule] message], the human-readable form. *)
