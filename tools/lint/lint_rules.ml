open Parsetree

type diagnostic = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  advisory : bool;
      (** Advisory diagnostics are reported but never fail the run
          (exit code stays 0).  Today only [unused-waiver]. *)
}

let rule_ids =
  [
    "poly-compare";
    "handler-raise";
    "missing-mli";
    "print-in-lib";
    "metric-name";
    "unsafe-array";
    "energy-arith";
    "catch-all";
    "domain-confine";
    "unused-waiver";
  ]

(* ------------------------------------------------------------------ *)
(* Small string helpers (no regex dependency).                         *)
(* ------------------------------------------------------------------ *)

let find_sub s sub ~from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then None else go from

let contains_sub s sub = Option.is_some (find_sub s sub ~from:0)

let path_components p =
  String.split_on_char '/' p |> List.filter (fun c -> c <> "" && c <> ".")

(* [lib] as a path component marks library code; [lib/metrics] and
   [lib/flow] are the rule-specific sanctuaries. *)
let rec has_component comps name =
  match comps with
  | [] -> false
  | c :: rest -> c = name || has_component rest name

let rec has_component_pair comps a b =
  match comps with
  | x :: (y :: _ as rest) ->
      (x = a && y = b) || has_component_pair rest a b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Waivers: a marker comment — "lint", a colon, then "allow rule-a,
   rule-b" — on the diagnostic's line or the line directly above it.
   Each waived rule id carries a used-flag; entries that end a run
   without suppressing anything are themselves reported (advisory
   [unused-waiver]), so stale markers cannot accumulate.              *)
(* ------------------------------------------------------------------ *)

type waiver_entry = { w_rule : string; mutable w_used : bool }

let waivers_of_source src =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      match find_sub line "lint:" ~from:0 with
      | None -> ()
      | Some j ->
          let rest = String.sub line (j + 5) (String.length line - j - 5) in
          let rest = String.trim rest in
          if String.length rest >= 5 && String.sub rest 0 5 = "allow" then begin
            let ids = String.sub rest 5 (String.length rest - 5) in
            let ids =
              match find_sub ids "*)" ~from:0 with
              | None -> ids
              | Some k -> String.sub ids 0 k
            in
            let ids =
              String.map (fun c -> if c = ',' then ' ' else c) ids
              |> String.split_on_char ' '
              |> List.filter (fun s -> s <> "")
              |> List.map (fun r -> { w_rule = r; w_used = false })
            in
            let line_no = i + 1 in
            let prev = Option.value ~default:[] (Hashtbl.find_opt tbl line_no) in
            Hashtbl.replace tbl line_no (ids @ prev)
          end)
    (String.split_on_char '\n' src);
  tbl

let waived waivers ~rule ~line =
  let at l =
    List.fold_left
      (fun hit w ->
        if w.w_rule = rule then begin
          w.w_used <- true;
          true
        end
        else hit)
      false
      (Option.value ~default:[] (Hashtbl.find_opt waivers l))
  in
  (* Evaluate both lines so a duplicated marker is marked used too. *)
  let here = at line in
  let above = at (line - 1) in
  here || above

let unused_waiver_diags ~path waivers =
  Hashtbl.fold
    (fun line entries acc ->
      List.fold_left
        (fun acc w ->
          if w.w_used then acc
          else
            {
              rule = "unused-waiver";
              file = path;
              line;
              col = 0;
              message =
                Printf.sprintf
                  "waiver for `%s` suppresses nothing — delete the marker%s"
                  w.w_rule
                  (if List.mem w.w_rule rule_ids then ""
                   else " (not a known rule id; typo?)");
              advisory = true;
            }
            :: acc)
        acc entries)
    waivers []

(* ------------------------------------------------------------------ *)
(* Per-file context.                                                   *)
(* ------------------------------------------------------------------ *)

type metric_reg = { m_name : string; m_file : string; m_line : int }

type ctx = {
  path : string;
  in_lib : bool;  (** a [lib] path component is present *)
  in_lib_metrics : bool;
  in_lib_flow : bool;
  domain_ok : bool;
      (** [lib/prelude/pool.ml] and [lib/metrics/] may use Domain/Atomic
          (and the mutexes Metrics locks with); everyone else goes through
          the [Pool] facade. *)
  energy_impl : bool;  (** [energy.ml] itself implements the checks *)
  waivers : (int, waiver_entry list) Hashtbl.t;
  diags : diagnostic list ref;
  metric_regs : metric_reg list ref;
  (* Start offsets of identifier expressions exempt from [poly-compare]
     because they are label-punned arguments ([~compare] passing a local
     [compare]), which never denote [Stdlib.compare]. *)
  punned : (int, unit) Hashtbl.t;
  (* Name of the innermost handler-convention binding being traversed. *)
  mutable handler : string option;
}

let emit ctx ~rule ~loc message =
  let p = loc.Location.loc_start in
  let line = p.Lexing.pos_lnum in
  if not (waived ctx.waivers ~rule ~line) then
    ctx.diags :=
      {
        rule;
        file = ctx.path;
        line;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        message;
        advisory = false;
      }
      :: !(ctx.diags)

(* ------------------------------------------------------------------ *)
(* Longident / expression helpers.                                     *)
(* ------------------------------------------------------------------ *)

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []

let last_of lid = match List.rev (flatten lid) with [] -> "" | x :: _ -> x

let dotted lid = String.concat "." (flatten lid)

(* Strip a leading [Stdlib] so [Stdlib.compare] and [compare] coincide. *)
let canonical lid =
  match flatten lid with "Stdlib" :: rest -> rest | l -> l

let point_markers =
  [ "pos"; "home"; "dest"; "position"; "location"; "site"; "from_"; "to_" ]

let energy_marker name =
  let n = String.lowercase_ascii name in
  contains_sub n "energy" || contains_sub n "capacit" || n = "cap"
  || (String.length n > 4 && String.sub n (String.length n - 4) 4 = "_cap")
  || (String.length n > 4 && String.sub n 0 4 = "cap_")

(* Does the syntactic subtree of [e] mention something matching the
   predicates?  [on_ident] sees identifier paths, [on_field] record-field
   names.  Bare identifiers are deliberately NOT fed to [on_field]: local
   variables named [pos] or [site] abound (e.g. parser cursors), whereas a
   field access [v.pos] reliably denotes domain state. *)
let mentions ~on_ident ~on_field e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> if on_ident (flatten txt) then found := true
          | Pexp_field (_, { txt; _ }) -> if on_field (last_of txt) then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let mentions_point e =
  mentions
    ~on_ident:(fun _ -> false)
    ~on_field:(fun f -> List.mem f point_markers)
    e

let mentions_energy e =
  mentions
    ~on_ident:(fun comps ->
      match List.rev comps with x :: _ -> energy_marker x | [] -> false)
    ~on_field:energy_marker e

let is_handler_name n =
  String.starts_with ~prefix:"handle_" n
  || String.starts_with ~prefix:"on_" n
  || n = "dispatch"

let console_printers =
  [
    [ "print_string" ];
    [ "print_endline" ];
    [ "print_newline" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "print_bytes" ];
    [ "prerr_string" ];
    [ "prerr_endline" ];
    [ "prerr_newline" ];
    [ "prerr_char" ];
    [ "prerr_int" ];
    [ "prerr_float" ];
    [ "Printf"; "printf" ];
    [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ];
    [ "Format"; "eprintf" ];
    [ "Format"; "print_string" ];
    [ "Format"; "print_newline" ];
  ]

let raise_family = [ [ "raise" ]; [ "raise_notrace" ]; [ "failwith" ]; [ "invalid_arg" ] ]

let is_valid_metric_name s =
  let lower c = c >= 'a' && c <= 'z' in
  let seg_char c = lower c || (c >= '0' && c <= '9') || c = '_' in
  let seg_ok seg =
    seg <> "" && lower seg.[0] && String.for_all seg_char seg
  in
  s <> ""
  &&
  let segs = String.split_on_char '.' s in
  List.length segs >= 2 && List.for_all seg_ok segs

(* Catch-all patterns in a [try]: [_], possibly under alias/or-patterns. *)
let rec pattern_catches_all p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (q, _) -> pattern_catches_all q
  | Ppat_or (a, b) -> pattern_catches_all a || pattern_catches_all b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The traversal.                                                      *)
(* ------------------------------------------------------------------ *)

let check_ident ctx lid loc =
  let comps = canonical lid in
  (* Rule: poly-compare (identifier forms). *)
  (match comps with
  | [ "compare" ] ->
      if not (Hashtbl.mem ctx.punned loc.Location.loc_start.Lexing.pos_cnum) then
        emit ctx ~rule:"poly-compare" ~loc
          (Printf.sprintf
             "polymorphic `%s` — use a dedicated comparator (Point.compare, \
              Int.compare, Float.compare, ...)"
             (dotted lid))
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] ->
      emit ctx ~rule:"poly-compare" ~loc
        (Printf.sprintf
           "polymorphic `%s` on domain values — use the dedicated hash \
            (e.g. Point.hash)"
           (dotted lid))
  | _ -> ());
  (* Rule: unsafe-array. *)
  (match comps with
  | [ ("Array" | "Bytes" | "String" | "Float"); name ]
    when String.starts_with ~prefix:"unsafe_" name ->
      if not ctx.in_lib_flow then
        emit ctx ~rule:"unsafe-array" ~loc
          (Printf.sprintf
             "`%s` outside lib/flow — unchecked accesses are reserved for \
              the max-flow hot path"
             (dotted lid))
  | _ -> ());
  (* Rule: domain-confine. *)
  (match comps with
  | ("Domain" | "Atomic" | "Mutex" | "Condition") :: _ :: _ when not ctx.domain_ok ->
      emit ctx ~rule:"domain-confine" ~loc
        (Printf.sprintf
           "`%s` outside lib/prelude/pool.ml and lib/metrics — parallelism \
            goes through the deterministic Pool facade, and only Metrics \
            carries its own locking"
           (dotted lid))
  | _ -> ());
  (* Rule: print-in-lib. *)
  if ctx.in_lib && not ctx.in_lib_metrics && List.mem comps console_printers then
    emit ctx ~rule:"print-in-lib" ~loc
      (Printf.sprintf
         "console output `%s` in library code — only lib/metrics may print; \
          return strings or take an explicit out channel/formatter"
         (dotted lid));
  (* Rule: handler-raise. *)
  match ctx.handler with
  | Some h when List.mem comps raise_family ->
      emit ctx ~rule:"handler-raise" ~loc
        (Printf.sprintf
           "`%s` inside event handler `%s` — DES handlers and online step \
            functions must return a result/variant instead of raising"
           (dotted lid) h)
  | _ -> ()

let check_apply ctx fn_lid args loc =
  let comps = canonical fn_lid in
  (* Register label-punned arguments before children are visited. *)
  List.iter
    (fun (label, (arg : expression)) ->
      match (label, arg.pexp_desc) with
      | Asttypes.Labelled l, Pexp_ident { txt = Longident.Lident id; _ }
        when l = id ->
          Hashtbl.replace ctx.punned arg.pexp_loc.loc_start.Lexing.pos_cnum ()
      | _ -> ())
    args;
  let unlabeled =
    List.filter_map
      (fun (l, a) -> match l with Asttypes.Nolabel -> Some a | _ -> None)
      args
  in
  (* Rule: poly-compare (structural (in)equality on Point-like operands). *)
  (match comps with
  | [ ("=" | "<>" | "==" | "!=") ] when List.exists mentions_point unlabeled ->
      emit ctx ~rule:"poly-compare" ~loc
        (Printf.sprintf
           "polymorphic `%s` applied to a Point-valued operand — use \
            Point.equal (L1 bookkeeping must not rely on structural compare)"
           (dotted fn_lid))
  | _ -> ());
  (* Rule: poly-compare (record field tested against [] with structural
     equality).  [o.failures = []] deep-compares every element — floats,
     records, whatever the list holds; emptiness is a pattern match. *)
  let is_nil (e : expression) =
    match e.pexp_desc with
    | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> true
    | _ -> false
  in
  let is_field (e : expression) =
    match e.pexp_desc with Pexp_field _ -> true | _ -> false
  in
  (match (comps, unlabeled) with
  | [ ("=" | "<>" | "==" | "!=") ], [ a; b ]
    when (is_nil a && is_field b) || (is_field a && is_nil b) ->
      emit ctx ~rule:"poly-compare" ~loc
        (Printf.sprintf
           "structural `%s` between a record field and `[]` — test emptiness \
            with a pattern match; structural equality deep-compares whatever \
            the list holds"
           (dotted fn_lid))
  | _ -> ());
  (* Rule: energy-arith. *)
  (match comps with
  | [ (("+" | "-" | "*") as op) ]
    when (not ctx.energy_impl)
         && List.length unlabeled = 2
         && List.exists mentions_energy unlabeled ->
      emit ctx ~rule:"energy-arith" ~loc
        (Printf.sprintf
           "raw integer `%s` on an energy/capacity quantity — route it \
            through Energy.add/sub/scale/sum (lib/prelude) so overflow \
            cannot silently corrupt the paper's bounds"
           op)
  | _ -> ());
  (* Rule: metric-name. *)
  match (comps, unlabeled) with
  | [ "Metrics"; ("counter" | "gauge" | "timer" | "histogram") ], first :: _ -> (
      match first.pexp_desc with
      | Pexp_constant (Pconst_string (name, _, _)) ->
          let line = first.pexp_loc.loc_start.Lexing.pos_lnum in
          if not (is_valid_metric_name name) then
            emit ctx ~rule:"metric-name" ~loc:first.pexp_loc
              (Printf.sprintf
                 "metric name %S does not match the `subsystem.name` scheme \
                  (lowercase [a-z0-9_] segments separated by dots)"
                 name)
          else if not (waived ctx.waivers ~rule:"metric-name" ~line) then
            ctx.metric_regs :=
              { m_name = name; m_file = ctx.path; m_line = line }
              :: !(ctx.metric_regs)
      | _ ->
          emit ctx ~rule:"metric-name" ~loc:first.pexp_loc
            "metric name is not a string literal — register metrics with \
             literal `subsystem.name` strings so the registry stays auditable")
  | _ -> ()

let iterator_for ctx =
  let open Ast_iterator in
  {
    default_iterator with
    expr =
      (fun it e ->
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> check_ident ctx txt e.pexp_loc
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
            check_apply ctx txt args e.pexp_loc
        | Pexp_record (fields, _) ->
            (* Punned fields ([{ compare; ... }]) denote locals, never
               Stdlib.compare. *)
            List.iter
              (fun (({ txt; _ } : Longident.t Location.loc), (v : expression)) ->
                match v.pexp_desc with
                | Pexp_ident { txt = Longident.Lident id; _ } when id = last_of txt ->
                    Hashtbl.replace ctx.punned v.pexp_loc.loc_start.Lexing.pos_cnum ()
                | _ -> ())
              fields
        | Pexp_try (_, cases) ->
            List.iter
              (fun c ->
                if pattern_catches_all c.pc_lhs then
                  emit ctx ~rule:"catch-all" ~loc:c.pc_lhs.ppat_loc
                    "catch-all exception handler (`try ... with _ ->`) — \
                     match the specific exceptions; a blanket handler hides \
                     accounting bugs and swallows Out_of_memory")
              cases
        | Pexp_assert
            { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
          -> (
            match ctx.handler with
            | Some h ->
                emit ctx ~rule:"handler-raise" ~loc:e.pexp_loc
                  (Printf.sprintf
                     "`assert false` inside event handler `%s` — handlers \
                      must not raise mid-simulation"
                     h)
            | None -> ())
        | _ -> ());
        default_iterator.expr it e);
    value_binding =
      (fun it vb ->
        let name =
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> Some txt
          | _ -> None
        in
        match name with
        | Some n when is_handler_name n ->
            let saved = ctx.handler in
            ctx.handler <- Some n;
            default_iterator.value_binding it vb;
            ctx.handler <- saved
        | _ -> default_iterator.value_binding it vb);
  }

(* ------------------------------------------------------------------ *)
(* Driving: file discovery, parsing, cross-file checks.                *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_one ~diags ~metric_regs path =
  let src = read_file path in
  let comps = path_components path in
  let ctx =
    {
      path;
      in_lib = has_component comps "lib";
      in_lib_metrics = has_component_pair comps "lib" "metrics";
      in_lib_flow = has_component_pair comps "lib" "flow";
      domain_ok =
        has_component_pair comps "lib" "metrics"
        || (has_component_pair comps "lib" "prelude"
           && Filename.basename path = "pool.ml");
      energy_impl = Filename.basename path = "energy.ml";
      waivers = waivers_of_source src;
      diags;
      metric_regs;
      punned = Hashtbl.create 8;
      handler = None;
    }
  in
  (* Rule: missing-mli (library modules must publish an interface). *)
  if ctx.in_lib && not (Sys.file_exists (path ^ "i")) then
    emit ctx ~rule:"missing-mli"
      ~loc:
        {
          Location.loc_ghost = false;
          loc_start = { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
          loc_end = { Lexing.pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
        }
      (Printf.sprintf
         "library module has no interface — add %si (every module under lib/ \
          ships an .mli)"
         (Filename.basename path));
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure ->
      let it = iterator_for ctx in
      it.structure it structure;
      diags := unused_waiver_diags ~path ctx.waivers @ !diags
  | exception (Syntaxerr.Error _ | Lexer.Error _) ->
      let p = lexbuf.Lexing.lex_curr_p in
      diags :=
        {
          rule = "parse-error";
          file = path;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          message = "file does not parse as OCaml — cmvrp_lint cannot check it";
          advisory = false;
        }
        :: !diags

let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || String.starts_with ~prefix:"." entry then acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let compare_diags a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let duplicate_metric_diags regs =
  let by_name = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_name r.m_name) in
      Hashtbl.replace by_name r.m_name (r :: prev))
    regs;
  Hashtbl.fold
    (fun name sites acc ->
      let sites =
        List.sort_uniq
          (fun a b ->
            match String.compare a.m_file b.m_file with
            | 0 -> Int.compare a.m_line b.m_line
            | c -> c)
          sites
      in
      match sites with
      | [] | [ _ ] -> acc
      | first :: rest ->
          List.fold_left
            (fun acc r ->
              {
                rule = "metric-name";
                file = r.m_file;
                line = r.m_line;
                col = 0;
                message =
                  Printf.sprintf
                    "metric %S already registered at %s:%d — names must be \
                     unique across the tree"
                    name first.m_file first.m_line;
                advisory = false;
              }
              :: acc)
            acc rest)
    by_name []

let run paths =
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then
        invalid_arg (Printf.sprintf "cmvrp_lint: no such file or directory: %s" p))
    paths;
  let files =
    List.fold_left collect_ml [] paths |> List.sort_uniq String.compare
  in
  let diags = ref [] and metric_regs = ref [] in
  List.iter (lint_one ~diags ~metric_regs) files;
  let all = duplicate_metric_diags !metric_regs @ !diags in
  (List.length files, List.sort compare_diags all)

(* ------------------------------------------------------------------ *)
(* Reporting.                                                          *)
(* ------------------------------------------------------------------ *)

let json_report ~checked_files diags =
  let blocking, advisories = List.partition (fun d -> not d.advisory) diags in
  Json.Obj
    [
      ("tool", Json.String "cmvrp_lint");
      ("schema_version", Json.Int 1);
      ("checked_files", Json.Int checked_files);
      ("violations", Json.Int (List.length blocking));
      ("advisories", Json.Int (List.length advisories));
      ( "diagnostics",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [
                   ("rule", Json.String d.rule);
                   ("file", Json.String d.file);
                   ("line", Json.Int d.line);
                   ("col", Json.Int d.col);
                   ("message", Json.String d.message);
                   ("advisory", Json.Bool d.advisory);
                 ])
             diags) );
    ]

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s:%d:%d: [%s%s] %s" d.file d.line d.col d.rule
    (if d.advisory then ", advisory" else "")
    d.message
