(** L1 neighborhoods [N_r(T)] and their cardinalities.

    Equation (1.1) of the paper, [ω_T · |N_{ω_T}(T)| = Σ_{x∈T} d(x)],
    requires [|N_r(T)|] for arbitrary finite [T].  This module provides:

    - exact closed forms for the shapes the paper analyses (single points,
      segments, and [l]-cubes — Examples 2.1.1–2.1.3 and Lemma 2.2.5), and
    - a BFS dilation for arbitrary finite sets, used both as the general
      fallback and as an independent witness for the closed forms in the
      test suite. *)

val binomial : int -> int -> int
(** [binomial n k] = C(n,k); 0 when [k < 0] or [k > n].  Overflow-checked:
    raises [Energy.Overflow] instead of silently wrapping.  Note the check
    applies to the multiplicative formula's intermediates
    [C(n,i)·(n-k+i)], which can overflow slightly before the result
    itself would. *)

val ball_volume : dim:int -> radius:int -> int
(** Number of lattice points of [Z^dim] at L1 distance [<= radius] from a
    point: [Σ_k 2^k C(dim,k) C(radius,k)].  [radius < 0] yields 0. *)

val cube_ball_volume : dim:int -> side:int -> radius:int -> int
(** [|N_radius(C)|] for a [side]-cube [C ⊆ Z^dim]:
    [Σ_k C(dim,k) side^(dim-k) 2^k C(radius,k)].  This is the quantity the
    paper's Corollary 2.2.7 approximates by [(3⌈ω⌉)^l]. *)

val box_ball_volume : Box.t -> radius:int -> int
(** Closed-form [|N_radius(B)|] for an arbitrary box [B] (sides may
    differ); covers the segment of Example 2.1.2 as a [1 x m] box. *)

val segment_ball_volume_2d : len:int -> radius:int -> int
(** 2-D special case used by Example 2.1.2: [(2r+1)·len + 2r^2]. *)

val dilate_set : Point.t list -> radius:int -> Point.Set.t
(** [N_radius(T)] by multi-source BFS; exact for any finite [T].
    Cost is proportional to the volume of the result. *)

(** {1 Incremental dilation}

    A {!frontier} is a paused multi-source BFS: it remembers everything
    reached so far and the current outermost shell, so growing the
    neighborhood from radius [r] to [r+1] costs only the new shell — the
    delta the oracle's radius scan needs, instead of re-dilating from
    scratch at every radius. *)

type frontier

val frontier : Point.t list -> frontier
(** A frontier at radius 0; its shell is the input set with duplicates
    removed (first occurrence kept, input order preserved). *)

val expand : frontier -> Point.t list
(** Advances the frontier one radius step and returns the new shell: the
    points at L1 distance exactly [frontier_radius] (after the call) from
    the seed set, in deterministic discovery order.  The union of the
    shells up to radius [r] equals [dilate_set ~radius:r]. *)

val absorb : frontier -> Point.t -> Point.t list
(** [absorb f p] adds [p] to the frontier's {e seed} set in place: the
    points within the current radius of [p] that the frontier had not
    reached yet become reached, and are returned in BFS discovery order
    ([[]] when the ball around [p] was already covered).  Newly reached
    points at distance exactly [frontier_radius f] join the shell, so
    subsequent {!expand}s stay exact for the enlarged seed set.  The
    shell may retain entries whose exact distance dropped below the
    radius; they are harmless to {!expand} (their unseen neighbors are
    necessarily at the next radius).  This is the streaming counterpart
    of rebuilding the frontier when a job arrives at a new position
    ([Oracle.Session]). *)

val frontier_radius : frontier -> int
val frontier_shell : frontier -> Point.t list
(** The current shell (radius 0: the deduplicated seed set). *)

val frontier_size : frontier -> int
(** Total points reached so far, [|N_radius(T)|]. *)

val dilate_shells : Point.t list -> max_radius:int -> Point.t list array
(** [dilate_shells t ~max_radius].(r) = the shell at L1 distance exactly
    [r] from [T] (index 0: [T] deduplicated).  One BFS pass; the
    concatenation of entries [0..r] enumerates [dilate_set t ~radius:r]. *)

val iter_sphere : center:Point.t -> radius:int -> (Point.t -> unit) -> unit
(** Enumerates the L1 sphere [{x : ‖x − center‖₁ = radius}] directly
    (no hashing, no BFS), calling the function once per point.  The point
    array passed to the callback is {e reused between calls} — copy it if
    it must be retained. *)

val neighborhood_size : Point.t list -> radius:int -> int
(** [|N_radius(T)|].  Uses the closed form when [T] is recognised as a box,
    BFS otherwise. *)

val shell_sizes : Point.t list -> max_radius:int -> int array
(** [shell_sizes t ~max_radius].(r) = number of points at L1 distance
    exactly [r] from [T] (index 0 counts [T] itself).  Used by the
    energy-decay bound of Theorem 5.1.1. *)
