let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    (* Multiplicative formula with exact intermediate divisibility:
       acc * (n-k+i) is always divisible by i.  The product is checked —
       C(n,k) can exceed [max_int] long before n does, and a silently
       wrapped count corrupts every volume bound built on it. *)
    let acc = ref 1 in
    for i = 1 to k do
      acc := Energy.mul !acc (n - k + i) / i
    done;
    !acc
  end

let ball_volume ~dim ~radius =
  if radius < 0 then 0
  else begin
    let acc = ref 0 in
    for k = 0 to min dim radius do
      acc :=
        Energy.add !acc
          (Energy.mul
             (Energy.mul (Energy.pow 2 k) (binomial dim k))
             (binomial radius k))
    done;
    !acc
  end

let cube_ball_volume ~dim ~side ~radius =
  if side <= 0 then invalid_arg "Ball.cube_ball_volume: side must be positive";
  if radius < 0 then 0
  else begin
    let acc = ref 0 in
    for k = 0 to dim do
      acc :=
        Energy.add !acc
          (Energy.mul
             (Energy.mul
                (Energy.mul (binomial dim k) (Energy.pow side (dim - k)))
                (Energy.pow 2 k))
             (binomial radius k))
    done;
    !acc
  end

let box_ball_volume box ~radius =
  if radius < 0 then 0
  else begin
    let n = Box.dim box in
    (* For each subset S of coordinates that lie strictly outside the box,
       inside coordinates contribute (side i) choices each, outside ones a
       signed positive excess; excesses over S sum to <= radius.  Summing
       over subsets by dynamic programming on (axis, #outside) with the
       product of inside sides accumulated per count is wrong when sides
       differ, so enumerate subset sizes with a DP carrying the sum of
       products of inside sides for each count of outside axes. *)
    (* dp.(k) = sum over k-subsets S of prod_{i not in S} side_i *)
    let dp = Array.make (n + 1) 0 in
    dp.(0) <- 1;
    for i = 0 to n - 1 do
      let s = Box.side box i in
      for k = i + 1 downto 1 do
        dp.(k) <- Energy.add (Energy.mul dp.(k) s) dp.(k - 1)
      done;
      dp.(0) <- Energy.mul dp.(0) s
    done;
    let acc = ref 0 in
    for k = 0 to n do
      acc :=
        Energy.add !acc
          (Energy.mul (Energy.mul dp.(k) (Energy.pow 2 k)) (binomial radius k))
    done;
    !acc
  end

let segment_ball_volume_2d ~len ~radius =
  if len <= 0 then invalid_arg "Ball.segment_ball_volume_2d: len must be positive";
  if radius < 0 then 0
  else
    Energy.add
      (Energy.mul ((2 * radius) + 1) len)
      (Energy.mul 2 (Energy.mul radius radius))

let dilate_set points ~radius =
  if radius < 0 then invalid_arg "Ball.dilate_set: negative radius";
  match points with
  | [] -> Point.Set.empty
  | p0 :: _ ->
      let l = Point.dim p0 in
      ignore l;
      let seen = Point.Tbl.create 1024 in
      let queue = Queue.create () in
      List.iter
        (fun p ->
          if not (Point.Tbl.mem seen p) then begin
            Point.Tbl.add seen p 0;
            Queue.add p queue
          end)
        points;
      while not (Queue.is_empty queue) do
        let p = Queue.pop queue in
        let d = Point.Tbl.find seen p in
        if d < radius then
          List.iter
            (fun q ->
              if not (Point.Tbl.mem seen q) then begin
                Point.Tbl.add seen q (d + 1);
                Queue.add q queue
              end)
            (Point.neighbors p)
      done;
      Point.Tbl.fold (fun p _ acc -> Point.Set.add p acc) seen Point.Set.empty

(* --- incremental (frontier-based) dilation --- *)

type frontier = {
  f_seen : unit Point.Tbl.t;
  mutable f_shell : Point.t list; (* points at distance exactly f_radius *)
  mutable f_radius : int;
}

let frontier points =
  let f_seen = Point.Tbl.create 1024 in
  let shell =
    List.filter
      (fun p ->
        if Point.Tbl.mem f_seen p then false
        else begin
          Point.Tbl.add f_seen p ();
          true
        end)
      points
  in
  { f_seen; f_shell = shell; f_radius = 0 }

let frontier_radius f = f.f_radius
let frontier_shell f = f.f_shell
let frontier_size f = Point.Tbl.length f.f_seen

let expand f =
  let next = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if not (Point.Tbl.mem f.f_seen q) then begin
            Point.Tbl.add f.f_seen q ();
            next := q :: !next
          end)
        (Point.neighbors p))
    f.f_shell;
  f.f_shell <- List.rev !next;
  f.f_radius <- f.f_radius + 1;
  f.f_shell

let absorb f p =
  let r = f.f_radius in
  (* BFS from [p] out to the current radius.  The flood traverses
     already-seen points (they may shield unseen ones behind them) but
     only unseen points are new.  A newly seen point at flood depth
     exactly [r] has distance exactly [r] from the enlarged seed set
     (its BFS depth is its exact distance to [p], and its distance to
     the old seeds exceeds [r] or it would have been seen), so appending
     those to the shell keeps {!expand} exact.  Old shell entries whose
     distance just dropped below [r] are harmless there: each of their
     unseen neighbors is at distance [r + 1] regardless. *)
  let added = ref [] in
  let shell_add = ref [] in
  let dist = Point.Tbl.create 64 in
  let queue = Queue.create () in
  Point.Tbl.add dist p 0;
  Queue.add p queue;
  if not (Point.Tbl.mem f.f_seen p) then begin
    Point.Tbl.add f.f_seen p ();
    added := p :: !added;
    if r = 0 then shell_add := p :: !shell_add
  end;
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    let d = Point.Tbl.find dist q in
    if d < r then
      List.iter
        (fun w ->
          if not (Point.Tbl.mem dist w) then begin
            Point.Tbl.add dist w (d + 1);
            Queue.add w queue;
            if not (Point.Tbl.mem f.f_seen w) then begin
              Point.Tbl.add f.f_seen w ();
              added := w :: !added;
              if d + 1 = r then shell_add := w :: !shell_add
            end
          end)
        (Point.neighbors q)
  done;
  f.f_shell <- f.f_shell @ List.rev !shell_add;
  List.rev !added

let dilate_shells points ~max_radius =
  if max_radius < 0 then invalid_arg "Ball.dilate_shells: negative radius";
  let shells = Array.make (max_radius + 1) [] in
  let f = frontier points in
  shells.(0) <- frontier_shell f;
  for r = 1 to max_radius do
    shells.(r) <- expand f
  done;
  shells

let iter_sphere ~center ~radius f =
  if radius < 0 then invalid_arg "Ball.iter_sphere: negative radius";
  let n = Point.dim center in
  if n = 0 then begin
    if radius = 0 then f [||]
  end
  else begin
    let buf = Array.copy center in
    (* Distribute the remaining L1 budget over coordinates i..n-1; the
       last coordinate must absorb exactly what is left, so every point
       of the sphere is visited exactly once. *)
    let rec go i remaining =
      if i = n - 1 then begin
        buf.(i) <- center.(i) + remaining;
        f buf;
        if remaining > 0 then begin
          buf.(i) <- center.(i) - remaining;
          f buf
        end;
        buf.(i) <- center.(i)
      end
      else begin
        for v = -remaining to remaining do
          buf.(i) <- center.(i) + v;
          go (i + 1) (remaining - abs v)
        done;
        buf.(i) <- center.(i)
      end
    in
    go 0 radius
  end

let as_box points =
  (* Recognise a set of points that exactly fills its bounding box. *)
  match points with
  | [] -> None
  | p0 :: _ ->
      let n = Point.dim p0 in
      let lo = Array.copy p0 and hi = Array.copy p0 in
      List.iter
        (fun p ->
          for i = 0 to n - 1 do
            if p.(i) < lo.(i) then lo.(i) <- p.(i);
            if p.(i) > hi.(i) then hi.(i) <- p.(i)
          done)
        points;
      let box = Box.make ~lo ~hi in
      let distinct = Point.Set.of_list points in
      if Point.Set.cardinal distinct = Box.volume box then Some box else None

let neighborhood_size points ~radius =
  match as_box points with
  | Some box -> box_ball_volume box ~radius
  | None -> Point.Set.cardinal (dilate_set points ~radius)

let shell_sizes points ~max_radius =
  if max_radius < 0 then invalid_arg "Ball.shell_sizes: negative radius";
  let shells = Array.make (max_radius + 1) 0 in
  (match points with
  | [] -> ()
  | _ ->
      let seen = Point.Tbl.create 1024 in
      let queue = Queue.create () in
      List.iter
        (fun p ->
          if not (Point.Tbl.mem seen p) then begin
            Point.Tbl.add seen p 0;
            Queue.add p queue;
            shells.(0) <- shells.(0) + 1
          end)
        points;
      while not (Queue.is_empty queue) do
        let p = Queue.pop queue in
        let d = Point.Tbl.find seen p in
        if d < max_radius then
          List.iter
            (fun q ->
              if not (Point.Tbl.mem seen q) then begin
                Point.Tbl.add seen q (d + 1);
                shells.(d + 1) <- shells.(d + 1) + 1;
                Queue.add q queue
              end)
            (Point.neighbors p)
      done);
  shells
