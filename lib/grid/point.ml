type t = int array

let dim = Array.length

let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec loop i = i = n || (a.(i) = b.(i) && loop (i + 1)) in
  loop 0

(* Explicit lexicographic order (length first, then coordinates), matching
   what the polymorphic compare did on int arrays but without ever going
   through the polymorphic runtime path — the L1 bookkeeping of
   Thm 1.4.1/1.4.2 must not depend on representation tricks. *)
let compare_points (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec loop i =
      if i = la then 0
      else match Int.compare a.(i) b.(i) with 0 -> loop (i + 1) | c -> c
    in
    loop 0
  end

let compare = compare_points

let hash (a : t) =
  Array.fold_left (fun h x -> (h * 1000003) lxor (x * 2654435761)) 17 a
  land max_int

let check_same_dim a b =
  if Array.length a <> Array.length b then
    invalid_arg "Point: dimension mismatch"

let l1_dist a b =
  check_same_dim a b;
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc + abs (a.(i) - b.(i))
  done;
  !acc

let l1_norm a =
  let acc = ref 0 in
  Array.iter (fun x -> acc := !acc + abs x) a;
  !acc

let add a b =
  check_same_dim a b;
  Array.init (Array.length a) (fun i -> a.(i) + b.(i))

let sub a b =
  check_same_dim a b;
  Array.init (Array.length a) (fun i -> a.(i) - b.(i))

let origin l = Array.make l 0

let axis l i v =
  let p = Array.make l 0 in
  p.(i) <- v;
  p

let neighbors p =
  let l = Array.length p in
  let out = ref [] in
  for i = 0 to l - 1 do
    let up = Array.copy p and down = Array.copy p in
    up.(i) <- up.(i) + 1;
    down.(i) <- down.(i) - 1;
    out := up :: down :: !out
  done;
  !out

let pp fmt p =
  Format.fprintf fmt "(%s)"
    (String.concat "," (Array.to_list (Array.map string_of_int p)))

let to_string p = Format.asprintf "%a" pp p

module Ord = struct
  type nonrec t = t

  let compare = compare_points
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Tbl = Hashtbl.Make (Hashed)
