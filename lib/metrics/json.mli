(** Minimal JSON tree with an emitter and a strict parser.

    Written in-repo because the toolchain ships no JSON library; covers
    exactly what the benchmark reports ({!Bench_report}) and the metrics
    registry ({!Metrics}) need.  Numbers are split into [Int] and [Float]
    ([Float nan] prints as [null]); strings are byte sequences with the
    standard escapes ([\uXXXX] is decoded to UTF-8 on input, surrogate
    pairs unsupported). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?compact:bool -> t -> string
(** Serialize; 2-space-indented unless [compact] (default [false]). *)

val to_buffer : ?compact:bool -> Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Strict parse of a complete document; the error carries a byte
    offset. *)

val member : string -> t -> t option
(** First field of that name if the value is an [Obj]. *)

val to_float_opt : t -> float option
(** Numeric projection: accepts both [Int] and [Float]. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
val to_obj_opt : t -> (string * t) list option
