type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emission --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else begin
    (* Shortest representation that parses back to the same double.  The
       serving protocol relies on this: a cached ω* must survive the wire
       bit-identically, and %.12g alone drops up to 5 significant bits. *)
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
  end

let to_buffer ?(compact = false) buf v =
  let pad n = if not compact then Buffer.add_string buf (String.make n ' ') in
  let nl () = if not compact then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (2 * (depth + 1));
            go (depth + 1) item)
          items;
        nl ();
        pad (2 * depth);
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (2 * (depth + 1));
            escape buf k;
            Buffer.add_char buf ':';
            if not compact then Buffer.add_char buf ' ';
            go (depth + 1) item)
          fields;
        nl ();
        pad (2 * depth);
        Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?compact v =
  let buf = Buffer.create 1024 in
  to_buffer ?compact buf v;
  Buffer.contents buf

(* --- parsing: plain recursive descent, errors as Result --- *)

exception Fail of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape"
           else begin
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let hex = String.sub s !pos 4 in
                 pos := !pos + 4;
                 let code =
                   try int_of_string ("0x" ^ hex)
                   with Failure _ -> fail "bad \\u escape"
                 in
                 (* UTF-8 encode the BMP code point (surrogates unsupported). *)
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
             | _ -> fail "unknown escape"
           end);
          loop ()
        end
        else begin
          Buffer.add_char buf c;
          loop ()
        end
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elems () =
            items := parse_value () :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elems ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Fail msg -> Error msg

(* --- accessors --- *)

let member key v =
  match v with Obj fields -> List.assoc_opt key fields | _ -> None

let to_float_opt v =
  match v with
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt v = match v with Int i -> Some i | _ -> None
let to_string_opt v = match v with String s -> Some s | _ -> None
let to_bool_opt v = match v with Bool b -> Some b | _ -> None
let to_list_opt v = match v with List l -> Some l | _ -> None
let to_obj_opt v = match v with Obj o -> Some o | _ -> None
