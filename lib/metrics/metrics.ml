(* Domain-safety: counters are Atomic cells (lock-free increments on the
   hot path), while gauges, timers and the registry itself are guarded by
   one mutex — their mutation sites are orders of magnitude colder than
   counter increments, so a lock there costs nothing measurable.  This
   module and lib/prelude/pool.ml are the only places allowed to touch
   Atomic/Mutex (cmvrp_lint rule [domain-confine]). *)

type counter = int Atomic.t
type gauge = { mutable g : float; mutable g_peak : float }
type timer = { mutable ns : float; mutable calls : int }

(* Histograms share one fixed geometric bucket family: upper bounds
   1µs·2^i (ns) for i = 0..25, plus an overflow slot at the end of
   [h_counts].  Fixed buckets keep every snapshot a few dozen ints and
   make any two histograms (or two revisions of one) comparable. *)
type histogram = { h_counts : int array; mutable h_sum : float; mutable h_count : int }

type cell = C of counter | G of gauge | T of timer | H of histogram

let n_bounds = 26
let bucket_bound i = 1_000.0 *. Float.of_int (1 lsl i)

(* Finite stand-in bound reported for the overflow bucket (~11.6 days in
   ns): quantiles and JSON stay finite floats. *)
let overflow_bound = 1e15

let registry : (string, cell) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* The enable flag is read on every instrumented fast path, including
   from Pool worker domains, and flipped by [set_enabled] on the control
   domain — it must be an Atomic, not a ref (cmvrp_race flags the ref
   version as shared-unguarded). *)
let on = Atomic.make true

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let register name make project describe =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some cell -> (
          match project cell with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S already registered as a %s" name
                   (describe cell)))
      | None ->
          let v = make () in
          Hashtbl.replace registry name v;
          (match project v with Some v -> v | None -> assert false))

let describe = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | T _ -> "timer"
  | H _ -> "histogram"

let counter name =
  register name
    (fun () -> C (Atomic.make 0))
    (function C c -> Some c | _ -> None)
    describe

let gauge name =
  register name
    (fun () -> G { g = 0.0; g_peak = 0.0 })
    (function G g -> Some g | _ -> None)
    describe

let timer name =
  register name
    (fun () -> T { ns = 0.0; calls = 0 })
    (function T t -> Some t | _ -> None)
    describe

let histogram name =
  register name
    (fun () -> H { h_counts = Array.make (n_bounds + 1) 0; h_sum = 0.0; h_count = 0 })
    (function H h -> Some h | _ -> None)
    describe

(* Mutators: a single flag test on the fast path; when disabled they are
   no-ops so instrumented code pays (almost) nothing.  Counter updates
   are atomic fetch-and-adds and stay lock-free under Pool fan-out. *)

let incr c = if Atomic.get on then Atomic.incr c
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c n)
let count c = Atomic.get c

let set_gauge g v =
  if Atomic.get on then
    locked (fun () ->
        g.g <- v;
        if v > g.g_peak then g.g_peak <- v)

let gauge_value g = g.g
let gauge_peak g = g.g_peak

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let add_ns t dt =
  if Atomic.get on then
    locked (fun () ->
        t.ns <- t.ns +. dt;
        t.calls <- t.calls + 1)

let time t f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Monotonic_clock.now () in
    Fun.protect
      ~finally:(fun () ->
        add_ns t (Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0)))
      f
  end

let timer_ns t = t.ns
let timer_calls t = t.calls

let bucket_of v =
  let rec go i = if i >= n_bounds || v <= bucket_bound i then i else go (i + 1) in
  go 0

let observe h v =
  if Atomic.get on then
    locked (fun () ->
        let i = bucket_of v in
        h.h_counts.(i) <- h.h_counts.(i) + 1;
        h.h_sum <- h.h_sum +. v;
        h.h_count <- h.h_count + 1)

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let histogram_quantile h q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Metrics.histogram_quantile: quantile outside [0, 1]";
  if h.h_count = 0 then Float.nan
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count))) in
    let rec go i acc =
      let acc = acc + h.h_counts.(i) in
      if acc >= rank || i = n_bounds then
        if i = n_bounds then overflow_bound else bucket_bound i
      else go (i + 1) acc
    in
    go 0 0
  end

(* --- registry-wide views --- *)

type sample =
  | Count of int
  | Level of { value : float; peak : float }
  | Span of { ns : float; calls : int }
  | Dist of { count : int; sum : float; buckets : (float * int) list }

let sample_of_cell = function
  | C c -> Count (Atomic.get c)
  | G g -> Level { value = g.g; peak = g.g_peak }
  | T t -> Span { ns = t.ns; calls = t.calls }
  | H h ->
      let buckets = ref [] in
      for i = n_bounds downto 0 do
        if h.h_counts.(i) > 0 then
          let bound = if i = n_bounds then overflow_bound else bucket_bound i in
          buckets := (bound, h.h_counts.(i)) :: !buckets
      done;
      Dist { count = h.h_count; sum = h.h_sum; buckets = !buckets }

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun name cell acc -> (name, sample_of_cell cell) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sample name =
  locked (fun () -> Option.map sample_of_cell (Hashtbl.find_opt registry name))

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ cell ->
          match cell with
          | C c -> Atomic.set c 0
          | G g ->
              g.g <- 0.0;
              g.g_peak <- 0.0
          | T t ->
              t.ns <- 0.0;
              t.calls <- 0
          | H h ->
              Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
              h.h_sum <- 0.0;
              h.h_count <- 0)
        registry)

let json_of_sample = function
  | Count n -> Json.Obj [ ("type", Json.String "counter"); ("value", Json.Int n) ]
  | Level { value; peak } ->
      Json.Obj
        [
          ("type", Json.String "gauge");
          ("value", Json.Float value);
          ("peak", Json.Float peak);
        ]
  | Span { ns; calls } ->
      Json.Obj
        [
          ("type", Json.String "timer");
          ("ns", Json.Float ns);
          ("calls", Json.Int calls);
        ]
  | Dist { count; sum; buckets } ->
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int count);
          ("sum", Json.Float sum);
          ( "buckets",
            Json.List
              (List.map
                 (fun (bound, n) -> Json.List [ Json.Float bound; Json.Int n ])
                 buckets) );
        ]

let sample_of_json j =
  match Json.member "type" j with
  | Some (Json.String "counter") -> (
      match Option.bind (Json.member "value" j) Json.to_int_opt with
      | Some n -> Ok (Count n)
      | None -> Error "counter sample without integer \"value\"")
  | Some (Json.String "gauge") -> (
      match
        ( Option.bind (Json.member "value" j) Json.to_float_opt,
          Option.bind (Json.member "peak" j) Json.to_float_opt )
      with
      | Some value, Some peak -> Ok (Level { value; peak })
      | _ -> Error "gauge sample without numeric \"value\"/\"peak\"")
  | Some (Json.String "timer") -> (
      match
        ( Option.bind (Json.member "ns" j) Json.to_float_opt,
          Option.bind (Json.member "calls" j) Json.to_int_opt )
      with
      | Some ns, Some calls -> Ok (Span { ns; calls })
      | _ -> Error "timer sample without \"ns\"/\"calls\"")
  | Some (Json.String "histogram") -> (
      let bucket = function
        | Json.List [ b; n ] -> (
            match (Json.to_float_opt b, Json.to_int_opt n) with
            | Some b, Some n -> Some (b, n)
            | _ -> None)
        | _ -> None
      in
      match
        ( Option.bind (Json.member "count" j) Json.to_int_opt,
          Option.bind (Json.member "sum" j) Json.to_float_opt,
          Option.bind (Json.member "buckets" j) Json.to_list_opt )
      with
      | Some count, Some sum, Some raw -> (
          let buckets = List.filter_map bucket raw in
          if List.length buckets = List.length raw then
            Ok (Dist { count; sum; buckets })
          else Error "histogram bucket is not a [bound, count] pair")
      | _ -> Error "histogram sample without \"count\"/\"sum\"/\"buckets\"")
  | _ -> Error "sample without a known \"type\""

let json_of_snapshot snap =
  Json.Obj (List.map (fun (name, s) -> (name, json_of_sample s)) snap)
