type scenario = {
  name : string;
  wall_ms : float;
  metrics : (string * Metrics.sample) list;
}

type t = {
  schema_version : int;
  revision : string;
  quick : bool;
  scenarios : scenario list;
}

let schema_version = 1

let make ~revision ~quick scenarios =
  { schema_version; revision; quick; scenarios }

(* --- JSON codec (schema documented in docs/OBSERVABILITY.md) --- *)

let json_of_scenario s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("wall_ms", Json.Float s.wall_ms);
      ("metrics", Metrics.json_of_snapshot s.metrics);
    ]

let to_json r =
  Json.Obj
    [
      ("schema_version", Json.Int r.schema_version);
      ("revision", Json.String r.revision);
      ("quick", Json.Bool r.quick);
      ("scenarios", Json.List (List.map json_of_scenario r.scenarios));
    ]

let ( let* ) = Result.bind

let field name project j =
  match Option.bind (Json.member name j) project with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let scenario_of_json j =
  let* name = field "name" Json.to_string_opt j in
  let* wall_ms = field "wall_ms" Json.to_float_opt j in
  let* metric_fields = field "metrics" Json.to_obj_opt j in
  let* metrics =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        match Metrics.sample_of_json v with
        | Ok s -> Ok ((k, s) :: acc)
        | Error e -> Error (Printf.sprintf "metric %S of scenario %S: %s" k name e))
      (Ok []) metric_fields
  in
  Ok { name; wall_ms; metrics = List.rev metrics }

let of_json j =
  let* version = field "schema_version" Json.to_int_opt j in
  if version <> schema_version then
    Error
      (Printf.sprintf "unsupported schema_version %d (this build reads %d)"
        version schema_version)
  else
    let* revision = field "revision" Json.to_string_opt j in
    let* quick = field "quick" Json.to_bool_opt j in
    let* scenario_list = field "scenarios" Json.to_list_opt j in
    let* scenarios =
      List.fold_left
        (fun acc sj ->
          let* acc = acc in
          let* s = scenario_of_json sj in
          Ok (s :: acc))
        (Ok []) scenario_list
    in
    Ok (make ~revision ~quick (List.rev scenarios))

let of_string s =
  let* j = Json.of_string s in
  of_json j

let write_file path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (to_json r));
      output_char oc '\n')

let read_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match of_string text with
  | Ok r -> Ok r
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

(* --- regression detection --- *)

type regression = {
  scenario : string;
  subject : string;
  baseline_value : float;
  candidate_value : float;
  limit : float;
}

(* Thresholds are one-sided with an additive slack so that a candidate
   identical to its baseline can never regress (at any tolerance >= 0) and
   sub-millisecond timing noise is ignored. *)

let wall_slack_ms = 0.5
let span_slack_ns = 0.5e6

let exceeds ~tolerance ~slack ~old_v ~new_v =
  let limit = ((1.0 +. tolerance) *. old_v) +. slack in
  if new_v > limit then Some limit else None

let metric_regressions ~metric_tolerance ~wall_tolerance ~scenario old_metrics
    new_metrics =
  List.filter_map
    (fun (name, new_sample) ->
      match List.assoc_opt name old_metrics with
      | None -> None (* newly added metric: nothing to compare against *)
      | Some old_sample ->
          let flag subject old_v new_v tolerance slack =
            Option.map
              (fun limit ->
                {
                  scenario;
                  subject;
                  baseline_value = old_v;
                  candidate_value = new_v;
                  limit;
                })
              (exceeds ~tolerance ~slack ~old_v ~new_v)
          in
          (match (old_sample, new_sample) with
          | Metrics.Count o, Metrics.Count n ->
              flag name (float_of_int o) (float_of_int n) metric_tolerance 0.0
          | Metrics.Level o, Metrics.Level n ->
              flag (name ^ ".peak") o.peak n.peak metric_tolerance 0.0
          | Metrics.Span o, Metrics.Span n ->
              flag (name ^ ".ns") o.ns n.ns wall_tolerance span_slack_ns
          | Metrics.Dist o, Metrics.Dist n ->
              (* Observation counts are deterministic (one per request);
                 the bucket shape and sum are wall-clock-dependent, so
                 only the count is gated. *)
              flag (name ^ ".count")
                (float_of_int o.count)
                (float_of_int n.count)
                metric_tolerance 0.0
          | _ -> (* kind changed between revisions: not comparable *) None))
    new_metrics

let diff ?(wall_tolerance = 0.5) ?(metric_tolerance = 0.1) ~baseline ~candidate
    () =
  if wall_tolerance < 0.0 || metric_tolerance < 0.0 then
    invalid_arg "Bench_report.diff: tolerances must be non-negative";
  List.concat_map
    (fun old_s ->
      match
        List.find_opt (fun s -> s.name = old_s.name) candidate.scenarios
      with
      | None ->
          [
            {
              scenario = old_s.name;
              subject = "missing";
              baseline_value = old_s.wall_ms;
              candidate_value = Float.nan;
              limit = Float.nan;
            };
          ]
      | Some new_s ->
          let wall =
            match
              exceeds ~tolerance:wall_tolerance ~slack:wall_slack_ms
                ~old_v:old_s.wall_ms ~new_v:new_s.wall_ms
            with
            | Some limit ->
                [
                  {
                    scenario = old_s.name;
                    subject = "wall_ms";
                    baseline_value = old_s.wall_ms;
                    candidate_value = new_s.wall_ms;
                    limit;
                  };
                ]
            | None -> []
          in
          wall
          @ metric_regressions ~metric_tolerance ~wall_tolerance
              ~scenario:old_s.name old_s.metrics new_s.metrics)
    baseline.scenarios

let pp_regression fmt r =
  if r.subject = "missing" then
    Format.fprintf fmt
      "%s: scenario missing from the candidate report (baseline wall %.2f ms)"
      r.scenario r.baseline_value
  else
    Format.fprintf fmt "%s: %s rose %.6g -> %.6g (limit %.6g)" r.scenario
      r.subject r.baseline_value r.candidate_value r.limit
