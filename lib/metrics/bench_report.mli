(** Machine-readable benchmark reports ([BENCH_<rev>.json]) and the
    regression check behind [cmvrp_cli bench-diff].

    A report is a list of named scenarios, each with a wall-clock duration
    and a {!Metrics} snapshot taken right after the scenario ran.  The
    JSON schema (version {!schema_version}) is documented in
    [docs/OBSERVABILITY.md]. *)

type scenario = {
  name : string;
  wall_ms : float;
  metrics : (string * Metrics.sample) list;
}

type t = {
  schema_version : int;
  revision : string;
  quick : bool;
  scenarios : scenario list;
}

val schema_version : int

val make : revision:string -> quick:bool -> scenario list -> t
(** Stamps the current {!schema_version}. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

val write_file : string -> t -> unit
val read_file : string -> (t, string) result

(** {1 Regression detection} *)

type regression = {
  scenario : string;
  subject : string;
      (** ["wall_ms"], ["missing"], a counter name, [<gauge>.peak] or
          [<timer>.ns]. *)
  baseline_value : float;
  candidate_value : float;
  limit : float;  (** the threshold that was exceeded *)
}

val diff :
  ?wall_tolerance:float ->
  ?metric_tolerance:float ->
  baseline:t ->
  candidate:t ->
  unit ->
  regression list
(** One-sided comparison of [candidate] against [baseline], scenario by
    scenario (matched by name; scenarios only in the candidate are
    ignored, scenarios only in the baseline are reported as ["missing"]).

    A quantity regresses when
    [new > (1 + tolerance) * old + slack] — wall time and timer spans use
    [wall_tolerance] (default 0.5) with a 0.5 ms absolute slack, counters
    and gauge peaks use [metric_tolerance] (default 0.1) with no slack.
    Equal reports therefore never regress, at any tolerance; improvements
    are never flagged.  Raises [Invalid_argument] on a negative
    tolerance. *)

val pp_regression : Format.formatter -> regression -> unit
