(** Process-wide observability registry: named counters, gauges and
    monotonic-clock timers.

    Instrumented modules create their cells once at load time
    ([let m = Metrics.counter "maxflow.augmentations"]) and mutate them on
    the hot path; every mutator is a single flag test plus a field write,
    and a no-op while disabled ({!set_enabled}), so instrumentation can
    stay on in production code paths.

    Names are dot-separated, [<subsystem>.<quantity>] — the full list
    lives in [docs/OBSERVABILITY.md].  The registry is global and
    domain-safe: counter updates are lock-free atomics, while gauge/timer
    mutation and the registry itself are mutex-guarded, so instrumented
    code can run under [Pool] fan-out without races.  {!reset} zeroes all
    values but keeps registrations, which is how the benchmark harness
    isolates per-scenario snapshots. *)

type counter
type gauge
type timer
type histogram

val set_enabled : bool -> unit
(** Globally enable/disable recording (default: enabled).  Reads remain
    available either way. *)

val enabled : unit -> bool

(** {1 Cells}

    Creation is get-or-create by name; asking for an existing name with a
    different kind raises [Invalid_argument]. *)

val counter : string -> counter
val gauge : string -> gauge
val timer : string -> timer

val histogram : string -> histogram
(** Fixed-bucket distribution cell for latency-style quantities.  The
    buckets are geometric and shared by every histogram: upper bounds
    [1µs · 2^i] in nanoseconds for [i = 0 .. 25] (≈1 µs to ≈33.6 s) plus
    one overflow bucket, so two histograms are always comparable and a
    snapshot is a few dozen ints.  See [docs/SERVING.md] for reading the
    p50/p95/p99 readout. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set_gauge : gauge -> float -> unit
(** Sets the current level and maintains the high-water mark. *)

val gauge_value : gauge -> float
val gauge_peak : gauge -> float

val time : timer -> (unit -> 'a) -> 'a
(** Runs the thunk, accumulating its monotonic-clock duration and call
    count (also on exception).  When disabled, exactly [f ()]. *)

val add_ns : timer -> float -> unit
(** Record an externally measured duration. *)

val now_ns : unit -> float
(** Monotonic clock reading in nanoseconds ([CLOCK_MONOTONIC]); only
    differences are meaningful. *)

val timer_ns : timer -> float
val timer_calls : timer -> int

val observe : histogram -> float -> unit
(** Records one observation (a duration in nanoseconds, by convention).
    Negative values clamp into the lowest bucket. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] for [q] in [\[0, 1\]] is the upper bound of
    the bucket containing the [⌈q·count⌉]-th smallest observation — a
    conservative (upper) quantile estimate, e.g.
    [histogram_quantile h 0.99] for p99.  [nan] while the histogram is
    empty; raises [Invalid_argument] outside [\[0, 1\]]. *)

(** {1 Registry-wide views} *)

type sample =
  | Count of int
  | Level of { value : float; peak : float }
  | Span of { ns : float; calls : int }
  | Dist of { count : int; sum : float; buckets : (float * int) list }
      (** Histogram snapshot: total observation count, sum, and the
          non-empty buckets as (upper bound, count) pairs in ascending
          bound order. *)

val snapshot : unit -> (string * sample) list
(** All registered cells, sorted by name. *)

val sample : string -> sample option
val reset : unit -> unit

val json_of_snapshot : (string * sample) list -> Json.t
(** Object keyed by metric name; see [docs/OBSERVABILITY.md] for the
    per-kind field layout. *)

val json_of_sample : sample -> Json.t
val sample_of_json : Json.t -> (sample, string) result
