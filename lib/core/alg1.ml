type result = { value : float; cube_side : int option; cell_ops : int }

let m_cell_ops = Metrics.counter "alg1.cell_ops"
let m_coarsen_levels = Metrics.counter "alg1.coarsen_levels"
let m_run = Metrics.timer "alg1.run"

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let int_pow base e =
  let v = ref 1 in
  for _ = 1 to e do
    v := !v * base
  done;
  !v

let approximation_factor l = 2.0 *. float_of_int ((2 * int_pow 3 l) + l)

let run_raw ~dim ~n dm =
  if dim <= 0 then invalid_arg "Alg1.run: dimension must be positive";
  if not (is_power_of_two n) then invalid_arg "Alg1.run: n must be a power of two";
  if Demand_map.dim dm <> dim then invalid_arg "Alg1.run: dimension mismatch";
  let grid = Box.cube_at_origin ~dim ~side:n in
  let ops = ref 0 in
  (* Flatten the demand into the finest-scale array d_1. *)
  let cells = int_pow n dim in
  let finest = Array.make cells 0 in
  Demand_map.iter dm (fun p v ->
      if not (Box.mem grid p) then invalid_arg "Alg1.run: support outside the grid";
      finest.(Box.index grid p) <- finest.(Box.index grid p) + v);
  ops := !ops + cells;
  let total = Array.fold_left ( + ) 0 finest in
  let max_d = Array.fold_left max 0 finest in
  ops := !ops + cells;
  let d_hat = float_of_int total /. float_of_int cells in
  let fallback = Float.min (float_of_int max_d)
      ((2.0 *. d_hat) +. float_of_int (dim * n))
  in
  (* Properties 2.3.3 and 2.3.2. *)
  if float_of_int n <= d_hat then { value = fallback; cube_side = None; cell_ops = !ops }
  else if max_d <= 1 then
    { value = float_of_int max_d; cube_side = None; cell_ops = !ops }
  else begin
    (* Main loop: coarsen by 2 per axis until every w-block fits its
       radius-w budget w·(3w)^dim. *)
    let rec loop ~w ~n' ~(coarse : int array) =
      if w = n then { value = fallback; cube_side = None; cell_ops = !ops }
      else begin
        Metrics.incr m_coarsen_levels;
        let w = 2 * w and n' = n' / 2 in
        let child_box = Box.cube_at_origin ~dim ~side:(2 * n') in
        let parent_box = Box.cube_at_origin ~dim ~side:n' in
        let next = Array.make (int_pow n' dim) 0 in
        Box.iter child_box (fun c ->
            incr ops;
            let parent = Array.map (fun x -> x / 2) c in
            let pi = Box.index parent_box parent in
            next.(pi) <- next.(pi) + coarse.(Box.index child_box c));
        let budget = w * int_pow (3 * w) dim in
        if Array.exists (fun v -> v > budget) next then loop ~w ~n' ~coarse:next
        else
          {
            value = float_of_int (((2 * int_pow 3 dim) + dim) * w);
            cube_side = Some w;
            cell_ops = !ops;
          }
      end
    in
    loop ~w:1 ~n':n ~coarse:finest
  end

let run ~dim ~n dm =
  Metrics.time m_run (fun () ->
      let r = run_raw ~dim ~n dm in
      Metrics.add m_cell_ops r.cell_ops;
      r)
