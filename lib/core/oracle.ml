let default_scale = 720720 (* lcm(1..14): exact for small dual denominators *)

let m_lp_calls = Metrics.counter "oracle.lp_calls"
let m_radius_brackets = Metrics.counter "oracle.radius_brackets"
let m_omega_star = Metrics.timer "oracle.omega_star"
let m_session_events = Metrics.counter "oracle.session_events"
let m_session_queries = Metrics.counter "oracle.session_queries"
let m_session_latency = Metrics.histogram "oracle.session_latency_ns"

(* Incremental transport-instance builder.  Suppliers are the grid points
   within the current radius of the demand support; rather than re-running
   the all-pairs L1 scan at every radius, the builder keeps a BFS frontier
   over the support and, per radius step, registers only the new shell of
   suppliers and adds only the links at exactly the new distance (by
   enumerating each demand's L1 sphere).  The link set at radius m is a
   strict prefix of the set at radius m+1, so one builder serves the whole
   bracket scan of [omega_star]. *)
type builder = {
  b_support : Point.t array;
  b_inst : Transport.t;
  b_frontier : Ball.frontier;
  b_index : int Point.Tbl.t; (* supplier point -> supplier index *)
  mutable b_radius : int;
}

let builder_create dm ~demand_scale =
  let support = Array.of_list (Demand_map.support dm) in
  let inst = Transport.create ~n_suppliers:0 ~n_demands:(Array.length support) in
  Array.iteri
    (fun j p ->
      Transport.set_demand inst j (Energy.mul (Demand_map.value dm p) demand_scale))
    support;
  let fr = Ball.frontier (Array.to_list support) in
  let index = Point.Tbl.create 1024 in
  List.iter
    (fun p -> Point.Tbl.add index p (Transport.add_supplier inst))
    (Ball.frontier_shell fr);
  (* Radius 0: every demand site is served by the supplier at its own
     position. *)
  Array.iteri
    (fun j p ->
      match Point.Tbl.find_opt index p with
      | Some i -> Transport.add_link inst ~supplier:i ~demand:j
      | None -> assert false)
    support;
  { b_support = support; b_inst = inst; b_frontier = fr; b_index = index; b_radius = 0 }

let builder_extend b =
  (* New suppliers first, so shell points at exactly the new distance from
     some demand are linkable below. *)
  let shell = Ball.expand b.b_frontier in
  List.iter
    (fun p -> Point.Tbl.add b.b_index p (Transport.add_supplier b.b_inst))
    shell;
  let r = b.b_radius + 1 in
  b.b_radius <- r;
  (* Link delta: the pairs at L1 distance exactly r.  Every such supplier
     is already registered (its distance to the support set is <= r). *)
  Array.iteri
    (fun j p ->
      Ball.iter_sphere ~center:p ~radius:r (fun q ->
          match Point.Tbl.find_opt b.b_index q with
          | Some i -> Transport.add_link b.b_inst ~supplier:i ~demand:j
          | None -> ()))
    b.b_support

let builder_to_radius b radius =
  while b.b_radius < radius do
    builder_extend b
  done

let build_instance dm ~radius =
  let b = builder_create dm ~demand_scale:1 in
  builder_to_radius b radius;
  b.b_inst

let lp_value_of_inst inst ~scale =
  Metrics.incr m_lp_calls;
  match Transport.min_uniform_supply inst ~scale with
  | Some v -> v
  | None ->
      (* Impossible: every demand site is its own supplier at radius >= 0. *)
      assert false

let lp_value ?(scale = default_scale) ~radius dm =
  if radius < 0 then invalid_arg "Oracle.lp_value: negative radius";
  if Demand_map.total dm = 0 then begin
    Metrics.incr m_lp_calls;
    0.0
  end
  else lp_value_of_inst (build_instance dm ~radius) ~scale

let omega_star ?(scale = default_scale) dm =
  if Demand_map.total dm = 0 then 0.0
  else
    Metrics.time m_omega_star (fun () ->
        (* ω lives in some bracket [m, m+1); there the admissible radius is m
           and the minimal capacity is lp_value m, so the bracket's optimum is
           max(m, lp_value m) when that stays below m+1.  The incremental
           builder carries the radius-m instance into bracket m+1 as a
           delta — and because every bracket queries the same Transport
           instance at the same scale, the transport's cached parametric
           driver (Paramflow) carries its flow and breakpoint family across
           brackets too: each lp call costs one warm re-sweep, not a fresh
           supply search. *)
        let b = builder_create dm ~demand_scale:1 in
        let rec scan m =
          Metrics.incr m_radius_brackets;
          builder_to_radius b m;
          let v = lp_value_of_inst b.b_inst ~scale in
          let candidate = Float.max (float_of_int m) v in
          if candidate < float_of_int (m + 1) then candidate else scan (m + 1)
        in
        scan 0)

let lower_bound_woff = omega_star


let witness ?(scale = default_scale) dm =
  if Demand_map.total dm = 0 then None
  else begin
    let star = omega_star ~scale dm in
    let m = int_of_float (Float.floor star) in
    (* If ω* sits strictly inside the bracket [m, m+1), the binding
       constraint is the radius-m transport; if ω* = m exactly, it is the
       bracket floor and the violator lives at radius m-1 and supply just
       below m (the previous bracket is infeasible throughout).  Both
       bracket configurations are probed (through the Domain pool when
       workers are available); the binding one is preferred and the other
       serves as a fallback when the 1/scale resolution is too coarse. *)
    let configs =
      if star > float_of_int m +. 1e-9 || m = 0 then [| (m, star) |]
      else [| (m - 1, float_of_int m); (m, star) |]
    in
    let try_config (radius, supply_just_below) =
      let b = builder_create dm ~demand_scale:scale in
      builder_to_radius b radius;
      let u =
        max 0 (int_of_float (Float.ceil (supply_just_below *. float_of_int scale)) - 1)
      in
      match Transport.infeasibility_witness b.b_inst ~supply:(fun _ -> u) with
      | None -> None (* resolution too coarse to exhibit infeasibility *)
      | Some demand_indices ->
          let points = List.map (fun j -> b.b_support.(j)) demand_indices in
          let total =
            List.fold_left (fun acc p -> acc + Demand_map.value dm p) 0 points
          in
          Some (points, Omega.of_points points ~total)
    in
    let results = Pool.map try_config configs in
    Array.fold_left
      (fun acc r -> match acc with Some _ -> acc | None -> r)
      None results
  end

(* ------------------------------------------------------------------ *)
(* Streaming sessions: incremental ω* under job arrival / retirement  *)
(* ------------------------------------------------------------------ *)

module Session = struct
  (* One persistent bracket per integer radius [m] the scan has ever
     visited: a frozen-radius builder (its transport holds exactly the
     links at distance <= m) plus a demand-site index.  A job delta
     touches every live bracket in O(1) amortized — a sink-cap patch on
     the cached parametric arena — except when the job lands on a
     position the bracket has never seen, which appends a demand site,
     absorbs the new ball of suppliers into the frozen frontier
     ({!Ball.absorb}) and links it by sphere enumeration, exactly the
     radius-scan construction.  Sites whose demand returns to 0 stay in
     the arena with a zero-capacity sink edge: they carry no flow and
     shift no cut, so every bracket value — and therefore ω* — is
     bit-identical to a from-scratch recomputation on the live demand. *)
  type bracket = { bk : builder; bk_dindex : int Point.Tbl.t }

  type t = {
    s_scale : int;
    mutable s_dm : Demand_map.t;
    mutable s_brackets : bracket array; (* index = bracket radius *)
    mutable s_value : float; (* cached ω*; valid when not dirty *)
    mutable s_dirty : bool;
  }

  let create ?(scale = default_scale) dm =
    if scale <= 0 then invalid_arg "Oracle.Session.create: scale must be positive";
    { s_scale = scale; s_dm = dm; s_brackets = [||]; s_value = 0.0; s_dirty = true }

  let demand s = s.s_dm
  let scale s = s.s_scale

  let make_bracket dm radius =
    let b = builder_create dm ~demand_scale:1 in
    builder_to_radius b radius;
    let dindex = Point.Tbl.create 64 in
    Array.iteri (fun j p -> Point.Tbl.add dindex p j) b.b_support;
    { bk = b; bk_dindex = dindex }

  let bracket s m =
    while Array.length s.s_brackets <= m do
      let bk = make_bracket s.s_dm (Array.length s.s_brackets) in
      s.s_brackets <- Array.append s.s_brackets [| bk |]
    done;
    s.s_brackets.(m)

  (* Propagate [d(p) = v] into one bracket.  The radius is the bracket's
     frozen builder radius. *)
  let bracket_set bk v p =
    let inst = bk.bk.b_inst in
    match Point.Tbl.find_opt bk.bk_dindex p with
    | Some j -> Transport.set_demand inst j v
    | None ->
        let radius = bk.bk.b_radius in
        let j = Transport.add_demand inst in
        Point.Tbl.add bk.bk_dindex p j;
        (* Suppliers: the part of B_radius(p) the frontier has not
           reached yet.  [absorb] returns them and keeps the shell exact
           for any future extension. *)
        List.iter
          (fun q -> Point.Tbl.add bk.bk.b_index q (Transport.add_supplier inst))
          (Ball.absorb bk.bk.b_frontier p);
        (* Links: every supplier within distance <= radius of [p]; after
           the absorb every such point is registered. *)
        for k = 0 to radius do
          Ball.iter_sphere ~center:p ~radius:k (fun q ->
              match Point.Tbl.find_opt bk.bk.b_index q with
              | Some i -> Transport.add_link inst ~supplier:i ~demand:j
              | None -> ())
        done;
        Transport.set_demand inst j v

  let apply s p =
    let v = Demand_map.value s.s_dm p in
    Array.iter (fun bk -> bracket_set bk v p) s.s_brackets;
    Metrics.incr m_session_events;
    s.s_dirty <- true

  let add_job s p =
    if Point.dim p <> Demand_map.dim s.s_dm then
      invalid_arg "Oracle.Session.add_job: dimension mismatch";
    let p = Array.copy p in
    s.s_dm <- Demand_map.add s.s_dm p 1;
    apply s p

  let remove_job s p =
    (* raises Invalid_argument when no job lives at [p] *)
    s.s_dm <- Demand_map.remove s.s_dm p 1;
    apply s p

  let recompute s =
    if Demand_map.total s.s_dm = 0 then 0.0
    else
      let rec scan m =
        let bk = bracket s m in
        let v =
          match Transport.min_uniform_supply bk.bk.b_inst ~scale:s.s_scale with
          | Some v -> v
          | None ->
              (* Impossible: every live demand site links to itself. *)
              assert false
        in
        let candidate = Float.max (float_of_int m) v in
        if candidate < float_of_int (m + 1) then candidate else scan (m + 1)
      in
      scan 0

  let omega_star s =
    if s.s_dirty then begin
      Metrics.incr m_session_queries;
      let t0 = Metrics.now_ns () in
      s.s_value <- recompute s;
      Metrics.observe m_session_latency (Metrics.now_ns () -. t0);
      s.s_dirty <- false
    end;
    s.s_value

  let witness s = witness ~scale:s.s_scale s.s_dm
end
