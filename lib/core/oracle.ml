let default_scale = 720720 (* lcm(1..14): exact for small dual denominators *)

let m_lp_calls = Metrics.counter "oracle.lp_calls"
let m_radius_brackets = Metrics.counter "oracle.radius_brackets"
let m_omega_star = Metrics.timer "oracle.omega_star"

let build_instance dm ~radius =
  let support = Array.of_list (Demand_map.support dm) in
  let suppliers =
    Ball.dilate_set (Array.to_list support) ~radius |> Point.Set.elements
    |> Array.of_list
  in
  let inst =
    Transport.create ~n_suppliers:(Array.length suppliers)
      ~n_demands:(Array.length support)
  in
  Array.iteri (fun j p -> Transport.set_demand inst j (Demand_map.value dm p)) support;
  Array.iteri
    (fun i s ->
      Array.iteri
        (fun j p ->
          if Point.l1_dist s p <= radius then Transport.add_link inst ~supplier:i ~demand:j)
        support)
    suppliers;
  inst

let lp_value ?(scale = default_scale) ~radius dm =
  if radius < 0 then invalid_arg "Oracle.lp_value: negative radius";
  Metrics.incr m_lp_calls;
  if Demand_map.total dm = 0 then 0.0
  else begin
    let inst = build_instance dm ~radius in
    match Transport.min_uniform_supply inst ~scale with
    | Some v -> v
    | None ->
        (* Impossible: every demand site is its own supplier at radius >= 0. *)
        assert false
  end

let omega_star ?(scale = default_scale) dm =
  if Demand_map.total dm = 0 then 0.0
  else
    Metrics.time m_omega_star (fun () ->
        (* ω lives in some bracket [m, m+1); there the admissible radius is m
           and the minimal capacity is lp_value m, so the bracket's optimum is
           max(m, lp_value m) when that stays below m+1. *)
        let rec scan m =
          Metrics.incr m_radius_brackets;
          let v = lp_value ~scale ~radius:m dm in
          let candidate = Float.max (float_of_int m) v in
          if candidate < float_of_int (m + 1) then candidate else scan (m + 1)
        in
        scan 0)

let lower_bound_woff = omega_star

let witness ?(scale = default_scale) dm =
  if Demand_map.total dm = 0 then None
  else begin
    let star = omega_star ~scale dm in
    let m = int_of_float (Float.floor star) in
    (* If ω* sits strictly inside the bracket [m, m+1), the binding
       constraint is the radius-m transport; if ω* = m exactly, it is the
       bracket floor and the violator lives at radius m-1 and supply just
       below m (the previous bracket is infeasible throughout). *)
    let radius, supply_just_below =
      if star > float_of_int m +. 1e-9 || m = 0 then (m, star)
      else (m - 1, float_of_int m)
    in
    let inst = build_instance dm ~radius in
    let u = max 0 (int_of_float (Float.ceil (supply_just_below *. float_of_int scale)) - 1) in
    (* Scale demands to match the scaled supplies. *)
    let scaled = Transport.create
        ~n_suppliers:(Transport.n_suppliers inst)
        ~n_demands:(Transport.n_demands inst)
    in
    for j = 0 to Transport.n_demands inst - 1 do
      Transport.set_demand scaled j (Transport.demand inst j * scale)
    done;
    (* Replay the same links. *)
    let support = Array.of_list (Demand_map.support dm) in
    let suppliers =
      Ball.dilate_set (Array.to_list support) ~radius |> Point.Set.elements
      |> Array.of_list
    in
    Array.iteri
      (fun i s ->
        Array.iteri
          (fun j p ->
            if Point.l1_dist s p <= radius then
              Transport.add_link scaled ~supplier:i ~demand:j)
          support)
      suppliers;
    match Transport.infeasibility_witness scaled ~supply:(fun _ -> u) with
    | None -> None (* resolution too coarse to exhibit infeasibility *)
    | Some demand_indices ->
        let points = List.map (fun j -> support.(j)) demand_indices in
        let total =
          List.fold_left (fun acc p -> acc + Demand_map.value dm p) 0 points
        in
        Some (points, Omega.of_points points ~total)
  end
