let default_scale = 720720 (* lcm(1..14): exact for small dual denominators *)

let m_lp_calls = Metrics.counter "oracle.lp_calls"
let m_radius_brackets = Metrics.counter "oracle.radius_brackets"
let m_omega_star = Metrics.timer "oracle.omega_star"

(* Incremental transport-instance builder.  Suppliers are the grid points
   within the current radius of the demand support; rather than re-running
   the all-pairs L1 scan at every radius, the builder keeps a BFS frontier
   over the support and, per radius step, registers only the new shell of
   suppliers and adds only the links at exactly the new distance (by
   enumerating each demand's L1 sphere).  The link set at radius m is a
   strict prefix of the set at radius m+1, so one builder serves the whole
   bracket scan of [omega_star]. *)
type builder = {
  b_support : Point.t array;
  b_inst : Transport.t;
  b_frontier : Ball.frontier;
  b_index : int Point.Tbl.t; (* supplier point -> supplier index *)
  mutable b_radius : int;
}

let builder_create dm ~demand_scale =
  let support = Array.of_list (Demand_map.support dm) in
  let inst = Transport.create ~n_suppliers:0 ~n_demands:(Array.length support) in
  Array.iteri
    (fun j p ->
      Transport.set_demand inst j (Energy.mul (Demand_map.value dm p) demand_scale))
    support;
  let fr = Ball.frontier (Array.to_list support) in
  let index = Point.Tbl.create 1024 in
  List.iter
    (fun p -> Point.Tbl.add index p (Transport.add_supplier inst))
    (Ball.frontier_shell fr);
  (* Radius 0: every demand site is served by the supplier at its own
     position. *)
  Array.iteri
    (fun j p ->
      match Point.Tbl.find_opt index p with
      | Some i -> Transport.add_link inst ~supplier:i ~demand:j
      | None -> assert false)
    support;
  { b_support = support; b_inst = inst; b_frontier = fr; b_index = index; b_radius = 0 }

let builder_extend b =
  (* New suppliers first, so shell points at exactly the new distance from
     some demand are linkable below. *)
  let shell = Ball.expand b.b_frontier in
  List.iter
    (fun p -> Point.Tbl.add b.b_index p (Transport.add_supplier b.b_inst))
    shell;
  let r = b.b_radius + 1 in
  b.b_radius <- r;
  (* Link delta: the pairs at L1 distance exactly r.  Every such supplier
     is already registered (its distance to the support set is <= r). *)
  Array.iteri
    (fun j p ->
      Ball.iter_sphere ~center:p ~radius:r (fun q ->
          match Point.Tbl.find_opt b.b_index q with
          | Some i -> Transport.add_link b.b_inst ~supplier:i ~demand:j
          | None -> ()))
    b.b_support

let builder_to_radius b radius =
  while b.b_radius < radius do
    builder_extend b
  done

let build_instance dm ~radius =
  let b = builder_create dm ~demand_scale:1 in
  builder_to_radius b radius;
  b.b_inst

let lp_value_of_inst inst ~scale =
  Metrics.incr m_lp_calls;
  match Transport.min_uniform_supply inst ~scale with
  | Some v -> v
  | None ->
      (* Impossible: every demand site is its own supplier at radius >= 0. *)
      assert false

let lp_value ?(scale = default_scale) ~radius dm =
  if radius < 0 then invalid_arg "Oracle.lp_value: negative radius";
  if Demand_map.total dm = 0 then begin
    Metrics.incr m_lp_calls;
    0.0
  end
  else lp_value_of_inst (build_instance dm ~radius) ~scale

let omega_star ?(scale = default_scale) dm =
  if Demand_map.total dm = 0 then 0.0
  else
    Metrics.time m_omega_star (fun () ->
        (* ω lives in some bracket [m, m+1); there the admissible radius is m
           and the minimal capacity is lp_value m, so the bracket's optimum is
           max(m, lp_value m) when that stays below m+1.  The incremental
           builder carries the radius-m instance into bracket m+1 as a
           delta — and because every bracket queries the same Transport
           instance at the same scale, the transport's cached parametric
           driver (Paramflow) carries its flow and breakpoint family across
           brackets too: each lp call costs one warm re-sweep, not a fresh
           supply search. *)
        let b = builder_create dm ~demand_scale:1 in
        let rec scan m =
          Metrics.incr m_radius_brackets;
          builder_to_radius b m;
          let v = lp_value_of_inst b.b_inst ~scale in
          let candidate = Float.max (float_of_int m) v in
          if candidate < float_of_int (m + 1) then candidate else scan (m + 1)
        in
        scan 0)

let lower_bound_woff = omega_star

let witness ?(scale = default_scale) dm =
  if Demand_map.total dm = 0 then None
  else begin
    let star = omega_star ~scale dm in
    let m = int_of_float (Float.floor star) in
    (* If ω* sits strictly inside the bracket [m, m+1), the binding
       constraint is the radius-m transport; if ω* = m exactly, it is the
       bracket floor and the violator lives at radius m-1 and supply just
       below m (the previous bracket is infeasible throughout).  Both
       bracket configurations are probed (through the Domain pool when
       workers are available); the binding one is preferred and the other
       serves as a fallback when the 1/scale resolution is too coarse. *)
    let configs =
      if star > float_of_int m +. 1e-9 || m = 0 then [| (m, star) |]
      else [| (m - 1, float_of_int m); (m, star) |]
    in
    let try_config (radius, supply_just_below) =
      let b = builder_create dm ~demand_scale:scale in
      builder_to_radius b radius;
      let u =
        max 0 (int_of_float (Float.ceil (supply_just_below *. float_of_int scale)) - 1)
      in
      match Transport.infeasibility_witness b.b_inst ~supply:(fun _ -> u) with
      | None -> None (* resolution too coarse to exhibit infeasibility *)
      | Some demand_indices ->
          let points = List.map (fun j -> b.b_support.(j)) demand_indices in
          let total =
            List.fold_left (fun acc p -> acc + Demand_map.value dm p) 0 points
          in
          Some (points, Omega.of_points points ~total)
    in
    let results = Pool.map try_config configs in
    Array.fold_left
      (fun acc r -> match acc with Some _ -> acc | None -> r)
      None results
  end
