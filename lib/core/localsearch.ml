type load = { site : Point.t; units : int }

let m_moves_tried = Metrics.counter "localsearch.moves_tried"
let m_moves_accepted = Metrics.counter "localsearch.moves_accepted"
let m_rounds = Metrics.counter "localsearch.rounds"

type solution = {
  window : Box.t;
  assignments : (int * load list) list;
}

(* --- open-path TSP from a fixed depot: nearest-neighbor + path 2-opt --- *)

let route_length ~home sites =
  match sites with
  | [] -> 0
  | _ ->
      (* Nearest-neighbor order. *)
      let remaining = ref sites in
      let order = ref [] in
      let current = ref home in
      while !remaining <> [] do
        let best, rest =
          List.fold_left
            (fun (best, rest) p ->
              match best with
              | None -> (Some p, rest)
              | Some b ->
                  if Point.l1_dist !current p < Point.l1_dist !current b then
                    (Some p, b :: rest)
                  else (Some b, p :: rest))
            (None, []) !remaining
        in
        (match best with
        | None -> ()
        | Some b ->
            order := b :: !order;
            current := b;
            remaining := rest)
      done;
      let arr = Array.of_list (home :: List.rev !order) in
      let n = Array.length arr in
      (* Path 2-opt with the depot pinned at index 0: reversing
         arr[i..j] (1 <= i <= j <= n-1) replaces edges (i-1,i) and
         (j,j+1); the second edge vanishes when j is the free end. *)
      let dist i j = Point.l1_dist arr.(i) arr.(j) in
      let improved = ref true in
      let rounds = ref 0 in
      while !improved && !rounds < 30 do
        improved := false;
        incr rounds;
        for i = 1 to n - 2 do
          for j = i + 1 to n - 1 do
            let before = dist (i - 1) i + if j < n - 1 then dist j (j + 1) else 0 in
            let after = dist (i - 1) j + if j < n - 1 then dist i (j + 1) else 0 in
            if after < before then begin
              let a = ref i and b = ref j in
              while !a < !b do
                let tmp = arr.(!a) in
                arr.(!a) <- arr.(!b);
                arr.(!b) <- tmp;
                incr a;
                decr b
              done;
              improved := true
            end
          done
        done
      done;
      let total = ref 0 in
      for i = 0 to n - 2 do
        total := !total + dist i (i + 1)
      done;
      !total

let vehicle_energy ~window vehicle loads =
  let home = Box.point_of_index window vehicle in
  let sites = List.map (fun l -> l.site) loads in
  let units = List.fold_left (fun acc l -> acc + l.units) 0 loads in
  Energy.add (route_length ~home sites) units

let peak_energy sol =
  List.fold_left
    (fun acc (v, loads) -> max acc (vehicle_energy ~window:sol.window v loads))
    0 sol.assignments

let of_plan (plan : Planner.t) =
  let loads = Hashtbl.create 64 in
  let push vehicle load =
    if load.units > 0 then
      Hashtbl.replace loads vehicle
        (load :: Option.value ~default:[] (Hashtbl.find_opt loads vehicle))
  in
  List.iter
    (fun (a : Planner.assignment) ->
      let vehicle = Box.index plan.Planner.window a.Planner.home in
      push vehicle { site = a.Planner.home; units = a.Planner.serve_at_home };
      match a.Planner.target with
      | None -> ()
      | Some (site, units) -> push vehicle { site; units })
    plan.Planner.assignments;
  {
    window = plan.Planner.window;
    assignments = Hashtbl.fold (fun v ls acc -> (v, ls) :: acc) loads [];
  }

let validate sol dm =
  if not (Box.mem sol.window (Box.point_of_index sol.window 0)) then
    Error "corrupt window"
  else begin
    let served = Point.Tbl.create 64 in
    let ok = ref (Ok ()) in
    List.iter
      (fun (v, loads) ->
        if v < 0 || v >= Box.volume sol.window then
          ok := Error (Printf.sprintf "vehicle %d outside the window" v);
        List.iter
          (fun l ->
            if l.units < 0 then ok := Error "negative load";
            Point.Tbl.replace served l.site
              (l.units + Option.value ~default:0 (Point.Tbl.find_opt served l.site)))
          loads)
      sol.assignments;
    Demand_map.iter dm (fun p d ->
        let got = Option.value ~default:0 (Point.Tbl.find_opt served p) in
        if got <> d && !ok = Ok () then
          ok := Error (Printf.sprintf "site %s served %d of %d" (Point.to_string p) got d));
    Point.Tbl.iter
      (fun p got ->
        if got <> Demand_map.value dm p && !ok = Ok () then
          ok :=
            Error
              (Printf.sprintf "site %s over-served (%d vs %d)" (Point.to_string p)
                 got (Demand_map.value dm p)))
      served;
    !ok
  end

(* Mutable working state for the descent. *)
type state = {
  window : Box.t;
  loads : (Point.t, int) Hashtbl.t array; (* per vehicle: site -> units *)
  energy : int array;
}

let state_of_solution (sol : solution) =
  let n = Box.volume sol.window in
  let loads = Array.init n (fun _ -> Hashtbl.create 4) in
  List.iter
    (fun (v, ls) ->
      List.iter
        (fun l ->
          if l.units > 0 then
            Hashtbl.replace loads.(v) l.site
              (l.units + Option.value ~default:0 (Hashtbl.find_opt loads.(v) l.site)))
        ls)
    sol.assignments;
  let energy = Array.make n 0 in
  let recompute st v =
    let ls =
      Hashtbl.fold (fun site units acc -> { site; units } :: acc) st.(v) []
    in
    vehicle_energy ~window:sol.window v ls
  in
  let st = { window = sol.window; loads; energy } in
  for v = 0 to n - 1 do
    energy.(v) <- recompute loads v
  done;
  st

let recompute_energy st v =
  let ls = Hashtbl.fold (fun site units acc -> { site; units } :: acc) st.loads.(v) [] in
  st.energy.(v) <- vehicle_energy ~window:st.window v ls

let solution_of_state st =
  let assignments = ref [] in
  Array.iteri
    (fun v tbl ->
      let ls = Hashtbl.fold (fun site units acc -> { site; units } :: acc) tbl [] in
      if ls <> [] then assignments := (v, ls) :: !assignments)
    st.loads;
  { window = st.window; assignments = !assignments }

let apply_move st ~src ~dst ~site ~amount =
  let take tbl =
    let current = Option.value ~default:0 (Hashtbl.find_opt tbl site) in
    if current - amount <= 0 then Hashtbl.remove tbl site
    else Hashtbl.replace tbl site (current - amount)
  in
  take st.loads.(src);
  Hashtbl.replace st.loads.(dst)
    site
    (amount + Option.value ~default:0 (Hashtbl.find_opt st.loads.(dst) site));
  recompute_energy st src;
  recompute_energy st dst

let improve ?(rounds = 400) ?(seed = 0) sol dm =
  (* [dm] and [seed] are part of the interface for future randomized
     variants; the current descent is deterministic and fully determined
     by the seed solution. *)
  ignore dm;
  ignore seed;
  let st = state_of_solution sol in
  let n = Array.length st.energy in
  let continue = ref true in
  let budget = ref rounds in
  while !continue && !budget > 0 do
    decr budget;
    Metrics.incr m_rounds;
    (* Worst vehicle and the runner-up peak without it. *)
    let worst = ref 0 in
    for v = 1 to n - 1 do
      if st.energy.(v) > st.energy.(!worst) then worst := v
    done;
    let src = !worst in
    let peak = st.energy.(src) in
    let others_peak = ref 0 in
    for v = 0 to n - 1 do
      if v <> src && st.energy.(v) > !others_peak then others_peak := st.energy.(v)
    done;
    if peak = 0 then continue := false
    else begin
      (* Enumerate chunk moves off the worst vehicle; keep the best
         strictly-improving one. *)
      let best : (Point.t * int * int * int) option ref = ref None in
      (* (site, amount, dst, resulting peak) *)
      Hashtbl.iter
        (fun site units ->
          let chunks =
            List.sort_uniq Int.compare [ units; (units + 1) / 2; 1 ]
            |> List.filter (fun c -> c > 0)
          in
          for dst = 0 to n - 1 do
            if dst <> src then
              List.iter
                (fun amount ->
                  (* Cheap pre-filter: the destination must stand a chance
                     of staying under the current peak. *)
                  let dist_dst =
                    Point.l1_dist (Box.point_of_index st.window dst) site
                  in
                  if Energy.sum [ st.energy.(dst); amount; dist_dst ] < peak then begin
                    Metrics.incr m_moves_tried;
                    apply_move st ~src ~dst ~site ~amount;
                    let new_peak =
                      max !others_peak (max st.energy.(src) st.energy.(dst))
                    in
                    (if new_peak < peak then
                       match !best with
                       | Some (_, _, _, p) when p <= new_peak -> ()
                       | _ -> best := Some (site, amount, dst, new_peak));
                    (* Undo. *)
                    apply_move st ~src:dst ~dst:src ~site ~amount
                  end)
                chunks
          done)
        st.loads.(src);
      match !best with
      | None -> continue := false
      | Some (site, amount, dst, _) ->
          Metrics.incr m_moves_accepted;
          apply_move st ~src ~dst ~site ~amount
    end
  done;
  solution_of_state st

let solve ?rounds ?seed dm =
  let plan = Planner.plan dm in
  improve ?rounds ?seed (of_plan plan) dm
