type assignment = {
  home : Point.t;
  serve_at_home : int;
  target : (Point.t * int) option;
}

type t = {
  dim : int;
  omega : float;
  side : int;
  budget : int;
  window : Box.t;
  assignments : assignment list;
}

let window_for bbox ~side =
  (* Expand the bounding box so that each axis is an exact multiple of
     [side]: the partition then consists of full cubes only, which is what
     the headcount argument of Corollary 2.2.7 needs. *)
  let n = Box.dim bbox in
  let lo = Array.init n (fun i -> bbox.Box.lo.(i)) in
  let hi =
    Array.init n (fun i ->
        let extent = Box.side bbox i in
        let tiles = (extent + side - 1) / side in
        bbox.Box.lo.(i) + (tiles * side) - 1)
  in
  Box.make ~lo ~hi

let plan_cube dm ~budget cube =
  (* Home service first. *)
  let residuals = ref [] in
  let helpers_needed = ref 0 in
  let assignments = ref [] in
  Box.iter cube (fun p ->
      let d = Demand_map.value dm p in
      if d > 0 then begin
        let at_home = min d budget in
        assignments := { home = p; serve_at_home = at_home; target = None } :: !assignments;
        let residual = d - at_home in
        if residual > 0 then begin
          residuals := (p, residual) :: !residuals;
          helpers_needed := !helpers_needed + ((residual + budget - 1) / budget)
        end
      end);
  (* Helper pool: every vehicle of the cube relocates at most once.  Those
     already listed above keep their home service and gain a target; the
     rest start fresh. *)
  if !helpers_needed > Box.volume cube then
    failwith "Planner.plan: headcount guarantee violated (Corollary 2.2.7)";
  let served_home = Point.Tbl.create 64 in
  List.iter (fun a -> Point.Tbl.replace served_home a.home a) !assignments;
  let pool = Queue.create () in
  Box.iter cube (fun p -> Queue.add p pool);
  let final = ref [] in
  let take_helper () =
    (* Vehicles are used in cube order; each appears exactly once. *)
    Queue.pop pool
  in
  List.iter
    (fun (x, residual) ->
      let remaining = ref residual in
      while !remaining > 0 do
        let h = take_helper () in
        let amount = min !remaining budget in
        remaining := !remaining - amount;
        let at_home =
          match Point.Tbl.find_opt served_home h with
          | Some a ->
              Point.Tbl.remove served_home h;
              a.serve_at_home
          | None -> 0
        in
        final := { home = h; serve_at_home = at_home; target = Some (x, amount) } :: !final
      done)
    !residuals;
  (* Vehicles that served at home but were not drafted as helpers. *)
  Point.Tbl.iter (fun _ a -> final := a :: !final) served_home;
  !final

let plan dm =
  let dim = Demand_map.dim dm in
  let omega, side = Omega.cube_fixpoint_with_side dm in
  match Demand_map.bounding_box dm with
  | None ->
      {
        dim;
        omega;
        side;
        budget = 0;
        window = Box.cube_at_origin ~dim ~side:1;
        assignments = [];
      }
  | Some bbox ->
      let budget =
        max 1 (int_of_float (Float.ceil (float_of_int (Energy.pow 3 dim) *. omega)))
      in
      let window = window_for bbox ~side in
      let cubes = Box.partition_cubes window ~side in
      (* Cubes are independent (plan_cube only reads the demand map), so
         they fan out through the Domain pool; results come back in cube
         order, keeping the plan deterministic. *)
      let assignments =
        Pool.map (fun cube -> plan_cube dm ~budget cube) (Array.of_list cubes)
        |> Array.to_list |> List.concat
      in
      { dim; omega; side; budget; window; assignments }

let energy_of a =
  let travel = match a.target with None -> 0 | Some (p, _) -> Point.l1_dist a.home p in
  let remote = match a.target with None -> 0 | Some (_, k) -> k in
  Energy.sum [ a.serve_at_home; travel; remote ]

let max_energy t =
  List.fold_left (fun acc a -> max acc (energy_of a)) 0 t.assignments

let energy_bound t =
  float_of_int (2 * t.budget) +. float_of_int (t.dim * (t.side - 1))

let theorem_bound ~dim omega =
  float_of_int (Energy.add (Energy.scale 2 (Energy.pow 3 dim)) dim) *. omega

let validate t dm =
  let ( let* ) r f = Result.bind r f in
  (* Each vehicle appears at most once. *)
  let seen = Point.Tbl.create 64 in
  let* () =
    List.fold_left
      (fun acc a ->
        let* () = acc in
        if Point.Tbl.mem seen a.home then
          Error (Printf.sprintf "vehicle %s assigned twice" (Point.to_string a.home))
        else begin
          Point.Tbl.replace seen a.home ();
          Ok ()
        end)
      (Ok ()) t.assignments
  in
  (* Energy and confinement. *)
  let* () =
    List.fold_left
      (fun acc a ->
        let* () = acc in
        if float_of_int (energy_of a) > energy_bound t +. 1e-9 then
          Error
            (Printf.sprintf "vehicle %s exceeds the energy bound: %d > %.3f"
               (Point.to_string a.home) (energy_of a) (energy_bound t))
        else begin
          match a.target with
          | None -> Ok ()
          | Some (p, _) ->
              let cube = Box.containing_cube t.window ~side:t.side a.home in
              if Box.mem cube p then Ok ()
              else
                Error
                  (Printf.sprintf "vehicle %s leaves its cube" (Point.to_string a.home))
        end)
      (Ok ()) t.assignments
  in
  (* Exact service. *)
  let served = Point.Tbl.create 64 in
  let bump p k =
    Point.Tbl.replace served p (k + Option.value ~default:0 (Point.Tbl.find_opt served p))
  in
  List.iter
    (fun a ->
      if a.serve_at_home > 0 then bump a.home a.serve_at_home;
      match a.target with None -> () | Some (p, k) -> bump p k)
    t.assignments;
  let mismatch = ref None in
  Demand_map.iter dm (fun p d ->
      let got = Option.value ~default:0 (Point.Tbl.find_opt served p) in
      if got <> d && !mismatch = None then
        mismatch :=
          Some (Printf.sprintf "position %s served %d of %d" (Point.to_string p) got d));
  Point.Tbl.iter
    (fun p got ->
      if Demand_map.value dm p <> got && !mismatch = None then
        mismatch :=
          Some
            (Printf.sprintf "position %s over-served: %d vs demand %d"
               (Point.to_string p) got (Demand_map.value dm p)))
    served;
  match !mismatch with None -> Ok () | Some msg -> Error msg
