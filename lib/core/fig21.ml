type move = { from_ : Point.t; to_ : Point.t; serve : int }

type strategy = { moves : move list; capacity_used : int }

let line_demand ~len ~d =
  Demand_map.of_alist 2 (List.init len (fun i -> ([| i; 0 |], d)))

let point_demand ~d = Demand_map.of_alist 2 [ ([| 0; 0 |], d) ]

let energy_of m = Energy.add (Point.l1_dist m.from_ m.to_) m.serve

let finish moves =
  let capacity_used = List.fold_left (fun acc m -> max acc (energy_of m)) 0 moves in
  { moves; capacity_used }

let split_units total workers =
  (* Fair split of [total] units among [workers] vehicles: the first
     [total mod workers] get one extra. *)
  let base = total / workers and extra = total mod workers in
  List.init workers (fun i -> base + if i < extra then 1 else 0)

let line ~len ~d =
  if len <= 0 || d < 0 then invalid_arg "Fig21.line: bad parameters";
  if d = 0 then { moves = []; capacity_used = 0 }
  else begin
    let r = int_of_float (Float.ceil (Omega.example_line_w2 ~d)) in
    let column x =
      (* The 2r+1 vehicles of column x walk to (x, 0) and split d. *)
      let helpers = List.init ((2 * r) + 1) (fun k -> [| x; k - r |]) in
      List.map2
        (fun home serve -> { from_ = home; to_ = [| x; 0 |]; serve })
        helpers
        (split_units d ((2 * r) + 1))
      |> List.filter (fun m -> m.serve > 0 || Point.equal m.from_ m.to_)
    in
    finish (List.concat_map column (List.init len (fun i -> i)))
  end

let point ~d =
  if d < 0 then invalid_arg "Fig21.point: negative demand";
  if d = 0 then { moves = []; capacity_used = 0 }
  else begin
    let r = int_of_float (Float.ceil (Omega.example_point_w3 ~d)) in
    let square = Box.make ~lo:[| -r; -r |] ~hi:[| r; r |] in
    let helpers = Box.points square in
    let moves =
      List.map2
        (fun home serve -> { from_ = home; to_ = [| 0; 0 |]; serve })
        helpers
        (split_units d (List.length helpers))
      |> List.filter (fun m -> m.serve > 0)
    in
    finish moves
  end

let validate strategy dm =
  let seen = Point.Tbl.create 64 in
  let served = Point.Tbl.create 16 in
  let problem = ref None in
  List.iter
    (fun m ->
      if Point.Tbl.mem seen m.from_ && !problem = None then
        problem := Some (Printf.sprintf "vehicle %s used twice" (Point.to_string m.from_));
      Point.Tbl.replace seen m.from_ ();
      if m.serve < 0 && !problem = None then problem := Some "negative service";
      if energy_of m > strategy.capacity_used && !problem = None then
        problem := Some "a move exceeds the reported capacity";
      Point.Tbl.replace served m.to_
        (m.serve + Option.value ~default:0 (Point.Tbl.find_opt served m.to_)))
    strategy.moves;
  Demand_map.iter dm (fun p want ->
      let got = Option.value ~default:0 (Point.Tbl.find_opt served p) in
      if got <> want && !problem = None then
        problem :=
          Some (Printf.sprintf "site %s served %d of %d" (Point.to_string p) got want));
  match !problem with None -> Ok () | Some msg -> Error msg
