(** Exact solver for the paper's transportation programs (2.1) and (2.8).

    Program (2.1) fixes a transport radius [r] and asks for the minimal
    uniform vehicle capacity [ω] such that flows [f_ij] with [‖i−j‖ <= r]
    cover all demands; Lemma 2.2.2 identifies its value with
    [max_T Σ_{x∈T} d(x) / |N_r(T)|].  Program (2.8) couples the radius to
    the capacity ([r = ω]) and its value is [ω* = max_T ω_T]
    (Lemma 2.2.3), the paper's lower bound on [Woff] (Corollary 2.2.4).

    Instead of a numeric LP solver (unavailable offline) we use the exact
    combinatorial equivalent: for fixed radius, feasibility at capacity [ω]
    is a bipartite max-flow check, and the minimal capacity is found by
    binary search on a [1/scale] grid ({!Transport.min_uniform_supply}).
    Suppliers are the grid vertices within distance [r] of the demand
    support — the only vehicles that can participate. *)

val build_instance : Demand_map.t -> radius:int -> Transport.t
(** The transport instance of program (2.1) at the given radius: demand
    sites as demands, the grid points within L1 distance [radius] of the
    support as suppliers, links between pairs at distance [<= radius].
    Built incrementally by shell dilation (see [docs/PERF.md]). *)

val lp_value : ?scale:int -> radius:int -> Demand_map.t -> float
(** Value of program (2.1) at the given integer radius, resolved to
    [1/scale] (default [720720 = lcm(1..14)], exact whenever the optimal
    dual denominator [|N_r(T)|] divides it).  0 for empty demand. *)

val omega_star : ?scale:int -> Demand_map.t -> float
(** Value of program (2.8): the minimal [ω] such that the radius-[⌊ω⌋]
    transport is feasible at capacity [ω] — the paper's
    [ω* = max_T ω_T].  Scans integer radius brackets exactly as
    {!Omega.solve} does. *)

val lower_bound_woff : ?scale:int -> Demand_map.t -> float
(** Synonym of {!omega_star}: Corollary 2.2.4, [Woff >= ω*]. *)

val witness : ?scale:int -> Demand_map.t -> (Point.t list * float) option
(** A tight set for program (2.8): demand positions [T] whose [ω_T]
    matches {!omega_star} (up to the [1/scale] resolution), extracted
    from a minimum cut of the just-infeasible transport.  [None] for
    empty demand.  This is the certificate the duality proof of
    Lemma 2.2.3 promises. *)
