(** Exact solver for the paper's transportation programs (2.1) and (2.8).

    Program (2.1) fixes a transport radius [r] and asks for the minimal
    uniform vehicle capacity [ω] such that flows [f_ij] with [‖i−j‖ <= r]
    cover all demands; Lemma 2.2.2 identifies its value with
    [max_T Σ_{x∈T} d(x) / |N_r(T)|].  Program (2.8) couples the radius to
    the capacity ([r = ω]) and its value is [ω* = max_T ω_T]
    (Lemma 2.2.3), the paper's lower bound on [Woff] (Corollary 2.2.4).

    Instead of a numeric LP solver (unavailable offline) we use the exact
    combinatorial equivalent: for fixed radius, feasibility at capacity [ω]
    is a bipartite max-flow check, and the minimal capacity is found by
    binary search on a [1/scale] grid ({!Transport.min_uniform_supply}).
    Suppliers are the grid vertices within distance [r] of the demand
    support — the only vehicles that can participate. *)

val build_instance : Demand_map.t -> radius:int -> Transport.t
(** The transport instance of program (2.1) at the given radius: demand
    sites as demands, the grid points within L1 distance [radius] of the
    support as suppliers, links between pairs at distance [<= radius].
    Built incrementally by shell dilation (see [docs/PERF.md]). *)

val lp_value : ?scale:int -> radius:int -> Demand_map.t -> float
(** Value of program (2.1) at the given integer radius, resolved to
    [1/scale] (default [720720 = lcm(1..14)], exact whenever the optimal
    dual denominator [|N_r(T)|] divides it).  0 for empty demand. *)

val omega_star : ?scale:int -> Demand_map.t -> float
(** Value of program (2.8): the minimal [ω] such that the radius-[⌊ω⌋]
    transport is feasible at capacity [ω] — the paper's
    [ω* = max_T ω_T].  Scans integer radius brackets exactly as
    {!Omega.solve} does. *)

val lower_bound_woff : ?scale:int -> Demand_map.t -> float
(** Synonym of {!omega_star}: Corollary 2.2.4, [Woff >= ω*]. *)

val witness : ?scale:int -> Demand_map.t -> (Point.t list * float) option
(** A tight set for program (2.8): demand positions [T] whose [ω_T]
    matches {!omega_star} (up to the [1/scale] resolution), extracted
    from a minimum cut of the just-infeasible transport.  [None] for
    empty demand.  This is the certificate the duality proof of
    Lemma 2.2.3 promises. *)

(** Streaming oracle sessions: jobs arrive and retire one at a time and
    [ω*] is maintained incrementally instead of recomputed from scratch.

    A session keeps one persistent transport instance per integer radius
    bracket the ω* scan has ever visited.  A single-job delta costs a
    sink-capacity patch per bracket on the cached parametric arena
    (plus, for a never-seen position, one ball absorption and sphere
    enumeration), and the next {!Session.omega_star} re-runs the bracket
    scan as warm {!Paramflow} re-sweeps of the retained flow — a handful
    of max-flow probes, never an arena rebuild.  Values are bit-identical
    to {!omega_star} on the same demand at every step (see
    [docs/STREAMING.md] for the invalidation rules and cost model). *)
module Session : sig
  type t

  val create : ?scale:int -> Demand_map.t -> t
  (** A session seeded with an initial demand (often
      [Demand_map.empty l]).  [scale] is fixed for the session's
      lifetime (default {!omega_star}'s).  Bracket instances are built
      lazily at the first query. *)

  val add_job : t -> Point.t -> unit
  (** One unit job arrives at the point.  O(1) sink-cap patch per live
      bracket; a never-seen position additionally absorbs its supplier
      ball into each bracket's frontier.
      @raise Invalid_argument on dimension mismatch. *)

  val remove_job : t -> Point.t -> unit
  (** One unit job at the point retires.  The surplus flow is cancelled
      in place at the next query ({!Maxflow.drain_sink_caps}); the
      arena, suppliers and links are all retained.
      @raise Invalid_argument when no job lives at the point. *)

  val omega_star : t -> float
  (** The current [ω*]; cached between mutations, recomputed
      incrementally when dirty.  Bit-identical to
      [Oracle.omega_star (demand t)]. *)

  val demand : t -> Demand_map.t
  (** The live demand snapshot (immutable). *)

  val scale : t -> int

  val witness : t -> (Point.t list * float) option
  (** Tight-set certificate for the current demand; delegates to the
      stateless {!Oracle.witness}. *)
end
