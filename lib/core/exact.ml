(* Lattice points at L1 distance exactly r from a vertex of Z^dim:
   the difference of consecutive ball volumes. *)
let shell ~dim r =
  if r < 0 then 0
  else if r = 0 then 1
  else Ball.ball_volume ~dim ~radius:r - Ball.ball_volume ~dim ~radius:(r - 1)

let point_deliverable ~dim ~w =
  if w <= 0.0 then 0.0
  else begin
    let m = int_of_float (Float.floor w) in
    let acc = ref 0.0 in
    for r = 0 to m do
      acc := !acc +. (float_of_int (shell ~dim r) *. (w -. float_of_int r))
    done;
    !acc
  end

let point_capacity ~dim ~demand =
  if demand < 0 then invalid_arg "Exact.point_capacity: negative demand";
  if demand = 0 then 0.0
  else begin
    let target = float_of_int demand in
    (* Inside the bracket [m, m+1) the deliverable energy is linear in w:
       w·V(m) - Σ_{r<=m} r·shell(r).  Scan brackets for the first that can
       reach the target. *)
    let rec scan m volume weighted =
      (* volume = V(m) = Σ_{r<=m} shell(r); weighted = Σ_{r<=m} r·shell(r). *)
      let candidate = (target +. float_of_int weighted) /. float_of_int volume in
      let candidate = Float.max candidate (float_of_int m) in
      if candidate < float_of_int (m + 1) then candidate
      else begin
        let s = shell ~dim (m + 1) in
        scan (m + 1) (volume + s) (weighted + ((m + 1) * s))
      end
    in
    scan 0 1 0
  end

(* Optimal open-route length from [home] through a multiset of sites:
   exhaustive over permutations (sites are deduplicated first; at most a
   handful in a tiny instance). *)
let optimal_route_length ~home sites =
  let distinct = Point.Set.elements (Point.Set.of_list sites) in
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> not (Point.equal x y)) xs in
            List.map (fun p -> x :: p) (perms rest))
          xs
  in
  match distinct with
  | [] -> 0
  | _ ->
      List.fold_left
        (fun best order ->
          let len, _ =
            List.fold_left
              (fun (acc, at) p -> (acc + Point.l1_dist at p, p))
              (0, home) order
          in
          min best len)
        max_int (perms distinct)

let tiny_woff ?(max_units = 6) dm ~window =
  let total = Demand_map.total dm in
  let vehicles = Box.points window in
  if total > max_units || List.length vehicles > 16 then None
  else if total = 0 then Some 0
  else begin
    let ok =
      List.for_all (fun p -> Box.mem window p)
        (Demand_map.support dm)
    in
    if not ok then invalid_arg "Exact.tiny_woff: support outside the window";
    (* The unit list, site repeated d(x) times. *)
    let units =
      Demand_map.fold dm ~init:[] ~f:(fun acc p d ->
          List.init d (fun _ -> p) @ acc)
    in
    let homes = Array.of_list vehicles in
    let n = Array.length homes in
    let loads = Array.make n [] in
    let energy v =
      Energy.add (optimal_route_length ~home:homes.(v) loads.(v)) (List.length loads.(v))
    in
    let best = ref max_int in
    (* Branch and bound: assign units one by one; prune on the running
       peak.  Units at the same site are interchangeable, so only the
       site sequence matters — we sort units to group them, which the
       fold above already does. *)
    let rec assign remaining peak =
      if peak >= !best then ()
      else
        match remaining with
        | [] -> best := peak
        | site :: rest ->
            for v = 0 to n - 1 do
              loads.(v) <- site :: loads.(v);
              let e = energy v in
              assign rest (max peak e);
              loads.(v) <- List.tl loads.(v)
            done
    in
    assign units 0;
    Some !best
  end
