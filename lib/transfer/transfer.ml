type cost_model = Fixed of float | Variable of float

let remaining_after ~w ~dist =
  if dist < 0 then invalid_arg "Transfer.remaining_after: negative distance";
  if w <= 1.0 then (if dist = 0 then w else 0.0)
  else w *. ((1.0 -. (1.0 /. w)) ** float_of_int dist)

let import_bound ~w ~side =
  if side <= 0 then invalid_arg "Transfer.import_bound: side must be positive";
  if w <= 0.0 then 0.0
  else begin
    let s = float_of_int side in
    if w <= 1.0 then w *. s *. s
    else
      (* Exact sum of the shell series 4s + 4(r-1) against the geometric
         decay: w·(s² + 4w² + 4sw - 8w - 4s + 4). *)
      w *. ((s *. s) +. (4.0 *. w *. w) +. (4.0 *. s *. w) -. (8.0 *. w) -. (4.0 *. s) +. 4.0)
  end

let lower_bound dm =
  if Demand_map.dim dm <> 2 then
    invalid_arg "Transfer.lower_bound: Theorem 5.1.1 machinery is 2-dimensional";
  match Demand_map.bounding_box dm with
  | None -> 0.0
  | Some bbox ->
      let max_side = max (Box.side bbox 0) (Box.side bbox 1) in
      let best = ref 0.0 in
      for side = 1 to max_side do
        let demand = Omega.max_cube_demand dm ~side in
        if demand > 0 then begin
          (* Smallest w whose import bound covers the square's demand. *)
          let target = float_of_int demand in
          let rec grow hi attempts =
            if attempts = 0 then hi
            else if import_bound ~w:hi ~side >= target then hi
            else grow (2.0 *. hi) (attempts - 1)
          in
          let hi = grow 1.0 60 in
          let rec bisect lo hi =
            if hi -. lo <= 1e-9 *. (1.0 +. hi) then hi
            else begin
              let mid = 0.5 *. (lo +. hi) in
              if import_bound ~w:mid ~side >= target then bisect lo mid
              else bisect mid hi
            end
          in
          let w = bisect 0.0 hi in
          if w > !best then best := w
        end
      done;
      !best

module Segment = struct
  type run = {
    success : bool;
    transfers : int;
    distance : int;
    energy_spent : float;
  }

  (* Transfer convention: when A sends m units to B, A's tank drops by m
     and B's rises by the delivered amount after the charge — m - a1 for
     the fixed model, m·(1 - a2) for the variable one. *)
  let delivered cost m =
    match cost with Fixed a1 -> m -. a1 | Variable a2 -> m *. (1.0 -. a2)

  let to_send cost ~want =
    match cost with Fixed a1 -> want +. a1 | Variable a2 -> want /. (1.0 -. a2)

  let simulate ~n ~demand ~cost ~w =
    if n < 2 then invalid_arg "Transfer.Segment.simulate: need n >= 2";
    if w < 0.0 then invalid_arg "Transfer.Segment.simulate: negative capacity";
    let tank = ref w in
    let ok = ref true in
    let transfers = ref 0 and distance = ref 0 in
    let check () = if !tank < -1e-9 then ok := false in
    let walk steps =
      distance := Energy.add !distance steps;
      tank := !tank -. float_of_int steps;
      check ()
    in
    (* Sweep right, draining every intermediate tank into the collector. *)
    for _x = 2 to n - 1 do
      walk 1;
      incr transfers;
      tank := !tank +. delivered cost w;
      check ()
    done;
    walk 1;
    (* Exchange with vehicle n so it ends up holding exactly d(n). *)
    let dn = float_of_int (demand n) in
    if w > dn then begin
      incr transfers;
      tank := !tank +. delivered cost (w -. dn);
      check ()
    end
    else if w < dn then begin
      incr transfers;
      tank := !tank -. to_send cost ~want:(dn -. w);
      check ()
    end;
    (* Sweep back, topping each vehicle up to its demand. *)
    for x0 = 2 to n - 1 do
      let x = n + 1 - x0 in
      walk 1;
      let dx = float_of_int (demand x) in
      if dx > 0.0 then begin
        incr transfers;
        tank := !tank -. to_send cost ~want:dx;
        check ()
      end
    done;
    walk 1;
    (* Serve the collector's own position. *)
    tank := !tank -. float_of_int (demand 1);
    check ();
    let total_initial = float_of_int n *. w in
    let leftover =
      (* Every vehicle except the collector is left holding exactly its
         demand, which service then consumes; the collector's leftover is
         its tank. *)
      Float.max 0.0 !tank
    in
    {
      success = !ok;
      transfers = !transfers;
      distance = !distance;
      energy_spent = total_initial -. leftover;
    }

  let min_capacity ?(tol = 1e-4) ~n ~demand cost =
    let succeeds w = (simulate ~n ~demand ~cost ~w).success in
    let rec grow hi attempts =
      if attempts = 0 then hi
      else if succeeds hi then hi
      else grow (2.0 *. hi) (attempts - 1)
    in
    let hi = grow 1.0 60 in
    let rec bisect lo hi =
      if hi -. lo <= tol then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if succeeds mid then bisect lo mid else bisect mid hi
      end
    in
    bisect 0.0 hi

  let closed_form ~n ~total ~cost =
    let fn = float_of_int n and fd = float_of_int total in
    match cost with
    | Fixed a1 ->
        ((a1 *. float_of_int ((2 * n) - 3)) +. float_of_int ((2 * n) - 2) +. fd) /. fn
    | Variable a2 ->
        (float_of_int ((2 * n) - 2) +. fd)
        /. (fn -. (2.0 *. a2 *. fn) +. (3.0 *. a2))

  let no_transfer_capacity ~n ~demand =
    let dm =
      Demand_map.of_alist 1 (List.init n (fun i -> ([| i + 1 |], demand (i + 1))))
    in
    Oracle.omega_star dm
end
