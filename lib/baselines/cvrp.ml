type customer = { location : Point.t; amount : int }

type route = { stops : Point.t list }

type solution = { depot : Point.t; routes : route list; capacity : int }

let customers_of_demand dm =
  Demand_map.fold dm ~init:[] ~f:(fun acc p d ->
      if d > 0 then { location = p; amount = d } :: acc else acc)
  |> List.rev

let route_demand dm route =
  List.fold_left (fun acc p -> acc + Demand_map.value dm p) 0 route.stops

let route_travel ~depot route = Tour.cycle_length (depot :: route.stops)

let route_energy ~dm ~depot route = route_travel ~depot route + route_demand dm route

let total_travel sol =
  List.fold_left (fun acc r -> acc + route_travel ~depot:sol.depot r) 0 sol.routes

let max_route_energy ~dm sol =
  List.fold_left
    (fun acc r -> max acc (route_energy ~dm ~depot:sol.depot r))
    0 sol.routes

let centroid dm =
  match Demand_map.bounding_box dm with
  | None -> invalid_arg "Cvrp.centroid: empty demand"
  | Some bbox ->
      let dim = Box.dim bbox in
      let sums = Array.make dim 0 and total = ref 0 in
      Demand_map.iter dm (fun p d ->
          total := !total + d;
          for i = 0 to dim - 1 do
            sums.(i) <- sums.(i) + (d * p.(i))
          done);
      Array.map (fun s -> s / max 1 !total) sums

(* --- Clarke–Wright savings --- *)

let clarke_wright ~dm ~depot ~capacity =
  if capacity <= 0 then invalid_arg "Cvrp.clarke_wright: capacity must be positive";
  let customers = Array.of_list (customers_of_demand dm) in
  let n = Array.length customers in
  Array.iter
    (fun c ->
      if c.amount > capacity then
        invalid_arg "Cvrp.clarke_wright: a customer exceeds the route capacity")
    customers;
  (* Route representation: for each customer index, the route id; per
     route, a deque of customer indices plus its load. *)
  let route_of = Array.init n (fun i -> i) in
  let stops = Array.init n (fun i -> [ i ]) in
  let load = Array.init n (fun i -> customers.(i).amount) in
  let alive = Array.make n true in
  let d0 i = Point.l1_dist depot customers.(i).location in
  let dist i j = Point.l1_dist customers.(i).location customers.(j).location in
  (* All candidate savings, largest first. *)
  let savings = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let s = d0 i + d0 j - dist i j in
      if s > 0 then savings := (s, i, j) :: !savings
    done
  done;
  let savings =
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare b a) !savings
  in
  let find_root i = route_of.(i) in
  let endpoints r =
    match stops.(r) with
    | [] -> None
    | [ x ] -> Some (x, x)
    | x :: rest ->
        let rec last = function [ y ] -> y | _ :: t -> last t | [] -> assert false in
        Some (x, last rest)
  in
  let merge r1 r2 ~flip1 ~flip2 =
    (* Append r2 after r1, possibly reversing either, into r1. *)
    let s1 = if flip1 then List.rev stops.(r1) else stops.(r1) in
    let s2 = if flip2 then List.rev stops.(r2) else stops.(r2) in
    stops.(r1) <- s1 @ s2;
    load.(r1) <- load.(r1) + load.(r2);
    List.iter (fun c -> route_of.(c) <- r1) s2;
    (* Reversal may have reassigned members of r1 too. *)
    List.iter (fun c -> route_of.(c) <- r1) s1;
    alive.(r2) <- false
  in
  List.iter
    (fun (_, i, j) ->
      let r1 = find_root i and r2 = find_root j in
      if r1 <> r2 && alive.(r1) && alive.(r2) && load.(r1) + load.(r2) <= capacity
      then begin
        match (endpoints r1, endpoints r2) with
        | Some (h1, t1), Some (h2, t2) ->
            (* The merge is only admissible when i and j are endpoints of
               their routes (interior links would break the paths). *)
            let i_head = i = h1 and i_tail = i = t1 in
            let j_head = j = h2 and j_tail = j = t2 in
            if (i_head || i_tail) && (j_head || j_tail) then begin
              (* Orient r1 so i is its tail and r2 so j is its head. *)
              let flip1 = i_head && not i_tail in
              let flip2 = j_tail && not j_head in
              merge r1 r2 ~flip1 ~flip2
            end
        | _ -> ()
      end)
    savings;
  let routes = ref [] in
  for r = n - 1 downto 0 do
    if alive.(r) then
      routes :=
        { stops = List.map (fun i -> customers.(i).location) stops.(r) } :: !routes
  done;
  { depot; routes = !routes; capacity }

(* --- Gillett–Miller sweep --- *)

let sweep ?(improve = true) ~dm ~depot capacity =
  if capacity <= 0 then invalid_arg "Cvrp.sweep: capacity must be positive";
  let customers = customers_of_demand dm in
  List.iter
    (fun c ->
      if c.amount > capacity then
        invalid_arg "Cvrp.sweep: a customer exceeds the route capacity")
    customers;
  let angle c =
    let dx = float_of_int (c.location.(0) - depot.(0)) in
    let dy = float_of_int (c.location.(1) - depot.(1)) in
    Float.atan2 dy dx
  in
  let sorted = List.sort (fun a b -> Float.compare (angle a) (angle b)) customers in
  (* Cut the angular order into capacity-respecting clusters. *)
  let clusters = ref [] and current = ref [] and cur_load = ref 0 in
  List.iter
    (fun c ->
      if !cur_load + c.amount > capacity && !current <> [] then begin
        clusters := List.rev !current :: !clusters;
        current := [];
        cur_load := 0
      end;
      current := c :: !current;
      cur_load := !cur_load + c.amount)
    sorted;
  if !current <> [] then clusters := List.rev !current :: !clusters;
  let route_of_cluster cluster =
    let points = List.map (fun c -> c.location) cluster in
    let ordered = Tour.nearest_neighbor ~start:depot points in
    let ordered =
      if improve then
        match Tour.two_opt (depot :: ordered) with
        | d :: rest when Point.equal d depot -> rest
        | reordered ->
            (* 2-opt may rotate the depot away from the front; rotate back. *)
            let rec rotate acc = function
              | [] -> List.rev acc
              | d :: rest when Point.equal d depot -> rest @ List.rev acc
              | p :: rest -> rotate (p :: acc) rest
            in
            rotate [] reordered
      else ordered
    in
    { stops = ordered }
  in
  { depot; routes = List.rev_map route_of_cluster !clusters; capacity }

let validate ~dm sol =
  let visits = Point.Tbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          Point.Tbl.replace visits p
            (1 + Option.value ~default:0 (Point.Tbl.find_opt visits p)))
        r.stops)
    sol.routes;
  let problem = ref None in
  Demand_map.iter dm (fun p d ->
      if d > 0 && Point.Tbl.find_opt visits p <> Some 1 && !problem = None then
        problem :=
          Some
            (Printf.sprintf "customer %s visited %d times" (Point.to_string p)
               (Option.value ~default:0 (Point.Tbl.find_opt visits p))));
  List.iter
    (fun r ->
      if route_demand dm r > sol.capacity && !problem = None then
        problem := Some "route exceeds capacity")
    sol.routes;
  match !problem with None -> Ok () | Some msg -> Error msg
