let vehicles_needed dm ~depot ~capacity =
  let exception Unreachable in
  try
    Some
      (Demand_map.fold dm ~init:0 ~f:(fun acc x d ->
           if d = 0 then acc
           else begin
             let reach = Energy.sub capacity (Point.l1_dist depot x) in
             if reach <= 0 then raise Unreachable
             else acc + ((d + reach - 1) / reach)
           end))
  with Unreachable -> None

let min_capacity dm ~depot ~fleet =
  if fleet <= 0 then invalid_arg "Central.min_capacity: fleet must be positive";
  if Demand_map.total dm = 0 then Some 0
  else begin
    let fits w =
      match vehicles_needed dm ~depot ~capacity:w with
      | None -> false
      | Some k -> k <= fleet
    in
    (* Upper bound: one trip serving everything farthest-first. *)
    let max_dist =
      Demand_map.fold dm ~init:0 ~f:(fun acc x d ->
          if d > 0 then max acc (Point.l1_dist depot x) else acc)
    in
    let hi = max_dist + Demand_map.total dm in
    if not (fits hi) then None
    else begin
      let lo = ref 0 and hi = ref hi in
      while !hi - !lo > 1 do
        let mid = !lo + ((!hi - !lo) / 2) in
        if fits mid then hi := mid else lo := mid
      done;
      Some !hi
    end
  end
