type config = { capacity : float; seed : int }

type outcome = {
  served : int;
  failed : int;
  messages : int;
  replacements : int;
  computations : int;
  starved_searches : int;
  max_energy_used : float;
}

let succeeded o = o.failed = 0

type msg =
  | Query of { init : int * int }
  | Reply of { init : int * int; flag : bool }
  | Move of { init : int * int; dest : int; pair : int }
  | Monitor_timeout of { pair : int }

type working = Idle | Active | Done
type transfer = Waiting | Searching | Initiator

type vehicle = {
  id : int;
  mutable pos : int;
  mutable energy : float;
  mutable working : working;
  mutable transfer : transfer;
  mutable pair : int;
  mutable par : int;
  mutable child : int;
  mutable init : (int * int) option;
  mutable num : int;
}

type pair_state = {
  pair_id : int;
  cluster : int;
  cells : int array; (* one or two adjacent vertices *)
  edge_w : int; (* weight of the pair edge; 0 for singletons *)
  mutable active : int;
}

type world = {
  inst : Gcmvrp.t;
  cfg : config;
  vehicles : vehicle array;
  pairs : pair_state array;
  pair_of_vertex : int array;
  neighbors : int list array; (* same-cluster graph adjacency *)
  cluster_pairs : int array array;
  des : msg Des.t;
  phase2 : (int, int) Hashtbl.t; (* pending initiator id -> pair id *)
  mutable seq : int;
  mutable served : int;
  mutable failed : int;
  mutable computations : int;
  mutable replacements : int;
  mutable starved : int;
}

(* --- clustering: greedy demand-ball cover, then absorb stragglers --- *)

let clusters_of inst =
  let n = Gcmvrp.n_vertices inst in
  let star = Gcmvrp.omega_star inst in
  let radius = max 1 (int_of_float (Float.ceil star)) in
  let cluster_of = Array.make n (-1) in
  let n_clusters = ref 0 in
  let rec cover () =
    let center = ref (-1) in
    for v = 0 to n - 1 do
      if
        cluster_of.(v) = -1
        && Gcmvrp.demand inst v > 0
        && (!center = -1 || Gcmvrp.demand inst v > Gcmvrp.demand inst !center)
      then center := v
    done;
    if !center >= 0 then begin
      let id = !n_clusters in
      incr n_clusters;
      for v = 0 to n - 1 do
        let d = Gcmvrp.distance inst !center v in
        if cluster_of.(v) = -1 && d <> max_int && d <= radius then
          cluster_of.(v) <- id
      done;
      cover ()
    end
  in
  cover ();
  (* Absorb unclustered vertices into the nearest clustered one; isolated
     leftovers become singleton clusters. *)
  for v = 0 to n - 1 do
    if cluster_of.(v) = -1 then begin
      let best = ref (-1) and best_d = ref max_int in
      for u = 0 to n - 1 do
        if cluster_of.(u) >= 0 then begin
          let d = Gcmvrp.distance inst v u in
          if d < !best_d then begin
            best_d := d;
            best := u
          end
        end
      done;
      if !best >= 0 && !best_d <> max_int then cluster_of.(v) <- cluster_of.(!best)
      else begin
        cluster_of.(v) <- !n_clusters;
        incr n_clusters
      end
    end
  done;
  (cluster_of, !n_clusters)

let build inst cfg =
  let n = Gcmvrp.n_vertices inst in
  let cluster_of, n_clusters = clusters_of inst in
  (* Greedy maximal matching within each cluster. *)
  let matched = Array.make n (-1) in
  let pairs = ref [] and n_pairs = ref 0 in
  let pair_of_vertex = Array.make n (-1) in
  let graph = Gcmvrp.graph_of inst in
  for v = 0 to n - 1 do
    if matched.(v) = -1 then begin
      let partner = ref (-1) and partner_w = ref 0 in
      Digraph.iter_succ graph v (fun ~dst ~weight ->
          if !partner = -1 && matched.(dst) = -1 && dst <> v
             && cluster_of.(dst) = cluster_of.(v) then begin
            partner := dst;
            partner_w := weight
          end);
      let pid = !n_pairs in
      incr n_pairs;
      if !partner >= 0 then begin
        matched.(v) <- !partner;
        matched.(!partner) <- v;
        pair_of_vertex.(v) <- pid;
        pair_of_vertex.(!partner) <- pid;
        pairs :=
          {
            pair_id = pid;
            cluster = cluster_of.(v);
            cells = [| v; !partner |];
            edge_w = !partner_w;
            active = v;
          }
          :: !pairs
      end
      else begin
        matched.(v) <- v;
        pair_of_vertex.(v) <- pid;
        pairs :=
          { pair_id = pid; cluster = cluster_of.(v); cells = [| v |]; edge_w = 0; active = v }
          :: !pairs
      end
    end
  done;
  let pairs = Array.of_list (List.rev !pairs) in
  let cluster_pairs =
    Array.init n_clusters (fun c ->
        Array.of_list
          (List.filter_map
             (fun pr -> if pr.cluster = c then Some pr.pair_id else None)
             (Array.to_list pairs)))
  in
  let vehicles =
    Array.init n (fun id ->
        {
          id;
          pos = id;
          energy = cfg.capacity;
          working = Idle;
          transfer = Waiting;
          pair = pair_of_vertex.(id);
          par = -1;
          child = -1;
          init = None;
          num = 0;
        })
  in
  Array.iter
    (fun pr -> vehicles.(pr.cells.(0)).working <- Active)
    pairs;
  let neighbors =
    Array.init n (fun v ->
        List.filter_map
          (fun (u, _) -> if cluster_of.(u) = cluster_of.(v) then Some u else None)
          (Digraph.succ graph v))
  in
  {
    inst;
    cfg;
    vehicles;
    pairs;
    pair_of_vertex;
    neighbors;
    cluster_pairs;
    des = Des.create ~rng:(Rng.create cfg.seed) ();
    phase2 = Hashtbl.create 8;
    seq = 0;
    served = 0;
    failed = 0;
    computations = 0;
    replacements = 0;
    starved = 0;
  }

(* --- Algorithm 2, verbatim modulo the vertex/cluster vocabulary --- *)

let start_computation w ~initiator ~pair_id =
  let v = initiator in
  w.computations <- w.computations + 1;
  w.seq <- w.seq + 1;
  let init = (v.id, w.seq) in
  v.init <- Some init;
  v.par <- -1;
  v.child <- -1;
  let ns = w.neighbors.(v.id) in
  v.num <- List.length ns;
  if v.num = 0 then w.starved <- w.starved + 1
  else begin
    v.transfer <- Initiator;
    Hashtbl.replace w.phase2 v.id pair_id;
    List.iter (fun q -> Des.send w.des ~src:v.id ~dst:q (Query { init })) ns
  end

let complete_initiator w v =
  v.transfer <- Waiting;
  match Hashtbl.find_opt w.phase2 v.id with
  | None -> ()
  | Some pair_id ->
      Hashtbl.remove w.phase2 v.id;
      if v.child >= 0 then
        Des.send w.des ~src:v.id ~dst:v.child
          (Move { init = Option.get v.init; dest = w.pairs.(pair_id).cells.(0); pair = pair_id })
      else w.starved <- w.starved + 1

let handle_query w p ~src init =
  if p.transfer = Waiting && p.init <> Some init then begin
    p.par <- src;
    p.init <- Some init;
    p.child <- -1;
    if p.working = Idle then
      Des.send w.des ~src:p.id ~dst:src (Reply { init; flag = true })
    else begin
      let ns = w.neighbors.(p.id) in
      p.num <- List.length ns;
      if p.num = 0 then
        Des.send w.des ~src:p.id ~dst:src (Reply { init; flag = false })
      else begin
        p.transfer <- Searching;
        List.iter (fun q -> Des.send w.des ~src:p.id ~dst:q (Query { init })) ns
      end
    end
  end
  else Des.send w.des ~src:p.id ~dst:src (Reply { init; flag = false })

let handle_reply w p ~src init flag =
  if p.init = Some init && p.transfer <> Waiting then begin
    p.num <- p.num - 1;
    if flag && p.child < 0 then begin
      p.child <- src;
      if p.par >= 0 then
        Des.send w.des ~src:p.id ~dst:p.par (Reply { init; flag = true })
    end;
    if p.num = 0 then begin
      match p.transfer with
      | Initiator -> complete_initiator w p
      | Searching ->
          p.transfer <- Waiting;
          if p.child < 0 && p.par >= 0 then
            Des.send w.des ~src:p.id ~dst:p.par (Reply { init; flag = false })
      | Waiting -> ()
    end
  end

let handle_move w p init ~dest ~pair_id =
  if p.working = Idle then begin
    let d = Gcmvrp.distance w.inst p.pos dest in
    p.energy <- p.energy -. float_of_int d;
    p.pos <- dest;
    p.working <- Active;
    p.pair <- pair_id;
    w.pairs.(pair_id).active <- p.id;
    w.replacements <- w.replacements + 1
  end
  else if p.child >= 0 then
    Des.send w.des ~src:p.id ~dst:p.child (Move { init; dest; pair = pair_id })
  else w.starved <- w.starved + 1

let monitor_of w ~pair_id =
  let order = w.cluster_pairs.(w.pairs.(pair_id).cluster) in
  let n = Array.length order in
  let start =
    let rec find i = if order.(i) = pair_id then i else find (i + 1) in
    find 0
  in
  let rec scan k =
    if k >= n then None
    else begin
      let candidate = w.pairs.(order.((start + k) mod n)).active in
      if candidate >= 0 then Some candidate else scan (k + 1)
    end
  in
  scan 1

let handle_monitor_timeout w m ~pair_id =
  let pr = w.pairs.(pair_id) in
  if pr.active < 0 then begin
    let mv = w.vehicles.(m) in
    if mv.transfer = Waiting then start_computation w ~initiator:mv ~pair_id
    else
      match monitor_of w ~pair_id with
      | None -> w.starved <- w.starved + 1
      | Some m' ->
          Des.send_after w.des ~delay:50.0 ~src:m' ~dst:m' (Monitor_timeout { pair = pair_id })
  end

let retire w v =
  v.working <- Done;
  let pair_id = v.pair in
  w.pairs.(pair_id).active <- -1;
  start_computation w ~initiator:v ~pair_id

let process_job w x =
  let pair_id = w.pair_of_vertex.(x) in
  let pr = w.pairs.(pair_id) in
  if pr.active < 0 then w.failed <- w.failed + 1
  else begin
    let v = w.vehicles.(pr.active) in
    let cost = float_of_int (Gcmvrp.distance w.inst v.pos x + 1) in
    if v.energy < cost -. 1e-9 then w.failed <- w.failed + 1
    else begin
      v.energy <- v.energy -. cost;
      v.pos <- x;
      w.served <- w.served + 1;
      (* Retirement threshold: enough for one more pair job. *)
      if v.working = Active && v.energy < float_of_int (pr.edge_w + 1) then retire w v
    end
  end

let dispatch w ~time:_ ~src ~dst msg =
  let p = w.vehicles.(dst) in
  match msg with
  | Query { init } -> handle_query w p ~src init
  | Reply { init; flag } -> handle_reply w p ~src init flag
  | Move { init; dest; pair } -> handle_move w p init ~dest ~pair_id:pair
  | Monitor_timeout { pair } -> handle_monitor_timeout w dst ~pair_id:pair

let run inst ~jobs cfg =
  if cfg.capacity <= 0.0 then invalid_arg "Gonline.run: capacity must be positive";
  let w = build inst cfg in
  let quiesce () =
    let (_ : Des.outcome) = Des.run_until_quiescent w.des ~handler:(dispatch w) in
    ()
  in
  Array.iter
    (fun x ->
      if x < 0 || x >= Gcmvrp.n_vertices inst then
        invalid_arg "Gonline.run: job outside the graph";
      process_job w x;
      quiesce ())
    jobs;
  {
    served = w.served;
    failed = w.failed;
    messages = Des.messages_delivered w.des;
    replacements = w.replacements;
    computations = w.computations;
    starved_searches = w.starved;
    max_energy_used =
      Array.fold_left
        (fun acc v -> Float.max acc (cfg.capacity -. v.energy))
        0.0 w.vehicles;
  }

let recommended_capacity inst =
  ((4.0 *. 9.0) +. 2.0) *. Float.max 1.0 (Gcmvrp.omega_star inst) +. 4.0

let min_feasible_capacity ?(tol = 0.25) ?(seed = 0) inst ~jobs =
  let ok capacity = succeeded (run inst ~jobs { capacity; seed }) in
  let rec grow hi attempts =
    if attempts = 0 then hi else if ok hi then hi else grow (2.0 *. hi) (attempts - 1)
  in
  let hi = grow 4.0 30 in
  let rec bisect lo hi =
    if hi -. lo <= tol then hi
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if ok mid then bisect lo mid else bisect mid hi
    end
  in
  bisect 0.0 hi
