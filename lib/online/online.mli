(** The decentralized on-line strategy of Chapter 3, hardened against
    unreliable channels.

    One vehicle per grid vertex; the world is partitioned into
    [side]-cubes; each cube's cells are matched into adjacent black/white
    pairs (via {!Snake.pairing}).  The vehicle on one cell of each pair
    starts [Active] and serves every job arriving at either cell of its
    pair (walking at most distance 1); its partner starts [Idle].  When an
    active vehicle runs out of energy it becomes [Done] and starts a
    Dijkstra–Scholten diffusing computation (§3.1, Algorithm 2) over the
    cube's communication graph to locate an idle vehicle; phase II routes a
    [Move] order down the discovered tree path, and the idle candidate
    relocates and takes over the pair.

    Failure handling follows §3.2.5 with real messages: the active
    vehicle of each pair heartbeats to its monitor — the active vehicle
    of the next pair of the cube, realizing the paper's
    "monitoring"-pointer loop — and a per-pair deadline timer notices
    missing heartbeats and has the monitor initiate the replacement.  A
    vehicle that fails to initiate (scenario 2) or dies outright
    (scenario 3) is therefore detected without any out-of-band signal.

    The message layer ({!Des}) can drop, duplicate and delay messages,
    partition vehicle pairs, and the protocol survives it: every
    [Query]/[Reply]/[Move] travels in a reliable-delivery envelope with a
    unique message id, acknowledgements, exponential-backoff
    retransmission and receiver-side deduplication (which preserves the
    Dijkstra–Scholten [num]/[par] invariants under retries).  Drains are
    budget-bounded: a protocol that stops making progress (e.g. retries
    disabled on lossy channels) ends in a reported livelock instead of an
    infinite spin.  See docs/ROBUSTNESS.md for the full design.

    Modelling notes (DESIGN.md §2): the communication topology links
    vehicles whose depots are within [comm_radius] (default 2) in the same
    cube — depot-based rather than position-based, constant-equivalent
    since vehicles stay within distance 1 of a pair cell; message delays
    are random but FIFO per channel.  Job arrivals are spaced so that the
    network quiesces in between, exactly the paper's timing
    assumption. *)

type fault_plan = {
  silent_initiators : int list;
      (** vehicles that, on becoming done, fail to start the diffusing
          computation (scenario 2) *)
  deaths : (int * int) list;
      (** [(k, v)]: vehicle [v] breaks down (dead, cannot serve or relay)
          immediately after the [k]-th job has been processed; [k = 0]
          kills before the first job (scenarios 3–4) *)
  longevity : (int * float) list;
      (** Chapter 4 longevity parameters [(v, p)]: vehicle [v] breaks the
          moment a fraction [p ∈ [0,1]] of its initial energy has been
          spent (scenario 4).  Unlisted vehicles have [p = 1] (never
          break this way). *)
  outages : (int * int * float) list;
      (** [(k, v, d)]: vehicle [v] falls radio-silent (its channel
          endpoints crash, pending timers included) immediately after the
          [k]-th job, and comes back [d] simulation-time units later.
          Unlike [deaths] the vehicle's protocol state survives: on
          restart its lost self-timers (pair deadline, retry backoff) are
          re-armed and it resumes where it was — the crash/restart leg of
          the chaos test matrix. *)
}

val no_faults : fault_plan

type config = {
  capacity : float;  (** initial energy [W] of every vehicle *)
  side : int;  (** cube side of the partition *)
  comm_radius : int;  (** neighbor radius (the paper's constant, 2) *)
  seed : int;  (** message-delay and channel-fault randomness *)
  faults : fault_plan;
  chaos : Des.faults;
      (** channel fault profile applied to every vehicle-to-vehicle
          channel (default {!Des.reliable}) *)
  partitions : (int * int) list;
      (** vehicle pairs whose link is cut for the whole run *)
  retries : bool;
      (** enable the ack/retry reliable-delivery layer (default [true]);
          disabling it under a lossy [chaos] profile is how to observe a
          livelock *)
  quiesce_budget : int;
      (** max events dispatched per inter-job drain before declaring a
          livelock (default 100_000) *)
}

val config :
  ?comm_radius:int ->
  ?seed:int ->
  ?faults:fault_plan ->
  ?chaos:Des.faults ->
  ?partitions:(int * int) list ->
  ?retries:bool ->
  ?quiesce_budget:int ->
  capacity:float ->
  side:int ->
  unit ->
  config
(** Validated constructor: positive capacity/side/comm_radius/budget,
    death job indices non-negative, longevity fractions in [\[0,1\]]
    ([Invalid_argument] otherwise).  Vehicle ids in [faults] and
    [partitions] are checked against the fleet once the window is known,
    in [run]/[build]. *)

type failure = {
  job : int;  (** 1-based index in the arrival sequence *)
  position : Point.t;
  reason : string;
}

type outcome = {
  served : int;
  failures : failure list;
  max_energy_used : float;  (** peak consumption over all vehicles *)
  mean_energy_used : float;  (** over vehicles that consumed anything *)
  energy_consumers : int;
      (** vehicles that consumed any energy — the weight behind
          [mean_energy_used], so shard outcomes aggregate exactly *)
  messages : int;  (** protocol messages delivered (E8) *)
  replacements : int;  (** completed phase-II relocations *)
  computations : int;  (** diffusing computations initiated *)
  starved_searches : int;  (** computations that found no idle vehicle *)
  vehicles : int;  (** fleet size (window volume) *)
  vehicles_still_serviceable : int;
      (** vehicles alive with enough energy for another job at the end of
          the run — Lemma 3.3.1 keeps this at least half the fleet at the
          theorem capacity *)
  drops : int;  (** messages lost to channel faults or partitions *)
  dups : int;  (** duplicate copies injected by the channels *)
  retries_sent : int;  (** reliable-layer retransmissions *)
  livelocks : int;  (** drains that exhausted [quiesce_budget] *)
  trace_digest : int;
      (** {!Des.digest} of the run — equal across runs with the same seed
          and fault configuration *)
}

val succeeded : outcome -> bool
(** No failed job and no energy violation. *)

(** Protocol-level events, emitted in causal order to an optional
    observer — the audit trail behind the aggregate counters. *)
type event =
  | Job_served of { job : int; position : Point.t; vehicle : int; walk : int }
  | Vehicle_retired of { vehicle : int; pair : int }
      (** became done after exhausting its energy (§3.2.1) *)
  | Vehicle_died of { vehicle : int }  (** scenario 3/4 breakdown *)
  | Computation_started of { initiator : int; pair : int }
      (** a diffusing computation began (Algorithm 2) *)
  | Candidate_found of { initiator : int; pair : int }
      (** phase I terminated with a candidate; phase II (Move) begins *)
  | Replacement of { vehicle : int; pair : int; dest : Point.t }
      (** the candidate relocated and took the pair over *)
  | Search_starved of { pair : int }
      (** no idle vehicle could be found for the pair *)

val run : ?observer:(event -> unit) -> config -> Workload.t -> outcome
(** Executes the strategy on the arrival sequence.  [observer] (default
    ignore) receives every protocol event as it happens.  Raises
    [Invalid_argument] if the fault plan or partitions name vehicles
    outside the fleet. *)

val fleet_size : config -> Workload.t -> int
(** Number of vehicles [run] would deploy (the window volume) — the valid
    id range for fault plans and partitions; 0 for an empty workload. *)

(** {1 Sharded fleet runs}

    For production-scale fleets (ROADMAP: 10^6 vehicles) the window is
    split into bands of whole [side]-tile columns along axis 0 and each
    band is simulated on a {!Pool} worker.  Every protocol channel is
    confined to one [side]-cube and cubes never straddle a band
    boundary, so the bands exchange no messages: the conservative
    lookahead of the general {!Shard} engine is [+∞] here and the whole
    run is one barrier epoch of fully independent simulations — see
    docs/SCALE.md for the argument and the memory model. *)

type fleet_outcome = {
  aggregate : outcome;
      (** exact sums/maxima over the shard outcomes; [mean_energy_used]
          is consumer-weighted via [energy_consumers], and
          [trace_digest] folds the per-shard digests (or equals the
          single shard's digest when [shard_count = 1]) *)
  shard_outcomes : outcome array;
  shard_digests : int array;
      (** per-shard {!Des} digests, in band order — bit-identical across
          reruns and across worker counts for a fixed shard count *)
  shard_count : int;  (** effective count: [min shards (tile columns)] *)
  bytes_per_vehicle : float;
      (** simulator + protocol heap footprint divided by the fleet size
          (also the ["des.bytes_per_vehicle"] gauge) *)
}

val run_fleet :
  ?workers:int -> shards:int -> config -> Workload.t -> fleet_outcome
(** Runs the strategy sharded into [shards] bands ([?workers] temporarily
    overrides the {!Pool} width).  Vehicle ids in the fault plan and
    partitions are global window ids, translated per band; a partition
    across bands is dropped (no cross-band channel exists to cut).
    Shard [s] runs under a seed derived from [config.seed]; with
    [shards = 1] the result is identical to {!run}.  Raises
    [Invalid_argument] on a non-positive [shards]. *)

val capacity_bound : dim:int -> float -> float
(** [(4·3^l + l)·ω] — the capacity Lemma 3.3.1 proves sufficient. *)

val recommended : ?seed:int -> Workload.t -> config
(** Config with the side [⌈ωc⌉] and theorem capacity derived from the
    workload's aggregate demand (what an informed designer would pick). *)

val min_feasible_capacity :
  ?tol:float -> ?seed:int -> side:int -> Workload.t -> float
(** Smallest capacity (within [tol], default 0.25) at which the strategy
    serves every job — the measured [Won] upper bound of experiment E7.
    Runs the full simulation per probe. *)
