let m_jobs_served = Metrics.counter "online.jobs_served"
let m_retirements = Metrics.counter "online.retirements"
let m_computations = Metrics.counter "online.computations"
let m_replacements = Metrics.counter "online.replacements"
let m_monitor_timeouts = Metrics.counter "online.monitor_timeouts"
let m_starved_searches = Metrics.counter "online.starved_searches"

type fault_plan = {
  silent_initiators : int list;
  deaths : (int * int) list;
  longevity : (int * float) list;
}

let no_faults = { silent_initiators = []; deaths = []; longevity = [] }

type config = {
  capacity : float;
  side : int;
  comm_radius : int;
  seed : int;
  faults : fault_plan;
}

let config ?(comm_radius = 2) ?(seed = 0) ?(faults = no_faults) ~capacity ~side () =
  if capacity <= 0.0 then invalid_arg "Online.config: capacity must be positive";
  if side <= 0 then invalid_arg "Online.config: side must be positive";
  if comm_radius <= 0 then invalid_arg "Online.config: comm_radius must be positive";
  { capacity; side; comm_radius; seed; faults }

type failure = { job : int; position : Point.t; reason : string }

type outcome = {
  served : int;
  failures : failure list;
  max_energy_used : float;
  mean_energy_used : float;
  messages : int;
  replacements : int;
  computations : int;
  starved_searches : int;
  vehicles : int;
  vehicles_still_serviceable : int;
}

let succeeded o = o.failures = []

(* --- protocol messages (§3.2.3.1 plus the Move of phase II and the
   heartbeat-timeout abstraction of §3.2.5) --- *)

type event =
  | Job_served of { job : int; position : Point.t; vehicle : int; walk : int }
  | Vehicle_retired of { vehicle : int; pair : int }
  | Vehicle_died of { vehicle : int }
  | Computation_started of { initiator : int; pair : int }
  | Candidate_found of { initiator : int; pair : int }
  | Replacement of { vehicle : int; pair : int; dest : Point.t }
  | Search_starved of { pair : int }

type msg =
  | Query of { init : int * int }
  | Reply of { init : int * int; flag : bool }
  | Move of { init : int * int; dest : Point.t; pair : int }
  | Monitor_timeout of { pair : int }

(* --- vehicle state (§3.2.1) --- *)

type working = Idle | Active | Done | Dead
type transfer = Waiting | Searching | Initiator

type vehicle = {
  id : int;
  home : Point.t;
  cube : int;
  mutable pos : Point.t;
  mutable energy : float;
  mutable working : working;
  mutable transfer : transfer;
  mutable pair : int;
  (* Dijkstra–Scholten locals (§3.2.3.2); -1 encodes the paper's NULL. *)
  mutable par : int;
  mutable child : int;
  mutable init : (int * int) option;
  mutable num : int;
}

type pair_state = {
  pair_id : int;
  pair_cube : int;
  cells : Point.t array; (* one or two adjacent cells *)
  mutable active : int; (* vehicle id, or -1 while a replacement is pending *)
}

type world = {
  cfg : config;
  observer : event -> unit;
  dim : int;
  window : Box.t;
  vehicles : vehicle array;
  pairs : pair_state array;
  pair_of_cell : int Point.Tbl.t;
  neighbors : int list array;
  cube_pairs : int array array;
  des : msg Des.t;
  silent : (int, unit) Hashtbl.t;
  break_at : float array; (* used-energy threshold per vehicle (Ch. 4) *)
  phase2 : (int, int) Hashtbl.t; (* pending initiator id -> pair id *)
  mutable seq : int;
  mutable served : int;
  mutable failures : failure list;
  mutable computations : int;
  mutable replacements : int;
  mutable starved : int;
  mutable violations : int;
}

let alive v = v.working <> Dead

let alive_neighbors w v =
  List.filter (fun id -> alive w.vehicles.(id)) w.neighbors.(v.id)

let spend w v cost =
  v.energy <- v.energy -. cost;
  if v.energy < -1e-9 then begin
    w.violations <- w.violations + 1;
    w.failures <-
      { job = w.served; position = v.pos; reason = "energy went negative" }
      :: w.failures
  end

(* Shared by scenario-3 kills and scenario-4 longevity breaks; the
   monitor-timeout scheduling lives below and is wired in by [run]. *)
let on_break = ref (fun (_ : world) (_ : int) -> ())

(* A vehicle whose longevity fraction is exhausted breaks down right after
   the operation that crossed the threshold (Chapter 4 semantics). *)
let maybe_break w v =
  if alive v && w.cfg.capacity -. v.energy >= w.break_at.(v.id) -. 1e-9 then begin
    let was_active = v.working = Active in
    v.working <- Dead;
    w.observer (Vehicle_died { vehicle = v.id });
    if was_active then begin
      w.pairs.(v.pair).active <- -1;
      !on_break w v.pair
    end
  end

(* --- world construction --- *)

let build ?(observer = fun (_ : event) -> ()) cfg ~dim ~jobs_box =
  let side = cfg.side in
  let lo = jobs_box.Box.lo in
  let hi =
    Array.init dim (fun i ->
        let extent = Box.side jobs_box i in
        let tiles = (extent + side - 1) / side in
        lo.(i) + (tiles * side) - 1)
  in
  let window = Box.make ~lo ~hi in
  let cubes = Array.of_list (Box.partition_cubes window ~side) in
  let cube_of_point p =
    let c = Box.containing_cube window ~side p in
    (* Cubes are listed in partition order; find by anchor. *)
    let rec locate i =
      if Point.equal cubes.(i).Box.lo c.Box.lo then i else locate (i + 1)
    in
    locate 0
  in
  let n = Box.volume window in
  let vehicles =
    Array.init n (fun id ->
        let home = Box.point_of_index window id in
        {
          id;
          home;
          cube = cube_of_point home;
          pos = home;
          energy = cfg.capacity;
          working = Idle;
          transfer = Waiting;
          pair = -1;
          par = -1;
          child = -1;
          init = None;
          num = 0;
        })
  in
  let pair_of_cell = Point.Tbl.create (2 * n) in
  let pairs = ref [] and n_pairs = ref 0 in
  let cube_pairs =
    Array.map
      (fun cube ->
        let { Snake.pairs = matched; unpaired } = Snake.pairing cube in
        let ids = ref [] in
        let register cells =
          let pid = !n_pairs in
          incr n_pairs;
          let cube_id = cube_of_point cells.(0) in
          pairs := { pair_id = pid; pair_cube = cube_id; cells; active = -1 } :: !pairs;
          Array.iter (fun c -> Point.Tbl.replace pair_of_cell c pid) cells;
          ids := pid :: !ids
        in
        Array.iter (fun (a, b) -> register [| a; b |]) matched;
        (match unpaired with None -> () | Some c -> register [| c |]);
        Array.of_list (List.rev !ids))
      cubes
  in
  let pairs = Array.of_list (List.rev !pairs) in
  (* Initial roles: the first cell of each pair hosts the active vehicle,
     its partner stays idle (the paper's black/white split). *)
  Array.iter
    (fun pr ->
      let active_vehicle = Box.index window pr.cells.(0) in
      pr.active <- active_vehicle;
      let v = vehicles.(active_vehicle) in
      v.working <- Active;
      v.pair <- pr.pair_id;
      if Array.length pr.cells = 2 then begin
        let idle = vehicles.(Box.index window pr.cells.(1)) in
        idle.working <- Idle;
        idle.pair <- pr.pair_id
      end)
    pairs;
  (* Depot-based communication graph, confined to cubes (§3.2.3). *)
  let neighbors =
    Array.map
      (fun v ->
        let cube = cubes.(v.cube) in
        let out = ref [] in
        Box.iter cube (fun p ->
            let d = Point.l1_dist p v.home in
            if d > 0 && d <= cfg.comm_radius then
              out := Box.index window p :: !out);
        List.rev !out)
      vehicles
  in
  let silent = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace silent id ()) cfg.faults.silent_initiators;
  let break_at = Array.make n infinity in
  List.iter
    (fun (id, p) ->
      if id >= 0 && id < n then
        break_at.(id) <- Float.max 0.0 (Float.min 1.0 p) *. cfg.capacity)
    cfg.faults.longevity;
  {
    cfg;
    observer;
    dim;
    window;
    vehicles;
    pairs;
    pair_of_cell;
    neighbors;
    cube_pairs;
    des = Des.create ~rng:(Rng.create cfg.seed) ();
    silent;
    break_at;
    phase2 = Hashtbl.create 8;
    seq = 0;
    served = 0;
    failures = [];
    computations = 0;
    replacements = 0;
    starved = 0;
    violations = 0;
  }

(* --- diffusing computation (Algorithm 2) --- *)

let start_computation w ~initiator ~pair_id =
  let v = initiator in
  w.computations <- w.computations + 1;
  Metrics.incr m_computations;
  w.seq <- w.seq + 1;
  let init = (v.id, w.seq) in
  v.init <- Some init;
  v.par <- -1;
  v.child <- -1;
  let ns = alive_neighbors w v in
  v.num <- List.length ns;
  if v.num = 0 then begin
    w.starved <- w.starved + 1;
    Metrics.incr m_starved_searches;
    w.observer (Search_starved { pair = pair_id })
  end
  else begin
    w.observer (Computation_started { initiator = v.id; pair = pair_id });
    v.transfer <- Initiator;
    Hashtbl.replace w.phase2 v.id pair_id;
    List.iter (fun q -> Des.send w.des ~src:v.id ~dst:q (Query { init })) ns
  end

let complete_initiator w v =
  v.transfer <- Waiting;
  match Hashtbl.find_opt w.phase2 v.id with
  | None -> ()
  | Some pair_id ->
      Hashtbl.remove w.phase2 v.id;
      if v.child >= 0 then begin
        w.observer (Candidate_found { initiator = v.id; pair = pair_id });
        let dest = w.pairs.(pair_id).cells.(0) in
        Des.send w.des ~src:v.id ~dst:v.child
          (Move { init = Option.get v.init; dest; pair = pair_id })
      end
      else begin
        w.starved <- w.starved + 1;
        Metrics.incr m_starved_searches;
        w.observer (Search_starved { pair = pair_id })
      end

let handle_query w p ~src init =
  if alive p then begin
    if p.transfer = Waiting && p.init <> Some init then begin
      p.par <- src;
      p.init <- Some init;
      p.child <- -1;
      if p.working = Idle then
        Des.send w.des ~src:p.id ~dst:src (Reply { init; flag = true })
      else begin
        let ns = alive_neighbors w p in
        p.num <- List.length ns;
        if p.num = 0 then
          Des.send w.des ~src:p.id ~dst:src (Reply { init; flag = false })
        else begin
          p.transfer <- Searching;
          List.iter (fun q -> Des.send w.des ~src:p.id ~dst:q (Query { init })) ns
        end
      end
    end
    else Des.send w.des ~src:p.id ~dst:src (Reply { init; flag = false })
  end

let handle_reply w p ~src init flag =
  if alive p && p.init = Some init && p.transfer <> Waiting then begin
    p.num <- p.num - 1;
    if flag && p.child < 0 then begin
      p.child <- src;
      if p.par >= 0 then
        Des.send w.des ~src:p.id ~dst:p.par (Reply { init; flag = true })
    end;
    if p.num = 0 then begin
      match p.transfer with
      | Initiator -> complete_initiator w p
      | Searching ->
          p.transfer <- Waiting;
          if p.child < 0 && p.par >= 0 then
            Des.send w.des ~src:p.id ~dst:p.par (Reply { init; flag = false })
      | Waiting -> ()
    end
  end

let handle_move w p init ~dest ~pair_id =
  if alive p then begin
    if p.working = Idle then begin
      (* Phase II terminus: the candidate relocates and takes over. *)
      spend w p (float_of_int (Point.l1_dist p.pos dest));
      p.pos <- dest;
      p.working <- Active;
      p.pair <- pair_id;
      w.pairs.(pair_id).active <- p.id;
      w.replacements <- w.replacements + 1;
      Metrics.incr m_replacements;
      w.observer (Replacement { vehicle = p.id; pair = pair_id; dest });
      maybe_break w p
    end
    else if p.child >= 0 then
      Des.send w.des ~src:p.id ~dst:p.child (Move { init; dest; pair = pair_id })
    else begin
      (* Broken relay chain: count as a starved search; the monitor of the
         pair will eventually retry via its timeout. *)
      w.starved <- w.starved + 1;
      Metrics.incr m_starved_searches
    end
  end

(* --- monitoring ring (§3.2.5, scenarios 2 and 3) --- *)

let monitor_of w ~pair_id =
  let order = w.cube_pairs.(w.pairs.(pair_id).pair_cube) in
  let n = Array.length order in
  let start =
    let rec find i = if order.(i) = pair_id then i else find (i + 1) in
    find 0
  in
  let rec scan k =
    if k >= n then None
    else begin
      let candidate = w.pairs.(order.((start + k) mod n)).active in
      if candidate >= 0 && alive w.vehicles.(candidate) then Some candidate
      else scan (k + 1)
    end
  in
  scan 1

let heartbeat_timeout = 50.0

let schedule_monitor_timeout w ~pair_id =
  match monitor_of w ~pair_id with
  | None ->
      w.starved <- w.starved + 1;
      Metrics.incr m_starved_searches
  | Some m ->
      Metrics.incr m_monitor_timeouts;
      Des.send_after w.des ~delay:heartbeat_timeout ~src:m ~dst:m
        (Monitor_timeout { pair = pair_id })

let () = on_break := fun w pair_id -> schedule_monitor_timeout w ~pair_id

let handle_monitor_timeout w m ~pair_id =
  let pr = w.pairs.(pair_id) in
  if pr.active < 0 then begin
    let mv = w.vehicles.(m) in
    if alive mv && mv.transfer = Waiting then
      start_computation w ~initiator:mv ~pair_id
    else
      (* This monitor is busy or gone; re-delegate along the ring. *)
      schedule_monitor_timeout w ~pair_id
  end

(* --- job service (§3.2.2, first part) --- *)

let retire w v =
  (* An active vehicle that can no longer guarantee the next job (walk 1 +
     serve 1) becomes done and triggers its replacement. *)
  v.working <- Done;
  Metrics.incr m_retirements;
  w.observer (Vehicle_retired { vehicle = v.id; pair = v.pair });
  let pair_id = v.pair in
  w.pairs.(pair_id).active <- -1;
  if Hashtbl.mem w.silent v.id then schedule_monitor_timeout w ~pair_id
  else start_computation w ~initiator:v ~pair_id

let process_job w ~index x =
  match Point.Tbl.find_opt w.pair_of_cell x with
  | None ->
      w.failures <-
        { job = index; position = x; reason = "job outside the window" } :: w.failures
  | Some pair_id ->
      let pr = w.pairs.(pair_id) in
      if pr.active < 0 then
        w.failures <-
          { job = index; position = x; reason = "no active vehicle in pair" }
          :: w.failures
      else begin
        let v = w.vehicles.(pr.active) in
        let cost = float_of_int (Point.l1_dist v.pos x + 1) in
        if v.energy < cost -. 1e-9 then
          w.failures <-
            { job = index; position = x; reason = "active vehicle out of energy" }
            :: w.failures
        else begin
          let walk = Point.l1_dist v.pos x in
          spend w v cost;
          v.pos <- x;
          w.served <- w.served + 1;
          Metrics.incr m_jobs_served;
          w.observer (Job_served { job = index; position = x; vehicle = v.id; walk });
          maybe_break w v;
          if v.working = Active && v.energy < 2.0 then retire w v
        end
      end

let kill w id =
  let v = w.vehicles.(id) in
  if alive v then begin
    let was_active = v.working = Active in
    v.working <- Dead;
    w.observer (Vehicle_died { vehicle = v.id });
    if was_active then begin
      let pair_id = v.pair in
      w.pairs.(pair_id).active <- -1;
      schedule_monitor_timeout w ~pair_id
    end
  end

(* --- runner --- *)

let dispatch w ~time:_ ~src ~dst msg =
  let p = w.vehicles.(dst) in
  match msg with
  | Query { init } -> handle_query w p ~src init
  | Reply { init; flag } -> handle_reply w p ~src init flag
  | Move { init; dest; pair } -> handle_move w p init ~dest ~pair_id:pair
  | Monitor_timeout { pair } -> handle_monitor_timeout w dst ~pair_id:pair

let capacity_bound ~dim omega =
  float_of_int (Energy.add (Energy.scale 4 (Energy.pow 3 dim)) dim) *. omega

let empty_outcome =
  {
    served = 0;
    failures = [];
    max_energy_used = 0.0;
    mean_energy_used = 0.0;
    messages = 0;
    replacements = 0;
    computations = 0;
    starved_searches = 0;
    vehicles = 0;
    vehicles_still_serviceable = 0;
  }

let run ?observer cfg workload =
  let jobs = workload.Workload.jobs in
  if Array.length jobs = 0 then empty_outcome
  else begin
    let dim = workload.Workload.dim in
    let jobs_box =
      let lo = Array.copy jobs.(0) and hi = Array.copy jobs.(0) in
      Array.iter
        (fun p ->
          for i = 0 to dim - 1 do
            if p.(i) < lo.(i) then lo.(i) <- p.(i);
            if p.(i) > hi.(i) then hi.(i) <- p.(i)
          done)
        jobs;
      Box.make ~lo ~hi
    in
    let w = build ?observer cfg ~dim ~jobs_box in
    let quiesce () = Des.run_until_quiescent w.des ~handler:(dispatch w) in
    let compare_deaths (k1, id1) (k2, id2) =
      match Int.compare k1 k2 with 0 -> Int.compare id1 id2 | c -> c
    in
    let deaths = List.sort compare_deaths cfg.faults.deaths in
    let remaining = ref deaths in
    let apply_deaths upto =
      let rec loop () =
        match !remaining with
        | (k, id) :: rest when k <= upto ->
            remaining := rest;
            if id >= 0 && id < Array.length w.vehicles then kill w id;
            quiesce ();
            loop ()
        | _ -> ()
      in
      loop ()
    in
    apply_deaths 0;
    Array.iteri
      (fun i x ->
        process_job w ~index:(i + 1) x;
        quiesce ();
        apply_deaths (i + 1))
      jobs;
    let used =
      Array.map (fun v -> Float.max 0.0 (cfg.capacity -. v.energy)) w.vehicles
    in
    let consumers = Array.of_list (List.filter (fun u -> u > 0.0) (Array.to_list used)) in
    {
      served = w.served;
      failures = List.rev w.failures;
      max_energy_used =
        Array.fold_left
          (fun acc v -> Float.max acc (cfg.capacity -. v.energy))
          0.0 w.vehicles;
      mean_energy_used = (if Array.length consumers = 0 then 0.0 else Stats.mean consumers);
      messages = Des.messages_delivered w.des;
      replacements = w.replacements;
      computations = w.computations;
      starved_searches = w.starved;
      vehicles = Array.length w.vehicles;
      vehicles_still_serviceable =
        Array.fold_left
          (fun acc v -> if alive v && v.energy >= 2.0 then acc + 1 else acc)
          0 w.vehicles;
    }
  end

let recommended ?(seed = 0) workload =
  let dm = Workload.demand workload in
  let omega, side = Omega.cube_fixpoint_with_side dm in
  let dim = workload.Workload.dim in
  (* +4 cushions the integer-lattice overheads (the done threshold and the
     walk-to-serve step) that Lemma 3.3.1's continuous accounting drops. *)
  config ~seed ~capacity:(capacity_bound ~dim omega +. 4.0) ~side ()

let min_feasible_capacity ?(tol = 0.25) ?(seed = 0) ~side workload =
  let succeeds capacity =
    succeeded (run (config ~seed ~capacity ~side ()) workload)
  in
  (* Find a feasible upper bound by doubling, then bisect. *)
  let rec grow hi attempts =
    if attempts = 0 then hi
    else if succeeds hi then hi
    else grow (2.0 *. hi) (attempts - 1)
  in
  let hi = grow 4.0 30 in
  let rec bisect lo hi =
    if hi -. lo <= tol then hi
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if succeeds mid then bisect lo mid else bisect mid hi
    end
  in
  bisect 0.0 hi
