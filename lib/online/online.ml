let m_jobs_served = Metrics.counter "online.jobs_served"
let m_retirements = Metrics.counter "online.retirements"
let m_computations = Metrics.counter "online.computations"
let m_replacements = Metrics.counter "online.replacements"
let m_monitor_timeouts = Metrics.counter "online.monitor_timeouts"
let m_starved_searches = Metrics.counter "online.starved_searches"
let m_heartbeats = Metrics.counter "online.heartbeats"
let m_retries = Metrics.counter "online.retries"
let m_retry_exhausted = Metrics.counter "online.retry_exhausted"
let m_bytes_per_vehicle = Metrics.gauge "des.bytes_per_vehicle"

type fault_plan = {
  silent_initiators : int list;
  deaths : (int * int) list;
  longevity : (int * float) list;
  outages : (int * int * float) list;
}

let no_faults =
  { silent_initiators = []; deaths = []; longevity = []; outages = [] }

type config = {
  capacity : float;
  side : int;
  comm_radius : int;
  seed : int;
  faults : fault_plan;
  chaos : Des.faults;
  partitions : (int * int) list;
  retries : bool;
  quiesce_budget : int;
}

(* Shape checks that need no fleet size; id ranges are checked in [build]
   once the window (and hence the fleet) is known. *)
let validate_plan plan =
  List.iter
    (fun (k, id) ->
      if k < 0 then
        invalid_arg
          (Printf.sprintf "Online: death of vehicle %d at negative job index %d"
             id k))
    plan.deaths;
  List.iter
    (fun (id, p) ->
      if not (p >= 0.0 && p <= 1.0) then
        invalid_arg
          (Printf.sprintf
             "Online: longevity fraction %g of vehicle %d outside [0,1]" p id))
    plan.longevity;
  List.iter
    (fun (k, id, d) ->
      if k < 0 then
        invalid_arg
          (Printf.sprintf "Online: outage of vehicle %d at negative job index %d"
             id k);
      if not (d > 0.0) then
        invalid_arg
          (Printf.sprintf
             "Online: outage of vehicle %d needs a positive restart delay" id))
    plan.outages

let config ?(comm_radius = 2) ?(seed = 0) ?(faults = no_faults)
    ?(chaos = Des.reliable) ?(partitions = []) ?(retries = true)
    ?(quiesce_budget = 100_000) ~capacity ~side () =
  if capacity <= 0.0 then invalid_arg "Online.config: capacity must be positive";
  if side <= 0 then invalid_arg "Online.config: side must be positive";
  if comm_radius <= 0 then invalid_arg "Online.config: comm_radius must be positive";
  if quiesce_budget <= 0 then
    invalid_arg "Online.config: quiesce_budget must be positive";
  validate_plan faults;
  { capacity; side; comm_radius; seed; faults; chaos; partitions; retries;
    quiesce_budget }

type failure = { job : int; position : Point.t; reason : string }

type outcome = {
  served : int;
  failures : failure list;
  max_energy_used : float;
  mean_energy_used : float;
  energy_consumers : int;
  messages : int;
  replacements : int;
  computations : int;
  starved_searches : int;
  vehicles : int;
  vehicles_still_serviceable : int;
  drops : int;
  dups : int;
  retries_sent : int;
  livelocks : int;
  trace_digest : int;
}

let succeeded o = match o.failures with [] -> true | _ :: _ -> false

(* --- protocol messages --- *)

(* The algorithmic payload (§3.2.3.1 plus the Move of phase II) travels
   inside a reliable-delivery envelope: every [Payload] carries a
   globally unique [msg_id], the receiver acknowledges and deduplicates
   by it, and the sender retransmits on a backoff timer until acked (or
   gives up).  A retransmission therefore re-delivers the same logical
   message at most once, which is what keeps the Dijkstra–Scholten
   [num]/[par] bookkeeping exact under drops and duplicates.

   [Heartbeat]/[Deadline] realize §3.2.5's monitoring ring with real
   messages: the active vehicle of a pair beats to its monitor, and a
   weak self-timer per pair checks on it — see docs/ROBUSTNESS.md. *)

type body =
  | Query of { init : int * int }
  | Reply of { init : int * int; flag : bool }
  | Move of { init : int * int; dest : Point.t; pair : int }

type msg =
  | Payload of { msg_id : int; body : body }
  | Ack of { msg_id : int }
  | Heartbeat of { pair : int }
  | Deadline of { pair : int }
  | Retry of { msg_id : int }

type event =
  | Job_served of { job : int; position : Point.t; vehicle : int; walk : int }
  | Vehicle_retired of { vehicle : int; pair : int }
  | Vehicle_died of { vehicle : int }
  | Computation_started of { initiator : int; pair : int }
  | Candidate_found of { initiator : int; pair : int }
  | Replacement of { vehicle : int; pair : int; dest : Point.t }
  | Search_starved of { pair : int }

(* --- vehicle state (§3.2.1), struct-of-arrays --- *)

(* Per-vehicle protocol state lives in parallel flat arrays indexed by
   vehicle id (docs/SCALE.md): one byte per enum, one word per scalar, no
   per-vehicle boxed record, so a 10^6-vehicle fleet costs a few hundred
   megabytes and the hot path never allocates per-vehicle state.  [-1]
   encodes the paper's NULL throughout. *)

let st_idle = 0
let st_active = 1
let st_done = 2
let st_dead = 3
let tr_waiting = 0
let tr_searching = 1
let tr_initiator = 2

(* In-flight reliable message awaiting its ack. *)
type pending = { p_src : int; p_dst : int; p_body : body; mutable attempts : int }

type world = {
  cfg : config;
  observer : event -> unit;
  dim : int;
  window : Box.t;
  n : int; (* fleet size = window volume; one vehicle per cell *)
  (* vehicles *)
  veh_pos : Point.t array;
  veh_energy : float array;
  veh_working : Bytes.t; (* st_* codes *)
  veh_transfer : Bytes.t; (* tr_* codes *)
  veh_pair : int array;
  (* Dijkstra–Scholten locals (§3.2.3.2) *)
  veh_par : int array;
  veh_child : int array;
  veh_num : int array;
  veh_init_id : int array; (* -1 = the paper's NULL identifier *)
  veh_init_seq : int array;
  (* pairs: ids are assigned cube by cube, so each cube's pairs form the
     contiguous range [cp_off.(c), cp_off.(c+1)) — the monitoring ring
     needs no explicit member list. *)
  n_pairs : int;
  pair_cube : int array;
  pair_anchor : int array; (* vehicle on cells.(0): initial active, timer host *)
  pair_dest : Point.t array; (* cells.(0): the replacement destination *)
  pair_active : int array; (* vehicle id, or -1 while a replacement is pending *)
  anchor_pair : int array; (* vehicle -> pair anchored at it, or -1 *)
  cell_pair : int array; (* cell (= vehicle id) -> owning pair *)
  cp_off : int array; (* cube -> first pair id *)
  (* per-pair monitoring-ring state (§3.2.5); the anchor hosts the pair's
     deadline self-timer (timers are fault-exempt, so any fixed vehicle
     works) *)
  w_beats : int array; (* heartbeats received for this pair *)
  w_beats_at_arm : int array;
  w_armed : Bytes.t;
  w_interval : float array;
  w_searching : Bytes.t; (* a replacement computation is in flight *)
  w_stalls : int array; (* deadline fires while a search was in flight *)
  w_starves : int array; (* consecutive starved searches *)
  w_hopeless : Bytes.t; (* stop searching; the pair stays uncovered *)
  (* Pair-coverage accounting: [covered.(p)] caches the quiescence
     predicate (hopeless, or active and alive) and [uncovered] counts the
     zeros, so [protocol_idle] — polled once per dispatched event — is
     O(1) instead of a fleet-wide scan. *)
  covered : Bytes.t;
  mutable uncovered : int;
  (* depot communication graph, CSR over cube-confined neighbors *)
  nbr_off : int array;
  nbr_ids : int array;
  des : msg Des.t;
  silent : Bytes.t;
  break_at : float array; (* used-energy threshold per vehicle (Ch. 4) *)
  phase2 : (int, int) Hashtbl.t; (* pending initiator id -> pair id *)
  rel_pending : (int, pending) Hashtbl.t;
  mutable rel_seen : Bytes.t; (* dedup bitset over dense msg_ids *)
  mutable next_msg_id : int;
  mutable seq : int;
  mutable served : int;
  mutable failures : failure list;
  mutable computations : int;
  mutable replacements : int;
  mutable starved : int;
  mutable violations : int;
  mutable retries_count : int;
  mutable livelocks : int;
  mutable livelocked : bool;
}

(* Protocol constants: the heartbeat deadline of §3.2.5, the idle backoff
   cap for deadline re-arming, and the retry schedule of the reliable
   layer (base * 2^k, at most [max_attempts] transmissions). *)
let heartbeat_timeout = 50.0
let max_deadline_interval = 1600.0
let retry_delay = 4.0
let max_attempts = 6
let stall_limit = 3
let starve_limit = 3

let working w v = Bytes.get_uint8 w.veh_working v
let set_working w v s = Bytes.set_uint8 w.veh_working v s
let transfer w v = Bytes.get_uint8 w.veh_transfer v
let set_transfer w v s = Bytes.set_uint8 w.veh_transfer v s
let alive w v = working w v <> st_dead
let hopeless w pid = Bytes.get_uint8 w.w_hopeless pid = 1
let searching w pid = Bytes.get_uint8 w.w_searching pid = 1
let armed w pid = Bytes.get_uint8 w.w_armed pid = 1

let pair_covered w pid =
  hopeless w pid
  ||
  let a = w.pair_active.(pid) in
  a >= 0 && alive w a

(* Re-derive one pair's coverage bit after any mutation of its active
   vehicle, its hopeless flag, or the active vehicle's liveness. *)
let sync_pair w pid =
  let ok = pair_covered w pid in
  let cur = Bytes.get_uint8 w.covered pid = 1 in
  if ok && not cur then begin
    Bytes.set_uint8 w.covered pid 1;
    w.uncovered <- w.uncovered - 1
  end
  else if (not ok) && cur then begin
    Bytes.set_uint8 w.covered pid 0;
    w.uncovered <- w.uncovered + 1
  end

(* Neighbor scans preserve the CSR fill order (Box.iter, row-major within
   the cube), which is the Query fan-out order and hence part of the
   deterministic trace. *)
let count_alive_neighbors w v =
  let c = ref 0 in
  for i = w.nbr_off.(v) to w.nbr_off.(v + 1) - 1 do
    if alive w w.nbr_ids.(i) then incr c
  done;
  !c

let iter_alive_neighbors w v f =
  for i = w.nbr_off.(v) to w.nbr_off.(v + 1) - 1 do
    if alive w w.nbr_ids.(i) then f w.nbr_ids.(i)
  done

let spend w v cost =
  w.veh_energy.(v) <- w.veh_energy.(v) -. cost;
  if w.veh_energy.(v) < -1e-9 then begin
    w.violations <- w.violations + 1;
    w.failures <-
      { job = w.served; position = w.veh_pos.(v); reason = "energy went negative" }
      :: w.failures
  end

(* A vehicle whose longevity fraction is exhausted breaks down right after
   the operation that crossed the threshold (Chapter 4 semantics).  No
   notification is sent: its pair's deadline notices the missing
   heartbeats and drives the replacement. *)
let maybe_break w v =
  if alive w v && w.cfg.capacity -. w.veh_energy.(v) >= w.break_at.(v) -. 1e-9
  then begin
    let was_active = working w v = st_active in
    set_working w v st_dead;
    w.observer (Vehicle_died { vehicle = v });
    if was_active then begin
      let pid = w.veh_pair.(v) in
      w.pair_active.(pid) <- -1;
      sync_pair w pid
    end
  end

(* --- world construction --- *)

let window_of ~side ~dim jobs_box =
  let lo = jobs_box.Box.lo in
  let hi =
    Array.init dim (fun i ->
        let extent = Box.side jobs_box i in
        let tiles = (extent + side - 1) / side in
        lo.(i) + (tiles * side) - 1)
  in
  Box.make ~lo ~hi

let jobs_box_of workload =
  let jobs = workload.Workload.jobs in
  let dim = workload.Workload.dim in
  let lo = Array.copy jobs.(0) and hi = Array.copy jobs.(0) in
  Array.iter
    (fun p ->
      for i = 0 to dim - 1 do
        if p.(i) < lo.(i) then lo.(i) <- p.(i);
        if p.(i) > hi.(i) then hi.(i) <- p.(i)
      done)
    jobs;
  Box.make ~lo ~hi

let fleet_size cfg workload =
  if Array.length workload.Workload.jobs = 0 then 0
  else
    Box.volume
      (window_of ~side:cfg.side ~dim:workload.Workload.dim
         (jobs_box_of workload))

let validate_ids ~n plan partitions =
  let check what id =
    if id < 0 || id >= n then
      invalid_arg
        (Printf.sprintf "Online: %s names vehicle %d outside the fleet [0,%d)"
           what id n)
  in
  List.iter (check "silent_initiators") plan.silent_initiators;
  List.iter (fun (_, id) -> check "deaths" id) plan.deaths;
  List.iter (fun (id, _) -> check "longevity" id) plan.longevity;
  List.iter (fun (_, id, _) -> check "outages" id) plan.outages;
  List.iter
    (fun (a, b) ->
      check "partitions" a;
      check "partitions" b)
    partitions

(* Forward declarations resolved after the handlers: the Des restart hook
   needs [arm_deadline], which needs the world built first. *)

let build ?(observer = fun (_ : event) -> ()) cfg ~dim ~jobs_box =
  let side = cfg.side in
  let window = window_of ~side ~dim jobs_box in
  let lo = window.Box.lo in
  let cubes = Array.of_list (Box.partition_cubes window ~side) in
  (* Tile counts per axis, axis 0 most significant — the mixed-radix
     order [Box.partition_cubes] lists cubes in. *)
  let counts =
    Array.init dim (fun i -> (Box.side window i + side - 1) / side)
  in
  let cube_of_point p =
    let k = ref 0 in
    for i = 0 to dim - 1 do
      let off = p.(i) - lo.(i) in
      if off < 0 || p.(i) > window.Box.hi.(i) then
        invalid_arg
          (Format.asprintf "Online.build: point %a outside the window %a"
             Point.pp p Box.pp window);
      k := (!k * counts.(i)) + (off / side)
    done;
    !k
  in
  let n = Box.volume window in
  validate_plan cfg.faults;
  validate_ids ~n cfg.faults cfg.partitions;
  (* Pairs, cube by cube (Snake.pairing), ids contiguous per cube. *)
  let n_cubes = Array.length cubes in
  let cp_off = Array.make (n_cubes + 1) 0 in
  let cell_pair = Array.make n (-1) in
  let rev_pairs = ref [] (* (cube, anchor vehicle, dest cell, partner) *)
  and n_pairs = ref 0 in
  Array.iteri
    (fun c cube ->
      cp_off.(c) <- !n_pairs;
      let { Snake.pairs = matched; unpaired } = Snake.pairing cube in
      let register cells =
        let pid = !n_pairs in
        incr n_pairs;
        let cube_id = cube_of_point cells.(0) in
        let anchor = Box.index window cells.(0) in
        let partner =
          if Array.length cells = 2 then Box.index window cells.(1) else -1
        in
        rev_pairs := (cube_id, anchor, cells.(0), partner) :: !rev_pairs;
        Array.iter (fun cell -> cell_pair.(Box.index window cell) <- pid) cells
      in
      Array.iter (fun (a, b) -> register [| a; b |]) matched;
      match unpaired with None -> () | Some cell -> register [| cell |])
    cubes;
  cp_off.(n_cubes) <- !n_pairs;
  let n_pairs = !n_pairs in
  let pair_cube = Array.make n_pairs 0 in
  let pair_anchor = Array.make n_pairs 0 in
  let pair_dest = Array.make n_pairs [||] in
  let pair_partner = Array.make n_pairs (-1) in
  List.iteri
    (fun i (cube_id, anchor, dest, partner) ->
      let pid = n_pairs - 1 - i in
      pair_cube.(pid) <- cube_id;
      pair_anchor.(pid) <- anchor;
      pair_dest.(pid) <- dest;
      pair_partner.(pid) <- partner)
    !rev_pairs;
  (* Initial roles: the anchor cell of each pair hosts the active vehicle,
     its partner stays idle (the paper's black/white split). *)
  let veh_working = Bytes.make n (Char.chr st_idle) in
  let veh_pair = Array.make n (-1) in
  let pair_active = Array.make n_pairs (-1) in
  let anchor_pair = Array.make n (-1) in
  for pid = 0 to n_pairs - 1 do
    let a = pair_anchor.(pid) in
    pair_active.(pid) <- a;
    anchor_pair.(a) <- pid;
    Bytes.set_uint8 veh_working a st_active;
    veh_pair.(a) <- pid;
    let partner = pair_partner.(pid) in
    if partner >= 0 then veh_pair.(partner) <- pid
  done;
  (* Depot-based communication graph, confined to cubes (§3.2.3), in CSR
     form: count pass, prefix sum, fill pass — all in Box.iter order so
     the adjacency order (and hence the Query fan-out) is unchanged. *)
  let nbr_off = Array.make (n + 1) 0 in
  Array.iter
    (fun cube ->
      Box.iter cube (fun home ->
          let id = Box.index window home in
          let c = ref 0 in
          Box.iter cube (fun p ->
              let d = Point.l1_dist p home in
              if d > 0 && d <= cfg.comm_radius then incr c);
          nbr_off.(id + 1) <- !c))
    cubes;
  for i = 1 to n do
    nbr_off.(i) <- nbr_off.(i) + nbr_off.(i - 1)
  done;
  let nbr_ids = Array.make nbr_off.(n) 0 in
  Array.iter
    (fun cube ->
      Box.iter cube (fun home ->
          let id = Box.index window home in
          let at = ref nbr_off.(id) in
          Box.iter cube (fun p ->
              let d = Point.l1_dist p home in
              if d > 0 && d <= cfg.comm_radius then begin
                nbr_ids.(!at) <- Box.index window p;
                incr at
              end)))
    cubes;
  let silent = Bytes.make n '\000' in
  List.iter
    (fun id -> Bytes.set_uint8 silent id 1)
    cfg.faults.silent_initiators;
  let break_at = Array.make n infinity in
  List.iter
    (fun (id, p) -> break_at.(id) <- p *. cfg.capacity)
    cfg.faults.longevity;
  let des = Des.create ~rng:(Rng.create cfg.seed) ~faults:cfg.chaos () in
  List.iter (fun (a, b) -> Des.partition des a b) cfg.partitions;
  let w =
    {
      cfg;
      observer;
      dim;
      window;
      n;
      veh_pos = Array.init n (fun id -> Box.point_of_index window id);
      veh_energy = Array.make n cfg.capacity;
      veh_working;
      veh_transfer = Bytes.make n (Char.chr tr_waiting);
      veh_pair;
      veh_par = Array.make n (-1);
      veh_child = Array.make n (-1);
      veh_num = Array.make n 0;
      veh_init_id = Array.make n (-1);
      veh_init_seq = Array.make n (-1);
      n_pairs;
      pair_cube;
      pair_anchor;
      pair_dest;
      pair_active;
      anchor_pair;
      cell_pair;
      cp_off;
      w_beats = Array.make n_pairs 0;
      w_beats_at_arm = Array.make n_pairs 0;
      w_armed = Bytes.make n_pairs '\000';
      w_interval = Array.make n_pairs heartbeat_timeout;
      w_searching = Bytes.make n_pairs '\000';
      w_stalls = Array.make n_pairs 0;
      w_starves = Array.make n_pairs 0;
      w_hopeless = Bytes.make n_pairs '\000';
      covered = Bytes.make n_pairs '\001'; (* every pair starts covered *)
      uncovered = 0;
      nbr_off;
      nbr_ids;
      des;
      silent;
      break_at;
      phase2 = Hashtbl.create 8;
      rel_pending = Hashtbl.create 32;
      rel_seen = Bytes.make 64 '\000';
      next_msg_id = 0;
      seq = 0;
      served = 0;
      failures = [];
      computations = 0;
      replacements = 0;
      starved = 0;
      violations = 0;
      retries_count = 0;
      livelocks = 0;
      livelocked = false;
    }
  in
  (* Bootstrap the monitoring ring: every pair starts with one armed
     deadline, so even a death before the first job is detected. *)
  for pid = 0 to n_pairs - 1 do
    Bytes.set_uint8 w.w_armed pid 1;
    w.w_beats_at_arm.(pid) <- w.w_beats.(pid);
    Des.send_after ~weak:true des ~delay:heartbeat_timeout
      ~src:w.pair_anchor.(pid) ~dst:w.pair_anchor.(pid)
      (Deadline { pair = pid })
  done;
  w

(* --- reliable send layer --- *)

let send_reliable w ~src ~dst body =
  let msg_id = w.next_msg_id in
  w.next_msg_id <- w.next_msg_id + 1;
  Des.send w.des ~src ~dst (Payload { msg_id; body });
  if w.cfg.retries then begin
    Hashtbl.replace w.rel_pending msg_id
      { p_src = src; p_dst = dst; p_body = body; attempts = 1 };
    Des.send_after ~weak:true w.des ~delay:retry_delay ~src ~dst:src
      (Retry { msg_id })
  end

(* Receiver-side dedup over dense message ids: a growable bitset instead
   of a hashtable, one bit per id ever sent. *)
let seen_mem w id =
  let byte = id lsr 3 in
  byte < Bytes.length w.rel_seen
  && Bytes.get_uint8 w.rel_seen byte land (1 lsl (id land 7)) <> 0

let seen_add w id =
  let byte = id lsr 3 in
  if byte >= Bytes.length w.rel_seen then begin
    let cap = max (2 * Bytes.length w.rel_seen) (byte + 1) in
    let grown = Bytes.make cap '\000' in
    Bytes.blit w.rel_seen 0 grown 0 (Bytes.length w.rel_seen);
    w.rel_seen <- grown
  end;
  Bytes.set_uint8 w.rel_seen byte
    (Bytes.get_uint8 w.rel_seen byte lor (1 lsl (id land 7)))

(* --- monitoring ring (§3.2.5, scenarios 2 and 3) --- *)

let monitor_of w ~pair_id =
  let cube = w.pair_cube.(pair_id) in
  let first = w.cp_off.(cube) in
  let count = w.cp_off.(cube + 1) - first in
  let start = pair_id - first in
  let rec scan k =
    if k >= count then None
    else begin
      let candidate = w.pair_active.(first + ((start + k) mod count)) in
      if candidate >= 0 && alive w candidate then Some candidate
      else scan (k + 1)
    end
  in
  scan 1

let arm_deadline w ~pair_id ~delay =
  Bytes.set_uint8 w.w_armed pair_id 1;
  w.w_beats_at_arm.(pair_id) <- w.w_beats.(pair_id);
  w.w_interval.(pair_id) <- delay;
  Des.send_after ~weak:true w.des ~delay ~src:w.pair_anchor.(pair_id)
    ~dst:w.pair_anchor.(pair_id)
    (Deadline { pair = pair_id })

let send_heartbeat w v =
  if working w v = st_active && w.veh_pair.(v) >= 0 then
    match monitor_of w ~pair_id:w.veh_pair.(v) with
    | None -> ()
    | Some m ->
        Metrics.incr m_heartbeats;
        Des.send ~weak:true w.des ~src:v ~dst:m
          (Heartbeat { pair = w.veh_pair.(v) })

let on_heartbeat w ~pair_id =
  w.w_beats.(pair_id) <- w.w_beats.(pair_id) + 1;
  if (not (armed w pair_id)) && not (hopeless w pair_id) then
    arm_deadline w ~pair_id ~delay:heartbeat_timeout

let note_starved w ~pair_id =
  w.starved <- w.starved + 1;
  Metrics.incr m_starved_searches;
  w.observer (Search_starved { pair = pair_id });
  Bytes.set_uint8 w.w_searching pair_id 0;
  w.w_starves.(pair_id) <- w.w_starves.(pair_id) + 1;
  if w.w_starves.(pair_id) >= starve_limit then begin
    Bytes.set_uint8 w.w_hopeless pair_id 1;
    sync_pair w pair_id
  end

(* --- diffusing computation (Algorithm 2) --- *)

let start_computation w ~initiator ~pair_id =
  let v = initiator in
  w.computations <- w.computations + 1;
  Metrics.incr m_computations;
  w.seq <- w.seq + 1;
  let init = (v, w.seq) in
  w.veh_init_id.(v) <- v;
  w.veh_init_seq.(v) <- w.seq;
  w.veh_par.(v) <- -1;
  w.veh_child.(v) <- -1;
  let num = count_alive_neighbors w v in
  w.veh_num.(v) <- num;
  if num = 0 then note_starved w ~pair_id
  else begin
    w.observer (Computation_started { initiator = v; pair = pair_id });
    set_transfer w v tr_initiator;
    Bytes.set_uint8 w.w_searching pair_id 1;
    Hashtbl.replace w.phase2 v pair_id;
    iter_alive_neighbors w v (fun q ->
        send_reliable w ~src:v ~dst:q (Query { init }))
  end

let complete_initiator w v =
  set_transfer w v tr_waiting;
  match Hashtbl.find_opt w.phase2 v with
  | None -> ()
  | Some pair_id ->
      Hashtbl.remove w.phase2 v;
      if w.veh_child.(v) >= 0 then begin
        w.observer (Candidate_found { initiator = v; pair = pair_id });
        let dest = w.pair_dest.(pair_id) in
        send_reliable w ~src:v ~dst:w.veh_child.(v)
          (Move
             {
               init = (w.veh_init_id.(v), w.veh_init_seq.(v));
               dest;
               pair = pair_id;
             })
      end
      else note_starved w ~pair_id

let same_init w p (iid, iseq) =
  w.veh_init_id.(p) = iid && w.veh_init_seq.(p) = iseq

let handle_query w p ~src init =
  if alive w p then begin
    if transfer w p = tr_waiting && not (same_init w p init) then begin
      let iid, iseq = init in
      w.veh_par.(p) <- src;
      w.veh_init_id.(p) <- iid;
      w.veh_init_seq.(p) <- iseq;
      w.veh_child.(p) <- -1;
      if working w p = st_idle then
        send_reliable w ~src:p ~dst:src (Reply { init; flag = true })
      else begin
        let num = count_alive_neighbors w p in
        w.veh_num.(p) <- num;
        if num = 0 then
          send_reliable w ~src:p ~dst:src (Reply { init; flag = false })
        else begin
          set_transfer w p tr_searching;
          iter_alive_neighbors w p (fun q ->
              send_reliable w ~src:p ~dst:q (Query { init }))
        end
      end
    end
    else send_reliable w ~src:p ~dst:src (Reply { init; flag = false })
  end

let handle_reply w p ~src init flag =
  if alive w p && same_init w p init && transfer w p <> tr_waiting then begin
    w.veh_num.(p) <- w.veh_num.(p) - 1;
    if flag && w.veh_child.(p) < 0 then begin
      w.veh_child.(p) <- src;
      if w.veh_par.(p) >= 0 then
        send_reliable w ~src:p ~dst:w.veh_par.(p) (Reply { init; flag = true })
    end;
    if w.veh_num.(p) = 0 then begin
      if transfer w p = tr_initiator then complete_initiator w p
      else begin
        (* Searching *)
        set_transfer w p tr_waiting;
        if w.veh_child.(p) < 0 && w.veh_par.(p) >= 0 then
          send_reliable w ~src:p ~dst:w.veh_par.(p) (Reply { init; flag = false })
      end
    end
  end

let handle_move w p init ~dest ~pair_id =
  if alive w p then begin
    if working w p = st_idle then begin
      (* Phase II terminus: the candidate relocates and takes over. *)
      spend w p (float_of_int (Point.l1_dist w.veh_pos.(p) dest));
      w.veh_pos.(p) <- dest;
      set_working w p st_active;
      w.veh_pair.(p) <- pair_id;
      w.pair_active.(pair_id) <- p;
      w.replacements <- w.replacements + 1;
      Metrics.incr m_replacements;
      w.observer (Replacement { vehicle = p; pair = pair_id; dest });
      Bytes.set_uint8 w.w_searching pair_id 0;
      w.w_stalls.(pair_id) <- 0;
      w.w_starves.(pair_id) <- 0;
      Bytes.set_uint8 w.w_hopeless pair_id 0;
      sync_pair w pair_id;
      send_heartbeat w p;
      if not (armed w pair_id) then
        arm_deadline w ~pair_id ~delay:heartbeat_timeout;
      maybe_break w p
    end
    else if w.veh_child.(p) >= 0 then
      send_reliable w ~src:p ~dst:w.veh_child.(p)
        (Move { init; dest; pair = pair_id })
    else
      (* Broken relay chain: the search failed; the pair's deadline will
         restart it. *)
      note_starved w ~pair_id
  end

(* Abandon a computation stuck on lost messages: reset its initiator so
   the pair's deadline can start a fresh one under a new (init, seq) —
   stale replies to the old identifier are then ignored. *)
let force_clear w ~pair_id =
  let stuck =
    Hashtbl.fold
      (fun init_id pid acc -> if pid = pair_id then init_id :: acc else acc)
      w.phase2 []
  in
  List.iter
    (fun init_id ->
      Hashtbl.remove w.phase2 init_id;
      if transfer w init_id = tr_initiator then set_transfer w init_id tr_waiting)
    stuck

let on_deadline w ~pair_id =
  Bytes.set_uint8 w.w_armed pair_id 0;
  if not (hopeless w pair_id) then begin
    let active = w.pair_active.(pair_id) in
    if active >= 0 && alive w active then begin
      (* Healthy pair.  Heartbeats since arming mean traffic: keep the
         base deadline.  A quiet pair backs off exponentially so an idle
         fleet re-arms only O(log T) times, yet a later death is still
         caught. *)
      let delay =
        if w.w_beats.(pair_id) > w.w_beats_at_arm.(pair_id) then
          heartbeat_timeout
        else Float.min max_deadline_interval (2.0 *. w.w_interval.(pair_id))
      in
      arm_deadline w ~pair_id ~delay
    end
    else begin
      Metrics.incr m_monitor_timeouts;
      if searching w pair_id then begin
        (* A search is already in flight; give it a little longer, then
           assume its messages are gone and clear the way for a fresh
           one. *)
        w.w_stalls.(pair_id) <- w.w_stalls.(pair_id) + 1;
        if w.w_stalls.(pair_id) >= stall_limit then begin
          w.w_stalls.(pair_id) <- 0;
          Bytes.set_uint8 w.w_searching pair_id 0;
          force_clear w ~pair_id
        end;
        arm_deadline w ~pair_id ~delay:heartbeat_timeout
      end
      else begin
        (match monitor_of w ~pair_id with
        | None -> note_starved w ~pair_id
        | Some m ->
            if alive w m && transfer w m = tr_waiting then
              start_computation w ~initiator:m ~pair_id);
        if not (hopeless w pair_id) then
          arm_deadline w ~pair_id ~delay:heartbeat_timeout
      end
    end
  end

(* Retry exhaustion: recover per message kind without breaking the
   Dijkstra–Scholten invariants. *)
let give_up w p =
  match p.p_body with
  | Query { init } ->
      (* Account the unreachable neighbor as a negative reply so [num]
         still reaches zero and the computation terminates. *)
      handle_reply w p.p_src ~src:p.p_dst init false
  | Reply _ ->
      (* The parent's own retry/stall machinery recovers. *)
      ()
  | Move { pair; _ } ->
      (* The relocation order is lost; let the pair's deadline restart
         the search from scratch. *)
      Bytes.set_uint8 w.w_searching pair 0

let on_retry w msg_id =
  match Hashtbl.find_opt w.rel_pending msg_id with
  | None -> () (* acked in the meantime *)
  | Some p ->
      if p.attempts >= max_attempts then begin
        Hashtbl.remove w.rel_pending msg_id;
        Metrics.incr m_retry_exhausted;
        give_up w p
      end
      else begin
        p.attempts <- p.attempts + 1;
        w.retries_count <- w.retries_count + 1;
        Metrics.incr m_retries;
        Des.send w.des ~src:p.p_src ~dst:p.p_dst
          (Payload { msg_id; body = p.p_body });
        let backoff = retry_delay *. float_of_int (1 lsl (p.attempts - 1)) in
        Des.send_after ~weak:true w.des ~delay:backoff ~src:p.p_src
          ~dst:p.p_src (Retry { msg_id })
      end

(* --- job service (§3.2.2, first part) --- *)

let retire w v =
  (* An active vehicle that can no longer guarantee the next job (walk 1 +
     serve 1) becomes done and triggers its replacement.  A silent
     initiator (scenario 2) does nothing — its monitor's deadline notices
     the missing heartbeats and initiates on its behalf. *)
  set_working w v st_done;
  Metrics.incr m_retirements;
  w.observer (Vehicle_retired { vehicle = v; pair = w.veh_pair.(v) });
  let pair_id = w.veh_pair.(v) in
  w.pair_active.(pair_id) <- -1;
  sync_pair w pair_id;
  if Bytes.get_uint8 w.silent v = 0 then
    start_computation w ~initiator:v ~pair_id

let process_job w ~index x =
  if not (Box.mem w.window x) then
    w.failures <-
      { job = index; position = x; reason = "job outside the window" }
      :: w.failures
  else begin
    let pair_id = w.cell_pair.(Box.index w.window x) in
    let active = w.pair_active.(pair_id) in
    if active < 0 then
      w.failures <-
        { job = index; position = x; reason = "no active vehicle in pair" }
        :: w.failures
    else begin
      let cost = float_of_int (Point.l1_dist w.veh_pos.(active) x + 1) in
      if w.veh_energy.(active) < cost -. 1e-9 then
        w.failures <-
          { job = index; position = x; reason = "active vehicle out of energy" }
          :: w.failures
      else begin
        let walk = Point.l1_dist w.veh_pos.(active) x in
        spend w active cost;
        w.veh_pos.(active) <- x;
        w.served <- w.served + 1;
        Metrics.incr m_jobs_served;
        w.observer
          (Job_served { job = index; position = x; vehicle = active; walk });
        send_heartbeat w active;
        maybe_break w active;
        if working w active = st_active && w.veh_energy.(active) < 2.0 then
          retire w active
      end
    end
  end

let kill w id =
  if alive w id then begin
    let was_active = working w id = st_active in
    set_working w id st_dead;
    w.observer (Vehicle_died { vehicle = id });
    if was_active then begin
      let pid = w.veh_pair.(id) in
      w.pair_active.(pid) <- -1;
      sync_pair w pid
    end
  end

(* A restart after a communication outage: the vehicle's pending
   self-timers died with the crash, so re-arm the deadline of the pair
   anchored at it (if one was armed) and the retry timers of its
   un-acked reliable messages.  Protocol state survives — an outage is
   radio silence, not a breakdown. *)
let on_vehicle_restart w v =
  let pid = w.anchor_pair.(v) in
  if pid >= 0 && armed w pid && not (hopeless w pid) then begin
    Bytes.set_uint8 w.w_armed pid 0;
    arm_deadline w ~pair_id:pid ~delay:heartbeat_timeout
  end;
  if w.cfg.retries then
    Hashtbl.iter
      (fun msg_id p ->
        if p.p_src = v then
          Des.send_after ~weak:true w.des ~delay:retry_delay ~src:v ~dst:v
            (Retry { msg_id }))
      w.rel_pending

(* --- runner --- *)

let dispatch_body w ~src ~dst body =
  match body with
  | Query { init } -> handle_query w dst ~src init
  | Reply { init; flag } -> handle_reply w dst ~src init flag
  | Move { init; dest; pair } -> handle_move w dst init ~dest ~pair_id:pair

let dispatch w ~time:_ ~src ~dst msg =
  match msg with
  | Payload { msg_id; body } ->
      (* Transport layer: a live receiver acks (also on duplicates, in
         case the first ack was lost) and processes each msg_id once. *)
      if alive w dst then begin
        if w.cfg.retries then Des.send w.des ~src:dst ~dst:src (Ack { msg_id });
        if not (seen_mem w msg_id) then begin
          seen_add w msg_id;
          dispatch_body w ~src ~dst body
        end
      end
  | Ack { msg_id } -> Hashtbl.remove w.rel_pending msg_id
  | Heartbeat { pair } -> on_heartbeat w ~pair_id:pair
  | Deadline { pair } -> on_deadline w ~pair_id:pair
  | Retry { msg_id } -> on_retry w msg_id

(* Quiescence for the drain: no un-acked reliable message, and every pair
   either covered by a live active vehicle or given up on.  Anything else
   means the weak timers still have work to do.  [uncovered] is kept
   current by [sync_pair], so the poll is O(1). *)
let protocol_idle w = Hashtbl.length w.rel_pending = 0 && w.uncovered = 0

let capacity_bound ~dim omega =
  float_of_int (Energy.add (Energy.scale 4 (Energy.pow 3 dim)) dim) *. omega

let empty_outcome =
  {
    served = 0;
    failures = [];
    max_energy_used = 0.0;
    mean_energy_used = 0.0;
    energy_consumers = 0;
    messages = 0;
    replacements = 0;
    computations = 0;
    starved_searches = 0;
    vehicles = 0;
    vehicles_still_serviceable = 0;
    drops = 0;
    dups = 0;
    retries_sent = 0;
    livelocks = 0;
    trace_digest = 0;
  }

(* Scheduled fault-plan events, merged and ordered by (job index, kind,
   id): deaths first, then outages, at each index — explicit comparison,
   no polymorphic ordering. *)
type fault_event =
  | Death of int * int (* job index, vehicle *)
  | Outage of int * int * float (* job index, vehicle, restart delay *)

let event_key = function Death (k, id) -> (k, 0, id) | Outage (k, id, _) -> (k, 1, id)

let compare_events a b =
  let ka, ta, ia = event_key a and kb, tb, ib = event_key b in
  match Int.compare ka kb with
  | 0 -> ( match Int.compare ta tb with 0 -> Int.compare ia ib | c -> c)
  | c -> c

let event_index e = match event_key e with k, _, _ -> k

(* Core runner over an explicit job list and window box.  [job_index]
   maps the local 1-based arrival position to the index reported in
   events and failures — the fleet runner passes the global position. *)
let run_core ?observer ?(job_index = fun i -> i) cfg ~dim ~jobs ~jobs_box =
  let w = build ?observer cfg ~dim ~jobs_box in
  Des.set_restart_hook w.des (fun ~time:_ v -> on_vehicle_restart w v);
  let quiesce () =
    (* After a livelock the run is degraded: draining stops, remaining
       jobs fail fast against the frozen state, and the outcome
       reports it.  This bounds total work even when retries are off
       and the channels keep eating messages. *)
    if not w.livelocked then
      match
        Des.run_until_quiescent w.des ~budget:cfg.quiesce_budget
          ~idle_ok:(fun () -> protocol_idle w)
          ~handler:(dispatch w)
      with
      | Des.Quiescent -> ()
      | Des.Livelock _ ->
          w.livelocked <- true;
          w.livelocks <- w.livelocks + 1
  in
  let events =
    List.sort compare_events
      (List.map (fun (k, id) -> Death (k, id)) cfg.faults.deaths
      @ List.map (fun (k, id, d) -> Outage (k, id, d)) cfg.faults.outages)
  in
  let remaining = ref events in
  let apply_faults upto =
    let rec loop () =
      match !remaining with
      | e :: rest when event_index e <= upto ->
          remaining := rest;
          (match e with
          | Death (_, id) -> kill w id
          | Outage (_, id, delay) ->
              Des.crash w.des id;
              Des.restart_after w.des ~delay id);
          quiesce ();
          loop ()
      | _ -> ()
    in
    loop ()
  in
  apply_faults 0;
  Array.iteri
    (fun i x ->
      process_job w ~index:(job_index (i + 1)) x;
      quiesce ();
      apply_faults (i + 1))
    jobs;
  let consumers = ref 0 and used_sum = ref 0.0 and used_max = ref 0.0 in
  for v = 0 to w.n - 1 do
    let used = cfg.capacity -. w.veh_energy.(v) in
    if used > !used_max then used_max := used;
    if used > 0.0 then begin
      incr consumers;
      used_sum := !used_sum +. used
    end
  done;
  let serviceable = ref 0 in
  for v = 0 to w.n - 1 do
    if alive w v && w.veh_energy.(v) >= 2.0 then incr serviceable
  done;
  let outcome =
    {
      served = w.served;
      failures = List.rev w.failures;
      max_energy_used = Float.max 0.0 !used_max;
      mean_energy_used =
        (if !consumers = 0 then 0.0 else !used_sum /. float_of_int !consumers);
      energy_consumers = !consumers;
      messages = Des.messages_delivered w.des;
      replacements = w.replacements;
      computations = w.computations;
      starved_searches = w.starved;
      vehicles = w.n;
      vehicles_still_serviceable = !serviceable;
      drops = Des.drops w.des;
      dups = Des.dups w.des;
      retries_sent = w.retries_count;
      livelocks = w.livelocks;
      trace_digest = Des.digest w.des;
    }
  in
  (outcome, w)

let run ?observer cfg workload =
  let jobs = workload.Workload.jobs in
  if Array.length jobs = 0 then begin
    validate_plan cfg.faults;
    empty_outcome
  end
  else
    fst
      (run_core ?observer cfg ~dim:workload.Workload.dim ~jobs
         ~jobs_box:(jobs_box_of workload))

(* --- fleet runner: cube-aligned shard bands on Pool workers --- *)

(* Every protocol channel is confined to one [side]-cube, and shard
   bands are unions of whole tile columns along axis 0, so there are no
   cross-shard channels at all: the conservative lookahead (Shard) is
   +infinity and the whole run is a single epoch of fully independent
   per-shard simulations.  Each shard gets its own deterministically
   derived seed; with [shards = 1] the run is byte-identical to {!run}.
   See docs/SCALE.md. *)

type fleet_outcome = {
  aggregate : outcome;
  shard_outcomes : outcome array;
  shard_digests : int array;
  shard_count : int;
  bytes_per_vehicle : float;
}

let world_footprint_bytes w =
  Obj.reachable_words (Obj.repr w) * (Sys.word_size / 8)

(* Same FNV-style mix as Des.digest, for folding shard digests into one
   combined witness. *)
let mix_digest h x = (h lxor x) * 0x100000001b3 land max_int

let derived_seed seed s = seed lxor (s * 0x9e3779b9)

let empty_fleet =
  {
    aggregate = empty_outcome;
    shard_outcomes = [||];
    shard_digests = [||];
    shard_count = 0;
    bytes_per_vehicle = 0.0;
  }

let aggregate_outcomes (outs : outcome array) =
  let sum f = Array.fold_left (fun acc o -> acc + f o) 0 outs in
  let consumers = sum (fun o -> o.energy_consumers) in
  let used_sum =
    Array.fold_left
      (fun acc o -> acc +. (o.mean_energy_used *. float_of_int o.energy_consumers))
      0.0 outs
  in
  let digests = Array.map (fun o -> o.trace_digest) outs in
  {
    served = sum (fun o -> o.served);
    failures =
      List.stable_sort
        (fun a b -> Int.compare a.job b.job)
        (List.concat_map (fun (o : outcome) -> o.failures) (Array.to_list outs));
    max_energy_used =
      Array.fold_left (fun acc o -> Float.max acc o.max_energy_used) 0.0 outs;
    mean_energy_used =
      (if consumers = 0 then 0.0 else used_sum /. float_of_int consumers);
    energy_consumers = consumers;
    messages = sum (fun o -> o.messages);
    replacements = sum (fun o -> o.replacements);
    computations = sum (fun o -> o.computations);
    starved_searches = sum (fun o -> o.starved_searches);
    vehicles = sum (fun o -> o.vehicles);
    vehicles_still_serviceable = sum (fun o -> o.vehicles_still_serviceable);
    drops = sum (fun o -> o.drops);
    dups = sum (fun o -> o.dups);
    retries_sent = sum (fun o -> o.retries_sent);
    livelocks = sum (fun o -> o.livelocks);
    trace_digest =
      (if Array.length digests = 1 then digests.(0)
       else Array.fold_left mix_digest 0x1505 digests);
  }

let run_fleet ?workers ~shards cfg workload =
  if shards < 1 then invalid_arg "Online.run_fleet: shards must be positive";
  let jobs = workload.Workload.jobs in
  if Array.length jobs = 0 then begin
    validate_plan cfg.faults;
    empty_fleet
  end
  else begin
    let dim = workload.Workload.dim in
    let window = window_of ~side:cfg.side ~dim (jobs_box_of workload) in
    let n = Box.volume window in
    validate_plan cfg.faults;
    validate_ids ~n cfg.faults cfg.partitions;
    let side = cfg.side in
    let tiles0 = Box.side window 0 / side in
    let eff = max 1 (min shards tiles0) in
    let bound s = s * tiles0 / eff in
    let tile_shard = Array.make tiles0 0 in
    for s = 0 to eff - 1 do
      for tile = bound s to bound (s + 1) - 1 do
        tile_shard.(tile) <- s
      done
    done;
    let lo0 = window.Box.lo.(0) in
    let shard_of_point p = tile_shard.((p.(0) - lo0) / side) in
    let boxes =
      Array.init eff (fun s ->
          let lo = Array.copy window.Box.lo and hi = Array.copy window.Box.hi in
          lo.(0) <- lo0 + (bound s * side);
          hi.(0) <- lo0 + (bound (s + 1) * side) - 1;
          Box.make ~lo ~hi)
    in
    (* Split arrivals per band, keeping the global 1-based positions for
       fault translation and reporting. *)
    let rev_jobs = Array.make eff [] in
    Array.iteri
      (fun i p ->
        let s = shard_of_point p in
        rev_jobs.(s) <- (i + 1, p) :: rev_jobs.(s))
      jobs;
    let shard_jobs = Array.map (fun l -> Array.of_list (List.rev l)) rev_jobs in
    (* Global vehicle id -> local id within shard [s], if it lives there. *)
    let local_id s id =
      let home = Box.point_of_index window id in
      if shard_of_point home = s then Some (Box.index boxes.(s) home) else None
    in
    (* Global job index -> how many of shard [s]'s jobs precede it. *)
    let local_k s k =
      Array.fold_left
        (fun acc (gi, _) -> if gi <= k then acc + 1 else acc)
        0 shard_jobs.(s)
    in
    let shard_cfg s =
      let faults =
        {
          silent_initiators =
            List.filter_map (local_id s) cfg.faults.silent_initiators;
          deaths =
            List.filter_map
              (fun (k, id) ->
                Option.map (fun lid -> (local_k s k, lid)) (local_id s id))
              cfg.faults.deaths;
          longevity =
            List.filter_map
              (fun (id, p) -> Option.map (fun lid -> (lid, p)) (local_id s id))
              cfg.faults.longevity;
          outages =
            List.filter_map
              (fun (k, id, d) ->
                Option.map (fun lid -> (local_k s k, lid, d)) (local_id s id))
              cfg.faults.outages;
        }
      in
      (* A partition across bands is moot: there is no cross-band channel
         to cut. *)
      let partitions =
        List.filter_map
          (fun (a, b) ->
            match (local_id s a, local_id s b) with
            | Some la, Some lb -> Some (la, lb)
            | _ -> None)
          cfg.partitions
      in
      { cfg with seed = derived_seed cfg.seed s; faults; partitions }
    in
    (* Materialize every shard's task on this domain so the workers only
       read their own immutable task tuple. *)
    let tasks =
      Array.init eff (fun s ->
          (shard_cfg s, Array.map snd shard_jobs.(s), Array.map fst shard_jobs.(s),
           boxes.(s)))
    in
    let saved = Pool.workers () in
    (match workers with Some k -> Pool.set_workers k | None -> ());
    let results =
      Fun.protect
        ~finally:(fun () -> Pool.set_workers saved)
        (fun () ->
          Pool.map
            (fun (cfg_s, jobs_s, gidx, box) ->
              let job_index i = if i = 0 then 0 else gidx.(i - 1) in
              run_core ~job_index cfg_s ~dim ~jobs:jobs_s ~jobs_box:box)
            tasks)
    in
    let outs = Array.map fst results in
    let total_bytes =
      Array.fold_left (fun acc (_, w) -> acc + world_footprint_bytes w) 0 results
    in
    let vehicles = Array.fold_left (fun acc o -> acc + o.vehicles) 0 outs in
    let bytes_per_vehicle =
      float_of_int total_bytes /. float_of_int (max 1 vehicles)
    in
    Metrics.set_gauge m_bytes_per_vehicle bytes_per_vehicle;
    {
      aggregate = aggregate_outcomes outs;
      shard_outcomes = outs;
      shard_digests = Array.map (fun o -> o.trace_digest) outs;
      shard_count = eff;
      bytes_per_vehicle;
    }
  end

let recommended ?(seed = 0) workload =
  let dm = Workload.demand workload in
  let omega, side = Omega.cube_fixpoint_with_side dm in
  let dim = workload.Workload.dim in
  (* +4 cushions the integer-lattice overheads (the done threshold and the
     walk-to-serve step) that Lemma 3.3.1's continuous accounting drops. *)
  config ~seed ~capacity:(capacity_bound ~dim omega +. 4.0) ~side ()

let min_feasible_capacity ?(tol = 0.25) ?(seed = 0) ~side workload =
  let succeeds capacity =
    succeeded (run (config ~seed ~capacity ~side ()) workload)
  in
  (* Find a feasible upper bound by doubling, then bisect. *)
  let rec grow hi attempts =
    if attempts = 0 then hi
    else if succeeds hi then hi
    else grow (2.0 *. hi) (attempts - 1)
  in
  let hi = grow 4.0 30 in
  let rec bisect lo hi =
    if hi -. lo <= tol then hi
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if succeeds mid then bisect lo mid else bisect mid hi
    end
  in
  bisect 0.0 hi
