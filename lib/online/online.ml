let m_jobs_served = Metrics.counter "online.jobs_served"
let m_retirements = Metrics.counter "online.retirements"
let m_computations = Metrics.counter "online.computations"
let m_replacements = Metrics.counter "online.replacements"
let m_monitor_timeouts = Metrics.counter "online.monitor_timeouts"
let m_starved_searches = Metrics.counter "online.starved_searches"
let m_heartbeats = Metrics.counter "online.heartbeats"
let m_retries = Metrics.counter "online.retries"
let m_retry_exhausted = Metrics.counter "online.retry_exhausted"

type fault_plan = {
  silent_initiators : int list;
  deaths : (int * int) list;
  longevity : (int * float) list;
}

let no_faults = { silent_initiators = []; deaths = []; longevity = [] }

type config = {
  capacity : float;
  side : int;
  comm_radius : int;
  seed : int;
  faults : fault_plan;
  chaos : Des.faults;
  partitions : (int * int) list;
  retries : bool;
  quiesce_budget : int;
}

(* Shape checks that need no fleet size; id ranges are checked in [build]
   once the window (and hence the fleet) is known. *)
let validate_plan plan =
  List.iter
    (fun (k, id) ->
      if k < 0 then
        invalid_arg
          (Printf.sprintf "Online: death of vehicle %d at negative job index %d"
             id k))
    plan.deaths;
  List.iter
    (fun (id, p) ->
      if not (p >= 0.0 && p <= 1.0) then
        invalid_arg
          (Printf.sprintf
             "Online: longevity fraction %g of vehicle %d outside [0,1]" p id))
    plan.longevity

let config ?(comm_radius = 2) ?(seed = 0) ?(faults = no_faults)
    ?(chaos = Des.reliable) ?(partitions = []) ?(retries = true)
    ?(quiesce_budget = 100_000) ~capacity ~side () =
  if capacity <= 0.0 then invalid_arg "Online.config: capacity must be positive";
  if side <= 0 then invalid_arg "Online.config: side must be positive";
  if comm_radius <= 0 then invalid_arg "Online.config: comm_radius must be positive";
  if quiesce_budget <= 0 then
    invalid_arg "Online.config: quiesce_budget must be positive";
  validate_plan faults;
  { capacity; side; comm_radius; seed; faults; chaos; partitions; retries;
    quiesce_budget }

type failure = { job : int; position : Point.t; reason : string }

type outcome = {
  served : int;
  failures : failure list;
  max_energy_used : float;
  mean_energy_used : float;
  messages : int;
  replacements : int;
  computations : int;
  starved_searches : int;
  vehicles : int;
  vehicles_still_serviceable : int;
  drops : int;
  dups : int;
  retries_sent : int;
  livelocks : int;
  trace_digest : int;
}

let succeeded o = match o.failures with [] -> true | _ :: _ -> false

(* --- protocol messages --- *)

(* The algorithmic payload (§3.2.3.1 plus the Move of phase II) travels
   inside a reliable-delivery envelope: every [Payload] carries a
   globally unique [msg_id], the receiver acknowledges and deduplicates
   by it, and the sender retransmits on a backoff timer until acked (or
   gives up).  A retransmission therefore re-delivers the same logical
   message at most once, which is what keeps the Dijkstra–Scholten
   [num]/[par] bookkeeping exact under drops and duplicates.

   [Heartbeat]/[Deadline] realize §3.2.5's monitoring ring with real
   messages: the active vehicle of a pair beats to its monitor, and a
   weak self-timer per pair checks on it — see docs/ROBUSTNESS.md. *)

type body =
  | Query of { init : int * int }
  | Reply of { init : int * int; flag : bool }
  | Move of { init : int * int; dest : Point.t; pair : int }

type msg =
  | Payload of { msg_id : int; body : body }
  | Ack of { msg_id : int }
  | Heartbeat of { pair : int }
  | Deadline of { pair : int }
  | Retry of { msg_id : int }

type event =
  | Job_served of { job : int; position : Point.t; vehicle : int; walk : int }
  | Vehicle_retired of { vehicle : int; pair : int }
  | Vehicle_died of { vehicle : int }
  | Computation_started of { initiator : int; pair : int }
  | Candidate_found of { initiator : int; pair : int }
  | Replacement of { vehicle : int; pair : int; dest : Point.t }
  | Search_starved of { pair : int }

(* --- vehicle state (§3.2.1) --- *)

type working = Idle | Active | Done | Dead
type transfer = Waiting | Searching | Initiator

type vehicle = {
  id : int;
  home : Point.t;
  cube : int;
  mutable pos : Point.t;
  mutable energy : float;
  mutable working : working;
  mutable transfer : transfer;
  mutable pair : int;
  (* Dijkstra–Scholten locals (§3.2.3.2); -1 encodes the paper's NULL. *)
  mutable par : int;
  mutable child : int;
  mutable init : (int * int) option;
  mutable num : int;
}

type pair_state = {
  pair_id : int;
  pair_cube : int;
  cells : Point.t array; (* one or two adjacent cells *)
  mutable active : int; (* vehicle id, or -1 while a replacement is pending *)
}

(* Per-pair monitoring-ring state.  [anchor] hosts the pair's deadline
   self-timer (timers are fault-exempt, so any fixed vehicle works). *)
type watch = {
  w_pair : int;
  anchor : int;
  mutable beats : int; (* heartbeats received for this pair *)
  mutable beats_at_arm : int;
  mutable armed : bool;
  mutable interval : float;
  mutable searching : bool; (* a replacement computation is in flight *)
  mutable stalls : int; (* deadline fires while a search was in flight *)
  mutable starves : int; (* consecutive starved searches *)
  mutable hopeless : bool; (* stop searching; the pair stays uncovered *)
}

(* In-flight reliable message awaiting its ack. *)
type pending = { p_src : int; p_dst : int; p_body : body; mutable attempts : int }

type world = {
  cfg : config;
  observer : event -> unit;
  dim : int;
  window : Box.t;
  vehicles : vehicle array;
  pairs : pair_state array;
  pair_of_cell : int Point.Tbl.t;
  neighbors : int list array;
  cube_pairs : int array array;
  watches : watch array;
  des : msg Des.t;
  silent : (int, unit) Hashtbl.t;
  break_at : float array; (* used-energy threshold per vehicle (Ch. 4) *)
  phase2 : (int, int) Hashtbl.t; (* pending initiator id -> pair id *)
  rel_pending : (int, pending) Hashtbl.t;
  rel_seen : (int, unit) Hashtbl.t;
  mutable next_msg_id : int;
  mutable seq : int;
  mutable served : int;
  mutable failures : failure list;
  mutable computations : int;
  mutable replacements : int;
  mutable starved : int;
  mutable violations : int;
  mutable retries_count : int;
  mutable livelocks : int;
  mutable livelocked : bool;
}

(* Protocol constants: the heartbeat deadline of §3.2.5, the idle backoff
   cap for deadline re-arming, and the retry schedule of the reliable
   layer (base * 2^k, at most [max_attempts] transmissions). *)
let heartbeat_timeout = 50.0
let max_deadline_interval = 1600.0
let retry_delay = 4.0
let max_attempts = 6
let stall_limit = 3
let starve_limit = 3

let alive v = v.working <> Dead

let alive_neighbors w v =
  List.filter (fun id -> alive w.vehicles.(id)) w.neighbors.(v.id)

let spend w v cost =
  v.energy <- v.energy -. cost;
  if v.energy < -1e-9 then begin
    w.violations <- w.violations + 1;
    w.failures <-
      { job = w.served; position = v.pos; reason = "energy went negative" }
      :: w.failures
  end

(* A vehicle whose longevity fraction is exhausted breaks down right after
   the operation that crossed the threshold (Chapter 4 semantics).  No
   notification is sent: its pair's deadline notices the missing
   heartbeats and drives the replacement. *)
let maybe_break w v =
  if alive v && w.cfg.capacity -. v.energy >= w.break_at.(v.id) -. 1e-9 then begin
    let was_active = v.working = Active in
    v.working <- Dead;
    w.observer (Vehicle_died { vehicle = v.id });
    if was_active then w.pairs.(v.pair).active <- -1
  end

(* --- world construction --- *)

let window_of ~side ~dim jobs_box =
  let lo = jobs_box.Box.lo in
  let hi =
    Array.init dim (fun i ->
        let extent = Box.side jobs_box i in
        let tiles = (extent + side - 1) / side in
        lo.(i) + (tiles * side) - 1)
  in
  Box.make ~lo ~hi

let jobs_box_of workload =
  let jobs = workload.Workload.jobs in
  let dim = workload.Workload.dim in
  let lo = Array.copy jobs.(0) and hi = Array.copy jobs.(0) in
  Array.iter
    (fun p ->
      for i = 0 to dim - 1 do
        if p.(i) < lo.(i) then lo.(i) <- p.(i);
        if p.(i) > hi.(i) then hi.(i) <- p.(i)
      done)
    jobs;
  Box.make ~lo ~hi

let fleet_size cfg workload =
  if Array.length workload.Workload.jobs = 0 then 0
  else
    Box.volume
      (window_of ~side:cfg.side ~dim:workload.Workload.dim
         (jobs_box_of workload))

let validate_ids ~n plan partitions =
  let check what id =
    if id < 0 || id >= n then
      invalid_arg
        (Printf.sprintf "Online: %s names vehicle %d outside the fleet [0,%d)"
           what id n)
  in
  List.iter (check "silent_initiators") plan.silent_initiators;
  List.iter (fun (_, id) -> check "deaths" id) plan.deaths;
  List.iter (fun (id, _) -> check "longevity" id) plan.longevity;
  List.iter
    (fun (a, b) ->
      check "partitions" a;
      check "partitions" b)
    partitions

let build ?(observer = fun (_ : event) -> ()) cfg ~dim ~jobs_box =
  let side = cfg.side in
  let window = window_of ~side ~dim jobs_box in
  let lo = window.Box.lo in
  let cubes = Array.of_list (Box.partition_cubes window ~side) in
  (* Tile counts per axis, axis 0 most significant — the mixed-radix
     order [Box.partition_cubes] lists cubes in. *)
  let counts =
    Array.init dim (fun i -> (Box.side window i + side - 1) / side)
  in
  let cube_of_point p =
    let k = ref 0 in
    for i = 0 to dim - 1 do
      let off = p.(i) - lo.(i) in
      if off < 0 || p.(i) > window.Box.hi.(i) then
        invalid_arg
          (Format.asprintf "Online.build: point %a outside the window %a"
             Point.pp p Box.pp window);
      k := (!k * counts.(i)) + (off / side)
    done;
    !k
  in
  let n = Box.volume window in
  validate_plan cfg.faults;
  validate_ids ~n cfg.faults cfg.partitions;
  let vehicles =
    Array.init n (fun id ->
        let home = Box.point_of_index window id in
        {
          id;
          home;
          cube = cube_of_point home;
          pos = home;
          energy = cfg.capacity;
          working = Idle;
          transfer = Waiting;
          pair = -1;
          par = -1;
          child = -1;
          init = None;
          num = 0;
        })
  in
  let pair_of_cell = Point.Tbl.create (2 * n) in
  let pairs = ref [] and n_pairs = ref 0 in
  let cube_pairs =
    Array.map
      (fun cube ->
        let { Snake.pairs = matched; unpaired } = Snake.pairing cube in
        let ids = ref [] in
        let register cells =
          let pid = !n_pairs in
          incr n_pairs;
          let cube_id = cube_of_point cells.(0) in
          pairs := { pair_id = pid; pair_cube = cube_id; cells; active = -1 } :: !pairs;
          Array.iter (fun c -> Point.Tbl.replace pair_of_cell c pid) cells;
          ids := pid :: !ids
        in
        Array.iter (fun (a, b) -> register [| a; b |]) matched;
        (match unpaired with None -> () | Some c -> register [| c |]);
        Array.of_list (List.rev !ids))
      cubes
  in
  let pairs = Array.of_list (List.rev !pairs) in
  (* Initial roles: the first cell of each pair hosts the active vehicle,
     its partner stays idle (the paper's black/white split). *)
  Array.iter
    (fun pr ->
      let active_vehicle = Box.index window pr.cells.(0) in
      pr.active <- active_vehicle;
      let v = vehicles.(active_vehicle) in
      v.working <- Active;
      v.pair <- pr.pair_id;
      if Array.length pr.cells = 2 then begin
        let idle = vehicles.(Box.index window pr.cells.(1)) in
        idle.working <- Idle;
        idle.pair <- pr.pair_id
      end)
    pairs;
  (* Depot-based communication graph, confined to cubes (§3.2.3). *)
  let neighbors =
    Array.map
      (fun v ->
        let cube = cubes.(v.cube) in
        let out = ref [] in
        Box.iter cube (fun p ->
            let d = Point.l1_dist p v.home in
            if d > 0 && d <= cfg.comm_radius then
              out := Box.index window p :: !out);
        List.rev !out)
      vehicles
  in
  let watches =
    Array.map
      (fun pr ->
        {
          w_pair = pr.pair_id;
          anchor = Box.index window pr.cells.(0);
          beats = 0;
          beats_at_arm = 0;
          armed = false;
          interval = heartbeat_timeout;
          searching = false;
          stalls = 0;
          starves = 0;
          hopeless = false;
        })
      pairs
  in
  let silent = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace silent id ()) cfg.faults.silent_initiators;
  let break_at = Array.make n infinity in
  List.iter
    (fun (id, p) -> break_at.(id) <- p *. cfg.capacity)
    cfg.faults.longevity;
  let des = Des.create ~rng:(Rng.create cfg.seed) ~faults:cfg.chaos () in
  List.iter (fun (a, b) -> Des.partition des a b) cfg.partitions;
  let w =
    {
      cfg;
      observer;
      dim;
      window;
      vehicles;
      pairs;
      pair_of_cell;
      neighbors;
      cube_pairs;
      watches;
      des;
      silent;
      break_at;
      phase2 = Hashtbl.create 8;
      rel_pending = Hashtbl.create 32;
      rel_seen = Hashtbl.create 64;
      next_msg_id = 0;
      seq = 0;
      served = 0;
      failures = [];
      computations = 0;
      replacements = 0;
      starved = 0;
      violations = 0;
      retries_count = 0;
      livelocks = 0;
      livelocked = false;
    }
  in
  (* Bootstrap the monitoring ring: every pair starts with one armed
     deadline, so even a death before the first job is detected. *)
  Array.iter
    (fun wt ->
      wt.armed <- true;
      wt.beats_at_arm <- wt.beats;
      Des.send_after ~weak:true des ~delay:heartbeat_timeout ~src:wt.anchor
        ~dst:wt.anchor (Deadline { pair = wt.w_pair }))
    watches;
  w

(* --- reliable send layer --- *)

let send_reliable w ~src ~dst body =
  let msg_id = w.next_msg_id in
  w.next_msg_id <- w.next_msg_id + 1;
  Des.send w.des ~src ~dst (Payload { msg_id; body });
  if w.cfg.retries then begin
    Hashtbl.replace w.rel_pending msg_id
      { p_src = src; p_dst = dst; p_body = body; attempts = 1 };
    Des.send_after ~weak:true w.des ~delay:retry_delay ~src ~dst:src
      (Retry { msg_id })
  end

(* --- monitoring ring (§3.2.5, scenarios 2 and 3) --- *)

let monitor_of w ~pair_id =
  let order = w.cube_pairs.(w.pairs.(pair_id).pair_cube) in
  let n = Array.length order in
  let start =
    let rec find i = if order.(i) = pair_id then i else find (i + 1) in
    find 0
  in
  let rec scan k =
    if k >= n then None
    else begin
      let candidate = w.pairs.(order.((start + k) mod n)).active in
      if candidate >= 0 && alive w.vehicles.(candidate) then Some candidate
      else scan (k + 1)
    end
  in
  scan 1

let arm_deadline w ~pair_id ~delay =
  let wt = w.watches.(pair_id) in
  wt.armed <- true;
  wt.beats_at_arm <- wt.beats;
  wt.interval <- delay;
  Des.send_after ~weak:true w.des ~delay ~src:wt.anchor ~dst:wt.anchor
    (Deadline { pair = pair_id })

let send_heartbeat w v =
  if v.working = Active && v.pair >= 0 then
    match monitor_of w ~pair_id:v.pair with
    | None -> ()
    | Some m ->
        Metrics.incr m_heartbeats;
        Des.send ~weak:true w.des ~src:v.id ~dst:m (Heartbeat { pair = v.pair })

let on_heartbeat w ~pair_id =
  let wt = w.watches.(pair_id) in
  wt.beats <- wt.beats + 1;
  if (not wt.armed) && not wt.hopeless then
    arm_deadline w ~pair_id ~delay:heartbeat_timeout

let note_starved w ~pair_id =
  w.starved <- w.starved + 1;
  Metrics.incr m_starved_searches;
  w.observer (Search_starved { pair = pair_id });
  let wt = w.watches.(pair_id) in
  wt.searching <- false;
  wt.starves <- wt.starves + 1;
  if wt.starves >= starve_limit then wt.hopeless <- true

(* --- diffusing computation (Algorithm 2) --- *)

let start_computation w ~initiator ~pair_id =
  let v = initiator in
  w.computations <- w.computations + 1;
  Metrics.incr m_computations;
  w.seq <- w.seq + 1;
  let init = (v.id, w.seq) in
  v.init <- Some init;
  v.par <- -1;
  v.child <- -1;
  let ns = alive_neighbors w v in
  v.num <- List.length ns;
  if v.num = 0 then note_starved w ~pair_id
  else begin
    w.observer (Computation_started { initiator = v.id; pair = pair_id });
    v.transfer <- Initiator;
    w.watches.(pair_id).searching <- true;
    Hashtbl.replace w.phase2 v.id pair_id;
    List.iter (fun q -> send_reliable w ~src:v.id ~dst:q (Query { init })) ns
  end

let complete_initiator w v =
  v.transfer <- Waiting;
  match Hashtbl.find_opt w.phase2 v.id with
  | None -> ()
  | Some pair_id ->
      Hashtbl.remove w.phase2 v.id;
      if v.child >= 0 then begin
        w.observer (Candidate_found { initiator = v.id; pair = pair_id });
        let dest = w.pairs.(pair_id).cells.(0) in
        send_reliable w ~src:v.id ~dst:v.child
          (Move { init = Option.get v.init; dest; pair = pair_id })
      end
      else note_starved w ~pair_id

let handle_query w p ~src init =
  if alive p then begin
    if p.transfer = Waiting && p.init <> Some init then begin
      p.par <- src;
      p.init <- Some init;
      p.child <- -1;
      if p.working = Idle then
        send_reliable w ~src:p.id ~dst:src (Reply { init; flag = true })
      else begin
        let ns = alive_neighbors w p in
        p.num <- List.length ns;
        if p.num = 0 then
          send_reliable w ~src:p.id ~dst:src (Reply { init; flag = false })
        else begin
          p.transfer <- Searching;
          List.iter (fun q -> send_reliable w ~src:p.id ~dst:q (Query { init })) ns
        end
      end
    end
    else send_reliable w ~src:p.id ~dst:src (Reply { init; flag = false })
  end

let handle_reply w p ~src init flag =
  if alive p && p.init = Some init && p.transfer <> Waiting then begin
    p.num <- p.num - 1;
    if flag && p.child < 0 then begin
      p.child <- src;
      if p.par >= 0 then
        send_reliable w ~src:p.id ~dst:p.par (Reply { init; flag = true })
    end;
    if p.num = 0 then begin
      match p.transfer with
      | Initiator -> complete_initiator w p
      | Searching ->
          p.transfer <- Waiting;
          if p.child < 0 && p.par >= 0 then
            send_reliable w ~src:p.id ~dst:p.par (Reply { init; flag = false })
      | Waiting -> ()
    end
  end

let handle_move w p init ~dest ~pair_id =
  if alive p then begin
    if p.working = Idle then begin
      (* Phase II terminus: the candidate relocates and takes over. *)
      spend w p (float_of_int (Point.l1_dist p.pos dest));
      p.pos <- dest;
      p.working <- Active;
      p.pair <- pair_id;
      w.pairs.(pair_id).active <- p.id;
      w.replacements <- w.replacements + 1;
      Metrics.incr m_replacements;
      w.observer (Replacement { vehicle = p.id; pair = pair_id; dest });
      let wt = w.watches.(pair_id) in
      wt.searching <- false;
      wt.stalls <- 0;
      wt.starves <- 0;
      wt.hopeless <- false;
      send_heartbeat w p;
      if not wt.armed then arm_deadline w ~pair_id ~delay:heartbeat_timeout;
      maybe_break w p
    end
    else if p.child >= 0 then
      send_reliable w ~src:p.id ~dst:p.child (Move { init; dest; pair = pair_id })
    else
      (* Broken relay chain: the search failed; the pair's deadline will
         restart it. *)
      note_starved w ~pair_id
  end

(* Abandon a computation stuck on lost messages: reset its initiator so
   the pair's deadline can start a fresh one under a new (init, seq) —
   stale replies to the old identifier are then ignored. *)
let force_clear w ~pair_id =
  let stuck =
    Hashtbl.fold
      (fun init_id pid acc -> if pid = pair_id then init_id :: acc else acc)
      w.phase2 []
  in
  List.iter
    (fun init_id ->
      Hashtbl.remove w.phase2 init_id;
      let v = w.vehicles.(init_id) in
      if v.transfer = Initiator then v.transfer <- Waiting)
    stuck

let on_deadline w ~pair_id =
  let wt = w.watches.(pair_id) in
  wt.armed <- false;
  if not wt.hopeless then begin
    let pr = w.pairs.(pair_id) in
    if pr.active >= 0 && alive w.vehicles.(pr.active) then begin
      (* Healthy pair.  Heartbeats since arming mean traffic: keep the
         base deadline.  A quiet pair backs off exponentially so an idle
         fleet re-arms only O(log T) times, yet a later death is still
         caught. *)
      let delay =
        if wt.beats > wt.beats_at_arm then heartbeat_timeout
        else Float.min max_deadline_interval (2.0 *. wt.interval)
      in
      arm_deadline w ~pair_id ~delay
    end
    else begin
      Metrics.incr m_monitor_timeouts;
      if wt.searching then begin
        (* A search is already in flight; give it a little longer, then
           assume its messages are gone and clear the way for a fresh
           one. *)
        wt.stalls <- wt.stalls + 1;
        if wt.stalls >= stall_limit then begin
          wt.stalls <- 0;
          wt.searching <- false;
          force_clear w ~pair_id
        end;
        arm_deadline w ~pair_id ~delay:heartbeat_timeout
      end
      else begin
        (match monitor_of w ~pair_id with
        | None -> note_starved w ~pair_id
        | Some m ->
            let mv = w.vehicles.(m) in
            if alive mv && mv.transfer = Waiting then
              start_computation w ~initiator:mv ~pair_id);
        if not wt.hopeless then arm_deadline w ~pair_id ~delay:heartbeat_timeout
      end
    end
  end

(* Retry exhaustion: recover per message kind without breaking the
   Dijkstra–Scholten invariants. *)
let give_up w p =
  match p.p_body with
  | Query { init } ->
      (* Account the unreachable neighbor as a negative reply so [num]
         still reaches zero and the computation terminates. *)
      handle_reply w w.vehicles.(p.p_src) ~src:p.p_dst init false
  | Reply _ ->
      (* The parent's own retry/stall machinery recovers. *)
      ()
  | Move { pair; _ } ->
      (* The relocation order is lost; let the pair's deadline restart
         the search from scratch. *)
      w.watches.(pair).searching <- false

let on_retry w msg_id =
  match Hashtbl.find_opt w.rel_pending msg_id with
  | None -> () (* acked in the meantime *)
  | Some p ->
      if p.attempts >= max_attempts then begin
        Hashtbl.remove w.rel_pending msg_id;
        Metrics.incr m_retry_exhausted;
        give_up w p
      end
      else begin
        p.attempts <- p.attempts + 1;
        w.retries_count <- w.retries_count + 1;
        Metrics.incr m_retries;
        Des.send w.des ~src:p.p_src ~dst:p.p_dst
          (Payload { msg_id; body = p.p_body });
        let backoff = retry_delay *. float_of_int (1 lsl (p.attempts - 1)) in
        Des.send_after ~weak:true w.des ~delay:backoff ~src:p.p_src
          ~dst:p.p_src (Retry { msg_id })
      end

(* --- job service (§3.2.2, first part) --- *)

let retire w v =
  (* An active vehicle that can no longer guarantee the next job (walk 1 +
     serve 1) becomes done and triggers its replacement.  A silent
     initiator (scenario 2) does nothing — its monitor's deadline notices
     the missing heartbeats and initiates on its behalf. *)
  v.working <- Done;
  Metrics.incr m_retirements;
  w.observer (Vehicle_retired { vehicle = v.id; pair = v.pair });
  let pair_id = v.pair in
  w.pairs.(pair_id).active <- -1;
  if not (Hashtbl.mem w.silent v.id) then
    start_computation w ~initiator:v ~pair_id

let process_job w ~index x =
  match Point.Tbl.find_opt w.pair_of_cell x with
  | None ->
      w.failures <-
        { job = index; position = x; reason = "job outside the window" } :: w.failures
  | Some pair_id ->
      let pr = w.pairs.(pair_id) in
      if pr.active < 0 then
        w.failures <-
          { job = index; position = x; reason = "no active vehicle in pair" }
          :: w.failures
      else begin
        let v = w.vehicles.(pr.active) in
        let cost = float_of_int (Point.l1_dist v.pos x + 1) in
        if v.energy < cost -. 1e-9 then
          w.failures <-
            { job = index; position = x; reason = "active vehicle out of energy" }
            :: w.failures
        else begin
          let walk = Point.l1_dist v.pos x in
          spend w v cost;
          v.pos <- x;
          w.served <- w.served + 1;
          Metrics.incr m_jobs_served;
          w.observer (Job_served { job = index; position = x; vehicle = v.id; walk });
          send_heartbeat w v;
          maybe_break w v;
          if v.working = Active && v.energy < 2.0 then retire w v
        end
      end

let kill w id =
  let v = w.vehicles.(id) in
  if alive v then begin
    let was_active = v.working = Active in
    v.working <- Dead;
    w.observer (Vehicle_died { vehicle = v.id });
    if was_active then w.pairs.(v.pair).active <- -1
  end

(* --- runner --- *)

let dispatch_body w ~src ~dst body =
  let p = w.vehicles.(dst) in
  match body with
  | Query { init } -> handle_query w p ~src init
  | Reply { init; flag } -> handle_reply w p ~src init flag
  | Move { init; dest; pair } -> handle_move w p init ~dest ~pair_id:pair

let dispatch w ~time:_ ~src ~dst msg =
  match msg with
  | Payload { msg_id; body } ->
      (* Transport layer: a live receiver acks (also on duplicates, in
         case the first ack was lost) and processes each msg_id once. *)
      if alive w.vehicles.(dst) then begin
        if w.cfg.retries then Des.send w.des ~src:dst ~dst:src (Ack { msg_id });
        if not (Hashtbl.mem w.rel_seen msg_id) then begin
          Hashtbl.replace w.rel_seen msg_id ();
          dispatch_body w ~src ~dst body
        end
      end
  | Ack { msg_id } -> Hashtbl.remove w.rel_pending msg_id
  | Heartbeat { pair } -> on_heartbeat w ~pair_id:pair
  | Deadline { pair } -> on_deadline w ~pair_id:pair
  | Retry { msg_id } -> on_retry w msg_id

(* Quiescence for the drain: no un-acked reliable message, and every pair
   either covered by a live active vehicle or given up on.  Anything else
   means the weak timers still have work to do. *)
let protocol_idle w =
  Hashtbl.length w.rel_pending = 0
  && Array.for_all
       (fun wt ->
         wt.hopeless
         ||
         let pr = w.pairs.(wt.w_pair) in
         pr.active >= 0 && alive w.vehicles.(pr.active))
       w.watches

let capacity_bound ~dim omega =
  float_of_int (Energy.add (Energy.scale 4 (Energy.pow 3 dim)) dim) *. omega

let empty_outcome =
  {
    served = 0;
    failures = [];
    max_energy_used = 0.0;
    mean_energy_used = 0.0;
    messages = 0;
    replacements = 0;
    computations = 0;
    starved_searches = 0;
    vehicles = 0;
    vehicles_still_serviceable = 0;
    drops = 0;
    dups = 0;
    retries_sent = 0;
    livelocks = 0;
    trace_digest = 0;
  }

let run ?observer cfg workload =
  let jobs = workload.Workload.jobs in
  if Array.length jobs = 0 then begin
    validate_plan cfg.faults;
    empty_outcome
  end
  else begin
    let dim = workload.Workload.dim in
    let jobs_box = jobs_box_of workload in
    let w = build ?observer cfg ~dim ~jobs_box in
    let quiesce () =
      (* After a livelock the run is degraded: draining stops, remaining
         jobs fail fast against the frozen state, and the outcome
         reports it.  This bounds total work even when retries are off
         and the channels keep eating messages. *)
      if not w.livelocked then
        match
          Des.run_until_quiescent w.des ~budget:cfg.quiesce_budget
            ~idle_ok:(fun () -> protocol_idle w)
            ~handler:(dispatch w)
        with
        | Des.Quiescent -> ()
        | Des.Livelock _ ->
            w.livelocked <- true;
            w.livelocks <- w.livelocks + 1
    in
    let compare_deaths (k1, id1) (k2, id2) =
      match Int.compare k1 k2 with 0 -> Int.compare id1 id2 | c -> c
    in
    let deaths = List.sort compare_deaths cfg.faults.deaths in
    let remaining = ref deaths in
    let apply_deaths upto =
      let rec loop () =
        match !remaining with
        | (k, id) :: rest when k <= upto ->
            remaining := rest;
            kill w id;
            quiesce ();
            loop ()
        | _ -> ()
      in
      loop ()
    in
    apply_deaths 0;
    Array.iteri
      (fun i x ->
        process_job w ~index:(i + 1) x;
        quiesce ();
        apply_deaths (i + 1))
      jobs;
    let used =
      Array.map (fun v -> Float.max 0.0 (cfg.capacity -. v.energy)) w.vehicles
    in
    let consumers = Array.of_list (List.filter (fun u -> u > 0.0) (Array.to_list used)) in
    {
      served = w.served;
      failures = List.rev w.failures;
      max_energy_used =
        Array.fold_left
          (fun acc v -> Float.max acc (cfg.capacity -. v.energy))
          0.0 w.vehicles;
      mean_energy_used = (if Array.length consumers = 0 then 0.0 else Stats.mean consumers);
      messages = Des.messages_delivered w.des;
      replacements = w.replacements;
      computations = w.computations;
      starved_searches = w.starved;
      vehicles = Array.length w.vehicles;
      vehicles_still_serviceable =
        Array.fold_left
          (fun acc v -> if alive v && v.energy >= 2.0 then acc + 1 else acc)
          0 w.vehicles;
      drops = Des.drops w.des;
      dups = Des.dups w.des;
      retries_sent = w.retries_count;
      livelocks = w.livelocks;
      trace_digest = Des.digest w.des;
    }
  end

let recommended ?(seed = 0) workload =
  let dm = Workload.demand workload in
  let omega, side = Omega.cube_fixpoint_with_side dm in
  let dim = workload.Workload.dim in
  (* +4 cushions the integer-lattice overheads (the done threshold and the
     walk-to-serve step) that Lemma 3.3.1's continuous accounting drops. *)
  config ~seed ~capacity:(capacity_bound ~dim omega +. 4.0) ~side ()

let min_feasible_capacity ?(tol = 0.25) ?(seed = 0) ~side workload =
  let succeeds capacity =
    succeeded (run (config ~seed ~capacity ~side ()) workload)
  in
  (* Find a feasible upper bound by doubling, then bisect. *)
  let rec grow hi attempts =
    if attempts = 0 then hi
    else if succeeds hi then hi
    else grow (2.0 *. hi) (attempts - 1)
  in
  let hi = grow 4.0 30 in
  let rec bisect lo hi =
    if hi -. lo <= tol then hi
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if succeeds mid then bisect lo mid else bisect mid hi
    end
  in
  bisect 0.0 hi
