(** Finite-support demand functions [d : Z^l -> N].

    In the paper every job is a unit request, so [d(x)] is the number of
    jobs arriving at [x] (§1.3).  A demand map stores the finite support
    explicitly; all positions outside have demand 0. *)

type t

val empty : int -> t
(** [empty l] is the zero demand on [Z^l]. *)

val dim : t -> int

val add : t -> Point.t -> int -> t
(** [add t x k] increases [d(x)] by [k >= 0].
    @raise Invalid_argument if [k < 0] or the dimension of [x] differs. *)

val remove : t -> Point.t -> int -> t
(** [remove t x k] decreases [d(x)] by [k >= 0]; the binding is dropped
    when it reaches 0, so {!support} stays strictly positive.
    @raise Invalid_argument if [k < 0], if the dimension of [x] differs,
    or if the removal would drive [d(x)] below 0. *)

val of_alist : int -> (Point.t * int) list -> t
(** Builds a map from (position, demand) pairs, summing duplicates. *)

val of_jobs : int -> Point.t list -> t
(** Aggregates an arrival sequence of unit jobs (the [d(x) = Σ I(x,x_i)]
    of §1.3). *)

val value : t -> Point.t -> int

val support : t -> Point.t list
(** Positions with strictly positive demand, in lexicographic order. *)

val support_size : t -> int

val total : t -> int
(** [Σ_x d(x)]. *)

val max_demand : t -> int
(** The paper's [D]; 0 for empty demand. *)

val bounding_box : t -> Box.t option
(** Smallest box containing the support; [None] when empty. *)

val fold : t -> init:'a -> f:('a -> Point.t -> int -> 'a) -> 'a

val iter : t -> (Point.t -> int -> unit) -> unit

val pp : Format.formatter -> t -> unit
