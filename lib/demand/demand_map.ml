type t = { l : int; map : int Point.Map.t }

let empty l =
  if l <= 0 then invalid_arg "Demand_map.empty: dimension must be positive";
  { l; map = Point.Map.empty }

let dim t = t.l

let add t x k =
  if k < 0 then invalid_arg "Demand_map.add: negative demand";
  if Point.dim x <> t.l then invalid_arg "Demand_map.add: dimension mismatch";
  if k = 0 then t
  else
    {
      t with
      map =
        Point.Map.update x
          (function None -> Some k | Some v -> Some (v + k))
          t.map;
    }

let remove t x k =
  if k < 0 then invalid_arg "Demand_map.remove: negative demand";
  if Point.dim x <> t.l then invalid_arg "Demand_map.remove: dimension mismatch";
  if k = 0 then t
  else
    let v = match Point.Map.find_opt x t.map with None -> 0 | Some v -> v in
    if k > v then invalid_arg "Demand_map.remove: demand would become negative"
    else if k = v then { t with map = Point.Map.remove x t.map }
    else { t with map = Point.Map.add x (v - k) t.map }

let of_alist l alist = List.fold_left (fun t (x, k) -> add t x k) (empty l) alist

let of_jobs l jobs = List.fold_left (fun t x -> add t x 1) (empty l) jobs

let value t x = match Point.Map.find_opt x t.map with None -> 0 | Some v -> v

let support t = List.map fst (Point.Map.bindings t.map)

let support_size t = Point.Map.cardinal t.map

let total t = Point.Map.fold (fun _ v acc -> acc + v) t.map 0

let max_demand t = Point.Map.fold (fun _ v acc -> max v acc) t.map 0

let bounding_box t =
  match Point.Map.min_binding_opt t.map with
  | None -> None
  | Some (p0, _) ->
      let lo = Array.copy p0 and hi = Array.copy p0 in
      Point.Map.iter
        (fun p _ ->
          for i = 0 to t.l - 1 do
            if p.(i) < lo.(i) then lo.(i) <- p.(i);
            if p.(i) > hi.(i) then hi.(i) <- p.(i)
          done)
        t.map;
      Some (Box.make ~lo ~hi)

let fold t ~init ~f = Point.Map.fold (fun p v acc -> f acc p v) t.map init

let iter t f = Point.Map.iter f t.map

let pp fmt t =
  Format.fprintf fmt "@[<v>demand (dim %d, total %d):@," t.l (total t);
  Point.Map.iter (fun p v -> Format.fprintf fmt "  %a -> %d@," Point.pp p v) t.map;
  Format.fprintf fmt "@]"
