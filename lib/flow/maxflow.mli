(** Dinic's maximum-flow algorithm on integer capacities.

    This is the combinatorial engine behind the paper's linear program
    (2.1): for a fixed supply [ω] and radius [r], feasibility of the
    supply-demand transport is a bipartite max-flow question, and the exact
    LP value is recovered by a search over [ω] (see {!Transport}).

    The network is an {e arena}: one allocation serves a whole family of
    related flow problems.  After a [max_flow] run the residual state is
    kept, and {!set_even_caps} can raise or lower edge capacities while
    preserving the routed flow, so a monotone parameter search (the supply
    bisection in [Transport.min_uniform_supply]) re-augments incrementally
    instead of rebuilding.  {!mark}/{!rewind} snapshot and restore the
    capacity state so an over-shooting probe can be undone in O(m). *)

type t

val create : int -> t
(** [create n] is an empty flow network on vertices [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** Adds a directed edge with the given capacity (and its residual twin of
    capacity 0).  Returns an edge id usable with {!flow_on}.  Capacities
    must be non-negative. *)

val max_flow : t -> source:int -> sink:int -> int
(** Runs Dinic to completion and returns the flow value {e pushed by this
    call}.  The network keeps its residual state: after raising capacities
    with {!set_even_caps}, a subsequent call continues from the current
    flow and returns only the increment. *)

val flow_on : t -> int -> int
(** Flow currently routed through the edge with the given id. *)

val reset : t -> unit
(** Drops all routed flow: every edge returns to its most recently set
    capacity, every twin to 0.  The edge structure is kept. *)

val set_even_caps : t -> int array -> int -> unit
(** [set_even_caps t ids c] sets the capacity of each (even) edge id in
    [ids] to [c], preserving the flow currently routed through it — the
    new residual is [c - flow].  Raises [Invalid_argument] if any edge
    carries more than [c] flow (lower below current flow by {!rewind}ing
    or {!reset}ting first). *)

val mark : t -> unit
(** Snapshots the capacity state (residuals and nominal capacities). *)

val rewind : t -> unit
(** Restores the state of the last {!mark}.  Raises [Invalid_argument] if
    no mark was set or edges were added since. *)

val n_vertices : t -> int

val min_cut_side : t -> source:int -> bool array
(** After [max_flow], the source side of a minimum cut (vertices reachable
    in the residual network).  Certifies optimality in tests. *)
