(** Maximum flow on integer capacities, with a choice of cores.

    This is the combinatorial engine behind the paper's linear program
    (2.1): for a fixed supply [ω] and radius [r], feasibility of the
    supply-demand transport is a bipartite max-flow question, and the exact
    LP value is recovered by a search over [ω] (see {!Transport} and
    {!Paramflow}).

    The network is an {e arena}: one allocation serves a whole family of
    related flow problems.  After a [max_flow] run the residual state is
    kept, and {!set_even_caps} / {!drain_even_caps} can raise or lower edge
    capacities while preserving as much routed flow as the new capacities
    admit, so a parameter sweep (the supply search in
    [Transport.min_uniform_supply]) re-augments incrementally instead of
    rebuilding.  {!mark}/{!rewind} snapshot and restore the capacity state
    so an over-shooting probe can be undone in O(m).

    Two cores share the arena representation: the default push-relabel
    engine (highest-label selection, gap heuristic, periodic global
    relabeling) and the earlier Dinic augmenter, kept for differential
    testing.  Both leave a valid maximum {e flow} (not a preflow), so
    {!flow_on}, warm restarts and cut extraction behave identically. *)

type t

type core = Dinic | Push_relabel

val default_core : unit -> core
(** The core used when {!create} is not given one: [Push_relabel], unless
    the environment variable [CMVRP_FLOW_CORE] is set to [dinic].  Read
    once at module load. *)

val create : ?core:core -> int -> t
(** [create n] is an empty flow network on vertices [0 .. n-1]. *)

val add_vertex : t -> int
(** Appends one vertex and returns its index.  Existing edges, flow and
    marks are unaffected.  Incremental instance builders (the oracle's
    radius scan) grow the network as the coverage radius dilates. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** Adds a directed edge with the given capacity (and its residual twin of
    capacity 0).  Returns an edge id usable with {!flow_on}.  Capacities
    must be non-negative. *)

val edge_dst : t -> int -> int
(** Destination vertex of the edge with the given id (twins included: the
    destination of [id lxor 1] is the source of [id]). *)

val max_flow : t -> source:int -> sink:int -> int
(** Runs the selected core to completion and returns the flow value
    {e pushed by this call}.  The network keeps its residual state: after
    raising capacities with {!set_even_caps}, a subsequent call continues
    from the current flow and returns only the increment. *)

val flow_on : t -> int -> int
(** Flow currently routed through the edge with the given id. *)

val reset : t -> unit
(** Drops all routed flow: every edge returns to its most recently set
    capacity, every twin to 0.  The edge structure is kept. *)

val set_even_caps : t -> int array -> int -> unit
(** [set_even_caps t ids c] sets the capacity of each (even) edge id in
    [ids] to [c], preserving the flow currently routed through it — the
    new residual is [c - flow].  Raises [Invalid_argument] if any edge
    carries more than [c] flow (lower below current flow with
    {!drain_even_caps}, or by {!rewind}ing / {!reset}ting). *)

val drain_even_caps : t -> int array -> int -> source:int -> sink:int -> int
(** [drain_even_caps t ids c ~source ~sink] sets the capacity of each
    (even) edge id in [ids] to [c] like {!set_even_caps}, but edges
    carrying more than [c] flow have the surplus cancelled first, by
    walking the flow decomposition from the edge head to [sink] (lowering
    the flow value) or back to [source] (cancelling a cycle, value
    unchanged).  Every edge in [ids] must have [source] as its tail —
    for an interior tail the cancellation would not stay conservative.
    Returns the total amount of sink-terminated cancellation, i.e. how
    much the flow value decreased.  The terminal state is again a valid
    flow.  Intended for parametric sweeps that move the parameter {e
    down} (see {!Paramflow}). *)

val drain_sink_caps : t -> int array -> int -> source:int -> sink:int -> int
(** Mirror image of {!drain_even_caps} for sink-adjacent edges: every
    edge in [ids] must have [sink] as its head.  Surplus flow is
    cancelled by walking the flow decomposition backward from the edge
    tail — reaching [source] cancels a full source→sink path (the flow
    value drops), reaching [sink] cancels a cycle through the edge
    (value unchanged).  Returns how much the flow value decreased.  The
    terminal state is again a valid flow.  Intended for lowering a
    demand's sink capacity in place when a streamed job retires (see
    {!Paramflow} and [Transport]). *)

val mark : t -> unit
(** Snapshots the capacity state (residuals and nominal capacities). *)

val rewind : t -> unit
(** Restores the state of the last {!mark}.  Raises [Invalid_argument] if
    no mark was set or edges were added since. *)

val n_vertices : t -> int

val min_cut_side : t -> source:int -> bool array
(** After [max_flow], the source side of a minimum cut (vertices reachable
    in the residual network).  This is the unique {e minimal} source side,
    identical for every maximum flow — so it is core-independent, which
    the differential tests rely on.  Certifies optimality in tests. *)
