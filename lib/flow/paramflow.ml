(* Parametric max-flow driver in the Gallo–Grigoriadis–Tarjan mold: all
   source-adjacent edges carry one integer parameter [u] as their
   capacity, and the min-cut value F(u) is a concave piecewise-linear
   function whose slope at [u] is the number of source edges crossing the
   min cut.  Because the sweep over [u] is monotone and the arena retains
   its flow between probes, the whole breakpoint family costs about one
   flow computation — each probe only augments the delta its capacity
   raise opened up, and the discrete-Newton jump rule visits at most one
   level per distinct cut slope.

   [solve] finds the minimal level with F(u) = target (the supply search
   of [Transport.min_uniform_supply]); [refine_all] fills in the full
   integer lower envelope between the probes by divide and conquer, so
   range queries over [u] become lookups.  [grow] re-targets the driver
   after the caller added suppliers/links to the same arena: the routed
   flow is kept, and the next [solve] re-normalizes with a drain instead
   of recomputing from scratch. *)

let m_probes = Metrics.counter "paramflow.probes"

type t = {
  net : Maxflow.t;
  source : int;
  sink : int;
  mutable src_edges : int array;
  mutable target : int;
  mutable routed : int; (* current flow value in the arena *)
  mutable level : int; (* uniform capacity on src_edges; -1 = mixed *)
  mutable answer : int option;
  mutable solved : bool;
  mutable family : (int * int * int) list; (* (level, value, slope) *)
}

let create ~net ~source ~sink ~src_edges ~target =
  if target < 0 then invalid_arg "Paramflow.create: negative target";
  {
    net;
    source;
    sink;
    src_edges = Array.copy src_edges;
    target;
    routed = 0;
    level = -1;
    answer = None;
    solved = false;
    family = [];
  }

let target t = t.target
let solved t = t.solved

(* Slope of the min-cut line at the current state: the number of source
   edges crossing the cut (head outside the residually-reachable side). *)
let cut_slope t =
  let side = Maxflow.min_cut_side t.net ~source:t.source in
  let k = ref 0 in
  Array.iter
    (fun e -> if not side.(Maxflow.edge_dst t.net e) then incr k)
    t.src_edges;
  !k

let move_to t u =
  if t.level <> u then begin
    let drained =
      Maxflow.drain_even_caps t.net t.src_edges u ~source:t.source
        ~sink:t.sink
    in
    t.routed <- Energy.sub t.routed drained;
    t.level <- u
  end

let probe_here t =
  Metrics.incr m_probes;
  let inc = Maxflow.max_flow t.net ~source:t.source ~sink:t.sink in
  t.routed <- Energy.add t.routed inc;
  t.routed

let solve t =
  if t.solved then t.answer
  else begin
    let s = Array.length t.src_edges in
    let result =
      if t.target = 0 then Some 0
      else if s = 0 then None
      else begin
        (* the all-source-edges cut gives F(u) <= s*u, so any feasible
           level is at least ceil(target / s) — jump straight there *)
        move_to t ((t.target + s - 1) / s);
        let res = ref None and finished = ref false in
        while not !finished do
          let value = probe_here t in
          let k = cut_slope t in
          t.family <- (t.level, value, k) :: t.family;
          if value = t.target then begin
            res := Some t.level;
            finished := true
          end
          else if k = 0 then begin
            (* a cut of constant capacity < target: no finite level *)
            res := None;
            finished := true
          end
          else begin
            let deficit = t.target - value in
            move_to t (t.level + ((deficit + k - 1) / k))
          end
        done;
        !res
      end
    in
    t.answer <- result;
    t.solved <- true;
    result
  end

let breakpoints t =
  let arr = Array.of_list t.family in
  Array.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) arr;
  arr

(* Probe F at an arbitrary level below the sweep state, without moving it:
   snapshot, drain down, re-augment, read value and slope, restore.  The
   driver owns the arena's mark while refining. *)
let probe_at t u =
  if t.solved && u = t.level then (t.routed, cut_slope t)
  else begin
    Metrics.incr m_probes;
    Maxflow.mark t.net;
    let drained =
      Maxflow.drain_even_caps t.net t.src_edges u ~source:t.source
        ~sink:t.sink
    in
    let inc = Maxflow.max_flow t.net ~source:t.source ~sink:t.sink in
    let value = Energy.add (Energy.sub t.routed drained) inc in
    let k = cut_slope t in
    Maxflow.rewind t.net;
    (value, k)
  end

let refine_all t =
  ignore (solve t);
  (* Divide and conquer between consecutive recorded pieces: probe at the
     floor of the two lines' intersection; a value below both lines is a
     new piece (its slope falls strictly between theirs), recurse on both
     sides.  Equality means no further piece is visible at integer
     levels. *)
  let rec refine (u1, v1, k1) (u2, v2, k2) acc =
    if k1 <= k2 || u2 - u1 < 2 then acc
    else begin
      let b1 = v1 - (k1 * u1) and b2 = v2 - (k2 * u2) in
      let m = (b2 - b1) / (k1 - k2) in
      let m = max (u1 + 1) (min m (u2 - 1)) in
      let vm, km = probe_at t m in
      let line1 = (k1 * m) + b1 and line2 = (k2 * m) + b2 in
      if vm >= min line1 line2 then acc
      else
        let mid = (m, vm, km) in
        refine (u1, v1, k1) mid (refine mid (u2, v2, k2) (mid :: acc))
    end
  in
  let bps = Array.to_list (breakpoints t) in
  let rec sweep acc = function
    | a :: (b :: _ as rest) -> sweep (refine a b acc) rest
    | _ -> acc
  in
  let extra = sweep [] bps in
  t.family <- extra @ t.family

let grow t ~src_edges =
  t.src_edges <- Array.copy src_edges;
  t.answer <- None;
  t.solved <- false;
  t.family <- [];
  t.level <- -1

let retarget t ~target =
  if target < 0 then invalid_arg "Paramflow.retarget: negative target";
  t.target <- target;
  t.answer <- None;
  t.solved <- false;
  t.family <- []

(* Patch one non-parametric sink-adjacent edge's capacity in place.  A
   raise keeps the routed flow (the residual just widens); a lowering
   below the edge's current flow cancels the surplus along the flow
   decomposition and the routed value drops accordingly.  Either way the
   cached answer and family describe the old network and are dropped;
   the sweep level and retained flow survive, so the next [solve] is a
   warm re-sweep. *)
let patch_sink_cap t edge c =
  if Maxflow.flow_on t.net edge > c then begin
    let d =
      Maxflow.drain_sink_caps t.net [| edge |] c ~source:t.source
        ~sink:t.sink
    in
    t.routed <- Energy.sub t.routed d
  end
  else Maxflow.set_even_caps t.net [| edge |] c;
  t.answer <- None;
  t.solved <- false;
  t.family <- []
