(* Dinic's algorithm with an edge-array representation: edge 2k and its
   residual twin 2k+1 are stored adjacently, so the reverse of edge [e] is
   [e lxor 1]. *)

let m_augmentations = Metrics.counter "maxflow.augmentations"
let m_bfs_phases = Metrics.counter "maxflow.bfs_phases"
let m_runs = Metrics.counter "maxflow.runs"
let m_residual_edges = Metrics.gauge "maxflow.residual_edges"

type t = {
  n : int;
  mutable dst : int array; (* destination per directed edge *)
  mutable cap : int array; (* remaining capacity per directed edge *)
  head : int list array; (* edge ids leaving each vertex, reversed *)
  mutable m : int; (* number of directed edges (including twins) *)
  level : int array;
  iter : int list array;
  mutable initial_cap : int array; (* original capacity of even edges *)
}

let create n =
  if n < 0 then invalid_arg "Maxflow.create: negative size";
  {
    n;
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    head = Array.make (max n 1) [];
    m = 0;
    level = Array.make (max n 1) (-1);
    iter = Array.make (max n 1) [];
    initial_cap = Array.make 8 0;
  }

let n_vertices t = t.n

let ensure_edge_room t =
  if t.m + 2 > Array.length t.dst then begin
    let grow a fill =
      let bigger = Array.make (2 * Array.length a) fill in
      Array.blit a 0 bigger 0 (Array.length a);
      bigger
    in
    t.dst <- grow t.dst 0;
    t.cap <- grow t.cap 0
  end;
  if (t.m / 2) + 1 > Array.length t.initial_cap then begin
    (* Doubling an array *length* is allocator bookkeeping, not capacity
       accounting — exempt from the checked-Energy rule. *)
    let bigger = Array.make (2 * Array.length t.initial_cap) 0 (* lint: allow energy-arith *) in
    Array.blit t.initial_cap 0 bigger 0 (Array.length t.initial_cap);
    t.initial_cap <- bigger
  end

let add_edge t ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  ensure_edge_room t;
  let id = t.m in
  t.dst.(id) <- dst;
  t.cap.(id) <- cap;
  t.dst.(id + 1) <- src;
  t.cap.(id + 1) <- 0;
  t.head.(src) <- id :: t.head.(src);
  t.head.(dst) <- (id + 1) :: t.head.(dst);
  t.initial_cap.(id / 2) <- cap;
  t.m <- t.m + 2;
  id

let build_levels t ~source ~sink =
  Array.fill t.level 0 t.n (-1);
  let queue = Queue.create () in
  t.level.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun e ->
        let w = t.dst.(e) in
        if t.cap.(e) > 0 && t.level.(w) = -1 then begin
          t.level.(w) <- t.level.(v) + 1;
          Queue.add w queue
        end)
      t.head.(v)
  done;
  t.level.(sink) >= 0

let rec augment t v ~sink pushed =
  if v = sink then pushed
  else begin
    let rec try_edges () =
      match t.iter.(v) with
      | [] -> 0
      | e :: rest -> (
          let w = t.dst.(e) in
          if t.cap.(e) > 0 && t.level.(w) = t.level.(v) + 1 then begin
            let got = augment t w ~sink (min pushed t.cap.(e)) in
            if got > 0 then begin
              t.cap.(e) <- Energy.sub t.cap.(e) got;
              t.cap.(e lxor 1) <- Energy.add t.cap.(e lxor 1) got;
              got
            end
            else begin
              t.iter.(v) <- rest;
              try_edges ()
            end
          end
          else begin
            t.iter.(v) <- rest;
            try_edges ()
          end)
    in
    try_edges ()
  end

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  Metrics.incr m_runs;
  Metrics.set_gauge m_residual_edges (float_of_int t.m);
  let total = ref 0 in
  while build_levels t ~source ~sink do
    Metrics.incr m_bfs_phases;
    for v = 0 to t.n - 1 do
      t.iter.(v) <- t.head.(v)
    done;
    let rec push () =
      let got = augment t source ~sink max_int in
      if got > 0 then begin
        Metrics.incr m_augmentations;
        total := !total + got;
        push ()
      end
    in
    push ()
  done;
  !total

let flow_on t id =
  if id < 0 || id >= t.m || id mod 2 <> 0 then
    invalid_arg "Maxflow.flow_on: bad edge id";
  Energy.sub t.initial_cap.(id / 2) t.cap.(id)

let min_cut_side t ~source =
  let side = Array.make t.n false in
  let queue = Queue.create () in
  side.(source) <- true;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun e ->
        let w = t.dst.(e) in
        if t.cap.(e) > 0 && not side.(w) then begin
          side.(w) <- true;
          Queue.add w queue
        end)
      t.head.(v)
  done;
  side
