(* Max-flow arena with two interchangeable cores on one edge-array
   representation: edge 2k and its residual twin 2k+1 are stored adjacently,
   so the reverse of edge [e] is [e lxor 1].  Adjacency is CSR-style — edge
   ids grouped by source vertex in one flat array with a prefix-sum index —
   rebuilt lazily after edge insertions, so the hot loops (BFS, current-arc
   scans, discharge) touch nothing but int arrays.

   The default core is push-relabel with highest-label selection, the gap
   heuristic and periodic global relabeling (two backward BFS passes over
   the existing ring buffer).  It runs single-phase with heights up to 2n,
   so leftover excess drains back to the source and the terminal state is a
   valid *flow*, not a preflow — required by the arena contract
   ([flow_on], warm restarts, [drain_even_caps]).  The previous Dinic
   augmenter is kept behind [CMVRP_FLOW_CORE=dinic] (or [create ~core])
   as a differential-testing oracle. *)

let m_augmentations = Metrics.counter "maxflow.augmentations"
let m_bfs_phases = Metrics.counter "maxflow.bfs_phases"
let m_runs = Metrics.counter "maxflow.runs"
let m_residual_edges = Metrics.gauge "maxflow.residual_edges"
let m_relabels = Metrics.counter "maxflow.relabels"
let m_gap_hits = Metrics.counter "maxflow.gap_hits"
let m_global_relabels = Metrics.counter "maxflow.global_relabels"

type core = Dinic | Push_relabel

(* Read once at module load into an immutable value: core selection must
   not be mutable shared state (domain-confine / race discipline). *)
let env_core =
  match Sys.getenv_opt "CMVRP_FLOW_CORE" with
  | Some v -> begin
      match String.lowercase_ascii (String.trim v) with
      | "dinic" -> Dinic
      | _ -> Push_relabel
    end
  | None -> Push_relabel

let default_core () = env_core

type t = {
  core : core;
  mutable n : int;
  mutable dst : int array; (* destination per directed edge *)
  mutable cap : int array; (* remaining capacity per directed edge *)
  mutable m : int; (* number of directed edges (including twins) *)
  mutable level : int array; (* Dinic levels / push-relabel heights *)
  mutable queue : int array; (* BFS ring buffer, length >= n *)
  mutable adj : int array; (* CSR payload: edge ids grouped by source *)
  mutable adj_start : int array; (* CSR index, length >= n+1 *)
  mutable cur : int array; (* current-arc pointer per vertex *)
  mutable csr_valid : bool;
  mutable initial_cap : int array; (* original capacity of even edges *)
  (* push-relabel scratch *)
  mutable excess : int array; (* length >= n *)
  mutable hcount : int array; (* vertices per height, length >= 2n+1 *)
  mutable bucket : int array; (* head of height bucket, length >= 2n+1 *)
  mutable bnext : int array; (* bucket chaining, length >= n *)
  mutable active : bool array; (* queued-for-discharge flag, length >= n *)
  (* [mark]/[rewind] scratch: capacity snapshot for warm-started probing *)
  mutable saved_cap : int array;
  mutable saved_initial : int array;
  mutable saved_m : int;
  mutable marked : bool;
}

let create ?core n =
  if n < 0 then invalid_arg "Maxflow.create: negative size";
  let core = match core with Some c -> c | None -> env_core in
  let n1 = max n 1 in
  {
    core;
    n;
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    m = 0;
    level = Array.make n1 (-1);
    queue = Array.make n1 0;
    adj = [||];
    adj_start = Array.make (n + 1) 0;
    cur = Array.make n1 0;
    csr_valid = false;
    initial_cap = Array.make 8 0;
    excess = Array.make n1 0;
    hcount = Array.make ((2 * n1) + 1) 0;
    bucket = Array.make ((2 * n1) + 1) (-1);
    bnext = Array.make n1 (-1);
    active = Array.make n1 false;
    saved_cap = [||];
    saved_initial = [||];
    saved_m = 0;
    marked = false;
  }

let n_vertices t = t.n

let grow_array a fill want =
  let len = max want (2 * Array.length a) in
  let bigger = Array.make (max 1 len) fill in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

let add_vertex t =
  let v = t.n in
  t.n <- v + 1;
  if Array.length t.level < t.n then begin
    t.level <- grow_array t.level (-1) t.n;
    t.queue <- grow_array t.queue 0 t.n;
    t.cur <- grow_array t.cur 0 t.n;
    t.excess <- grow_array t.excess 0 t.n;
    t.bnext <- grow_array t.bnext (-1) t.n;
    t.active <- grow_array t.active false t.n
  end;
  if Array.length t.adj_start < t.n + 1 then
    t.adj_start <- grow_array t.adj_start 0 (t.n + 1);
  if Array.length t.hcount < (2 * t.n) + 1 then begin
    t.hcount <- grow_array t.hcount 0 ((2 * t.n) + 1);
    t.bucket <- grow_array t.bucket (-1) ((2 * t.n) + 1)
  end;
  t.csr_valid <- false;
  v

let ensure_edge_room t =
  if t.m + 2 > Array.length t.dst then begin
    t.dst <- grow_array t.dst 0 (t.m + 2);
    t.cap <- grow_array t.cap 0 (t.m + 2)
  end;
  if (t.m / 2) + 1 > Array.length t.initial_cap then
    t.initial_cap <- grow_array t.initial_cap 0 ((t.m / 2) + 1)

let add_edge t ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  ensure_edge_room t;
  let id = t.m in
  t.dst.(id) <- dst;
  t.cap.(id) <- cap;
  t.dst.(id + 1) <- src;
  t.cap.(id + 1) <- 0;
  t.initial_cap.(id / 2) <- cap;
  t.m <- t.m + 2;
  t.csr_valid <- false;
  id

let edge_dst t id =
  if id < 0 || id >= t.m then invalid_arg "Maxflow.edge_dst: bad edge id";
  t.dst.(id)

(* Counting sort of edge ids by source vertex.  The source of edge [e] is
   the destination of its twin, so no separate src array is stored. *)
let build_csr t =
  let start = t.adj_start in
  Array.fill start 0 (t.n + 1) 0;
  for e = 0 to t.m - 1 do
    let src = t.dst.(e lxor 1) in
    start.(src + 1) <- start.(src + 1) + 1
  done;
  for v = 1 to t.n do
    start.(v) <- start.(v) + start.(v - 1)
  done;
  if Array.length t.adj < t.m then t.adj <- Array.make (Array.length t.dst) 0;
  Array.blit start 0 t.cur 0 t.n;
  for e = 0 to t.m - 1 do
    let src = t.dst.(e lxor 1) in
    t.adj.(t.cur.(src)) <- e;
    t.cur.(src) <- t.cur.(src) + 1
  done;
  t.csr_valid <- true

let ensure_csr t = if not t.csr_valid then build_csr t

(* ------------------------------------------------------------------ *)
(* Dinic core (kept as the differential-testing oracle)               *)
(* ------------------------------------------------------------------ *)

let build_levels t ~source ~sink =
  Array.fill t.level 0 t.n (-1);
  let q = t.queue in
  q.(0) <- source;
  t.level.(source) <- 0;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = q.(!head) in
    incr head;
    for i = t.adj_start.(v) to t.adj_start.(v + 1) - 1 do
      let e = t.adj.(i) in
      let w = t.dst.(e) in
      if t.cap.(e) > 0 && t.level.(w) = -1 then begin
        t.level.(w) <- t.level.(v) + 1;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  t.level.(sink) >= 0

let rec augment t v ~sink pushed =
  if v = sink then pushed
  else begin
    let limit = t.adj_start.(v + 1) in
    let rec try_edges () =
      let i = t.cur.(v) in
      if i >= limit then 0
      else begin
        let e = t.adj.(i) in
        let w = t.dst.(e) in
        if t.cap.(e) > 0 && t.level.(w) = t.level.(v) + 1 then begin
          let got = augment t w ~sink (min pushed t.cap.(e)) in
          if got > 0 then begin
            t.cap.(e) <- Energy.sub t.cap.(e) got;
            t.cap.(e lxor 1) <- Energy.add t.cap.(e lxor 1) got;
            got
          end
          else begin
            t.cur.(v) <- i + 1;
            try_edges ()
          end
        end
        else begin
          t.cur.(v) <- i + 1;
          try_edges ()
        end
      end
    in
    try_edges ()
  end

let dinic_max_flow t ~source ~sink =
  let total = ref 0 in
  while build_levels t ~source ~sink do
    Metrics.incr m_bfs_phases;
    Array.blit t.adj_start 0 t.cur 0 t.n;
    let rec push () =
      let got = augment t source ~sink max_int in
      if got > 0 then begin
        Metrics.incr m_augmentations;
        total := !total + got;
        push ()
      end
    in
    push ()
  done;
  !total

(* ------------------------------------------------------------------ *)
(* Push-relabel core                                                  *)
(* ------------------------------------------------------------------ *)

(* Exact height labeling by two backward BFS passes over the ring buffer:
   first distances-to-sink through residual arcs (the sink side of any
   min cut), then [n + distance-to-source] for what is left (the source
   side).  No residual arc leaves the source side into the sink side —
   such an arc would have put its tail in the sink-side BFS — so the
   labeling is valid for the current flow. *)
let global_relabel t ~source ~sink =
  Metrics.incr m_global_relabels;
  let n = t.n in
  let unreached = 2 * n in
  let h = t.level and q = t.queue in
  Array.fill h 0 n unreached;
  h.(sink) <- 0;
  q.(0) <- sink;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let w = q.(!head) in
    incr head;
    for i = t.adj_start.(w) to t.adj_start.(w + 1) - 1 do
      let e = t.adj.(i) in
      let v = t.dst.(e) in
      (* residual arc v->w exists iff the reverse of [e] has capacity *)
      if v <> source && h.(v) = unreached && t.cap.(e lxor 1) > 0 then begin
        h.(v) <- h.(w) + 1;
        q.(!tail) <- v;
        incr tail
      end
    done
  done;
  h.(source) <- n;
  q.(0) <- source;
  head := 0;
  tail := 1;
  while !head < !tail do
    let w = q.(!head) in
    incr head;
    for i = t.adj_start.(w) to t.adj_start.(w + 1) - 1 do
      let e = t.adj.(i) in
      let v = t.dst.(e) in
      if h.(v) = unreached && t.cap.(e lxor 1) > 0 then begin
        h.(v) <- h.(w) + 1;
        q.(!tail) <- v;
        incr tail
      end
    done
  done

(* Rebuild height counts and the active-vertex buckets from scratch; used
   after every global relabel.  Returns the highest active height. *)
let rebuild_active t ~source ~sink =
  let n = t.n in
  Array.fill t.hcount 0 ((2 * n) + 1) 0;
  for v = 0 to n - 1 do
    t.hcount.(t.level.(v)) <- t.hcount.(t.level.(v)) + 1
  done;
  Array.fill t.bucket 0 ((2 * n) + 1) (-1);
  Array.fill t.active 0 n false;
  let highest = ref (-1) in
  for v = 0 to n - 1 do
    if v <> source && v <> sink && t.excess.(v) > 0 && t.level.(v) < 2 * n
    then begin
      t.active.(v) <- true;
      t.bnext.(v) <- t.bucket.(t.level.(v));
      t.bucket.(t.level.(v)) <- v;
      if t.level.(v) > !highest then highest := t.level.(v)
    end
  done;
  !highest

let pr_max_flow t ~source ~sink =
  let n = t.n in
  Array.fill t.excess 0 n 0;
  (* Saturate every residual source-adjacent arc: each positive-capacity
     arc out of the source becomes excess at its head.  On a warm restart
     this is exactly the capacity head-room added since the last run.
     This must happen before the labeling pass — the reverse arcs it
     creates are what connect otherwise-dead-end heads back to the
     source, so every vertex holding excess gets a finite height. *)
  for i = t.adj_start.(source) to t.adj_start.(source + 1) - 1 do
    let e = t.adj.(i) in
    let c = t.cap.(e) in
    if c > 0 then begin
      let v = t.dst.(e) in
      if v <> source then begin
        t.cap.(e) <- 0;
        t.cap.(e lxor 1) <- Energy.add t.cap.(e lxor 1) c;
        t.excess.(v) <- Energy.add t.excess.(v) c
      end
    end
  done;
  global_relabel t ~source ~sink;
  Array.blit t.adj_start 0 t.cur 0 n;
  let highest = ref (rebuild_active t ~source ~sink) in
  let relabels_since = ref 0 in
  let gr_period = n + (t.m / 4) + 1 in
  while !highest >= 0 do
    let b = !highest in
    let v = t.bucket.(b) in
    if v = -1 then decr highest
    else begin
      t.bucket.(b) <- t.bnext.(v);
      if not t.active.(v) then () (* stale after a global relabel rebuild *)
      else if t.level.(v) <> b then begin
        (* lifted (gap heuristic) while queued: re-file at its height *)
        let hv = t.level.(v) in
        t.bnext.(v) <- t.bucket.(hv);
        t.bucket.(hv) <- v;
        if hv > !highest then highest := hv
      end
      else begin
        t.active.(v) <- false;
        (* discharge v *)
        let discharging = ref true in
        while !discharging do
          let limit = t.adj_start.(v + 1) in
          let i = ref t.cur.(v) in
          let emptied = ref false in
          while (not !emptied) && !i < limit do
            let e = t.adj.(!i) in
            let w = t.dst.(e) in
            if t.cap.(e) > 0 && t.level.(v) = t.level.(w) + 1 then begin
              let delta = min t.excess.(v) t.cap.(e) in
              t.cap.(e) <- Energy.sub t.cap.(e) delta;
              t.cap.(e lxor 1) <- Energy.add t.cap.(e lxor 1) delta;
              t.excess.(v) <- Energy.sub t.excess.(v) delta;
              t.excess.(w) <- Energy.add t.excess.(w) delta;
              if w <> source && w <> sink && not t.active.(w) then begin
                t.active.(w) <- true;
                t.bnext.(w) <- t.bucket.(t.level.(w));
                t.bucket.(t.level.(w)) <- w
              end;
              if t.excess.(v) = 0 then emptied := true else incr i
            end
            else incr i
          done;
          t.cur.(v) <- !i;
          if !emptied then discharging := false
          else begin
            (* relabel v to one above its lowest residual neighbor *)
            Metrics.incr m_relabels;
            incr relabels_since;
            let old = t.level.(v) in
            let nh = ref (2 * n) in
            for j = t.adj_start.(v) to limit - 1 do
              let e = t.adj.(j) in
              if t.cap.(e) > 0 && t.level.(t.dst.(e)) + 1 < !nh then
                nh := t.level.(t.dst.(e)) + 1
            done;
            t.hcount.(old) <- t.hcount.(old) - 1;
            if t.hcount.(old) = 0 && old < n then begin
              (* gap: heights strictly between [old] and [n] are dead —
                 no residual path to the sink can cross the empty level,
                 so lift those vertices straight past [n]. *)
              Metrics.incr m_gap_hits;
              for u = 0 to n - 1 do
                let hu = t.level.(u) in
                if hu > old && hu < n then begin
                  t.hcount.(hu) <- t.hcount.(hu) - 1;
                  t.level.(u) <- n + 1;
                  t.hcount.(n + 1) <- t.hcount.(n + 1) + 1
                end
              done;
              if !nh < n + 1 then nh := n + 1
            end;
            if !nh >= 2 * n then begin
              (* no residual arc at all: park the vertex (cannot happen
                 when the run starts from a valid flow) *)
              t.level.(v) <- 2 * n;
              t.hcount.(2 * n) <- t.hcount.(2 * n) + 1;
              discharging := false
            end
            else begin
              t.level.(v) <- !nh;
              t.hcount.(!nh) <- t.hcount.(!nh) + 1;
              t.cur.(v) <- t.adj_start.(v);
              if !nh > !highest then highest := !nh
            end
          end
        done;
        if !relabels_since >= gr_period then begin
          relabels_since := 0;
          global_relabel t ~source ~sink;
          Array.blit t.adj_start 0 t.cur 0 n;
          highest := rebuild_active t ~source ~sink
        end
      end
    end
  done;
  t.excess.(sink)

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n then
    invalid_arg "Maxflow.max_flow: vertex out of range";
  Metrics.incr m_runs;
  Metrics.set_gauge m_residual_edges (float_of_int t.m);
  ensure_csr t;
  match t.core with
  | Dinic -> dinic_max_flow t ~source ~sink
  | Push_relabel -> pr_max_flow t ~source ~sink

let flow_on t id =
  if id < 0 || id >= t.m || id mod 2 <> 0 then
    invalid_arg "Maxflow.flow_on: bad edge id";
  Energy.sub t.initial_cap.(id / 2) t.cap.(id)

let reset t =
  for k = 0 to (t.m / 2) - 1 do
    t.cap.(2 * k) <- t.initial_cap.(k);
    t.cap.((2 * k) + 1) <- 0
  done

let set_even_caps t ids c =
  if c < 0 then invalid_arg "Maxflow.set_even_caps: negative capacity";
  Array.iter
    (fun id ->
      if id < 0 || id >= t.m || id mod 2 <> 0 then
        invalid_arg "Maxflow.set_even_caps: bad edge id";
      let flow = Energy.sub t.initial_cap.(id / 2) t.cap.(id) in
      let residual = Energy.sub c flow in
      if residual < 0 then
        invalid_arg "Maxflow.set_even_caps: capacity below current flow";
      t.cap.(id) <- residual;
      t.initial_cap.(id / 2) <- c)
    ids

(* ------------------------------------------------------------------ *)
(* Capacity lowering: flow cancellation along the decomposition       *)
(* ------------------------------------------------------------------ *)

(* To lower an even edge's capacity below its routed flow, the surplus is
   cancelled one decomposition walk at a time.  Each walk starts at the
   edge's head and follows flow-carrying even arcs (skipping the edge
   itself).  Reaching the sink cancels a source→sink path: the flow value
   drops.  Reaching the source cancels a cycle through the edge: the
   value is unchanged.  A revisited vertex closes an internal cycle, which
   is cancelled on the spot and does not count against the surplus.  The
   edge itself is decremented together with every terminal walk, so flow
   conservation holds at both endpoints after each cancellation — which is
   exactly why the edges must be source-adjacent: for an interior tail the
   cancellation would have to continue upstream of the edge.  Flow on
   arcs only ever decreases here, so the per-vertex scan pointers advance
   monotonically and the whole drain is near-linear in practice. *)
let drain_even_caps t ids c ~source ~sink =
  if c < 0 then invalid_arg "Maxflow.drain_even_caps: negative capacity";
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n || source = sink
  then invalid_arg "Maxflow.drain_even_caps: bad source/sink";
  Array.iter
    (fun id ->
      if id < 0 || id >= t.m || id mod 2 <> 0 then
        invalid_arg "Maxflow.drain_even_caps: bad edge id";
      if t.dst.(id lxor 1) <> source then
        invalid_arg "Maxflow.drain_even_caps: edge tail is not the source")
    ids;
  ensure_csr t;
  let n = t.n in
  let drained = ref 0 in
  let pos = Array.make n (-1) in
  (* path_vert.(i) is on the walk; path_edge.(i) is the arc taken from it *)
  let path_vert = Array.make n 0 in
  let path_edge = Array.make n 0 in
  let ptr = Array.copy t.adj_start in
  let cancel_surplus e =
    let tail = source in
    let head = t.dst.(e) in
    while flow_on t e > c do
      let need = Energy.sub (flow_on t e) c in
      (* walk from [head] until sink or the source *)
      let len = ref 0 in
      pos.(head) <- 0;
      path_vert.(0) <- head;
      let w = ref head in
      let terminal = ref (-1) in
      while !terminal < 0 do
        if !w = sink || !w = tail then terminal := !w
        else begin
          (* next flow-carrying even arc out of !w, skipping [e] *)
          let limit = t.adj_start.(!w + 1) in
          let i = ref ptr.(!w) in
          let chosen = ref (-1) in
          while !chosen < 0 && !i < limit do
            let e' = t.adj.(!i) in
            if e' <> e && e' land 1 = 0 && t.cap.(e' lxor 1) > 0 then
              chosen := e'
            else incr i
          done;
          ptr.(!w) <- !i;
          (* conservation guarantees an arc exists while surplus remains *)
          assert (!chosen >= 0);
          let e' = !chosen in
          let u = t.dst.(e') in
          if u <> sink && u <> tail && pos.(u) >= 0 then begin
            (* internal cycle u -> ... -> w -> u: cancel its bottleneck *)
            let j0 = pos.(u) in
            let bottleneck = ref (t.cap.(e' lxor 1)) in
            for j = j0 to !len - 1 do
              let pe = path_edge.(j) in
              if t.cap.(pe lxor 1) < !bottleneck then
                bottleneck := t.cap.(pe lxor 1)
            done;
            let d = !bottleneck in
            t.cap.(e') <- Energy.add t.cap.(e') d;
            t.cap.(e' lxor 1) <- Energy.sub t.cap.(e' lxor 1) d;
            for j = j0 to !len - 1 do
              let pe = path_edge.(j) in
              t.cap.(pe) <- Energy.add t.cap.(pe) d;
              t.cap.(pe lxor 1) <- Energy.sub t.cap.(pe lxor 1) d
            done;
            (* truncate the walk back to u and continue from there; the
               current vertex sits at path_vert.(!len) and must be
               unmarked too *)
            for j = j0 + 1 to !len do
              pos.(path_vert.(j)) <- -1
            done;
            len := j0;
            w := u
          end
          else begin
            path_edge.(!len) <- e';
            incr len;
            if u <> sink && u <> tail then begin
              pos.(u) <- !len;
              path_vert.(!len) <- u
            end;
            w := u
          end
        end
      done;
      (* cancel the terminal walk together with [e] itself *)
      let bottleneck = ref need in
      for j = 0 to !len - 1 do
        let pe = path_edge.(j) in
        if t.cap.(pe lxor 1) < !bottleneck then bottleneck := t.cap.(pe lxor 1)
      done;
      let d = !bottleneck in
      for j = 0 to !len - 1 do
        let pe = path_edge.(j) in
        t.cap.(pe) <- Energy.add t.cap.(pe) d;
        t.cap.(pe lxor 1) <- Energy.sub t.cap.(pe lxor 1) d
      done;
      t.cap.(e) <- Energy.add t.cap.(e) d;
      t.cap.(e lxor 1) <- Energy.sub t.cap.(e lxor 1) d;
      if !terminal = sink then drained := Energy.add !drained d;
      (* clear path marks *)
      for j = 0 to !len - 1 do
        pos.(path_vert.(j)) <- -1
      done;
      pos.(head) <- -1
    done
  in
  Array.iter
    (fun id ->
      cancel_surplus id;
      let flow = flow_on t id in
      t.cap.(id) <- Energy.sub c flow;
      t.initial_cap.(id / 2) <- c)
    ids;
  !drained

(* Mirror image of [drain_even_caps] for sink-adjacent edges: the surplus
   on an edge (v -> sink) is cancelled by walking the flow decomposition
   BACKWARD from [v], following flow-carrying arcs into each vertex.
   Reaching the source cancels a full source→sink path (the flow value
   drops); reaching the sink closes a cycle through the edge (value
   unchanged).  Internal cycles are cancelled on the spot exactly as in
   the forward drain.  The head must be the sink for the same
   conservation reason the forward drain requires a source tail. *)
let drain_sink_caps t ids c ~source ~sink =
  if c < 0 then invalid_arg "Maxflow.drain_sink_caps: negative capacity";
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n || source = sink
  then invalid_arg "Maxflow.drain_sink_caps: bad source/sink";
  Array.iter
    (fun id ->
      if id < 0 || id >= t.m || id mod 2 <> 0 then
        invalid_arg "Maxflow.drain_sink_caps: bad edge id";
      if t.dst.(id) <> sink then
        invalid_arg "Maxflow.drain_sink_caps: edge head is not the sink")
    ids;
  ensure_csr t;
  let n = t.n in
  let drained = ref 0 in
  let pos = Array.make n (-1) in
  (* path_vert.(i) is on the walk; path_edge.(i) is the even arc whose
     flow ENTERS path_vert.(i) (its tail is the next walk vertex) *)
  let path_vert = Array.make n 0 in
  let path_edge = Array.make n 0 in
  let ptr = Array.copy t.adj_start in
  let cancel_surplus e =
    let head = sink in
    let tail = t.dst.(e lxor 1) in
    while flow_on t e > c do
      let need = Energy.sub (flow_on t e) c in
      (* walk from [tail] until the source or the sink *)
      let len = ref 0 in
      pos.(tail) <- 0;
      path_vert.(0) <- tail;
      let w = ref tail in
      let terminal = ref (-1) in
      while !terminal < 0 do
        if !w = source || !w = head then terminal := !w
        else begin
          (* next flow-carrying arc INTO !w: an odd residual arc out of
             !w with positive capacity is the reverse view of an even
             edge carrying flow into !w.  Skip the reverse view of [e]. *)
          let limit = t.adj_start.(!w + 1) in
          let i = ref ptr.(!w) in
          let chosen = ref (-1) in
          while !chosen < 0 && !i < limit do
            let o = t.adj.(!i) in
            if o <> e lxor 1 && o land 1 = 1 && t.cap.(o) > 0 then
              chosen := o
            else incr i
          done;
          ptr.(!w) <- !i;
          (* conservation guarantees an arc exists while surplus remains *)
          assert (!chosen >= 0);
          let pe = !chosen lxor 1 in
          let u = t.dst.(!chosen) in
          if u <> source && u <> head && pos.(u) >= 0 then begin
            (* internal flow cycle u -> ... -> w -> ... -> u through [pe]
               and the path arcs from pos.(u): cancel its bottleneck *)
            let j0 = pos.(u) in
            let bottleneck = ref (t.cap.(pe lxor 1)) in
            for j = j0 to !len - 1 do
              let qe = path_edge.(j) in
              if t.cap.(qe lxor 1) < !bottleneck then
                bottleneck := t.cap.(qe lxor 1)
            done;
            let d = !bottleneck in
            t.cap.(pe) <- Energy.add t.cap.(pe) d;
            t.cap.(pe lxor 1) <- Energy.sub t.cap.(pe lxor 1) d;
            for j = j0 to !len - 1 do
              let qe = path_edge.(j) in
              t.cap.(qe) <- Energy.add t.cap.(qe) d;
              t.cap.(qe lxor 1) <- Energy.sub t.cap.(qe lxor 1) d
            done;
            for j = j0 + 1 to !len do
              pos.(path_vert.(j)) <- -1
            done;
            len := j0;
            w := u
          end
          else begin
            path_edge.(!len) <- pe;
            incr len;
            if u <> source && u <> head then begin
              pos.(u) <- !len;
              path_vert.(!len) <- u
            end;
            w := u
          end
        end
      done;
      (* cancel the terminal walk together with [e] itself *)
      let bottleneck = ref need in
      for j = 0 to !len - 1 do
        let pe = path_edge.(j) in
        if t.cap.(pe lxor 1) < !bottleneck then bottleneck := t.cap.(pe lxor 1)
      done;
      let d = !bottleneck in
      for j = 0 to !len - 1 do
        let pe = path_edge.(j) in
        t.cap.(pe) <- Energy.add t.cap.(pe) d;
        t.cap.(pe lxor 1) <- Energy.sub t.cap.(pe lxor 1) d
      done;
      t.cap.(e) <- Energy.add t.cap.(e) d;
      t.cap.(e lxor 1) <- Energy.sub t.cap.(e lxor 1) d;
      if !terminal = source then drained := Energy.add !drained d;
      for j = 0 to !len - 1 do
        pos.(path_vert.(j)) <- -1
      done;
      pos.(tail) <- -1
    done
  in
  Array.iter
    (fun id ->
      cancel_surplus id;
      let flow = flow_on t id in
      t.cap.(id) <- Energy.sub c flow;
      t.initial_cap.(id / 2) <- c)
    ids;
  !drained

let mark t =
  let half = t.m / 2 in
  if Array.length t.saved_cap < t.m then
    t.saved_cap <- Array.make (Array.length t.dst) 0;
  if Array.length t.saved_initial < half then
    t.saved_initial <- Array.make (Array.length t.initial_cap) 0;
  Array.blit t.cap 0 t.saved_cap 0 t.m;
  Array.blit t.initial_cap 0 t.saved_initial 0 half;
  t.saved_m <- t.m;
  t.marked <- true

let rewind t =
  if not t.marked then invalid_arg "Maxflow.rewind: no mark set";
  if t.saved_m <> t.m then
    invalid_arg "Maxflow.rewind: edges added since mark";
  Array.blit t.saved_cap 0 t.cap 0 t.m;
  Array.blit t.saved_initial 0 t.initial_cap 0 (t.m / 2)

let min_cut_side t ~source =
  ensure_csr t;
  let side = Array.make t.n false in
  let q = t.queue in
  q.(0) <- source;
  side.(source) <- true;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = q.(!head) in
    incr head;
    for i = t.adj_start.(v) to t.adj_start.(v + 1) - 1 do
      let e = t.adj.(i) in
      let w = t.dst.(e) in
      if t.cap.(e) > 0 && not side.(w) then begin
        side.(w) <- true;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  side
