(* Dinic's algorithm with an edge-array representation: edge 2k and its
   residual twin 2k+1 are stored adjacently, so the reverse of edge [e] is
   [e lxor 1].  Adjacency is CSR-style — edge ids grouped by source vertex
   in one flat array with a prefix-sum index — rebuilt lazily after edge
   insertions, so the hot loops (BFS, current-arc DFS) touch nothing but
   int arrays. *)

let m_augmentations = Metrics.counter "maxflow.augmentations"
let m_bfs_phases = Metrics.counter "maxflow.bfs_phases"
let m_runs = Metrics.counter "maxflow.runs"
let m_residual_edges = Metrics.gauge "maxflow.residual_edges"

type t = {
  n : int;
  mutable dst : int array; (* destination per directed edge *)
  mutable cap : int array; (* remaining capacity per directed edge *)
  mutable m : int; (* number of directed edges (including twins) *)
  level : int array;
  queue : int array; (* BFS ring buffer, length n *)
  mutable adj : int array; (* CSR payload: edge ids grouped by source *)
  adj_start : int array; (* CSR index, length n+1 *)
  cur : int array; (* current-arc pointer per vertex *)
  mutable csr_valid : bool;
  mutable initial_cap : int array; (* original capacity of even edges *)
  (* [mark]/[rewind] scratch: capacity snapshot for warm-started probing *)
  mutable saved_cap : int array;
  mutable saved_initial : int array;
  mutable saved_m : int;
  mutable marked : bool;
}

let create n =
  if n < 0 then invalid_arg "Maxflow.create: negative size";
  {
    n;
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    m = 0;
    level = Array.make (max n 1) (-1);
    queue = Array.make (max n 1) 0;
    adj = [||];
    adj_start = Array.make (n + 1) 0;
    cur = Array.make (max n 1) 0;
    csr_valid = false;
    initial_cap = Array.make 8 0;
    saved_cap = [||];
    saved_initial = [||];
    saved_m = 0;
    marked = false;
  }

let n_vertices t = t.n

let ensure_edge_room t =
  if t.m + 2 > Array.length t.dst then begin
    let grow a fill =
      let bigger = Array.make (2 * Array.length a) fill in
      Array.blit a 0 bigger 0 (Array.length a);
      bigger
    in
    t.dst <- grow t.dst 0;
    t.cap <- grow t.cap 0
  end;
  if (t.m / 2) + 1 > Array.length t.initial_cap then begin
    (* Doubling an array *length* is allocator bookkeeping, not capacity
       accounting — exempt from the checked-Energy rule. *)
    let bigger = Array.make (2 * Array.length t.initial_cap) 0 (* lint: allow energy-arith *) in
    Array.blit t.initial_cap 0 bigger 0 (Array.length t.initial_cap);
    t.initial_cap <- bigger
  end

let add_edge t ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  ensure_edge_room t;
  let id = t.m in
  t.dst.(id) <- dst;
  t.cap.(id) <- cap;
  t.dst.(id + 1) <- src;
  t.cap.(id + 1) <- 0;
  t.initial_cap.(id / 2) <- cap;
  t.m <- t.m + 2;
  t.csr_valid <- false;
  id

(* Counting sort of edge ids by source vertex.  The source of edge [e] is
   the destination of its twin, so no separate src array is stored. *)
let build_csr t =
  let start = t.adj_start in
  Array.fill start 0 (t.n + 1) 0;
  for e = 0 to t.m - 1 do
    let src = t.dst.(e lxor 1) in
    start.(src + 1) <- start.(src + 1) + 1
  done;
  for v = 1 to t.n do
    start.(v) <- start.(v) + start.(v - 1)
  done;
  if Array.length t.adj < t.m then t.adj <- Array.make (Array.length t.dst) 0;
  Array.blit start 0 t.cur 0 t.n;
  for e = 0 to t.m - 1 do
    let src = t.dst.(e lxor 1) in
    t.adj.(t.cur.(src)) <- e;
    t.cur.(src) <- t.cur.(src) + 1
  done;
  t.csr_valid <- true

let ensure_csr t = if not t.csr_valid then build_csr t

let build_levels t ~source ~sink =
  Array.fill t.level 0 t.n (-1);
  let q = t.queue in
  q.(0) <- source;
  t.level.(source) <- 0;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = q.(!head) in
    incr head;
    for i = t.adj_start.(v) to t.adj_start.(v + 1) - 1 do
      let e = t.adj.(i) in
      let w = t.dst.(e) in
      if t.cap.(e) > 0 && t.level.(w) = -1 then begin
        t.level.(w) <- t.level.(v) + 1;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  t.level.(sink) >= 0

let rec augment t v ~sink pushed =
  if v = sink then pushed
  else begin
    let limit = t.adj_start.(v + 1) in
    let rec try_edges () =
      let i = t.cur.(v) in
      if i >= limit then 0
      else begin
        let e = t.adj.(i) in
        let w = t.dst.(e) in
        if t.cap.(e) > 0 && t.level.(w) = t.level.(v) + 1 then begin
          let got = augment t w ~sink (min pushed t.cap.(e)) in
          if got > 0 then begin
            t.cap.(e) <- Energy.sub t.cap.(e) got;
            t.cap.(e lxor 1) <- Energy.add t.cap.(e lxor 1) got;
            got
          end
          else begin
            t.cur.(v) <- i + 1;
            try_edges ()
          end
        end
        else begin
          t.cur.(v) <- i + 1;
          try_edges ()
        end
      end
    in
    try_edges ()
  end

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  Metrics.incr m_runs;
  Metrics.set_gauge m_residual_edges (float_of_int t.m);
  ensure_csr t;
  let total = ref 0 in
  while build_levels t ~source ~sink do
    Metrics.incr m_bfs_phases;
    Array.blit t.adj_start 0 t.cur 0 t.n;
    let rec push () =
      let got = augment t source ~sink max_int in
      if got > 0 then begin
        Metrics.incr m_augmentations;
        total := !total + got;
        push ()
      end
    in
    push ()
  done;
  !total

let flow_on t id =
  if id < 0 || id >= t.m || id mod 2 <> 0 then
    invalid_arg "Maxflow.flow_on: bad edge id";
  Energy.sub t.initial_cap.(id / 2) t.cap.(id)

let reset t =
  for k = 0 to (t.m / 2) - 1 do
    t.cap.(2 * k) <- t.initial_cap.(k);
    t.cap.((2 * k) + 1) <- 0
  done

let set_even_caps t ids c =
  if c < 0 then invalid_arg "Maxflow.set_even_caps: negative capacity";
  Array.iter
    (fun id ->
      if id < 0 || id >= t.m || id mod 2 <> 0 then
        invalid_arg "Maxflow.set_even_caps: bad edge id";
      let flow = Energy.sub t.initial_cap.(id / 2) t.cap.(id) in
      let residual = Energy.sub c flow in
      if residual < 0 then
        invalid_arg "Maxflow.set_even_caps: capacity below current flow";
      t.cap.(id) <- residual;
      t.initial_cap.(id / 2) <- c)
    ids

let mark t =
  let half = t.m / 2 in
  if Array.length t.saved_cap < t.m then
    t.saved_cap <- Array.make (Array.length t.dst) 0;
  if Array.length t.saved_initial < half then
    t.saved_initial <- Array.make (Array.length t.initial_cap) 0;
  Array.blit t.cap 0 t.saved_cap 0 t.m;
  Array.blit t.initial_cap 0 t.saved_initial 0 half;
  t.saved_m <- t.m;
  t.marked <- true

let rewind t =
  if not t.marked then invalid_arg "Maxflow.rewind: no mark set";
  if t.saved_m <> t.m then
    invalid_arg "Maxflow.rewind: edges added since mark";
  Array.blit t.saved_cap 0 t.cap 0 t.m;
  Array.blit t.saved_initial 0 t.initial_cap 0 (t.m / 2)

let min_cut_side t ~source =
  ensure_csr t;
  let side = Array.make t.n false in
  let q = t.queue in
  q.(0) <- source;
  side.(source) <- true;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let v = q.(!head) in
    incr head;
    for i = t.adj_start.(v) to t.adj_start.(v + 1) - 1 do
      let e = t.adj.(i) in
      let w = t.dst.(e) in
      if t.cap.(e) > 0 && not side.(w) then begin
        side.(w) <- true;
        q.(!tail) <- w;
        incr tail
      end
    done
  done;
  side
