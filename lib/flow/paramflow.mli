(** Parametric max-flow in the Gallo–Grigoriadis–Tarjan mold.

    A driver for flow networks whose source-adjacent edges all carry one
    integer parameter [u] as their capacity.  The max-flow/min-cut value
    [F u] is then concave, piecewise linear and non-decreasing in [u]; the
    slope of the piece at [u] is the number of source edges crossing the
    minimum cut.  Because the sweep over [u] is monotone and the
    {!Maxflow} arena keeps its flow between probes, discovering the whole
    breakpoint family costs roughly {e one} flow computation: each probe
    augments only the delta opened by its capacity raise, and the
    discrete-Newton jump rule touches at most one level per distinct cut
    slope.

    This is the engine behind [Transport.min_uniform_supply]: the supply
    search asks for the minimal [u] with [F u = target], and the oracle's
    radius scan re-asks after growing the network — which {!grow} turns
    into a warm re-sweep instead of a recomputation. *)

type t

val create :
  net:Maxflow.t ->
  source:int ->
  sink:int ->
  src_edges:int array ->
  target:int ->
  t
(** [create ~net ~source ~sink ~src_edges ~target] wraps an arena whose
    parametric (source-adjacent, even) edge ids are [src_edges].  The
    arena must carry no flow yet; the driver takes ownership of the
    source-edge capacities and of {!Maxflow.mark}/{!Maxflow.rewind}.
    [target] is the flow value that counts as feasible (in the transport
    reduction: total scaled demand). *)

val target : t -> int

val solve : t -> int option
(** The minimal integer level [u] with [F u = target], or [None] when no
    finite level reaches the target (a cut of slope 0 and constant
    capacity below [target] exists).  The first call runs the monotone
    sweep; later calls return the cached answer.  After {!grow}, the next
    call re-normalizes the retained flow with a drain and re-sweeps. *)

val solved : t -> bool
(** Whether {!solve} has already run since creation or the last {!grow} —
    i.e. whether the next {!solve} is a pure lookup. *)

val breakpoints : t -> (int * int * int) array
(** The recorded probe family [(level, value, slope)] sorted by level:
    levels strictly increase, values do not decrease, slopes do not
    increase (strictly decreasing across infeasible probes).  After
    {!solve} it contains the Newton probes; after {!refine_all} the full
    integer lower envelope of [F] between the first probe and the
    answer. *)

val refine_all : t -> unit
(** Extends the family to every piece of [F] distinguishable at integer
    levels between consecutive probes, by divide-and-conquer probing at
    line intersections (each probe is snapshot/drain/augment/rewind, so
    the sweep state is unchanged). *)

val grow : t -> src_edges:int array -> unit
(** Replace the parametric edge set after the caller added vertices,
    suppliers or links to the same arena ([src_edges] is the {e full} new
    id set).  The routed flow and the answer-so-far are kept in the arena;
    the cached answer and family are dropped, and the next {!solve}
    extends the old flow instead of starting over. *)

val retarget : t -> target:int -> unit
(** Change the feasibility target after the caller patched the demand
    side of the arena.  The routed flow and sweep level are kept; the
    cached answer and family are dropped, so the next {!solve} re-sweeps
    warm from wherever the last one stopped. *)

val patch_sink_cap : t -> int -> int -> unit
(** [patch_sink_cap t edge c] sets the capacity of the (even,
    sink-adjacent, non-parametric) [edge] to [c] in place.  Raising keeps
    the routed flow; lowering below the edge's current flow cancels the
    surplus along the flow decomposition ({!Maxflow.drain_sink_caps}).
    Invalidate-only for the cached envelope: the answer and family are
    dropped, the retained flow and sweep level survive.  This is the
    streamed-demand delta path of [Transport.set_demand]. *)
