(** Bipartite supply–demand transport: the combinatorial form of the
    paper's linear program (2.1).

    An instance has [n_suppliers] supply sites, [n_demands] demand sites
    with integer demands, and a set of admissible links (in the paper: the
    pairs [(i,j)] with [‖i−j‖ ≤ r]).  Feasibility with per-supplier
    capacity [ω] is a max-flow question; by LP duality the minimal uniform
    real capacity equals [max_J Σ_{j∈J} d(j) / |N(J)|] over demand subsets
    [J] (Lemma 2.2.2 of the paper).  [min_uniform_supply] computes it to
    any requested resolution with one parametric max-flow sweep on a
    scaled integer network ({!Paramflow}), cached so repeated queries and
    the oracle's growing radius scan become lookups and extensions. *)

type t

val create : n_suppliers:int -> n_demands:int -> t

val n_suppliers : t -> int
val n_demands : t -> int

val add_supplier : t -> int
(** Registers one more supply site and returns its index.  Incremental
    instance builders (the oracle's radius scan) grow the supplier set as
    the coverage radius dilates. *)

val add_demand : t -> int
(** Registers one more demand site (initial demand 0, no links) and
    returns its index.  Streaming instance builders ([Oracle.Session])
    grow the demand side as new job positions appear; the cached
    parametric arena appends a vertex and a capacity-0 sink edge in
    place. *)

val set_demand : t -> int -> int -> unit
(** [set_demand t j d] with [d >= 0]; demands default to 0.  On the
    cached parametric arena this is a single sink-edge capacity patch at
    the next query — a raise keeps the routed flow, a lowering cancels
    the surplus flow ({!Maxflow.drain_sink_caps}) — never a rebuild. *)

val demand : t -> int -> int

val add_link : t -> supplier:int -> demand:int -> unit
(** Declares that the supplier may serve the demand site.  Duplicate links
    are harmless.  Links are stored in one growable flat int array — no
    per-link allocation. *)

val n_links : t -> int

val iter_links : t -> (supplier:int -> demand:int -> unit) -> unit
(** Iterates links in insertion order. *)

val total_demand : t -> int

val max_served : t -> supply:(int -> int) -> int
(** Maximum total demand servable when supplier [i] can emit at most
    [supply i] units. *)

val feasible : t -> supply:(int -> int) -> bool
(** [max_served = total_demand]. *)

val min_uniform_supply : t -> scale:int -> float option
(** Smallest [ω], a multiple of [1/scale], such that uniform per-supplier
    capacity [ω] is feasible.  [None] when no finite capacity suffices
    (some positive demand has no link).  [Some 0.] immediately — no arena,
    no probe — when the total demand is zero, links or not.  Exact
    whenever the true optimum [max_J D(J)/|N(J)|] has a denominator
    dividing [scale].

    Internally a cached {!Paramflow} driver on one {!Maxflow} arena
    serves every query at the same [scale]: the first call runs the
    monotone parametric sweep (cost ≈ one push-relabel flow, counted as
    one [transport.feasibility_checks]); repeated calls are pure lookups
    ([transport.breakpoint_lookups]); and after [add_supplier]/[add_link]
    growth — the oracle's radius scan — the next call re-normalizes the
    retained flow and extends the family instead of starting over.
    Changing a demand ([set_demand]/[add_demand]) invalidates the cached
    answer but {e not} the arena: the affected sink edges are patched in
    place and the next call re-sweeps warm from the retained flow.  The
    value is bit-identical to the discrete-Newton search it replaces:
    both land on the unique minimal feasible grid level. *)

val breakpoints : t -> scale:int -> (int * int * int) array
(** The integer lower envelope of the parametric min-cut function for
    this instance at this [scale], as [(level, value, slope)] triples
    sorted by level — levels strictly increasing, slopes non-increasing.
    Runs (or reuses) the cached sweep, then refines the family to every
    breakpoint distinguishable at integer levels.  [[||]] when the total
    demand is zero. *)

val dual_value_exhaustive : t -> float
(** [max_J Σ_{j∈J} d(j) / |N(J)|] by enumerating all demand subsets.
    Exponential — test witness for tiny instances only (raises
    [Invalid_argument] beyond 20 demand sites). *)

val infeasibility_witness :
  ?core:Maxflow.core -> t -> supply:(int -> int) -> int list option
(** When the instance is infeasible at the given supplies, returns a
    Hall-type violating set of demand indices [J] with
    [Σ_{j∈J} d(j) > Σ_{i∈N(J)} supply i], extracted from a minimum cut
    (demand vertices on the sink side).  [None] when feasible. *)
