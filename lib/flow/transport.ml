let m_bisection_steps = Metrics.counter "transport.bisection_steps"
let m_feasibility_checks = Metrics.counter "transport.feasibility_checks"

type t = {
  mutable n_suppliers : int;
  n_demands : int;
  demands : int array;
  mutable links : int array; (* flattened pairs: 2k = supplier, 2k+1 = demand *)
  mutable n_links : int;
  linked : bool array; (* demand j has at least one link *)
}

let create ~n_suppliers ~n_demands =
  if n_suppliers < 0 || n_demands < 0 then
    invalid_arg "Transport.create: negative size";
  {
    n_suppliers;
    n_demands;
    demands = Array.make n_demands 0;
    links = [||];
    n_links = 0;
    linked = Array.make n_demands false;
  }

let n_suppliers t = t.n_suppliers
let n_demands t = t.n_demands

let add_supplier t =
  let i = t.n_suppliers in
  t.n_suppliers <- i + 1;
  i

let set_demand t j d =
  if d < 0 then invalid_arg "Transport.set_demand: negative demand";
  t.demands.(j) <- d

let demand t j = t.demands.(j)

let add_link t ~supplier ~demand =
  if supplier < 0 || supplier >= t.n_suppliers then
    invalid_arg "Transport.add_link: supplier out of range";
  if demand < 0 || demand >= t.n_demands then
    invalid_arg "Transport.add_link: demand out of range";
  if (2 * t.n_links) + 2 > Array.length t.links then begin
    let bigger = Array.make (max 16 (2 * Array.length t.links)) 0 in
    Array.blit t.links 0 bigger 0 (2 * t.n_links);
    t.links <- bigger
  end;
  t.links.(2 * t.n_links) <- supplier;
  t.links.((2 * t.n_links) + 1) <- demand;
  t.n_links <- t.n_links + 1;
  t.linked.(demand) <- true

let n_links t = t.n_links

let iter_links t f =
  for k = 0 to t.n_links - 1 do
    f ~supplier:t.links.(2 * k) ~demand:t.links.((2 * k) + 1)
  done

let total_demand t = Array.fold_left ( + ) 0 t.demands

(* Network layout: 0 = source, 1 = sink, suppliers at 2..2+S-1, demands
   after that. *)
let supplier_vertex i = 2 + i
let demand_vertex t j = 2 + t.n_suppliers + j

let max_served_scaled t ~supply ~demand_scale =
  let net = Maxflow.create (2 + t.n_suppliers + t.n_demands) in
  for i = 0 to t.n_suppliers - 1 do
    let cap = supply i in
    if cap > 0 then
      ignore (Maxflow.add_edge net ~src:0 ~dst:(supplier_vertex i) ~cap)
  done;
  let inf = ref 0 in
  Array.iter (fun d -> inf := !inf + (d * demand_scale)) t.demands;
  let inf = max 1 !inf in
  iter_links t (fun ~supplier:i ~demand:j ->
      ignore
        (Maxflow.add_edge net ~src:(supplier_vertex i) ~dst:(demand_vertex t j)
           ~cap:inf));
  for j = 0 to t.n_demands - 1 do
    if t.demands.(j) > 0 then
      ignore
        (Maxflow.add_edge net ~src:(demand_vertex t j) ~dst:1
           ~cap:(t.demands.(j) * demand_scale))
  done;
  Maxflow.max_flow net ~source:0 ~sink:1

let max_served t ~supply = max_served_scaled t ~supply ~demand_scale:1

let feasible t ~supply = max_served t ~supply = total_demand t

let every_demand_linked t =
  let rec loop j =
    j = t.n_demands || ((t.demands.(j) = 0 || t.linked.(j)) && loop (j + 1))
  in
  loop 0

let min_uniform_supply t ~scale =
  if scale <= 0 then invalid_arg "Transport.min_uniform_supply: scale must be positive";
  let total = total_demand t in
  if total = 0 then Some 0.0
  else if not (every_demand_linked t) then None
  else begin
    (* Scaled problem: demands d*scale, integer uniform capacity u; answer
       u/scale.  Feasible at u = total*scale (one linked supplier can carry
       everything).

       The flow network is an arena built ONCE.  Source edges start at
       capacity 0; between probes only their capacities change
       (Maxflow.set_even_caps preserves routed flow), so each probe pushes
       only the flow *increment* over the previous level.

       The search itself is a discrete Newton iteration on the parametric
       min cut rather than a blind bisection: at an infeasible level u the
       min cut is crossed by k >= 1 source edges (never by an "infinite"
       link edge), so its capacity is the line k*u + b with
       b = maxflow(u) - k*u, and ANY feasible integer level must be at
       least u + ceil((target - maxflow(u)) / k).  Jumping straight there
       keeps every probe infeasible until the last, which lands exactly on
       the minimal feasible u — the same value a bisection returns — after
       at most one probe per distinct cut slope. *)
    let target = Energy.mul total scale in
    let net = Maxflow.create (2 + t.n_suppliers + t.n_demands) in
    let src_edges =
      Array.init t.n_suppliers (fun i ->
          Maxflow.add_edge net ~src:0 ~dst:(supplier_vertex i) ~cap:0)
    in
    let inf = max 1 target in
    iter_links t (fun ~supplier:i ~demand:j ->
        ignore
          (Maxflow.add_edge net ~src:(supplier_vertex i)
             ~dst:(demand_vertex t j) ~cap:inf));
    for j = 0 to t.n_demands - 1 do
      if t.demands.(j) > 0 then
        ignore
          (Maxflow.add_edge net ~src:(demand_vertex t j) ~dst:1
             ~cap:(Energy.mul t.demands.(j) scale))
    done;
    (* Flow currently routed in the arena = max-flow at the last probed
       level; levels only increase, so it is never discarded. *)
    let routed = ref 0 in
    let u = ref 0 in
    let result = ref None in
    while Option.is_none !result do
      Metrics.incr m_feasibility_checks;
      Maxflow.set_even_caps net src_edges !u;
      let pushed = Maxflow.max_flow net ~source:0 ~sink:1 in
      routed := !routed + pushed;
      if !routed = target then
        result := Some (float_of_int !u /. float_of_int scale)
      else begin
        Metrics.incr m_bisection_steps;
        let side = Maxflow.min_cut_side net ~source:0 in
        let k = ref 0 in
        for i = 0 to t.n_suppliers - 1 do
          if not side.(supplier_vertex i) then incr k
        done;
        (* k = 0 would mean a cut of constant capacity < target, i.e. no
           finite level is feasible — excluded by every_demand_linked. *)
        assert (!k > 0);
        let deficit = target - !routed in
        u := !u + ((deficit + !k - 1) / !k)
      end
    done;
    !result
  end

let dual_value_exhaustive t =
  if t.n_demands > 20 then
    invalid_arg "Transport.dual_value_exhaustive: too many demand sites";
  (* Neighborhood of a demand subset = set of suppliers linked to it. *)
  let links_of_demand = Array.make t.n_demands [] in
  iter_links t (fun ~supplier:i ~demand:j ->
      links_of_demand.(j) <- i :: links_of_demand.(j));
  let best = ref 0.0 in
  let n_subsets = 1 lsl t.n_demands in
  let suppliers_seen = Array.make t.n_suppliers (-1) in
  for mask = 1 to n_subsets - 1 do
    let d_total = ref 0 and n_neigh = ref 0 in
    for j = 0 to t.n_demands - 1 do
      if mask land (1 lsl j) <> 0 then begin
        d_total := !d_total + t.demands.(j);
        List.iter
          (fun i ->
            if suppliers_seen.(i) <> mask then begin
              suppliers_seen.(i) <- mask;
              incr n_neigh
            end)
          links_of_demand.(j)
      end
    done;
    if !d_total > 0 then
      if !n_neigh = 0 then best := infinity
      else begin
        let v = float_of_int !d_total /. float_of_int !n_neigh in
        if v > !best then best := v
      end
  done;
  !best

let infeasibility_witness t ~supply =
  let net = Maxflow.create (2 + t.n_suppliers + t.n_demands) in
  for i = 0 to t.n_suppliers - 1 do
    let cap = supply i in
    if cap > 0 then ignore (Maxflow.add_edge net ~src:0 ~dst:(supplier_vertex i) ~cap)
  done;
  let inf = max 1 (total_demand t) in
  iter_links t (fun ~supplier:i ~demand:j ->
      ignore
        (Maxflow.add_edge net ~src:(supplier_vertex i) ~dst:(demand_vertex t j)
           ~cap:inf));
  for j = 0 to t.n_demands - 1 do
    if t.demands.(j) > 0 then
      ignore (Maxflow.add_edge net ~src:(demand_vertex t j) ~dst:1 ~cap:t.demands.(j))
  done;
  let flow = Maxflow.max_flow net ~source:0 ~sink:1 in
  if flow >= total_demand t then None
  else begin
    (* Infinite supplier->demand arcs force every neighbor of a sink-side
       demand onto the sink side too, so the sink-side demands violate
       Hall's condition for these supplies. *)
    let side = Maxflow.min_cut_side net ~source:0 in
    let out = ref [] in
    for j = t.n_demands - 1 downto 0 do
      if t.demands.(j) > 0 && not side.(demand_vertex t j) then out := j :: !out
    done;
    Some !out
  end
