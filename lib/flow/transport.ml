let m_bisection_steps = Metrics.counter "transport.bisection_steps"
let m_feasibility_checks = Metrics.counter "transport.feasibility_checks"

type t = {
  n_suppliers : int;
  n_demands : int;
  demands : int array;
  mutable links : (int * int) list; (* (supplier, demand), reversed *)
  mutable n_links : int;
}

let create ~n_suppliers ~n_demands =
  if n_suppliers < 0 || n_demands < 0 then
    invalid_arg "Transport.create: negative size";
  { n_suppliers; n_demands; demands = Array.make n_demands 0; links = []; n_links = 0 }

let n_suppliers t = t.n_suppliers
let n_demands t = t.n_demands

let set_demand t j d =
  if d < 0 then invalid_arg "Transport.set_demand: negative demand";
  t.demands.(j) <- d

let demand t j = t.demands.(j)

let add_link t ~supplier ~demand =
  if supplier < 0 || supplier >= t.n_suppliers then
    invalid_arg "Transport.add_link: supplier out of range";
  if demand < 0 || demand >= t.n_demands then
    invalid_arg "Transport.add_link: demand out of range";
  t.links <- (supplier, demand) :: t.links;
  t.n_links <- t.n_links + 1

let total_demand t = Array.fold_left ( + ) 0 t.demands

(* Network layout: 0 = source, 1 = sink, suppliers at 2..2+S-1, demands
   after that. *)
let supplier_vertex i = 2 + i
let demand_vertex t j = 2 + t.n_suppliers + j

let max_served_scaled t ~supply ~demand_scale =
  let net = Maxflow.create (2 + t.n_suppliers + t.n_demands) in
  for i = 0 to t.n_suppliers - 1 do
    let cap = supply i in
    if cap > 0 then
      ignore (Maxflow.add_edge net ~src:0 ~dst:(supplier_vertex i) ~cap)
  done;
  let inf = ref 0 in
  Array.iter (fun d -> inf := !inf + (d * demand_scale)) t.demands;
  let inf = max 1 !inf in
  List.iter
    (fun (i, j) ->
      ignore
        (Maxflow.add_edge net ~src:(supplier_vertex i) ~dst:(demand_vertex t j)
           ~cap:inf))
    t.links;
  for j = 0 to t.n_demands - 1 do
    if t.demands.(j) > 0 then
      ignore
        (Maxflow.add_edge net ~src:(demand_vertex t j) ~dst:1
           ~cap:(t.demands.(j) * demand_scale))
  done;
  Maxflow.max_flow net ~source:0 ~sink:1

let max_served t ~supply = max_served_scaled t ~supply ~demand_scale:1

let feasible t ~supply = max_served t ~supply = total_demand t

let every_demand_linked t =
  let linked = Array.make t.n_demands false in
  List.iter (fun (_, j) -> linked.(j) <- true) t.links;
  let rec loop j =
    j = t.n_demands || ((t.demands.(j) = 0 || linked.(j)) && loop (j + 1))
  in
  loop 0

let min_uniform_supply t ~scale =
  if scale <= 0 then invalid_arg "Transport.min_uniform_supply: scale must be positive";
  let total = total_demand t in
  if total = 0 then Some 0.0
  else if not (every_demand_linked t) then None
  else begin
    (* Scaled problem: demands d*scale, integer uniform capacity u; answer
       u/scale.  Feasible at u = total*scale (one linked supplier can carry
       everything). *)
    let target = total * scale in
    let feasible_at u =
      Metrics.incr m_feasibility_checks;
      max_served_scaled t ~supply:(fun _ -> u) ~demand_scale:scale = target
    in
    let lo = ref 0 and hi = ref (total * scale) in
    (* Invariant: infeasible at lo (unless lo = 0 feasible), feasible at hi. *)
    if feasible_at 0 then Some 0.0
    else begin
      while !hi - !lo > 1 do
        Metrics.incr m_bisection_steps;
        let mid = !lo + ((!hi - !lo) / 2) in
        if feasible_at mid then hi := mid else lo := mid
      done;
      Some (float_of_int !hi /. float_of_int scale)
    end
  end

let dual_value_exhaustive t =
  if t.n_demands > 20 then
    invalid_arg "Transport.dual_value_exhaustive: too many demand sites";
  (* Neighborhood of a demand subset = set of suppliers linked to it. *)
  let links_of_demand = Array.make t.n_demands [] in
  List.iter
    (fun (i, j) -> links_of_demand.(j) <- i :: links_of_demand.(j))
    t.links;
  let best = ref 0.0 in
  let n_subsets = 1 lsl t.n_demands in
  let suppliers_seen = Array.make t.n_suppliers (-1) in
  for mask = 1 to n_subsets - 1 do
    let d_total = ref 0 and n_neigh = ref 0 in
    for j = 0 to t.n_demands - 1 do
      if mask land (1 lsl j) <> 0 then begin
        d_total := !d_total + t.demands.(j);
        List.iter
          (fun i ->
            if suppliers_seen.(i) <> mask then begin
              suppliers_seen.(i) <- mask;
              incr n_neigh
            end)
          links_of_demand.(j)
      end
    done;
    if !d_total > 0 then
      if !n_neigh = 0 then best := infinity
      else begin
        let v = float_of_int !d_total /. float_of_int !n_neigh in
        if v > !best then best := v
      end
  done;
  !best

let infeasibility_witness t ~supply =
  let net = Maxflow.create (2 + t.n_suppliers + t.n_demands) in
  for i = 0 to t.n_suppliers - 1 do
    let cap = supply i in
    if cap > 0 then ignore (Maxflow.add_edge net ~src:0 ~dst:(supplier_vertex i) ~cap)
  done;
  let inf = max 1 (total_demand t) in
  List.iter
    (fun (i, j) ->
      ignore
        (Maxflow.add_edge net ~src:(supplier_vertex i) ~dst:(demand_vertex t j) ~cap:inf))
    t.links;
  for j = 0 to t.n_demands - 1 do
    if t.demands.(j) > 0 then
      ignore (Maxflow.add_edge net ~src:(demand_vertex t j) ~dst:1 ~cap:t.demands.(j))
  done;
  let flow = Maxflow.max_flow net ~source:0 ~sink:1 in
  if flow >= total_demand t then None
  else begin
    (* Infinite supplier->demand arcs force every neighbor of a sink-side
       demand onto the sink side too, so the sink-side demands violate
       Hall's condition for these supplies. *)
    let side = Maxflow.min_cut_side net ~source:0 in
    let out = ref [] in
    for j = t.n_demands - 1 downto 0 do
      if t.demands.(j) > 0 && not side.(demand_vertex t j) then out := j :: !out
    done;
    Some !out
  end
