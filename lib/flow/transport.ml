let m_feasibility_checks = Metrics.counter "transport.feasibility_checks"
let m_breakpoint_lookups = Metrics.counter "transport.breakpoint_lookups"

(* Parametric state cached across [min_uniform_supply] queries: one
   {!Maxflow} arena plus a {!Paramflow} driver, valid for one [scale].
   The arena uses its own vertex layout — source 0, sink 1, then demand
   and supplier vertices appended by [Maxflow.add_vertex] as the instance
   grows, with their ids recorded per site — so every kind of growth
   (suppliers from the oracle's radius scan, demand sites and demand
   values from streamed jobs) is a pure in-place extension or patch.
   Every demand site gets a sink edge at materialization time, capacity 0
   when its demand is 0, so a later demand change is a single-edge
   capacity patch: a raise keeps the routed flow, a lowering cancels the
   surplus via {!Maxflow.drain_sink_caps} — never an arena rebuild. *)
type pstate = {
  p_scale : int;
  mutable p_gen : int; (* demands generation the arena's caps match *)
  p_net : Maxflow.t;
  pf : Paramflow.t;
  mutable p_suppliers : int; (* suppliers materialized in the arena *)
  mutable p_links : int; (* links materialized in the arena *)
  mutable p_src : int array; (* parametric edge id per supplier *)
  mutable p_sup_vertex : int array; (* arena vertex per supplier *)
  mutable p_demands : int; (* demand sites materialized in the arena *)
  mutable p_dem_vertex : int array; (* arena vertex per demand site *)
  mutable p_dem_edge : int array; (* sink edge id per demand site *)
  mutable p_dem_val : int array; (* demand value the sink cap encodes *)
  mutable p_link_edges : int array; (* arena edge id per link *)
  mutable p_inf : int; (* current "infinite" link capacity *)
}

type t = {
  mutable n_suppliers : int;
  mutable n_demands : int;
  mutable demands : int array;
  mutable links : int array; (* flattened pairs: 2k = supplier, 2k+1 = demand *)
  mutable n_links : int;
  mutable linked : bool array; (* demand j has at least one link *)
  mutable demands_gen : int; (* bumped by set_demand *)
  mutable pstate : pstate option;
}

let create ~n_suppliers ~n_demands =
  if n_suppliers < 0 || n_demands < 0 then
    invalid_arg "Transport.create: negative size";
  {
    n_suppliers;
    n_demands;
    demands = Array.make n_demands 0;
    links = [||];
    n_links = 0;
    linked = Array.make n_demands false;
    demands_gen = 0;
    pstate = None;
  }

let n_suppliers t = t.n_suppliers
let n_demands t = t.n_demands

let add_supplier t =
  let i = t.n_suppliers in
  t.n_suppliers <- i + 1;
  i

let add_demand t =
  let j = t.n_demands in
  t.n_demands <- j + 1;
  if Array.length t.demands < t.n_demands then begin
    let bigger = Array.make (max 16 (2 * t.n_demands)) 0 in
    Array.blit t.demands 0 bigger 0 j;
    t.demands <- bigger
  end;
  if Array.length t.linked < t.n_demands then begin
    let bigger = Array.make (max 16 (2 * t.n_demands)) false in
    Array.blit t.linked 0 bigger 0 j;
    t.linked <- bigger
  end;
  t.demands.(j) <- 0;
  t.linked.(j) <- false;
  j

let set_demand t j d =
  if d < 0 then invalid_arg "Transport.set_demand: negative demand";
  if j < 0 || j >= t.n_demands then
    invalid_arg "Transport.set_demand: demand out of range";
  if t.demands.(j) <> d then begin
    t.demands.(j) <- d;
    t.demands_gen <- t.demands_gen + 1
  end

let demand t j =
  if j < 0 || j >= t.n_demands then
    invalid_arg "Transport.demand: demand out of range";
  t.demands.(j)

let add_link t ~supplier ~demand =
  if supplier < 0 || supplier >= t.n_suppliers then
    invalid_arg "Transport.add_link: supplier out of range";
  if demand < 0 || demand >= t.n_demands then
    invalid_arg "Transport.add_link: demand out of range";
  if (2 * t.n_links) + 2 > Array.length t.links then begin
    let bigger = Array.make (max 16 (2 * Array.length t.links)) 0 in
    Array.blit t.links 0 bigger 0 (2 * t.n_links);
    t.links <- bigger
  end;
  t.links.(2 * t.n_links) <- supplier;
  t.links.((2 * t.n_links) + 1) <- demand;
  t.n_links <- t.n_links + 1;
  t.linked.(demand) <- true

let n_links t = t.n_links

let iter_links t f =
  for k = 0 to t.n_links - 1 do
    f ~supplier:t.links.(2 * k) ~demand:t.links.((2 * k) + 1)
  done

let total_demand t = Array.fold_left ( + ) 0 t.demands

(* Throw-away network layout (max_served, witnesses): 0 = source,
   1 = sink, suppliers at 2..2+S-1, demands after that. *)
let supplier_vertex i = 2 + i
let demand_vertex t j = 2 + t.n_suppliers + j

let max_served_scaled t ~supply ~demand_scale =
  let net = Maxflow.create (2 + t.n_suppliers + t.n_demands) in
  for i = 0 to t.n_suppliers - 1 do
    let cap = supply i in
    if cap > 0 then
      ignore (Maxflow.add_edge net ~src:0 ~dst:(supplier_vertex i) ~cap)
  done;
  let inf = ref 0 in
  Array.iter (fun d -> inf := !inf + (d * demand_scale)) t.demands;
  let inf = max 1 !inf in
  iter_links t (fun ~supplier:i ~demand:j ->
      ignore
        (Maxflow.add_edge net ~src:(supplier_vertex i) ~dst:(demand_vertex t j)
           ~cap:inf));
  for j = 0 to t.n_demands - 1 do
    if t.demands.(j) > 0 then
      ignore
        (Maxflow.add_edge net ~src:(demand_vertex t j) ~dst:1
           ~cap:(t.demands.(j) * demand_scale))
  done;
  Maxflow.max_flow net ~source:0 ~sink:1

let max_served t ~supply = max_served_scaled t ~supply ~demand_scale:1

let feasible t ~supply = max_served t ~supply = total_demand t

let every_demand_linked t =
  let rec loop j =
    j = t.n_demands || ((t.demands.(j) = 0 || t.linked.(j)) && loop (j + 1))
  in
  loop 0

let grow_int_array arr n =
  if Array.length arr >= n then arr
  else begin
    let bigger = Array.make (max 16 (max n (2 * Array.length arr))) 0 in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

(* Build or extend the cached parametric state for this scale.  Returns
   the state with all current demand sites, demand values, suppliers and
   links materialized.  Everything short of a scale change is an in-place
   delta: new demand sites and suppliers are appended ([Maxflow.add_vertex]),
   changed demand values patch their sink edge ([Paramflow.patch_sink_cap] —
   flow-preserving raise, or cancellation drain), link capacities are
   raised when the target outgrows the previous "infinity", and the
   driver is re-pointed with [Paramflow.grow]/[retarget] so the next
   solve is a warm re-sweep of the retained flow. *)
let ensure_pstate t ~scale ~target =
  let ps =
    match t.pstate with
    | Some ps when ps.p_scale = scale -> ps
    | _ ->
        let net = Maxflow.create 2 in
        let pf =
          Paramflow.create ~net ~source:0 ~sink:1 ~src_edges:[||] ~target:0
        in
        let ps =
          {
            p_scale = scale;
            p_gen = t.demands_gen;
            p_net = net;
            pf;
            p_suppliers = 0;
            p_links = 0;
            p_src = [||];
            p_sup_vertex = [||];
            p_demands = 0;
            p_dem_vertex = [||];
            p_dem_edge = [||];
            p_dem_val = [||];
            p_link_edges = [||];
            p_inf = 0;
          }
        in
        t.pstate <- Some ps;
        ps
  in
  (* 1. materialize new demand sites: a vertex plus a sink edge each,
     capacity 0 when the demand is 0 — later changes are patches *)
  if ps.p_demands < t.n_demands then begin
    ps.p_dem_vertex <- grow_int_array ps.p_dem_vertex t.n_demands;
    ps.p_dem_edge <- grow_int_array ps.p_dem_edge t.n_demands;
    ps.p_dem_val <- grow_int_array ps.p_dem_val t.n_demands;
    for j = ps.p_demands to t.n_demands - 1 do
      let v = Maxflow.add_vertex ps.p_net in
      ps.p_dem_vertex.(j) <- v;
      ps.p_dem_edge.(j) <-
        Maxflow.add_edge ps.p_net ~src:v ~dst:1
          ~cap:(Energy.mul t.demands.(j) scale);
      ps.p_dem_val.(j) <- t.demands.(j)
    done;
    ps.p_demands <- t.n_demands
  end;
  (* 2. patch demand values changed since the arena's caps last matched *)
  if ps.p_gen <> t.demands_gen then begin
    for j = 0 to ps.p_demands - 1 do
      if ps.p_dem_val.(j) <> t.demands.(j) then begin
        Paramflow.patch_sink_cap ps.pf ps.p_dem_edge.(j)
          (Energy.mul t.demands.(j) scale);
        ps.p_dem_val.(j) <- t.demands.(j)
      end
    done;
    ps.p_gen <- t.demands_gen
  end;
  (* 3. materialize new suppliers *)
  let grew = ps.p_suppliers < t.n_suppliers || ps.p_links < t.n_links in
  if ps.p_suppliers < t.n_suppliers then begin
    ps.p_src <- grow_int_array ps.p_src t.n_suppliers;
    ps.p_sup_vertex <- grow_int_array ps.p_sup_vertex t.n_suppliers;
    for i = ps.p_suppliers to t.n_suppliers - 1 do
      let v = Maxflow.add_vertex ps.p_net in
      ps.p_sup_vertex.(i) <- v;
      ps.p_src.(i) <- Maxflow.add_edge ps.p_net ~src:0 ~dst:v ~cap:0
    done;
    ps.p_suppliers <- t.n_suppliers
  end;
  (* 4. "infinite" link capacity: never the binding constraint at any
     level.  Raising is flow-preserving, so when the target outgrows the
     previous infinity the existing links are patched in place. *)
  if target > ps.p_inf then begin
    if ps.p_links > 0 then
      Maxflow.set_even_caps ps.p_net
        (Array.sub ps.p_link_edges 0 ps.p_links)
        (max 1 target);
    ps.p_inf <- max 1 target
  end;
  (* 5. materialize new links *)
  if ps.p_links < t.n_links then begin
    ps.p_link_edges <- grow_int_array ps.p_link_edges t.n_links;
    for k = ps.p_links to t.n_links - 1 do
      let i = t.links.(2 * k) and j = t.links.((2 * k) + 1) in
      ps.p_link_edges.(k) <-
        Maxflow.add_edge ps.p_net ~src:ps.p_sup_vertex.(i)
          ~dst:ps.p_dem_vertex.(j) ~cap:ps.p_inf
    done;
    ps.p_links <- t.n_links
  end;
  (* 6. re-point the driver *)
  if grew then
    Paramflow.grow ps.pf ~src_edges:(Array.sub ps.p_src 0 ps.p_suppliers);
  if Paramflow.target ps.pf <> target then Paramflow.retarget ps.pf ~target;
  ps

let min_uniform_supply t ~scale =
  if scale <= 0 then
    invalid_arg "Transport.min_uniform_supply: scale must be positive";
  let total = total_demand t in
  if total = 0 then
    (* Empty (or all-zero-demand) instance: no arena, no probe — the
       answer is 0 supply regardless of suppliers and links. *)
    Some 0.0
  else if not (every_demand_linked t) then None
  else begin
    (* Scaled problem: demands d*scale, integer uniform capacity u; answer
       u/scale.  The cached parametric driver (GGT-style: one monotone
       push-relabel sweep discovers the whole breakpoint family) answers
       repeated queries at this scale as lookups, and the oracle's radius
       scan only extends the arena — warm flow kept — instead of
       rebuilding it. *)
    let target = Energy.mul total scale in
    let ps = ensure_pstate t ~scale ~target in
    if Paramflow.solved ps.pf then Metrics.incr m_breakpoint_lookups
    else Metrics.incr m_feasibility_checks;
    match Paramflow.solve ps.pf with
    | Some u -> Some (float_of_int u /. float_of_int scale)
    | None -> None
  end

let breakpoints t ~scale =
  if scale <= 0 then
    invalid_arg "Transport.breakpoints: scale must be positive";
  let total = total_demand t in
  if total = 0 then [||]
  else begin
    let target = Energy.mul total scale in
    let ps = ensure_pstate t ~scale ~target in
    Paramflow.refine_all ps.pf;
    Paramflow.breakpoints ps.pf
  end

let dual_value_exhaustive t =
  if t.n_demands > 20 then
    invalid_arg "Transport.dual_value_exhaustive: too many demand sites";
  (* Neighborhood of a demand subset = set of suppliers linked to it. *)
  let links_of_demand = Array.make t.n_demands [] in
  iter_links t (fun ~supplier:i ~demand:j ->
      links_of_demand.(j) <- i :: links_of_demand.(j));
  let best = ref 0.0 in
  let n_subsets = 1 lsl t.n_demands in
  let suppliers_seen = Array.make t.n_suppliers (-1) in
  for mask = 1 to n_subsets - 1 do
    let d_total = ref 0 and n_neigh = ref 0 in
    for j = 0 to t.n_demands - 1 do
      if mask land (1 lsl j) <> 0 then begin
        d_total := !d_total + t.demands.(j);
        List.iter
          (fun i ->
            if suppliers_seen.(i) <> mask then begin
              suppliers_seen.(i) <- mask;
              incr n_neigh
            end)
          links_of_demand.(j)
      end
    done;
    if !d_total > 0 then
      if !n_neigh = 0 then best := infinity
      else begin
        let v = float_of_int !d_total /. float_of_int !n_neigh in
        if v > !best then best := v
      end
  done;
  !best

let infeasibility_witness ?core t ~supply =
  let net = Maxflow.create ?core (2 + t.n_suppliers + t.n_demands) in
  for i = 0 to t.n_suppliers - 1 do
    let cap = supply i in
    if cap > 0 then
      ignore (Maxflow.add_edge net ~src:0 ~dst:(supplier_vertex i) ~cap)
  done;
  let inf = max 1 (total_demand t) in
  iter_links t (fun ~supplier:i ~demand:j ->
      ignore
        (Maxflow.add_edge net ~src:(supplier_vertex i) ~dst:(demand_vertex t j)
           ~cap:inf));
  for j = 0 to t.n_demands - 1 do
    if t.demands.(j) > 0 then
      ignore
        (Maxflow.add_edge net ~src:(demand_vertex t j) ~dst:1
           ~cap:t.demands.(j))
  done;
  let flow = Maxflow.max_flow net ~source:0 ~sink:1 in
  if flow >= total_demand t then None
  else begin
    (* Infinite supplier->demand arcs force every neighbor of a sink-side
       demand onto the sink side too, so the sink-side demands violate
       Hall's condition for these supplies. *)
    let side = Maxflow.min_cut_side net ~source:0 in
    let out = ref [] in
    for j = t.n_demands - 1 downto 0 do
      if t.demands.(j) > 0 && not side.(demand_vertex t j) then out := j :: !out
    done;
    Some !out
  end
