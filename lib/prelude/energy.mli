(** Checked integer arithmetic for energy/capacity bookkeeping.

    The paper's bounds ([Woff = Theta(omega_star)], [Won = Theta(Woff)])
    are proved with
    exact integer accounting of travel and service costs; a silent
    [int] overflow in an energy or capacity expression would corrupt a
    bound without any visible failure.  Every arithmetic step on
    energy-like quantities therefore goes through this module, which
    raises {!Overflow} instead of wrapping around.  The project lint
    ([tools/lint], rule [energy-arith]) flags raw [+]/[-]/[*] on
    identifiers that look like energies or capacities and points here.

    All functions are identities on the mathematical result whenever it
    is representable in [int]; the checks are a compare-and-branch and
    are safe to keep on hot paths. *)

exception Overflow of string
(** Raised when a result does not fit in [int]; the payload names the
    operation and its operands. *)

val add : int -> int -> int
(** [add a b] is [a + b], or raises {!Overflow}. *)

val sub : int -> int -> int
(** [sub a b] is [a - b], or raises {!Overflow}. *)

val mul : int -> int -> int
(** [mul a b] is [a * b], or raises {!Overflow}. *)

val scale : int -> int -> int
(** [scale k e] is [k * e]; synonym of {!mul} with the conventional
    scalar-first argument order. *)

val pow : int -> int -> int
(** [pow base e] is [base{^e}] for [e >= 0], via checked multiplication.
    Raises [Invalid_argument] on a negative exponent and {!Overflow}
    when the result does not fit. *)

val sum : int list -> int
(** Checked left fold of {!add} over the list; [sum [] = 0]. *)
