exception Overflow of string

let overflow op a b =
  raise (Overflow (Printf.sprintf "Energy.%s: %d %s %d does not fit in int" op a op b))

(* Raw operators are deliberate here: this module implements the checks
   the rest of the tree delegates to, so the [energy-arith] lint exempts
   [energy.ml] by name. *)

let add a b =
  let r = a + b in
  (* Overflow iff the operands agree in sign and the result does not. *)
  if (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0) then overflow "add" a b else r

let sub a b =
  let r = a - b in
  if (a >= 0) <> (b >= 0) && (r >= 0) <> (a >= 0) then overflow "sub" a b else r

let mul a b =
  if a = 0 || b = 0 then 0
  else if (a = -1 && b = min_int) || (b = -1 && a = min_int) then
    overflow "mul" a b
  else begin
    let r = a * b in
    if r / a <> b then overflow "mul" a b else r
  end

let scale k e = mul k e

let pow base e =
  if e < 0 then invalid_arg "Energy.pow: negative exponent";
  let rec go acc i = if i = 0 then acc else go (mul acc base) (i - 1) in
  go 1 e

let sum xs = List.fold_left add 0 xs
