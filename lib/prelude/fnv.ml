(* FNV-1a over native ints.  The 64-bit constants are truncated to
   OCaml's 63-bit int by the `land max_int` at every step, which keeps
   digests identical across platforms (and positive, so they print as
   plain hex).  Ints are mixed one byte at a time — the classic FNV-1a
   octet loop — so nearby values diverge quickly. *)

let basis = Int64.to_int 0xcbf29ce484222325L land max_int
let prime = 0x100000001b3

let add_byte h b = ((h lxor (b land 0xff)) * prime) land max_int

let add_int h x =
  let h = ref h in
  for shift = 0 to 7 do
    h := add_byte !h (x asr (8 * shift))
  done;
  !h

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_byte !h (Char.code c)) s;
  add_int !h (String.length s)

let of_ints xs = List.fold_left add_int basis xs
