let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let linear_fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let xs = Array.map fst points and ys = Array.map snd points in
  let mx = mean xs and my = mean ys in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sxx := !sxx +. ((x -. mx) *. (x -. mx));
      sxy := !sxy +. ((x -. mx) *. (y -. my));
      syy := !syy +. ((y -. my) *. (y -. my)))
    points;
  if !sxx = 0.0 then invalid_arg "Stats.linear_fit: degenerate x values";
  let b = !sxy /. !sxx in
  let a = my -. (b *. mx) in
  let r2 = if !syy = 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  (a, b, r2)

let loglog_slope points =
  let logged =
    Array.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then
          invalid_arg "Stats.loglog_slope: non-positive point";
        (log x, log y))
      points
  in
  let _, slope, _ = linear_fit logged in
  slope

let geometric_mean xs =
  check_nonempty "Stats.geometric_mean" xs;
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value";
        acc +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int (Array.length xs))
