type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row ->
        match row with
        | Rule -> widths
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) widths cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  let emit_cells cells =
    let padded =
      List.map2 (fun (w, a) c -> pad a w c)
        (List.combine widths t.aligns)
        cells
    in
    Buffer.add_string buf ("| " ^ String.concat " | " padded ^ " |\n")
  in
  let emit_rule () =
    let bars = List.map (fun w -> String.make (w + 2) '-') widths in
    Buffer.add_string buf ("+" ^ String.concat "+" bars ^ "+\n")
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  emit_rule ();
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Rule -> emit_rule () | Cells cells -> emit_cells cells) rows;
  emit_rule ();
  Buffer.contents buf

(* [print]'s whole contract is writing the rendered table to stdout
   (see the .mli), so the no-printing-in-libraries rule is waived here. *)
let print t =
  print_string (render t) (* lint: allow print-in-lib *);
  print_newline () (* lint: allow print-in-lib *)

let cell_f ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
let cell_i n = string_of_int n
