(* A small fixed-size Domain work pool.  This module is the only place in
   the tree (outside lib/metrics) allowed to touch Domain/Atomic — the
   cmvrp_lint rule [domain-confine] enforces that, so every parallel code
   path in the solvers goes through this deterministic-order facade. *)

let default_workers =
  (* One worker per recommended domain, capped: the fan-outs this pool
     serves (oracle probes, per-cube plans, bench scenarios) are
     coarse-grained, so a handful of domains already saturates them. *)
  let r = Domain.recommended_domain_count () in
  if r < 1 then 1 else if r > 8 then 8 else r

let workers_ref = ref default_workers

let set_workers n =
  if n < 1 then invalid_arg "Pool.set_workers: need at least one worker";
  workers_ref := n

let workers () = !workers_ref

(* Each task's outcome is written to its own slot, so result order is the
   input order no matter which domain ran what.  Tasks are handed out by
   an atomic cursor: domains race for indices, never for slots. *)
type 'a outcome = Pending | Done of 'a | Raised of exn

let run_tasks n f =
  let w = min (workers ()) n in
  if n = 0 then [||]
  else if w <= 1 then Array.init n (fun i -> Done (f i))
  else begin
    let slots = Array.make n Pending in
    let cursor = Atomic.make 0 in
    let work () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (* Each index is written by exactly one worker (the atomic
             cursor hands it out once) and the caller reads the slots
             only after joining every domain. *)
          (* race: allow disjoint per-index writes, read after join *)
          (slots.(i) <- (try Done (f i) with e -> Raised e));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (w - 1) (fun _ -> Domain.spawn work) in
    (* The calling domain is worker zero; it joins the rest afterwards so
       a raising task can never leave a domain running. *)
    work ();
    Array.iter Domain.join spawned;
    slots
  end

let reraise_first slots =
  (* Deterministic failure: the lowest-index raising task wins, matching
     what a sequential left-to-right run would have thrown first. *)
  Array.iter (function Raised e -> raise e | _ -> ()) slots

let map f xs =
  let slots = run_tasks (Array.length xs) (fun i -> f xs.(i)) in
  reraise_first slots;
  Array.map (function Done v -> v | Pending | Raised _ -> assert false) slots

let init n f =
  if n < 0 then invalid_arg "Pool.init: negative size";
  let slots = run_tasks n f in
  reraise_first slots;
  Array.map (function Done v -> v | Pending | Raised _ -> assert false) slots

let both f g =
  match init 2 (fun i -> if i = 0 then Either.Left (f ()) else Either.Right (g ())) with
  | [| Either.Left a; Either.Right b |] -> (a, b)
  | _ -> assert false
