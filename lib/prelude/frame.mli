(** Length-prefixed message framing for the serving protocol.

    A frame is [<decimal length>\n<payload>\n]: an ASCII decimal byte
    count, a newline, exactly that many payload bytes, and a trailing
    newline.  Payloads are opaque byte strings (in practice one compact
    JSON document — hence "length-prefixed JSON lines"); the explicit
    length makes the stream self-delimiting even if a payload contains
    newlines, and keeps both sides resynchronizable by construction: any
    header violation raises {!Bad_frame} rather than silently skewing the
    stream.

    Two consumption styles:
    - blocking {!read}/{!write} over [Stdlib] channels (the stdio
      transport and the load-generator client);
    - an incremental {!decoder} fed arbitrary byte chunks (the daemon's
      select loop, which reads whatever the socket has and pops the
      complete frames).  See [docs/SERVING.md]. *)

exception Bad_frame of string
(** Malformed header (non-digit, empty, oversized length) or missing
    trailing newline. *)

val max_payload : int
(** Hard cap on a single payload (16 MiB) — a corrupt or hostile header
    cannot make a peer allocate unboundedly. *)

val encode : string -> string
(** The full wire form of one payload. *)

val write : out_channel -> string -> unit
(** [write oc payload] emits one frame and flushes. *)

val read : in_channel -> string option
(** Blocking read of one complete frame; [None] at a clean end of stream
    (EOF before the first header byte).  EOF mid-frame raises
    {!Bad_frame}. *)

(** {1 Incremental decoding} *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> bytes -> int -> int -> unit
(** [feed d buf off len] appends a chunk of received bytes. *)

val feed_string : decoder -> string -> unit

val next : decoder -> string option
(** Pops the next complete payload, or [None] if more bytes are needed.
    Raises {!Bad_frame} as soon as the buffered prefix cannot start a
    valid frame. *)
