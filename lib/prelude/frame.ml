exception Bad_frame of string

let max_payload = 16 * 1024 * 1024

(* The longest legal header is the decimal width of max_payload plus the
   newline; seeing no newline within that many buffered bytes is already
   a framing error, not a need for more input. *)
let max_header = String.length (string_of_int max_payload) + 1

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_frame m)) fmt

let encode payload =
  if String.length payload > max_payload then
    bad "payload of %d bytes exceeds the %d-byte frame cap"
      (String.length payload) max_payload;
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

let write oc payload =
  output_string oc (encode payload);
  flush oc

let read ic =
  match input_line ic with
  | exception End_of_file -> None
  | header -> (
      let len =
        match int_of_string_opt header with
        | Some n when n >= 0 && n <= max_payload -> n
        | Some n -> bad "frame length %d out of range" n
        | None -> bad "malformed frame header %S" header
      in
      match really_input_string ic (len + 1) with
      | exception End_of_file -> bad "end of stream inside a %d-byte frame" len
      | body ->
          if body.[len] <> '\n' then
            bad "frame of %d bytes not terminated by a newline" len;
          Some (String.sub body 0 len))

(* --- incremental decoding --- *)

(* [buf] holds every byte received but not yet popped; [pos] is the
   consumed prefix.  Extraction is O(frame) and the buffer is compacted
   once the dead prefix dominates, so a long-lived connection does not
   accumulate garbage. *)
type decoder = { mutable buf : Buffer.t; mutable pos : int }

let decoder () = { buf = Buffer.create 512; pos = 0 }

let feed d bytes off len = Buffer.add_subbytes d.buf bytes off len

let feed_string d s = Buffer.add_string d.buf s

let compact d =
  if d.pos > 4096 && 2 * d.pos > Buffer.length d.buf then begin
    let rest = Buffer.sub d.buf d.pos (Buffer.length d.buf - d.pos) in
    let fresh = Buffer.create (String.length rest + 512) in
    Buffer.add_string fresh rest;
    d.buf <- fresh;
    d.pos <- 0
  end

let next d =
  let avail = Buffer.length d.buf - d.pos in
  let rec find_newline i =
    if i >= avail then None
    else if Char.equal (Buffer.nth d.buf (d.pos + i)) '\n' then Some i
    else if i + 1 >= max_header then
      bad "no frame header within %d bytes" max_header
    else find_newline (i + 1)
  in
  match find_newline 0 with
  | None -> if avail >= max_header then bad "unterminated frame header" else None
  | Some header_len -> (
      let header = Buffer.sub d.buf d.pos header_len in
      let len =
        match int_of_string_opt header with
        | Some n when n >= 0 && n <= max_payload -> n
        | Some n -> bad "frame length %d out of range" n
        | None -> bad "malformed frame header %S" header
      in
      let total = header_len + 1 + len + 1 in
      if avail < total then None
      else begin
        let terminator = Buffer.nth d.buf (d.pos + total - 1) in
        if not (Char.equal terminator '\n') then
          bad "frame of %d bytes not terminated by a newline" len;
        let payload = Buffer.sub d.buf (d.pos + header_len + 1) len in
        d.pos <- d.pos + total;
        compact d;
        Some payload
      end)
