(** Fixed-size [Domain] work pool with deterministic result order.

    The solvers fan out coarse independent units of work — oracle
    feasibility probes, per-cube planning, benchmark scenarios — through
    this module instead of touching [Domain]/[Atomic] directly (the
    cmvrp_lint rule [domain-confine] reserves those for here and for
    [lib/metrics]).  Results always come back in input order, and with a
    single worker every function degrades to a plain sequential loop in
    the calling domain, so output (and [Metrics]) determinism is
    preserved by construction at [workers () = 1].

    Exceptions: if any task raises, the pool finishes or hands back all
    in-flight work, joins every domain, and re-raises the exception of
    the {e lowest-indexed} failing task — the same exception a
    sequential left-to-right run would have thrown first. *)

val default_workers : int
(** [Domain.recommended_domain_count ()] clamped to [1..8]. *)

val set_workers : int -> unit
(** Sets the pool width for subsequent calls (at least 1).  Width 1
    means strictly sequential execution in the calling domain. *)

val workers : unit -> int

val map : ('a -> 'b) -> 'a array -> 'b array
(** [map f xs] applies [f] to every element, possibly in parallel;
    [(map f xs).(i) = f xs.(i)] always. *)

val init : int -> (int -> 'a) -> 'a array
(** Parallel [Array.init] with the same ordering guarantee. *)

val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both f g] runs the two thunks (in parallel when workers allow) and
    returns both results. *)
