(** FNV-1a mixing on native [int]s.

    A tiny non-cryptographic hash used wherever the tree needs a cheap,
    deterministic digest of structured data: the DES trace digest, and the
    canonical demand-set keys of the serving cache
    ([lib/serve/protocol.ml]).  The stream API folds one value at a time
    ([digest |> add_int x |> add_int y]); equal input sequences give equal
    digests on every platform with 63-bit [int]s.

    This is a fingerprint, not a security boundary: collisions are
    possible in principle, so exact consumers (the serve cache) must pair
    the digest with a structural equality check. *)

val basis : int
(** The FNV-1a 64-bit offset basis, truncated to OCaml's 63-bit [int]. *)

val add_int : int -> int -> int
(** [add_int h x] folds [x] into digest [h] (both full-width: the value is
    mixed byte by byte, so [add_int h] separates [1] from [256]). *)

val add_string : int -> string -> int
(** Folds the bytes of the string, then its length (so concatenation
    boundaries matter: [["ab";"c"]] and [["a";"bc"]] digest apart). *)

val of_ints : int list -> int
(** [of_ints xs] is [List.fold_left add_int basis xs]. *)
