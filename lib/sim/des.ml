let m_messages_sent = Metrics.counter "des.messages_sent"
let m_events_dispatched = Metrics.counter "des.events_dispatched"
let m_queue_depth = Metrics.gauge "des.queue_depth"
let m_dropped = Metrics.counter "des.messages_dropped"
let m_duplicated = Metrics.counter "des.messages_duplicated"
let m_spikes = Metrics.counter "des.delay_spikes"
let m_livelocks = Metrics.counter "des.livelocks"

(* --- channel fault model --- *)

type faults = {
  drop_p : float;
  dup_p : float;
  spike_p : float;
  spike_delay : float;
}

let reliable = { drop_p = 0.0; dup_p = 0.0; spike_p = 0.0; spike_delay = 0.0 }

let faults ?(drop_p = 0.0) ?(dup_p = 0.0) ?(spike_p = 0.0) ?(spike_delay = 10.0)
    () =
  let prob name p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Des.faults: %s must be in [0,1]" name)
  in
  prob "drop_p" drop_p;
  prob "dup_p" dup_p;
  prob "spike_p" spike_p;
  if not (spike_delay >= 0.0) then
    invalid_arg "Des.faults: spike_delay must be non-negative";
  { drop_p; dup_p; spike_p; spike_delay }

(* Restarts ride the same queue as messages so that a crash window has a
   well-defined place on the simulated timeline. *)
type 'msg payload = Deliver of 'msg | Restart of int

type 'msg event = {
  time : float;
  seq : int;
  src : int;
  dst : int;
  weak : bool;
  payload : 'msg payload;
}

(* Ordered by (time, seq): seq breaks ties deterministically and preserves
   insertion order among simultaneous events. *)
let compare_events a b =
  match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

type outcome = Quiescent | Livelock of { dispatched : int; pending : int }

type 'msg step = { at : float; src : int; dst : int; msg : 'msg }

type 'msg t = {
  rng : Rng.t;
  min_delay : float;
  max_delay : float;
  heap : 'msg event Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable delivered : int;
  mutable queue_peak : int;
  (* Last scheduled delivery time per channel, to enforce FIFO order on top
     of random delays. *)
  channel_front : (int * int, float) Hashtbl.t;
  (* Fault model: a process-wide default profile, per-channel overrides,
     symmetric link partitions and crashed nodes. *)
  mutable default_faults : faults;
  channel_faults : (int * int, faults) Hashtbl.t;
  partitions : (int * int, unit) Hashtbl.t;
  down : (int, unit) Hashtbl.t;
  mutable restart_hook : time:float -> int -> unit;
  mutable dropped : int;
  mutable duplicated : int;
  (* Number of non-weak events in the heap; quiescence ignores weak
     (background/keepalive) events when the client's [idle_ok] allows. *)
  mutable strong_pending : int;
  (* Rolling FNV-style checksum over dispatched (time, src, dst) triples:
     two runs with the same seed and fault config must agree bit for bit. *)
  mutable digest : int;
  mutable trace_on : bool;
  mutable trace_rev : 'msg step list;
}

let create ?(min_delay = 0.1) ?(max_delay = 1.0) ?(faults = reliable) ~rng () =
  if min_delay < 0.0 || max_delay < min_delay then
    invalid_arg "Des.create: bad delay bounds";
  {
    rng;
    min_delay;
    max_delay;
    heap = Heap.create ~compare:compare_events ();
    clock = 0.0;
    next_seq = 0;
    delivered = 0;
    queue_peak = 0;
    channel_front = Hashtbl.create 64;
    default_faults = faults;
    channel_faults = Hashtbl.create 8;
    partitions = Hashtbl.create 8;
    down = Hashtbl.create 8;
    restart_hook = (fun ~time:_ _ -> ());
    dropped = 0;
    duplicated = 0;
    strong_pending = 0;
    digest = 0x1505;
    trace_on = false;
    trace_rev = [];
  }

let now t = t.clock

let set_faults t f = t.default_faults <- f

let set_channel_faults t ~src ~dst f =
  Hashtbl.replace t.channel_faults (src, dst) f

let norm_pair a b = if a <= b then (a, b) else (b, a)

let partition t a b = if a <> b then Hashtbl.replace t.partitions (norm_pair a b) ()
let heal t a b = Hashtbl.remove t.partitions (norm_pair a b)
let partitioned t a b = Hashtbl.mem t.partitions (norm_pair a b)

let crash t node = Hashtbl.replace t.down node ()
let is_down t node = Hashtbl.mem t.down node
let set_restart_hook t hook = t.restart_hook <- hook

let restart t node =
  if Hashtbl.mem t.down node then begin
    Hashtbl.remove t.down node;
    t.restart_hook ~time:t.clock node
  end

let note_depth t =
  let depth = Heap.size t.heap in
  if depth > t.queue_peak then t.queue_peak <- depth;
  Metrics.set_gauge m_queue_depth (float_of_int depth)

(* Raw enqueue: FIFO floor per channel, no fault pipeline. *)
let enqueue t ~weak ~time ~src ~dst payload =
  let key = (src, dst) in
  let floor_time =
    match Hashtbl.find_opt t.channel_front key with
    | None -> time
    | Some front -> Float.max time (front +. 1e-9)
  in
  Hashtbl.replace t.channel_front key floor_time;
  let e = { time = floor_time; seq = t.next_seq; src; dst; weak; payload } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.heap e;
  if not weak then t.strong_pending <- t.strong_pending + 1;
  note_depth t

let drop t =
  t.dropped <- t.dropped + 1;
  Metrics.incr m_dropped

let profile t ~src ~dst =
  match Hashtbl.find_opt t.channel_faults (src, dst) with
  | Some f -> f
  | None -> t.default_faults

(* The fault pipeline.  Self-channels (src = dst) model local timers and
   are exempt from every fault: a process's own clock does not lose
   ticks.  Crashed endpoints and partitioned links swallow the message;
   otherwise the channel profile may drop it, spike its delay, or deliver
   a duplicate copy (scheduled after the original, so FIFO still holds). *)
let schedule t ~weak ~time ~src ~dst msg =
  Metrics.incr m_messages_sent;
  if src = dst then begin
    if Hashtbl.mem t.down dst then drop t
    else enqueue t ~weak ~time ~src ~dst (Deliver msg)
  end
  else if
    Hashtbl.mem t.down src || Hashtbl.mem t.down dst || partitioned t src dst
  then drop t
  else begin
    let f = profile t ~src ~dst in
    if f.drop_p > 0.0 && Rng.float t.rng 1.0 < f.drop_p then drop t
    else begin
      let time =
        if f.spike_p > 0.0 && Rng.float t.rng 1.0 < f.spike_p then begin
          Metrics.incr m_spikes;
          time +. f.spike_delay
        end
        else time
      in
      enqueue t ~weak ~time ~src ~dst (Deliver msg);
      if f.dup_p > 0.0 && Rng.float t.rng 1.0 < f.dup_p then begin
        t.duplicated <- t.duplicated + 1;
        Metrics.incr m_duplicated;
        enqueue t ~weak ~time ~src ~dst (Deliver msg)
      end
    end
  end

let send_after ?(weak = false) t ~delay ~src ~dst payload =
  if delay < 0.0 then invalid_arg "Des.send_after: negative delay";
  let jitter = t.min_delay +. Rng.float t.rng (t.max_delay -. t.min_delay) in
  schedule t ~weak ~time:(t.clock +. delay +. jitter) ~src ~dst payload

let send ?weak t ~src ~dst payload = send_after ?weak t ~delay:0.0 ~src ~dst payload

let restart_after t ~delay node =
  if delay < 0.0 then invalid_arg "Des.restart_after: negative delay";
  enqueue t ~weak:false ~time:(t.clock +. delay) ~src:node ~dst:node
    (Restart node)

let mix h x =
  let h = (h lxor x) * 0x100000001b3 in
  h land max_int

let record t ~time ~src ~dst msg =
  t.digest <-
    mix (mix (mix t.digest (Int64.to_int (Int64.bits_of_float time) land max_int)) src) dst;
  if t.trace_on then t.trace_rev <- { at = time; src; dst; msg } :: t.trace_rev

let run_until_quiescent ?(budget = max_int) ?(idle_ok = fun () -> true) t
    ~handler =
  if budget <= 0 then invalid_arg "Des.run_until_quiescent: budget must be positive";
  let popped = ref 0 in
  let rec drain () =
    if t.strong_pending = 0 && (Heap.is_empty t.heap || idle_ok ()) then
      Quiescent
    else if !popped >= budget then begin
      Metrics.incr m_livelocks;
      Livelock { dispatched = !popped; pending = Heap.size t.heap }
    end
    else
      match Heap.pop t.heap with
      | None -> Quiescent
      | Some e ->
          incr popped;
          if not e.weak then t.strong_pending <- t.strong_pending - 1;
          note_depth t;
          t.clock <- Float.max t.clock e.time;
          (match e.payload with
          | Restart node -> restart t node
          | Deliver msg ->
              if Hashtbl.mem t.down e.dst then drop t
              else begin
                t.delivered <- t.delivered + 1;
                Metrics.incr m_events_dispatched;
                record t ~time:t.clock ~src:e.src ~dst:e.dst msg;
                handler ~time:t.clock ~src:e.src ~dst:e.dst msg
              end);
          drain ()
  in
  drain ()

let pending t = Heap.size t.heap

let messages_delivered t = t.delivered

let queue_peak t = t.queue_peak

let drops t = t.dropped

let dups t = t.duplicated

let digest t = t.digest

let set_trace t on =
  t.trace_on <- on;
  if not on then t.trace_rev <- []

let trace t = List.rev t.trace_rev

let replay steps ~handler =
  List.iter (fun s -> handler ~time:s.at ~src:s.src ~dst:s.dst s.msg) steps
