let m_messages_sent = Metrics.counter "des.messages_sent"
let m_events_dispatched = Metrics.counter "des.events_dispatched"
let m_queue_depth = Metrics.gauge "des.queue_depth"
let m_dropped = Metrics.counter "des.messages_dropped"
let m_duplicated = Metrics.counter "des.messages_duplicated"
let m_spikes = Metrics.counter "des.delay_spikes"
let m_livelocks = Metrics.counter "des.livelocks"
let m_cascades = Metrics.counter "des.wheel_cascades"
let m_prunes = Metrics.counter "des.channel_prunes"

(* --- channel fault model --- *)

type faults = {
  drop_p : float;
  dup_p : float;
  spike_p : float;
  spike_delay : float;
}

let reliable = { drop_p = 0.0; dup_p = 0.0; spike_p = 0.0; spike_delay = 0.0 }

let faults ?(drop_p = 0.0) ?(dup_p = 0.0) ?(spike_p = 0.0) ?(spike_delay = 10.0)
    () =
  let prob name p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Des.faults: %s must be in [0,1]" name)
  in
  prob "drop_p" drop_p;
  prob "dup_p" dup_p;
  prob "spike_p" spike_p;
  if not (spike_delay >= 0.0) then
    invalid_arg "Des.faults: spike_delay must be non-negative";
  { drop_p; dup_p; spike_p; spike_delay }

(* A fault profile counts as "no override" when it matches the default
   field for field.  Explicit comparison: the lint tree bans polymorphic
   equality on records with floats. *)
let faults_equal a b =
  Float.equal a.drop_p b.drop_p
  && Float.equal a.dup_p b.dup_p
  && Float.equal a.spike_p b.spike_p
  && Float.equal a.spike_delay b.spike_delay

(* Restarts ride the same queue as messages so that a crash window has a
   well-defined place on the simulated timeline. *)
type 'msg payload = Deliver of 'msg | Restart of int

type outcome = Quiescent | Livelock of { dispatched : int; pending : int }

type 'msg step = { at : float; src : int; dst : int; msg : 'msg }

(* --- hierarchical time wheel ---

   Pending events live in a struct-of-arrays arena (parallel flat arrays
   indexed by a recycled event id) instead of one boxed record per event:
   at 10^6-vehicle scale the queue holds hundreds of thousands of events
   and the arena keeps them in a handful of contiguous arrays the GC
   never walks element by element.

   Scheduling is a 4-level hashed timing wheel over time quanta
   [q = floor(time / tick)], 256 slots per level (8 bits), so an event
   lands [O(1)] at the lowest level whose span still covers its quantum;
   events beyond the 2^32-quantum horizon chain into an overflow list
   that is rebased lazily.  Dispatch pulls the events of the cursor's
   quantum into a small binary heap ordered by [(time, seq)] — the exact
   comparator of the old global heap — and advancing the cursor cascades
   one higher-level slot down a level (lazy re-bucketing, counted by
   ["des.wheel_cascades"]).

   Dispatch order is bit-identical to the old comparison heap: the
   quantization is monotone (q a < q b implies time a < time b, because
   time/tick lands in [q, q+1)), every event enqueued during a dispatch
   has time >= clock and therefore quantum >= the cursor, and equal-time
   events always share a quantum where the mini-heap applies the
   [(time, seq)] tie-break.  See docs/SCALE.md for the full argument. *)

let wheel_bits = 8
let wheel_slots = 256 (* 1 lsl wheel_bits *)
let wheel_mask = wheel_slots - 1
let wheel_levels = 4
let nil = -1

(* Event ids pack [weak | src | dst] into one word: bit 0 is the weak
   flag, bits 1..30 the destination, bits 31..60 the source.  Process
   ids must fit 30 bits — a billion processes, far above the 10^6-vehicle
   target. *)
let max_id = (1 lsl 30) - 1

let pack ~weak ~src ~dst =
  (src lsl 31) lor (dst lsl 1) lor (if weak then 1 else 0)

let pack_weak p = p land 1 = 1
let pack_dst p = (p lsr 1) land max_id
let pack_src p = p lsr 31

type 'msg t = {
  rng : Rng.t;
  min_delay : float;
  max_delay : float;
  tick : float; (* wheel quantum, in simulated time units *)
  (* arena *)
  mutable ev_time : float array;
  mutable ev_seq : int array;
  mutable ev_pack : int array;
  mutable ev_payload : 'msg payload array;
  mutable ev_next : int array; (* slot chain / free list *)
  mutable ev_room : int;
  mutable free_head : int;
  mutable filler : 'msg payload option; (* recycled-slot placeholder *)
  (* wheel *)
  slots : int array; (* wheel_levels * wheel_slots chain heads *)
  level_count : int array;
  mutable overflow_head : int;
  mutable overflow_count : int;
  mutable cur_q : int; (* quantum cursor *)
  (* current-quantum mini-heap, ordered by (time, seq) *)
  mutable hp : int array;
  mutable hp_n : int;
  mutable total_pending : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable delivered : int;
  mutable queue_peak : int;
  (* Last scheduled delivery time per channel, to enforce FIFO order on
     top of random delays.  Entries whose floor is already behind the
     clock are pruned periodically — see [maybe_prune]. *)
  channel_front : (int * int, float) Hashtbl.t;
  mutable prune_limit : int;
  (* Fault model: a process-wide default profile, per-channel overrides,
     symmetric link partitions and crashed nodes. *)
  mutable default_faults : faults;
  channel_faults : (int * int, faults) Hashtbl.t;
  partitions : (int * int, unit) Hashtbl.t;
  down : (int, unit) Hashtbl.t;
  mutable restart_hook : time:float -> int -> unit;
  mutable dropped : int;
  mutable duplicated : int;
  (* Number of non-weak pending events; quiescence ignores weak
     (background/keepalive) events when the client's [idle_ok] allows. *)
  mutable strong_pending : int;
  (* Rolling FNV-style checksum over dispatched (time, src, dst) triples:
     two runs with the same seed and fault config must agree bit for bit. *)
  mutable digest : int;
  mutable trace_on : bool;
  mutable trace_rev : 'msg step list;
}

let create ?(min_delay = 0.1) ?(max_delay = 1.0) ?(faults = reliable) ~rng () =
  if min_delay < 0.0 || max_delay < min_delay then
    invalid_arg "Des.create: bad delay bounds";
  {
    rng;
    min_delay;
    max_delay;
    (* Eight quanta per max delay keeps the common send horizon within a
       few level-0 slots; long timers land one level up. *)
    tick = Float.max (max_delay /. 8.0) 1e-6;
    ev_time = [||];
    ev_seq = [||];
    ev_pack = [||];
    ev_payload = [||];
    ev_next = [||];
    ev_room = 0;
    free_head = nil;
    filler = None;
    slots = Array.make (wheel_levels * wheel_slots) nil;
    level_count = Array.make wheel_levels 0;
    overflow_head = nil;
    overflow_count = 0;
    cur_q = 0;
    hp = Array.make 16 nil;
    hp_n = 0;
    total_pending = 0;
    clock = 0.0;
    next_seq = 0;
    delivered = 0;
    queue_peak = 0;
    channel_front = Hashtbl.create 64;
    prune_limit = 512;
    default_faults = faults;
    channel_faults = Hashtbl.create 8;
    partitions = Hashtbl.create 8;
    down = Hashtbl.create 8;
    restart_hook = (fun ~time:_ _ -> ());
    dropped = 0;
    duplicated = 0;
    strong_pending = 0;
    digest = 0x1505;
    trace_on = false;
    trace_rev = [];
  }

let now t = t.clock

let set_faults t f = t.default_faults <- f

(* Setting a channel's profile back to the (current) default removes the
   override, so healed channels stop occupying metadata — the other half
   of the bound [maybe_prune] maintains on [channel_front]. *)
let set_channel_faults t ~src ~dst f =
  if faults_equal f t.default_faults then
    Hashtbl.remove t.channel_faults (src, dst)
  else Hashtbl.replace t.channel_faults (src, dst) f

let norm_pair a b = if a <= b then (a, b) else (b, a)

let partition t a b = if a <> b then Hashtbl.replace t.partitions (norm_pair a b) ()
let heal t a b = Hashtbl.remove t.partitions (norm_pair a b)
let partitioned t a b = Hashtbl.mem t.partitions (norm_pair a b)

let crash t node = Hashtbl.replace t.down node ()
let is_down t node = Hashtbl.mem t.down node
let set_restart_hook t hook = t.restart_hook <- hook

let restart t node =
  if Hashtbl.mem t.down node then begin
    Hashtbl.remove t.down node;
    t.restart_hook ~time:t.clock node
  end

(* The ["des.queue_depth"] gauge reports the strong-pending count — the
   events that keep [run_until_quiescent] running — and is written from
   both the schedule and the dispatch path, so it reads 0 after a drain
   even while weak keepalives stay queued.  [queue_peak] tracks the
   total queue (weak included): the memory high-water mark. *)
let note_depth t =
  if t.total_pending > t.queue_peak then t.queue_peak <- t.total_pending;
  Metrics.set_gauge m_queue_depth (float_of_int t.strong_pending)

(* --- arena --- *)

let grow_arena t (payload : 'msg payload) =
  let room = if t.ev_room = 0 then 256 else 2 * t.ev_room in
  let fill =
    match t.filler with
    | Some f -> f
    | None ->
        t.filler <- Some payload;
        payload
  in
  let copy mk old =
    let a = mk room in
    Array.blit old 0 a 0 t.ev_room;
    a
  in
  t.ev_time <- copy (fun n -> Array.make n 0.0) t.ev_time;
  t.ev_seq <- copy (fun n -> Array.make n 0) t.ev_seq;
  t.ev_pack <- copy (fun n -> Array.make n 0) t.ev_pack;
  t.ev_payload <- copy (fun n -> Array.make n fill) t.ev_payload;
  t.ev_next <- copy (fun n -> Array.make n nil) t.ev_next;
  for i = t.ev_room to room - 1 do
    t.ev_next.(i) <- (if i = room - 1 then t.free_head else i + 1)
  done;
  t.free_head <- t.ev_room;
  t.ev_room <- room

let alloc_event t ~time ~seq ~pack ~payload =
  if t.free_head = nil then grow_arena t payload;
  let idx = t.free_head in
  t.free_head <- t.ev_next.(idx);
  t.ev_time.(idx) <- time;
  t.ev_seq.(idx) <- seq;
  t.ev_pack.(idx) <- pack;
  t.ev_payload.(idx) <- payload;
  t.ev_next.(idx) <- nil;
  idx

let free_event t idx =
  (match t.filler with
  | Some f -> t.ev_payload.(idx) <- f
  | None -> ());
  t.ev_next.(idx) <- t.free_head;
  t.free_head <- idx

(* --- current-quantum mini-heap, keyed (time, seq) --- *)

let ev_before t a b =
  let ta = t.ev_time.(a) and tb = t.ev_time.(b) in
  if ta < tb then true
  else if ta > tb then false
  else t.ev_seq.(a) < t.ev_seq.(b)

let heap_push t idx =
  if t.hp_n = Array.length t.hp then begin
    let bigger = Array.make (2 * t.hp_n) nil in
    Array.blit t.hp 0 bigger 0 t.hp_n;
    t.hp <- bigger
  end;
  let i = ref t.hp_n in
  t.hp_n <- t.hp_n + 1;
  t.hp.(!i) <- idx;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if ev_before t t.hp.(!i) t.hp.(p) then begin
      let tmp = t.hp.(p) in
      t.hp.(p) <- t.hp.(!i);
      t.hp.(!i) <- tmp;
      i := p
    end
    else continue := false
  done

let heap_pop t =
  let top = t.hp.(0) in
  t.hp_n <- t.hp_n - 1;
  if t.hp_n > 0 then begin
    t.hp.(0) <- t.hp.(t.hp_n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.hp_n && ev_before t t.hp.(l) t.hp.(!s) then s := l;
      if r < t.hp_n && ev_before t t.hp.(r) t.hp.(!s) then s := r;
      if !s <> !i then begin
        let tmp = t.hp.(!s) in
        t.hp.(!s) <- t.hp.(!i);
        t.hp.(!i) <- tmp;
        i := !s
      end
      else continue := false
    done
  end;
  top

(* --- wheel placement and cascade --- *)

let quantum t time = int_of_float (time /. t.tick)

(* Lowest level whose span still covers [q] relative to the cursor; the
   event either joins the current quantum's heap, a wheel slot, or the
   overflow chain past the 2^32-quantum horizon. *)
let place t idx q =
  if q <= t.cur_q then heap_push t idx
  else begin
    let d = q lxor t.cur_q in
    if d lsr wheel_bits = 0 then begin
      let s = q land wheel_mask in
      t.ev_next.(idx) <- t.slots.(s);
      t.slots.(s) <- idx;
      t.level_count.(0) <- t.level_count.(0) + 1
    end
    else if d lsr (2 * wheel_bits) = 0 then begin
      let s = wheel_slots + ((q lsr wheel_bits) land wheel_mask) in
      t.ev_next.(idx) <- t.slots.(s);
      t.slots.(s) <- idx;
      t.level_count.(1) <- t.level_count.(1) + 1
    end
    else if d lsr (3 * wheel_bits) = 0 then begin
      let s = (2 * wheel_slots) + ((q lsr (2 * wheel_bits)) land wheel_mask) in
      t.ev_next.(idx) <- t.slots.(s);
      t.slots.(s) <- idx;
      t.level_count.(2) <- t.level_count.(2) + 1
    end
    else if d lsr (4 * wheel_bits) = 0 then begin
      let s = (3 * wheel_slots) + ((q lsr (3 * wheel_bits)) land wheel_mask) in
      t.ev_next.(idx) <- t.slots.(s);
      t.slots.(s) <- idx;
      t.level_count.(3) <- t.level_count.(3) + 1
    end
    else begin
      t.ev_next.(idx) <- t.overflow_head;
      t.overflow_head <- idx;
      t.overflow_count <- t.overflow_count + 1
    end
  end

(* Redistribute one slot chain against the (just advanced) cursor. *)
let redistribute t head =
  let cur = ref head in
  while !cur <> nil do
    let next = t.ev_next.(!cur) in
    place t !cur (quantum t t.ev_time.(!cur));
    cur := next
  done

(* All four levels are empty: jump the cursor to the earliest overflow
   quantum and re-place the whole chain.  Amortized O(1): each event
   overflows at most once per 2^32-quantum horizon. *)
let rebase_overflow t =
  let qmin = ref max_int in
  let cur = ref t.overflow_head in
  while !cur <> nil do
    let q = quantum t t.ev_time.(!cur) in
    if q < !qmin then qmin := q;
    cur := t.ev_next.(!cur)
  done;
  let head = t.overflow_head in
  t.overflow_head <- nil;
  t.overflow_count <- 0;
  t.cur_q <- !qmin;
  Metrics.incr m_cascades;
  redistribute t head

(* Advance the cursor to the next non-empty quantum and pull its events
   into the mini-heap.  Levels are scanned bottom-up; finding work at
   level l >= 1 re-buckets that one slot into the levels below (the lazy
   cascade). *)
let rec refill t =
  if t.hp_n > 0 then ()
  else if
    t.level_count.(0) = 0
    && t.level_count.(1) = 0
    && t.level_count.(2) = 0
    && t.level_count.(3) = 0
  then begin
    if t.overflow_count > 0 then begin
      rebase_overflow t;
      refill t
    end
  end
  else begin
    let advanced = ref false in
    let level = ref 0 in
    while (not !advanced) && !level < wheel_levels do
      let l = !level in
      if t.level_count.(l) > 0 then begin
        let shift = l * wheel_bits in
        let s = ref (((t.cur_q lsr shift) land wheel_mask) + 1) in
        while (not !advanced) && !s < wheel_slots do
          let slot = (l * wheel_slots) + !s in
          if t.slots.(slot) <> nil then begin
            let head = t.slots.(slot) in
            t.slots.(slot) <- nil;
            let k = ref 0 in
            let cur = ref head in
            while !cur <> nil do
              incr k;
              cur := t.ev_next.(!cur)
            done;
            t.level_count.(l) <- t.level_count.(l) - !k;
            (* Align the cursor: keep the bits above this level, replace
               this level's index, zero everything below. *)
            let high = t.cur_q lsr (shift + wheel_bits) in
            t.cur_q <- ((high lsl wheel_bits) lor !s) lsl shift;
            if l > 0 then Metrics.incr m_cascades;
            redistribute t head;
            advanced := true
          end
          else incr s
        done;
        if not !advanced then incr level
      end
      else incr level
    done;
    if !advanced then begin
      (* A cascaded slot may land entirely in lower wheel levels rather
         than the current quantum; keep advancing until the heap has the
         next event. *)
      if t.hp_n = 0 then refill t
    end
    else if t.overflow_count > 0 then begin
      rebase_overflow t;
      refill t
    end
    else failwith "Des: wheel invariant violated (counted events not found)"
  end

(* --- channel metadata pruning --- *)

(* A [channel_front] entry whose floor is at or behind the clock can
   never bump a future enqueue (every new delivery time is >= clock), so
   dropping it is invisible to the schedule.  Swept when the table
   doubles past the last high-water mark: amortized O(1) per enqueue,
   deterministic (no randomness involved), and it bounds the metadata of
   workloads that touch many distinct channels once. *)
let maybe_prune t =
  if Hashtbl.length t.channel_front > t.prune_limit then begin
    let stale = ref [] in
    Hashtbl.iter
      (fun key front ->
        if front +. 1e-9 <= t.clock then stale := key :: !stale)
      t.channel_front;
    List.iter (Hashtbl.remove t.channel_front) !stale;
    Metrics.add m_prunes (List.length !stale);
    t.prune_limit <- max 512 (2 * Hashtbl.length t.channel_front)
  end

(* Raw enqueue: FIFO floor per channel, no fault pipeline. *)
let enqueue t ~weak ~time ~src ~dst payload =
  if src < 0 || src > max_id || dst < 0 || dst > max_id then
    invalid_arg "Des: process ids must fit 30 bits";
  maybe_prune t;
  let key = (src, dst) in
  let floor_time =
    match Hashtbl.find_opt t.channel_front key with
    | None -> time
    | Some front -> Float.max time (front +. 1e-9)
  in
  Hashtbl.replace t.channel_front key floor_time;
  let idx =
    alloc_event t ~time:floor_time ~seq:t.next_seq ~pack:(pack ~weak ~src ~dst)
      ~payload
  in
  t.next_seq <- t.next_seq + 1;
  place t idx (quantum t floor_time);
  t.total_pending <- t.total_pending + 1;
  if not weak then t.strong_pending <- t.strong_pending + 1;
  note_depth t

let drop t =
  t.dropped <- t.dropped + 1;
  Metrics.incr m_dropped

let profile t ~src ~dst =
  match Hashtbl.find_opt t.channel_faults (src, dst) with
  | Some f -> f
  | None -> t.default_faults

(* The fault pipeline.  Self-channels (src = dst) model local timers and
   are exempt from every fault: a process's own clock does not lose
   ticks.  Crashed endpoints and partitioned links swallow the message;
   otherwise the channel profile may drop it, spike its delay, or deliver
   a duplicate copy (scheduled after the original, so FIFO still holds). *)
let schedule t ~weak ~time ~src ~dst msg =
  Metrics.incr m_messages_sent;
  if src = dst then begin
    if Hashtbl.mem t.down dst then drop t
    else enqueue t ~weak ~time ~src ~dst (Deliver msg)
  end
  else if
    Hashtbl.mem t.down src || Hashtbl.mem t.down dst || partitioned t src dst
  then drop t
  else begin
    let f = profile t ~src ~dst in
    if f.drop_p > 0.0 && Rng.float t.rng 1.0 < f.drop_p then drop t
    else begin
      let time =
        if f.spike_p > 0.0 && Rng.float t.rng 1.0 < f.spike_p then begin
          Metrics.incr m_spikes;
          time +. f.spike_delay
        end
        else time
      in
      enqueue t ~weak ~time ~src ~dst (Deliver msg);
      if f.dup_p > 0.0 && Rng.float t.rng 1.0 < f.dup_p then begin
        t.duplicated <- t.duplicated + 1;
        Metrics.incr m_duplicated;
        enqueue t ~weak ~time ~src ~dst (Deliver msg)
      end
    end
  end

let send_after ?(weak = false) t ~delay ~src ~dst payload =
  if delay < 0.0 then invalid_arg "Des.send_after: negative delay";
  let jitter = t.min_delay +. Rng.float t.rng (t.max_delay -. t.min_delay) in
  schedule t ~weak ~time:(t.clock +. delay +. jitter) ~src ~dst payload

let send ?weak t ~src ~dst payload = send_after ?weak t ~delay:0.0 ~src ~dst payload

let restart_after t ~delay node =
  if delay < 0.0 then invalid_arg "Des.restart_after: negative delay";
  enqueue t ~weak:false ~time:(t.clock +. delay) ~src:node ~dst:node
    (Restart node)

(* Conservative-shard ingress (see Shard): a message handed over at a
   barrier epoch, already past the sender's fault pipeline, lands at an
   absolute timestamp.  The FIFO floor still applies, and the timestamp
   is clamped to the local clock so time never runs backwards. *)
let inject t ~time ~src ~dst msg =
  enqueue t ~weak:false ~time:(Float.max time t.clock) ~src ~dst (Deliver msg)

let mix h x =
  let h = (h lxor x) * 0x100000001b3 in
  h land max_int

let record t ~time ~src ~dst msg =
  t.digest <-
    mix (mix (mix t.digest (Int64.to_int (Int64.bits_of_float time) land max_int)) src) dst;
  if t.trace_on then t.trace_rev <- { at = time; src; dst; msg } :: t.trace_rev

let next_time t =
  if t.hp_n = 0 then refill t;
  if t.hp_n = 0 then None else Some t.ev_time.(t.hp.(0))

(* Pop the globally earliest (time, seq) event, or [nil]. *)
let pop_event t =
  if t.hp_n = 0 then refill t;
  if t.hp_n = 0 then nil
  else begin
    let idx = heap_pop t in
    t.total_pending <- t.total_pending - 1;
    if not (pack_weak t.ev_pack.(idx)) then
      t.strong_pending <- t.strong_pending - 1;
    note_depth t;
    idx
  end

(* Deliver one popped event through the crash filter and the handler;
   frees the arena slot. *)
let dispatch_event t ~handler idx =
  t.clock <- Float.max t.clock t.ev_time.(idx);
  let p = t.ev_pack.(idx) in
  let src = pack_src p and dst = pack_dst p in
  let payload = t.ev_payload.(idx) in
  free_event t idx;
  match payload with
  | Restart node -> restart t node
  | Deliver msg ->
      if Hashtbl.mem t.down dst then drop t
      else begin
        t.delivered <- t.delivered + 1;
        Metrics.incr m_events_dispatched;
        record t ~time:t.clock ~src ~dst msg;
        handler ~time:t.clock ~src ~dst msg
      end

let run_until_quiescent ?(budget = max_int) ?(idle_ok = fun () -> true) t
    ~handler =
  if budget <= 0 then invalid_arg "Des.run_until_quiescent: budget must be positive";
  let popped = ref 0 in
  let rec drain () =
    if t.strong_pending = 0 && (t.total_pending = 0 || idle_ok ()) then
      Quiescent
    else if !popped >= budget then begin
      Metrics.incr m_livelocks;
      Livelock { dispatched = !popped; pending = t.total_pending }
    end
    else begin
      let idx = pop_event t in
      if idx = nil then Quiescent
      else begin
        incr popped;
        dispatch_event t ~handler idx;
        drain ()
      end
    end
  in
  drain ()

(* Time-bounded drain for the conservative shard engine: deliver every
   event strictly before [until], weak or strong, and stop without
   touching anything at or past the horizon. *)
let advance_until t ~until ~handler =
  let dispatched = ref 0 in
  let continue = ref true in
  while !continue do
    match next_time t with
    | Some time when time < until ->
        let idx = pop_event t in
        if idx = nil then continue := false
        else begin
          incr dispatched;
          dispatch_event t ~handler idx
        end
    | _ -> continue := false
  done;
  !dispatched

let pending t = t.total_pending

let strong_pending t = t.strong_pending

let messages_delivered t = t.delivered

let queue_peak t = t.queue_peak

let drops t = t.dropped

let dups t = t.duplicated

let digest t = t.digest

let channel_meta_size t =
  Hashtbl.length t.channel_front + Hashtbl.length t.channel_faults

(* Heap words reachable from the simulator, with the client-supplied
   restart hook detached for the measurement so a closure capturing the
   whole protocol world is not billed to the queue.  Feeds the
   ["des.bytes_per_vehicle"] gauge at fleet scale. *)
let footprint_bytes t =
  let hook = t.restart_hook in
  t.restart_hook <- (fun ~time:_ _ -> ());
  let words = Obj.reachable_words (Obj.repr t) in
  t.restart_hook <- hook;
  words * (Sys.word_size / 8)

let set_trace t on =
  t.trace_on <- on;
  if not on then t.trace_rev <- []

let trace t = List.rev t.trace_rev

let replay steps ~handler =
  List.iter (fun s -> handler ~time:s.at ~src:s.src ~dst:s.dst s.msg) steps
