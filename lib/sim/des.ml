type 'msg event = { time : float; seq : int; src : int; dst : int; payload : 'msg }

let m_messages_sent = Metrics.counter "des.messages_sent"
let m_events_dispatched = Metrics.counter "des.events_dispatched"
let m_queue_depth = Metrics.gauge "des.queue_depth"

(* Ordered by (time, seq): seq breaks ties deterministically and preserves
   insertion order among simultaneous events. *)
let compare_events a b =
  match Float.compare a.time b.time with 0 -> Int.compare a.seq b.seq | c -> c

type 'msg t = {
  rng : Rng.t;
  min_delay : float;
  max_delay : float;
  heap : 'msg event Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable delivered : int;
  mutable queue_peak : int;
  (* Last scheduled delivery time per channel, to enforce FIFO order on top
     of random delays. *)
  channel_front : (int * int, float) Hashtbl.t;
}

let create ?(min_delay = 0.1) ?(max_delay = 1.0) ~rng () =
  if min_delay < 0.0 || max_delay < min_delay then
    invalid_arg "Des.create: bad delay bounds";
  {
    rng;
    min_delay;
    max_delay;
    heap = Heap.create ~compare:compare_events ();
    clock = 0.0;
    next_seq = 0;
    delivered = 0;
    queue_peak = 0;
    channel_front = Hashtbl.create 64;
  }

let now t = t.clock

let schedule t ~time ~src ~dst payload =
  (* FIFO per channel: never deliver before an earlier message on the same
     channel. *)
  let key = (src, dst) in
  let floor_time =
    match Hashtbl.find_opt t.channel_front key with
    | None -> time
    | Some front -> Float.max time (front +. 1e-9)
  in
  Hashtbl.replace t.channel_front key floor_time;
  let e = { time = floor_time; seq = t.next_seq; src; dst; payload } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.heap e;
  Metrics.incr m_messages_sent;
  let depth = Heap.size t.heap in
  if depth > t.queue_peak then t.queue_peak <- depth;
  Metrics.set_gauge m_queue_depth (float_of_int depth)

let send_after t ~delay ~src ~dst payload =
  if delay < 0.0 then invalid_arg "Des.send_after: negative delay";
  let jitter = t.min_delay +. Rng.float t.rng (t.max_delay -. t.min_delay) in
  schedule t ~time:(t.clock +. delay +. jitter) ~src ~dst payload

let send t ~src ~dst payload = send_after t ~delay:0.0 ~src ~dst payload

let run_until_quiescent t ~handler =
  let rec drain () =
    match Heap.pop t.heap with
    | None -> ()
    | Some e ->
        t.clock <- Float.max t.clock e.time;
        t.delivered <- t.delivered + 1;
        Metrics.incr m_events_dispatched;
        handler ~time:t.clock ~src:e.src ~dst:e.dst e.payload;
        drain ()
  in
  drain ()

let pending t = Heap.size t.heap

let messages_delivered t = t.delivered

let queue_peak t = t.queue_peak
