(** Conservative parallel discrete-event simulation over shards.

    The paper's replacement traffic is local to [⌈ωc⌉]-cubes, so a
    window-sized simulation splits into near-independent regions.  This
    module runs one {!Des} instance per shard on a {!Pool} worker and
    synchronises them with classic conservative (Chandy–Misra–Bryant
    style) barrier epochs:

    - [lookahead] is the minimum cross-shard channel delay.  Any message
      a shard emits at local time [t] is delivered no earlier than
      [t + lookahead].
    - Each epoch the engine computes [t_min], the earliest pending event
      across all shards, and lets every shard run independently up to
      the horizon [t_min + lookahead] ({!Des.advance_until}).  No
      cross-shard message generated inside the epoch can land before the
      horizon, so no shard can observe an event out of order.
    - At the barrier, outboxes are drained, sorted by
      [(deliver_time, origin shard, origin sequence)] — a total order
      independent of worker scheduling — and handed to the destination
      shards via {!Des.inject}.

    Determinism: for a fixed shard count, per-shard trace digests are
    bit-identical across reruns and across any [Pool] worker count,
    because each shard's event stream depends only on its own seeded
    [Des] and on the sorted barrier injections.  See docs/SCALE.md. *)

type 'msg t

val create :
  shards:int ->
  lookahead:float ->
  route:(int -> int) ->
  make:(int -> 'msg Des.t) ->
  'msg t
(** [create ~shards ~lookahead ~route ~make] builds [shards] simulators
    with [make] (called with the shard index — derive per-shard RNG
    seeds there) and routes process ids to owning shards with [route].
    [lookahead] must be positive: it is both the epoch width and the
    exact cross-shard delivery delay.  Raises [Invalid_argument] on a
    non-positive shard count or lookahead. *)

val set_handler :
  'msg t ->
  (shard:int -> time:float -> src:int -> dst:int -> 'msg -> unit) ->
  unit
(** Installs the event handler, called for every delivered event with
    the shard it runs on.  The handler must confine itself to
    shard-local state and send messages only through {!send} — it runs
    on [Pool] workers. *)

val send : 'msg t -> shard:int -> src:int -> dst:int -> 'msg -> unit
(** Sends from within shard [shard] (typically from the handler).  If
    [route dst] is the same shard this is a plain local {!Des.send}
    through that shard's fault pipeline; otherwise the message is staged
    in the shard's outbox for delivery at [now + lookahead] at the next
    barrier. *)

val des : 'msg t -> int -> 'msg Des.t
(** Direct access to one shard's simulator — for seeding initial events
    before {!run} and for per-shard inspection afterwards. *)

val run : ?until:float -> 'msg t -> int
(** Runs barrier epochs until every shard is strongly quiescent and all
    outboxes are empty (weak keepalives may stay queued, as in
    {!Des.run_until_quiescent}), or until the next epoch would start at
    or past [until].  Returns the number of epochs executed by this
    call.  Shards run on [Pool] workers; call [Pool.set_workers] first
    to choose the parallelism. *)

val shard_count : _ t -> int

val epochs : _ t -> int
(** Barrier epochs executed since creation (also the
    ["shard.epochs"] counter). *)

val cross_messages : _ t -> int
(** Messages exchanged across shards since creation (also the
    ["shard.cross_messages"] counter). *)

val digests : _ t -> int array
(** Per-shard {!Des.digest} values, in shard order — the determinism
    witness: bit-identical across reruns and worker counts for a fixed
    shard schedule. *)
