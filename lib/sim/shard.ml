(* Conservative parallel DES: one Des per shard, barrier epochs with
   lookahead.  See shard.mli and docs/SCALE.md for the synchronisation
   argument. *)

let m_epochs = Metrics.counter "shard.epochs"
let m_cross = Metrics.counter "shard.cross_messages"

(* Outgoing cross-shard message: delivery time, origin sequence number
   (per origin shard), endpoints, payload.  The origin sequence makes
   the barrier sort a total order even for equal timestamps. *)
type 'msg hop = {
  hop_time : float;
  hop_seq : int;
  hop_src : int;
  hop_dst : int;
  hop_msg : 'msg;
}

type 'msg t = {
  shards : 'msg Des.t array;
  route : int -> int;
  lookahead : float;
  (* Per-origin-shard outboxes and sequence counters.  During an epoch,
     worker [s] writes only slot [s]; the barrier (single domain) drains
     them all after the Pool.map join. *)
  outbox : 'msg hop list array; (* race: allow disjoint per-index writes, read after join *)
  out_seq : int array; (* race: allow disjoint per-index writes, read after join *)
  mutable handler :
    shard:int -> time:float -> src:int -> dst:int -> 'msg -> unit;
  mutable epochs : int;
  mutable cross : int;
}

let create ~shards ~lookahead ~route ~make =
  if shards < 1 then invalid_arg "Shard.create: need at least one shard";
  if not (lookahead > 0.0) then
    invalid_arg "Shard.create: lookahead must be positive";
  {
    shards = Array.init shards make;
    route;
    lookahead;
    outbox = Array.make shards [];
    out_seq = Array.make shards 0;
    handler = (fun ~shard:_ ~time:_ ~src:_ ~dst:_ _ -> ());
    epochs = 0;
    cross = 0;
  }

let set_handler t f = t.handler <- f
let des t s = t.shards.(s)
let shard_count t = Array.length t.shards
let epochs t = t.epochs
let cross_messages t = t.cross
let digests t = Array.map Des.digest t.shards

let send t ~shard ~src ~dst msg =
  let owner = t.route dst in
  if owner = shard then Des.send t.shards.(shard) ~src ~dst msg
  else begin
    let seq = t.out_seq.(shard) in
    t.out_seq.(shard) <- seq + 1;
    let hop =
      {
        hop_time = Des.now t.shards.(shard) +. t.lookahead;
        hop_seq = seq;
        hop_src = src;
        hop_dst = dst;
        hop_msg = msg;
      }
    in
    t.outbox.(shard) <- hop :: t.outbox.(shard)
  end

(* Barrier half: drain every outbox, sort into the worker-independent
   total order, inject into the owning shards.  Runs in the calling
   domain only. *)
let exchange t =
  let moved = ref 0 in
  let all = ref [] in
  Array.iteri
    (fun origin hops ->
      if hops <> [] then begin
        t.outbox.(origin) <- [];
        List.iter (fun h -> all := (h.hop_time, origin, h) :: !all) hops
      end)
    t.outbox;
  let sorted =
    List.sort
      (fun (ta, oa, ha) (tb, ob, hb) ->
        let c = Float.compare ta tb in
        if c <> 0 then c
        else
          let c = Int.compare oa ob in
          if c <> 0 then c else Int.compare ha.hop_seq hb.hop_seq)
      !all
  in
  List.iter
    (fun (_, _, h) ->
      incr moved;
      Des.inject
        t.shards.(t.route h.hop_dst)
        ~time:h.hop_time ~src:h.hop_src ~dst:h.hop_dst h.hop_msg)
    sorted;
  t.cross <- t.cross + !moved;
  if !moved > 0 then Metrics.add m_cross !moved;
  !moved

let quiescent t =
  Array.for_all (fun d -> Des.strong_pending d = 0) t.shards

let run ?until t =
  let ran = ref 0 in
  let continue = ref true in
  while !continue do
    ignore (exchange t);
    if quiescent t then continue := false
    else begin
      let t_min =
        Array.fold_left
          (fun acc d ->
            match Des.next_time d with
            | Some x -> Float.min acc x
            | None -> acc)
          infinity t.shards
      in
      let stop_at = match until with Some u -> u | None -> infinity in
      if t_min >= stop_at then continue := false
      else begin
        let horizon = Float.min (t_min +. t.lookahead) stop_at in
        let handler = t.handler in
        ignore
          (Pool.init (Array.length t.shards) (fun s ->
               Des.advance_until t.shards.(s) ~until:horizon
                 ~handler:(fun ~time ~src ~dst msg ->
                   handler ~shard:s ~time ~src ~dst msg)));
        t.epochs <- t.epochs + 1;
        incr ran;
        Metrics.incr m_epochs
      end
    end
  done;
  !ran
