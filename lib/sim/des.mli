(** Discrete-event message-passing simulator.

    Implements exactly the communication model assumed in §3.2 of the
    paper: point-to-point messages between integer-identified processes,
    delivered after a finite, arbitrary (here: seeded pseudo-random) delay,
    in FIFO order per ordered channel ("synchronous communication" in the
    paper's terminology), with unbounded input buffers and no losses or
    corruption.  Communication costs no energy.

    The simulator is generic in the message type.  Clients [send] from
    within the handler; [run_until_quiescent] drains the event queue, which
    models the paper's assumption that consecutive job arrivals are spaced
    widely enough for all computation and movement to finish. *)

type 'msg t

val create : ?min_delay:float -> ?max_delay:float -> rng:Rng.t -> unit -> 'msg t
(** Fresh simulator.  Message delays are uniform in
    [\[min_delay, max_delay\]] (defaults 0.1 and 1.0); FIFO order per
    channel is enforced on top of the random draw. *)

val now : _ t -> float
(** Current simulation time. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueues a message for delivery after a random delay. *)

val send_after : 'msg t -> delay:float -> src:int -> dst:int -> 'msg -> unit
(** Enqueues with an explicit extra delay — used for timeout-style
    self-messages (heartbeat failure detection). *)

val run_until_quiescent :
  'msg t -> handler:(time:float -> src:int -> dst:int -> 'msg -> unit) -> unit
(** Delivers events in timestamp order until none remain.  The handler may
    call [send]/[send_after] to extend the computation. *)

val pending : _ t -> int
(** Number of undelivered messages. *)

val messages_delivered : _ t -> int
(** Total messages delivered since creation — the protocol-cost metric of
    experiment E8. *)

val queue_peak : _ t -> int
(** High-water mark of the event queue since creation (also exported
    process-wide as the ["des.queue_depth"] gauge peak). *)
