(** Discrete-event message-passing simulator with fault injection.

    The reliable base model is exactly the communication model assumed in
    §3.2 of the paper: point-to-point messages between integer-identified
    processes, delivered after a finite, arbitrary (here: seeded
    pseudo-random) delay, in FIFO order per ordered channel ("synchronous
    communication" in the paper's terminology), with unbounded input
    buffers.  Communication costs no energy.

    On top of that, a per-channel fault model can drop messages, deliver
    duplicates, spike delays, partition links between process pairs, and
    crash/restart whole processes — the chaos layer the hardened online
    protocol (docs/ROBUSTNESS.md) is tested against.  Self-channels
    ([src = dst]) model local timers and are exempt from channel faults,
    though a crashed process loses its pending timers.

    The simulator is generic in the message type.  Clients [send] from
    within the handler; [run_until_quiescent] drains the event queue,
    which models the paper's assumption that consecutive job arrivals are
    spaced widely enough for all computation and movement to finish.  The
    drain is budget-bounded so a retry loop that cannot make progress
    surfaces as a [Livelock] report instead of an infinite spin, and
    events sent with [~weak:true] (periodic keepalives) do not prevent
    quiescence once the client's [idle_ok] predicate holds.

    Internally the queue is a 4-level hierarchical time wheel over a
    struct-of-arrays event arena (docs/SCALE.md): schedule and dispatch
    are O(1) amortized instead of O(log n), and the dispatch order is
    bit-identical to the former comparison heap's [(time, seq)] order, so
    trace digests replay across the change.  Process ids must fit 30
    bits. *)

type 'msg t

(** {1 Fault model} *)

type faults = {
  drop_p : float;  (** probability a message is silently lost *)
  dup_p : float;  (** probability a second copy is delivered *)
  spike_p : float;  (** probability the delay spikes by [spike_delay] *)
  spike_delay : float;  (** extra delay added on a spike *)
}

val reliable : faults
(** The no-fault profile: all probabilities zero. *)

val faults :
  ?drop_p:float ->
  ?dup_p:float ->
  ?spike_p:float ->
  ?spike_delay:float ->
  unit ->
  faults
(** Validated constructor (probabilities in [\[0,1\]], non-negative spike
    delay; raises [Invalid_argument] otherwise).  [spike_delay] defaults
    to 10.0, everything else to 0. *)

val create :
  ?min_delay:float ->
  ?max_delay:float ->
  ?faults:faults ->
  rng:Rng.t ->
  unit ->
  'msg t
(** Fresh simulator.  Message delays are uniform in
    [\[min_delay, max_delay\]] (defaults 0.1 and 1.0); FIFO order per
    channel is enforced on top of the random draw.  [faults] is the
    default profile for every channel (default: [reliable]). *)

val set_faults : _ t -> faults -> unit
(** Replaces the default fault profile for channels without an override. *)

val set_channel_faults : _ t -> src:int -> dst:int -> faults -> unit
(** Overrides the fault profile of one directed channel.  Setting a
    profile equal (field for field) to the current default removes the
    override instead, so healed channels release their metadata entry —
    see [channel_meta_size]. *)

val partition : _ t -> int -> int -> unit
(** Cuts the (symmetric) link between two processes: messages either way
    are dropped until [heal].  Partitioning a node from itself is a
    no-op — self-channels are timers, not links. *)

val heal : _ t -> int -> int -> unit
(** Removes a partition installed by [partition]. *)

val crash : _ t -> int -> unit
(** Marks a process down.  While down, messages from or to it (including
    its own pending timers) are dropped and counted in [drops]. *)

val restart : _ t -> int -> unit
(** Brings a crashed process back immediately and invokes the restart
    hook.  No-op if the process is up. *)

val restart_after : _ t -> delay:float -> int -> unit
(** Schedules a [restart] on the simulated timeline, [delay] from now. *)

val is_down : _ t -> int -> bool

val set_restart_hook : _ t -> (time:float -> int -> unit) -> unit
(** Called from [restart] (immediate or scheduled) with the simulation
    time at which the process came back, so the protocol layer can
    re-initialise its state and re-arm timers. *)

(** {1 Sending and draining} *)

val now : _ t -> float
(** Current simulation time. *)

val send : ?weak:bool -> 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueues a message for delivery after a random delay, through the
    channel's fault pipeline.  [~weak:true] marks a background event
    (periodic keepalive / watchdog): weak events still deliver in time
    order but do not by themselves keep [run_until_quiescent] running. *)

val send_after :
  ?weak:bool -> 'msg t -> delay:float -> src:int -> dst:int -> 'msg -> unit
(** Enqueues with an explicit extra delay — used for timer-style
    self-messages (heartbeat deadlines, retry backoff). *)

val inject : 'msg t -> time:float -> src:int -> dst:int -> 'msg -> unit
(** Enqueues a message at an absolute timestamp, bypassing the fault
    pipeline and delay jitter (clamped to [now] so time never runs
    backwards; the per-channel FIFO floor still applies).  This is the
    ingress the conservative shard engine ({!Shard}) uses to hand over
    cross-shard messages at barrier epochs — the sending shard has
    already run the message through its own fault pipeline. *)

type outcome =
  | Quiescent  (** drained: no strong events remain *)
  | Livelock of { dispatched : int; pending : int }
      (** the dispatch budget was exhausted with events still queued —
          the protocol is spinning without making progress *)

val run_until_quiescent :
  ?budget:int ->
  ?idle_ok:(unit -> bool) ->
  'msg t ->
  handler:(time:float -> src:int -> dst:int -> 'msg -> unit) ->
  outcome
(** Delivers events in timestamp order.  The handler may call
    [send]/[send_after] to extend the computation.  Stops with
    [Quiescent] when no strong events remain and [idle_ok ()] holds
    (default: always), leaving any weak events queued for a later drain;
    stops with [Livelock] after popping [budget] events (default:
    unbounded).  Raises [Invalid_argument] on a non-positive budget. *)

val advance_until :
  'msg t ->
  until:float ->
  handler:(time:float -> src:int -> dst:int -> 'msg -> unit) ->
  int
(** Delivers every event (weak or strong) with timestamp strictly before
    [until], in timestamp order, and returns how many were dispatched.
    Events at or past the horizon are untouched.  This is the epoch
    primitive of the conservative shard engine ({!Shard}): with
    lookahead [L], a shard may safely run to [t_min + L] before the next
    barrier. *)

(** {1 Introspection} *)

val pending : _ t -> int
(** Number of undelivered events (including weak ones). *)

val strong_pending : _ t -> int
(** Number of pending non-weak events — what the ["des.queue_depth"]
    gauge reports from both the schedule and the dispatch path. *)

val next_time : _ t -> float option
(** Timestamp of the earliest pending event (weak or strong), if any.
    Drives the shard engine's epoch jumps over idle stretches. *)

val messages_delivered : _ t -> int
(** Total messages delivered since creation — the protocol-cost metric of
    experiment E8. *)

val queue_peak : _ t -> int
(** High-water mark of the total event queue (weak events included)
    since creation — the queue's memory watermark.  Note the
    ["des.queue_depth"] gauge reports the {e strong}-pending count (the
    events that keep a drain running), consistently from both the
    schedule and the dispatch path. *)

val channel_meta_size : _ t -> int
(** Live per-channel metadata entries (FIFO fronts + fault overrides).
    Bounded: fronts behind the clock are pruned on an amortized-O(1)
    schedule (counted by ["des.channel_prunes"]), and overrides set back
    to the default profile are removed, so touching many distinct
    channels once does not grow the simulator without bound. *)

val footprint_bytes : _ t -> int
(** Heap bytes reachable from the simulator (arena, wheel, channel
    metadata, traces), measured with the client's restart hook detached
    so protocol state captured by that closure is not counted.  The
    fleet runner divides this by the fleet size into the
    ["des.bytes_per_vehicle"] gauge. *)

val drops : _ t -> int
(** Messages lost to channel faults, partitions or crashed endpoints. *)

val dups : _ t -> int
(** Duplicate copies injected by channel faults. *)

(** {1 Deterministic traces} *)

type 'msg step = { at : float; src : int; dst : int; msg : 'msg }

val digest : _ t -> int
(** Rolling checksum over every dispatched (time, src, dst) triple,
    updated on delivery.  Two runs with the same seed and fault
    configuration produce the same digest bit for bit — the cheap,
    always-on determinism witness. *)

val set_trace : _ t -> bool -> unit
(** Enables (or disables and clears) full event recording. *)

val trace : 'msg t -> 'msg step list
(** Dispatched events in delivery order, if tracing was enabled. *)

val replay :
  'msg step list ->
  handler:(time:float -> src:int -> dst:int -> 'msg -> unit) ->
  unit
(** Feeds a recorded trace back through a handler — for offline analysis
    of a failing chaos run without re-simulating. *)
