let default_scale = 720720 (* lcm(1..14), matching the Oracle default *)

type op =
  | Omega_star
  | Lp_value of int
  | Witness
  | Ping
  | Shutdown
  | Session_add of Point.t
  | Session_remove of Point.t
  | Session_query

type request = {
  id : int;
  op : op;
  scale : int;
  demand : Demand_map.t;
  session : string option;
}

type answer =
  | Value of float
  | Tight_set of (Point.t list * float) option
  | Pong

type response = { r_id : int; r_cached : bool; r_result : (answer, string) result }

let request ?(scale = default_scale) ?session ~id op demand =
  { id; op; scale; demand; session }

(* --- canonical digest --- *)

(* A commutative construction: each (coords, value) row hashes through
   FNV independently (seeded by the dimension), and the rows combine by
   wrapping integer addition.  Permutation invariance is then algebraic
   rather than an artifact of map iteration order — and, because wrapping
   addition forms a group, a streaming session can maintain the row sum
   in O(1) per mutation ({!rowsum_update}) and close it into the exact
   digest a from-scratch {!demand_digest} of the same demand produces.
   The digest is a bucket index, not a proof: {!Qcache} re-verifies
   structurally, so the weaker-than-FNV mixing of the sum only ever
   costs a miss. *)

let row_digest ~dim p v =
  let h = ref (Fnv.add_int Fnv.basis dim) in
  Array.iter (fun c -> h := Fnv.add_int !h c) p;
  Fnv.add_int !h v

let digest_of_rowsum ~dim ~rowsum ~support =
  Fnv.add_int (Fnv.add_int (Fnv.add_int Fnv.basis dim) (rowsum land max_int)) support

let rowsum_update ~dim ~rowsum p ~before ~after =
  let s = ref rowsum in
  if before > 0 then s := (!s - row_digest ~dim p before) land max_int;
  if after > 0 then s := (!s + row_digest ~dim p after) land max_int;
  !s

let demand_digest dm =
  let dim = Demand_map.dim dm in
  let rowsum =
    Demand_map.fold dm ~init:0 ~f:(fun acc p v ->
        (acc + row_digest ~dim p v) land max_int)
  in
  digest_of_rowsum ~dim ~rowsum ~support:(Demand_map.support_size dm)

(* --- JSON codec --- *)

let op_name = function
  | Omega_star -> "omega_star"
  | Lp_value _ -> "lp_value"
  | Witness -> "witness"
  | Ping -> "ping"
  | Shutdown -> "shutdown"
  | Session_add _ -> "session_add"
  | Session_remove _ -> "session_remove"
  | Session_query -> "session_query"

let json_of_point p = Json.List (Array.to_list (Array.map (fun c -> Json.Int c) p))

let json_of_demand dm =
  Json.List
    (List.rev
       (Demand_map.fold dm ~init:[] ~f:(fun acc p v ->
            Json.List
              (Array.to_list (Array.map (fun c -> Json.Int c) p) @ [ Json.Int v ])
            :: acc)))

let request_to_json r =
  let base =
    [
      ("id", Json.Int r.id);
      ("op", Json.String (op_name r.op));
      ("scale", Json.Int r.scale);
      ("dim", Json.Int (Demand_map.dim r.demand));
      ("demand", json_of_demand r.demand);
    ]
  in
  let base =
    match r.session with
    | Some name -> base @ [ ("session", Json.String name) ]
    | None -> base
  in
  match r.op with
  | Lp_value radius -> Json.Obj (base @ [ ("radius", Json.Int radius) ])
  | Session_add p | Session_remove p ->
      Json.Obj (base @ [ ("point", json_of_point p) ])
  | _ -> Json.Obj base

let request_to_string r = Json.to_string ~compact:true (request_to_json r)

let ( let* ) = Result.bind

let field name project j =
  match Option.bind (Json.member name j) project with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let demand_of_json ~dim j =
  match Json.to_list_opt j with
  | None -> Error "\"demand\" is not an array"
  | Some rows ->
      List.fold_left
        (fun acc row ->
          let* dm = acc in
          match Json.to_list_opt row with
          | Some cells when List.length cells = dim + 1 -> (
              let ints = List.filter_map Json.to_int_opt cells in
              if List.length ints <> dim + 1 then
                Error "demand row with a non-integer cell"
              else
                match List.rev ints with
                | v :: coords_rev ->
                    if v < 0 then Error "negative demand value"
                    else Ok (Demand_map.add dm (Array.of_list (List.rev coords_rev)) v)
                | [] -> Error "empty demand row")
          | _ ->
              Error
                (Printf.sprintf
                   "demand row is not a %d-element [coords..., value] array"
                   (dim + 1)))
        (Ok (Demand_map.empty dim))
        rows

let request_of_json j =
  let* id = field "id" Json.to_int_opt j in
  let* name = field "op" Json.to_string_opt j in
  let scale =
    Option.value ~default:default_scale
      (Option.bind (Json.member "scale" j) Json.to_int_opt)
  in
  if scale <= 0 then Error "\"scale\" must be positive"
  else
    let* dim =
      match Option.bind (Json.member "dim" j) Json.to_int_opt with
      | Some d when d >= 1 -> Ok d
      | Some _ -> Error "\"dim\" must be at least 1"
      | None -> Ok 2
    in
    let point_of_member () =
      match Option.bind (Json.member "point" j) Json.to_list_opt with
      | None -> Error (Printf.sprintf "op %S requires a \"point\" array" name)
      | Some cells ->
          let coords = List.filter_map Json.to_int_opt cells in
          if List.length coords <> List.length cells then
            Error "\"point\" with a non-integer coordinate"
          else if List.length coords <> dim then
            Error (Printf.sprintf "\"point\" must have %d coordinates" dim)
          else Ok (Array.of_list coords)
    in
    let* op =
      match name with
      | "omega_star" -> Ok Omega_star
      | "lp_value" -> (
          match Option.bind (Json.member "radius" j) Json.to_int_opt with
          | Some r when r >= 0 -> Ok (Lp_value r)
          | Some _ -> Error "\"radius\" must be non-negative"
          | None -> Error "op \"lp_value\" requires an integer \"radius\"")
      | "witness" -> Ok Witness
      | "ping" -> Ok Ping
      | "shutdown" -> Ok Shutdown
      | "session_add" ->
          let* p = point_of_member () in
          Ok (Session_add p)
      | "session_remove" ->
          let* p = point_of_member () in
          Ok (Session_remove p)
      | "session_query" -> Ok Session_query
      | other -> Error (Printf.sprintf "unknown op %S" other)
    in
    let session = Option.bind (Json.member "session" j) Json.to_string_opt in
    let* demand =
      match Json.member "demand" j with
      | None -> Ok (Demand_map.empty dim)
      | Some dj -> demand_of_json ~dim dj
    in
    Ok { id; op; scale; demand; session }

let request_of_string s =
  let* j = Json.of_string s in
  request_of_json j

let answer_to_json = function
  | Value v -> [ ("value", Json.Float v) ]
  | Tight_set None -> [ ("witness", Json.Null) ]
  | Tight_set (Some (points, omega)) ->
      [
        ( "witness",
          Json.Obj
            [
              ("points", Json.List (List.map json_of_point points));
              ("omega", Json.Float omega);
            ] );
      ]
  | Pong -> [ ("pong", Json.Bool true) ]

let response_to_json r =
  match r.r_result with
  | Ok answer ->
      Json.Obj
        ([
           ("id", Json.Int r.r_id);
           ("ok", Json.Bool true);
           ("cached", Json.Bool r.r_cached);
         ]
        @ answer_to_json answer)
  | Error e ->
      Json.Obj
        [
          ("id", Json.Int r.r_id);
          ("ok", Json.Bool false);
          ("error", Json.String e);
        ]

let response_to_string r = Json.to_string ~compact:true (response_to_json r)

let response_of_json j =
  let* r_id = field "id" Json.to_int_opt j in
  let* ok = field "ok" Json.to_bool_opt j in
  if not ok then
    let* e = field "error" Json.to_string_opt j in
    Ok { r_id; r_cached = false; r_result = Error e }
  else
    let r_cached =
      Option.value ~default:false
        (Option.bind (Json.member "cached" j) Json.to_bool_opt)
    in
    let* answer =
      match (Json.member "value" j, Json.member "witness" j, Json.member "pong" j) with
      | Some v, _, _ -> (
          match Json.to_float_opt v with
          | Some f -> Ok (Value f)
          | None -> Error "\"value\" is not a number")
      | None, Some Json.Null, _ -> Ok (Tight_set None)
      | None, Some w, _ ->
          let* points = field "points" Json.to_list_opt w in
          let* omega = field "omega" Json.to_float_opt w in
          let* points =
            List.fold_left
              (fun acc pj ->
                let* acc = acc in
                match Json.to_list_opt pj with
                | Some cells -> (
                    let coords = List.filter_map Json.to_int_opt cells in
                    if List.length coords = List.length cells && coords <> [] then
                      Ok (Array.of_list coords :: acc)
                    else Error "witness point with a non-integer coordinate")
                | None -> Error "witness point is not an array")
              (Ok []) points
          in
          Ok (Tight_set (Some (List.rev points, omega)))
      | None, None, Some p -> (
          match Json.to_bool_opt p with
          | Some true -> Ok Pong
          | _ -> Error "\"pong\" is not true")
      | None, None, None -> Error "response carries no answer field"
    in
    Ok { r_id; r_cached; r_result = Ok answer }

let response_of_string s =
  let* j = Json.of_string s in
  response_of_json j

let answer_equal a b =
  match (a, b) with
  | Value x, Value y -> Float.equal x y
  | Tight_set None, Tight_set None -> true
  | Tight_set (Some (ps, x)), Tight_set (Some (qs, y)) ->
      Float.equal x y
      && List.length ps = List.length qs
      && List.for_all2 Point.equal ps qs
  | Pong, Pong -> true
  | _ -> false
