(* The cache is a plain int-keyed hashtable from digest to entries plus
   a FIFO ring of live digests for eviction.  All structural comparison
   is explicit (Point.compare via Demand_map bindings), never the
   polymorphic `=`. *)

type key = {
  k_digest : int;
  k_op : string; (* canonical op tag, radius baked in for lp_value *)
  k_scale : int;
  k_demand : Demand_map.t;
}

let op_tag : Protocol.op -> string = function
  | Protocol.Omega_star -> "omega_star"
  | Protocol.Witness -> "witness"
  | Protocol.Lp_value r -> "lp_value:" ^ string_of_int r
  | Protocol.Ping | Protocol.Shutdown ->
      invalid_arg "Qcache.key: control ops are never cached"
  | Protocol.Session_add _ | Protocol.Session_remove _ | Protocol.Session_query
    ->
      invalid_arg "Qcache.key: session ops key through their snapshot"

let key_with_digest ~digest ~op ~scale demand =
  { k_digest = digest; k_op = op_tag op; k_scale = scale; k_demand = demand }

let key ~op ~scale demand =
  key_with_digest ~digest:(Protocol.demand_digest demand) ~op ~scale demand

let demand_equal a b =
  Demand_map.dim a = Demand_map.dim b
  && Demand_map.support_size a = Demand_map.support_size b
  && Demand_map.fold a ~init:true ~f:(fun acc p v ->
         acc && Demand_map.value b p = v)

let key_equal a b =
  a.k_digest = b.k_digest && String.equal a.k_op b.k_op
  && a.k_scale = b.k_scale
  && demand_equal a.k_demand b.k_demand

let equal = key_equal

type 'v entry = { e_key : key; mutable e_value : 'v }

type 'v t = {
  table : (int, 'v entry list) Hashtbl.t;
  fifo : key Queue.t;
  limit : int;
  mutable live : int;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Qcache.create: capacity must be positive";
  { table = Hashtbl.create (min capacity 1024); fifo = Queue.create (); limit = capacity; live = 0 }

let bucket t digest = Option.value ~default:[] (Hashtbl.find_opt t.table digest)

let find t k =
  List.find_map
    (fun e -> if key_equal e.e_key k then Some e.e_value else None)
    (bucket t k.k_digest)

let remove t k =
  match List.partition (fun e -> key_equal e.e_key k) (bucket t k.k_digest) with
  | [], _ -> ()
  | _dead, [] ->
      Hashtbl.remove t.table k.k_digest;
      t.live <- t.live - 1
  | _dead, alive ->
      Hashtbl.replace t.table k.k_digest alive;
      t.live <- t.live - 1

let add t k v =
  match
    List.find_opt (fun e -> key_equal e.e_key k) (bucket t k.k_digest)
  with
  | Some e -> e.e_value <- v
  | None ->
      if t.live >= t.limit then remove t (Queue.pop t.fifo);
      Hashtbl.replace t.table k.k_digest ({ e_key = k; e_value = v } :: bucket t k.k_digest);
      Queue.push k t.fifo;
      t.live <- t.live + 1

let size t = t.live
let capacity t = t.limit
