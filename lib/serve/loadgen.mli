(** Load generator for the serving daemon.

    Builds deterministic query sequences from a seed and a named mix,
    then replays them either in-process against an {!Engine} (the
    [serve/*] benchmark scenarios) or over the wire against a running
    daemon with [clients] concurrent connections, each keeping up to
    [window] requests in flight (the CI smoke test).  The socket replayer
    is a single-threaded [Unix.select] multiplexer, so results and
    per-client FIFO checks are reproducible without any thread scheduling
    nondeterminism.

    Mixes (see [docs/SERVING.md] for the exact recipes):
    - {e repeat-heavy}: queries drawn Zipf-style from a small pool of
      eight demand sets — exercises the cache's hit path;
    - {e churn}: a sliding window over a job stream, advancing every
      fourth query — a mix of repeats and fresh sets;
    - {e cold-miss}: a fresh demand set per query — the cache-defeating
      worst case.

    With [check] set, every successful response is re-verified against a
    fresh oracle call ({!Engine.evaluate}) and must be bit-identical
    ({!Protocol.answer_equal}); any mismatch, FIFO-order violation or
    transport error makes the replay return [Error]. *)

type mix = Repeat_heavy | Churn | Cold_miss

val mix_name : mix -> string
val mix_of_string : string -> (mix, string) result
val all_mixes : mix list

val queries : seed:int -> mix:mix -> n:int -> Protocol.request array
(** Deterministic: equal [(seed, mix, n)] yield identical requests with
    ids [0 .. n-1]. *)

type stats = {
  sent : int;
  completed : int;
  error_responses : int;
  cached_responses : int;  (** responses the daemon answered from cache *)
  hit_rate : float;  (** [cached_responses / completed] (0 when empty) *)
  wall_ns : float;
  throughput_qps : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;  (** exact quantiles of per-request latency *)
}

val replay_engine :
  ?check:bool -> ?batch:int -> Engine.t -> Protocol.request array ->
  (stats, string) result
(** In-process replay, feeding the engine [batch] requests at a time
    (default 16). *)

val connect : ?attempts:int -> string -> (Unix.file_descr, string) result
(** Connect to a daemon's Unix socket, retrying every 100 ms for up to
    [attempts] tries (default 50) while the daemon is still binding. *)

val replay_socket :
  ?check:bool -> socket:string -> clients:int -> window:int ->
  Protocol.request array -> (stats, string) result
(** Queries are dealt round-robin to [clients] connections; each client
    pipelines up to [window] requests.  Asserts that every connection's
    responses arrive in the order its requests were sent. *)

val send_shutdown : socket:string -> unit -> (unit, string) result
(** One [shutdown] request on a fresh connection; waits for the pong. *)
