(** The serving engine: oracle queries in, answers out, cache in between.

    The engine is transport-agnostic — the daemon's socket loop, the
    stdio pipe, the load generator's in-process mode and the benchmark
    scenarios all feed it the same way: {!process_batch} with whatever
    requests are currently pending.

    A batch is processed in three phases (see [docs/SERVING.md]):

    + {b probe} (control domain): each request's cache key is computed
      and looked up; duplicate keys {e within} the batch are coalesced
      onto one computation;
    + {b compute} ([Pool] fan-out): the distinct misses run through the
      exact oracle in parallel, each on its own warm flow arena;
    + {b publish} (control domain): results enter the cache and the
      responses are assembled in request order.

    Only phase 2 is parallel, so the cache needs no locking, and the
    response order (and every [serve.*] counter) is deterministic at any
    [Pool] width.

    Answers are bit-identical to one-shot {!Oracle} calls: a cache hit
    returns the stored float/witness unchanged, and a miss runs exactly
    the code path the CLI's [solve] would. *)

type t

val create : ?cache_capacity:int -> unit -> t
(** [cache_capacity] defaults to 4096 entries. *)

val evaluate : Protocol.request -> (Protocol.answer, string) result
(** One fresh oracle evaluation, bypassing the cache — the reference the
    load generator's [--check] mode compares served answers against.
    Control ops answer [Pong]; oracle failures come back as [Error]. *)

val process_batch : t -> Protocol.request array -> Protocol.response array
(** [(process_batch t reqs).(i)] answers [reqs.(i)].  Malformed requests
    (dimension mismatches, oversized scales) yield [Error] responses;
    the call itself never raises on request content. *)

val process : t -> Protocol.request -> Protocol.response
(** Singleton batch. *)

val cache_size : t -> int

val wants_shutdown : Protocol.request -> bool
(** True on [Shutdown] — transports decide what to do with it; the
    engine just answers [Pong]. *)
