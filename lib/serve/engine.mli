(** The serving engine: oracle queries in, answers out, cache in between.

    The engine is transport-agnostic — the daemon's socket loop, the
    stdio pipe, the load generator's in-process mode and the benchmark
    scenarios all feed it the same way: {!process_batch} with whatever
    requests are currently pending.

    A batch is processed in three phases (see [docs/SERVING.md]):

    + {b probe} (control domain): each request's cache key is computed
      and looked up; duplicate keys {e within} the batch are coalesced
      onto one computation;
    + {b compute} ([Pool] fan-out): the distinct misses run through the
      exact oracle in parallel, each on its own warm flow arena;
    + {b publish} (control domain): results enter the cache and the
      responses are assembled in request order.

    Only phase 2 is parallel, so the cache needs no locking, and the
    response order (and every [serve.*] counter) is deterministic at any
    [Pool] width.

    {b Streaming sessions} ([Session_add]/[Session_remove]/[Session_query])
    are handled entirely inside phase 1: each named session wraps an
    {!Oracle.Session} (incremental ω*, persistent flow arenas) plus an
    O(1)-maintained digest row sum, and that mutable state is
    control-domain confined — it never crosses the [Pool].  A
    [Session_query] keys the cache with the maintained digest over the
    session's live demand snapshot under the stateless [Omega_star] op,
    so session queries and one-shot [Omega_star] requests on the same
    demand share cache entries — legitimately, because session answers
    are bit-identical to from-scratch oracle calls.

    Answers are bit-identical to one-shot {!Oracle} calls: a cache hit
    returns the stored float/witness unchanged, and a miss runs exactly
    the code path the CLI's [solve] would. *)

type t

val create : ?cache_capacity:int -> ?max_sessions:int -> unit -> t
(** [cache_capacity] defaults to 4096 entries.  [max_sessions]
    (default 64, must be positive) caps the live streaming sessions:
    each session pins warm flow arenas, so under client churn an
    unbounded table is a memory leak.  When a [Session_add] would
    exceed the cap, the least-recently-used session is evicted (every
    session op counts as a use); a later [Session_add] under the
    evicted name simply starts a fresh empty session. *)

val evaluate : Protocol.request -> (Protocol.answer, string) result
(** One fresh oracle evaluation, bypassing the cache — the reference the
    load generator's [--check] mode compares served answers against.
    Control ops answer [Pong]; oracle failures come back as [Error].
    Session ops are [Error]: they need engine state, so there is no
    stateless reference path for them. *)

val process_batch : t -> Protocol.request array -> Protocol.response array
(** [(process_batch t reqs).(i)] answers [reqs.(i)].  Malformed requests
    (dimension mismatches, oversized scales) yield [Error] responses;
    the call itself never raises on request content. *)

val process : t -> Protocol.request -> Protocol.response
(** Singleton batch. *)

val cache_size : t -> int

val session_count : t -> int
(** Live streaming sessions (also published as the [serve.sessions]
    gauge).  [Session_add] with a fresh name creates one; sessions live
    until evicted by the [max_sessions] LRU cap. *)

val session_evictions : t -> int
(** Sessions evicted by the LRU cap since creation (also the
    ["serve.session_evictions"] counter). *)

val wants_shutdown : Protocol.request -> bool
(** True on [Shutdown] — transports decide what to do with it; the
    engine just answers [Pong]. *)
