(** The [cmvrp_serve] daemon loop: a single-threaded [Unix.select] front
    end over the {!Engine}.

    One control domain owns every socket and the cache; parallelism only
    happens inside {!Engine.process_batch}'s [Pool] fan-out.  Per select
    round the loop reads whatever bytes are available on each connection,
    drains complete frames into a pending queue, and feeds the queue to
    the engine in arrival order, [max_batch] requests at a time — so
    concurrent clients get batched together, and each client's responses
    come back in the order it sent its requests (the per-client FIFO the
    concurrent-client suite asserts).

    Framing is {!Frame}'s length-prefixed JSON lines.  A frame that is
    not valid JSON, or a [Frame.Bad_frame] (oversized / corrupt header),
    gets an [id = -1] error response; [Bad_frame] additionally closes the
    connection, since the byte stream can no longer be trusted.

    A [shutdown] request is answered like any other, then the loop
    flushes all connections and returns.  On stdio transport, EOF on
    stdin also ends the loop. *)

type transport =
  | Unix_socket of string
      (** Path to bind; an existing socket file is unlinked first, and
          the file is removed again on exit. *)
  | Stdio  (** Serve one client over stdin/stdout. *)

type config = {
  transport : transport;
  cache_capacity : int;
  max_sessions : int;  (** LRU cap on live streaming sessions. *)
  max_batch : int;  (** Engine batch ceiling per drain; must be positive. *)
}

val default_max_batch : int

val config :
  ?cache_capacity:int -> ?max_sessions:int -> ?max_batch:int -> transport -> config

val run : ?trace:(string -> unit) -> config -> unit
(** Blocks until shutdown.  [trace] receives one-line lifecycle notes
    (bind, accept, close, shutdown) for the caller to log. *)
