(** Wire protocol of the [cmvrp_serve] daemon.

    One request or response per {!Frame} payload, encoded as one compact
    JSON document — the "length-prefixed JSON lines" protocol of
    [docs/SERVING.md].  A request names an oracle operation and carries a
    demand set as [(position, demand)] rows; a response carries the
    operation's answer bit-identically (the JSON float emitter is
    shortest-round-trip), a [cached] flag, and echoes the request [id] so
    clients can pipeline.

    The module also defines the {e canonical demand-set digest} the
    result cache keys on: each aggregated demand row hashes through
    {!Fnv} independently and the rows combine by wrapping integer
    addition, so the digest is algebraically permutation-invariant and a
    streaming session can maintain it in O(1) per mutation
    ({!rowsum_update}). *)

type op =
  | Omega_star  (** [ω*] of program (2.8) — {!Oracle.omega_star} *)
  | Lp_value of int
      (** value of program (2.1) at the given radius — {!Oracle.lp_value} *)
  | Witness  (** a tight set for (2.8) — {!Oracle.witness} *)
  | Ping  (** liveness probe; never touches the oracle or the cache *)
  | Shutdown  (** ask the daemon to stop after answering *)
  | Session_add of Point.t
      (** one unit job arrives at the point — {!Oracle.Session.add_job};
          requires a [session] name, creates the session on first use *)
  | Session_remove of Point.t
      (** one unit job retires — {!Oracle.Session.remove_job} *)
  | Session_query
      (** current [ω*] of the named session — {!Oracle.Session.omega_star} *)

type request = {
  id : int;  (** echoed verbatim; clients use it to match pipelined replies *)
  op : op;
  scale : int;  (** resolution denominator, default [720720] *)
  demand : Demand_map.t;  (** already aggregated — the canonical form *)
  session : string option;
      (** names the server-side streaming session the [Session_*] ops
          address; ignored by the stateless ops *)
}

type answer =
  | Value of float  (** [Omega_star] and [Lp_value] results *)
  | Tight_set of (Point.t list * float) option  (** [Witness] result *)
  | Pong  (** [Ping]/[Shutdown] acknowledgement *)

type response = { r_id : int; r_cached : bool; r_result : (answer, string) result }

val default_scale : int

val request : ?scale:int -> ?session:string -> id:int -> op -> Demand_map.t -> request

val demand_digest : Demand_map.t -> int
(** Canonical digest of a demand function: permutation-invariant over the
    rows it was built from, dimension- and multiplicity-sensitive.  A
    fingerprint, not a proof of equality — cache consumers pair it with
    structural comparison ({!Qcache}).  Equals
    [digest_of_rowsum ~dim ~rowsum ~support] where [rowsum] is the
    wrapping sum of [row_digest] over the support. *)

val row_digest : dim:int -> Point.t -> int -> int
(** FNV hash of one aggregated [(position, value)] row, seeded by the
    demand dimension. *)

val rowsum_update : dim:int -> rowsum:int -> Point.t -> before:int -> after:int -> int
(** The row sum after one site's aggregated demand changes from [before]
    to [after]: subtracts the old row's digest and adds the new one
    (zero-demand rows contribute nothing).  Wrapping addition forms a
    group, so a maintained row sum stays exactly equal to the
    from-scratch fold at every step. *)

val digest_of_rowsum : dim:int -> rowsum:int -> support:int -> int
(** Close a maintained row sum into the canonical digest; agrees with
    {!demand_digest} on the demand it tracks. *)

val request_to_string : request -> string
val request_of_string : string -> (request, string) result

val response_to_string : response -> string
val response_of_string : string -> (response, string) result

val answer_equal : answer -> answer -> bool
(** Bit-exact comparison: float equality on values, [Point.equal] on
    witness members.  This is the predicate behind [loadgen --check]. *)
