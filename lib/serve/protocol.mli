(** Wire protocol of the [cmvrp_serve] daemon.

    One request or response per {!Frame} payload, encoded as one compact
    JSON document — the "length-prefixed JSON lines" protocol of
    [docs/SERVING.md].  A request names an oracle operation and carries a
    demand set as [(position, demand)] rows; a response carries the
    operation's answer bit-identically (the JSON float emitter is
    shortest-round-trip), a [cached] flag, and echoes the request [id] so
    clients can pipeline.

    The module also defines the {e canonical demand-set digest} the
    result cache keys on: the demand rows are aggregated into a
    {!Demand_map.t} (summing duplicate positions) and folded in the map's
    sorted support order through {!Fnv}, so any two row permutations of
    the same demand function digest identically. *)

type op =
  | Omega_star  (** [ω*] of program (2.8) — {!Oracle.omega_star} *)
  | Lp_value of int
      (** value of program (2.1) at the given radius — {!Oracle.lp_value} *)
  | Witness  (** a tight set for (2.8) — {!Oracle.witness} *)
  | Ping  (** liveness probe; never touches the oracle or the cache *)
  | Shutdown  (** ask the daemon to stop after answering *)

type request = {
  id : int;  (** echoed verbatim; clients use it to match pipelined replies *)
  op : op;
  scale : int;  (** resolution denominator, default [720720] *)
  demand : Demand_map.t;  (** already aggregated — the canonical form *)
}

type answer =
  | Value of float  (** [Omega_star] and [Lp_value] results *)
  | Tight_set of (Point.t list * float) option  (** [Witness] result *)
  | Pong  (** [Ping]/[Shutdown] acknowledgement *)

type response = { r_id : int; r_cached : bool; r_result : (answer, string) result }

val default_scale : int

val request : ?scale:int -> id:int -> op -> Demand_map.t -> request

val demand_digest : Demand_map.t -> int
(** Canonical digest of a demand function: permutation-invariant over the
    rows it was built from, dimension- and multiplicity-sensitive.  A
    fingerprint, not a proof of equality — cache consumers pair it with
    structural comparison ({!Qcache}). *)

val request_to_string : request -> string
val request_of_string : string -> (request, string) result

val response_to_string : response -> string
val response_of_string : string -> (response, string) result

val answer_equal : answer -> answer -> bool
(** Bit-exact comparison: float equality on values, [Point.equal] on
    witness members.  This is the predicate behind [loadgen --check]. *)
