(** Digest-keyed, structurally verified result cache of the serving
    engine.

    Keys are (demand digest, op, scale); the digest ({!Protocol.demand_digest})
    is only the bucket index — every lookup re-verifies the candidate
    entry against the full key with [Point]-aware structural equality, so
    an FNV collision degrades to a miss, never to a wrong answer.  Cached
    answers are therefore bit-identical to what a fresh oracle call would
    return (the QCheck property in [test/suite_serve.ml]).

    Capacity is bounded with FIFO eviction (insertion order), which is
    cheap, deterministic, and good enough for replayed query mixes; the
    engine publishes hit/miss/eviction counters through {!Metrics}.

    Not domain-safe by design: only the daemon's control domain touches
    the cache (lookups happen before, and insertions after, the [Pool]
    fan-out — see {!Engine}), so no locking is needed. *)

type key

val key : op:Protocol.op -> scale:int -> Demand_map.t -> key
(** [Ping]/[Shutdown] requests are never cached, and [Session_*] ops key
    through their demand snapshot under a stateless op instead; asking
    for a key on any of them raises [Invalid_argument]. *)

val key_with_digest : digest:int -> op:Protocol.op -> scale:int -> Demand_map.t -> key
(** {!key} with a caller-maintained digest (an incrementally updated
    {!Protocol.rowsum_update} closure) instead of a from-scratch
    {!Protocol.demand_digest}.  The two agree whenever the caller's row
    sum tracks the demand exactly; a stale digest degrades to a cache
    miss, never a wrong answer, because lookups still verify
    structurally. *)

val equal : key -> key -> bool
(** Full structural equality (digest, op tag, scale, then the demand maps
    point by point) — the comparison every lookup uses, exposed so the
    engine can coalesce duplicate keys within a batch. *)

type 'v t

val create : capacity:int -> unit -> 'v t
(** [capacity] must be positive. *)

val find : 'v t -> key -> 'v option
val add : 'v t -> key -> 'v -> unit
(** Re-adding a live key replaces its value without consuming capacity. *)

val size : 'v t -> int
val capacity : 'v t -> int
