let m_conns = Metrics.gauge "daemon.connections"
let m_accepted = Metrics.counter "daemon.accepts"
let m_bad_frames = Metrics.counter "daemon.bad_frames"

type transport = Unix_socket of string | Stdio

type config = {
  transport : transport;
  cache_capacity : int;
  max_sessions : int;
  max_batch : int;
}

let default_max_batch = 64

let config ?(cache_capacity = 4096) ?(max_sessions = 64)
    ?(max_batch = default_max_batch) transport =
  if max_batch <= 0 then invalid_arg "Daemon.config: max_batch must be positive";
  if max_sessions <= 0 then
    invalid_arg "Daemon.config: max_sessions must be positive";
  { transport; cache_capacity; max_sessions; max_batch }

type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  mutable alive : bool;
}

(* Blocking write of a whole frame; small responses, prompt readers. *)
let send_all fd payload =
  let s = Frame.encode payload in
  let len = String.length s in
  let off = ref 0 in
  try
    while !off < len do
      off := !off + Unix.write_substring fd s !off (len - !off)
    done
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

let send_response conn resp =
  if conn.alive then send_all conn.fd (Protocol.response_to_string resp)

let parse_error_response msg =
  { Protocol.r_id = -1; r_cached = false; r_result = Error msg }

(* Drain every complete frame the decoder holds into the pending queue.
   A frame that fails to parse as a request gets an immediate id = -1
   error response and does not enter the queue. *)
let drain_frames conn pending =
  let continue = ref true in
  while !continue do
    match Frame.next conn.dec with
    | None -> continue := false
    | Some payload -> (
        match Protocol.request_of_string payload with
        | Ok req -> Queue.push (conn, req) pending
        | Error msg -> send_response conn (parse_error_response msg))
  done

let read_chunk_size = 65536

(* Read once from a ready connection; false when the peer is gone. *)
let pump_conn conn pending buf =
  match Unix.read conn.fd buf 0 read_chunk_size with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> false
  | 0 -> false
  | n -> (
      Frame.feed conn.dec buf 0 n;
      match drain_frames conn pending with
      | () -> true
      | exception Frame.Bad_frame msg ->
          Metrics.incr m_bad_frames;
          send_response conn (parse_error_response ("bad frame: " ^ msg));
          false)

(* Feed the pending queue to the engine, [max_batch] at a time, sending
   each response to its connection as soon as its batch completes.
   Returns true if a shutdown request was served. *)
let drain_pending engine max_batch pending =
  let saw_shutdown = ref false in
  while not (Queue.is_empty pending) do
    let take = min max_batch (Queue.length pending) in
    let owners = Array.init take (fun _ -> Queue.pop pending) in
    let reqs = Array.map snd owners in
    Array.iter
      (fun r -> if Engine.wants_shutdown r then saw_shutdown := true)
      reqs;
    let responses = Engine.process_batch engine reqs in
    Array.iteri (fun i resp -> send_response (fst owners.(i)) resp) responses
  done;
  !saw_shutdown

let close_quietly fd =
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let run_socket ~trace cfg path =
  let engine = Engine.create ~cache_capacity:cfg.cache_capacity ~max_sessions:cfg.max_sessions () in
  (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 64;
  trace ("listening on " ^ path);
  let conns = ref [] in
  let pending = Queue.create () in
  let buf = Bytes.create read_chunk_size in
  let running = ref true in
  while !running do
    let fds = listen_fd :: List.map (fun c -> c.fd) !conns in
    match Unix.select fds [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.memq listen_fd ready then begin
          let fd, _ = Unix.accept listen_fd in
          Metrics.incr m_accepted;
          conns := { fd; dec = Frame.decoder (); alive = true } :: !conns;
          Metrics.set_gauge m_conns (float_of_int (List.length !conns));
          trace "accepted connection"
        end;
        List.iter
          (fun conn ->
            if conn.alive && List.memq conn.fd ready then
              if not (pump_conn conn pending buf) then begin
                conn.alive <- false;
                close_quietly conn.fd;
                trace "connection closed"
              end)
          !conns;
        let before = List.length !conns in
        conns := List.filter (fun c -> c.alive) !conns;
        if List.length !conns <> before then
          Metrics.set_gauge m_conns (float_of_int (List.length !conns));
        if drain_pending engine cfg.max_batch pending then running := false
  done;
  trace "shutting down";
  List.iter (fun c -> if c.alive then close_quietly c.fd) !conns;
  close_quietly listen_fd;
  (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())

let run_stdio ~trace cfg =
  let engine = Engine.create ~cache_capacity:cfg.cache_capacity ~max_sessions:cfg.max_sessions () in
  trace "serving on stdio";
  let running = ref true in
  while !running do
    match Frame.read stdin with
    | None -> running := false
    | Some payload -> (
        match Protocol.request_of_string payload with
        | Error msg ->
            Frame.write stdout
              (Protocol.response_to_string (parse_error_response msg))
        | Ok req ->
            let resp = Engine.process engine req in
            Frame.write stdout (Protocol.response_to_string resp);
            if Engine.wants_shutdown req then running := false)
  done;
  trace "stdio stream ended"

let run ?(trace = fun (_ : string) -> ()) cfg =
  match cfg.transport with
  | Unix_socket path -> run_socket ~trace cfg path
  | Stdio -> run_stdio ~trace cfg
