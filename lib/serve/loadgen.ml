let m_queries = Metrics.counter "loadgen.queries"
let m_errors = Metrics.counter "loadgen.errors"
let m_latency = Metrics.histogram "loadgen.latency_ns"

type mix = Repeat_heavy | Churn | Cold_miss

let mix_name = function
  | Repeat_heavy -> "repeat-heavy"
  | Churn -> "churn"
  | Cold_miss -> "cold-miss"

let mix_of_string = function
  | "repeat-heavy" -> Ok Repeat_heavy
  | "churn" -> Ok Churn
  | "cold-miss" -> Ok Cold_miss
  | other ->
      Error
        (Printf.sprintf
           "unknown mix %S (expected repeat-heavy, churn or cold-miss)" other)

let all_mixes = [ Repeat_heavy; Churn; Cold_miss ]

(* --- query generation --- *)

(* Instances are deliberately small (a handful of jobs in a ~5x5 box) so
   a single omega* evaluation is fast: the serving scenarios measure the
   protocol, batching and cache, not oracle depth. *)
let fresh_demand rng =
  let side = Rng.int_in rng 4 6 in
  let box = Box.cube_at_origin ~dim:2 ~side in
  let jobs = Rng.int_in rng 20 60 in
  Workload.demand (Workload.uniform ~rng ~box ~jobs)

(* Mostly omega*, with an occasional witness so both cacheable answer
   shapes flow through the protocol. *)
let pick_op rng =
  if Rng.int rng 8 = 0 then Protocol.Witness else Protocol.Omega_star

let demand_of_window box stream start len =
  let dm = ref (Demand_map.empty (Box.dim box)) in
  for i = start to start + len - 1 do
    dm := Demand_map.add !dm stream.(i) 1
  done;
  !dm

let queries ~seed ~mix ~n =
  let rng = Rng.create seed in
  match mix with
  | Repeat_heavy ->
      let pool = Array.init 8 (fun _ -> fresh_demand rng) in
      Array.init n (fun id ->
          let dm = pool.(Rng.zipf rng ~n:8 ~s:1.1 - 1) in
          Protocol.request ~id (pick_op rng) dm)
  | Churn ->
      let window = 30 in
      let box = Box.cube_at_origin ~dim:2 ~side:5 in
      let volume = Box.volume box in
      (* The window advances every fourth query, so each demand set is
         asked about ~4 times before it mutates away. *)
      let stream =
        Array.init ((n / 4) + window + 1) (fun _ ->
            Box.point_of_index box (Rng.int rng volume))
      in
      Array.init n (fun id ->
          let dm = demand_of_window box stream (id / 4) window in
          Protocol.request ~id (pick_op rng) dm)
  | Cold_miss ->
      Array.init n (fun id ->
          Protocol.request ~id (pick_op rng) (fresh_demand rng))

(* --- stats --- *)

type stats = {
  sent : int;
  completed : int;
  error_responses : int;
  cached_responses : int;
  hit_rate : float;
  wall_ns : float;
  throughput_qps : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
}

let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let build_stats ~sent ~error_responses ~cached_responses ~wall_ns latencies =
  let completed = Array.length latencies in
  let sorted = Array.copy latencies in
  Array.sort Float.compare sorted;
  {
    sent;
    completed;
    error_responses;
    cached_responses;
    hit_rate =
      (if completed = 0 then 0.0
       else float_of_int cached_responses /. float_of_int completed);
    wall_ns;
    throughput_qps =
      (if wall_ns <= 0.0 then 0.0
       else float_of_int completed /. (wall_ns *. 1e-9));
    p50_ns = exact_quantile sorted 0.50;
    p95_ns = exact_quantile sorted 0.95;
    p99_ns = exact_quantile sorted 0.99;
  }

(* --- response verification --- *)

let verify_response (req : Protocol.request) (resp : Protocol.response) =
  if resp.Protocol.r_id <> req.Protocol.id then
    Error
      (Printf.sprintf "response id %d does not match request id %d"
         resp.Protocol.r_id req.Protocol.id)
  else
    match resp.Protocol.r_result with
    | Error _ -> Ok () (* counted separately; nothing to cross-check *)
    | Ok answer -> (
        match Engine.evaluate req with
        | Ok expected ->
            if Protocol.answer_equal answer expected then Ok ()
            else
              Error
                (Printf.sprintf
                   "request %d: served answer differs from a fresh oracle call"
                   req.Protocol.id)
        | Error m ->
            Error
              (Printf.sprintf
                 "request %d: daemon succeeded but fresh oracle failed (%s)"
                 req.Protocol.id m))

let tally resp (errors, cached) =
  match resp.Protocol.r_result with
  | Error _ ->
      Metrics.incr m_errors;
      (errors + 1, cached)
  | Ok _ -> (errors, if resp.Protocol.r_cached then cached + 1 else cached)

(* --- in-process replay --- *)

let ( let* ) = Result.bind

let replay_engine ?(check = false) ?(batch = 16) engine reqs =
  if batch <= 0 then Error "batch must be positive"
  else begin
    let n = Array.length reqs in
    let latencies = Array.make n 0.0 in
    let errors = ref 0 and cached = ref 0 in
    let failure = ref None in
    let t0 = Metrics.now_ns () in
    let i = ref 0 in
    while !i < n && Option.is_none !failure do
      let take = min batch (n - !i) in
      let chunk = Array.sub reqs !i take in
      let b0 = Metrics.now_ns () in
      let responses = Engine.process_batch engine chunk in
      let elapsed = Metrics.now_ns () -. b0 in
      Array.iteri
        (fun k resp ->
          Metrics.incr m_queries;
          Metrics.observe m_latency elapsed;
          latencies.(!i + k) <- elapsed;
          let e, c = tally resp (!errors, !cached) in
          errors := e;
          cached := c;
          if check && Option.is_none !failure then
            match verify_response chunk.(k) resp with
            | Ok () -> ()
            | Error m -> failure := Some m)
        responses;
      i := !i + take
    done;
    match !failure with
    | Some m -> Error m
    | None ->
        Ok
          (build_stats ~sent:n ~error_responses:!errors
             ~cached_responses:!cached
             ~wall_ns:(Metrics.now_ns () -. t0)
             latencies)
  end

(* --- socket replay --- *)

let connect ?(attempts = 50) path =
  let rec go k =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when k > 1 ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        Unix.sleepf 0.1;
        go (k - 1)
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        Error
          (Printf.sprintf "cannot connect to %s: %s" path
             (Unix.error_message e))
  in
  if attempts <= 0 then Error "attempts must be positive" else go attempts

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

type client = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  queries : Protocol.request array;  (* this client's slice, send order *)
  mutable next_to_send : int;
  inflight : (Protocol.request * float) Queue.t;  (* FIFO: oldest first *)
  mutable received : int;
}

let client_done c =
  c.next_to_send >= Array.length c.queries
  && Queue.is_empty c.inflight

let fill_window window c =
  while
    c.next_to_send < Array.length c.queries
    && Queue.length c.inflight < window
  do
    let req = c.queries.(c.next_to_send) in
    write_all c.fd (Frame.encode (Protocol.request_to_string req));
    Queue.push (req, Metrics.now_ns ()) c.inflight;
    c.next_to_send <- c.next_to_send + 1
  done

let replay_socket ?(check = false) ~socket ~clients ~window reqs =
  if clients <= 0 then Error "clients must be positive"
  else if window <= 0 then Error "window must be positive"
  else begin
    let n = Array.length reqs in
    (* Round-robin deal preserves each client's id order. *)
    let slices =
      Array.init clients (fun c ->
          Array.of_list
            (List.filteri (fun i _ -> i mod clients = c) (Array.to_list reqs)))
    in
    let connected =
      Array.fold_left
        (fun acc slice ->
          let* acc = acc in
          let* fd = connect socket in
          Ok
            ({
               fd;
               dec = Frame.decoder ();
               queries = slice;
               next_to_send = 0;
               inflight = Queue.create ();
               received = 0;
             }
            :: acc))
        (Ok []) slices
    in
    let* cs = connected in
    let cs = Array.of_list (List.rev cs) in
    let close_all () =
      Array.iter
        (fun c ->
          try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())
        cs
    in
    let latencies = ref [] in
    let errors = ref 0 and cached = ref 0 and completed = ref 0 in
    let failure = ref None in
    let buf = Bytes.create 65536 in
    let t0 = Metrics.now_ns () in
    Array.iter (fill_window window) cs;
    while
      Option.is_none !failure && not (Array.for_all client_done cs)
    do
      let waiting =
        Array.to_list cs
        |> List.filter_map (fun c ->
               if Queue.is_empty c.inflight then None else Some c.fd)
      in
      match Unix.select waiting [] [] 30.0 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> failure := Some "timed out waiting for responses (30s)"
      | ready, _, _ ->
          Array.iter
            (fun c ->
              if Option.is_none !failure && List.memq c.fd ready then
                match Unix.read c.fd buf 0 (Bytes.length buf) with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | 0 -> failure := Some "daemon closed the connection early"
                | got -> (
                    Frame.feed c.dec buf 0 got;
                    let continue = ref true in
                    while !continue && Option.is_none !failure do
                      match Frame.next c.dec with
                      | None -> continue := false
                      | exception Frame.Bad_frame m ->
                          failure := Some ("bad frame from daemon: " ^ m)
                      | Some payload -> (
                          match Protocol.response_of_string payload with
                          | Error m ->
                              failure :=
                                Some ("unparseable response: " ^ m)
                          | Ok resp ->
                              if Queue.is_empty c.inflight then
                                failure := Some "response with nothing in flight"
                              else begin
                                let req, sent_at = Queue.pop c.inflight in
                                let lat = Metrics.now_ns () -. sent_at in
                                Metrics.incr m_queries;
                                Metrics.observe m_latency lat;
                                latencies := lat :: !latencies;
                                c.received <- c.received + 1;
                                incr completed;
                                let e, ch = tally resp (!errors, !cached) in
                                errors := e;
                                cached := ch;
                                (* The id check below is the per-client FIFO
                                   assertion: the oldest in-flight request
                                   must be the one answered. *)
                                if resp.Protocol.r_id <> req.Protocol.id then
                                  failure :=
                                    Some
                                      (Printf.sprintf
                                         "FIFO violation: got id %d, expected %d"
                                         resp.Protocol.r_id req.Protocol.id)
                                else if check then
                                  match verify_response req resp with
                                  | Ok () -> ()
                                  | Error m -> failure := Some m
                              end)
                    done;
                    fill_window window c))
            cs
    done;
    let wall_ns = Metrics.now_ns () -. t0 in
    close_all ();
    match !failure with
    | Some m -> Error m
    | None ->
        Ok
          (build_stats ~sent:n ~error_responses:!errors
             ~cached_responses:!cached ~wall_ns
             (Array.of_list !latencies))
  end

let send_shutdown ~socket () =
  let* fd = connect socket in
  let req =
    Protocol.request ~id:0 Protocol.Shutdown (Demand_map.empty 1)
  in
  write_all fd (Frame.encode (Protocol.request_to_string req));
  let dec = Frame.decoder () in
  let buf = Bytes.create 4096 in
  let rec await () =
    match Frame.next dec with
    | Some _ -> Ok ()
    | exception Frame.Bad_frame m -> Error ("bad frame from daemon: " ^ m)
    | None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
        | 0 -> Error "daemon closed before acknowledging shutdown"
        | got ->
            Frame.feed dec buf 0 got;
            await ())
  in
  let r = await () in
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  r
