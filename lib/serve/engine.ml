let m_requests = Metrics.counter "serve.requests"
let m_batches = Metrics.counter "serve.batches"
let m_hits = Metrics.counter "serve.cache_hits"
let m_misses = Metrics.counter "serve.cache_misses"
let m_oracle_calls = Metrics.counter "serve.oracle_calls"
let m_errors = Metrics.counter "serve.errors"
let m_cache_size = Metrics.gauge "serve.cache_size"
let m_batch_size = Metrics.gauge "serve.batch_size"
let m_batch_span = Metrics.timer "serve.batch"
let m_latency = Metrics.histogram "serve.request_latency_ns"
let m_session_ops = Metrics.counter "serve.session_ops"
let m_sessions = Metrics.gauge "serve.sessions"
let m_evictions = Metrics.counter "serve.session_evictions"

(* A server-side streaming session: the incremental oracle plus the
   running digest row sum of its live demand, updated in O(1) per
   mutation so a query's cache key never recomputes the digest from
   scratch (and shares entries with stateless [Omega_star] requests on
   the same demand).  [s_touched] is the engine's logical clock at the
   session's last use, the LRU eviction key. *)
type session = {
  ses : Oracle.Session.t;
  mutable s_rowsum : int;
  mutable s_touched : int;
}

type t = {
  cache : Protocol.answer Qcache.t;
  sessions : (string, session) Hashtbl.t;
  max_sessions : int;
  mutable clock : int;
  mutable evictions : int;
}

let create ?(cache_capacity = 4096) ?(max_sessions = 64) () =
  if max_sessions < 1 then
    invalid_arg "Engine.create: max_sessions must be positive";
  {
    cache = Qcache.create ~capacity:cache_capacity ();
    sessions = Hashtbl.create 16;
    max_sessions;
    clock = 0;
    evictions = 0;
  }

let cache_size t = Qcache.size t.cache
let session_count t = Hashtbl.length t.sessions
let session_evictions t = t.evictions

let touch t s =
  t.clock <- t.clock + 1;
  s.s_touched <- t.clock

(* Evict least-recently-used sessions until a new one fits.  Each
   session holds warm flow arenas, so an unbounded table is a memory
   leak under client churn; 64 live incremental oracles is already
   generous.  Ties (never produced by [touch]) break on the name to
   stay deterministic. *)
let evict_for_insert t =
  while Hashtbl.length t.sessions >= t.max_sessions do
    let victim =
      Hashtbl.fold
        (fun name s acc ->
          match acc with
          | Some (_, best) when best.s_touched < s.s_touched -> acc
          | Some (bn, best)
            when best.s_touched = s.s_touched && String.compare bn name <= 0 ->
              acc
          | _ -> Some (name, s))
        t.sessions None
    in
    match victim with
    | None -> assert false (* length >= max_sessions >= 1 *)
    | Some (name, _) ->
        Hashtbl.remove t.sessions name;
        t.evictions <- t.evictions + 1;
        Metrics.incr m_evictions
  done

let wants_shutdown (r : Protocol.request) =
  match r.Protocol.op with Protocol.Shutdown -> true | _ -> false

(* One oracle evaluation — the exact code path a one-shot CLI call takes,
   which is what makes cached and fresh answers interchangeable.  Runs
   inside the Pool fan-out, so failures are captured as values here and
   never tear down sibling computations. *)
let evaluate (req : Protocol.request) : (Protocol.answer, string) result =
  match req.Protocol.op with
  | Protocol.Ping | Protocol.Shutdown -> Ok Protocol.Pong
  | Protocol.Omega_star -> (
      try Ok (Protocol.Value (Oracle.omega_star ~scale:req.Protocol.scale req.Protocol.demand))
      with Invalid_argument m | Failure m -> Error m)
  | Protocol.Lp_value radius -> (
      try
        Ok
          (Protocol.Value
             (Oracle.lp_value ~scale:req.Protocol.scale ~radius req.Protocol.demand))
      with Invalid_argument m | Failure m -> Error m)
  | Protocol.Witness -> (
      try Ok (Protocol.Tight_set (Oracle.witness ~scale:req.Protocol.scale req.Protocol.demand))
      with Invalid_argument m | Failure m -> Error m)
  | Protocol.Session_add _ | Protocol.Session_remove _ | Protocol.Session_query
    ->
      Error "session ops are stateful and have no stateless evaluation"

(* Per-request disposition after the probe phase. *)
type slot =
  | Control
  | Hit of Protocol.answer
  | Miss of { key : Qcache.key; compute : int }
      (** [compute] indexes the deduplicated computation array; several
          batch slots may share one index (coalescing). *)
  | Done of { d_answer : (Protocol.answer, string) result; d_cached : bool }
      (** session ops: fully handled during the probe phase, because the
          session state is control-domain confined and must never cross
          the [Pool] fan-out *)
  | Malformed of string

(* Session ops run entirely in the control domain.  Mutations patch the
   incremental oracle and the running digest row sum; queries close the
   row sum into a cache key over the live demand snapshot under the
   stateless [Omega_star] op, so a session query and a one-shot
   [Omega_star] request on the same demand share one cache entry. *)
let session_slot t (req : Protocol.request) =
  Metrics.incr m_session_ops;
  match req.Protocol.session with
  | None -> Malformed "session ops require a \"session\" name"
  | Some name -> (
      let live =
        match Hashtbl.find_opt t.sessions name with
        | Some s when Oracle.Session.scale s.ses <> req.Protocol.scale ->
            Error
              (Printf.sprintf "session %S runs at scale %d" name
                 (Oracle.Session.scale s.ses))
        | found -> Ok found
      in
      match (live, req.Protocol.op) with
      | Error m, _ -> Malformed m
      | Ok found, Protocol.Session_add p -> (
          let s =
            match found with
            | Some s -> s
            | None ->
                evict_for_insert t;
                let s =
                  {
                    ses =
                      Oracle.Session.create ~scale:req.Protocol.scale
                        (Demand_map.empty (Array.length p));
                    s_rowsum = 0;
                    s_touched = 0;
                  }
                in
                Hashtbl.replace t.sessions name s;
                s
          in
          touch t s;
          let dm = Oracle.Session.demand s.ses in
          let before = Demand_map.value dm p in
          match Oracle.Session.add_job s.ses p with
          | exception Invalid_argument m -> Malformed m
          | () ->
              s.s_rowsum <-
                Protocol.rowsum_update ~dim:(Demand_map.dim dm)
                  ~rowsum:s.s_rowsum p ~before ~after:(before + 1);
              Done { d_answer = Ok Protocol.Pong; d_cached = false })
      | Ok None, (Protocol.Session_remove _ | Protocol.Session_query) ->
          Malformed (Printf.sprintf "unknown session %S" name)
      | Ok (Some s), Protocol.Session_remove p -> (
          touch t s;
          let dm = Oracle.Session.demand s.ses in
          let before = Demand_map.value dm p in
          match Oracle.Session.remove_job s.ses p with
          | exception Invalid_argument m -> Malformed m
          | () ->
              s.s_rowsum <-
                Protocol.rowsum_update ~dim:(Demand_map.dim dm)
                  ~rowsum:s.s_rowsum p ~before ~after:(before - 1);
              Done { d_answer = Ok Protocol.Pong; d_cached = false })
      | Ok (Some s), Protocol.Session_query -> (
          touch t s;
          let dm = Oracle.Session.demand s.ses in
          let digest =
            Protocol.digest_of_rowsum ~dim:(Demand_map.dim dm)
              ~rowsum:s.s_rowsum
              ~support:(Demand_map.support_size dm)
          in
          let key =
            Qcache.key_with_digest ~digest ~op:Protocol.Omega_star
              ~scale:req.Protocol.scale dm
          in
          match Qcache.find t.cache key with
          | Some answer ->
              Metrics.incr m_hits;
              Done { d_answer = Ok answer; d_cached = true }
          | None ->
              Metrics.incr m_misses;
              Metrics.incr m_oracle_calls;
              let answer =
                try Ok (Protocol.Value (Oracle.Session.omega_star s.ses))
                with Invalid_argument m | Failure m -> Error m
              in
              (match answer with
              | Ok a -> Qcache.add t.cache key a
              | Error _ -> ());
              Done { d_answer = answer; d_cached = false })
      | Ok _, _ -> assert false (* session_slot is only called on session ops *))

let process_batch t (reqs : Protocol.request array) =
  let n = Array.length reqs in
  if n = 0 then [||]
  else begin
    Metrics.incr m_batches;
    Metrics.add m_requests n;
    Metrics.set_gauge m_batch_size (float_of_int n);
    let t0 = Metrics.now_ns () in
    (* Probe: cache lookups and in-batch coalescing, control domain only. *)
    let unique_rev = ref [] and n_unique = ref 0 in
    let slots =
      Array.map
        (fun (req : Protocol.request) ->
          match req.Protocol.op with
          | Protocol.Ping | Protocol.Shutdown -> Control
          | Protocol.Session_add _ | Protocol.Session_remove _
          | Protocol.Session_query ->
              session_slot t req
          | Protocol.Omega_star | Protocol.Lp_value _ | Protocol.Witness -> (
              match Qcache.key ~op:req.Protocol.op ~scale:req.Protocol.scale req.Protocol.demand with
              | exception Invalid_argument m -> Malformed m
              | key -> (
                  match Qcache.find t.cache key with
                  | Some answer ->
                      Metrics.incr m_hits;
                      Hit answer
                  | None -> (
                      match
                        List.find_opt
                          (fun (k, _, _) -> Qcache.equal k key)
                          !unique_rev
                      with
                      | Some (_, _, i) ->
                          (* Coalesced onto an in-flight computation: the
                             oracle runs once, so it counts as a hit. *)
                          Metrics.incr m_hits;
                          Miss { key; compute = i }
                      | None ->
                          Metrics.incr m_misses;
                          let i = !n_unique in
                          incr n_unique;
                          unique_rev := (key, req, i) :: !unique_rev;
                          Miss { key; compute = i }))))
        reqs
    in
    (* Compute: distinct misses fan out through the Domain pool. *)
    let uniques = Array.of_list (List.rev !unique_rev) in
    Metrics.add m_oracle_calls (Array.length uniques);
    let computed = Pool.map (fun (_, req, _) -> evaluate req) uniques in
    (* Publish: fill the cache, then answer in request order. *)
    Array.iteri
      (fun i (key, _, _) ->
        match computed.(i) with
        | Ok answer -> Qcache.add t.cache key answer
        | Error _ -> ())
      uniques;
    Metrics.set_gauge m_cache_size (float_of_int (Qcache.size t.cache));
    Metrics.set_gauge m_sessions (float_of_int (Hashtbl.length t.sessions));
    let responses =
      Array.map2
        (fun (req : Protocol.request) slot ->
          match slot with
          | Control ->
              { Protocol.r_id = req.Protocol.id; r_cached = false; r_result = Ok Protocol.Pong }
          | Hit answer ->
              { Protocol.r_id = req.Protocol.id; r_cached = true; r_result = Ok answer }
          | Miss { compute; _ } ->
              if Result.is_error computed.(compute) then Metrics.incr m_errors;
              { Protocol.r_id = req.Protocol.id; r_cached = false; r_result = computed.(compute) }
          | Done { d_answer; d_cached } ->
              if Result.is_error d_answer then Metrics.incr m_errors;
              { Protocol.r_id = req.Protocol.id; r_cached = d_cached; r_result = d_answer }
          | Malformed m ->
              Metrics.incr m_errors;
              { Protocol.r_id = req.Protocol.id; r_cached = false; r_result = Error m })
        reqs slots
    in
    let elapsed = Metrics.now_ns () -. t0 in
    Metrics.add_ns m_batch_span elapsed;
    (* Per-request service latency: every request in the batch waited for
       the whole batch, so each observes the batch wall time.  The
       observation count (one per request) is the deterministic part. *)
    Array.iter (fun _ -> Metrics.observe m_latency elapsed) reqs;
    responses
  end

let process t req =
  match process_batch t [| req |] with
  | [| r |] -> r
  | _ -> assert false
