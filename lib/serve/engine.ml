let m_requests = Metrics.counter "serve.requests"
let m_batches = Metrics.counter "serve.batches"
let m_hits = Metrics.counter "serve.cache_hits"
let m_misses = Metrics.counter "serve.cache_misses"
let m_oracle_calls = Metrics.counter "serve.oracle_calls"
let m_errors = Metrics.counter "serve.errors"
let m_cache_size = Metrics.gauge "serve.cache_size"
let m_batch_size = Metrics.gauge "serve.batch_size"
let m_batch_span = Metrics.timer "serve.batch"
let m_latency = Metrics.histogram "serve.request_latency_ns"

type t = { cache : Protocol.answer Qcache.t }

let create ?(cache_capacity = 4096) () =
  { cache = Qcache.create ~capacity:cache_capacity () }

let cache_size t = Qcache.size t.cache

let wants_shutdown (r : Protocol.request) =
  match r.Protocol.op with Protocol.Shutdown -> true | _ -> false

(* One oracle evaluation — the exact code path a one-shot CLI call takes,
   which is what makes cached and fresh answers interchangeable.  Runs
   inside the Pool fan-out, so failures are captured as values here and
   never tear down sibling computations. *)
let evaluate (req : Protocol.request) : (Protocol.answer, string) result =
  match req.Protocol.op with
  | Protocol.Ping | Protocol.Shutdown -> Ok Protocol.Pong
  | Protocol.Omega_star -> (
      try Ok (Protocol.Value (Oracle.omega_star ~scale:req.Protocol.scale req.Protocol.demand))
      with Invalid_argument m | Failure m -> Error m)
  | Protocol.Lp_value radius -> (
      try
        Ok
          (Protocol.Value
             (Oracle.lp_value ~scale:req.Protocol.scale ~radius req.Protocol.demand))
      with Invalid_argument m | Failure m -> Error m)
  | Protocol.Witness -> (
      try Ok (Protocol.Tight_set (Oracle.witness ~scale:req.Protocol.scale req.Protocol.demand))
      with Invalid_argument m | Failure m -> Error m)

(* Per-request disposition after the probe phase. *)
type slot =
  | Control
  | Hit of Protocol.answer
  | Miss of { key : Qcache.key; compute : int }
      (** [compute] indexes the deduplicated computation array; several
          batch slots may share one index (coalescing). *)
  | Malformed of string

let process_batch t (reqs : Protocol.request array) =
  let n = Array.length reqs in
  if n = 0 then [||]
  else begin
    Metrics.incr m_batches;
    Metrics.add m_requests n;
    Metrics.set_gauge m_batch_size (float_of_int n);
    let t0 = Metrics.now_ns () in
    (* Probe: cache lookups and in-batch coalescing, control domain only. *)
    let unique_rev = ref [] and n_unique = ref 0 in
    let slots =
      Array.map
        (fun (req : Protocol.request) ->
          match req.Protocol.op with
          | Protocol.Ping | Protocol.Shutdown -> Control
          | Protocol.Omega_star | Protocol.Lp_value _ | Protocol.Witness -> (
              match Qcache.key ~op:req.Protocol.op ~scale:req.Protocol.scale req.Protocol.demand with
              | exception Invalid_argument m -> Malformed m
              | key -> (
                  match Qcache.find t.cache key with
                  | Some answer ->
                      Metrics.incr m_hits;
                      Hit answer
                  | None -> (
                      match
                        List.find_opt
                          (fun (k, _, _) -> Qcache.equal k key)
                          !unique_rev
                      with
                      | Some (_, _, i) ->
                          (* Coalesced onto an in-flight computation: the
                             oracle runs once, so it counts as a hit. *)
                          Metrics.incr m_hits;
                          Miss { key; compute = i }
                      | None ->
                          Metrics.incr m_misses;
                          let i = !n_unique in
                          incr n_unique;
                          unique_rev := (key, req, i) :: !unique_rev;
                          Miss { key; compute = i }))))
        reqs
    in
    (* Compute: distinct misses fan out through the Domain pool. *)
    let uniques = Array.of_list (List.rev !unique_rev) in
    Metrics.add m_oracle_calls (Array.length uniques);
    let computed = Pool.map (fun (_, req, _) -> evaluate req) uniques in
    (* Publish: fill the cache, then answer in request order. *)
    Array.iteri
      (fun i (key, _, _) ->
        match computed.(i) with
        | Ok answer -> Qcache.add t.cache key answer
        | Error _ -> ())
      uniques;
    Metrics.set_gauge m_cache_size (float_of_int (Qcache.size t.cache));
    let responses =
      Array.map2
        (fun (req : Protocol.request) slot ->
          match slot with
          | Control ->
              { Protocol.r_id = req.Protocol.id; r_cached = false; r_result = Ok Protocol.Pong }
          | Hit answer ->
              { Protocol.r_id = req.Protocol.id; r_cached = true; r_result = Ok answer }
          | Miss { compute; _ } ->
              if Result.is_error computed.(compute) then Metrics.incr m_errors;
              { Protocol.r_id = req.Protocol.id; r_cached = false; r_result = computed.(compute) }
          | Malformed m ->
              Metrics.incr m_errors;
              { Protocol.r_id = req.Protocol.id; r_cached = false; r_result = Error m })
        reqs slots
    in
    let elapsed = Metrics.now_ns () -. t0 in
    Metrics.add_ns m_batch_span elapsed;
    (* Per-request service latency: every request in the batch waited for
       the whole batch, so each observes the batch wall time.  The
       observation count (one per request) is the deterministic part. *)
    Array.iter (fun _ -> Metrics.observe m_latency elapsed) reqs;
    responses
  end

let process t req =
  match process_batch t [| req |] with
  | [| r |] -> r
  | _ -> assert false
