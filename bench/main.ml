(* Benchmark harness: one experiment per reproduced artifact of the thesis
   (see DESIGN.md §6 and EXPERIMENTS.md).  Run with no arguments for all
   tables, with experiment ids ("e1" .. "e17") for a subset, or with
   "--bechamel" to add the micro-benchmark timing suite.

   Machine-readable mode: "--json FILE" runs the regression scenario
   suite instead of the tables and writes a BENCH_<rev>.json report
   (per-scenario wall time + Metrics snapshot; schema in
   docs/OBSERVABILITY.md).  "--quick" shrinks both the scenario sizes and
   the bechamel quota for CI smoke runs; "--revision REV" stamps the
   report (defaults to $GITHUB_SHA, then "dev"). *)

let fl = Table.cell_f
let it = Table.cell_i

let section title =
  Printf.printf "\n=== %s ===\n\n%!" title

(* ------------------------------------------------------------------ *)
(* E1 — Figure 2.1(a) / §2.1.1: uniform demand on a square.            *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section
    "E1  Square demand (Fig 2.1a): W1 solves W(2W+a)^2 = d·a^2; W1 -> d as a \
     grows";
  let t =
    Table.create
      ~title:"paper closed form vs. lattice ω_T vs. constructive upper bound"
      [
        ("a", Table.Right);
        ("d", Table.Right);
        ("W1 (paper)", Table.Right);
        ("omega_T (square)", Table.Right);
        ("planner W (upper)", Table.Right);
        ("W1/d", Table.Right);
      ]
  in
  List.iter
    (fun d ->
      List.iter
        (fun a ->
          let w1 = Omega.example_square_w1 ~a ~d in
          let omega = Omega.of_cube ~dim:2 ~side:a ~total:(d * a * a) in
          let dm = Workload.demand (Workload.square ~side:a ~per_point:d ()) in
          let plan = Planner.plan dm in
          Table.add_row t
            [
              it a;
              it d;
              fl w1;
              fl omega;
              it (Planner.max_energy plan);
              fl (w1 /. float_of_int d);
            ])
        [ 2; 4; 8; 16; 32 ];
      Table.add_rule t)
    [ 4; 16; 64 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E2 — Figure 2.1(b) / §2.1.2: uniform demand on a line.               *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section
    "E2  Line demand (Fig 2.1b): W2 solves W(2W+1) = d; the 2·W2 strategy of \
     Fig 2.2 serves everything";
  let t =
    Table.create
      [
        ("len", Table.Right);
        ("d", Table.Right);
        ("W2 (paper)", Table.Right);
        ("omega_T (line)", Table.Right);
        ("Fig 2.2 strategy W", Table.Right);
        ("strategy/W2", Table.Right);
        ("generic planner W", Table.Right);
      ]
  in
  List.iter
    (fun d ->
      List.iter
        (fun len ->
          let w2 = Omega.example_line_w2 ~d in
          let points = List.init len (fun i -> [| i; 0 |]) in
          let omega = Omega.of_points points ~total:(len * d) in
          let dm = Workload.demand (Workload.line ~len ~per_point:d) in
          let measured = Planner.max_energy (Planner.plan dm) in
          let bespoke = (Fig21.line ~len ~d).Fig21.capacity_used in
          Table.add_row t
            [
              it len;
              it d;
              fl w2;
              fl omega;
              it bespoke;
              fl (float_of_int bespoke /. w2);
              it measured;
            ])
        [ 8; 32; 128 ];
      Table.add_rule t)
    [ 10; 100; 1000 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E3 — Figure 2.1(c) / §2.1.3: all demand at one point.                *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section
    "E3  Point demand (Fig 2.1c): W3 solves W(2W+1)^2 = d; W ~ (d/4)^(1/3)";
  let t =
    Table.create
      [
        ("d", Table.Right);
        ("W3 (paper)", Table.Right);
        ("omega_T (point)", Table.Right);
        ("exact Woff", Table.Right);
        ("Fig 2.3 strategy W", Table.Right);
        ("strategy/W3", Table.Right);
        ("generic planner W", Table.Right);
      ]
  in
  List.iter
    (fun d ->
      let w3 = Omega.example_point_w3 ~d in
      let omega = Omega.of_points [ [| 0; 0 |] ] ~total:d in
      let dm = Demand_map.of_alist 2 [ ([| 0; 0 |], d) ] in
      let measured = Planner.max_energy (Planner.plan dm) in
      let bespoke = (Fig21.point ~d).Fig21.capacity_used in
      Table.add_row t
        [
          it d;
          fl w3;
          fl omega;
          fl (Exact.point_capacity ~dim:2 ~demand:d);
          it bespoke;
          fl (float_of_int bespoke /. w3);
          it measured;
        ])
    [ 10; 100; 1000; 10_000; 100_000; 1_000_000 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Shared random instance pool for E4/E5/E10.                           *)
(* ------------------------------------------------------------------ *)

let int_pow_e4 base e =
  let v = ref 1 in
  for _ = 1 to e do
    v := !v * base
  done;
  !v

let instance_pool () =
  let rng = Rng.create 20080803 in
  let box = Box.make ~lo:[| 0; 0 |] ~hi:[| 7; 7 |] in
  [
    ("uniform-60", Workload.uniform ~rng ~box ~jobs:60);
    ("uniform-200", Workload.uniform ~rng ~box ~jobs:200);
    ( "clustered",
      Workload.clustered ~rng ~box ~clusters:3 ~jobs_per_cluster:60 ~spread:1 );
    ("zipf", Workload.zipf_sites ~rng ~box ~sites:10 ~jobs:150 ~exponent:1.4);
    ("square4x30", Workload.square ~side:4 ~per_point:30 ());
    ("line8x20", Workload.line ~len:8 ~per_point:20);
    ("point-500", Workload.point ~total:500 ());
  ]

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 1.4.1: ω* <= Woff <= (2·3^l+l)·ω*.                      *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section
    "E4  Theorem 1.4.1 sandwich: ω* (exact LP 2.8) <= measured Woff <= 20·ω* \
     (l=2)";
  let t =
    Table.create
      [
        ("workload", Table.Left);
        ("omega* (LP)", Table.Right);
        ("omega_c (cubes)", Table.Right);
        ("planner W", Table.Right);
        ("W/omega*", Table.Right);
        ("bound 2*3^l+l", Table.Right);
      ]
  in
  let ratios = ref [] in
  List.iter
    (fun (name, w) ->
      let dm = Workload.demand w in
      let star = Oracle.omega_star dm in
      let wc = Omega.cube_fixpoint dm in
      let measured = Planner.max_energy (Planner.plan dm) in
      let ratio = float_of_int measured /. star in
      ratios := ratio :: !ratios;
      Table.add_row t
        [ name; fl star; fl wc; it measured; fl ratio; fl 20.0 ])
    (instance_pool ());
  Table.add_rule t;
  (* Dimension generality: the same sandwich in 1-D and 3-D. *)
  List.iter
    (fun (name, dm, dim) ->
      let star = Oracle.omega_star dm in
      let wc = Omega.cube_fixpoint dm in
      let measured = Planner.max_energy (Planner.plan dm) in
      let ratio = float_of_int measured /. star in
      ratios := ratio :: !ratios;
      Table.add_row t
        [
          name; fl star; fl wc; it measured; fl ratio;
          fl (float_of_int ((2 * int_pow_e4 3 dim) + dim));
        ])
    [
      ("1d-hot-segment", Demand_map.of_alist 1 [ ([| 0 |], 150); ([| 6 |], 40) ], 1);
      ( "3d-two-bursts",
        Demand_map.of_alist 3 [ ([| 0; 0; 0 |], 200); ([| 2; 1; 0 |], 60) ],
        3 );
    ];
  Table.print t;
  let rs = Array.of_list !ratios in
  Printf.printf
    "ratio W/omega*: min %.3f, geometric mean %.3f, max %.3f (theorem allows \
     20 + O(1) slack)\n%!"
    (fst (Stats.min_max rs))
    (Stats.geometric_mean rs)
    (snd (Stats.min_max rs))

(* ------------------------------------------------------------------ *)
(* E5 — Algorithm 1 approximation quality (§2.3).                       *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section
    "E5  Algorithm 1 quality: ω* <= est <= 2(2·3^l+l)·ω* = 40·ω* (l=2)";
  let t =
    Table.create
      [
        ("workload", Table.Left);
        ("omega* (LP)", Table.Right);
        ("alg1 estimate", Table.Right);
        ("est/omega*", Table.Right);
        ("proven cap", Table.Right);
        ("cube side w", Table.Left);
      ]
  in
  List.iter
    (fun (name, w) ->
      let dm = Workload.demand w in
      let star = Oracle.omega_star dm in
      let r = Alg1.run ~dim:2 ~n:16 dm in
      Table.add_row t
        [
          name;
          fl star;
          fl r.Alg1.value;
          fl (r.Alg1.value /. star);
          fl (Alg1.approximation_factor 2);
          (match r.Alg1.cube_side with
          | None -> "special-case"
          | Some s -> string_of_int s);
        ])
    (instance_pool ());
  Table.print t

(* ------------------------------------------------------------------ *)
(* E6 — Algorithm 1 linear running time (§2.3 analysis).                *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6  Algorithm 1 is linear time: cell operations ~ n^2 (l=2)";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("cells n^2", Table.Right);
        ("cell ops", Table.Right);
        ("ops/cell", Table.Right);
        ("wall time (ms)", Table.Right);
      ]
  in
  let series = ref [] in
  List.iter
    (fun n ->
      let dm =
        Demand_map.of_alist 2
          [ ([| n / 2; n / 2 |], 5000); ([| n / 4; n / 4 |], 1000) ]
      in
      let t0 = Sys.time () in
      let r = Alg1.run ~dim:2 ~n dm in
      let ms = (Sys.time () -. t0) *. 1000.0 in
      series := (float_of_int (n * n), float_of_int r.Alg1.cell_ops) :: !series;
      Table.add_row t
        [
          it n;
          it (n * n);
          it r.Alg1.cell_ops;
          fl (float_of_int r.Alg1.cell_ops /. float_of_int (n * n));
          fl ms;
        ])
    [ 64; 128; 256; 512; 1024 ];
  Table.print t;
  let slope = Stats.loglog_slope (Array.of_list !series) in
  Printf.printf
    "log-log slope of ops vs cells: %.3f (1.0 = exactly linear in the grid \
     size)\n%!"
    slope

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 1.4.2: Won = Θ(Woff).                                  *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section
    "E7  Online strategy (Ch. 3): ω* <= measured min online W <= (4·3^l+l)ωc; \
     omniscient greedy for contrast";
  let t =
    Table.create
      [
        ("workload", Table.Left);
        ("omega* (LP)", Table.Right);
        ("online W (measured)", Table.Right);
        ("theorem capacity", Table.Right);
        ("greedy W (baseline)", Table.Right);
        ("online/omega*", Table.Right);
      ]
  in
  List.iter
    (fun (name, w) ->
      let dm = Workload.demand w in
      let star = Oracle.omega_star dm in
      let omega_c, side = Omega.cube_fixpoint_with_side dm in
      let measured = Online.min_feasible_capacity ~side w in
      let bound = Online.capacity_bound ~dim:2 omega_c +. 4.0 in
      let greedy = Greedy_online.min_feasible_capacity ~pad:side w in
      Table.add_row t
        [ name; fl star; fl measured; fl bound; fl greedy; fl (measured /. star) ])
    [
      ("point-300", Workload.point ~total:300 ());
      ("line8x20", Workload.line ~len:8 ~per_point:20);
      ("square4x30", Workload.square ~side:4 ~per_point:30 ());
      ( "uniform-200",
        Workload.uniform
          ~rng:(Rng.create 7)
          ~box:(Box.make ~lo:[| 0; 0 |] ~hi:[| 5; 5 |])
          ~jobs:200 );
      ( "clustered",
        Workload.clustered
          ~rng:(Rng.create 8)
          ~box:(Box.make ~lo:[| 0; 0 |] ~hi:[| 5; 5 |])
          ~clusters:2 ~jobs_per_cluster:80 ~spread:1 );
    ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E8 — protocol cost and failure scenarios (§3.2).                     *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section
    "E8  Diffusing-computation cost per scenario (§3.2.5): messages, \
     computations, replacements";
  let t =
    Table.create
      [
        ("jobs", Table.Right);
        ("scenario", Table.Left);
        ("messages", Table.Right);
        ("computations", Table.Right);
        ("replacements", Table.Right);
        ("msg/replacement", Table.Right);
        ("served", Table.Right);
      ]
  in
  List.iter
    (fun total ->
      let w = Workload.point ~total () in
      let base = Online.recommended w in
      let scenarios =
        [
          ("1: normal", base);
          ( "2: silent initiators",
            {
              base with
              Online.faults =
                {
                  Online.no_faults with
                  Online.silent_initiators =
                    List.init (Online.fleet_size base w) (fun i -> i);
                };
            } );
          ( "chaos: drop 0.2 dup 0.1",
            { base with Online.chaos = Des.faults ~drop_p:0.2 ~dup_p:0.1 () } );
          ( "3: two deaths",
            {
              base with
              Online.capacity = base.Online.capacity +. 8.0;
              faults =
                { Online.no_faults with Online.deaths = [ (total / 4, 0); (total / 2, 3) ] };
            } );
        ]
      in
      List.iter
        (fun (name, cfg) ->
          let o = Online.run cfg w in
          let per_repl =
            if o.Online.replacements = 0 then 0.0
            else float_of_int o.Online.messages /. float_of_int o.Online.replacements
          in
          Table.add_row t
            [
              it total;
              name;
              it o.Online.messages;
              it o.Online.computations;
              it o.Online.replacements;
              fl per_repl;
              it o.Online.served;
            ])
        scenarios;
      Table.add_rule t)
    [ 200; 400; 800 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E9 — Figure 4.1: broken vehicles, the LP bound is not tight.         *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section
    "E9  Broken vehicles (Fig 4.1): LP bound 2·r1 vs actual requirement \
     4·r1^2 + r1 — the gap grows like r1";
  let t =
    Table.create
      [
        ("r1", Table.Right);
        ("LP bound (Thm 4.1.1)", Table.Right);
        ("flow LP (check)", Table.Right);
        ("shuttle W needed", Table.Right);
        ("gap ratio", Table.Right);
      ]
  in
  List.iter
    (fun r1 ->
      let fig = Breakdown.Figure41.make ~r1 ~r2:((4 * r1 * r1) + r1 + 1) in
      let lp = Breakdown.Figure41.lp_bound fig in
      let flow_check =
        if r1 <= 4 then
          Table.cell_f
            (Breakdown.lp_lower_bound
               ~longevity:(Breakdown.Figure41.longevity fig)
               (Breakdown.Figure41.demand fig))
        else "(analytic)"
      in
      let req = Breakdown.Figure41.shuttle_requirement fig in
      Table.add_row t
        [ it r1; fl lp; flow_check; it req; fl (float_of_int req /. lp) ])
    [ 2; 4; 8; 16; 32; 64 ];
  Table.print t;
  print_endline
    "(unbounded ratio: with breakdowns the job ARRIVAL ORDER matters and the\n\
    \ transportation relaxation of Theorem 4.1.1 cannot see it — §4.2)"

(* ------------------------------------------------------------------ *)
(* E10 — Theorem 5.1.1: Wtrans-off = Θ(Woff).                           *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section
    "E10  Energy transfers with C = W (Thm 5.1.1): decay lower bound and Woff \
     stay within a constant factor";
  let t =
    Table.create
      [
        ("workload", Table.Left);
        ("transfer lower bound", Table.Right);
        ("omega* (LP)", Table.Right);
        ("planner W (upper)", Table.Right);
        ("upper/lower", Table.Right);
      ]
  in
  List.iter
    (fun (name, w) ->
      let dm = Workload.demand w in
      let lb = Transfer.lower_bound dm in
      let star = Oracle.omega_star dm in
      let upper = float_of_int (Planner.max_energy (Planner.plan dm)) in
      Table.add_row t
        [ name; fl lb; fl star; fl upper; fl (if lb > 0.0 then upper /. lb else nan) ])
    (instance_pool ());
  Table.print t

(* ------------------------------------------------------------------ *)
(* E11 — §5.2.1: the collector with unbounded tanks.                    *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section
    "E11  High-capacity tanks (§5.2.1): collector capacity = Θ(avg d), both \
     accountings; no-transfer ω* for contrast";
  let t =
    Table.create
      [
        ("n", Table.Right);
        ("d/pt", Table.Right);
        ("fixed a1=1 measured", Table.Right);
        ("fixed closed form", Table.Right);
        ("var a2=.01 measured", Table.Right);
        ("var closed form", Table.Right);
        ("no-transfer omega*", Table.Right);
      ]
  in
  List.iter
    (fun (n, d) ->
      let demand _ = d in
      let fixed_m = Transfer.Segment.min_capacity ~n ~demand (Transfer.Fixed 1.0) in
      let fixed_f =
        Transfer.Segment.closed_form ~n ~total:(n * d) ~cost:(Transfer.Fixed 1.0)
      in
      let var_m =
        Transfer.Segment.min_capacity ~n ~demand (Transfer.Variable 0.01)
      in
      let var_f =
        Transfer.Segment.closed_form ~n ~total:(n * d) ~cost:(Transfer.Variable 0.01)
      in
      let star = Transfer.Segment.no_transfer_capacity ~n ~demand in
      Table.add_row t
        [ it n; it d; fl fixed_m; fl fixed_f; fl var_m; fl var_f; fl star ])
    [ (8, 5); (16, 5); (32, 5); (64, 5); (128, 5); (256, 5); (512, 5); (64, 50) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E12 — central-depot classics vs dispersed CMVRP (§1.1 review).       *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section
    "E12  Central depot vs dispersed depots: per-vehicle energy as the service \
     area grows (constant local density)";
  let t =
    Table.create
      [
        ("region", Table.Left);
        ("total demand", Table.Right);
        ("CMVRP planner W", Table.Right);
        ("central W (same fleet)", Table.Right);
        ("CW max route energy", Table.Right);
        ("CW routes", Table.Right);
      ]
  in
  List.iter
    (fun k ->
      (* k x k hot spots of demand 40, spaced 10 apart. *)
      let spots =
        List.concat_map
          (fun i -> List.init k (fun j -> ([| 10 * i; 10 * j |], 40)))
          (List.init k (fun i -> i))
      in
      let dm = Demand_map.of_alist 2 spots in
      let planner_w = Planner.max_energy (Planner.plan dm) in
      let fleet =
        match Demand_map.bounding_box dm with
        | None -> 1
        | Some b -> Box.volume (Box.make ~lo:b.Box.lo ~hi:b.Box.hi)
      in
      let depot = Cvrp.centroid dm in
      let central =
        match Central.min_capacity dm ~depot ~fleet with
        | None -> "-"
        | Some w -> it w
      in
      let cw = Cvrp.clarke_wright ~dm ~depot ~capacity:80 in
      Table.add_row t
        [
          Printf.sprintf "%dx%d spots (side %d)" k k ((10 * (k - 1)) + 1);
          it (Demand_map.total dm);
          it planner_w;
          central;
          it (Cvrp.max_route_energy ~dm cw);
          it (List.length cw.Cvrp.routes);
        ])
    [ 1; 2; 3; 4; 6 ];
  Table.print t;
  print_endline
    "(dispersed CMVRP capacity stays flat while any single-depot scheme pays\n\
    \ the growing travel radius — the thesis's §1.2 motivation)"

(* ------------------------------------------------------------------ *)
(* E13 — how tight is Theorem 1.4.1 really?  Local search + exact.      *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section
    "E13  Offline tightness: ω* <= [exact when known] <= local search <= \
     constructive planner (all are Woff bounds)";
  let t =
    Table.create
      [
        ("workload", Table.Left);
        ("omega* (LP)", Table.Right);
        ("exact Woff", Table.Left);
        ("local search W", Table.Right);
        ("planner W", Table.Right);
        ("LS/omega*", Table.Right);
      ]
  in
  let point_cases = [ ("point-100", 100); ("point-500", 500); ("point-2000", 2000) ] in
  List.iter
    (fun (name, d) ->
      let dm = Demand_map.of_alist 2 [ ([| 0; 0 |], d) ] in
      let star = Oracle.omega_star dm in
      let exact = Exact.point_capacity ~dim:2 ~demand:d in
      let planner = Planner.max_energy (Planner.plan dm) in
      let ls = Localsearch.peak_energy (Localsearch.solve ~rounds:800 dm) in
      Table.add_row t
        [
          name;
          fl star;
          fl exact;
          it ls;
          it planner;
          fl (float_of_int ls /. star);
        ])
    point_cases;
  Table.add_rule t;
  List.iter
    (fun (name, w) ->
      let dm = Workload.demand w in
      let star = Oracle.omega_star dm in
      let planner = Planner.max_energy (Planner.plan dm) in
      let ls = Localsearch.peak_energy (Localsearch.solve ~rounds:800 dm) in
      Table.add_row t
        [ name; fl star; "(unknown)"; it ls; it planner; fl (float_of_int ls /. star) ])
    (instance_pool ());
  Table.print t;
  print_endline
    "(local search closes most of the constructive slack: the paper's\n\
    \ 2·3^l + l constant is, as §2.2 remarks, 'probably pessimistic')"

(* ------------------------------------------------------------------ *)
(* E14 — general graphs (the Chapter 6 open direction).                 *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section
    "E14  Beyond the grid (Ch. 6 future work): ω* generalizes verbatim; a \
     ball-cover heuristic stands in for the cube partition";
  let t =
    Table.create
      [
        ("graph", Table.Left);
        ("vertices", Table.Right);
        ("total demand", Table.Right);
        ("omega* (graph LP)", Table.Right);
        ("ball-cover W", Table.Right);
        ("W/omega*", Table.Right);
      ]
  in
  let row name g demand =
    let inst = Gcmvrp.create g ~demand in
    let star = Gcmvrp.omega_star inst in
    let plan = Gcmvrp.plan_greedy inst in
    (match Gcmvrp.validate_plan inst plan with
    | Ok () -> ()
    | Error msg -> failwith ("E14: invalid plan: " ^ msg));
    let peak = Gcmvrp.plan_max_energy inst plan in
    Table.add_row t
      [
        name;
        it (Gcmvrp.n_vertices inst);
        it (Gcmvrp.total_demand inst);
        fl star;
        it peak;
        fl (float_of_int peak /. star);
      ]
  in
  (* Path graph (provably = 1-D grid). *)
  let path_n = 41 in
  let path_demand = Array.make path_n 0 in
  path_demand.(20) <- 120;
  row "path-41 (hot middle)" (Gcmvrp.line_graph path_n) path_demand;
  (* Star: one heavy center. *)
  let star_n = 25 in
  let star_g = Digraph.create star_n in
  for leaf = 1 to star_n - 1 do
    Digraph.add_undirected star_g 0 leaf ~weight:1
  done;
  let star_demand = Array.make star_n 0 in
  star_demand.(0) <- 200;
  row "star-25 (heavy hub)" star_g star_demand;
  (* Binary tree. *)
  let tree_n = 31 in
  let tree_g = Digraph.create tree_n in
  for v = 1 to tree_n - 1 do
    Digraph.add_undirected tree_g v ((v - 1) / 2) ~weight:1
  done;
  let tree_demand = Array.init tree_n (fun v -> if v >= 15 then 10 else 0) in
  row "tree-31 (leafy demand)" tree_g tree_demand;
  (* Random geometric graphs of growing size. *)
  List.iter
    (fun n ->
      let rng = Rng.create (1000 + n) in
      let g, _ =
        Gcmvrp.random_geometric ~rng ~n
          ~box:(Box.make ~lo:[| 0; 0 |] ~hi:[| 14; 14 |])
          ~radius:9
      in
      let demand = Array.init n (fun i -> if i mod 4 = 0 then 5 + Rng.int rng 25 else 0) in
      row (Printf.sprintf "geometric-%d" n) g demand)
    [ 20; 40; 60 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E15 — ablations of the online design choices.                        *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section
    "E15  Ablations: cube side and communication radius of the online \
     strategy (point-400 workload)";
  let w = Workload.point ~total:400 () in
  let dm = Workload.demand w in
  let omega_c, side_star = Omega.cube_fixpoint_with_side dm in
  ignore omega_c;
  let t =
    Table.create
      [
        ("cube side", Table.Left);
        ("min workable W", Table.Right);
        ("messages at theorem W", Table.Right);
        ("replacements", Table.Right);
      ]
  in
  List.iter
    (fun side ->
      if side >= 1 then begin
        let min_w = Online.min_feasible_capacity ~side w in
        let cfg =
          { (Online.recommended w) with Online.side; capacity = min_w +. 2.0 }
        in
        let o = Online.run cfg w in
        let label =
          if side = side_star then Printf.sprintf "%d (= ceil(omega_c))" side
          else string_of_int side
        in
        Table.add_row t
          [ label; fl min_w; it o.Online.messages; it o.Online.replacements ]
      end)
    [ max 1 (side_star / 2); side_star; 2 * side_star; 4 * side_star ];
  Table.print t;
  let t2 =
    Table.create
      [
        ("comm radius", Table.Right);
        ("messages", Table.Right);
        ("computations", Table.Right);
        ("served", Table.Right);
      ]
  in
  List.iter
    (fun comm_radius ->
      let cfg = { (Online.recommended w) with Online.comm_radius } in
      let o = Online.run cfg w in
      Table.add_row t2
        [ it comm_radius; it o.Online.messages; it o.Online.computations; it o.Online.served ])
    [ 1; 2; 3; 4 ];
  Table.print t2;
  print_endline
    "(a trade-off, not a free lunch: larger cubes put more idle vehicles in\n\
    \ reach -- lower workable W -- but the diffusing flood covers the whole\n\
    \ cube, so the message bill explodes; the theorem's ωc side is where the\n\
    \ capacity guarantee is actually proven.  Wider comm radii only add\n\
    \ redundant query edges.)"

(* ------------------------------------------------------------------ *)
(* E16 — the collector generalized to 2-D (Ch. 5 open question).        *)
(* ------------------------------------------------------------------ *)

let e16 () =
  section
    "E16  2-D collector with C = infinity (extension of §5.2.1): where big \
     tanks still help on the plane";
  let t =
    Table.create
      [
        ("region", Table.Left);
        ("hot demand D", Table.Right);
        ("avg demand", Table.Right);
        ("collector W (fixed a1=1)", Table.Right);
        ("closed form", Table.Right);
        ("no-transfer omega*", Table.Right);
        ("winner", Table.Left);
      ]
  in
  (* One hot point of demand D = 2·side^2 in an otherwise empty side^2
     field: the collector needs ~avg d + 4, the transfer-free fleet
     ~(D/4)^(1/3).  1-D neighborhoods grow linearly so §5.2.1's collector
     always wins there; 2-D neighborhoods grow quadratically, so it only
     wins once the field is large relative to D^(2/3) — a genuine
     difference the segment example cannot show. *)
  List.iter
    (fun side ->
      let d = 2 * side * side in
      let dm =
        Demand_map.of_alist 2 [ ([| side / 2; side / 2 |], d) ]
      in
      (* Anchor both corners with a unit demand so the collector's window
         (the demand bounding box) spans the whole field. *)
      let dm_window =
        Demand_map.add
          (Demand_map.add dm [| 0; 0 |] 1)
          [| side - 1; side - 1 |] 1
      in
      let vol = side * side in
      let measured = Grid_collector.min_capacity dm_window (Transfer.Fixed 1.0) in
      let formula = Grid_collector.closed_form dm_window ~cost:(Transfer.Fixed 1.0) in
      let star = Oracle.omega_star dm_window in
      Table.add_row t
        [
          Printf.sprintf "%dx%d field" side side;
          it d;
          fl (float_of_int (Demand_map.total dm_window) /. float_of_int vol);
          fl measured;
          fl formula;
          fl star;
          (if measured < star then "collector" else "no-transfer");
        ])
    [ 6; 10; 16; 24; 32 ];
  Table.print t;
  print_endline
    "(the collector overtakes once the field volume outgrows D^(2/3): with\n\
    \ quadratic 2-D neighborhoods the transfer-free fleet already absorbs\n\
    \ hot spots at cube-root capacity, so big tanks pay off later than on\n\
    \ the paper's segment -- an answer to the Ch. 5 open question)"

(* ------------------------------------------------------------------ *)
(* E17 — the online strategy on general graphs (extension).             *)
(* ------------------------------------------------------------------ *)

let e17 () =
  section
    "E17  Online strategy beyond the grid: matching-based pairs + cluster \
     diffusing computations; measured min capacity vs graph ω*";
  let t =
    Table.create
      [
        ("graph", Table.Left);
        ("jobs", Table.Right);
        ("omega* (graph)", Table.Right);
        ("online W (measured)", Table.Right);
        ("W/omega*", Table.Right);
        ("messages", Table.Right);
        ("replacements", Table.Right);
      ]
  in
  let row name inst jobs =
    let star = Gcmvrp.omega_star inst in
    let measured = Gonline.min_feasible_capacity inst ~jobs in
    let o =
      Gonline.run inst ~jobs { Gonline.capacity = measured +. 2.0; seed = 0 }
    in
    Table.add_row t
      [
        name;
        it (Array.length jobs);
        fl star;
        fl measured;
        fl (measured /. star);
        it o.Gonline.messages;
        it o.Gonline.replacements;
      ]
  in
  (* Path with a hot middle. *)
  let path_n = 25 in
  let path_demand = Array.make path_n 0 in
  path_demand.(12) <- 100;
  row "path-25 (hot middle)"
    (Gcmvrp.create (Gcmvrp.line_graph path_n) ~demand:path_demand)
    (Array.make 100 12);
  (* Star hub. *)
  let star_n = 17 in
  let star_g = Digraph.create star_n in
  for leaf = 1 to star_n - 1 do
    Digraph.add_undirected star_g 0 leaf ~weight:1
  done;
  let star_demand = Array.make star_n 0 in
  star_demand.(0) <- 120;
  row "star-17 (hub burst)"
    (Gcmvrp.create star_g ~demand:star_demand)
    (Array.make 120 0);
  (* Random geometric graphs. *)
  List.iter
    (fun n ->
      let rng = Rng.create (3000 + n) in
      let g, _ =
        Gcmvrp.random_geometric ~rng ~n
          ~box:(Box.make ~lo:[| 0; 0 |] ~hi:[| 9; 9 |])
          ~radius:7
      in
      let demand = Array.init n (fun i -> if i mod 5 = 0 then 10 + Rng.int rng 20 else 0) in
      let inst = Gcmvrp.create g ~demand in
      let sites = ref [] in
      Array.iteri (fun v d -> for _ = 1 to d do sites := v :: !sites done) demand;
      row (Printf.sprintf "geometric-%d" n) inst (Array.of_list !sites))
    [ 20; 35 ];
  Table.print t;
  print_endline
    "(the measured capacity stays a small constant times the graph ω* on\n\
    \ every topology tried -- empirical support for extending Thm 1.4.2\n\
    \ beyond the grid)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_suite ~quick () =
  section
    (if quick then "Bechamel micro-benchmarks (ns per run, OLS fit; quick quota)"
     else "Bechamel micro-benchmarks (ns per run, OLS fit)");
  let open Bechamel in
  let open Toolkit in
  let dm_mid =
    Workload.demand
      (Workload.uniform
         ~rng:(Rng.create 99)
         ~box:(Box.make ~lo:[| 0; 0 |] ~hi:[| 7; 7 |])
         ~jobs:200)
  in
  let alg1_dm = Demand_map.of_alist 2 [ ([| 20; 20 |], 5000) ] in
  let flow_net () =
    let rng = Rng.create 3 in
    let net = Maxflow.create 64 in
    for _ = 1 to 400 do
      let u = Rng.int rng 64 and v = Rng.int rng 64 in
      if u <> v then ignore (Maxflow.add_edge net ~src:u ~dst:v ~cap:(Rng.int rng 20))
    done;
    net
  in
  let online_w = Workload.point ~total:100 () in
  let online_cfg = Online.recommended online_w in
  let depot = Cvrp.centroid dm_mid in
  let tests =
    Test.make_grouped ~name:"cmvrp"
      [
        Test.make ~name:"omega_point_1e6" (Staged.stage (fun () ->
            ignore (Omega.of_points [ [| 0; 0 |] ] ~total:1_000_000)));
        Test.make ~name:"omega_cube_scan_200jobs" (Staged.stage (fun () ->
            ignore (Omega.max_over_cubes dm_mid)));
        Test.make ~name:"cube_fixpoint_200jobs" (Staged.stage (fun () ->
            ignore (Omega.cube_fixpoint dm_mid)));
        Test.make ~name:"alg1_n256" (Staged.stage (fun () ->
            ignore (Alg1.run ~dim:2 ~n:256 alg1_dm)));
        Test.make ~name:"dinic_64v_400e" (Staged.stage (fun () ->
            let net = flow_net () in
            ignore (Maxflow.max_flow net ~source:0 ~sink:63)));
        (* Arena kernels introduced by the incremental-oracle work: the
           warm-started uniform-supply search, frontier-based shell
           dilation vs re-dilating from scratch, and direct L1-sphere
           enumeration.  Future PRs track these individually. *)
        Test.make ~name:"min_uniform_supply_r2_200jobs" (Staged.stage (fun () ->
            let inst = Oracle.build_instance dm_mid ~radius:2 in
            ignore (Transport.min_uniform_supply inst ~scale:720720)));
        Test.make ~name:"parametric_breakpoints_r2_200jobs" (Staged.stage (fun () ->
            let inst = Oracle.build_instance dm_mid ~radius:2 in
            ignore (Transport.breakpoints inst ~scale:720720)));
        Test.make ~name:"dilate_shells_r6_200jobs" (Staged.stage (fun () ->
            ignore (Ball.dilate_shells (Demand_map.support dm_mid) ~max_radius:6)));
        Test.make ~name:"dilate_set_r6_200jobs" (Staged.stage (fun () ->
            ignore (Ball.dilate_set (Demand_map.support dm_mid) ~radius:6)));
        Test.make ~name:"iter_sphere_r6" (Staged.stage (fun () ->
            let n = ref 0 in
            Ball.iter_sphere ~center:[| 0; 0 |] ~radius:6 (fun _ -> incr n);
            ignore !n));
        Test.make ~name:"planner_200jobs" (Staged.stage (fun () ->
            ignore (Planner.plan dm_mid)));
        Test.make ~name:"online_point100" (Staged.stage (fun () ->
            ignore (Online.run online_cfg online_w)));
        Test.make ~name:"clarke_wright_200jobs" (Staged.stage (fun () ->
            ignore (Cvrp.clarke_wright ~dm:dm_mid ~depot ~capacity:40)));
        Test.make ~name:"snake_pairing_16x16" (Staged.stage (fun () ->
            ignore (Snake.pairing (Box.cube_at_origin ~dim:2 ~side:16))));
      ]
  in
  let cfg =
    if quick then Benchmark.cfg ~limit:100 ~quota:(Time.second 0.05) ~kde:None ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("ns/run", Table.Right); ("r²", Table.Right) ]
  in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some (x :: _) -> Table.cell_f ~decimals:1 x
        | _ -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square est with
        | Some r -> Table.cell_f ~decimals:4 r
        | None -> "-"
      in
      Table.add_row t [ name; ns; r2 ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Table.print t

(* ------------------------------------------------------------------ *)
(* JSON regression scenarios.  Each thunk exercises one hot path end to
   end on a deterministic (seeded) workload; the harness resets the
   Metrics registry before, and snapshots it after, each run, so every
   scenario carries its own counter/gauge/timer profile.  The counters
   are machine-independent, which is what bench-diff leans on in CI.     *)
(* ------------------------------------------------------------------ *)

let json_scenarios ~quick =
  let box7 = Box.make ~lo:[| 0; 0 |] ~hi:[| 7; 7 |] in
  let scale n = if quick then max 1 (n / 3) else n in
  [
    ( "oracle/omega_star-uniform",
      fun () ->
        let dm =
          Workload.demand
            (Workload.uniform ~rng:(Rng.create 99) ~box:box7 ~jobs:(scale 200))
        in
        ignore (Oracle.omega_star dm) );
    ( "oracle/omega_star-clustered",
      fun () ->
        let dm =
          Workload.demand
            (Workload.clustered ~rng:(Rng.create 5) ~box:box7 ~clusters:3
               ~jobs_per_cluster:(scale 60) ~spread:1)
        in
        ignore (Oracle.omega_star dm) );
    ( "oracle/witness-uniform",
      fun () ->
        let dm =
          Workload.demand
            (Workload.uniform ~rng:(Rng.create 99) ~box:box7 ~jobs:(scale 200))
        in
        ignore (Oracle.witness dm) );
    ( "alg1/two-hotspots",
      fun () ->
        let n = if quick then 128 else 512 in
        let dm =
          Demand_map.of_alist 2
            [ ([| n / 2; n / 2 |], 5000); ([| n / 4; n / 4 |], 1000) ]
        in
        ignore (Alg1.run ~dim:2 ~n dm) );
    ( "maxflow/dinic-dense",
      fun () ->
        let rng = Rng.create 3 in
        let n = if quick then 96 else 192 in
        let net = Maxflow.create n in
        for _ = 1 to 12 * n do
          let u = Rng.int rng n and v = Rng.int rng n in
          if u <> v then
            ignore (Maxflow.add_edge net ~src:u ~dst:v ~cap:(Rng.int rng 20))
        done;
        ignore (Maxflow.max_flow net ~source:0 ~sink:(n - 1)) );
    (* The GGT parametric driver end to end: discover the full breakpoint
       family of the radius-2 transport LP (sweep + refine_all, counted by
       paramflow.probes), then re-ask the supply question it answers as a
       cached lookup (transport.breakpoint_lookups). *)
    ( "flow/parametric-breakpoints",
      fun () ->
        let dm =
          Workload.demand
            (Workload.uniform ~rng:(Rng.create 99) ~box:box7 ~jobs:(scale 200))
        in
        let inst = Oracle.build_instance dm ~radius:2 in
        ignore (Transport.breakpoints inst ~scale:720720);
        ignore (Transport.min_uniform_supply inst ~scale:720720) );
    ( "planner/uniform",
      fun () ->
        let dm =
          Workload.demand
            (Workload.uniform ~rng:(Rng.create 42) ~box:box7 ~jobs:(scale 200))
        in
        ignore (Planner.plan dm) );
    ( "localsearch/point",
      fun () ->
        let dm = Demand_map.of_alist 2 [ ([| 0; 0 |], scale 500) ] in
        ignore (Localsearch.solve ~rounds:(if quick then 150 else 600) dm) );
    ( "online/point",
      fun () ->
        let w = Workload.point ~total:(scale 300) () in
        ignore (Online.run (Online.recommended w) w) );
    ( "online/silent-initiators",
      fun () ->
        let w = Workload.point ~total:(scale 400) () in
        let base = Online.recommended w in
        let cfg =
          {
            base with
            Online.faults =
              {
                Online.no_faults with
                Online.silent_initiators =
                  List.init (Online.fleet_size base w) (fun i -> i);
              };
          }
        in
        ignore (Online.run cfg w) );
    ( "online/chaos",
      fun () ->
        let w = Workload.point ~total:(scale 400) () in
        let base = Online.recommended w in
        let cfg =
          { base with Online.chaos = Des.faults ~drop_p:0.2 ~dup_p:0.1 () }
        in
        ignore (Online.run cfg w) );
    (* The ROADMAP production-scale target: a 10^6-vehicle window (10^4 in
       quick mode), band-sharded across Pool workers, serving a sparse
       arrival sequence whose every job exhausts the serving vehicle at
       capacity 2.5 — so the replacement protocol, not the serving walk,
       dominates and the full run moves >10^7 messages.  The corner jobs
       pin the window to the whole box; the budget is fleet-sized (a
       band's drain legitimately dispatches millions of deadline ticks).
       See docs/SCALE.md. *)
    ( "online/fleet-1M",
      fun () ->
        let box_side = if quick then 100 else 1000 in
        let rng = Rng.create 77 in
        let box =
          Box.make ~lo:[| 0; 0 |] ~hi:[| box_side - 1; box_side - 1 |]
        in
        let w = Workload.uniform ~rng ~box ~jobs:(scale 200) in
        let w =
          {
            w with
            Workload.jobs =
              Array.append w.Workload.jobs
                [| [| 0; 0 |]; [| box_side - 1; box_side - 1 |] |];
          }
        in
        let cfg =
          Online.config ~seed:7 ~capacity:2.5 ~side:4
            ~chaos:(Des.faults ~drop_p:0.02 ~dup_p:0.01 ())
            ~quiesce_budget:10_000_000 ()
        in
        let f = Online.run_fleet ~shards:8 cfg w in
        assert (f.Online.aggregate.Online.vehicles = box_side * box_side) );
    (* serve/*: the oracle-as-a-service path, replayed in-process so the
       scenario measures engine + cache + batching without socket noise.
       The serve.*/loadgen.* counters (requests, hits, misses, histogram
       observation counts) are deterministic at any Pool width; CI gates
       them tightly and the wall clock loosely (see docs/SERVING.md). *)
    ( "serve/repeat-heavy",
      fun () ->
        let engine = Engine.create () in
        let reqs =
          Loadgen.queries ~seed:11 ~mix:Loadgen.Repeat_heavy ~n:(scale 300)
        in
        match Loadgen.replay_engine engine reqs with
        | Ok _ -> ()
        | Error m -> failwith m );
    ( "serve/churn",
      fun () ->
        let engine = Engine.create () in
        let reqs = Loadgen.queries ~seed:12 ~mix:Loadgen.Churn ~n:(scale 300) in
        match Loadgen.replay_engine engine reqs with
        | Ok _ -> ()
        | Error m -> failwith m );
    ( "serve/cold-miss",
      fun () ->
        let engine = Engine.create () in
        let reqs =
          Loadgen.queries ~seed:13 ~mix:Loadgen.Cold_miss ~n:(scale 120)
        in
        match Loadgen.replay_engine engine reqs with
        | Ok _ -> ()
        | Error m -> failwith m );
    (* stream/*: the incremental oracle under sustained churn — one
       Oracle.Session absorbing a long add/remove trace with a query
       after every event.  The delta cost shows up in two deterministic
       counters CI gates tightly: transport.feasibility_checks (one warm
       solve per visited bracket per event — the "handful of probes"
       contract) and paramflow.probes; oracle.session_latency_ns keeps
       the per-event latency distribution (observation count gated, wall
       time not). *)
    ( "stream/churn",
      fun () ->
        let rng = Rng.create 21 in
        let s = Oracle.Session.create (Demand_map.empty 2) in
        let live = ref (Array.make 16 [||]) and n = ref 0 in
        for _ = 1 to scale 100_000 do
          if !n >= 64 || (!n > 0 && Rng.int rng 2 = 0) then begin
            let k = Rng.int rng !n in
            let p = !live.(k) in
            !live.(k) <- !live.(!n - 1);
            decr n;
            Oracle.Session.remove_job s p
          end
          else begin
            let p = [| Rng.int rng 6; Rng.int rng 6 |] in
            Oracle.Session.add_job s p;
            if !n = Array.length !live then begin
              let bigger = Array.make (2 * !n) [||] in
              Array.blit !live 0 bigger 0 !n;
              live := bigger
            end;
            !live.(!n) <- p;
            incr n
          end;
          ignore (Oracle.Session.omega_star s)
        done );
  ]

let run_json_suite ~quick ~jobs ~revision path =
  section
    (Printf.sprintf "JSON regression suite (%s mode%s) -> %s"
       (if quick then "quick" else "full")
       (if jobs > 1 then Printf.sprintf ", %d jobs" jobs else "")
       path);
  let scenarios =
    if jobs <= 1 then
      List.map
        (fun (name, f) ->
          Metrics.reset ();
          let t0 = Metrics.now_ns () in
          f ();
          let wall_ms = (Metrics.now_ns () -. t0) /. 1e6 in
          Printf.printf "  %-32s %10.2f ms\n%!" name wall_ms;
          (* zero-valued cells are subsystems this scenario never touched;
             dropping them keeps reports scenario-relevant *)
          let touched = function
            | _, Metrics.Count 0 -> false
            | _, Metrics.Level { value = 0.0; peak = 0.0 } -> false
            | _, Metrics.Span { calls = 0; _ } -> false
            | _, Metrics.Dist { count = 0; _ } -> false
            | _ -> true
          in
          let metrics = List.filter touched (Metrics.snapshot ()) in
          { Bench_report.name; wall_ms; metrics })
        (json_scenarios ~quick)
    else begin
      (* Parallel fan-out through the Domain pool: wall clocks only.  The
         registry is shared process-wide, so per-scenario snapshots would
         interleave; metrics are left empty (bench-diff ignores metrics
         absent from the candidate).  CI keeps jobs = 1. *)
      Pool.set_workers jobs;
      Metrics.set_enabled false;
      let results =
        Pool.map
          (fun (name, f) ->
            let t0 = Metrics.now_ns () in
            f ();
            let wall_ms = (Metrics.now_ns () -. t0) /. 1e6 in
            { Bench_report.name; wall_ms; metrics = [] })
          (Array.of_list (json_scenarios ~quick))
      in
      Metrics.set_enabled true;
      Array.iter
        (fun s ->
          Printf.printf "  %-32s %10.2f ms\n%!" s.Bench_report.name
            s.Bench_report.wall_ms)
        results;
      Array.to_list results
    end
  in
  let report = Bench_report.make ~revision ~quick scenarios in
  Bench_report.write_file path report;
  Printf.printf "\nwrote %s: %d scenarios, schema v%d, revision %s\n%!" path
    (List.length scenarios) Bench_report.schema_version revision

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let want_bechamel = ref false in
  let quick = ref false in
  let jobs = ref 1 in
  let json_path = ref None in
  let revision =
    ref (Option.value ~default:"dev" (Sys.getenv_opt "GITHUB_SHA"))
  in
  let wanted = ref [] in
  let rec parse = function
    | [] -> ()
    | "--bechamel" :: rest ->
        want_bechamel := true;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | [ "--json" ] ->
        prerr_endline "--json requires an output path";
        exit 2
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ ->
            prerr_endline "--jobs requires a positive integer";
            exit 2)
    | [ "--jobs" ] ->
        prerr_endline "--jobs requires a positive integer";
        exit 2
    | "--revision" :: rev :: rest ->
        revision := rev;
        parse rest
    | [ "--revision" ] ->
        prerr_endline "--revision requires an argument";
        exit 2
    | name :: rest ->
        wanted := name :: !wanted;
        parse rest
  in
  parse args;
  let wanted = List.rev !wanted in
  print_endline
    "CMVRP reproduction benchmarks — Gao, \"On a Capacitated Multivehicle \
     Routing Problem\" (Caltech, 2008)";
  (match !json_path with
  | Some path -> run_json_suite ~quick:!quick ~jobs:!jobs ~revision:!revision path
  | None ->
      let to_run =
        match wanted with
        | [] -> experiments
        | names ->
            List.filter_map
              (fun n ->
                match List.assoc_opt n experiments with
                | Some f -> Some (n, f)
                | None ->
                    Printf.eprintf "unknown experiment %S (known: e1..e17)\n" n;
                    None)
              names
      in
      List.iter (fun (_, f) -> f ()) to_run);
  if !want_bechamel then bechamel_suite ~quick:!quick ()
