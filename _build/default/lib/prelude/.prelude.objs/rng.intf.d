lib/prelude/rng.mli:
