lib/prelude/heap.mli:
