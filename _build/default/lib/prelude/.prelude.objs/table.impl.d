lib/prelude/table.ml: Buffer List Printf String
