lib/prelude/heap.ml: Array List
