lib/prelude/stats.mli:
