lib/prelude/table.mli:
