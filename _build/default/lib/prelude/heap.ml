type 'a t = {
  compare : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~compare () = { compare; data = [||]; size = 0 }

let size h = h.size

let is_empty h = h.size = 0

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let push h x =
  if h.size = Array.length h.data then begin
    let cap = max 16 (2 * h.size) in
    let bigger = Array.make cap x in
    Array.blit h.data 0 bigger 0 h.size;
    h.data <- bigger
  end;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  let i = ref (h.size - 1) in
  while !i > 0 && h.compare h.data.((!i - 1) / 2) h.data.(!i) > 0 do
    swap h ((!i - 1) / 2) !i;
    i := (!i - 1) / 2
  done

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let next = ref !i in
      if l < h.size && h.compare h.data.(l) h.data.(!next) < 0 then next := l;
      if r < h.size && h.compare h.data.(r) h.data.(!next) < 0 then next := r;
      if !next = !i then continue := false
      else begin
        swap h !i !next;
        i := !next
      end
    done;
    Some top
  end

let of_list ~compare xs =
  let h = create ~compare () in
  List.iter (push h) xs;
  h

let drain h =
  let rec loop acc = match pop h with None -> List.rev acc | Some x -> loop (x :: acc) in
  loop []
