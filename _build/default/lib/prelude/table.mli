(** Plain-text tables for benchmark reports.

    The benchmark harness prints one table per reproduced paper artifact;
    this module renders them with aligned columns so the output in
    [bench_output.txt] is directly readable next to the thesis. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts an empty table with the given column
    headers and alignments. *)

val add_row : t -> string list -> unit
(** Appends a row.  Raises [Invalid_argument] if the arity does not match
    the header. *)

val add_rule : t -> unit
(** Appends a horizontal separator between row groups. *)

val render : t -> string
(** Renders the table, headers and separators included. *)

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val cell_f : ?decimals:int -> float -> string
(** Formats a float for a table cell (default 3 decimals). *)

val cell_i : int -> string
