(** Small descriptive-statistics toolkit used by benchmarks and tests. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** Smallest and largest element.  Raises on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics.  Does not mutate its argument. *)

val median : float array -> float

val linear_fit : (float * float) array -> float * float * float
(** [linear_fit points] least-squares fit [y = a + b*x]; returns
    [(a, b, r2)] where [r2] is the coefficient of determination.  Used to
    check the linear-time claim for Algorithm 1 (experiment E6). *)

val loglog_slope : (float * float) array -> float
(** Slope of the least-squares line through [(log x, log y)]: the empirical
    polynomial exponent of a scaling series.  Points with non-positive
    coordinates are rejected. *)

val geometric_mean : float array -> float
(** Geometric mean of positive values; used for approximation-ratio
    summaries. *)
