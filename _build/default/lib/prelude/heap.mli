(** Polymorphic binary min-heap.

    Shared by Dijkstra's frontier and the discrete-event queue.  The
    ordering is supplied at creation; ties are broken by it alone, so
    clients needing stability must encode a sequence number in the
    element (as {!Des} does). *)

type 'a t

val create : compare:('a -> 'a -> int) -> unit -> 'a t

val size : _ t -> int

val is_empty : _ t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val of_list : compare:('a -> 'a -> int) -> 'a list -> 'a t

val drain : 'a t -> 'a list
(** Pops everything: the elements in ascending order.  Empties the heap. *)
