(** Deterministic pseudo-random number generation.

    Every stochastic component of the library (workload generators, message
    delays, failure injection) draws from an explicit [Rng.t] so that runs
    are reproducible from a single integer seed.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state, good
    statistical quality, and cheap [split] for building independent
    streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal
    seeds yield identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Use it to
    give each subsystem its own stream so that adding draws in one place
    does not perturb another. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws a rank in [\[1, n\]] from a Zipf distribution with
    exponent [s], by inversion on the exact normalizing constant.  Used by
    skewed workload generators. *)
