(* SplitMix64.  Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = int64 t in
  { state = s }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling to avoid modulo bias. *)
    let mask = (1 lsl 30) - 1 in
    let limit = mask - (mask mod bound) in
    let rec draw () =
      let v = bits30 t land mask in
      if v >= limit then draw () else v mod bound
    in
    draw ()
  end else begin
    let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    v mod bound
  end

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let exponential t mean =
  let rec positive () =
    let u = float t 1.0 in
    if u = 0.0 then positive () else u
  in
  -.mean *. log (positive ())

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  (* Exact inversion: cheap because workload generators use modest [n]. *)
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let u = float t total in
  let rec scan i acc =
    if i = n - 1 then n
    else
      let acc = acc +. weights.(i) in
      if u < acc then i + 1 else scan (i + 1) acc
  in
  scan 0 0.0
