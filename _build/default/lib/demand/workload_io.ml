let to_channel oc w =
  Printf.fprintf oc "# workload: %s\n# jobs: %d, dim: %d\n" w.Workload.name
    (Array.length w.Workload.jobs)
    w.Workload.dim;
  Array.iter
    (fun p ->
      output_string oc
        (String.concat " " (Array.to_list (Array.map string_of_int p)));
      output_char oc '\n')
    w.Workload.jobs

let to_string w =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# workload: %s\n# jobs: %d, dim: %d\n" w.Workload.name
       (Array.length w.Workload.jobs)
       w.Workload.dim);
  Array.iter
    (fun p ->
      Buffer.add_string buf
        (String.concat " " (Array.to_list (Array.map string_of_int p)));
      Buffer.add_char buf '\n')
    w.Workload.jobs;
  Buffer.contents buf

let parse_lines ?(name = "workload") lines =
  let jobs = ref [] in
  let dim = ref 0 in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let fields =
          List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
        in
        let coords =
          List.map
            (fun f ->
              match int_of_string_opt f with
              | Some v -> v
              | None ->
                  failwith
                    (Printf.sprintf "line %d: %S is not an integer" (lineno + 1) f))
            fields
        in
        match coords with
        | [] -> failwith (Printf.sprintf "line %d: empty coordinate list" (lineno + 1))
        | _ ->
            let d = List.length coords in
            if !dim = 0 then dim := d
            else if !dim <> d then
              failwith
                (Printf.sprintf "line %d: dimension %d, expected %d" (lineno + 1) d !dim);
            jobs := Array.of_list coords :: !jobs
      end)
    lines;
  let dim = if !dim = 0 then 2 else !dim in
  { Workload.name; dim; jobs = Array.of_list (List.rev !jobs) }

let of_string ?name s = parse_lines ?name (String.split_on_char '\n' s)

let of_channel ?name ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  parse_lines ?name (List.rev !lines)

let heatmap w =
  if w.Workload.dim <> 2 then invalid_arg "Workload_io.heatmap: need a 2-D workload";
  let dm = Workload.demand w in
  match Demand_map.bounding_box dm with
  | None -> "(empty workload)\n"
  | Some box ->
      let max_d = Demand_map.max_demand dm in
      Render.grid box ~cell:(fun p -> Render.heat_char ~max:max_d (Demand_map.value dm p))
      ^ Printf.sprintf "(%s)\n" (Render.legend ~max:max_d)
