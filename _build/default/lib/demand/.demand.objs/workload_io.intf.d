lib/demand/workload_io.mli: Workload
