lib/demand/workload.ml: Array Box Demand_map List Point Printf Rng
