lib/demand/workload.mli: Box Demand_map Point Rng
