lib/demand/demand_map.ml: Array Box Format List Point
