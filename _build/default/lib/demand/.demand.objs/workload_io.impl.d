lib/demand/workload_io.ml: Array Buffer Demand_map List Printf Render String Workload
