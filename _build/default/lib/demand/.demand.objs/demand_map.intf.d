lib/demand/demand_map.mli: Box Format Point
