type t = { name : string; dim : int; jobs : Point.t array }

let demand t = Demand_map.of_jobs t.dim (Array.to_list t.jobs)

let repeat_each per_point points =
  List.concat_map
    (fun p -> List.init per_point (fun _ -> p))
    points

let square ?(dim = 2) ~side ~per_point () =
  if side <= 0 || per_point < 0 then invalid_arg "Workload.square: bad parameters";
  let box = Box.cube_at_origin ~dim ~side in
  let jobs = repeat_each per_point (Box.points box) in
  {
    name = Printf.sprintf "square(side=%d,d=%d,l=%d)" side per_point dim;
    dim;
    jobs = Array.of_list jobs;
  }

let line ~len ~per_point =
  if len <= 0 || per_point < 0 then invalid_arg "Workload.line: bad parameters";
  let points = List.init len (fun i -> [| i; 0 |]) in
  {
    name = Printf.sprintf "line(len=%d,d=%d)" len per_point;
    dim = 2;
    jobs = Array.of_list (repeat_each per_point points);
  }

let point ?(dim = 2) ~total () =
  if total < 0 then invalid_arg "Workload.point: negative total";
  {
    name = Printf.sprintf "point(d=%d,l=%d)" total dim;
    dim;
    jobs = Array.init total (fun _ -> Point.origin dim);
  }

let random_point rng box =
  Array.init (Box.dim box)
    (fun i -> Rng.int_in rng box.Box.lo.(i) box.Box.hi.(i))

let uniform ~rng ~box ~jobs =
  if jobs < 0 then invalid_arg "Workload.uniform: negative job count";
  {
    name = Printf.sprintf "uniform(jobs=%d,vol=%d)" jobs (Box.volume box);
    dim = Box.dim box;
    jobs = Array.init jobs (fun _ -> random_point rng box);
  }

let clustered ~rng ~box ~clusters ~jobs_per_cluster ~spread =
  if clusters <= 0 || jobs_per_cluster < 0 || spread < 0 then
    invalid_arg "Workload.clustered: bad parameters";
  let centers = Array.init clusters (fun _ -> random_point rng box) in
  let job_of_center c =
    let p =
      Array.init (Box.dim box) (fun i -> c.(i) + Rng.int_in rng (-spread) spread)
    in
    Box.clamp box p
  in
  let jobs =
    Array.init (clusters * jobs_per_cluster) (fun k ->
        job_of_center centers.(k mod clusters))
  in
  {
    name =
      Printf.sprintf "clustered(c=%d,per=%d,spread=%d)" clusters jobs_per_cluster
        spread;
    dim = Box.dim box;
    jobs;
  }

let zipf_sites ~rng ~box ~sites ~jobs ~exponent =
  if sites <= 0 || jobs < 0 then invalid_arg "Workload.zipf_sites: bad parameters";
  let positions = Array.init sites (fun _ -> random_point rng box) in
  let jobs =
    Array.init jobs (fun _ ->
        let rank = Rng.zipf rng ~n:sites ~s:exponent in
        positions.(rank - 1))
  in
  {
    name = Printf.sprintf "zipf(sites=%d,s=%.2f)" sites exponent;
    dim = Box.dim box;
    jobs;
  }

let mixture ~rng ~name parts =
  match parts with
  | [] -> invalid_arg "Workload.mixture: empty list"
  | first :: rest ->
      List.iter
        (fun w ->
          if w.dim <> first.dim then
            invalid_arg "Workload.mixture: dimension mismatch")
        rest;
      let all = Array.concat (List.map (fun w -> w.jobs) parts) in
      Rng.shuffle rng all;
      { name; dim = first.dim; jobs = all }

let shuffled ~rng t =
  let jobs = Array.copy t.jobs in
  Rng.shuffle rng jobs;
  { t with jobs }

let translate t offset =
  { t with jobs = Array.map (fun p -> Point.add p offset) t.jobs }

let moving_hotspot ~rng ~start ~steps ~jobs_per_step =
  if steps <= 0 || jobs_per_step < 0 then
    invalid_arg "Workload.moving_hotspot: bad parameters";
  let dim = Point.dim start in
  let jobs = ref [] in
  let pos = ref (Array.copy start) in
  for _ = 1 to steps do
    for _ = 1 to jobs_per_step do
      jobs := Array.copy !pos :: !jobs
    done;
    (* Random lattice step: the hotspot drifts. *)
    let axis = Rng.int rng dim in
    let next = Array.copy !pos in
    next.(axis) <- next.(axis) + (if Rng.bool rng then 1 else -1);
    pos := next
  done;
  {
    name = Printf.sprintf "moving(steps=%d,per=%d)" steps jobs_per_step;
    dim;
    jobs = Array.of_list (List.rev !jobs);
  }
