(** Plain-text serialization of workloads.

    Format: an optional comment header ([# ...] lines), then one job per
    line as whitespace-separated integer coordinates in arrival order.
    All jobs must share one dimension.  The format is what
    [cmvrp workload] emits and [cmvrp solve/simulate --input] consume. *)

val to_channel : out_channel -> Workload.t -> unit

val to_string : Workload.t -> string

val of_channel : ?name:string -> in_channel -> Workload.t
(** Raises [Failure] with a line-numbered message on malformed input
    (non-integer field, inconsistent dimension, empty coordinate list). *)

val of_string : ?name:string -> string -> Workload.t

val heatmap : Workload.t -> string
(** ASCII heatmap of the aggregated demand (2-D workloads only). *)
