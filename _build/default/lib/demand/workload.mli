(** Workload generators.

    The first three constructors are the worked examples of §2.1 of the
    paper (Figure 2.1): uniform demand on a square, on a line, and at a
    single point.  The randomized families provide the varied inputs used
    by experiments E4–E8; all randomness comes from an explicit {!Rng.t}.

    A workload is both an arrival sequence (for the online case) and, by
    aggregation, a demand map (for the offline case).  Arrival order
    matters only online; generators produce a deterministic order given the
    generator's own sequencing plus an optional shuffle. *)

type t = {
  name : string;
  dim : int;
  jobs : Point.t array;  (** arrival order; each job is one unit of demand *)
}

val demand : t -> Demand_map.t
(** Aggregated demand function of the workload. *)

val square : ?dim:int -> side:int -> per_point:int -> unit -> t
(** Example 2.1.1 / Fig 2.1(a): demand [per_point] at every vertex of a
    [side x side] square anchored at the origin ([dim] defaults to 2). *)

val line : len:int -> per_point:int -> t
(** Example 2.1.2 / Fig 2.1(b): demand [per_point] at [len] collinear
    points of [Z^2]. *)

val point : ?dim:int -> total:int -> unit -> t
(** Example 2.1.3 / Fig 2.1(c): demand [total] concentrated at the origin
    of [Z^dim] (default 2). *)

val uniform : rng:Rng.t -> box:Box.t -> jobs:int -> t
(** [jobs] unit jobs at independently uniform positions of [box]. *)

val clustered :
  rng:Rng.t -> box:Box.t -> clusters:int -> jobs_per_cluster:int -> spread:int -> t
(** Hot-spot workload: cluster centers uniform in [box], each job at a
    center displaced by a uniform offset in [\[-spread, spread\]^l]
    (clamped to [box]).  Models the localized-event scenarios (earthquake,
    intrusion) that motivate the thesis. *)

val zipf_sites : rng:Rng.t -> box:Box.t -> sites:int -> jobs:int -> exponent:float -> t
(** [sites] random positions with Zipf([exponent]) popularity; [jobs] jobs
    drawn by popularity.  Heavy-tailed spatial skew. *)

val mixture : rng:Rng.t -> name:string -> t list -> t
(** Interleaves the given workloads' jobs in a random order (dimensions
    must agree). *)

val shuffled : rng:Rng.t -> t -> t
(** Same demand, uniformly random arrival order. *)

val translate : t -> Point.t -> t
(** Shifts every job by the given offset. *)

val moving_hotspot :
  rng:Rng.t -> start:Point.t -> steps:int -> jobs_per_step:int -> t
(** An adversarially drifting hotspot: [jobs_per_step] jobs fire at the
    current position, then the position takes one random lattice step.
    Exercises the online strategy's replacement machinery across cube
    boundaries — the hardest arrival pattern for pair-based coverage. *)
