lib/flow/maxflow.ml: Array List Queue
