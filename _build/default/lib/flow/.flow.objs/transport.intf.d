lib/flow/transport.mli:
