lib/flow/maxflow.mli:
