lib/flow/transport.ml: Array List Maxflow
