(** Dinic's maximum-flow algorithm on integer capacities.

    This is the combinatorial engine behind the paper's linear program
    (2.1): for a fixed supply [ω] and radius [r], feasibility of the
    supply-demand transport is a bipartite max-flow question, and the exact
    LP value is recovered by a search over [ω] (see {!Transport}). *)

type t

val create : int -> t
(** [create n] is an empty flow network on vertices [0 .. n-1]. *)

val add_edge : t -> src:int -> dst:int -> cap:int -> int
(** Adds a directed edge with the given capacity (and its residual twin of
    capacity 0).  Returns an edge id usable with {!flow_on}.  Capacities
    must be non-negative. *)

val max_flow : t -> source:int -> sink:int -> int
(** Runs Dinic to completion and returns the max-flow value.  The network
    keeps its residual state: subsequent calls continue from the current
    flow (useful for incremental capacity probing is NOT supported —
    rebuild instead; this is only documented behaviour). *)

val flow_on : t -> int -> int
(** Flow currently routed through the edge with the given id. *)

val n_vertices : t -> int

val min_cut_side : t -> source:int -> bool array
(** After [max_flow], the source side of a minimum cut (vertices reachable
    in the residual network).  Certifies optimality in tests. *)
