(** CMVRP on general weighted graphs — the extension Chapter 6 of the
    thesis lists as an open direction ("we have only discussed the case
    where the underlying graph is a grid").

    The model transfers verbatim: one vehicle of capacity [W] per vertex,
    travel along an edge costs its weight, one unit of energy per job.
    The LP machinery of Chapter 2 never used the grid structure — only
    shortest-path distances — so program (2.8) and its value
    [ω* = max_T ω_T] generalize directly, with [N_r(T)] the set of
    vertices within weighted distance [r] of [T].  What does NOT
    generalize is the cube partition behind the constructive upper bound;
    we replace it with a greedy ball-cover heuristic and measure how far
    it lands from [ω*] (experiment E14).  On unit-weight path and grid
    graphs everything provably coincides with the Z^l implementation, and
    the test suite checks exactly that. *)

type t

val create : Digraph.t -> demand:int array -> t
(** The digraph is interpreted as undirected (add both arcs) with
    non-negative integer weights; [demand.(v)] is vertex [v]'s demand.
    Raises [Invalid_argument] on size mismatch or negative demand. *)

val n_vertices : t -> int

val demand : t -> int -> int

val total_demand : t -> int

val distance : t -> int -> int -> int
(** Shortest-path distance ([max_int] when disconnected).  All-pairs
    tables are computed lazily, one Dijkstra per source. *)

val neighborhood_size : t -> int list -> radius:int -> int
(** [|N_r(T)|]: vertices within weighted distance [radius] of the set. *)

val omega_of_subset : t -> int list -> float
(** The [ω_T] of equation (1.1) for a vertex subset, with weighted-graph
    neighborhoods. *)

val max_over_subsets : t -> float
(** Exhaustive [max_T ω_T] over subsets of the demand support (test
    witness; raises beyond 16 demand vertices). *)

val omega_star : ?scale:int -> t -> float
(** Exact value of the generalized program (2.8) by the same
    bracket-scan + max-flow method as {!Oracle.omega_star}; the lower
    bound on the graph [Woff]. *)

(** A constructive upper bound: greedy ball cover + budgeted service. *)
type plan = {
  clusters : int list array;  (** cluster id -> member vertices *)
  assignments : (int * int * int) list;
      (** (vehicle, site, units): vehicle travels to the site and serves *)
}

val plan_greedy : t -> plan
(** Covers the demand support by balls of radius [⌈ω*⌉] around greedily
    chosen centers, then serves each cluster with its own vehicles in
    budgeted chunks.  Always succeeds on a connected graph. *)

val plan_max_energy : t -> plan -> int
(** Peak per-vehicle energy of the plan (travel + units), the measured
    graph-[Woff] upper bound. *)

val validate_plan : t -> plan -> (unit, string) result
(** Every unit served exactly once; every vehicle used at most once. *)

val of_path : Demand_map.t -> t
(** Bridge: a 1-D demand map as a unit-weight path graph (equivalence
    testing against the grid implementation). *)

val of_grid_2d : Demand_map.t -> pad:int -> t
(** Bridge: a 2-D demand map as a unit-weight grid graph over its
    bounding box dilated by [pad]. *)

val line_graph : int -> Digraph.t
(** Unit-weight path on [n] vertices. *)

val random_geometric :
  rng:Rng.t -> n:int -> box:Box.t -> radius:int -> Digraph.t * Point.t array
(** [n] random points in [box]; vertices within L1 distance [radius] are
    joined by an edge weighted with their distance.  Returns the graph
    and the embedding (benchmark substrate for E14). *)

val graph_of : t -> Digraph.t
(** The underlying digraph (shared, do not mutate). *)
