lib/graphcmvrp/gcmvrp.mli: Box Demand_map Digraph Point Rng
