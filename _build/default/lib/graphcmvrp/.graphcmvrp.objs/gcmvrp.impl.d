lib/graphcmvrp/gcmvrp.ml: Array Box Demand_map Digraph Float List Omega Paths Point Printf Rng Transport
