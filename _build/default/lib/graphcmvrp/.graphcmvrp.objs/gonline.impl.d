lib/graphcmvrp/gonline.ml: Array Des Digraph Float Gcmvrp Hashtbl List Option Rng
