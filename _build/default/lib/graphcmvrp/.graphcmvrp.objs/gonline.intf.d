lib/graphcmvrp/gonline.mli: Gcmvrp
