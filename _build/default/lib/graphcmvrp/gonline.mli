(** The Chapter 3 online strategy transplanted to general weighted graphs
    — the distributed half of the Chapter 6 open direction.

    Everything that made the grid protocol work is topology-free except
    the cube partition and the chessboard pairing.  Here:

    - clusters come from the same greedy ball cover as
      {!Gcmvrp.plan_greedy} (radius [⌈ω*⌉] around heavy vertices);
    - pairs come from a greedy maximal matching of each cluster's edges
      (adjacent vertex pairs; unmatched vertices serve alone);
    - the communication topology is the graph itself, restricted to
      clusters (adjacent vehicles are neighbors — the natural analog of
      the paper's constant-radius rule);
    - the Dijkstra–Scholten diffusing computation, phase II relocation,
      and retirement rule are verbatim from the grid version, with the
      walk-to-serve bound 1 replaced by the pair's edge weight.

    The measured minimal capacity against the graph [ω*] (experiment E17)
    probes whether [Won = Θ(Woff)] should be expected beyond the grid. *)

type config = {
  capacity : float;
  seed : int;
}

type outcome = {
  served : int;
  failed : int;
  messages : int;
  replacements : int;
  computations : int;
  starved_searches : int;
  max_energy_used : float;
}

val succeeded : outcome -> bool

val run : Gcmvrp.t -> jobs:int array -> config -> outcome
(** Serves the arrival sequence of vertex ids on the given instance.
    Jobs must be valid vertex ids. *)

val recommended_capacity : Gcmvrp.t -> float
(** [(4·3^2 + 2)·ω*] plus rounding cushion — the grid Lemma 3.3.1 constant
    reused as a (non-proven) graph heuristic; E17 measures how much of it
    is really needed. *)

val min_feasible_capacity : ?tol:float -> ?seed:int -> Gcmvrp.t -> jobs:int array -> float
(** Smallest capacity at which the strategy serves every job. *)
