type t = {
  graph : Digraph.t;
  demands : int array;
  dist_cache : int array option array; (* per-source Dijkstra, lazy *)
}

let create graph ~demand =
  let n = Digraph.n_vertices graph in
  if Array.length demand <> n then
    invalid_arg "Gcmvrp.create: demand size mismatch";
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Gcmvrp.create: negative demand")
    demand;
  { graph; demands = Array.copy demand; dist_cache = Array.make n None }

let n_vertices t = Digraph.n_vertices t.graph

let demand t v = t.demands.(v)

let total_demand t = Array.fold_left ( + ) 0 t.demands

let dist_from t v =
  match t.dist_cache.(v) with
  | Some d -> d
  | None ->
      let d = Paths.dijkstra t.graph ~source:v in
      t.dist_cache.(v) <- Some d;
      d

let distance t u v = (dist_from t u).(v)

let support t =
  let out = ref [] in
  Array.iteri (fun v d -> if d > 0 then out := v :: !out) t.demands;
  List.rev !out

let neighborhood_size t subset ~radius =
  if radius < 0 then 0
  else begin
    let n = n_vertices t in
    let count = ref 0 in
    for v = 0 to n - 1 do
      let near =
        List.exists
          (fun u ->
            let d = (dist_from t u).(v) in
            d <> max_int && d <= radius)
          subset
      in
      if near then incr count
    done;
    !count
  end

let omega_of_subset t subset =
  match subset with
  | [] -> invalid_arg "Gcmvrp.omega_of_subset: empty subset"
  | _ ->
      let total = List.fold_left (fun acc v -> acc + t.demands.(v)) 0 subset in
      Omega.solve ~total ~neighborhood_size:(fun r ->
          max 1 (neighborhood_size t subset ~radius:r))

let max_over_subsets t =
  let sup = Array.of_list (support t) in
  let n = Array.length sup in
  if n > 16 then invalid_arg "Gcmvrp.max_over_subsets: support too large";
  if n = 0 then 0.0
  else begin
    let best = ref 0.0 in
    for mask = 1 to (1 lsl n) - 1 do
      let subset = ref [] in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then subset := sup.(i) :: !subset
      done;
      let w = omega_of_subset t !subset in
      if w > !best then best := w
    done;
    !best
  end

(* --- exact generalized program (2.8), as in Oracle but with graph
   distances --- *)

let lp_value t ~scale ~radius =
  let sup = Array.of_list (support t) in
  let n = n_vertices t in
  let inst = Transport.create ~n_suppliers:n ~n_demands:(Array.length sup) in
  Array.iteri (fun j v -> Transport.set_demand inst j t.demands.(v)) sup;
  for i = 0 to n - 1 do
    let d = dist_from t i in
    Array.iteri
      (fun j v ->
        if d.(v) <> max_int && d.(v) <= radius then
          Transport.add_link inst ~supplier:i ~demand:j)
      sup
  done;
  Transport.min_uniform_supply inst ~scale

let omega_star ?(scale = 720720) t =
  if total_demand t = 0 then 0.0
  else begin
    let rec scan m =
      match lp_value t ~scale ~radius:m with
      | None ->
          (* Some demand vertex unreachable even from itself: impossible
             since every vertex supplies itself at radius 0. *)
          assert false
      | Some v ->
          let candidate = Float.max (float_of_int m) v in
          if candidate < float_of_int (m + 1) then candidate else scan (m + 1)
    in
    scan 0
  end

(* --- constructive heuristic: greedy ball cover + budgeted service --- *)

type plan = {
  clusters : int list array;
  assignments : (int * int * int) list;
}

let plan_greedy t =
  let n = n_vertices t in
  let star = omega_star t in
  let radius = max 1 (int_of_float (Float.ceil star)) in
  (* Greedy cover: repeatedly take the unclustered vertex with the largest
     demand and claim every unclustered vertex within the radius. *)
  let cluster_of = Array.make n (-1) in
  let clusters = ref [] and n_clusters = ref 0 in
  let rec cover () =
    let center = ref (-1) in
    for v = 0 to n - 1 do
      if
        cluster_of.(v) = -1
        && t.demands.(v) > 0
        && (!center = -1 || t.demands.(v) > t.demands.(!center))
      then center := v
    done;
    if !center >= 0 then begin
      let id = !n_clusters in
      incr n_clusters;
      let d = dist_from t !center in
      let members = ref [] in
      for v = 0 to n - 1 do
        if cluster_of.(v) = -1 && d.(v) <> max_int && d.(v) <= radius then begin
          cluster_of.(v) <- id;
          members := v :: !members
        end
      done;
      clusters := List.rev !members :: !clusters;
      cover ()
    end
  in
  cover ();
  let clusters = Array.of_list (List.rev !clusters) in
  (* Serve each cluster with its own vehicles, doubling the chunk budget
     until the headcount fits. *)
  let assignments = ref [] in
  Array.iter
    (fun members ->
      let vehicles = Array.of_list members in
      let sites = List.filter (fun v -> t.demands.(v) > 0) members in
      let cluster_demand = List.fold_left (fun acc v -> acc + t.demands.(v)) 0 sites in
      let rec attempt budget =
        let chunks =
          List.concat_map
            (fun site ->
              let d = t.demands.(site) in
              let k = (d + budget - 1) / budget in
              List.init k (fun i ->
                  let units = min budget (d - (i * budget)) in
                  (site, units)))
            sites
        in
        if List.length chunks > Array.length vehicles then attempt (2 * budget)
        else begin
          (* Assign each chunk to the nearest unused cluster vehicle. *)
          let used = Array.make (Array.length vehicles) false in
          List.iter
            (fun (site, units) ->
              let d = dist_from t site in
              let best = ref (-1) in
              Array.iteri
                (fun i v ->
                  if (not used.(i)) && d.(v) <> max_int then
                    match !best with
                    | -1 -> best := i
                    | b -> if d.(v) < d.(vehicles.(b)) then best := i)
                vehicles;
              match !best with
              | -1 -> failwith "Gcmvrp.plan_greedy: cluster disconnected"
              | i ->
                  used.(i) <- true;
                  assignments := (vehicles.(i), site, units) :: !assignments)
            chunks
        end
      in
      if cluster_demand > 0 then
        attempt (max 1 ((cluster_demand + Array.length vehicles - 1)
                        / Array.length vehicles)))
    clusters;
  { clusters; assignments = !assignments }

let plan_max_energy t plan =
  List.fold_left
    (fun acc (vehicle, site, units) ->
      let d = distance t vehicle site in
      if d = max_int then max_int else max acc (d + units))
    0 plan.assignments

let validate_plan t plan =
  let n = n_vertices t in
  let served = Array.make n 0 in
  let used = Array.make n false in
  let problem = ref None in
  List.iter
    (fun (vehicle, site, units) ->
      if units <= 0 && !problem = None then problem := Some "non-positive chunk";
      if used.(vehicle) && !problem = None then
        problem := Some (Printf.sprintf "vehicle %d used twice" vehicle);
      used.(vehicle) <- true;
      served.(site) <- served.(site) + units)
    plan.assignments;
  Array.iteri
    (fun v d ->
      if served.(v) <> d && !problem = None then
        problem := Some (Printf.sprintf "vertex %d served %d of %d" v served.(v) d))
    t.demands;
  match !problem with None -> Ok () | Some msg -> Error msg

(* --- bridges and generators --- *)

let line_graph n =
  if n <= 0 then invalid_arg "Gcmvrp.line_graph: need n > 0";
  let g = Digraph.create n in
  for i = 0 to n - 2 do
    Digraph.add_undirected g i (i + 1) ~weight:1
  done;
  g

let of_path dm =
  if Demand_map.dim dm <> 1 then invalid_arg "Gcmvrp.of_path: need a 1-D demand";
  match Demand_map.bounding_box dm with
  | None -> create (line_graph 1) ~demand:[| 0 |]
  | Some bbox ->
      (* In 1-D, ω_T·(2ω_T+1) <= ... <= total demand, so ω* < sqrt(total):
         padding by that much keeps every useful supplier in the window. *)
      let pad = int_of_float (sqrt (float_of_int (Demand_map.total dm))) + 2 in
      let lo = bbox.Box.lo.(0) - pad and hi = bbox.Box.hi.(0) + pad in
      let n = hi - lo + 1 in
      let demand = Array.make n 0 in
      Demand_map.iter dm (fun p d -> demand.(p.(0) - lo) <- d);
      create (line_graph n) ~demand

let of_grid_2d dm ~pad =
  if Demand_map.dim dm <> 2 then invalid_arg "Gcmvrp.of_grid_2d: need a 2-D demand";
  match Demand_map.bounding_box dm with
  | None -> create (line_graph 1) ~demand:[| 0 |]
  | Some bbox ->
      let window = Box.dilate bbox pad in
      let n = Box.volume window in
      let g = Digraph.create n in
      Box.iter window (fun p ->
          let v = Box.index window p in
          List.iter
            (fun q ->
              if Box.mem window q then begin
                let u = Box.index window q in
                if u > v then Digraph.add_undirected g v u ~weight:1
              end)
            (Point.neighbors p));
      let demand = Array.make n 0 in
      Demand_map.iter dm (fun p d -> demand.(Box.index window p) <- d);
      create g ~demand

let random_geometric ~rng ~n ~box ~radius =
  if n <= 0 then invalid_arg "Gcmvrp.random_geometric: need n > 0";
  let points =
    Array.init n (fun _ ->
        Array.init (Box.dim box) (fun i ->
            Rng.int_in rng box.Box.lo.(i) box.Box.hi.(i)))
  in
  let g = Digraph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Point.l1_dist points.(i) points.(j) in
      if d > 0 && d <= radius then Digraph.add_undirected g i j ~weight:d
    done
  done;
  (g, points)

let graph_of t = t.graph
