type run = {
  success : bool;
  transfers : int;
  distance : int;
  energy_spent : float;
}

let delivered cost m =
  match cost with
  | Transfer.Fixed a1 -> m -. a1
  | Transfer.Variable a2 -> m *. (1.0 -. a2)

let to_send cost ~want =
  match cost with
  | Transfer.Fixed a1 -> want +. a1
  | Transfer.Variable a2 -> want /. (1.0 -. a2)

let simulate dm ~cost ~w =
  if Demand_map.dim dm <> 2 then
    invalid_arg "Grid_collector.simulate: need a 2-D demand map";
  if w < 0.0 then invalid_arg "Grid_collector.simulate: negative capacity";
  match Demand_map.bounding_box dm with
  | None -> { success = true; transfers = 0; distance = 0; energy_spent = 0.0 }
  | Some box ->
      let path = Snake.order box in
      let v = Array.length path in
      if v < 2 then
        (* A single vertex serves itself; no collecting needed. *)
        {
          success = w >= float_of_int (Demand_map.total dm);
          transfers = 0;
          distance = 0;
          energy_spent = float_of_int (Demand_map.total dm);
        }
      else begin
        let demand_at p = float_of_int (Demand_map.value dm p) in
        let tank = ref w in
        let ok = ref true in
        let transfers = ref 0 and distance = ref 0 in
        let check () = if !tank < -1e-9 then ok := false in
        let walk () =
          incr distance;
          tank := !tank -. 1.0;
          check ()
        in
        (* Outbound along the snake, draining every intermediate tank. *)
        for k = 1 to v - 2 do
          ignore k;
          walk ();
          incr transfers;
          tank := !tank +. delivered cost w;
          check ()
        done;
        walk ();
        (* Exchange with the last vehicle so it holds exactly its demand. *)
        let d_last = demand_at path.(v - 1) in
        if w > d_last then begin
          incr transfers;
          tank := !tank +. delivered cost (w -. d_last);
          check ()
        end
        else if w < d_last then begin
          incr transfers;
          tank := !tank -. to_send cost ~want:(d_last -. w);
          check ()
        end;
        (* Return sweep, topping each vehicle up to its demand. *)
        for k = v - 2 downto 1 do
          walk ();
          let dx = demand_at path.(k) in
          if dx > 0.0 then begin
            incr transfers;
            tank := !tank -. to_send cost ~want:dx;
            check ()
          end
        done;
        walk ();
        tank := !tank -. demand_at path.(0);
        check ();
        {
          success = !ok;
          transfers = !transfers;
          distance = !distance;
          energy_spent = (float_of_int v *. w) -. Float.max 0.0 !tank;
        }
      end

let min_capacity ?(tol = 1e-4) dm cost =
  let succeeds w = (simulate dm ~cost ~w).success in
  let rec grow hi attempts =
    if attempts = 0 then hi
    else if succeeds hi then hi
    else grow (2.0 *. hi) (attempts - 1)
  in
  let hi = grow 1.0 60 in
  let rec bisect lo hi =
    if hi -. lo <= tol then hi
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if succeeds mid then bisect lo mid else bisect mid hi
    end
  in
  bisect 0.0 hi

let closed_form dm ~cost =
  match Demand_map.bounding_box dm with
  | None -> 0.0
  | Some box ->
      let v = Box.volume box in
      let total = Demand_map.total dm in
      let fv = float_of_int v and fd = float_of_int total in
      (match cost with
      | Transfer.Fixed a1 ->
          ((a1 *. float_of_int ((2 * v) - 3)) +. float_of_int (2 * (v - 1)) +. fd)
          /. fv
      | Transfer.Variable a2 ->
          (float_of_int (2 * (v - 1)) +. fd)
          /. (fv -. (2.0 *. a2 *. fv) +. (3.0 *. a2)))
