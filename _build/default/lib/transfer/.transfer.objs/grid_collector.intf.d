lib/transfer/grid_collector.mli: Demand_map Transfer
