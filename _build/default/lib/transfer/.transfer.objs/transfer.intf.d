lib/transfer/transfer.mli: Demand_map
