lib/transfer/transfer.ml: Box Demand_map Float List Omega Oracle
