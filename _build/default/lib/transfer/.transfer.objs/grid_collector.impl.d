lib/transfer/grid_collector.ml: Array Box Demand_map Float Snake Transfer
