(** Chapter 5: inter-vehicle energy transfers.

    Co-located vehicles may pass energy to each other, under one of two
    accounting methods: a fixed charge of [a1] per transfer, or a variable
    charge of [a2 << 1] per unit transferred.  Theorem 5.1.1 shows the
    minimal capacity with transfers, [Wtrans-off], stays [Θ(Woff)] when
    tanks are exactly the initial charge ([C = W]); §5.2 shows unbounded
    tanks change the game: on a segment a single collector achieves
    [Wtrans-off = Θ(avg d)]. *)

type cost_model =
  | Fixed of float  (** [a1] units of energy per transfer *)
  | Variable of float  (** [a2] units per unit of energy transferred *)

val remaining_after : w:float -> dist:int -> float
(** Theorem 5.1.1's decay bound: starting with [w] units at one point, at
    most [w·(1 - 1/w)^dist] arrive at distance [dist], however the moves
    and transfers are arranged (independent of the accounting method). *)

val import_bound : w:float -> side:int -> float
(** Upper bound on the total energy that can ever be brought into (or
    already sits in) an [side x side] square of [Z^2] when every vehicle
    starts with [w]: the paper's
    [w·(s^2 + 4w^2 + 4sw - 8w - 4s + 4)] closed form, derived by summing
    the decay bound over distance shells [|{i : D(i,T) = r}| = 4s+4(r-1)].
    For small [w] the shell series is evaluated exactly instead of with
    the closed form (which assumes the geometric tail). *)

val lower_bound : Demand_map.t -> float
(** Lower bound on [Wtrans-off] for a 2-D demand map: the smallest [w]
    such that every square's import bound covers its demand (maximized
    over squares via sliding scans).  Theorem 5.1.1 shows this is
    [Ω(Woff)]; together with [Wtrans-off <= Woff] it yields the Θ. *)

(** §5.2.1: the collector strategy on a segment [1..n] with unbounded
    tanks ([C = ∞]). *)
module Segment : sig
  type run = {
    success : bool;  (** all demands served, tank never negative *)
    transfers : int;  (** number of transfer events (paper: [2n-3]) *)
    distance : int;  (** total distance walked (paper: [2n-2]) *)
    energy_spent : float;  (** walks + services + transfer charges *)
  }

  val simulate : n:int -> demand:(int -> int) -> cost:cost_model -> w:float -> run
  (** Replays the §5.2.1 schedule: vehicle 1 sweeps right collecting every
      tank, tops vehicle [n] up to its demand, then sweeps back
      redistributing exactly the demanded amounts, and finally serves its
      own position.  Requires [n >= 2]. *)

  val min_capacity : ?tol:float -> n:int -> demand:(int -> int) -> cost_model -> float
  (** Smallest uniform initial charge [w] making {!simulate} succeed
      (binary search, default tolerance 1e-4). *)

  val closed_form : n:int -> total:int -> cost:cost_model -> float
  (** The paper's formulas:
      fixed cost  [w = (a1(2n-3) + 2n-2 + Σd) / n];
      variable    [w = (2n-2 + Σd) / (n - 2·a2·n + 3·a2)]. *)

  val no_transfer_capacity : n:int -> demand:(int -> int) -> float
  (** [ω*] of the same segment demand without transfers (the 1-D LP value
      via {!Oracle.omega_star}) — the contrast §5.2.1 draws. *)
end
