(** The §5.2.1 collector generalized from a segment to a 2-D region — a
    concrete answer to the chapter's closing question ("how much energy
    could be saved in general remains open") for grid windows.

    With unbounded tanks, one collector walks a boustrophedon
    (Hamiltonian, unit-step) path over the window: it drains every tank on
    the way out, tops the last vehicle up to its demand, and redistributes
    exact demands on the way back.  Total distance [2(V-1)] and at most
    [2V-3] transfers for a window of [V] vertices — the same structure as
    the paper's segment, so the minimal uniform charge is again
    [Θ(avg d)] under either accounting model. *)

type run = {
  success : bool;
  transfers : int;
  distance : int;
  energy_spent : float;
}

val simulate : Demand_map.t -> cost:Transfer.cost_model -> w:float -> run
(** Replays the snake-path collector over the demand's bounding box
    (2-D demand maps only; the box must have at least 2 vertices). *)

val min_capacity : ?tol:float -> Demand_map.t -> Transfer.cost_model -> float
(** Smallest uniform initial charge making {!simulate} succeed. *)

val closed_form : Demand_map.t -> cost:Transfer.cost_model -> float
(** The segment formulas with [n] replaced by the window volume [V]:
    fixed [(a1(2V-3) + 2(V-1) + Σd)/V]; variable
    [(2(V-1) + Σd)/(V - 2·a2·V + 3·a2)]. *)
