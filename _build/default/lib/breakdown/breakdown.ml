type longevity = Point.t -> float

let clamp01 p = Float.max 0.0 (Float.min 1.0 p)

(* Feasibility of the longevity-scaled transport at capacity ω: supplier i
   may emit p_i·ω units within radius ⌊p_i·ω⌋. *)
let feasible_at ~scale ~search_radius ~longevity dm omega =
  let support = Array.of_list (Demand_map.support dm) in
  let max_radius = min search_radius (int_of_float (Float.min omega 1e9)) in
  let suppliers =
    Ball.dilate_set (Array.to_list support) ~radius:max_radius
    |> Point.Set.elements |> Array.of_list
  in
  let inst =
    Transport.create ~n_suppliers:(Array.length suppliers)
      ~n_demands:(Array.length support)
  in
  Array.iteri
    (fun j p -> Transport.set_demand inst j (Demand_map.value dm p * scale))
    support;
  let caps = Array.make (Array.length suppliers) 0 in
  Array.iteri
    (fun i s ->
      let p = clamp01 (longevity s) in
      let reach = int_of_float (Float.floor (p *. omega)) in
      caps.(i) <- int_of_float (Float.floor (p *. omega *. float_of_int scale));
      if caps.(i) > 0 then
        Array.iteri
          (fun j x ->
            if Point.l1_dist s x <= reach then
              Transport.add_link inst ~supplier:i ~demand:j)
          support)
    suppliers;
  Transport.max_served inst ~supply:(fun i -> caps.(i))
  = Demand_map.total dm * scale

let lp_lower_bound ?(scale = 1000) ?(precision = 1e-3) ?(search_radius = 512)
    ~longevity dm =
  if Demand_map.total dm = 0 then 0.0
  else begin
    let feasible = feasible_at ~scale ~search_radius ~longevity dm in
    (* Doubling search for a feasible capacity.  Suppliers are only sought
       within [search_radius] of the support, so capacities beyond that
       radius cannot enlist anyone new: if the transport is still
       infeasible there, report it unbounded (e.g. all-dead instances). *)
    let cap = 2.0 *. float_of_int search_radius in
    let rec grow hi =
      if hi > cap then None else if feasible hi then Some hi else grow (2.0 *. hi)
    in
    match grow 1.0 with
    | None -> infinity
    | Some hi ->
        let rec bisect lo hi =
          if hi -. lo <= precision then hi
          else begin
            let mid = 0.5 *. (lo +. hi) in
            if feasible mid then bisect lo mid else bisect mid hi
          end
        in
        bisect 0.0 hi
  end

let omega_subsets ~longevity dm =
  let support = Array.of_list (Demand_map.support dm) in
  let n = Array.length support in
  if n > 14 then invalid_arg "Breakdown.omega_subsets: support too large";
  if n = 0 then 0.0
  else begin
    (* For one subset T, ω_T solves ω · Σ_{i : ‖i-T‖ <= p_i·ω} p_i = D(T);
       the left side is non-decreasing in ω, so bisection applies. *)
    let omega_of points total =
      let lhs omega =
        let reach = min 512 (int_of_float (Float.min omega 1e9)) in
        let region = Ball.dilate_set points ~radius:reach in
        let sum =
          Point.Set.fold
            (fun s acc ->
              let p = clamp01 (longevity s) in
              let d =
                List.fold_left (fun m x -> min m (Point.l1_dist s x)) max_int points
              in
              if float_of_int d <= p *. omega then acc +. p else acc)
            region 0.0
        in
        omega *. sum
      in
      let target = float_of_int total in
      let rec grow hi attempts =
        if attempts = 0 then None
        else if lhs hi >= target then Some hi
        else grow (2.0 *. hi) (attempts - 1)
      in
      match grow 1.0 16 with
      | None -> infinity
      | Some hi ->
          let rec bisect lo hi =
            if hi -. lo <= 1e-6 then hi
            else begin
              let mid = 0.5 *. (lo +. hi) in
              if lhs mid >= target then bisect lo mid else bisect mid hi
            end
          in
          bisect 0.0 hi
    in
    let best = ref 0.0 in
    for mask = 1 to (1 lsl n) - 1 do
      let points = ref [] and total = ref 0 in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then begin
          points := support.(i) :: !points;
          total := !total + Demand_map.value dm support.(i)
        end
      done;
      let w = omega_of !points !total in
      if w > !best then best := w
    done;
    !best
  end

module Figure41 = struct
  type t = { r1 : int; r2 : int }

  let make ~r1 ~r2 =
    if r1 < 1 then invalid_arg "Figure41.make: r1 must be >= 1";
    if r2 <= (4 * r1 * r1) + r1 then
      invalid_arg
        "Figure41.make: need r2 > 4*r1^2 + r1 so outside vehicles stay out of play";
    { r1; r2 }

  let point_i t = [| -t.r1; 0 |]
  let point_j t = [| t.r1; 0 |]
  let center = [| 0; 0 |]

  let demand t =
    Demand_map.of_alist 2 [ (point_i t, t.r1); (point_j t, t.r1) ]

  let longevity t p =
    if Point.equal p center then 1.0
    else if Point.l1_dist p center <= t.r1 + t.r2 then 0.0
    else 1.0

  let lp_bound t = 2.0 *. float_of_int t.r1

  let shuttle_requirement t =
    let r1 = t.r1 in
    (* walk to the first demand, serve 2·r1 unit jobs, and cross the
       2·r1 gap between the demand points 2·r1 - 1 times *)
    r1 + (2 * r1) + (((2 * r1) - 1) * 2 * r1)

  let jobs t =
    Array.init (2 * t.r1) (fun k -> if k mod 2 = 0 then point_i t else point_j t)

  let simulate_shuttle t ~capacity =
    let energy = ref capacity and pos = ref center in
    let ok = ref true in
    Array.iter
      (fun x ->
        let cost = float_of_int (Point.l1_dist !pos x + 1) in
        energy := !energy -. cost;
        pos := x;
        if !energy < 0.0 then ok := false)
      (jobs t);
    !ok
end
