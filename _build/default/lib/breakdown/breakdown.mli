(** Chapter 4: broken vehicles.

    Every vehicle [i] carries a longevity parameter [p_i ∈ [0,1]] and
    breaks down once a fraction [p_i] of its initial energy [W] has been
    spent — so only [p_i·W] of its tank is usable, and it can transport
    energy only within radius [p_i·W].

    Theorem 4.1.1 adapts the transportation program: the minimal capacity
    admits the lower bound [max_T ω_T] where [ω_T] solves
    [ω·Σ_{i ∈ N_{p_i·ω}(T)} p_i = Σ_{i∈T} d(i)].  Section 4.2 then shows
    this bound is NOT tight: in the Figure 4.1 instance the bound is
    [2·r1] while any actual service schedule needs [Θ(r1^2)], because the
    single surviving vehicle must shuttle between the two alternating
    demand points.  This module provides both sides of that gap. *)

type longevity = Point.t -> float
(** [p_i] as a function of the vehicle's depot; values clamped to
    [\[0,1\]] by the solvers. *)

val lp_lower_bound :
  ?scale:int -> ?precision:float -> ?search_radius:int ->
  longevity:longevity -> Demand_map.t -> float
(** Value of program (4.1): the minimal uniform capacity [ω] at which the
    longevity-scaled transport (supplier [i] emits at most [p_i·ω], within
    radius [⌊p_i·ω⌋]) covers all demands.  Monotone feasibility is checked
    by max-flow; [ω] is located by binary search to [precision]
    (default 1e-3).  Candidate suppliers are sought within [search_radius]
    (default 512) of the demand support; [infinity] means "not feasible
    with those suppliers" (e.g. every nearby vehicle dead). *)

val omega_subsets : longevity:longevity -> Demand_map.t -> float
(** [max_T ω_T] of Theorem 4.1.1 by exhaustive subset enumeration
    (test witness; raises beyond 14 support points). *)

(** The Figure 4.1 adversarial instance. *)
module Figure41 : sig
  type t = {
    r1 : int;  (** half-distance between the demand points [i] and [j] *)
    r2 : int;  (** clearance between the demands and the healthy region *)
  }

  val make : r1:int -> r2:int -> t
  (** Requires [r1 >= 1] and [r2 > 4 * r1 * r1] so that healthy outside
      vehicles provably cannot help at the capacities in play. *)

  val demand : t -> Demand_map.t
  (** [d(i) = d(j) = r1] at [(±r1, 0)], zero elsewhere. *)

  val longevity : t -> longevity
  (** [p = 0] inside the dead circle except [p = 1] at the center [k] and
      everywhere outside. *)

  val lp_bound : t -> float
  (** The program-(4.1) bound — equals [2·r1] (Section 4.2). *)

  val shuttle_requirement : t -> int
  (** Exact energy the surviving vehicle [k] spends serving the
      alternating sequence: the initial walk to the first demand point,
      [2·r1] unit services, and [2·r1 - 1] crossings of length [2·r1] —
      i.e. [r1 + 2·r1 + (2·r1 - 1)·2·r1 = Θ(r1^2)]. *)

  val jobs : t -> Point.t array
  (** The alternating arrival sequence [i, j, i, j, ...] of §4.2. *)

  val simulate_shuttle : t -> capacity:float -> bool
  (** Replays the forced shuttle schedule and reports whether capacity
      suffices (true iff [capacity >= shuttle_requirement]). *)
end
