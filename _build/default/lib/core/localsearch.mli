(** Local-search improvement of the offline solution.

    The constructive plan of {!Planner} realizes the Theorem 1.4.1 upper
    bound but is deliberately crude (one relocation per vehicle, cube
    confinement).  This module searches the full solution space — every
    vehicle may serve several sites along a route — to pull the measured
    [Woff] upper bound closer to the LP lower bound [ω*].

    A solution assigns every unit of demand to some vehicle; a vehicle's
    energy is the length of a travelling-salesman path from its depot
    through the sites it serves (nearest-neighbor order with 2-opt
    improvement) plus the units it serves.  The search descends on the
    peak per-vehicle energy by moving demand chunks away from the current
    worst vehicle; {!solve} seeds it with the {!Planner} solution so the
    proven bound always holds. *)

type load = { site : Point.t; units : int }

type solution = {
  window : Box.t;  (** vehicle fleet: one per window vertex *)
  assignments : (int * load list) list;
      (** vehicle (window index) to the loads it serves; vehicles absent
          from the list serve nothing *)
}

val vehicle_energy : window:Box.t -> int -> load list -> int
(** TSP-path travel (nearest-neighbor + 2-opt from the depot) plus the
    units served. *)

val peak_energy : solution -> int
(** Max vehicle energy — the measured [Woff] upper bound. *)

val of_plan : Planner.t -> solution
(** Converts the constructive plan into the search representation
    (same window, same service). *)

val validate : solution -> Demand_map.t -> (unit, string) result
(** Every unit of demand served exactly once. *)

val improve : ?rounds:int -> ?seed:int -> solution -> Demand_map.t -> solution
(** Descent: repeatedly shifts chunks of the worst vehicle's load to
    cheaper vehicles (splitting units when helpful), accepting only strict
    peak improvements; stops after [rounds] (default 400) stalled
    proposals.  The result always validates and never has a higher peak
    than the input. *)

val solve : ?rounds:int -> ?seed:int -> Demand_map.t -> solution
(** {!Planner.plan} followed by {!improve}: a Woff upper bound at most the
    constructive one. *)
