(** The specialized constructive strategies of §2.1 (Figures 2.2 and 2.3).

    The generic planner realizes the Theorem 1.4.1 constant [(2·3^l + l)];
    for the two structured examples the paper does much better with
    bespoke moves, and this module reproduces those exact factors:

    - {b Line} (Fig 2.2): every vehicle in the radius-[W2] band around the
      line walks straight to its nearest line point; capacity [2·W2]
      suffices.
    - {b Point} (Fig 2.3): every vehicle in the [(2·W3+1)]-square centered
      on the demand point walks to it; capacity [3·W3] suffices.

    Both strategies are built as explicit vehicle assignments and
    validated by replay, so the claimed factors are measured, not
    asserted. *)

type move = {
  from_ : Point.t;  (** the vehicle's depot *)
  to_ : Point.t;  (** where it relocates (possibly its own depot) *)
  serve : int;  (** units it serves at the destination *)
}

type strategy = {
  moves : move list;
  capacity_used : int;  (** max over vehicles of travel + service *)
}

val line : len:int -> d:int -> strategy
(** Fig 2.2 on a finite segment of [len] points with demand [d] each:
    the [2·⌈W2⌉+1] vehicles of each column converge on their line point
    and split its demand.  [capacity_used <= 2·W2 + 2] (the +2 is integer
    rounding). *)

val point : d:int -> strategy
(** Fig 2.3: the [(2·⌈W3⌉+1)^2] vehicles of the centered square converge
    on the demand point.  [capacity_used <= 3·W3 + 3]. *)

val validate : strategy -> Demand_map.t -> (unit, string) result
(** Replays the moves: every unit of demand served exactly, each vehicle
    used once, and no vehicle spends more than [capacity_used]. *)

val line_demand : len:int -> d:int -> Demand_map.t
val point_demand : d:int -> Demand_map.t
