(** Algorithm 1 of the paper (§2.3): a linear-time
    [2·(2·3^l + l)]-approximation of [Woff] on the [n^l] grid, [n] a power
    of two.

    The algorithm repeatedly coarsens the demand array by factor 2 per
    axis; at scale [w] it checks whether some anchored [w]-block carries
    more demand than [w·(3w)^l] (the budget a [w]-cube can receive from its
    radius-[w] neighborhood).  The first scale at which every block fits
    yields the estimate [(2·3^l + l)·w], with the special cases of
    Properties 2.3.1–2.3.3 handled up front. *)

type result = {
  value : float;  (** the capacity estimate [West], [Woff <= West] *)
  cube_side : int option;
      (** the accepted scale [w] when the main loop returned; [None] for
          the special-case exits *)
  cell_ops : int;
      (** number of demand-cell operations performed — the witness for the
          linear-time claim (experiment E6) *)
}

val run : dim:int -> n:int -> Demand_map.t -> result
(** [run ~dim ~n dm] executes Algorithm 1 on the grid [{0..n-1}^dim].
    Requires [n] a power of two and the support of [dm] inside the grid.
    Raises [Invalid_argument] otherwise. *)

val approximation_factor : int -> float
(** [2·(2·3^l + l)] — the proven worst-case ratio for dimension [l]. *)
