(** Constructive offline strategy — the upper-bound half of Theorem 1.4.1
    (Lemma 2.2.5 / Corollary 2.2.7).

    Given the demand, compute [ωc] and its cube side [s], partition the
    grid into [s]-cubes, and let every vehicle (one per vertex) first serve
    up to a budget [B = ⌈3^l·ωc⌉] at its own vertex, then optionally
    relocate — within its own cube only — to one overloaded vertex and
    serve up to another [B] units there.  Corollary 2.2.7 guarantees the
    per-cube headcount suffices, and the resulting per-vehicle energy is at
    most [2B + l·(s-1) <= (2·3^l + l)·ωc + 2].

    The plan is an explicit, auditable object: {!validate} replays it and
    checks full service, cube confinement and the energy bound, and
    {!max_energy} is the measured upper bound on [Woff] reported by the
    benchmarks. *)

type assignment = {
  home : Point.t;  (** the vehicle's depot *)
  serve_at_home : int;  (** units served before moving *)
  target : (Point.t * int) option;
      (** relocation destination and units served there *)
}

type t = {
  dim : int;
  omega : float;  (** the [ωc] the plan was built for *)
  side : int;  (** cube side [s = ⌈ωc⌉] *)
  budget : int;  (** per-chunk service budget [B] *)
  window : Box.t;  (** vehicle window, tiled exactly by [s]-cubes *)
  assignments : assignment list;
      (** vehicles with nonzero work; all other vehicles idle *)
}

val plan : Demand_map.t -> t
(** Builds the constructive plan.  Raises [Failure] only if the internal
    headcount guarantee is violated (which would falsify Corollary 2.2.7 —
    exercised as a property test). *)

val energy_of : assignment -> int
(** Service plus travel energy the assignment consumes. *)

val max_energy : t -> int
(** Peak per-vehicle energy of the plan: the measured [Woff] upper
    bound.  0 for an empty plan. *)

val energy_bound : t -> float
(** The proven cap [2B + l·(s-1)] for this plan's parameters. *)

val theorem_bound : dim:int -> float -> float
(** [(2·3^l + l)·ω], the Theorem 1.4.1 upper-bound expression. *)

val validate : t -> Demand_map.t -> (unit, string) result
(** Replays the plan: every unit of demand served exactly, every vehicle
    confined to its cube, every vehicle within {!energy_bound}. *)
