lib/core/exact.mli: Box Demand_map
