lib/core/omega.mli: Demand_map Point
