lib/core/exact.ml: Array Ball Box Demand_map Float List Point
