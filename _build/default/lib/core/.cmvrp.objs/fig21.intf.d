lib/core/fig21.mli: Demand_map Point
