lib/core/fig21.ml: Box Demand_map Float List Omega Option Point Printf
