lib/core/localsearch.ml: Array Box Demand_map Hashtbl List Option Planner Point Printf
