lib/core/oracle.ml: Array Ball Demand_map Float List Omega Point Transport
