lib/core/alg1.ml: Array Box Demand_map Float
