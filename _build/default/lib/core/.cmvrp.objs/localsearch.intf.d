lib/core/localsearch.mli: Box Demand_map Planner Point
