lib/core/planner.ml: Array Box Demand_map Float List Omega Option Point Printf Queue Result
