lib/core/oracle.mli: Demand_map Point
