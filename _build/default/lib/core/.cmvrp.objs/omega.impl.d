lib/core/omega.ml: Array Ball Box Demand_map Float
