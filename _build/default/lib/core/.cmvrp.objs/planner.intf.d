lib/core/planner.mli: Box Demand_map Point
