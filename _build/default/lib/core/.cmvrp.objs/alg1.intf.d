lib/core/alg1.mli: Demand_map
