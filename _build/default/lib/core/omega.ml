let solve ~neighborhood_size ~total =
  if total < 0 then invalid_arg "Omega.solve: negative total";
  if total = 0 then 0.0
  else begin
    (* Scan the integer brackets [m, m+1).  Within a bracket the
       neighborhood size c_m is constant, so the infimum there is
       max(m, total/c_m), admissible when < m+1.  The scan is short:
       c_m >= 1 gives termination by m = total at the latest. *)
    let rec scan m =
      let c = neighborhood_size m in
      if c <= 0 then invalid_arg "Omega.solve: neighborhood size must be positive";
      let candidate = Float.max (float_of_int m) (float_of_int total /. float_of_int c) in
      if candidate < float_of_int (m + 1) then candidate else scan (m + 1)
    in
    scan 0
  end

let of_points points ~total =
  match points with
  | [] -> invalid_arg "Omega.of_points: empty set"
  | _ ->
      solve ~total ~neighborhood_size:(fun r -> Ball.neighborhood_size points ~radius:r)

let of_cube ~dim ~side ~total =
  solve ~total ~neighborhood_size:(fun r -> Ball.cube_ball_volume ~dim ~side ~radius:r)

(* --- l-dimensional prefix sums over a box, for sliding cube scans --- *)

module Prefix = struct
  type t = { box : Box.t; sums : int array }

  let build dm box =
    let vol = Box.volume box in
    let sums = Array.make vol 0 in
    Box.iter box (fun p -> sums.(Box.index box p) <- Demand_map.value dm p);
    (* Accumulate along each axis in turn. *)
    let n = Box.dim box in
    for axis = 0 to n - 1 do
      Box.iter box (fun p ->
          if p.(axis) > box.Box.lo.(axis) then begin
            let prev = Array.copy p in
            prev.(axis) <- prev.(axis) - 1;
            sums.(Box.index box p) <-
              sums.(Box.index box p) + sums.(Box.index box prev)
          end)
    done;
    { box; sums }

  (* Sum of demand over the intersection of [qlo, qhi] with the box. *)
  let query t ~qlo ~qhi =
    let n = Box.dim t.box in
    let lo = Array.init n (fun i -> max qlo.(i) t.box.Box.lo.(i)) in
    let hi = Array.init n (fun i -> min qhi.(i) t.box.Box.hi.(i)) in
    if Array.exists (fun i -> lo.(i) > hi.(i)) (Array.init n (fun i -> i)) then 0
    else begin
      (* Inclusion–exclusion over the 2^n corners. *)
      let acc = ref 0 in
      let corner = Array.make n 0 in
      for mask = 0 to (1 lsl n) - 1 do
        let sign = ref 1 in
        let valid = ref true in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 then corner.(i) <- hi.(i)
          else begin
            corner.(i) <- lo.(i) - 1;
            sign := - !sign;
            if corner.(i) < t.box.Box.lo.(i) then valid := false
          end
        done;
        if !valid then acc := !acc + (!sign * t.sums.(Box.index t.box corner))
      done;
      !acc
    end
end

(* Maximum demand over all side-[s] cubes meeting the support. *)
let scan_cube_demand prefix bbox ~s =
  let n = Box.dim bbox in
  let anchor_box =
    Box.make
      ~lo:(Array.init n (fun i -> bbox.Box.lo.(i) - s + 1))
      ~hi:(Array.map (fun x -> x) bbox.Box.hi)
  in
  let best = ref 0 in
  Box.iter anchor_box (fun a ->
      let qhi = Array.map (fun x -> x + s - 1) a in
      let v = Prefix.query prefix ~qlo:a ~qhi in
      if v > !best then best := v);
  !best

let max_cube_demand dm ~side =
  if side <= 0 then invalid_arg "Omega.max_cube_demand: side must be positive";
  match Demand_map.bounding_box dm with
  | None -> 0
  | Some bbox -> scan_cube_demand (Prefix.build dm bbox) bbox ~s:side

let max_over_cubes dm =
  match Demand_map.bounding_box dm with
  | None -> 0.0
  | Some bbox ->
      let dim = Box.dim bbox in
      let prefix = Prefix.build dm bbox in
      let max_side =
        let s = ref 1 in
        for i = 0 to dim - 1 do
          s := max !s (Box.side bbox i)
        done;
        !s
      in
      let best = ref 0.0 in
      for s = 1 to max_side do
        let d = scan_cube_demand prefix bbox ~s in
        if d > 0 then begin
          let w = of_cube ~dim ~side:s ~total:d in
          if w > !best then best := w
        end
      done;
      !best

let max_over_subsets dm =
  let support = Array.of_list (Demand_map.support dm) in
  let n = Array.length support in
  if n > 16 then invalid_arg "Omega.max_over_subsets: support too large";
  if n = 0 then 0.0
  else begin
    let best = ref 0.0 in
    for mask = 1 to (1 lsl n) - 1 do
      let points = ref [] and total = ref 0 in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then begin
          points := support.(i) :: !points;
          total := !total + Demand_map.value dm support.(i)
        end
      done;
      let w = of_points !points ~total:!total in
      if w > !best then best := w
    done;
    !best
  end

let int_pow base e =
  let v = ref 1 in
  for _ = 1 to e do
    v := !v * base
  done;
  !v

let cube_fixpoint_with_side dm =
  match Demand_map.bounding_box dm with
  | None -> (0.0, 1)
  | Some bbox ->
      let dim = Box.dim bbox in
      let prefix = Prefix.build dm bbox in
      let total = Demand_map.total dm in
      let cube_demand s =
        (* Beyond the bounding box's largest side, every cube placement can
           cover the full support. *)
        let covers_all =
          let rec loop i = i = dim || (Box.side bbox i <= s && loop (i + 1)) in
          loop 0
        in
        if covers_all then total else scan_cube_demand prefix bbox ~s
      in
      let best = ref infinity and best_side = ref 1 in
      let s = ref 1 in
      let continue = ref true in
      while !continue do
        let m = cube_demand !s in
        let cand = float_of_int m /. float_of_int (int_pow (3 * !s) dim) in
        (* ω with ⌈ω⌉ = s lives in (s-1, s]; the smallest admissible value
           there is max(cand, s-1). *)
        if cand <= float_of_int !s then begin
          let w = Float.max cand (float_of_int (!s - 1)) in
          if w < !best then begin
            best := w;
            best_side := !s
          end
        end;
        (* Larger sides can only yield ω >= s-1; stop once that exceeds the
           best found. *)
        if float_of_int !s >= !best || !s > total + 1 then continue := false
        else incr s
      done;
      if !best = infinity then (0.0, 1) else (!best, !best_side)

let cube_fixpoint dm = fst (cube_fixpoint_with_side dm)

(* --- closed forms of §2.1, solved by bisection --- *)

let bisect ~f ~target ~lo ~hi =
  (* f increasing; returns w with f w = target to ~1e-12 relative. *)
  let lo = ref lo and hi = ref hi in
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if f mid < target then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let example_square_w1 ~a ~d =
  if a <= 0 || d < 0 then invalid_arg "Omega.example_square_w1: bad parameters";
  if d = 0 then 0.0
  else begin
    let fa = float_of_int a and fd = float_of_int d in
    let f w = w *. (((2.0 *. w) +. fa) ** 2.0) in
    bisect ~f ~target:(fd *. fa *. fa) ~lo:0.0 ~hi:fd
  end

let example_line_w2 ~d =
  if d < 0 then invalid_arg "Omega.example_line_w2: negative demand";
  if d = 0 then 0.0
  else begin
    let fd = float_of_int d in
    let f w = w *. ((2.0 *. w) +. 1.0) in
    bisect ~f ~target:fd ~lo:0.0 ~hi:fd
  end

let example_point_w3 ~d =
  if d < 0 then invalid_arg "Omega.example_point_w3: negative demand";
  if d = 0 then 0.0
  else begin
    let fd = float_of_int d in
    let f w = w *. (((2.0 *. w) +. 1.0) ** 2.0) in
    bisect ~f ~target:fd ~lo:0.0 ~hi:fd
  end
