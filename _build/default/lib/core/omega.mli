(** The characteristic quantity [ω_T] of the paper (equation 1.1) and its
    maximizations.

    For a finite [T ⊆ Z^l] with total demand [D(T) = Σ_{x∈T} d(x)], the
    paper defines [ω_T] as the solution of [ω_T · |N_{ω_T}(T)| = D(T)].
    Lattice distances are integers, so [|N_ω(T)|] is a step function of
    [⌊ω⌋] and the equation can jump over [D(T)]; we therefore use

      [ω_T = inf (ω : ω · |N_{⌊ω⌋}(T)| >= D(T))],

    which coincides with the paper's value whenever the equation has an
    exact solution and is within the same constant factor everywhere
    (DESIGN.md §2).

    Theorem 1.4.1: [Woff = Θ(max_T ω_T)].  Corollary 2.2.6 restricts the
    maximization to cubes at constant-factor cost; that restriction is what
    makes the quantity computable, and {!max_over_cubes} implements it. *)

val solve : neighborhood_size:(int -> int) -> total:int -> float
(** [solve ~neighborhood_size ~total] returns
    [inf (ω : ω · neighborhood_size ⌊ω⌋ >= total)] for a non-decreasing,
    strictly positive [neighborhood_size].  0 when [total = 0]. *)

val of_points : Point.t list -> total:int -> float
(** [ω_T] for an explicit finite set [T] (closed form when [T] fills a
    box, BFS dilation otherwise) carrying total demand [total]. *)

val of_cube : dim:int -> side:int -> total:int -> float
(** [ω_T] for a [side]-cube of [Z^dim] via the closed-form
    [|N_r(cube)|]. *)

val max_cube_demand : Demand_map.t -> side:int -> int
(** Largest total demand inside any axis-aligned [side]-cube (any anchor),
    by sliding-window prefix sums.  Shared by the cube scans here and by
    the Theorem 5.1.1 lower bound in the transfer library. *)

val max_over_cubes : Demand_map.t -> float
(** [max (ω_T : T an l-cube)] over all cube sides and anchor positions
    meeting the demand support — the computable characterization of
    Corollary 2.2.6.  Cost [O(sides · volume)] over the support's bounding
    box. *)

val max_over_subsets : Demand_map.t -> float
(** Exhaustive [max_T ω_T] over all subsets of the support; exponential
    test witness (raises [Invalid_argument] beyond 16 support points). *)

val cube_fixpoint : Demand_map.t -> float
(** The [ωc] of Corollary 2.2.7:
    [min (ω : ω·(3⌈ω⌉)^l >= max demand in any ⌈ω⌉-cube)], computed by
    scanning integer cube sides.  Satisfies [ωc <= max_over_cubes] and
    [Woff <= (2·3^l + l)·ωc]. *)

val cube_fixpoint_with_side : Demand_map.t -> float * int
(** [ωc] together with the integer cube side [s = ⌈ωc⌉] achieving it (so
    [s - 1 <= ωc <= s] and every side-[s] cube carries at most
    [ωc·(3s)^l] demand).  The side is what the offline planner and the
    online strategy partition by.  [(0.0, 1)] for empty demand. *)

(** Closed-form capacities of the worked examples of §2.1 (Figure 2.1);
    each solves its cubic by bisection to [1e-9] relative accuracy. *)

val example_square_w1 : a:int -> d:int -> float
(** [W1] with [W1·(2·W1 + a)^2 = d·a^2] — Example 2.1.1. *)

val example_line_w2 : d:int -> float
(** [W2] with [W2·(2·W2 + 1) = d] — Example 2.1.2. *)

val example_point_w3 : d:int -> float
(** [W3] with [W3·(2·W3 + 1)^2 = d] — Example 2.1.3. *)
