(** Exactly-solvable special cases of [Woff].

    For demand concentrated at a single site, every vehicle's optimal
    behaviour is forced — walk straight to the site and serve — so the
    minimal capacity has a closed characterization: [W] is feasible iff
    the fleet's deliverable energy [Σ_{r <= W} shell(r)·(W - r)] covers
    the demand, where [shell(r)] counts lattice points at L1 distance
    exactly [r].  This gives the exact [Woff] for Example 2.1.3, pinning
    the true constant between the paper's lower bound [W3] and its upper
    bound [3·W3], and calibrating how tight the general-purpose planner
    and local search really are. *)

val point_capacity : dim:int -> demand:int -> float
(** Exact [Woff] for [demand] units at one vertex of [Z^dim].  0 for zero
    demand. *)

val point_deliverable : dim:int -> w:float -> float
(** Energy the fleet can deliver to one site at capacity [w]:
    [Σ_{r <= w} shell(r)·(w - r)].  Strictly increasing in [w]; the
    inverse of {!point_capacity}. *)

val tiny_woff : ?max_units:int -> Demand_map.t -> window:Box.t -> int option
(** Exact integer [Woff] for a tiny instance by branch-and-bound over all
    assignments of demand units to the window's vehicles, with optimal
    (exhaustively ordered) per-vehicle routes.  The window must contain
    the support; vehicles outside it are assumed unused (choose it at
    least [⌈ω*⌉] around the support to make that sound).  [None] when the
    instance exceeds [max_units] demand units (default 6) or the window
    has more than 16 vehicles — beyond that the search space is too large
    to call "exact" in a test suite. *)
