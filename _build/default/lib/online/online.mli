(** The decentralized on-line strategy of Chapter 3.

    One vehicle per grid vertex; the world is partitioned into
    [side]-cubes; each cube's cells are matched into adjacent black/white
    pairs (via {!Snake.pairing}).  The vehicle on one cell of each pair
    starts [Active] and serves every job arriving at either cell of its
    pair (walking at most distance 1); its partner starts [Idle].  When an
    active vehicle runs out of energy it becomes [Done] and starts a
    Dijkstra–Scholten diffusing computation (§3.1, Algorithm 2) over the
    cube's communication graph to locate an idle vehicle; phase II routes a
    [Move] order down the discovered tree path, and the idle candidate
    relocates and takes over the pair.

    Failure handling follows §3.2.5: a vehicle that fails to initiate
    (scenario 2) or dies outright (scenario 3) is detected by its monitor —
    the active vehicle of the next pair of the cube, which realizes the
    paper's "monitoring"-pointer loop — via a heartbeat timeout, and the
    monitor initiates the diffusing computation on its behalf.

    Modelling notes (DESIGN.md §2): the communication topology links
    vehicles whose depots are within [comm_radius] (default 2) in the same
    cube — depot-based rather than position-based, constant-equivalent
    since vehicles stay within distance 1 of a pair cell; message delays
    are random but FIFO per channel; heartbeat timeouts are abstracted as a
    delayed self-message to the monitor.  Job arrivals are spaced so that
    the network quiesces in between, exactly the paper's timing
    assumption. *)

type fault_plan = {
  silent_initiators : int list;
      (** vehicles that, on becoming done, fail to start the diffusing
          computation (scenario 2) *)
  deaths : (int * int) list;
      (** [(k, v)]: vehicle [v] breaks down (dead, cannot serve or relay)
          immediately after the [k]-th job has been processed; [k = 0]
          kills before the first job (scenarios 3–4) *)
  longevity : (int * float) list;
      (** Chapter 4 longevity parameters [(v, p)]: vehicle [v] breaks the
          moment a fraction [p ∈ [0,1]] of its initial energy has been
          spent (scenario 4).  Unlisted vehicles have [p = 1] (never
          break this way). *)
}

val no_faults : fault_plan

type config = {
  capacity : float;  (** initial energy [W] of every vehicle *)
  side : int;  (** cube side of the partition *)
  comm_radius : int;  (** neighbor radius (the paper's constant, 2) *)
  seed : int;  (** message-delay randomness *)
  faults : fault_plan;
}

val config : ?comm_radius:int -> ?seed:int -> ?faults:fault_plan ->
  capacity:float -> side:int -> unit -> config

type failure = {
  job : int;  (** 1-based index in the arrival sequence *)
  position : Point.t;
  reason : string;
}

type outcome = {
  served : int;
  failures : failure list;
  max_energy_used : float;  (** peak consumption over all vehicles *)
  mean_energy_used : float;  (** over vehicles that consumed anything *)
  messages : int;  (** protocol messages delivered (E8) *)
  replacements : int;  (** completed phase-II relocations *)
  computations : int;  (** diffusing computations initiated *)
  starved_searches : int;  (** computations that found no idle vehicle *)
  vehicles : int;  (** fleet size (window volume) *)
  vehicles_still_serviceable : int;
      (** vehicles alive with enough energy for another job at the end of
          the run — Lemma 3.3.1 keeps this at least half the fleet at the
          theorem capacity *)
}

val succeeded : outcome -> bool
(** No failed job and no energy violation. *)

(** Protocol-level events, emitted in causal order to an optional
    observer — the audit trail behind the aggregate counters. *)
type event =
  | Job_served of { job : int; position : Point.t; vehicle : int; walk : int }
  | Vehicle_retired of { vehicle : int; pair : int }
      (** became done after exhausting its energy (§3.2.1) *)
  | Vehicle_died of { vehicle : int }  (** scenario 3/4 breakdown *)
  | Computation_started of { initiator : int; pair : int }
      (** a diffusing computation began (Algorithm 2) *)
  | Candidate_found of { initiator : int; pair : int }
      (** phase I terminated with a candidate; phase II (Move) begins *)
  | Replacement of { vehicle : int; pair : int; dest : Point.t }
      (** the candidate relocated and took the pair over *)
  | Search_starved of { pair : int }
      (** no idle vehicle could be found for the pair *)

val run : ?observer:(event -> unit) -> config -> Workload.t -> outcome
(** Executes the strategy on the arrival sequence.  [observer] (default
    ignore) receives every protocol event as it happens. *)

val capacity_bound : dim:int -> float -> float
(** [(4·3^l + l)·ω] — the capacity Lemma 3.3.1 proves sufficient. *)

val recommended : ?seed:int -> Workload.t -> config
(** Config with the side [⌈ωc⌉] and theorem capacity derived from the
    workload's aggregate demand (what an informed designer would pick). *)

val min_feasible_capacity :
  ?tol:float -> ?seed:int -> side:int -> Workload.t -> float
(** Smallest capacity (within [tol], default 0.25) at which the strategy
    serves every job — the measured [Won] upper bound of experiment E7.
    Runs the full simulation per probe. *)
