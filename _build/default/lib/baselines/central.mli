(** Central-depot dispatch under the thesis's energy objective.

    Most VRP literature stations the whole fleet at one depot (§1.1); the
    thesis's point is that geographically disperse depots need far less
    per-vehicle energy when the service area is wide.  This model makes
    the comparison crisp: [fleet] vehicles sit at the depot, each makes at
    most one outbound trip to a single site and serves some of its demand
    there (no return leg), so a vehicle serving [k] units at distance [δ]
    needs [W >= δ + k].  {!min_capacity} is the smallest uniform [W] that
    lets the fleet cover everything. *)

val vehicles_needed : Demand_map.t -> depot:Point.t -> capacity:int -> int option
(** Vehicles required at capacity [W]: [Σ_x ⌈d(x)/(W - δ(x))⌉], or [None]
    when some positive-demand site is out of reach ([W <= δ(x)]). *)

val min_capacity : Demand_map.t -> depot:Point.t -> fleet:int -> int option
(** Smallest integer [W] such that {!vehicles_needed} fits in [fleet];
    [None] if even one vehicle per demand unit cannot cover (fleet too
    small). *)
