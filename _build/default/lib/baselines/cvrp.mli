(** Classical central-depot CVRP heuristics — the comparison points the
    thesis reviews in §1.1 (Clarke–Wright savings [4], the Gillett–Miller
    sweep [9]) — adapted to the grid/L1 setting.

    A route starts at the depot, visits customers, and returns.  Routes
    respect a service-capacity bound [q] (total demand per route).  The
    {!route_energy} of a route under the thesis's objective is its travel
    cost plus the demand it serves — directly comparable to the per-vehicle
    energy [W] of CMVRP. *)

type customer = { location : Point.t; amount : int }

type route = { stops : Point.t list (** visit order, depot excluded *) }

type solution = {
  depot : Point.t;
  routes : route list;
  capacity : int;  (** the service capacity [q] the routes respect *)
}

val customers_of_demand : Demand_map.t -> customer list
(** One customer per support point. *)

val route_demand : Demand_map.t -> route -> int

val route_travel : depot:Point.t -> route -> int
(** Closed-tour travel: depot through the stops and back. *)

val route_energy : dm:Demand_map.t -> depot:Point.t -> route -> int
(** Travel plus service — the CMVRP-comparable per-vehicle energy. *)

val total_travel : solution -> int

val max_route_energy : dm:Demand_map.t -> solution -> int
(** The fleet's peak per-vehicle energy: what the depot's vehicles would
    each need as capacity [W]. *)

val clarke_wright : dm:Demand_map.t -> depot:Point.t -> capacity:int -> solution
(** Savings algorithm: start with one round trip per customer, repeatedly
    merge the route pair with the best positive saving
    [d(0,i) + d(0,j) - d(i,j)] subject to the capacity bound, linking only
    at route endpoints. *)

val sweep : ?improve:bool -> dm:Demand_map.t -> depot:Point.t -> int -> solution
(** Gillett–Miller: order customers by polar angle around the depot, cut
    into capacity-respecting clusters, and route each cluster
    nearest-neighbor (plus 2-opt when [improve], the default). *)

val validate : dm:Demand_map.t -> solution -> (unit, string) result
(** Every customer visited exactly once across routes; every route within
    the service capacity. *)

val centroid : Demand_map.t -> Point.t
(** Demand-weighted centroid (rounded) — the natural depot placement for
    the comparisons. *)
