(** Travelling-salesman route construction on grid points (L1 metric) —
    the primitive under the classical central-depot CVRP heuristics the
    thesis reviews in §1.1. *)

val path_length : Point.t list -> int
(** Sum of consecutive L1 distances (an open path, no return leg). *)

val cycle_length : Point.t list -> int
(** Closed-tour length: the open path plus the leg back to the start.
    0 for fewer than two points. *)

val nearest_neighbor : start:Point.t -> Point.t list -> Point.t list
(** Orders the points greedily by nearest-unvisited, beginning from
    [start] ([start] itself is not included in the output). *)

val two_opt : ?max_rounds:int -> Point.t list -> Point.t list
(** 2-opt improvement for the closed tour through the given order:
    repeatedly reverses segments while the cycle length decreases, up to
    [max_rounds] (default 50) full passes.  Never increases
    {!cycle_length}. *)
