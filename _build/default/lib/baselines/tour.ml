let path_length points =
  let rec loop acc = function
    | a :: (b :: _ as rest) -> loop (acc + Point.l1_dist a b) rest
    | [ _ ] | [] -> acc
  in
  loop 0 points

let cycle_length points =
  match points with
  | [] | [ _ ] -> 0
  | first :: _ ->
      let rec last = function
        | [ x ] -> x
        | _ :: rest -> last rest
        | [] -> assert false
      in
      path_length points + Point.l1_dist (last points) first

let nearest_neighbor ~start points =
  let remaining = ref points in
  let out = ref [] in
  let current = ref start in
  while !remaining <> [] do
    let best, rest =
      List.fold_left
        (fun (best, rest) p ->
          match best with
          | None -> (Some p, rest)
          | Some b ->
              if Point.l1_dist !current p < Point.l1_dist !current b then
                (Some p, b :: rest)
              else (Some b, p :: rest))
        (None, []) !remaining
    in
    match best with
    | None -> ()
    | Some b ->
        out := b :: !out;
        current := b;
        remaining := rest
  done;
  List.rev !out

let two_opt ?(max_rounds = 50) points =
  let arr = Array.of_list points in
  let n = Array.length arr in
  if n < 4 then points
  else begin
    let dist i j = Point.l1_dist arr.(i mod n) arr.(j mod n) in
    let reverse i j =
      (* reverse arr[i..j] inclusive *)
      let i = ref i and j = ref j in
      while !i < !j do
        let tmp = arr.(!i) in
        arr.(!i) <- arr.(!j);
        arr.(!j) <- tmp;
        incr i;
        decr j
      done
    in
    let improved = ref true in
    let rounds = ref 0 in
    while !improved && !rounds < max_rounds do
      improved := false;
      incr rounds;
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          (* Swap edges (i-1,i) and (j,j+1) for (i-1,j) and (i,j+1). *)
          let before = dist ((i + n - 1) mod n) i + dist j ((j + 1) mod n) in
          let after = dist ((i + n - 1) mod n) j + dist i ((j + 1) mod n) in
          if after < before then begin
            reverse i j;
            improved := true
          end
        done
      done
    done;
    Array.to_list arr
  end
