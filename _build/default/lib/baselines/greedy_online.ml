type outcome = {
  served : int;
  failed : int;
  max_energy_used : float;
  moves : int;
}

let succeeded o = o.failed = 0

let run ?(pad = 0) ~capacity workload =
  let jobs = workload.Workload.jobs in
  if Array.length jobs = 0 then
    { served = 0; failed = 0; max_energy_used = 0.0; moves = 0 }
  else begin
    let dim = workload.Workload.dim in
    let lo = Array.copy jobs.(0) and hi = Array.copy jobs.(0) in
    Array.iter
      (fun p ->
        for i = 0 to dim - 1 do
          if p.(i) < lo.(i) then lo.(i) <- p.(i);
          if p.(i) > hi.(i) then hi.(i) <- p.(i)
        done)
      jobs;
    let window = Box.dilate (Box.make ~lo ~hi) pad in
    let n = Box.volume window in
    let pos = Array.init n (fun i -> Box.point_of_index window i) in
    let energy = Array.make n capacity in
    let served = ref 0 and failed = ref 0 and moves = ref 0 in
    Array.iter
      (fun x ->
        (* Nearest vehicle that can still walk there and serve. *)
        let best = ref (-1) and best_d = ref max_int in
        for v = 0 to n - 1 do
          let d = Point.l1_dist pos.(v) x in
          if d < !best_d && energy.(v) >= float_of_int (d + 1) then begin
            best := v;
            best_d := d
          end
        done;
        if !best < 0 then incr failed
        else begin
          let v = !best in
          energy.(v) <- energy.(v) -. float_of_int (!best_d + 1);
          moves := !moves + !best_d;
          pos.(v) <- x;
          incr served
        end)
      jobs;
    let peak =
      Array.fold_left (fun acc e -> Float.max acc (capacity -. e)) 0.0 energy
    in
    { served = !served; failed = !failed; max_energy_used = peak; moves = !moves }
  end

let min_feasible_capacity ?(tol = 0.25) ?pad workload =
  let ok w = succeeded (run ?pad ~capacity:w workload) in
  let rec grow hi attempts =
    if attempts = 0 then hi else if ok hi then hi else grow (2.0 *. hi) (attempts - 1)
  in
  let hi = grow 2.0 40 in
  let rec bisect lo hi =
    if hi -. lo <= tol then hi
    else begin
      let mid = 0.5 *. (lo +. hi) in
      if ok mid then bisect lo mid else bisect mid hi
    end
  in
  bisect 0.0 hi
