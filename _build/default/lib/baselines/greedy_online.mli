(** A centralized online baseline: every vertex hosts a vehicle (as in
    CMVRP), and each arriving job is served by the nearest vehicle that
    still has enough energy to walk there and serve — chosen with global
    knowledge, no communication protocol, no pairing, no replacement.

    This is the natural "omniscient greedy" to hold against the paper's
    decentralized strategy (experiment E7/E8): it spends no relocation
    energy in advance but lets vehicles drift and strand, so its minimal
    workable capacity is not obviously better. *)

type outcome = {
  served : int;
  failed : int;
  max_energy_used : float;
  moves : int;  (** total distance walked *)
}

val run : ?pad:int -> capacity:float -> Workload.t -> outcome
(** Vehicles at every vertex of the jobs' bounding box dilated by [pad]
    (default 0).  Pass the online strategy's cube side as [pad] to give
    greedy at least the CMVRP fleet. *)

val succeeded : outcome -> bool

val min_feasible_capacity : ?tol:float -> ?pad:int -> Workload.t -> float
(** Smallest capacity (within [tol], default 0.25) at which greedy serves
    every job. *)
