lib/baselines/greedy_online.ml: Array Box Float Point Workload
