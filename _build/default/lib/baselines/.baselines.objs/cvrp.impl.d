lib/baselines/cvrp.ml: Array Box Demand_map Float List Option Point Printf Tour
