lib/baselines/cvrp.mli: Demand_map Point
