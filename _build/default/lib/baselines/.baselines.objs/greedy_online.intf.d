lib/baselines/greedy_online.mli: Workload
