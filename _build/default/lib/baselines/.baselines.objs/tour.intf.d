lib/baselines/tour.mli: Point
