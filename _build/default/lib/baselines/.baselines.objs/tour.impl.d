lib/baselines/tour.ml: Array List Point
