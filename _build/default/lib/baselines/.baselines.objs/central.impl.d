lib/baselines/central.ml: Demand_map Point
