lib/baselines/central.mli: Demand_map Point
