let bfs_multi g ~sources =
  let n = Digraph.n_vertices g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = max_int then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Digraph.iter_succ g v (fun ~dst ~weight:_ ->
        if dist.(dst) = max_int then begin
          dist.(dst) <- dist.(v) + 1;
          Queue.add dst queue
        end)
  done;
  dist

let bfs g ~source = bfs_multi g ~sources:[ source ]

let dijkstra_with_parents g ~source =
  let n = Digraph.n_vertices g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let heap =
    Heap.create ~compare:(fun (a, _) (b, _) -> Int.compare a b) ()
  in
  dist.(source) <- 0;
  Heap.push heap (0, source);
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
        if d <= dist.(v) then
          Digraph.iter_succ g v (fun ~dst ~weight ->
              if weight < 0 then invalid_arg "Paths.dijkstra: negative weight";
              let nd = d + weight in
              if nd < dist.(dst) then begin
                dist.(dst) <- nd;
                parent.(dst) <- v;
                Heap.push heap (nd, dst)
              end);
        drain ()
  in
  drain ();
  (dist, parent)

let dijkstra g ~source = fst (dijkstra_with_parents g ~source)

let bellman_ford g ~source =
  let n = Digraph.n_vertices g in
  let dist = Array.make n max_int in
  dist.(source) <- 0;
  let relax_once () =
    let changed = ref false in
    for v = 0 to n - 1 do
      if dist.(v) <> max_int then
        Digraph.iter_succ g v (fun ~dst ~weight ->
            if dist.(v) + weight < dist.(dst) then begin
              dist.(dst) <- dist.(v) + weight;
              changed := true
            end)
    done;
    !changed
  in
  let rec rounds k =
    if k = 0 then relax_once ()
    else begin
      let changed = relax_once () in
      if changed then rounds (k - 1) else false
    end
  in
  if rounds (n - 1) then Error () else Ok dist

let path_to ~parents v =
  let rec climb v acc = if v = -1 then acc else climb parents.(v) (v :: acc) in
  climb v []

let connected_components g =
  let n = Digraph.n_vertices g in
  (* Build an undirected view by collecting reverse edges. *)
  let rev = Array.make n [] in
  for v = 0 to n - 1 do
    Digraph.iter_succ g v (fun ~dst ~weight:_ -> rev.(dst) <- v :: rev.(dst))
  done;
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for start = 0 to n - 1 do
    if comp.(start) = -1 then begin
      let id = !next in
      incr next;
      let stack = ref [ start ] in
      comp.(start) <- id;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            Digraph.iter_succ g v (fun ~dst ~weight:_ ->
                if comp.(dst) = -1 then begin
                  comp.(dst) <- id;
                  stack := dst :: !stack
                end);
            List.iter
              (fun u ->
                if comp.(u) = -1 then begin
                  comp.(u) <- id;
                  stack := u :: !stack
                end)
              rev.(v)
      done
    end
  done;
  comp
