(** Shortest paths and reachability on {!Digraph}. *)

val bfs : Digraph.t -> source:int -> int array
(** Unweighted hop distances from [source]; unreachable vertices get
    [max_int]. *)

val bfs_multi : Digraph.t -> sources:int list -> int array
(** Multi-source BFS (distance to the nearest source). *)

val dijkstra : Digraph.t -> source:int -> int array
(** Weighted distances; requires non-negative weights (raises
    [Invalid_argument] on a negative edge).  Unreachable = [max_int]. *)

val dijkstra_with_parents : Digraph.t -> source:int -> int array * int array
(** Distances plus a parent vector ([-1] for the source and unreachable
    vertices); follow parents to recover a shortest path. *)

val bellman_ford : Digraph.t -> source:int -> (int array, unit) result
(** Handles negative weights; [Error ()] when a negative cycle is reachable
    from the source.  Used only as a test witness for Dijkstra. *)

val path_to : parents:int array -> int -> int list
(** Follows the parent vector from a vertex back to the root and returns
    the root-to-vertex chain.  For an unreachable vertex this is the
    singleton [\[v\]]; callers decide reachability from the distance
    vector. *)

val connected_components : Digraph.t -> int array
(** Component id per vertex, treating edges as undirected. *)
