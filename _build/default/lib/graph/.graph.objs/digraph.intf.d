lib/graph/digraph.mli:
