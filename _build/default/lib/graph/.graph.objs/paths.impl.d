lib/graph/paths.ml: Array Digraph Heap Int List Queue
