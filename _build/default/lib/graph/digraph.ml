type t = {
  n : int;
  adj : (int * int) list array; (* reversed insertion order internally *)
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; adj = Array.make n []; edges = 0 }

let n_vertices g = g.n

let n_edges g = g.edges

let check_vertex g v name =
  if v < 0 || v >= g.n then invalid_arg ("Digraph." ^ name ^ ": vertex out of range")

let add_edge g ~src ~dst ~weight =
  check_vertex g src "add_edge";
  check_vertex g dst "add_edge";
  g.adj.(src) <- (dst, weight) :: g.adj.(src);
  g.edges <- g.edges + 1

let add_undirected g u v ~weight =
  add_edge g ~src:u ~dst:v ~weight;
  add_edge g ~src:v ~dst:u ~weight

let succ g v =
  check_vertex g v "succ";
  List.rev g.adj.(v)

let iter_succ g v f =
  check_vertex g v "iter_succ";
  List.iter (fun (dst, weight) -> f ~dst ~weight) (List.rev g.adj.(v))

let mem_edge g ~src ~dst =
  check_vertex g src "mem_edge";
  List.exists (fun (d, _) -> d = dst) g.adj.(src)
