(** Compact directed graphs over integer vertices [0 .. n-1].

    Substrate shared by the flow solvers, the communication topology of the
    online simulator, and the classical-baseline route builders.  Edges
    carry an integer weight (interpreted as distance or capacity by the
    client). *)

type t

val create : int -> t
(** [create n] is an empty graph on [n] vertices. *)

val n_vertices : t -> int

val n_edges : t -> int

val add_edge : t -> src:int -> dst:int -> weight:int -> unit

val add_undirected : t -> int -> int -> weight:int -> unit
(** Adds both directions with the same weight. *)

val succ : t -> int -> (int * int) list
(** [(dst, weight)] pairs leaving a vertex, in insertion order. *)

val iter_succ : t -> int -> (dst:int -> weight:int -> unit) -> unit

val mem_edge : t -> src:int -> dst:int -> bool
