(** Axis-aligned finite boxes of [Z^l].

    The paper works on the infinite grid; the implementation works inside a
    finite window that is provably large enough for the computation at hand
    (see DESIGN.md §2).  A box is the product of the integer intervals
    [\[lo.(i), hi.(i)\]], and doubles as the representation of the
    [⌈ω⌉]-cubes used throughout Chapters 2 and 3. *)

type t = private { lo : Point.t; hi : Point.t }

val make : lo:Point.t -> hi:Point.t -> t
(** Requires matching dimensions and [lo.(i) <= hi.(i)] for all [i]. *)

val of_side : dim:int -> lo:Point.t -> side:int -> t
(** The [side^dim] cube whose smallest corner is [lo]. *)

val cube_at_origin : dim:int -> side:int -> t

val dim : t -> int

val side : t -> int -> int
(** Number of lattice points along axis [i]. *)

val volume : t -> int
(** Number of lattice points in the box. *)

val mem : t -> Point.t -> bool

val clamp : t -> Point.t -> Point.t
(** Nearest point of the box in L1 (coordinate-wise clamp). *)

val l1_dist_to : t -> Point.t -> int
(** L1 distance from a point to the box (0 if inside). *)

val index : t -> Point.t -> int
(** Row-major rank of a member point, in [\[0, volume)].  Raises
    [Invalid_argument] if the point is outside. *)

val point_of_index : t -> int -> Point.t
(** Inverse of [index]. *)

val iter : t -> (Point.t -> unit) -> unit
(** Row-major iteration over all lattice points. *)

val fold : t -> init:'a -> f:('a -> Point.t -> 'a) -> 'a

val points : t -> Point.t list

val dilate : t -> int -> t
(** [dilate b r] grows every face by [r]: the bounding box of [N_r(b)].
    Note this is the bounding box, not the L1 neighborhood itself. *)

val intersect : t -> t -> t option

val partition_cubes : t -> side:int -> t list
(** Tiles the box by [side]-cubes anchored at [lo] (the partition of
    Lemma 2.2.5 / §3.2 of the paper); boundary tiles are cropped to the
    box. *)

val containing_cube : t -> side:int -> Point.t -> t
(** The tile of [partition_cubes] containing the given member point. *)

val pp : Format.formatter -> t -> unit
