(** Boustrophedon ("snake") traversal of a box and the black/white pairing
    of §3.2 of the paper.

    The online strategy colours each vertex of an [⌈ωc⌉]-cube black or
    white by coordinate-sum parity and pairs each black vertex with an
    adjacent white one, leaving at most one vertex unpaired per cube.  A
    snake path visits the cube's cells so that consecutive cells are
    lattice-adjacent; since each step flips the colour, pairing consecutive
    cells along the path realises exactly the paper's pairing. *)

val order : Box.t -> Point.t array
(** All points of the box in snake order: consecutive entries are at L1
    distance exactly 1 (for boxes with [volume >= 2]). *)

type pairing = {
  pairs : (Point.t * Point.t) array;  (** adjacent (first, second) pairs *)
  unpaired : Point.t option;  (** present iff the box has odd volume *)
}

val pairing : Box.t -> pairing
(** Perfect matching of the box's cells into adjacent pairs, save one
    leftover cell when the volume is odd. *)

val color : Point.t -> [ `Black | `White ]
(** Coordinate-sum parity colouring of the paper ([`Black] iff even). *)
