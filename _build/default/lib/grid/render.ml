let ramp = " .:-=+*#%@"

let heat_char ~max:max_v v =
  if v <= 0 then ramp.[0]
  else if max_v <= 0 then ramp.[String.length ramp - 1]
  else begin
    let steps = String.length ramp - 1 in
    let idx = 1 + ((v - 1) * (steps - 1) / max 1 max_v) in
    ramp.[min steps idx]
  end

let legend ~max:max_v =
  Printf.sprintf "0='%c' .. %d='%c'" ramp.[1] max_v ramp.[String.length ramp - 1]

let grid box ~cell =
  if Box.dim box <> 2 then invalid_arg "Render.grid: need a 2-D box";
  let buf = Buffer.create 256 in
  for y = box.Box.hi.(1) downto box.Box.lo.(1) do
    for x = box.Box.lo.(0) to box.Box.hi.(0) do
      Buffer.add_char buf (cell [| x; y |])
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
