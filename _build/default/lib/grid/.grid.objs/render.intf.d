lib/grid/render.mli: Box Point
