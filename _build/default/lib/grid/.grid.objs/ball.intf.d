lib/grid/ball.mli: Box Point
