lib/grid/ball.ml: Array Box List Point Queue
