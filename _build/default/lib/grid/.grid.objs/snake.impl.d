lib/grid/snake.ml: Array Box List Point
