lib/grid/box.ml: Array Format List Point
