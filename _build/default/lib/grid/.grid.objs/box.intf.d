lib/grid/box.mli: Format Point
