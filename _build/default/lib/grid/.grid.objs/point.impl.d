lib/grid/point.ml: Array Format Hashtbl Map Set Stdlib String
