lib/grid/render.ml: Array Box Buffer Printf String
