lib/grid/point.mli: Format Hashtbl Map Set
