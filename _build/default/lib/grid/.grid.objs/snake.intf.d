lib/grid/snake.mli: Box Point
