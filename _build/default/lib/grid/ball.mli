(** L1 neighborhoods [N_r(T)] and their cardinalities.

    Equation (1.1) of the paper, [ω_T · |N_{ω_T}(T)| = Σ_{x∈T} d(x)],
    requires [|N_r(T)|] for arbitrary finite [T].  This module provides:

    - exact closed forms for the shapes the paper analyses (single points,
      segments, and [l]-cubes — Examples 2.1.1–2.1.3 and Lemma 2.2.5), and
    - a BFS dilation for arbitrary finite sets, used both as the general
      fallback and as an independent witness for the closed forms in the
      test suite. *)

val binomial : int -> int -> int
(** [binomial n k] = C(n,k); 0 when [k < 0] or [k > n].  Exact in native
    [int] for all arguments used here. *)

val ball_volume : dim:int -> radius:int -> int
(** Number of lattice points of [Z^dim] at L1 distance [<= radius] from a
    point: [Σ_k 2^k C(dim,k) C(radius,k)].  [radius < 0] yields 0. *)

val cube_ball_volume : dim:int -> side:int -> radius:int -> int
(** [|N_radius(C)|] for a [side]-cube [C ⊆ Z^dim]:
    [Σ_k C(dim,k) side^(dim-k) 2^k C(radius,k)].  This is the quantity the
    paper's Corollary 2.2.7 approximates by [(3⌈ω⌉)^l]. *)

val box_ball_volume : Box.t -> radius:int -> int
(** Closed-form [|N_radius(B)|] for an arbitrary box [B] (sides may
    differ); covers the segment of Example 2.1.2 as a [1 x m] box. *)

val segment_ball_volume_2d : len:int -> radius:int -> int
(** 2-D special case used by Example 2.1.2: [(2r+1)·len + 2r^2]. *)

val dilate_set : Point.t list -> radius:int -> Point.Set.t
(** [N_radius(T)] by multi-source BFS; exact for any finite [T].
    Cost is proportional to the volume of the result. *)

val neighborhood_size : Point.t list -> radius:int -> int
(** [|N_radius(T)|].  Uses the closed form when [T] is recognised as a box,
    BFS otherwise. *)

val shell_sizes : Point.t list -> max_radius:int -> int array
(** [shell_sizes t ~max_radius].(r) = number of points at L1 distance
    exactly [r] from [T] (index 0 counts [T] itself).  Used by the
    energy-decay bound of Theorem 5.1.1. *)
