(** Points of the integer lattice [Z^l].

    The thesis places one depot, one vehicle and one (potential) customer at
    every vertex of [Z^l] and measures all travel in the Manhattan (L1)
    metric — see §1.3 of the paper.  A point is an [int array] of length
    [l]; the dimension is carried implicitly and must agree between
    arguments. *)

type t = int array

val dim : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic order; total, used for sorted containers. *)

val hash : t -> int

val l1_dist : t -> t -> int
(** Manhattan distance [‖x - y‖_1], the travel cost of the paper. *)

val l1_norm : t -> int

val add : t -> t -> t

val sub : t -> t -> t

val origin : int -> t
(** [origin l] is the zero point of [Z^l]. *)

val axis : int -> int -> int -> t
(** [axis l i v] is the point with [v] in coordinate [i], 0 elsewhere. *)

val neighbors : t -> t list
(** The [2l] lattice neighbors at L1 distance exactly 1 — the moves a
    vehicle can make for 1 unit of energy. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(x1,x2,...)]. *)

val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
