type t = { lo : Point.t; hi : Point.t }

let make ~lo ~hi =
  if Array.length lo <> Array.length hi then
    invalid_arg "Box.make: dimension mismatch";
  Array.iteri
    (fun i l -> if l > hi.(i) then invalid_arg "Box.make: lo > hi")
    lo;
  { lo; hi }

let of_side ~dim ~lo ~side =
  if side <= 0 then invalid_arg "Box.of_side: side must be positive";
  if Array.length lo <> dim then invalid_arg "Box.of_side: dimension mismatch";
  make ~lo ~hi:(Array.map (fun l -> l + side - 1) lo)

let cube_at_origin ~dim ~side = of_side ~dim ~lo:(Point.origin dim) ~side

let dim b = Array.length b.lo

let side b i = b.hi.(i) - b.lo.(i) + 1

let volume b =
  let v = ref 1 in
  for i = 0 to dim b - 1 do
    v := !v * side b i
  done;
  !v

let mem b p =
  let n = dim b in
  Array.length p = n
  &&
  let rec loop i = i = n || (p.(i) >= b.lo.(i) && p.(i) <= b.hi.(i) && loop (i + 1)) in
  loop 0

let clamp b p =
  Array.init (dim b) (fun i -> min b.hi.(i) (max b.lo.(i) p.(i)))

let l1_dist_to b p = Point.l1_dist p (clamp b p)

let index b p =
  if not (mem b p) then invalid_arg "Box.index: point outside box";
  let idx = ref 0 in
  for i = 0 to dim b - 1 do
    idx := (!idx * side b i) + (p.(i) - b.lo.(i))
  done;
  !idx

let point_of_index b k =
  if k < 0 || k >= volume b then invalid_arg "Box.point_of_index: out of range";
  let n = dim b in
  let p = Array.make n 0 in
  let k = ref k in
  for i = n - 1 downto 0 do
    let s = side b i in
    p.(i) <- b.lo.(i) + (!k mod s);
    k := !k / s
  done;
  p

let iter b f =
  let n = volume b in
  for k = 0 to n - 1 do
    f (point_of_index b k)
  done

let fold b ~init ~f =
  let acc = ref init in
  iter b (fun p -> acc := f !acc p);
  !acc

let points b = List.rev (fold b ~init:[] ~f:(fun acc p -> p :: acc))

let dilate b r =
  if r < 0 then invalid_arg "Box.dilate: negative radius";
  make
    ~lo:(Array.map (fun x -> x - r) b.lo)
    ~hi:(Array.map (fun x -> x + r) b.hi)

let intersect a b =
  let n = dim a in
  if n <> dim b then invalid_arg "Box.intersect: dimension mismatch";
  let lo = Array.init n (fun i -> max a.lo.(i) b.lo.(i)) in
  let hi = Array.init n (fun i -> min a.hi.(i) b.hi.(i)) in
  if Array.exists (fun i -> lo.(i) > hi.(i)) (Array.init n (fun i -> i)) then None
  else Some (make ~lo ~hi)

let partition_cubes b ~side:s =
  if s <= 0 then invalid_arg "Box.partition_cubes: side must be positive";
  let n = dim b in
  (* Number of tiles along each axis. *)
  let counts = Array.init n (fun i -> ((side b i + s - 1) / s)) in
  let tiles = Array.fold_left ( * ) 1 counts in
  let out = ref [] in
  for k = tiles - 1 downto 0 do
    let idx = Array.make n 0 in
    let k = ref k in
    for i = n - 1 downto 0 do
      idx.(i) <- !k mod counts.(i);
      k := !k / counts.(i)
    done;
    let lo = Array.init n (fun i -> b.lo.(i) + (idx.(i) * s)) in
    let hi = Array.init n (fun i -> min b.hi.(i) (lo.(i) + s - 1)) in
    out := make ~lo ~hi :: !out
  done;
  !out

let containing_cube b ~side:s p =
  if not (mem b p) then invalid_arg "Box.containing_cube: point outside box";
  let n = dim b in
  let lo = Array.init n (fun i -> b.lo.(i) + ((p.(i) - b.lo.(i)) / s * s)) in
  let hi = Array.init n (fun i -> min b.hi.(i) (lo.(i) + s - 1)) in
  make ~lo ~hi

let pp fmt b = Format.fprintf fmt "[%a..%a]" Point.pp b.lo Point.pp b.hi
