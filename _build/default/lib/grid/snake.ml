let order box =
  let n = Box.dim box in
  let coords = Array.make n 0 in
  (* Slice along each axis in turn; every odd-numbered slice replays the
     sub-traversal in reverse, so the seam between consecutive slices is a
     single step along the current axis. *)
  let rec build axis =
    if axis = n then [ Array.copy coords ]
    else begin
      let a = box.Box.lo.(axis) and b = box.Box.hi.(axis) in
      let slices = ref [] in
      for v = a to b do
        coords.(axis) <- v;
        let sub = build (axis + 1) in
        let sub = if (v - a) mod 2 = 1 then List.rev sub else sub in
        slices := List.rev_append sub !slices
      done;
      List.rev !slices
    end
  in
  Array.of_list (build 0)

type pairing = {
  pairs : (Point.t * Point.t) array;
  unpaired : Point.t option;
}

let pairing box =
  let path = order box in
  let n = Array.length path in
  let pairs = Array.init (n / 2) (fun i -> (path.(2 * i), path.((2 * i) + 1))) in
  let unpaired = if n mod 2 = 1 then Some path.(n - 1) else None in
  { pairs; unpaired }

let color p =
  let s = Array.fold_left ( + ) 0 p in
  if (s mod 2 + 2) mod 2 = 0 then `Black else `White
