(** ASCII rendering of 2-D grid data — demand heatmaps and world views for
    the examples and CLI. *)

val grid : Box.t -> cell:(Point.t -> char) -> string
(** Renders a 2-D box row by row (highest y first, so the picture matches
    the usual plane orientation), one character per cell.
    Raises [Invalid_argument] for non-2-D boxes. *)

val heat_char : max:int -> int -> char
(** Maps a value in [\[0, max\]] to the ramp [" .:-=+*#%@"] (space for 0,
    denser glyph for hotter). *)

val legend : max:int -> string
(** One-line legend for the heat ramp at the given maximum. *)
