(* An energy market on a convoy line (Chapter 5): vehicles can hand fuel
   to each other when co-located.  With tanks no larger than the initial
   charge this buys only a constant factor (Theorem 5.1.1); with big tanks
   a single collector flattens the requirement to Θ(average demand)
   (§5.2.1) — under either a per-transfer fee or a per-unit fee.

   Run with: dune exec examples/energy_market.exe *)

let () =
  let n = 100 in
  (* A convoy line with one refugee hot spot in the middle. *)
  let demand x = if x = n / 2 then 800 else 2 in
  let total = 800 + (2 * (n - 1)) in

  Printf.printf "segment of %d posts, total demand %d (hot spot of 800 at the middle)\n" n total;

  (* Without transfers: every vehicle must be able to reach the hot spot's
     neighborhood on its own — omega* is large. *)
  let no_transfer = Transfer.Segment.no_transfer_capacity ~n ~demand in
  Printf.printf "no transfers (C = W): omega* = %.2f per vehicle\n" no_transfer;

  (* With transfers and unbounded tanks, the §5.2.1 collector needs barely
     more than the average demand. *)
  List.iter
    (fun cost ->
      let name, formula =
        match cost with
        | Transfer.Fixed a1 ->
            ( Printf.sprintf "fixed fee a1=%.2f" a1,
              Transfer.Segment.closed_form ~n ~total ~cost )
        | Transfer.Variable a2 ->
            ( Printf.sprintf "per-unit fee a2=%.3f" a2,
              Transfer.Segment.closed_form ~n ~total ~cost )
      in
      let measured = Transfer.Segment.min_capacity ~n ~demand cost in
      let run = Transfer.Segment.simulate ~n ~demand ~cost ~w:measured in
      Printf.printf
        "collector, %s: min W = %.3f (paper formula %.3f), %d transfers, %d \
         distance walked\n"
        name measured formula run.Transfer.Segment.transfers
        run.Transfer.Segment.distance;
      assert run.Transfer.Segment.success)
    [ Transfer.Fixed 1.0; Transfer.Variable 0.01 ];

  Printf.printf "average demand = %.2f — the collector's W sits just above it\n"
    (float_of_int total /. float_of_int n);

  (* Theorem 5.1.1 in action on a 2-D patch: with C = W the decay bound
     keeps Wtrans-off within a constant of Woff. *)
  let dm =
    Demand_map.of_alist 2 [ ([| 0; 0 |], 300); ([| 6; 2 |], 120); ([| 3; 9 |], 60) ]
  in
  let lb = Transfer.lower_bound dm in
  let upper = Planner.max_energy (Planner.plan dm) in
  Printf.printf
    "2-D patch with C = W: transfer lower bound %.2f <= Wtrans-off <= Woff <= \
     %d (ratio %.1f)\n"
    lb upper
    (float_of_int upper /. lb);
  print_endline "energy_market: OK"
