(* Highway traffic monitoring (Example 2.1.2 / Figure 2.1(b)): demand d at
   every point of a line, zero elsewhere — "a reasonable and practical
   model when using the mobile vehicles to detect the traffic flow on the
   highway" (§2.1.2).

   The paper's closed form: W2 solves W(2W+1) = d, and capacity 2·W2
   suffices via the Figure 2.2 strategy (every vehicle within distance W2
   of the line walks straight to it).  We reproduce the scaling and then
   check the general machinery agrees.

   Run with: dune exec examples/highway_line.exe *)

let () =
  print_endline "traffic density d  ->  W2 (paper)  |  lattice omega_T  |  planner W";
  List.iter
    (fun d ->
      let w2 = Omega.example_line_w2 ~d in
      let len = 64 in
      let points = List.init len (fun i -> [| i; 0 |]) in
      let omega = Omega.of_points points ~total:(len * d) in
      let dm = Workload.demand (Workload.line ~len ~per_point:d) in
      let plan = Planner.plan dm in
      (match Planner.validate plan dm with
      | Ok () -> ()
      | Error m -> failwith m);
      Printf.printf "  d = %5d       ->  %8.2f    |  %8.2f        |  %6d\n" d w2
        omega
        (Planner.max_energy plan))
    [ 5; 20; 80; 320; 1280 ];

  (* W2 ~ sqrt(d/2): doubling d scales W2 by ~sqrt 2. *)
  let r = Omega.example_line_w2 ~d:2000 /. Omega.example_line_w2 ~d:1000 in
  Printf.printf "W2(2d)/W2(d) = %.4f (sqrt 2 = %.4f)\n" r (sqrt 2.0);

  (* And the online fleet handles a rush hour with only constant
     overhead. *)
  let workload = Workload.line ~len:24 ~per_point:30 in
  let cfg = Online.recommended workload in
  let o = Online.run cfg workload in
  Printf.printf
    "online rush hour: %d jobs served with per-vehicle capacity %.1f (%d \
     replacements)\n"
    o.Online.served cfg.Online.capacity o.Online.replacements;
  assert (Online.succeeded o);
  print_endline "highway_line: OK"
