examples/energy_market.ml: Demand_map List Planner Printf Transfer
