examples/highway_line.mli:
