examples/earthquake_point.ml: Demand_map Greedy_online List Omega Online Oracle Planner Printf Workload
