examples/quickstart.mli:
