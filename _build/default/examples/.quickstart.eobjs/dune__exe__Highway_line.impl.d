examples/highway_line.ml: List Omega Online Planner Printf Workload
