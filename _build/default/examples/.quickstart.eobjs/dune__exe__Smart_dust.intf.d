examples/smart_dust.mli:
