examples/quickstart.ml: Array Box Demand_map Omega Online Oracle Planner Printf Rng Workload
