examples/earthquake_point.mli:
