examples/energy_market.mli:
