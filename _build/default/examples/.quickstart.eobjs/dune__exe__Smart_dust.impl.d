examples/smart_dust.ml: Array Box Demand_map Online Oracle Printf Rng Workload
