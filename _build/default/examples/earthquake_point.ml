(* Earthquake response (Example 2.1.3 / Figure 2.1(c)): all demand erupts
   at a single point — "a reasonable model when using the mobile vehicles
   to detect the earthquake" (§2.1.3).

   The paper's closed form: W3 solves W(2W+1)^2 = d, so the required
   per-vehicle energy grows only like the cube root of the event
   magnitude: vehicles pour in from a W-ball around the epicenter
   (Figure 2.3).

   Run with: dune exec examples/earthquake_point.exe *)

let () =
  print_endline "magnitude d  ->  W3 (paper)  |  lattice omega  |  planner W | cube-root law d^(1/3)/W3";
  List.iter
    (fun d ->
      let w3 = Omega.example_point_w3 ~d in
      let omega = Omega.of_points [ [| 0; 0 |] ] ~total:d in
      let dm = Demand_map.of_alist 2 [ ([| 0; 0 |], d) ] in
      let plan = Planner.plan dm in
      (match Planner.validate plan dm with
      | Ok () -> ()
      | Error m -> failwith m);
      Printf.printf "  %9d  ->  %9.2f  |  %9.2f    |  %7d   | %.3f\n" d w3 omega
        (Planner.max_energy plan)
        ((float_of_int d ** (1.0 /. 3.0)) /. w3))
    [ 100; 1_000; 10_000; 100_000; 1_000_000 ];

  (* An aftershock sequence served online: the epicenter pair burns
     through vehicle after vehicle; diffusing computations keep pulling
     fresh ones in from the surrounding cube. *)
  let workload = Workload.point ~total:2_000 () in
  let cfg = Online.recommended workload in
  let o = Online.run cfg workload in
  Printf.printf
    "online aftershocks: %d jobs, %d vehicle replacements, %.0f messages per \
     replacement, capacity %.1f\n"
    o.Online.served o.Online.replacements
    (float_of_int o.Online.messages /. float_of_int (max 1 o.Online.replacements))
    cfg.Online.capacity;
  assert (Online.succeeded o);

  (* Against the omniscient greedy baseline. *)
  let ours = Online.min_feasible_capacity ~side:cfg.Online.side workload in
  let greedy = Greedy_online.min_feasible_capacity ~pad:cfg.Online.side workload in
  Printf.printf
    "minimal workable capacity: paper's strategy %.2f vs omniscient greedy \
     %.2f (lower bound omega* = %.2f)\n"
    ours greedy
    (Oracle.omega_star (Workload.demand workload));
  print_endline "earthquake_point: OK"
