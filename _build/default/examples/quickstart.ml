(* Quickstart: the CMVRP public API in one page.

   Build a demand profile, bound the minimal per-vehicle energy Woff from
   both sides (Theorem 1.4.1), construct and validate an explicit offline
   plan, then run the distributed online strategy (Theorem 1.4.2) on the
   same jobs.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A workload: 150 jobs clustered around two hot spots on a 10x10 area. *)
  let rng = Rng.create 42 in
  let box = Box.make ~lo:[| 0; 0 |] ~hi:[| 9; 9 |] in
  let workload =
    Workload.clustered ~rng ~box ~clusters:2 ~jobs_per_cluster:75 ~spread:2
  in
  let demand = Workload.demand workload in
  Printf.printf "workload: %s, %d jobs over %d sites\n" workload.Workload.name
    (Demand_map.total demand)
    (Demand_map.support_size demand);

  (* Lower bound: the exact value of the paper's program (2.8). *)
  let omega_star = Oracle.omega_star demand in
  Printf.printf "omega* (LP lower bound on Woff)     = %.3f\n" omega_star;

  (* The computable cube characterization (Corollary 2.2.7). *)
  let omega_c, side = Omega.cube_fixpoint_with_side demand in
  Printf.printf "omega_c (cube fixpoint), cube side  = %.3f, %d\n" omega_c side;

  (* Upper bound: an explicit constructive plan (Lemma 2.2.5). *)
  let plan = Planner.plan demand in
  (match Planner.validate plan demand with
  | Ok () -> ()
  | Error msg -> failwith ("plan failed validation: " ^ msg));
  Printf.printf "offline plan: max per-vehicle energy = %d (theorem cap %.1f)\n"
    (Planner.max_energy plan)
    (Planner.theorem_bound ~dim:2 omega_c +. 2.0);

  (* The distributed online strategy at the Lemma 3.3.1 capacity. *)
  let cfg = Online.recommended workload in
  let outcome = Online.run cfg workload in
  Printf.printf
    "online run: served %d/%d jobs, %d replacements via %d diffusing \
     computations, %d messages\n"
    outcome.Online.served
    (Array.length workload.Workload.jobs)
    outcome.Online.replacements outcome.Online.computations
    outcome.Online.messages;
  Printf.printf "online peak energy use = %.2f of capacity %.2f\n"
    outcome.Online.max_energy_used cfg.Online.capacity;
  assert (Online.succeeded outcome);
  print_endline "quickstart: OK"
