(* Chapter 4: the longevity-scaled LP bound and the Figure 4.1 gap. *)

let point2 x y = [| x; y |]

let all_healthy (_ : Point.t) = 1.0

let test_healthy_matches_plain_lp () =
  (* With p == 1 everywhere, program (4.1) degenerates to program (2.8). *)
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 5) ] in
  let plain = Oracle.omega_star dm in
  let b = Breakdown.lp_lower_bound ~longevity:all_healthy dm in
  Alcotest.(check bool)
    (Printf.sprintf "agree (plain=%g, longevity=%g)" plain b)
    true
    (Float.abs (plain -. b) < 0.02)

let test_healthy_matches_plain_lp_random () =
  let rng = Rng.create 4040 in
  for _ = 1 to 5 do
    let pts =
      List.init 3 (fun _ -> (point2 (Rng.int rng 4) (Rng.int rng 4), 1 + Rng.int rng 8))
    in
    let dm = Demand_map.of_alist 2 pts in
    let plain = Oracle.omega_star dm in
    let b = Breakdown.lp_lower_bound ~longevity:all_healthy dm in
    Alcotest.(check bool)
      (Printf.sprintf "agree (plain=%g, longevity=%g)" plain b)
      true
      (Float.abs (plain -. b) < 0.05)
  done

let test_all_dead_is_infeasible () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 3) ] in
  let dead (_ : Point.t) = 0.0 in
  Alcotest.(check bool) "infinite requirement" true
    (Breakdown.lp_lower_bound ~longevity:dead dm = infinity)

let test_half_longevity_doubles_requirement () =
  (* A single demand point, only its own vehicle usable: with p = 1/2 the
     usable energy is ω/2, so ω must double relative to p = 1 — as long as
     ω stays below the distance to any other vehicle's reach. *)
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 1) ] in
  let solo p = if Point.equal p (point2 0 0) then 0.5 else 0.0 in
  let b = Breakdown.lp_lower_bound ~longevity:solo dm in
  Alcotest.(check bool) (Printf.sprintf "ω = 2 (got %g)" b) true
    (Float.abs (b -. 2.0) < 0.02)

let test_lp_agrees_with_subset_dual () =
  (* Flow-based program (4.1) vs. the exhaustive ω_T maximization of
     Theorem 4.1.1 on small random instances with random longevities. *)
  let rng = Rng.create 808 in
  for _ = 1 to 5 do
    let pts =
      List.init 3 (fun _ -> (point2 (Rng.int rng 3) (Rng.int rng 3), 1 + Rng.int rng 5))
    in
    let dm = Demand_map.of_alist 2 pts in
    let table = Point.Tbl.create 16 in
    let longevity p =
      match Point.Tbl.find_opt table p with
      | Some v -> v
      | None ->
          let v = if Rng.bool rng then 1.0 else 0.5 in
          Point.Tbl.replace table p v;
          v
    in
    let flow = Breakdown.lp_lower_bound ~precision:1e-4 ~longevity dm in
    let dual = Breakdown.omega_subsets ~longevity dm in
    Alcotest.(check bool)
      (Printf.sprintf "duality (flow=%g, subsets=%g)" flow dual)
      true
      (Float.abs (flow -. dual) < 0.05)
  done

let test_figure41_lp_bound_matches_general_machinery () =
  let fig = Breakdown.Figure41.make ~r1:2 ~r2:30 in
  let dm = Breakdown.Figure41.demand fig in
  let general =
    Breakdown.lp_lower_bound ~longevity:(Breakdown.Figure41.longevity fig) dm
  in
  Alcotest.(check bool)
    (Printf.sprintf "2·r1 (analytic=%g, flow=%g)" (Breakdown.Figure41.lp_bound fig) general)
    true
    (Float.abs (general -. Breakdown.Figure41.lp_bound fig) < 0.05)

let test_figure41_shuttle_requirement_formula () =
  List.iter
    (fun r1 ->
      let fig = Breakdown.Figure41.make ~r1 ~r2:((4 * r1 * r1) + r1 + 1) in
      Alcotest.(check int)
        (Printf.sprintf "r1=%d" r1)
        ((4 * r1 * r1) + r1)
        (Breakdown.Figure41.shuttle_requirement fig))
    [ 1; 2; 5; 10 ]

let test_figure41_simulation_threshold () =
  let fig = Breakdown.Figure41.make ~r1:3 ~r2:60 in
  let req = float_of_int (Breakdown.Figure41.shuttle_requirement fig) in
  Alcotest.(check bool) "succeeds at requirement" true
    (Breakdown.Figure41.simulate_shuttle fig ~capacity:req);
  Alcotest.(check bool) "fails just below" false
    (Breakdown.Figure41.simulate_shuttle fig ~capacity:(req -. 0.5))

let test_figure41_gap_grows () =
  (* The §4.2 message: requirement / LP-bound = Θ(r1), unbounded. *)
  let ratio r1 =
    let fig = Breakdown.Figure41.make ~r1 ~r2:((4 * r1 * r1) + r1 + 1) in
    float_of_int (Breakdown.Figure41.shuttle_requirement fig)
    /. Breakdown.Figure41.lp_bound fig
  in
  Alcotest.(check bool) "ratio grows" true (ratio 16 > 2.0 *. ratio 4);
  Alcotest.(check bool) "ratio = 2·r1 + 1/2" true (Float.abs (ratio 8 -. 16.5) < 1e-9)

let test_figure41_jobs_alternate () =
  let fig = Breakdown.Figure41.make ~r1:2 ~r2:30 in
  let jobs = Breakdown.Figure41.jobs fig in
  Alcotest.(check int) "2·r1 jobs" 4 (Array.length jobs);
  Alcotest.(check bool) "alternating" true
    (not (Point.equal jobs.(0) jobs.(1)) && Point.equal jobs.(0) jobs.(2))

let test_figure41_rejects_small_r2 () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Breakdown.Figure41.make ~r1:3 ~r2:10);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "p=1 degenerates to (2.8)" `Quick test_healthy_matches_plain_lp;
    Alcotest.test_case "p=1 degenerates (random)" `Quick test_healthy_matches_plain_lp_random;
    Alcotest.test_case "all dead infeasible" `Quick test_all_dead_is_infeasible;
    Alcotest.test_case "half longevity doubles ω" `Quick test_half_longevity_doubles_requirement;
    Alcotest.test_case "flow = subset dual (Thm 4.1.1)" `Quick test_lp_agrees_with_subset_dual;
    Alcotest.test_case "Fig 4.1 LP bound = 2·r1" `Quick test_figure41_lp_bound_matches_general_machinery;
    Alcotest.test_case "Fig 4.1 shuttle formula" `Quick test_figure41_shuttle_requirement_formula;
    Alcotest.test_case "Fig 4.1 simulation threshold" `Quick test_figure41_simulation_threshold;
    Alcotest.test_case "Fig 4.1 gap grows (Θ(r1))" `Quick test_figure41_gap_grows;
    Alcotest.test_case "Fig 4.1 jobs alternate" `Quick test_figure41_jobs_alternate;
    Alcotest.test_case "Fig 4.1 rejects small r2" `Quick test_figure41_rejects_small_r2;
  ]
