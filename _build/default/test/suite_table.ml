(* The ASCII table renderer used by the benchmark reports. *)

let test_basic_render () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    List.exists (fun l -> l = "| name  | value |") lines);
  Alcotest.(check bool) "right-aligned numbers" true
    (let lines = String.split_on_char '\n' out in
     List.exists (fun l -> l = "| alpha |     1 |") lines
     && List.exists (fun l -> l = "| b     |    22 |") lines)

let test_title () =
  let t = Table.create ~title:"hello" [ ("c", Table.Left) ] in
  Table.add_row t [ "x" ];
  Alcotest.(check bool) "title first" true
    (String.length (Table.render t) > 5
    && String.sub (Table.render t) 0 5 = "hello")

let test_wide_cells_stretch_columns () =
  let t = Table.create [ ("c", Table.Left) ] in
  Table.add_row t [ "a-very-long-cell" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  let widths = List.map String.length (List.filter (fun l -> l <> "") lines) in
  match widths with
  | [] -> Alcotest.fail "no output"
  | w :: rest ->
      List.iter (fun w' -> Alcotest.(check int) "uniform width" w w') rest

let test_rule_between_groups () =
  let t = Table.create [ ("c", Table.Right) ] in
  Table.add_row t [ "1" ];
  Table.add_rule t;
  Table.add_row t [ "2" ];
  let out = Table.render t in
  let rules =
    List.filter
      (fun l -> String.length l > 0 && l.[0] = '+')
      (String.split_on_char '\n' out)
  in
  (* top, under-header, group separator, bottom *)
  Alcotest.(check int) "four rules" 4 (List.length rules)

let test_arity_mismatch_raises () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_cell_formatters () =
  Alcotest.(check string) "float default" "1.500" (Table.cell_f 1.5);
  Alcotest.(check string) "float decimals" "1.5" (Table.cell_f ~decimals:1 1.5);
  Alcotest.(check string) "int" "42" (Table.cell_i 42)

let test_empty_table_renders () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.(check bool) "renders headers only" true (String.length (Table.render t) > 0)

let suite =
  [
    Alcotest.test_case "basic render" `Quick test_basic_render;
    Alcotest.test_case "title" `Quick test_title;
    Alcotest.test_case "wide cells" `Quick test_wide_cells_stretch_columns;
    Alcotest.test_case "group rules" `Quick test_rule_between_groups;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch_raises;
    Alcotest.test_case "cell formatters" `Quick test_cell_formatters;
    Alcotest.test_case "empty table" `Quick test_empty_table_renders;
  ]
