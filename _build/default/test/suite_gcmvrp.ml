(* CMVRP on general graphs (the Chapter 6 extension): equivalence with the
   grid implementation on path/grid graphs, and the heuristic plan. *)

let point2 x y = [| x; y |]

let test_line_graph_distances () =
  let t = Gcmvrp.create (Gcmvrp.line_graph 6) ~demand:(Array.make 6 0) in
  Alcotest.(check int) "end to end" 5 (Gcmvrp.distance t 0 5);
  Alcotest.(check int) "self" 0 (Gcmvrp.distance t 3 3)

let test_weighted_distances () =
  let g = Digraph.create 3 in
  Digraph.add_undirected g 0 1 ~weight:5;
  Digraph.add_undirected g 1 2 ~weight:2;
  Digraph.add_undirected g 0 2 ~weight:9;
  let t = Gcmvrp.create g ~demand:[| 0; 0; 0 |] in
  Alcotest.(check int) "shortest path wins" 7 (Gcmvrp.distance t 0 2)

let test_neighborhood_size () =
  let t = Gcmvrp.create (Gcmvrp.line_graph 10) ~demand:(Array.make 10 0) in
  Alcotest.(check int) "ball of 2 around middle" 5
    (Gcmvrp.neighborhood_size t [ 5 ] ~radius:2);
  Alcotest.(check int) "clipped at the end" 3 (Gcmvrp.neighborhood_size t [ 0 ] ~radius:2);
  Alcotest.(check int) "set neighborhood" 6
    (Gcmvrp.neighborhood_size t [ 2; 6 ] ~radius:1)

let test_path_equivalence_with_grid () =
  (* The generalized ω* on a unit-weight path must equal the 1-D grid
     oracle. *)
  let rng = Rng.create 515 in
  for _ = 1 to 6 do
    let pts = List.init 3 (fun _ -> ([| Rng.int rng 5 |], 1 + Rng.int rng 12)) in
    let dm = Demand_map.of_alist 1 pts in
    let grid_star = Oracle.omega_star dm in
    let graph_star = Gcmvrp.omega_star (Gcmvrp.of_path dm) in
    Alcotest.(check (float 1e-4))
      (Printf.sprintf "1-D equivalence (grid=%g, graph=%g)" grid_star graph_star)
      grid_star graph_star
  done

let test_grid2d_equivalence () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 9); (point2 2 1, 4) ] in
  let grid_star = Oracle.omega_star dm in
  let graph_star = Gcmvrp.omega_star (Gcmvrp.of_grid_2d dm ~pad:6) in
  Alcotest.(check (float 1e-4)) "2-D equivalence" grid_star graph_star

let test_omega_subsets_match_lp () =
  (* Lemma 2.2.3's argument is distance-generic: the LP value equals the
     subset maximization on graphs too. *)
  let rng = Rng.create 616 in
  for _ = 1 to 5 do
    let g, _ =
      Gcmvrp.random_geometric ~rng ~n:14
        ~box:(Box.make ~lo:(point2 0 0) ~hi:(point2 7 7))
        ~radius:6
    in
    let demand = Array.init 14 (fun i -> if i < 4 then Rng.int rng 8 else 0) in
    let t = Gcmvrp.create g ~demand in
    (* Only meaningful when the demand vertices can reach each other. *)
    if Gcmvrp.total_demand t > 0 then begin
      let lp = Gcmvrp.omega_star t in
      let subsets = Gcmvrp.max_over_subsets t in
      Alcotest.(check bool)
        (Printf.sprintf "duality on a random graph (lp=%g, subsets=%g)" lp subsets)
        true
        (Float.abs (lp -. subsets) < 1e-3)
    end
  done

let test_plan_greedy_serves_everything () =
  let rng = Rng.create 717 in
  for _ = 1 to 8 do
    let g, _ =
      Gcmvrp.random_geometric ~rng ~n:30
        ~box:(Box.make ~lo:(point2 0 0) ~hi:(point2 9 9))
        ~radius:8
    in
    let demand = Array.init 30 (fun _ -> if Rng.bool rng then Rng.int rng 10 else 0) in
    let t = Gcmvrp.create g ~demand in
    let plan = Gcmvrp.plan_greedy t in
    match Gcmvrp.validate_plan t plan with
    | Ok () -> ()
    | Error msg -> Alcotest.fail ("invalid graph plan: " ^ msg)
  done

let test_plan_energy_dominates_omega_star () =
  let rng = Rng.create 818 in
  for _ = 1 to 5 do
    let g, _ =
      Gcmvrp.random_geometric ~rng ~n:25
        ~box:(Box.make ~lo:(point2 0 0) ~hi:(point2 8 8))
        ~radius:7
    in
    let demand = Array.init 25 (fun i -> if i mod 5 = 0 then 5 + Rng.int rng 20 else 0) in
    let t = Gcmvrp.create g ~demand in
    let star = Gcmvrp.omega_star t in
    let plan = Gcmvrp.plan_greedy t in
    let peak = Gcmvrp.plan_max_energy t plan in
    Alcotest.(check bool)
      (Printf.sprintf "ω* (%g) <= plan peak (%d)" star peak)
      true
      (star <= float_of_int peak +. 1e-6)
  done

let test_plan_on_tree () =
  (* A star: center with heavy demand, leaves healthy. *)
  let n = 9 in
  let g = Digraph.create n in
  for leaf = 1 to n - 1 do
    Digraph.add_undirected g 0 leaf ~weight:1
  done;
  let demand = Array.make n 0 in
  demand.(0) <- 24;
  let t = Gcmvrp.create g ~demand in
  let plan = Gcmvrp.plan_greedy t in
  (match Gcmvrp.validate_plan t plan with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (* ω*: center supplies ω, 8 leaves supply ω each within radius >= 1:
     9ω >= 24 in the bracket [2,3) -> ω = 24/9 = 2.667. *)
  Alcotest.(check (float 1e-3)) "star omega*" (24.0 /. 9.0) (Gcmvrp.omega_star t)

let test_rejects_bad_input () =
  Alcotest.(check bool) "size mismatch" true
    (try
       ignore (Gcmvrp.create (Gcmvrp.line_graph 3) ~demand:[| 1 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative demand" true
    (try
       ignore (Gcmvrp.create (Gcmvrp.line_graph 2) ~demand:[| 1; -1 |]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "line distances" `Quick test_line_graph_distances;
    Alcotest.test_case "weighted distances" `Quick test_weighted_distances;
    Alcotest.test_case "neighborhood size" `Quick test_neighborhood_size;
    Alcotest.test_case "1-D path = grid oracle" `Quick test_path_equivalence_with_grid;
    Alcotest.test_case "2-D grid graph = grid oracle" `Quick test_grid2d_equivalence;
    Alcotest.test_case "LP = subsets on random graphs" `Quick test_omega_subsets_match_lp;
    Alcotest.test_case "greedy plan serves all" `Quick test_plan_greedy_serves_everything;
    Alcotest.test_case "plan peak >= omega*" `Quick test_plan_energy_dominates_omega_star;
    Alcotest.test_case "star graph" `Quick test_plan_on_tree;
    Alcotest.test_case "rejects bad input" `Quick test_rejects_bad_input;
  ]

(* --- appended: the online strategy on general graphs --- *)

let run_gonline inst jobs =
  Gonline.run inst ~jobs
    { Gonline.capacity = Gonline.recommended_capacity inst; seed = 0 }

let test_gonline_path_hot_middle () =
  let n = 21 in
  let demand = Array.make n 0 in
  demand.(10) <- 60;
  let inst = Gcmvrp.create (Gcmvrp.line_graph n) ~demand in
  let jobs = Array.make 60 10 in
  let o = run_gonline inst jobs in
  Alcotest.(check int) "all served" 60 o.Gonline.served;
  Alcotest.(check bool) "success" true (Gonline.succeeded o);
  (* At a deliberately tight capacity the actives must burn out and the
     diffusing computations must bring in replacements. *)
  let tight = Gonline.run inst ~jobs { Gonline.capacity = 25.0; seed = 0 } in
  Alcotest.(check bool) "tight run succeeds" true (Gonline.succeeded tight);
  Alcotest.(check bool) "replacements happened" true (tight.Gonline.replacements > 0)

let test_gonline_star () =
  let n = 15 in
  let g = Digraph.create n in
  for leaf = 1 to n - 1 do
    Digraph.add_undirected g 0 leaf ~weight:1
  done;
  let demand = Array.make n 0 in
  demand.(0) <- 80;
  let inst = Gcmvrp.create g ~demand in
  let o = run_gonline inst (Array.make 80 0) in
  Alcotest.(check bool) "success" true (Gonline.succeeded o)

let test_gonline_random_geometric () =
  let rng = Rng.create 4141 in
  for _ = 1 to 5 do
    let g, _ =
      Gcmvrp.random_geometric ~rng ~n:25
        ~box:(Box.make ~lo:[| 0; 0 |] ~hi:[| 8; 8 |])
        ~radius:6
    in
    let demand = Array.init 25 (fun i -> if i mod 6 = 0 then 8 + Rng.int rng 20 else 0) in
    let inst = Gcmvrp.create g ~demand in
    (* Jobs in round-robin over the demand sites. *)
    let sites = ref [] in
    Array.iteri (fun v d -> for _ = 1 to d do sites := v :: !sites done) demand;
    let jobs = Array.of_list !sites in
    let o = run_gonline inst jobs in
    Alcotest.(check int) "all served" (Array.length jobs) o.Gonline.served
  done

let test_gonline_min_capacity_above_omega_star () =
  let n = 15 in
  let demand = Array.make n 0 in
  demand.(7) <- 40;
  let inst = Gcmvrp.create (Gcmvrp.line_graph n) ~demand in
  let jobs = Array.make 40 7 in
  let measured = Gonline.min_feasible_capacity inst ~jobs in
  let star = Gcmvrp.omega_star inst in
  Alcotest.(check bool)
    (Printf.sprintf "ω* (%g) <= measured (%g)" star measured)
    true
    (star <= measured +. 0.5);
  Alcotest.(check bool) "within the heuristic capacity" true
    (measured <= Gonline.recommended_capacity inst +. 1e-9)

let test_gonline_insufficient_capacity_fails () =
  let n = 9 in
  let demand = Array.make n 0 in
  demand.(4) <- 50;
  let inst = Gcmvrp.create (Gcmvrp.line_graph n) ~demand in
  let o = Gonline.run inst ~jobs:(Array.make 50 4) { Gonline.capacity = 3.0; seed = 0 } in
  Alcotest.(check bool) "fails cleanly" true (not (Gonline.succeeded o));
  Alcotest.(check bool) "partial service" true (o.Gonline.served > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "gonline: path hot middle" `Quick test_gonline_path_hot_middle;
      Alcotest.test_case "gonline: star" `Quick test_gonline_star;
      Alcotest.test_case "gonline: random geometric" `Quick test_gonline_random_geometric;
      Alcotest.test_case "gonline: ω* sandwich" `Quick test_gonline_min_capacity_above_omega_star;
      Alcotest.test_case "gonline: fails cleanly" `Quick test_gonline_insufficient_capacity_fails;
    ]
