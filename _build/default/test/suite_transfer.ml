(* Chapter 5: decay bound, square import bound, and the §5.2.1 collector. *)

let point2 x y = [| x; y |]

let test_remaining_after_basics () =
  Alcotest.(check (float 1e-12)) "no travel, no loss" 10.0
    (Transfer.remaining_after ~w:10.0 ~dist:0);
  Alcotest.(check (float 1e-12)) "w=2 over distance 1" 1.0
    (Transfer.remaining_after ~w:2.0 ~dist:1);
  Alcotest.(check (float 1e-9)) "w<=1 cannot move" 0.0
    (Transfer.remaining_after ~w:1.0 ~dist:1);
  let r = Transfer.remaining_after ~w:10.0 ~dist:20 in
  Alcotest.(check bool) "decays" true (r < 10.0 && r > 0.0)

let test_remaining_monotone_in_distance () =
  let prev = ref infinity in
  for d = 0 to 30 do
    let r = Transfer.remaining_after ~w:7.0 ~dist:d in
    Alcotest.(check bool) "non-increasing" true (r <= !prev);
    prev := r
  done

let test_import_bound_equals_shell_series () =
  (* The closed form must agree with summing the decay bound over the
     shells |{i : D(i,T) = r}| = 4s + 4(r-1). *)
  List.iter
    (fun (w, s) ->
      let series =
        let acc = ref (w *. float_of_int (s * s)) in
        let r = ref 1 in
        let continue = ref true in
        while !continue do
          let term =
            float_of_int ((4 * s) + (4 * (!r - 1)))
            *. Transfer.remaining_after ~w ~dist:!r
          in
          acc := !acc +. term;
          incr r;
          if term < 1e-9 || !r > 100000 then continue := false
        done;
        !acc
      in
      let closed = Transfer.import_bound ~w ~side:s in
      Alcotest.(check bool)
        (Printf.sprintf "w=%g s=%d (series=%g closed=%g)" w s series closed)
        true
        (Float.abs (series -. closed) /. closed < 1e-6))
    [ (2.0, 1); (3.0, 2); (10.0, 4); (25.0, 3) ]

let test_lower_bound_le_omega_star () =
  (* Wtrans-off <= Woff, so the transfer lower bound must not exceed a
     valid Woff upper bound. *)
  let rng = Rng.create 606 in
  for _ = 1 to 8 do
    let pts =
      List.init 4 (fun _ -> (point2 (Rng.int rng 5) (Rng.int rng 5), 1 + Rng.int rng 30))
    in
    let dm = Demand_map.of_alist 2 pts in
    let lb = Transfer.lower_bound dm in
    let plan = Planner.plan dm in
    let upper = float_of_int (Planner.max_energy plan) in
    Alcotest.(check bool)
      (Printf.sprintf "lb (%g) <= Woff upper (%g)" lb upper)
      true (lb <= upper +. 1e-6)
  done

let test_theta_ratio_bounded () =
  (* Theorem 5.1.1: lower bound and ω* stay within a constant factor. *)
  let rng = Rng.create 607 in
  let ratios = ref [] in
  for _ = 1 to 8 do
    let pts =
      List.init 3 (fun _ -> (point2 (Rng.int rng 4) (Rng.int rng 4), 5 + Rng.int rng 60))
    in
    let dm = Demand_map.of_alist 2 pts in
    let lb = Transfer.lower_bound dm in
    let star = Oracle.omega_star dm in
    if lb > 0.0 then ratios := (star /. lb) :: !ratios
  done;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "ratio %g within a modest constant" r)
        true
        (r >= 0.2 && r <= 40.0))
    !ratios

let uniform_demand d _ = d

let test_collector_transfer_and_distance_counts () =
  let run =
    Transfer.Segment.simulate ~n:10 ~demand:(uniform_demand 3)
      ~cost:(Transfer.Fixed 0.5) ~w:20.0
  in
  Alcotest.(check bool) "succeeds with slack" true run.Transfer.Segment.success;
  Alcotest.(check int) "2n-3 transfers" 17 run.Transfer.Segment.transfers;
  Alcotest.(check int) "2n-2 distance" 18 run.Transfer.Segment.distance

let test_collector_fixed_cost_matches_closed_form () =
  List.iter
    (fun (n, d, a1) ->
      let measured =
        Transfer.Segment.min_capacity ~n ~demand:(uniform_demand d)
          (Transfer.Fixed a1)
      in
      let formula = Transfer.Segment.closed_form ~n ~total:(n * d) ~cost:(Transfer.Fixed a1) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d d=%d a1=%g (measured=%g formula=%g)" n d a1 measured formula)
        true
        (Float.abs (measured -. formula) < 0.01))
    [ (8, 4, 1.0); (32, 2, 0.5); (100, 5, 2.0); (16, 1, 0.0) ]

let test_collector_variable_cost_near_closed_form () =
  (* The paper's variable-cost formula charges every transfer as if it
     moved the full W; the exact schedule only does so on the collecting
     sweep, so agreement is approximate but close for a2 << 1. *)
  List.iter
    (fun (n, d, a2) ->
      let measured =
        Transfer.Segment.min_capacity ~n ~demand:(uniform_demand d)
          (Transfer.Variable a2)
      in
      let formula =
        Transfer.Segment.closed_form ~n ~total:(n * d) ~cost:(Transfer.Variable a2)
      in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d d=%d a2=%g (measured=%g formula=%g)" n d a2 measured formula)
        true
        (Float.abs (measured -. formula) /. formula < 0.05))
    [ (16, 4, 0.01); (64, 3, 0.02); (32, 10, 0.005) ]

let test_collector_capacity_tracks_average_demand () =
  (* §5.2.1's headline: Wtrans-off = Θ(avg d), while the no-transfer ω*
     for the same segment grows like sqrt(d·...) of the concentration. *)
  let cap d =
    Transfer.Segment.min_capacity ~n:50 ~demand:(uniform_demand d)
      (Transfer.Fixed 1.0)
  in
  let c2 = cap 2 and c8 = cap 8 and c32 = cap 32 in
  Alcotest.(check bool) "roughly linear in d" true
    (c8 /. c2 > 2.0 && c8 /. c2 < 4.5 && c32 /. c8 > 2.5 && c32 /. c8 < 4.5)

let test_collector_beats_no_transfer_on_hot_segment () =
  (* Uniform heavy demand: without transfers each vehicle needs ~W2(d);
     with unbounded tanks the collector needs ~avg d + overheads.  For a
     segment with one giant hot spot the gap is stark. *)
  let n = 60 in
  let demand x = if x = 30 then 600 else 0 in
  let with_transfer =
    Transfer.Segment.min_capacity ~n ~demand (Transfer.Fixed 1.0)
  in
  let without = Transfer.Segment.no_transfer_capacity ~n ~demand in
  Alcotest.(check bool)
    (Printf.sprintf "collector (%g) beats no-transfer ω* (%g)" with_transfer without)
    true
    (with_transfer < without)

let test_simulate_rejects_bad_args () =
  Alcotest.(check bool) "n=1 rejected" true
    (try
       ignore
         (Transfer.Segment.simulate ~n:1 ~demand:(uniform_demand 1)
            ~cost:(Transfer.Fixed 1.0) ~w:5.0);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "decay basics" `Quick test_remaining_after_basics;
    Alcotest.test_case "decay monotone" `Quick test_remaining_monotone_in_distance;
    Alcotest.test_case "import bound = shell series" `Quick test_import_bound_equals_shell_series;
    Alcotest.test_case "lower bound <= Woff upper" `Quick test_lower_bound_le_omega_star;
    Alcotest.test_case "Θ ratio bounded (Thm 5.1.1)" `Quick test_theta_ratio_bounded;
    Alcotest.test_case "collector counts (2n-3, 2n-2)" `Quick test_collector_transfer_and_distance_counts;
    Alcotest.test_case "fixed cost closed form" `Quick test_collector_fixed_cost_matches_closed_form;
    Alcotest.test_case "variable cost near closed form" `Quick test_collector_variable_cost_near_closed_form;
    Alcotest.test_case "capacity ~ avg demand" `Quick test_collector_capacity_tracks_average_demand;
    Alcotest.test_case "collector beats no-transfer" `Quick test_collector_beats_no_transfer_on_hot_segment;
    Alcotest.test_case "rejects bad args" `Quick test_simulate_rejects_bad_args;
  ]

(* --- appended: the 2-D grid collector extension --- *)

let test_grid_collector_counts () =
  let dm =
    Demand_map.of_alist 2
      (List.concat_map (fun x -> List.init 4 (fun y -> (point2 x y, 2)))
         (List.init 4 (fun x -> x)))
  in
  let run = Grid_collector.simulate dm ~cost:(Transfer.Fixed 0.5) ~w:20.0 in
  Alcotest.(check bool) "succeeds" true run.Grid_collector.success;
  (* 16 vertices: distance 2·15, transfers 2·16-3. *)
  Alcotest.(check int) "distance" 30 run.Grid_collector.distance;
  Alcotest.(check int) "transfers" 29 run.Grid_collector.transfers

let test_grid_collector_matches_closed_form () =
  List.iter
    (fun side ->
      let dm =
        Demand_map.of_alist 2
          (List.concat_map
             (fun x -> List.init side (fun y -> (point2 x y, 5)))
             (List.init side (fun x -> x)))
      in
      let measured = Grid_collector.min_capacity dm (Transfer.Fixed 1.0) in
      let formula = Grid_collector.closed_form dm ~cost:(Transfer.Fixed 1.0) in
      Alcotest.(check bool)
        (Printf.sprintf "side=%d (measured=%g formula=%g)" side measured formula)
        true
        (Float.abs (measured -. formula) < 0.01))
    [ 2; 4; 8 ]

let test_grid_collector_theta_avg_demand () =
  (* One huge hot spot in a 6x6 field: collector W ~ avg d, while the
     no-transfer planner needs far more. *)
  let dm =
    Demand_map.of_alist 2
      ((point2 3 3, 720)
      :: List.concat_map
           (fun x -> List.init 6 (fun y -> (point2 x y, 1)))
           (List.init 6 (fun x -> x)))
  in
  let collector = Grid_collector.min_capacity dm (Transfer.Fixed 1.0) in
  let avg = float_of_int (Demand_map.total dm) /. 36.0 in
  let no_transfer = float_of_int (Planner.max_energy (Planner.plan dm)) in
  Alcotest.(check bool)
    (Printf.sprintf "collector (%g) within 2x of avg+overheads (%g)" collector avg)
    true
    (collector < (2.0 *. avg) +. 6.0);
  Alcotest.(check bool)
    (Printf.sprintf "collector (%g) beats no-transfer (%g)" collector no_transfer)
    true
    (collector < no_transfer)

let test_grid_collector_single_cell () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 7) ] in
  let run = Grid_collector.simulate dm ~cost:(Transfer.Fixed 1.0) ~w:7.0 in
  Alcotest.(check bool) "self-service" true run.Grid_collector.success;
  let run' = Grid_collector.simulate dm ~cost:(Transfer.Fixed 1.0) ~w:6.5 in
  Alcotest.(check bool) "fails below demand" false run'.Grid_collector.success

let test_grid_collector_variable_cost () =
  let dm =
    Demand_map.of_alist 2
      (List.concat_map (fun x -> List.init 5 (fun y -> (point2 x y, 3)))
         (List.init 5 (fun x -> x)))
  in
  let measured = Grid_collector.min_capacity dm (Transfer.Variable 0.01) in
  let formula = Grid_collector.closed_form dm ~cost:(Transfer.Variable 0.01) in
  Alcotest.(check bool)
    (Printf.sprintf "variable (measured=%g formula=%g)" measured formula)
    true
    (Float.abs (measured -. formula) /. formula < 0.05)

let suite =
  suite
  @ [
      Alcotest.test_case "grid collector counts" `Quick test_grid_collector_counts;
      Alcotest.test_case "grid collector closed form" `Quick test_grid_collector_matches_closed_form;
      Alcotest.test_case "grid collector Θ(avg d)" `Quick test_grid_collector_theta_avg_demand;
      Alcotest.test_case "grid collector single cell" `Quick test_grid_collector_single_cell;
      Alcotest.test_case "grid collector variable cost" `Quick test_grid_collector_variable_cost;
    ]
