test/suite_localsearch.ml: Alcotest Box Demand_map Exact List Localsearch Omega Oracle Planner Printf Rng
