test/suite_transfer.ml: Alcotest Demand_map Float Grid_collector List Oracle Planner Printf Rng Transfer
