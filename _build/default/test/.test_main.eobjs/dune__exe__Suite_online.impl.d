test/suite_online.ml: Alcotest Array Box Hashtbl List Omega Online Oracle Point Printf QCheck QCheck_alcotest Rng Workload
