test/suite_grid.ml: Alcotest Box List Option Point QCheck QCheck_alcotest
