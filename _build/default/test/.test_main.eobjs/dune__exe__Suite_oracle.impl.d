test/suite_oracle.ml: Alcotest Demand_map Float List Omega Oracle Printf Rng
