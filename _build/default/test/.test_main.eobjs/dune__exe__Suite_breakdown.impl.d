test/suite_breakdown.ml: Alcotest Array Breakdown Demand_map Float List Oracle Point Printf Rng
