test/suite_gcmvrp.ml: Alcotest Array Box Demand_map Digraph Float Gcmvrp Gonline List Oracle Printf Rng
