test/suite_transport.ml: Alcotest Rng Transport
