test/suite_stats.ml: Alcotest Array Float Heap Int List Printf QCheck QCheck_alcotest Stats
