test/suite_rng.ml: Alcotest Array Float Rng Stats
