test/suite_alg1.ml: Alcotest Alg1 Array Demand_map List Oracle Printf Rng Stats Workload
