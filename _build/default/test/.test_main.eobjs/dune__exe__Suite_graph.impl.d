test/suite_graph.ml: Alcotest Array Digraph Paths Rng
