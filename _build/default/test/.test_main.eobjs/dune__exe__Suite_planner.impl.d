test/suite_planner.ml: Alcotest Box Demand_map Gen List Oracle Planner Printf QCheck QCheck_alcotest Rng Workload
