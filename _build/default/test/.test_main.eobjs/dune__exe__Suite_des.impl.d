test/suite_des.ml: Alcotest Des Hashtbl List Option Rng
