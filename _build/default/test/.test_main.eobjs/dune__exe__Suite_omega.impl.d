test/suite_omega.ml: Alcotest Ball Box Demand_map Float List Omega Printf QCheck QCheck_alcotest Rng
