test/suite_snake.ml: Alcotest Array Box Point QCheck QCheck_alcotest Snake
