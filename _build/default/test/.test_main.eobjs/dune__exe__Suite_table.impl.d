test/suite_table.ml: Alcotest List String Table
