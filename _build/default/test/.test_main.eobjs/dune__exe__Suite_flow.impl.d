test/suite_flow.ml: Alcotest Array List Maxflow Rng
