test/suite_demand.ml: Alcotest Array Box Demand_map Gen List Point QCheck QCheck_alcotest Rng Workload
