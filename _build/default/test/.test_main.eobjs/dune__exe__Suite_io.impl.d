test/suite_io.ml: Alcotest Array Box Char List Point Render Rng String Workload Workload_io
