test/suite_fig21.ml: Alcotest Exact Fig21 List Omega Planner Printf
