test/suite_ball.ml: Alcotest Array Ball Box List Point Printf QCheck QCheck_alcotest
