test/suite_baselines.ml: Alcotest Array Central Cvrp Demand_map Greedy_online List Option Oracle Printf Rng Tour Workload
