test/suite_properties.ml: Alg1 Breakdown Demand_map Exact Format Greedy_online List Omega Online Oracle Planner Point QCheck QCheck_alcotest Rng Transfer Workload
