(* Closed-form neighborhood sizes vs. BFS dilation — the identities behind
   every ω_T computation. *)

let point2 x y = [| x; y |]

let test_binomial () =
  Alcotest.(check int) "C(5,2)" 10 (Ball.binomial 5 2);
  Alcotest.(check int) "C(n,0)" 1 (Ball.binomial 9 0);
  Alcotest.(check int) "C(n,n)" 1 (Ball.binomial 9 9);
  Alcotest.(check int) "out of range" 0 (Ball.binomial 4 7);
  Alcotest.(check int) "negative k" 0 (Ball.binomial 4 (-1));
  Alcotest.(check int) "C(20,10)" 184756 (Ball.binomial 20 10)

let test_ball_volume_known () =
  (* 1-D: 2r+1; 2-D diamond: 2r^2+2r+1. *)
  Alcotest.(check int) "1d r=3" 7 (Ball.ball_volume ~dim:1 ~radius:3);
  Alcotest.(check int) "2d r=1" 5 (Ball.ball_volume ~dim:2 ~radius:1);
  Alcotest.(check int) "2d r=2" 13 (Ball.ball_volume ~dim:2 ~radius:2);
  Alcotest.(check int) "3d r=1" 7 (Ball.ball_volume ~dim:3 ~radius:1);
  Alcotest.(check int) "r=0" 1 (Ball.ball_volume ~dim:5 ~radius:0);
  Alcotest.(check int) "negative radius" 0 (Ball.ball_volume ~dim:2 ~radius:(-1))

let test_ball_volume_vs_bfs () =
  for dim = 1 to 3 do
    for r = 0 to 4 do
      let bfs = Point.Set.cardinal (Ball.dilate_set [ Point.origin dim ] ~radius:r) in
      Alcotest.(check int)
        (Printf.sprintf "dim=%d r=%d" dim r)
        bfs
        (Ball.ball_volume ~dim ~radius:r)
    done
  done

let test_cube_ball_volume_vs_bfs () =
  for side = 1 to 3 do
    for r = 0 to 3 do
      let cube = Box.cube_at_origin ~dim:2 ~side in
      let bfs = Point.Set.cardinal (Ball.dilate_set (Box.points cube) ~radius:r) in
      Alcotest.(check int)
        (Printf.sprintf "side=%d r=%d" side r)
        bfs
        (Ball.cube_ball_volume ~dim:2 ~side ~radius:r)
    done
  done

let test_cube_ball_volume_3d_vs_bfs () =
  let cube = Box.cube_at_origin ~dim:3 ~side:2 in
  for r = 0 to 2 do
    let bfs = Point.Set.cardinal (Ball.dilate_set (Box.points cube) ~radius:r) in
    Alcotest.(check int)
      (Printf.sprintf "3d side=2 r=%d" r)
      bfs
      (Ball.cube_ball_volume ~dim:3 ~side:2 ~radius:r)
  done

let test_segment_formula_vs_bfs () =
  for len = 1 to 4 do
    for r = 0 to 3 do
      let seg = List.init len (fun i -> point2 i 0) in
      let bfs = Point.Set.cardinal (Ball.dilate_set seg ~radius:r) in
      Alcotest.(check int)
        (Printf.sprintf "len=%d r=%d" len r)
        bfs
        (Ball.segment_ball_volume_2d ~len ~radius:r)
    done
  done

let test_paper_shell_identity () =
  (* Theorem 5.1.1 uses |{i : D(i,T) = r}| = 4s + 4(r-1) for an s x s
     square in the plane. *)
  for s = 1 to 3 do
    let square = Box.points (Box.cube_at_origin ~dim:2 ~side:s) in
    let shells = Ball.shell_sizes square ~max_radius:4 in
    for r = 1 to 4 do
      Alcotest.(check int)
        (Printf.sprintf "s=%d r=%d" s r)
        ((4 * s) + (4 * (r - 1)))
        shells.(r)
    done
  done

let test_shell_sizes_sum_to_ball () =
  let pts = [ point2 0 0; point2 2 0 ] in
  let shells = Ball.shell_sizes pts ~max_radius:3 in
  let cumulative = Array.fold_left ( + ) 0 shells in
  Alcotest.(check int) "shells sum to dilation"
    (Point.Set.cardinal (Ball.dilate_set pts ~radius:3))
    cumulative

let test_box_ball_volume_rectangle () =
  let rect = Box.make ~lo:(point2 0 0) ~hi:(point2 3 1) in
  for r = 0 to 3 do
    let bfs = Point.Set.cardinal (Ball.dilate_set (Box.points rect) ~radius:r) in
    Alcotest.(check int) (Printf.sprintf "rect r=%d" r) bfs
      (Ball.box_ball_volume rect ~radius:r)
  done

let test_neighborhood_size_non_box () =
  (* An L-shaped set falls back to BFS; spot check against dilate_set. *)
  let l_shape = [ point2 0 0; point2 1 0; point2 0 1 ] in
  for r = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "L-shape r=%d" r)
      (Point.Set.cardinal (Ball.dilate_set l_shape ~radius:r))
      (Ball.neighborhood_size l_shape ~radius:r)
  done

let prop_closed_form_matches_bfs =
  QCheck.Test.make ~name:"box_ball_volume = BFS dilation (random 2d boxes)"
    ~count:60
    QCheck.(triple (int_range 1 4) (int_range 1 4) (int_range 0 4))
    (fun (w, h, r) ->
      let box = Box.make ~lo:(point2 0 0) ~hi:(point2 (w - 1) (h - 1)) in
      Ball.box_ball_volume box ~radius:r
      = Point.Set.cardinal (Ball.dilate_set (Box.points box) ~radius:r))

let prop_dilation_monotone =
  QCheck.Test.make ~name:"dilation is monotone in the radius" ~count:60
    QCheck.(pair (int_range 0 4) (int_range 0 4))
    (fun (r1, r2) ->
      let pts = [ point2 0 0; point2 3 2 ] in
      let lo = min r1 r2 and hi = max r1 r2 in
      Point.Set.subset (Ball.dilate_set pts ~radius:lo) (Ball.dilate_set pts ~radius:hi))

let suite =
  [
    Alcotest.test_case "binomial" `Quick test_binomial;
    Alcotest.test_case "ball volume known values" `Quick test_ball_volume_known;
    Alcotest.test_case "ball volume vs BFS" `Quick test_ball_volume_vs_bfs;
    Alcotest.test_case "cube ball vs BFS (2d)" `Quick test_cube_ball_volume_vs_bfs;
    Alcotest.test_case "cube ball vs BFS (3d)" `Quick test_cube_ball_volume_3d_vs_bfs;
    Alcotest.test_case "segment formula vs BFS" `Quick test_segment_formula_vs_bfs;
    Alcotest.test_case "paper shell identity (Thm 5.1.1)" `Quick test_paper_shell_identity;
    Alcotest.test_case "shells sum to dilation" `Quick test_shell_sizes_sum_to_ball;
    Alcotest.test_case "rectangle closed form" `Quick test_box_ball_volume_rectangle;
    Alcotest.test_case "non-box falls back to BFS" `Quick test_neighborhood_size_non_box;
    QCheck_alcotest.to_alcotest prop_closed_form_matches_bfs;
    QCheck_alcotest.to_alcotest prop_dilation_monotone;
  ]
