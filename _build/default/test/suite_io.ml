(* Workload serialization and ASCII rendering. *)

let point2 x y = [| x; y |]

let test_roundtrip () =
  let rng = Rng.create 21 in
  let box = Box.make ~lo:(point2 (-3) (-3)) ~hi:(point2 5 5) in
  let w = Workload.uniform ~rng ~box ~jobs:40 in
  let back = Workload_io.of_string (Workload_io.to_string w) in
  Alcotest.(check int) "same dim" w.Workload.dim back.Workload.dim;
  Alcotest.(check int) "same job count"
    (Array.length w.Workload.jobs)
    (Array.length back.Workload.jobs);
  Alcotest.(check bool) "same jobs in order" true
    (Array.for_all2 Point.equal w.Workload.jobs back.Workload.jobs)

let test_roundtrip_1d_and_3d () =
  List.iter
    (fun dim ->
      let w =
        {
          Workload.name = "nd";
          dim;
          jobs = Array.init 10 (fun i -> Array.make dim i);
        }
      in
      let back = Workload_io.of_string (Workload_io.to_string w) in
      Alcotest.(check int) "dim preserved" dim back.Workload.dim;
      Alcotest.(check bool) "jobs preserved" true
        (Array.for_all2 Point.equal w.Workload.jobs back.Workload.jobs))
    [ 1; 3 ]

let test_comments_and_blanks_ignored () =
  let w = Workload_io.of_string "# header\n\n1 2\n\n# mid comment\n3 4\n" in
  Alcotest.(check int) "two jobs" 2 (Array.length w.Workload.jobs);
  Alcotest.(check bool) "first job" true (Point.equal w.Workload.jobs.(0) (point2 1 2))

let test_rejects_garbage () =
  Alcotest.(check bool) "non-integer" true
    (try
       ignore (Workload_io.of_string "1 x\n");
       false
     with Failure msg -> String.length msg > 0);
  Alcotest.(check bool) "mixed dimension" true
    (try
       ignore (Workload_io.of_string "1 2\n1 2 3\n");
       false
     with Failure _ -> true)

let test_empty_input_defaults () =
  let w = Workload_io.of_string "# nothing\n" in
  Alcotest.(check int) "no jobs" 0 (Array.length w.Workload.jobs);
  Alcotest.(check int) "default dim 2" 2 w.Workload.dim

let test_render_grid_shape () =
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 3 1) in
  let art = Render.grid box ~cell:(fun p -> if p.(0) = p.(1) then 'X' else '.') in
  (* Two rows of four characters each. *)
  Alcotest.(check (list string)) "rows" [ ".X.."; "X..." ]
    (String.split_on_char '\n' (String.trim art))

let test_render_orientation () =
  (* Highest y prints first. *)
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 0 2) in
  let art = Render.grid box ~cell:(fun p -> Char.chr (Char.code '0' + p.(1))) in
  Alcotest.(check string) "top down" "2\n1\n0\n" art

let test_heat_char_monotone () =
  let chars = List.map (Render.heat_char ~max:100) [ 0; 1; 25; 50; 75; 100 ] in
  Alcotest.(check bool) "zero is blank" true (List.hd chars = ' ');
  let ramp = " .:-=+*#%@" in
  let idx c = String.index ramp c in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> idx a <= idx b && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone ramp" true (non_decreasing chars)

let test_heatmap_runs () =
  let w = Workload.square ~side:3 ~per_point:4 () in
  let art = Workload_io.heatmap w in
  Alcotest.(check bool) "non-empty" true (String.length art > 10)

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "roundtrip 1d/3d" `Quick test_roundtrip_1d_and_3d;
    Alcotest.test_case "comments ignored" `Quick test_comments_and_blanks_ignored;
    Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
    Alcotest.test_case "empty input" `Quick test_empty_input_defaults;
    Alcotest.test_case "render grid shape" `Quick test_render_grid_shape;
    Alcotest.test_case "render orientation" `Quick test_render_orientation;
    Alcotest.test_case "heat char monotone" `Quick test_heat_char_monotone;
    Alcotest.test_case "heatmap runs" `Quick test_heatmap_runs;
  ]
