(* Classical comparators: tour primitives, Clarke–Wright, sweep, central
   dispatch, and the omniscient-greedy online baseline. *)

let point2 x y = [| x; y |]

let test_path_and_cycle_length () =
  let pts = [ point2 0 0; point2 2 0; point2 2 2 ] in
  Alcotest.(check int) "path" 4 (Tour.path_length pts);
  Alcotest.(check int) "cycle" 8 (Tour.cycle_length pts);
  Alcotest.(check int) "singleton cycle" 0 (Tour.cycle_length [ point2 1 1 ]);
  Alcotest.(check int) "empty" 0 (Tour.path_length [])

let test_nearest_neighbor_orders_greedily () =
  let pts = [ point2 10 0; point2 1 0; point2 5 0 ] in
  let ordered = Tour.nearest_neighbor ~start:(point2 0 0) pts in
  Alcotest.(check bool) "greedy order" true
    (List.map (fun p -> p.(0)) ordered = [ 1; 5; 10 ])

let test_nearest_neighbor_is_permutation () =
  let rng = Rng.create 11 in
  for _ = 1 to 20 do
    let pts = List.init 12 (fun _ -> point2 (Rng.int rng 10) (Rng.int rng 10)) in
    let ordered = Tour.nearest_neighbor ~start:(point2 0 0) pts in
    Alcotest.(check int) "same length" (List.length pts) (List.length ordered);
    Alcotest.(check bool) "same multiset" true
      (List.sort compare pts = List.sort compare ordered)
  done

let test_two_opt_never_worse () =
  let rng = Rng.create 13 in
  for _ = 1 to 25 do
    let pts = List.init 10 (fun _ -> point2 (Rng.int rng 15) (Rng.int rng 15)) in
    let improved = Tour.two_opt pts in
    Alcotest.(check bool) "2-opt does not lengthen the cycle" true
      (Tour.cycle_length improved <= Tour.cycle_length pts);
    Alcotest.(check bool) "permutation" true
      (List.sort compare pts = List.sort compare improved)
  done

let test_two_opt_fixes_crossing () =
  (* A deliberately crossed square tour: 2-opt must recover the perimeter. *)
  let crossed = [ point2 0 0; point2 4 4; point2 4 0; point2 0 4 ] in
  let fixed = Tour.two_opt crossed in
  Alcotest.(check int) "perimeter" 16 (Tour.cycle_length fixed)

let grid_demand rng ~points ~max_d =
  Demand_map.of_alist 2
    (List.init points (fun _ ->
         (point2 (Rng.int rng 12) (Rng.int rng 12), 1 + Rng.int rng max_d)))

let test_clarke_wright_valid () =
  let rng = Rng.create 15 in
  for _ = 1 to 15 do
    let dm = grid_demand rng ~points:10 ~max_d:5 in
    let depot = Cvrp.centroid dm in
    let sol = Cvrp.clarke_wright ~dm ~depot ~capacity:12 in
    (match Cvrp.validate ~dm sol with
    | Ok () -> ()
    | Error msg -> Alcotest.fail ("clarke-wright: " ^ msg));
    List.iter
      (fun r ->
        Alcotest.(check bool) "capacity respected" true
          (Cvrp.route_demand dm r <= 12))
      sol.Cvrp.routes
  done

let test_clarke_wright_merges_routes () =
  (* Customers on a line far from the depot: merging must beat one round
     trip each. *)
  let dm = Demand_map.of_alist 2 (List.init 5 (fun i -> (point2 (10 + i) 0, 1))) in
  let depot = point2 0 0 in
  let merged = Cvrp.clarke_wright ~dm ~depot ~capacity:5 in
  let singles = Cvrp.clarke_wright ~dm ~depot ~capacity:1 in
  Alcotest.(check int) "single merged route" 1 (List.length merged.Cvrp.routes);
  Alcotest.(check bool) "merging shortens total travel" true
    (Cvrp.total_travel merged < Cvrp.total_travel singles)

let test_sweep_valid () =
  let rng = Rng.create 17 in
  for _ = 1 to 15 do
    let dm = grid_demand rng ~points:10 ~max_d:4 in
    let depot = Cvrp.centroid dm in
    let sol = Cvrp.sweep ~dm ~depot 10 in
    match Cvrp.validate ~dm sol with
    | Ok () -> ()
    | Error msg -> Alcotest.fail ("sweep: " ^ msg)
  done

let test_sweep_improvement_helps () =
  let rng = Rng.create 19 in
  let dm = grid_demand rng ~points:12 ~max_d:2 in
  let depot = Cvrp.centroid dm in
  let rough = Cvrp.sweep ~improve:false ~dm ~depot 100 in
  let polished = Cvrp.sweep ~improve:true ~dm ~depot 100 in
  Alcotest.(check bool) "2-opt no worse" true
    (Cvrp.total_travel polished <= Cvrp.total_travel rough)

let test_central_vehicles_needed () =
  let dm = Demand_map.of_alist 2 [ (point2 3 0, 10) ] in
  (* W = 5: reach = 2 per trip, so 5 vehicles. *)
  Alcotest.(check (option int)) "ceil(10/2)" (Some 5)
    (Central.vehicles_needed dm ~depot:(point2 0 0) ~capacity:5);
  Alcotest.(check (option int)) "unreachable" None
    (Central.vehicles_needed dm ~depot:(point2 0 0) ~capacity:3)

let test_central_min_capacity () =
  let dm = Demand_map.of_alist 2 [ (point2 3 0, 10) ] in
  (* Fleet of 5 needs W = 5 (5 trips of 2 units each). *)
  Alcotest.(check (option int)) "fleet 5" (Some 5)
    (Central.min_capacity dm ~depot:(point2 0 0) ~fleet:5);
  (* A single vehicle must haul everything: W = 3 + 10. *)
  Alcotest.(check (option int)) "fleet 1" (Some 13)
    (Central.min_capacity dm ~depot:(point2 0 0) ~fleet:1)

let test_central_grows_with_distance () =
  let near = Demand_map.of_alist 2 [ (point2 2 0, 8) ] in
  let far = Demand_map.of_alist 2 [ (point2 40 0, 8) ] in
  let cap dm = Option.get (Central.min_capacity dm ~depot:(point2 0 0) ~fleet:100) in
  Alcotest.(check bool) "distance dominates" true (cap far > cap near + 30)

let test_greedy_online_serves_with_generous_capacity () =
  let w = Workload.square ~side:4 ~per_point:5 () in
  let o = Greedy_online.run ~capacity:100.0 w in
  Alcotest.(check bool) "success" true (Greedy_online.succeeded o);
  Alcotest.(check int) "all served" 80 o.Greedy_online.served

let test_greedy_online_fails_when_starved () =
  let w = Workload.point ~total:100 () in
  let o = Greedy_online.run ~capacity:2.0 w in
  Alcotest.(check bool) "failures recorded" true (o.Greedy_online.failed > 0)

let test_greedy_min_capacity_sandwich () =
  (* Greedy is a valid online strategy, so its minimal capacity is also
     an upper bound on Won and must exceed ω*. *)
  let w = Workload.point ~total:200 () in
  let star = Oracle.omega_star (Workload.demand w) in
  let greedy = Greedy_online.min_feasible_capacity w in
  Alcotest.(check bool)
    (Printf.sprintf "ω* (%g) <= greedy (%g)" star greedy)
    true
    (star <= greedy +. 0.5)

let suite =
  [
    Alcotest.test_case "path and cycle length" `Quick test_path_and_cycle_length;
    Alcotest.test_case "nearest neighbor greedy" `Quick test_nearest_neighbor_orders_greedily;
    Alcotest.test_case "nearest neighbor permutes" `Quick test_nearest_neighbor_is_permutation;
    Alcotest.test_case "2-opt never worse" `Quick test_two_opt_never_worse;
    Alcotest.test_case "2-opt fixes crossing" `Quick test_two_opt_fixes_crossing;
    Alcotest.test_case "clarke-wright valid" `Quick test_clarke_wright_valid;
    Alcotest.test_case "clarke-wright merges" `Quick test_clarke_wright_merges_routes;
    Alcotest.test_case "sweep valid" `Quick test_sweep_valid;
    Alcotest.test_case "sweep improvement" `Quick test_sweep_improvement_helps;
    Alcotest.test_case "central vehicles needed" `Quick test_central_vehicles_needed;
    Alcotest.test_case "central min capacity" `Quick test_central_min_capacity;
    Alcotest.test_case "central grows with distance" `Quick test_central_grows_with_distance;
    Alcotest.test_case "greedy online success" `Quick test_greedy_online_serves_with_generous_capacity;
    Alcotest.test_case "greedy online starves" `Quick test_greedy_online_fails_when_starved;
    Alcotest.test_case "greedy capacity sandwich" `Quick test_greedy_min_capacity_sandwich;
  ]
