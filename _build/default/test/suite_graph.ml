let line_graph n =
  let g = Digraph.create n in
  for i = 0 to n - 2 do
    Digraph.add_undirected g i (i + 1) ~weight:1
  done;
  g

let test_bfs_line () =
  let g = line_graph 5 in
  let d = Paths.bfs g ~source:0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] d

let test_bfs_unreachable () =
  let g = Digraph.create 3 in
  Digraph.add_edge g ~src:0 ~dst:1 ~weight:1;
  let d = Paths.bfs g ~source:0 in
  Alcotest.(check int) "unreachable" max_int d.(2)

let test_bfs_multi () =
  let g = line_graph 7 in
  let d = Paths.bfs_multi g ~sources:[ 0; 6 ] in
  Alcotest.(check (array int)) "nearest source" [| 0; 1; 2; 3; 2; 1; 0 |] d

let test_dijkstra_weighted () =
  let g = Digraph.create 4 in
  Digraph.add_edge g ~src:0 ~dst:1 ~weight:5;
  Digraph.add_edge g ~src:0 ~dst:2 ~weight:1;
  Digraph.add_edge g ~src:2 ~dst:1 ~weight:2;
  Digraph.add_edge g ~src:1 ~dst:3 ~weight:1;
  let d = Paths.dijkstra g ~source:0 in
  Alcotest.(check (array int)) "distances" [| 0; 3; 1; 4 |] d

let test_dijkstra_rejects_negative () =
  let g = Digraph.create 2 in
  Digraph.add_edge g ~src:0 ~dst:1 ~weight:(-1);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Paths.dijkstra: negative weight") (fun () ->
      ignore (Paths.dijkstra g ~source:0))

let test_dijkstra_parents_recover_path () =
  let g = Digraph.create 5 in
  Digraph.add_edge g ~src:0 ~dst:1 ~weight:1;
  Digraph.add_edge g ~src:1 ~dst:2 ~weight:1;
  Digraph.add_edge g ~src:2 ~dst:3 ~weight:1;
  Digraph.add_edge g ~src:0 ~dst:3 ~weight:10;
  let _, parents = Paths.dijkstra_with_parents g ~source:0 in
  Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] (Paths.path_to ~parents 3)

let test_bellman_ford_agrees_with_dijkstra () =
  let rng = Rng.create 99 in
  for _ = 1 to 20 do
    let n = 8 in
    let g = Digraph.create n in
    for _ = 1 to 20 do
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v then Digraph.add_edge g ~src:u ~dst:v ~weight:(Rng.int rng 10)
    done;
    match Paths.bellman_ford g ~source:0 with
    | Error () -> Alcotest.fail "no negative cycles possible"
    | Ok bf ->
        let dj = Paths.dijkstra g ~source:0 in
        Alcotest.(check (array int)) "agree" bf dj
  done

let test_bellman_ford_negative_cycle () =
  let g = Digraph.create 2 in
  Digraph.add_edge g ~src:0 ~dst:1 ~weight:1;
  Digraph.add_edge g ~src:1 ~dst:0 ~weight:(-2);
  Alcotest.(check bool) "detected" true (Paths.bellman_ford g ~source:0 = Error ())

let test_bellman_ford_negative_edge_ok () =
  let g = Digraph.create 3 in
  Digraph.add_edge g ~src:0 ~dst:1 ~weight:4;
  Digraph.add_edge g ~src:0 ~dst:2 ~weight:1;
  Digraph.add_edge g ~src:2 ~dst:1 ~weight:(-3);
  match Paths.bellman_ford g ~source:0 with
  | Error () -> Alcotest.fail "no negative cycle here"
  | Ok d -> Alcotest.(check (array int)) "distances" [| 0; -2; 1 |] d

let test_connected_components () =
  let g = Digraph.create 6 in
  Digraph.add_edge g ~src:0 ~dst:1 ~weight:1;
  Digraph.add_edge g ~src:2 ~dst:1 ~weight:1;
  Digraph.add_edge g ~src:3 ~dst:4 ~weight:1;
  let comp = Paths.connected_components g in
  Alcotest.(check bool) "0,1,2 together" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  Alcotest.(check bool) "3,4 together" true (comp.(3) = comp.(4));
  Alcotest.(check bool) "groups distinct" true
    (comp.(0) <> comp.(3) && comp.(5) <> comp.(0) && comp.(5) <> comp.(3))

let test_digraph_accessors () =
  let g = Digraph.create 3 in
  Digraph.add_edge g ~src:0 ~dst:1 ~weight:7;
  Digraph.add_edge g ~src:0 ~dst:2 ~weight:9;
  Alcotest.(check int) "vertices" 3 (Digraph.n_vertices g);
  Alcotest.(check int) "edges" 2 (Digraph.n_edges g);
  Alcotest.(check bool) "mem_edge" true (Digraph.mem_edge g ~src:0 ~dst:1);
  Alcotest.(check bool) "mem_edge false" false (Digraph.mem_edge g ~src:1 ~dst:0);
  Alcotest.(check (list (pair int int))) "succ order" [ (1, 7); (2, 9) ] (Digraph.succ g 0)

let suite =
  [
    Alcotest.test_case "bfs line" `Quick test_bfs_line;
    Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
    Alcotest.test_case "bfs multi-source" `Quick test_bfs_multi;
    Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
    Alcotest.test_case "dijkstra rejects negative" `Quick test_dijkstra_rejects_negative;
    Alcotest.test_case "dijkstra path recovery" `Quick test_dijkstra_parents_recover_path;
    Alcotest.test_case "bellman-ford vs dijkstra" `Quick test_bellman_ford_agrees_with_dijkstra;
    Alcotest.test_case "negative cycle detection" `Quick test_bellman_ford_negative_cycle;
    Alcotest.test_case "negative edge ok" `Quick test_bellman_ford_negative_edge_ok;
    Alcotest.test_case "connected components" `Quick test_connected_components;
    Alcotest.test_case "digraph accessors" `Quick test_digraph_accessors;
  ]
