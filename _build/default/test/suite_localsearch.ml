(* Local-search refinement and the exact single-site solver. *)

let point2 x y = [| x; y |]

let check_solution dm sol =
  match Localsearch.validate sol dm with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invalid solution: " ^ msg)

let test_of_plan_matches_planner_peak () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 200); (point2 4 4, 30) ] in
  let plan = Planner.plan dm in
  let sol = Localsearch.of_plan plan in
  check_solution dm sol;
  Alcotest.(check int) "same peak as the plan" (Planner.max_energy plan)
    (Localsearch.peak_energy sol)

let test_improve_never_worse () =
  let rng = Rng.create 4321 in
  for _ = 1 to 8 do
    let pts =
      List.init
        (1 + Rng.int rng 5)
        (fun _ -> (point2 (Rng.int rng 6) (Rng.int rng 6), 1 + Rng.int rng 60))
    in
    let dm = Demand_map.of_alist 2 pts in
    let base = Localsearch.of_plan (Planner.plan dm) in
    let improved = Localsearch.improve base dm in
    check_solution dm improved;
    Alcotest.(check bool) "peak never rises" true
      (Localsearch.peak_energy improved <= Localsearch.peak_energy base)
  done

let test_solve_between_bounds () =
  let rng = Rng.create 8765 in
  for _ = 1 to 6 do
    let pts =
      List.init 3 (fun _ -> (point2 (Rng.int rng 5) (Rng.int rng 5), 1 + Rng.int rng 40))
    in
    let dm = Demand_map.of_alist 2 pts in
    let sol = Localsearch.solve dm in
    check_solution dm sol;
    let peak = float_of_int (Localsearch.peak_energy sol) in
    let star = Oracle.omega_star dm in
    Alcotest.(check bool)
      (Printf.sprintf "ω* (%g) <= refined peak (%g)" star peak)
      true
      (star <= peak +. 1e-6)
  done

let test_solve_improves_hot_point () =
  (* The constructive plan is loose on a hot point; local search must cut
     the peak substantially. *)
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 500) ] in
  let plan_peak = Planner.max_energy (Planner.plan dm) in
  let refined = Localsearch.peak_energy (Localsearch.solve dm) in
  Alcotest.(check bool)
    (Printf.sprintf "refined (%d) < constructive (%d)" refined plan_peak)
    true
    (refined < plan_peak)

let test_vehicle_energy_route () =
  let window = Box.make ~lo:(point2 0 0) ~hi:(point2 4 4) in
  (* Vehicle at (0,0) serving 3 units at (2,0) and 1 at (2,1): best path is
     home -> (2,0) -> (2,1), travel 3, units 4. *)
  let v = Box.index window (point2 0 0) in
  let loads =
    [
      { Localsearch.site = point2 2 0; units = 3 };
      { Localsearch.site = point2 2 1; units = 1 };
    ]
  in
  Alcotest.(check int) "travel + units" 7 (Localsearch.vehicle_energy ~window v loads)

(* --- exact single-site Woff --- *)

let test_exact_point_small_values () =
  (* d = 1: the site's own vehicle serves it: W = 1. *)
  Alcotest.(check (float 1e-9)) "d=1" 1.0 (Exact.point_capacity ~dim:2 ~demand:1);
  (* d = 2: W in [1,2): own vehicle gives W, 4 ring-1 vehicles give (W-1)
     each: W + 4(W-1) >= 2 -> W = 1.2. *)
  Alcotest.(check (float 1e-9)) "d=2" 1.2 (Exact.point_capacity ~dim:2 ~demand:2)

let test_exact_point_inverse () =
  for d = 1 to 200 do
    let w = Exact.point_capacity ~dim:2 ~demand:d in
    Alcotest.(check bool)
      (Printf.sprintf "deliverable at W covers d=%d" d)
      true
      (Exact.point_deliverable ~dim:2 ~w >= float_of_int d -. 1e-6);
    if w > 1e-9 then
      Alcotest.(check bool)
        (Printf.sprintf "W is minimal for d=%d" d)
        true
        (Exact.point_deliverable ~dim:2 ~w:(w -. 1e-6) < float_of_int d)
  done

let test_exact_between_paper_bounds () =
  (* §2.1.3: W3 <= Woff <= 3·W3 for point demand. *)
  List.iter
    (fun d ->
      let exact = Exact.point_capacity ~dim:2 ~demand:d in
      let w3 = Omega.example_point_w3 ~d in
      Alcotest.(check bool)
        (Printf.sprintf "W3 (%g) <= exact (%g) <= 3·W3 for d=%d" w3 exact d)
        true
        (exact >= w3 -. 1e-6 && exact <= (3.0 *. w3) +. 1.0))
    [ 10; 100; 1000; 100000 ]

let test_exact_dominates_lp_lower_bound () =
  List.iter
    (fun d ->
      let exact = Exact.point_capacity ~dim:2 ~demand:d in
      let dm = Demand_map.of_alist 2 [ (point2 0 0, d) ] in
      let star = Oracle.omega_star dm in
      Alcotest.(check bool)
        (Printf.sprintf "ω* (%g) <= exact (%g) for d=%d" star exact d)
        true
        (star <= exact +. 1e-4))
    [ 5; 50; 500 ]

let test_exact_upper_bounds_local_search () =
  (* Local search cannot beat the exact optimum. *)
  List.iter
    (fun d ->
      let exact = Exact.point_capacity ~dim:2 ~demand:d in
      let dm = Demand_map.of_alist 2 [ (point2 0 0, d) ] in
      let refined = Localsearch.peak_energy (Localsearch.solve dm) in
      Alcotest.(check bool)
        (Printf.sprintf "exact (%g) <= refined (%d) for d=%d" exact refined d)
        true
        (float_of_int refined >= exact -. 1e-6))
    [ 20; 100; 400 ]

let test_exact_1d_and_3d () =
  (* 1-D, d = 3: W + 2(W-1) >= 3 -> W = 5/3. *)
  Alcotest.(check (float 1e-9)) "1d d=3" (5.0 /. 3.0)
    (Exact.point_capacity ~dim:1 ~demand:3);
  (* 3-D shells are bigger, so the capacity is smaller for equal demand. *)
  Alcotest.(check bool) "3d cheaper than 2d" true
    (Exact.point_capacity ~dim:3 ~demand:1000
    < Exact.point_capacity ~dim:2 ~demand:1000)

let suite =
  [
    Alcotest.test_case "of_plan keeps the peak" `Quick test_of_plan_matches_planner_peak;
    Alcotest.test_case "improve never worse" `Quick test_improve_never_worse;
    Alcotest.test_case "solve between bounds" `Quick test_solve_between_bounds;
    Alcotest.test_case "solve improves hot point" `Quick test_solve_improves_hot_point;
    Alcotest.test_case "vehicle energy route" `Quick test_vehicle_energy_route;
    Alcotest.test_case "exact point small values" `Quick test_exact_point_small_values;
    Alcotest.test_case "exact point inverse" `Quick test_exact_point_inverse;
    Alcotest.test_case "exact within paper bounds" `Quick test_exact_between_paper_bounds;
    Alcotest.test_case "exact dominates ω*" `Quick test_exact_dominates_lp_lower_bound;
    Alcotest.test_case "exact <= local search" `Quick test_exact_upper_bounds_local_search;
    Alcotest.test_case "exact in 1d and 3d" `Quick test_exact_1d_and_3d;
  ]

(* --- appended: tiny exhaustive Woff --- *)

let window_for dm ~pad =
  match Demand_map.bounding_box dm with
  | None -> Box.cube_at_origin ~dim:2 ~side:1
  | Some b -> Box.dilate b pad

let test_tiny_exact_singletons () =
  (* One unit at one point: its own vehicle serves it, W = 1. *)
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 1) ] in
  Alcotest.(check (option int)) "W=1" (Some 1)
    (Exact.tiny_woff dm ~window:(window_for dm ~pad:1))

let test_tiny_exact_two_units_same_site () =
  (* Two units at one point: own vehicle serves both (W=2) — a helper
     would pay 1 travel + 1 service = 2 as well. *)
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 2) ] in
  Alcotest.(check (option int)) "W=2" (Some 2)
    (Exact.tiny_woff dm ~window:(window_for dm ~pad:1))

let test_tiny_exact_spreads_load () =
  (* Four units at one point with a 3x3 fleet: peak 2 is achievable (own
     vehicle serves 2, neighbors deliver 1 each at cost 1+1). *)
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 4) ] in
  Alcotest.(check (option int)) "W=2" (Some 2)
    (Exact.tiny_woff dm ~window:(window_for dm ~pad:1))

let test_tiny_exact_bounded_by_heuristics () =
  let rng = Rng.create 777 in
  for _ = 1 to 6 do
    let k = 2 + Rng.int rng 4 in
    let pts = List.init k (fun _ -> (point2 (Rng.int rng 2) (Rng.int rng 2), 1)) in
    let dm = Demand_map.of_alist 2 pts in
    let window = window_for dm ~pad:1 in
    match Exact.tiny_woff dm ~window with
    | None -> Alcotest.fail "instance within tiny limits"
    | Some exact ->
        let star = Oracle.omega_star dm in
        let ls = Localsearch.peak_energy (Localsearch.solve dm) in
        Alcotest.(check bool)
          (Printf.sprintf "ω* (%g) <= exact (%d)" star exact)
          true
          (star <= float_of_int exact +. 1e-6);
        Alcotest.(check bool)
          (Printf.sprintf "exact (%d) <= local search (%d)" exact ls)
          true
          (exact <= ls || ls = 0)
  done

let test_tiny_exact_refuses_large () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 100) ] in
  Alcotest.(check (option int)) "too many units" None
    (Exact.tiny_woff dm ~window:(window_for dm ~pad:1))

let suite =
  suite
  @ [
      Alcotest.test_case "tiny exact: singleton" `Quick test_tiny_exact_singletons;
      Alcotest.test_case "tiny exact: two units" `Quick test_tiny_exact_two_units_same_site;
      Alcotest.test_case "tiny exact: spreads load" `Quick test_tiny_exact_spreads_load;
      Alcotest.test_case "tiny exact vs heuristics" `Quick test_tiny_exact_bounded_by_heuristics;
      Alcotest.test_case "tiny exact refuses large" `Quick test_tiny_exact_refuses_large;
    ]
