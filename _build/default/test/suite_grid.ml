(* Point and Box geometry, including the qcheck properties backing the
   closed-form identities used throughout the core. *)

let point2 x y = [| x; y |]

let test_l1_dist () =
  Alcotest.(check int) "2d" 7 (Point.l1_dist (point2 1 2) (point2 (-2) 6));
  Alcotest.(check int) "same point" 0 (Point.l1_dist (point2 3 3) (point2 3 3));
  Alcotest.(check int) "3d" 6 (Point.l1_dist [| 0; 0; 0 |] [| 1; 2; 3 |])

let test_l1_dim_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Point: dimension mismatch")
    (fun () -> ignore (Point.l1_dist [| 0 |] [| 0; 0 |]))

let test_neighbors () =
  let ns = Point.neighbors (point2 0 0) in
  Alcotest.(check int) "four neighbors in 2d" 4 (List.length ns);
  List.iter
    (fun n -> Alcotest.(check int) "at distance 1" 1 (Point.l1_dist n (point2 0 0)))
    ns;
  Alcotest.(check int) "six neighbors in 3d" 6
    (List.length (Point.neighbors [| 0; 0; 0 |]))

let test_point_equal_hash () =
  let a = point2 1 2 and b = point2 1 2 and c = point2 2 1 in
  Alcotest.(check bool) "equal" true (Point.equal a b);
  Alcotest.(check bool) "not equal" false (Point.equal a c);
  Alcotest.(check int) "hash agrees" (Point.hash a) (Point.hash b)

let test_box_volume_and_mem () =
  let b = Box.make ~lo:(point2 0 0) ~hi:(point2 2 3) in
  Alcotest.(check int) "volume" 12 (Box.volume b);
  Alcotest.(check bool) "corner in" true (Box.mem b (point2 2 3));
  Alcotest.(check bool) "outside" false (Box.mem b (point2 3 0))

let test_box_index_roundtrip () =
  let b = Box.make ~lo:[| -1; 2; 0 |] ~hi:[| 1; 4; 1 |] in
  for k = 0 to Box.volume b - 1 do
    let p = Box.point_of_index b k in
    Alcotest.(check int) "roundtrip" k (Box.index b p)
  done

let test_box_iter_count () =
  let b = Box.make ~lo:(point2 (-2) (-2)) ~hi:(point2 2 2) in
  let count = ref 0 in
  Box.iter b (fun _ -> incr count);
  Alcotest.(check int) "25 points" 25 !count

let test_box_clamp_and_dist () =
  let b = Box.make ~lo:(point2 0 0) ~hi:(point2 4 4) in
  Alcotest.(check int) "inside dist 0" 0 (Box.l1_dist_to b (point2 2 2));
  Alcotest.(check int) "corner dist" 4 (Box.l1_dist_to b (point2 6 6));
  Alcotest.(check bool) "clamp" true (Point.equal (Box.clamp b (point2 6 2)) (point2 4 2))

let test_partition_cubes_exact () =
  let b = Box.make ~lo:(point2 0 0) ~hi:(point2 5 5) in
  let tiles = Box.partition_cubes b ~side:3 in
  Alcotest.(check int) "four tiles" 4 (List.length tiles);
  let total = List.fold_left (fun acc t -> acc + Box.volume t) 0 tiles in
  Alcotest.(check int) "tiles cover the box" (Box.volume b) total

let test_partition_cubes_cropped () =
  let b = Box.make ~lo:(point2 0 0) ~hi:(point2 4 4) in
  let tiles = Box.partition_cubes b ~side:3 in
  Alcotest.(check int) "four tiles" 4 (List.length tiles);
  let total = List.fold_left (fun acc t -> acc + Box.volume t) 0 tiles in
  Alcotest.(check int) "tiles cover the box" (Box.volume b) total

let test_containing_cube () =
  let b = Box.make ~lo:(point2 0 0) ~hi:(point2 5 5) in
  let cube = Box.containing_cube b ~side:3 (point2 4 1) in
  Alcotest.(check bool) "contains point" true (Box.mem cube (point2 4 1));
  Alcotest.(check bool) "anchored on the tiling" true
    (Point.equal cube.Box.lo (point2 3 0))

let test_intersect () =
  let a = Box.make ~lo:(point2 0 0) ~hi:(point2 3 3) in
  let b = Box.make ~lo:(point2 2 2) ~hi:(point2 5 5) in
  (match Box.intersect a b with
  | None -> Alcotest.fail "expected overlap"
  | Some i -> Alcotest.(check int) "overlap volume" 4 (Box.volume i));
  let c = Box.make ~lo:(point2 10 10) ~hi:(point2 11 11) in
  Alcotest.(check bool) "disjoint" true (Box.intersect a c = None)

(* qcheck: containing_cube agrees with partition_cubes. *)
let prop_containing_cube_consistent =
  QCheck.Test.make ~name:"containing_cube is a partition tile" ~count:200
    QCheck.(triple (int_range 1 4) small_nat small_nat)
    (fun (side, px, py) ->
      let b = Box.make ~lo:(point2 0 0) ~hi:(point2 9 9) in
      let p = point2 (px mod 10) (py mod 10) in
      let tiles = Box.partition_cubes b ~side in
      let cube = Box.containing_cube b ~side p in
      List.exists
        (fun t -> Point.equal t.Box.lo cube.Box.lo && Point.equal t.Box.hi cube.Box.hi)
        tiles
      && Box.mem cube p)

let prop_partition_disjoint_cover =
  QCheck.Test.make ~name:"partition tiles are disjoint and cover" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 1 8))
    (fun (side, extent) ->
      let b = Box.make ~lo:(point2 0 0) ~hi:(point2 (extent - 1) (extent - 1)) in
      let tiles = Box.partition_cubes b ~side in
      let counts = Point.Tbl.create 64 in
      List.iter
        (fun t ->
          Box.iter t (fun p ->
              Point.Tbl.replace counts p
                (1 + Option.value ~default:0 (Point.Tbl.find_opt counts p))))
        tiles;
      let ok = ref true in
      Box.iter b (fun p ->
          if Point.Tbl.find_opt counts p <> Some 1 then ok := false);
      !ok && Point.Tbl.length counts = Box.volume b)

let suite =
  [
    Alcotest.test_case "l1 distance" `Quick test_l1_dist;
    Alcotest.test_case "l1 dimension mismatch" `Quick test_l1_dim_mismatch;
    Alcotest.test_case "neighbors" `Quick test_neighbors;
    Alcotest.test_case "equal and hash" `Quick test_point_equal_hash;
    Alcotest.test_case "box volume and mem" `Quick test_box_volume_and_mem;
    Alcotest.test_case "box index roundtrip" `Quick test_box_index_roundtrip;
    Alcotest.test_case "box iter count" `Quick test_box_iter_count;
    Alcotest.test_case "box clamp and dist" `Quick test_box_clamp_and_dist;
    Alcotest.test_case "partition exact" `Quick test_partition_cubes_exact;
    Alcotest.test_case "partition cropped" `Quick test_partition_cubes_cropped;
    Alcotest.test_case "containing cube" `Quick test_containing_cube;
    Alcotest.test_case "intersect" `Quick test_intersect;
    QCheck_alcotest.to_alcotest prop_containing_cube_consistent;
    QCheck_alcotest.to_alcotest prop_partition_disjoint_cover;
  ]

(* --- appended: box construction edges --- *)

let test_box_make_rejects_inverted () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Box.make: lo > hi") (fun () ->
      ignore (Box.make ~lo:(point2 2 0) ~hi:(point2 1 5)))

let test_box_of_side () =
  let b = Box.of_side ~dim:2 ~lo:(point2 3 4) ~side:3 in
  Alcotest.(check int) "volume" 9 (Box.volume b);
  Alcotest.(check bool) "hi corner" true (Point.equal b.Box.hi (point2 5 6))

let test_box_dilate () =
  let b = Box.dilate (Box.cube_at_origin ~dim:2 ~side:2) 2 in
  Alcotest.(check int) "volume" 36 (Box.volume b);
  Alcotest.(check bool) "lo" true (Point.equal b.Box.lo (point2 (-2) (-2)))

let suite =
  suite
  @ [
      Alcotest.test_case "box rejects inverted" `Quick test_box_make_rejects_inverted;
      Alcotest.test_case "box of_side" `Quick test_box_of_side;
      Alcotest.test_case "box dilate" `Quick test_box_dilate;
    ]
