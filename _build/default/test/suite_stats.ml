let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_f ?eps msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %g, got %g)" msg expected actual)
    true (feq ?eps expected actual)

let test_mean () = check_f "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_mean_singleton () = check_f "mean singleton" 7.0 (Stats.mean [| 7.0 |])

let test_variance () =
  (* Sample variance of 2,4,4,4,5,5,7,9 is 32/7. *)
  check_f "variance" (32.0 /. 7.0)
    (Stats.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_variance_singleton () = check_f "variance singleton" 0.0 (Stats.variance [| 3.0 |])

let test_stddev_constant () = check_f "stddev constant" 0.0 (Stats.stddev [| 5.; 5.; 5. |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 2.0 |] in
  check_f "min" (-1.0) lo;
  check_f "max" 3.0 hi

let test_median_odd () = check_f "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |])

let test_median_even () = check_f "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_percentile_extremes () =
  let xs = [| 10.0; 20.0; 30.0 |] in
  check_f "p0" 10.0 (Stats.percentile xs 0.0);
  check_f "p100" 30.0 (Stats.percentile xs 100.0)

let test_percentile_interpolates () =
  check_f "p25" 1.5 (Stats.percentile [| 1.0; 2.0; 3.0 |] 25.0)

let test_percentile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.median xs);
  Alcotest.(check (array (float 0.0))) "unchanged" [| 3.0; 1.0; 2.0 |] xs

let test_linear_fit_exact () =
  let a, b, r2 = Stats.linear_fit [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |] in
  check_f "intercept" 1.0 a;
  check_f "slope" 2.0 b;
  check_f "r2" 1.0 r2

let test_linear_fit_r2_below_one_with_noise () =
  let _, b, r2 = Stats.linear_fit [| (0.0, 0.0); (1.0, 1.2); (2.0, 1.8); (3.0, 3.1) |] in
  Alcotest.(check bool) "slope near 1" true (Float.abs (b -. 1.0) < 0.2);
  Alcotest.(check bool) "r2 in (0.9, 1)" true (r2 > 0.9 && r2 <= 1.0)

let test_loglog_slope_quadratic () =
  let pts = Array.init 6 (fun i ->
      let x = float_of_int (i + 2) in
      (x, 3.0 *. (x ** 2.0)))
  in
  check_f ~eps:1e-6 "exponent 2" 2.0 (Stats.loglog_slope pts)

let test_geometric_mean () =
  check_f "geomean" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |])

let test_empty_raises () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "mean singleton" `Quick test_mean_singleton;
    Alcotest.test_case "variance" `Quick test_variance;
    Alcotest.test_case "variance singleton" `Quick test_variance_singleton;
    Alcotest.test_case "stddev constant" `Quick test_stddev_constant;
    Alcotest.test_case "min max" `Quick test_min_max;
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "median even" `Quick test_median_even;
    Alcotest.test_case "percentile extremes" `Quick test_percentile_extremes;
    Alcotest.test_case "percentile interpolates" `Quick test_percentile_interpolates;
    Alcotest.test_case "percentile pure" `Quick test_percentile_does_not_mutate;
    Alcotest.test_case "linear fit exact" `Quick test_linear_fit_exact;
    Alcotest.test_case "linear fit with noise" `Quick test_linear_fit_r2_below_one_with_noise;
    Alcotest.test_case "loglog slope" `Quick test_loglog_slope_quadratic;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
  ]

(* --- appended: the shared binary heap --- *)

let test_heap_sorts () =
  let h = Heap.of_list ~compare:Int.compare [ 5; 1; 4; 1; 3 ] in
  Alcotest.(check (list int)) "ascending drain" [ 1; 1; 3; 4; 5 ] (Heap.drain h);
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_heap_peek_pop () =
  let h = Heap.create ~compare:Int.compare () in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.push h 9;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  Alcotest.(check int) "size" 2 (Heap.size h);
  Alcotest.(check (option int)) "pop min" (Some 2) (Heap.pop h);
  Alcotest.(check (option int)) "pop next" (Some 9) (Heap.pop h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let prop_heap_matches_sort =
  QCheck.Test.make ~name:"heap drain = List.sort" ~count:200
    QCheck.(list (int_range (-1000) 1000))
    (fun xs -> Heap.drain (Heap.of_list ~compare:Int.compare xs) = List.sort Int.compare xs)

let prop_heap_interleaved_ops =
  QCheck.Test.make ~name:"heap correct under interleaved push/pop" ~count:100
    QCheck.(list (int_range 0 100))
    (fun xs ->
      (* Push two, pop one, repeatedly; collect pops; then drain.  The
         multiset of outputs must equal the inputs and each drain segment
         must come out sorted. *)
      let h = Heap.create ~compare:Int.compare () in
      let popped = ref [] in
      List.iteri
        (fun i x ->
          Heap.push h x;
          if i mod 2 = 1 then
            match Heap.pop h with Some v -> popped := v :: !popped | None -> ())
        xs;
      let rest = Heap.drain h in
      let all = List.sort Int.compare (!popped @ rest) in
      all = List.sort Int.compare xs
      && rest = List.sort Int.compare rest)

let suite =
  suite
  @ [
      Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
      Alcotest.test_case "heap peek/pop" `Quick test_heap_peek_pop;
      QCheck_alcotest.to_alcotest prop_heap_matches_sort;
      QCheck_alcotest.to_alcotest prop_heap_interleaved_ops;
    ]
