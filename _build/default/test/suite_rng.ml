(* Determinism and distributional sanity of the SplitMix64 generator. *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_int_in_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_int_covers_all_values () =
  let rng = Rng.create 9 in
  let seen = Array.make 6 false in
  for _ = 1 to 10_000 do
    seen.(Rng.int rng 6) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all (fun b -> b) seen)

let test_int_unbiased () =
  (* Chi-square-ish sanity: each of 8 buckets within 20% of expectation. *)
  let rng = Rng.create 10 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = n / 8 in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket near uniform" true
        (abs (c - expected) < expected / 5))
    counts

let test_float_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_split_independence () =
  let rng = Rng.create 12 in
  let child = Rng.split rng in
  (* The child stream must not simply replay the parent stream. *)
  let parent_next = Rng.int64 rng and child_next = Rng.int64 child in
  Alcotest.(check bool) "split streams diverge" true (parent_next <> child_next)

let test_shuffle_permutes () =
  let rng = Rng.create 13 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_zipf_range_and_skew () =
  let rng = Rng.create 14 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let r = Rng.zipf rng ~n:10 ~s:1.2 in
    Alcotest.(check bool) "rank in range" true (r >= 1 && r <= 10);
    counts.(r - 1) <- counts.(r - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 dominates rank 10" true (counts.(0) > 4 * counts.(9))

let test_exponential_positive_mean () =
  let rng = Rng.create 15 in
  let xs = Array.init 20_000 (fun _ -> Rng.exponential rng 2.0) in
  Array.iter (fun x -> Alcotest.(check bool) "positive" true (x >= 0.0)) xs;
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 2" true (Float.abs (m -. 2.0) < 0.1)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int covers all values" `Quick test_int_covers_all_values;
    Alcotest.test_case "int unbiased" `Quick test_int_unbiased;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "zipf range and skew" `Quick test_zipf_range_and_skew;
    Alcotest.test_case "exponential positive mean" `Quick test_exponential_positive_mean;
  ]
