(* The specialized §2.1 strategies: exact reproduction of the 2·W2 and
   3·W3 capacity factors of Figures 2.2 and 2.3. *)

let test_line_validates () =
  List.iter
    (fun (len, d) ->
      let s = Fig21.line ~len ~d in
      match Fig21.validate s (Fig21.line_demand ~len ~d) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "len=%d d=%d: %s" len d msg))
    [ (1, 1); (5, 7); (12, 100); (30, 1000); (3, 2) ]

let test_line_factor_two () =
  (* Fig 2.2: capacity 2·W2 suffices (plus integer-rounding slack). *)
  List.iter
    (fun d ->
      let w2 = Omega.example_line_w2 ~d in
      let s = Fig21.line ~len:20 ~d in
      Alcotest.(check bool)
        (Printf.sprintf "d=%d: used %d <= 2·W2+2 = %.2f" d s.Fig21.capacity_used
           ((2.0 *. w2) +. 2.0))
        true
        (float_of_int s.Fig21.capacity_used <= (2.0 *. w2) +. 2.0))
    [ 1; 5; 50; 500; 5000 ]

let test_line_beats_generic_planner () =
  let d = 500 and len = 10 in
  let dm = Fig21.line_demand ~len ~d in
  let generic = Planner.max_energy (Planner.plan dm) in
  let bespoke = (Fig21.line ~len ~d).Fig21.capacity_used in
  Alcotest.(check bool)
    (Printf.sprintf "bespoke (%d) < generic (%d)" bespoke generic)
    true (bespoke < generic)

let test_point_validates () =
  List.iter
    (fun d ->
      let s = Fig21.point ~d in
      match Fig21.validate s (Fig21.point_demand ~d) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "d=%d: %s" d msg))
    [ 1; 9; 100; 12345 ]

let test_point_factor_three () =
  (* Fig 2.3: capacity 3·W3 suffices (plus rounding slack). *)
  List.iter
    (fun d ->
      let w3 = Omega.example_point_w3 ~d in
      let s = Fig21.point ~d in
      Alcotest.(check bool)
        (Printf.sprintf "d=%d: used %d <= 3·W3+3 = %.2f" d s.Fig21.capacity_used
           ((3.0 *. w3) +. 3.0))
        true
        (float_of_int s.Fig21.capacity_used <= (3.0 *. w3) +. 3.0))
    [ 1; 10; 100; 1000; 100000 ]

let test_point_above_exact_optimum () =
  (* The bespoke strategy cannot beat the exact single-site optimum. *)
  List.iter
    (fun d ->
      let exact = Exact.point_capacity ~dim:2 ~demand:d in
      let s = Fig21.point ~d in
      Alcotest.(check bool)
        (Printf.sprintf "d=%d: exact %.2f <= used %d" d exact s.Fig21.capacity_used)
        true
        (float_of_int s.Fig21.capacity_used >= exact -. 1e-6))
    [ 10; 100; 1000 ]

let test_zero_demand () =
  Alcotest.(check int) "line zero" 0 (Fig21.line ~len:4 ~d:0).Fig21.capacity_used;
  Alcotest.(check int) "point zero" 0 (Fig21.point ~d:0).Fig21.capacity_used

let test_validate_catches_underservice () =
  let s = Fig21.point ~d:10 in
  let wrong = Fig21.point_demand ~d:11 in
  Alcotest.(check bool) "detects shortfall" true (Fig21.validate s wrong <> Ok ())

let suite =
  [
    Alcotest.test_case "line validates" `Quick test_line_validates;
    Alcotest.test_case "line factor 2·W2 (Fig 2.2)" `Quick test_line_factor_two;
    Alcotest.test_case "line beats generic planner" `Quick test_line_beats_generic_planner;
    Alcotest.test_case "point validates" `Quick test_point_validates;
    Alcotest.test_case "point factor 3·W3 (Fig 2.3)" `Quick test_point_factor_three;
    Alcotest.test_case "point above exact optimum" `Quick test_point_above_exact_optimum;
    Alcotest.test_case "zero demand" `Quick test_zero_demand;
    Alcotest.test_case "validate catches underservice" `Quick test_validate_catches_underservice;
  ]
