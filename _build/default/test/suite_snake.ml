(* The snake traversal realises the paper's black/white pairing (§3.2):
   consecutive cells are adjacent, colours alternate, pairs cover the cube. *)

let point2 x y = [| x; y |]

let test_order_visits_all () =
  let b = Box.make ~lo:(point2 0 0) ~hi:(point2 3 2) in
  let path = Snake.order b in
  Alcotest.(check int) "length" (Box.volume b) (Array.length path);
  let distinct = Point.Set.of_list (Array.to_list path) in
  Alcotest.(check int) "all distinct" (Box.volume b) (Point.Set.cardinal distinct)

let test_order_consecutive_adjacent_2d () =
  let b = Box.make ~lo:(point2 (-1) (-1)) ~hi:(point2 2 3) in
  let path = Snake.order b in
  for i = 0 to Array.length path - 2 do
    Alcotest.(check int) "adjacent step" 1 (Point.l1_dist path.(i) path.(i + 1))
  done

let test_order_consecutive_adjacent_3d () =
  let b = Box.make ~lo:[| 0; 0; 0 |] ~hi:[| 2; 2; 2 |] in
  let path = Snake.order b in
  Alcotest.(check int) "length 27" 27 (Array.length path);
  for i = 0 to Array.length path - 2 do
    Alcotest.(check int) "adjacent step" 1 (Point.l1_dist path.(i) path.(i + 1))
  done

let test_order_1d () =
  let b = Box.make ~lo:[| 3 |] ~hi:[| 7 |] in
  let path = Snake.order b in
  Alcotest.(check int) "length" 5 (Array.length path);
  Alcotest.(check bool) "starts at lo" true (Point.equal path.(0) [| 3 |])

let test_colors_alternate_along_path () =
  let b = Box.make ~lo:(point2 0 0) ~hi:(point2 4 4) in
  let path = Snake.order b in
  for i = 0 to Array.length path - 2 do
    Alcotest.(check bool) "colour flips" true
      (Snake.color path.(i) <> Snake.color path.(i + 1))
  done

let test_pairing_structure () =
  let b = Box.make ~lo:(point2 0 0) ~hi:(point2 2 2) in
  let { Snake.pairs; unpaired } = Snake.pairing b in
  Alcotest.(check int) "four pairs from nine cells" 4 (Array.length pairs);
  Alcotest.(check bool) "one leftover" true (unpaired <> None);
  Array.iter
    (fun (a, c) ->
      Alcotest.(check int) "pair adjacent" 1 (Point.l1_dist a c);
      Alcotest.(check bool) "pair bicoloured" true (Snake.color a <> Snake.color c))
    pairs

let test_pairing_even_volume_no_leftover () =
  let b = Box.make ~lo:(point2 0 0) ~hi:(point2 3 3) in
  let { Snake.pairs; unpaired } = Snake.pairing b in
  Alcotest.(check int) "eight pairs" 8 (Array.length pairs);
  Alcotest.(check bool) "no leftover" true (unpaired = None)

let test_pairing_covers_cube () =
  let b = Box.make ~lo:(point2 1 1) ~hi:(point2 3 4) in
  let { Snake.pairs; unpaired } = Snake.pairing b in
  let covered =
    Array.fold_left
      (fun acc (a, c) -> Point.Set.add a (Point.Set.add c acc))
      Point.Set.empty pairs
  in
  let covered =
    match unpaired with None -> covered | Some p -> Point.Set.add p covered
  in
  Alcotest.(check int) "covers every cell" (Box.volume b) (Point.Set.cardinal covered)

let prop_snake_adjacent_random_boxes =
  QCheck.Test.make ~name:"snake steps adjacent on random boxes" ~count:80
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (w, h) ->
      let b = Box.make ~lo:(point2 0 0) ~hi:(point2 (w - 1) (h - 1)) in
      let path = Snake.order b in
      let ok = ref true in
      for i = 0 to Array.length path - 2 do
        if Point.l1_dist path.(i) path.(i + 1) <> 1 then ok := false
      done;
      !ok && Array.length path = Box.volume b)

let suite =
  [
    Alcotest.test_case "visits all cells" `Quick test_order_visits_all;
    Alcotest.test_case "adjacent steps (2d)" `Quick test_order_consecutive_adjacent_2d;
    Alcotest.test_case "adjacent steps (3d)" `Quick test_order_consecutive_adjacent_3d;
    Alcotest.test_case "1d path" `Quick test_order_1d;
    Alcotest.test_case "colours alternate" `Quick test_colors_alternate_along_path;
    Alcotest.test_case "pairing structure" `Quick test_pairing_structure;
    Alcotest.test_case "even volume pairing" `Quick test_pairing_even_volume_no_leftover;
    Alcotest.test_case "pairing covers cube" `Quick test_pairing_covers_cube;
    QCheck_alcotest.to_alcotest prop_snake_adjacent_random_boxes;
  ]
