(* The flow-based LP oracle vs. the combinatorial characterizations:
   Lemma 2.2.2 (per-radius) and Lemma 2.2.3 (program 2.8). *)

let point2 x y = [| x; y |]

let test_lp_radius_zero_is_max_demand () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 4); (point2 3 3, 9) ] in
  Alcotest.(check (float 1e-6)) "radius 0" 9.0 (Oracle.lp_value ~radius:0 dm)

let test_lp_value_single_point () =
  (* One point with demand d, radius r: ω = d / |N_r|. *)
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 26) ] in
  Alcotest.(check (float 1e-4)) "r=1: 26/5" (26.0 /. 5.0) (Oracle.lp_value ~radius:1 dm);
  Alcotest.(check (float 1e-4)) "r=2: 26/13" 2.0 (Oracle.lp_value ~radius:2 dm)

let test_lp_value_non_increasing_in_radius () =
  let rng = Rng.create 17 in
  for _ = 1 to 10 do
    let pts =
      List.init 4 (fun _ -> (point2 (Rng.int rng 4) (Rng.int rng 4), 1 + Rng.int rng 9))
    in
    let dm = Demand_map.of_alist 2 pts in
    let prev = ref infinity in
    for r = 0 to 4 do
      let v = Oracle.lp_value ~radius:r dm in
      Alcotest.(check bool)
        (Printf.sprintf "ω(r) non-increasing at r=%d" r)
        true
        (v <= !prev +. 1e-6);
      prev := v
    done
  done

let test_lp_value_empty () =
  Alcotest.(check (float 0.0)) "empty demand" 0.0
    (Oracle.lp_value ~radius:3 (Demand_map.empty 2))

let test_omega_star_single_point () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 5) ] in
  (* Bracket [1,2): lp(1) = 5/5 = 1 -> ω* = 1. *)
  Alcotest.(check (float 1e-4)) "ω* = 1" 1.0 (Oracle.omega_star dm)

let test_omega_star_equals_subset_max () =
  (* Lemma 2.2.3: program (2.8) = max_T ω_T, checked against the
     exponential subset enumeration on random small instances. *)
  let rng = Rng.create 271828 in
  for _ = 1 to 15 do
    let support = 1 + Rng.int rng 5 in
    let pts =
      List.init support (fun _ ->
          (point2 (Rng.int rng 4) (Rng.int rng 4), 1 + Rng.int rng 12))
    in
    let dm = Demand_map.of_alist 2 pts in
    let lp = Oracle.omega_star dm in
    let subsets = Omega.max_over_subsets dm in
    Alcotest.(check (float 1e-4))
      (Printf.sprintf "ω* agreement (lp=%g subsets=%g)" lp subsets)
      subsets lp
  done

let test_omega_star_equals_subset_max_1d () =
  let rng = Rng.create 31415 in
  for _ = 1 to 10 do
    let pts = List.init 4 (fun _ -> ([| Rng.int rng 6 |], 1 + Rng.int rng 10)) in
    let dm = Demand_map.of_alist 1 pts in
    Alcotest.(check (float 1e-4))
      "1d agreement"
      (Omega.max_over_subsets dm)
      (Oracle.omega_star dm)
  done

let test_omega_star_line_example () =
  (* Demand d per point on a length-m segment: for m large relative to ω,
     ω* ~ W2(d).  Exact small case: segment of 5 points, d = 2 each.
     Validated against the subset enumeration. *)
  let dm = Demand_map.of_alist 2 (List.init 5 (fun i -> (point2 i 0, 2))) in
  Alcotest.(check (float 1e-4))
    "line instance"
    (Omega.max_over_subsets dm)
    (Oracle.omega_star dm)

let test_lower_bound_is_synonym () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 7) ] in
  Alcotest.(check (float 0.0)) "synonym" (Oracle.omega_star dm)
    (Oracle.lower_bound_woff dm)

let suite =
  [
    Alcotest.test_case "lp radius 0 = max demand" `Quick test_lp_radius_zero_is_max_demand;
    Alcotest.test_case "lp single point" `Quick test_lp_value_single_point;
    Alcotest.test_case "lp non-increasing in radius" `Quick test_lp_value_non_increasing_in_radius;
    Alcotest.test_case "lp empty" `Quick test_lp_value_empty;
    Alcotest.test_case "ω* single point" `Quick test_omega_star_single_point;
    Alcotest.test_case "ω* = subset max (Lemma 2.2.3)" `Quick test_omega_star_equals_subset_max;
    Alcotest.test_case "ω* = subset max, 1d" `Quick test_omega_star_equals_subset_max_1d;
    Alcotest.test_case "ω* line instance" `Quick test_omega_star_line_example;
    Alcotest.test_case "lower_bound_woff synonym" `Quick test_lower_bound_is_synonym;
  ]

(* --- appended: duality witness extraction --- *)

let test_witness_single_point () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 26) ] in
  match Oracle.witness dm with
  | None -> Alcotest.fail "non-empty demand must have a witness"
  | Some (points, w) ->
      Alcotest.(check int) "the hot point itself" 1 (List.length points);
      Alcotest.(check (float 1e-3)) "tight value" (Oracle.omega_star dm) w

let test_witness_is_tight_random () =
  let rng = Rng.create 112358 in
  for _ = 1 to 10 do
    let pts =
      List.init
        (1 + Rng.int rng 5)
        (fun _ -> (point2 (Rng.int rng 4) (Rng.int rng 4), 1 + Rng.int rng 15))
    in
    let dm = Demand_map.of_alist 2 pts in
    let star = Oracle.omega_star dm in
    match Oracle.witness dm with
    | None -> Alcotest.fail "witness must exist"
    | Some (points, w) ->
        Alcotest.(check bool) "non-empty subset of support" true
          (points <> []
          && List.for_all (fun p -> Demand_map.value dm p > 0) points);
        Alcotest.(check bool)
          (Printf.sprintf "ω_T (%g) ~ ω* (%g)" w star)
          true
          (Float.abs (w -. star) < 0.01)
  done

let test_witness_empty () =
  Alcotest.(check bool) "no witness for empty demand" true
    (Oracle.witness (Demand_map.empty 2) = None)

let suite =
  suite
  @ [
      Alcotest.test_case "witness: single point" `Quick test_witness_single_point;
      Alcotest.test_case "witness tight on random instances" `Quick test_witness_is_tight_random;
      Alcotest.test_case "witness: empty" `Quick test_witness_empty;
    ]
