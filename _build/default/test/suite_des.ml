(* The discrete-event simulator: delivery, FIFO per channel, determinism,
   and quiescence under handler-driven message chains. *)

let test_delivers_all () =
  let des = Des.create ~rng:(Rng.create 1) () in
  let got = ref [] in
  for i = 1 to 5 do
    Des.send des ~src:0 ~dst:1 i
  done;
  Alcotest.(check int) "pending before run" 5 (Des.pending des);
  Des.run_until_quiescent des ~handler:(fun ~time:_ ~src:_ ~dst:_ m ->
      got := m :: !got);
  Alcotest.(check int) "all delivered" 5 (List.length !got);
  Alcotest.(check int) "counter" 5 (Des.messages_delivered des);
  Alcotest.(check int) "nothing pending" 0 (Des.pending des)

let test_fifo_per_channel () =
  let des = Des.create ~rng:(Rng.create 2) () in
  let got = ref [] in
  for i = 1 to 50 do
    Des.send des ~src:0 ~dst:1 i
  done;
  Des.run_until_quiescent des ~handler:(fun ~time:_ ~src:_ ~dst:_ m ->
      got := m :: !got);
  Alcotest.(check (list int)) "in-order delivery"
    (List.init 50 (fun i -> i + 1))
    (List.rev !got)

let test_fifo_independent_channels () =
  (* Interleave two channels; each must stay internally ordered. *)
  let des = Des.create ~rng:(Rng.create 3) () in
  let per_channel = Hashtbl.create 4 in
  for i = 1 to 30 do
    Des.send des ~src:0 ~dst:1 i;
    Des.send des ~src:2 ~dst:1 (100 + i)
  done;
  Des.run_until_quiescent des ~handler:(fun ~time:_ ~src ~dst:_ m ->
      let old = Option.value ~default:[] (Hashtbl.find_opt per_channel src) in
      Hashtbl.replace per_channel src (m :: old));
  let channel src = List.rev (Option.value ~default:[] (Hashtbl.find_opt per_channel src)) in
  Alcotest.(check (list int)) "channel 0" (List.init 30 (fun i -> i + 1)) (channel 0);
  Alcotest.(check (list int)) "channel 2" (List.init 30 (fun i -> 101 + i)) (channel 2)

let test_time_monotone () =
  let des = Des.create ~rng:(Rng.create 4) () in
  let last = ref neg_infinity in
  for i = 1 to 40 do
    Des.send des ~src:(i mod 3) ~dst:((i + 1) mod 3) i
  done;
  Des.run_until_quiescent des ~handler:(fun ~time ~src:_ ~dst:_ _ ->
      Alcotest.(check bool) "time never goes backwards" true (time >= !last);
      last := time)

let test_handler_chain_extends_run () =
  (* A relay: message k < 9 triggers a send of k+1; quiescence must reach
     the end of the chain. *)
  let des = Des.create ~rng:(Rng.create 5) () in
  let hops = ref 0 in
  Des.send des ~src:0 ~dst:1 0;
  Des.run_until_quiescent des ~handler:(fun ~time:_ ~src:_ ~dst m ->
      incr hops;
      if m < 9 then Des.send des ~src:dst ~dst:(dst + 1) (m + 1));
  Alcotest.(check int) "ten hops" 10 !hops

let test_send_after_ordering () =
  let des = Des.create ~rng:(Rng.create 6) () in
  let got = ref [] in
  Des.send_after des ~delay:100.0 ~src:0 ~dst:1 `Late;
  Des.send_after des ~delay:0.0 ~src:2 ~dst:1 `Early;
  Des.run_until_quiescent des ~handler:(fun ~time:_ ~src:_ ~dst:_ m ->
      got := m :: !got);
  Alcotest.(check bool) "delayed message arrives second" true
    (List.rev !got = [ `Early; `Late ])

let test_determinism () =
  let trace seed =
    let des = Des.create ~rng:(Rng.create seed) () in
    let out = ref [] in
    for i = 1 to 20 do
      Des.send des ~src:(i mod 4) ~dst:((i * 7) mod 4) i
    done;
    Des.run_until_quiescent des ~handler:(fun ~time ~src ~dst m ->
        out := (time, src, dst, m) :: !out);
    !out
  in
  Alcotest.(check bool) "identical seeded traces" true (trace 42 = trace 42);
  Alcotest.(check bool) "different seeds may reorder" true
    (List.length (trace 1) = List.length (trace 2))

let suite =
  [
    Alcotest.test_case "delivers all" `Quick test_delivers_all;
    Alcotest.test_case "fifo per channel" `Quick test_fifo_per_channel;
    Alcotest.test_case "fifo independent channels" `Quick test_fifo_independent_channels;
    Alcotest.test_case "time monotone" `Quick test_time_monotone;
    Alcotest.test_case "handler chain extends run" `Quick test_handler_chain_extends_run;
    Alcotest.test_case "send_after ordering" `Quick test_send_after_ordering;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]

(* --- appended: configuration edges --- *)

let test_bad_delay_bounds_rejected () =
  Alcotest.check_raises "max < min" (Invalid_argument "Des.create: bad delay bounds")
    (fun () -> ignore (Des.create ~min_delay:2.0 ~max_delay:1.0 ~rng:(Rng.create 0) ()));
  Alcotest.check_raises "negative min" (Invalid_argument "Des.create: bad delay bounds")
    (fun () -> ignore (Des.create ~min_delay:(-0.1) ~max_delay:1.0 ~rng:(Rng.create 0) ()))

let test_negative_delay_rejected () =
  let des = Des.create ~rng:(Rng.create 1) () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Des.send_after: negative delay") (fun () ->
      Des.send_after des ~delay:(-1.0) ~src:0 ~dst:1 ())

let test_self_messages () =
  let des = Des.create ~rng:(Rng.create 2) () in
  let got = ref 0 in
  Des.send des ~src:7 ~dst:7 ();
  Des.run_until_quiescent des ~handler:(fun ~time:_ ~src ~dst _ ->
      Alcotest.(check int) "src" 7 src;
      Alcotest.(check int) "dst" 7 dst;
      incr got);
  Alcotest.(check int) "delivered" 1 !got

let test_clock_advances_with_delays () =
  let des = Des.create ~min_delay:1.0 ~max_delay:1.0 ~rng:(Rng.create 3) () in
  Des.send_after des ~delay:10.0 ~src:0 ~dst:1 ();
  Des.run_until_quiescent des ~handler:(fun ~time:_ ~src:_ ~dst:_ _ -> ());
  Alcotest.(check bool) "clock past the delay" true (Des.now des >= 11.0)

let suite =
  suite
  @ [
      Alcotest.test_case "bad delay bounds" `Quick test_bad_delay_bounds_rejected;
      Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
      Alcotest.test_case "self messages" `Quick test_self_messages;
      Alcotest.test_case "clock advances" `Quick test_clock_advances_with_delays;
    ]
