(* ω_T: bracket arithmetic, closed forms, and the maximizations of
   Theorem 1.4.1 / Corollaries 2.2.6–2.2.7. *)

let point2 x y = [| x; y |]

let test_solve_zero () =
  Alcotest.(check (float 0.0)) "zero demand" 0.0
    (Omega.solve ~neighborhood_size:(fun _ -> 1) ~total:0)

let test_single_point_small_demands () =
  (* Single point in the plane: |N_0| = 1, |N_1| = 5, |N_2| = 13. *)
  Alcotest.(check (float 1e-12)) "d=1 -> ω=1" 1.0
    (Omega.of_points [ point2 0 0 ] ~total:1);
  Alcotest.(check (float 1e-12)) "d=3 -> ω=1" 1.0
    (Omega.of_points [ point2 0 0 ] ~total:3);
  (* d=10: bracket [2,3) with |N_2| = 13 gives max(2, 10/13) = 2. *)
  Alcotest.(check (float 1e-12)) "d=10 -> ω=2" 2.0
    (Omega.of_points [ point2 0 0 ] ~total:10);
  (* d=7: bracket [1,2): 7/5 = 1.4. *)
  Alcotest.(check (float 1e-12)) "d=7 -> ω=1.4" 1.4
    (Omega.of_points [ point2 0 0 ] ~total:7)

let test_of_cube_matches_of_points () =
  for side = 1 to 3 do
    for total = 1 to 40 do
      let cube = Box.cube_at_origin ~dim:2 ~side in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "side=%d total=%d" side total)
        (Omega.of_points (Box.points cube) ~total)
        (Omega.of_cube ~dim:2 ~side ~total)
    done
  done

let test_solve_defining_inequality () =
  (* The returned ω satisfies ω·|N_⌊ω⌋| >= total, and nothing visibly
     smaller does. *)
  let check points total =
    let w = Omega.of_points points ~total in
    let nsize r = Ball.neighborhood_size points ~radius:r in
    let value v = v *. float_of_int (nsize (int_of_float (Float.floor v))) in
    Alcotest.(check bool) "feasible at omega" true
      (value w >= float_of_int total -. 1e-6);
    let slightly_less = w -. 1e-6 in
    if slightly_less > 0.0 then
      Alcotest.(check bool) "infimum" true (value slightly_less < float_of_int total)
  in
  check [ point2 0 0 ] 17;
  check [ point2 0 0; point2 1 0 ] 23;
  check (Box.points (Box.cube_at_origin ~dim:2 ~side:3)) 100

let test_monotone_in_total () =
  let points = Box.points (Box.cube_at_origin ~dim:2 ~side:2) in
  let prev = ref 0.0 in
  for total = 1 to 60 do
    let w = Omega.of_points points ~total in
    Alcotest.(check bool) "non-decreasing in demand" true (w >= !prev);
    prev := w
  done

let random_demand rng ~support ~max_d =
  let pts = ref [] in
  for _ = 1 to support do
    pts := (point2 (Rng.int rng 5) (Rng.int rng 5), 1 + Rng.int rng max_d) :: !pts
  done;
  Demand_map.of_alist 2 !pts

let test_subsets_dominate_cubes () =
  (* A cube has at least the neighborhood of its demand-carrying subset, so
     ω over subsets of the support dominates ω over cubes. *)
  let rng = Rng.create 123 in
  for _ = 1 to 30 do
    let dm = random_demand rng ~support:5 ~max_d:8 in
    let cubes = Omega.max_over_cubes dm in
    let subsets = Omega.max_over_subsets dm in
    Alcotest.(check bool)
      (Printf.sprintf "subsets (%g) >= cubes (%g)" subsets cubes)
      true
      (subsets >= cubes -. 1e-9)
  done

let test_cube_scan_finds_hot_square () =
  (* Demand 8 on each point of a 2x2 square; the 2x2 cube is the hot set. *)
  let dm =
    Demand_map.of_alist 2
      [ (point2 0 0, 8); (point2 0 1, 8); (point2 1 0, 8); (point2 1 1, 8) ]
  in
  let expected = Omega.of_cube ~dim:2 ~side:2 ~total:32 in
  Alcotest.(check (float 1e-12)) "hot square found" expected (Omega.max_over_cubes dm)

let test_cube_fixpoint_bounds () =
  let rng = Rng.create 321 in
  for _ = 1 to 20 do
    let dm = random_demand rng ~support:5 ~max_d:10 in
    let wc, side = Omega.cube_fixpoint_with_side dm in
    Alcotest.(check bool) "positive" true (wc > 0.0);
    Alcotest.(check bool) "side brackets ωc" true
      (float_of_int (side - 1) <= wc +. 1e-9 && wc <= float_of_int side +. 1e-9);
    (* ωc is a Woff lower bound, so it must not exceed the subset max by
       more than the discretization slack. *)
    let star = Omega.max_over_subsets dm in
    Alcotest.(check bool)
      (Printf.sprintf "ωc (%g) <= ω* (%g) + 1" wc star)
      true (wc <= star +. 1.0)
  done

let test_cube_fixpoint_empty () =
  Alcotest.(check (float 0.0)) "empty" 0.0 (Omega.cube_fixpoint (Demand_map.empty 2))

let test_example_line_w2_closed_form () =
  (* W(2W+1) = d has W = (-1 + sqrt(1+8d))/4; d = 10 gives exactly 2. *)
  Alcotest.(check (float 1e-9)) "d=10" 2.0 (Omega.example_line_w2 ~d:10);
  for d = 1 to 50 do
    let w = Omega.example_line_w2 ~d in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "plugs back d=%d" d)
      (float_of_int d)
      (w *. ((2.0 *. w) +. 1.0))
  done

let test_example_point_w3_plugs_back () =
  for d = 1 to 50 do
    let w = Omega.example_point_w3 ~d in
    Alcotest.(check (float 1e-5))
      (Printf.sprintf "plugs back d=%d" d)
      (float_of_int d)
      (w *. (((2.0 *. w) +. 1.0) ** 2.0))
  done

let test_example_square_w1_plugs_back () =
  List.iter
    (fun (a, d) ->
      let w = Omega.example_square_w1 ~a ~d in
      let fa = float_of_int a and fd = float_of_int d in
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "plugs back a=%d d=%d" a d)
        (fd *. fa *. fa)
        (w *. (((2.0 *. w) +. fa) ** 2.0)))
    [ (1, 5); (4, 10); (16, 100); (64, 7) ]

let test_example_square_w1_approaches_d () =
  (* §2.1.1: as a grows, W1 -> d. *)
  let d = 9 in
  let w_small = Omega.example_square_w1 ~a:2 ~d in
  let w_large = Omega.example_square_w1 ~a:4096 ~d in
  Alcotest.(check bool) "increasing toward d" true (w_small < w_large);
  Alcotest.(check bool) "close to d for huge squares" true
    (w_large > 0.9 *. float_of_int d && w_large < float_of_int d)

let prop_omega_scale_invariance_line =
  (* On a line of length m with demand d per point, ω_T depends on d and m
     through the equation only; doubling d must increase ω. *)
  QCheck.Test.make ~name:"ω grows when demand doubles" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 20))
    (fun (len, d) ->
      let pts = List.init len (fun i -> point2 i 0) in
      Omega.of_points pts ~total:(len * d) <= Omega.of_points pts ~total:(2 * len * d))

let suite =
  [
    Alcotest.test_case "solve zero" `Quick test_solve_zero;
    Alcotest.test_case "single point demands" `Quick test_single_point_small_demands;
    Alcotest.test_case "cube closed form = BFS" `Quick test_of_cube_matches_of_points;
    Alcotest.test_case "defining inequality" `Quick test_solve_defining_inequality;
    Alcotest.test_case "monotone in total" `Quick test_monotone_in_total;
    Alcotest.test_case "subsets dominate cubes" `Quick test_subsets_dominate_cubes;
    Alcotest.test_case "cube scan finds hot square" `Quick test_cube_scan_finds_hot_square;
    Alcotest.test_case "cube fixpoint bounds" `Quick test_cube_fixpoint_bounds;
    Alcotest.test_case "cube fixpoint empty" `Quick test_cube_fixpoint_empty;
    Alcotest.test_case "W2 closed form" `Quick test_example_line_w2_closed_form;
    Alcotest.test_case "W3 plugs back" `Quick test_example_point_w3_plugs_back;
    Alcotest.test_case "W1 plugs back" `Quick test_example_square_w1_plugs_back;
    Alcotest.test_case "W1 -> d as a grows" `Quick test_example_square_w1_approaches_d;
    QCheck_alcotest.to_alcotest prop_omega_scale_invariance_line;
  ]
