(* Algorithm 1: special cases, the approximation sandwich, and the
   linear-time operation count. *)

let point2 x y = [| x; y |]

let test_rejects_bad_n () =
  Alcotest.check_raises "n not a power of two"
    (Invalid_argument "Alg1.run: n must be a power of two") (fun () ->
      ignore (Alg1.run ~dim:2 ~n:3 (Demand_map.empty 2)))

let test_rejects_outside_support () =
  let dm = Demand_map.of_alist 2 [ (point2 10 0, 1) ] in
  Alcotest.check_raises "support outside"
    (Invalid_argument "Alg1.run: support outside the grid") (fun () ->
      ignore (Alg1.run ~dim:2 ~n:4 dm))

let test_zero_demand () =
  let r = Alg1.run ~dim:2 ~n:8 (Demand_map.empty 2) in
  Alcotest.(check (float 0.0)) "zero" 0.0 r.Alg1.value

let test_d_le_one_returns_d () =
  (* Property 2.3.2: when every point has demand <= 1, Woff = D. *)
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 1); (point2 3 2, 1) ] in
  let r = Alg1.run ~dim:2 ~n:4 dm in
  Alcotest.(check (float 0.0)) "returns D" 1.0 r.Alg1.value;
  Alcotest.(check bool) "special-case exit" true (r.Alg1.cube_side = None)

let test_dense_grid_shortcut () =
  (* Property 2.3.3: n <= average demand. *)
  let n = 4 in
  let dm =
    Demand_map.of_alist 2
      (List.concat_map
         (fun x -> List.init n (fun y -> (point2 x y, 10)))
         (List.init n (fun x -> x)))
  in
  let r = Alg1.run ~dim:2 ~n dm in
  (* D = 10, Dhat = 10 >= n = 4: estimate = min(D, 2*Dhat + 2n) = 10. *)
  Alcotest.(check (float 1e-9)) "min(D, 2Dhat+ln)" 10.0 r.Alg1.value;
  Alcotest.(check bool) "special-case exit" true (r.Alg1.cube_side = None)

let test_point_demand_scale () =
  (* A single hot point of demand 1000 in a 64-grid: the accepted scale w
     must satisfy 1000 <= w (3w)^2, i.e. w >= ~5 -> first power of two is 8;
     also scale 4 fails (4*144 = 576 < 1000).  Estimate = 20w = 160. *)
  let dm = Demand_map.of_alist 2 [ (point2 10 10, 1000) ] in
  let r = Alg1.run ~dim:2 ~n:64 dm in
  Alcotest.(check bool) "main-branch exit" true (r.Alg1.cube_side <> None);
  (match r.Alg1.cube_side with
  | Some w ->
      Alcotest.(check bool)
        (Printf.sprintf "block budget holds at w=%d" w)
        true
        (1000 <= w * (3 * w) * (3 * w))
  | None -> ());
  Alcotest.(check (float 1e-9)) "estimate = 20w" 160.0 r.Alg1.value

let approx_sandwich dm ~n =
  let r = Alg1.run ~dim:2 ~n dm in
  let star = Oracle.omega_star dm in
  if Demand_map.total dm > 0 then begin
    Alcotest.(check bool)
      (Printf.sprintf "upper-bounds ω* (est=%g, ω*=%g)" r.Alg1.value star)
      true
      (r.Alg1.value >= star -. 1e-4);
    Alcotest.(check bool)
      (Printf.sprintf "within 2(2·3^l+l)·ω* (est=%g, ω*=%g)" r.Alg1.value star)
      true
      (r.Alg1.value <= (Alg1.approximation_factor 2 *. star) +. 1e-4)
  end

let test_sandwich_random_instances () =
  let rng = Rng.create 55 in
  for _ = 1 to 12 do
    let support = 1 + Rng.int rng 6 in
    let pts =
      List.init support (fun _ ->
          (point2 (Rng.int rng 8) (Rng.int rng 8), 1 + Rng.int rng 30))
    in
    approx_sandwich (Demand_map.of_alist 2 pts) ~n:8
  done

let test_sandwich_structured_instances () =
  approx_sandwich
    (Workload.demand (Workload.square ~side:4 ~per_point:12 ()))
    ~n:16;
  approx_sandwich (Workload.demand (Workload.line ~len:8 ~per_point:20)) ~n:16;
  approx_sandwich (Workload.demand (Workload.point ~total:500 ())) ~n:16

let test_linear_ops_scaling () =
  (* cell_ops must grow linearly with the number of grid cells n^2. *)
  let ops_at n =
    let dm = Demand_map.of_alist 2 [ (point2 0 0, 50) ] in
    float_of_int (Alg1.run ~dim:2 ~n dm).Alg1.cell_ops
  in
  let pts = [| 16.; 32.; 64.; 128. |] in
  let series = Array.map (fun n -> (n *. n, ops_at (int_of_float n))) pts in
  let slope = Stats.loglog_slope series in
  Alcotest.(check bool)
    (Printf.sprintf "ops ~ cells^1 (exponent %.3f)" slope)
    true
    (slope > 0.85 && slope < 1.15)

let test_dim1 () =
  let dm = Demand_map.of_alist 1 [ ([| 3 |], 40) ] in
  let r = Alg1.run ~dim:1 ~n:16 dm in
  let star = Oracle.omega_star dm in
  Alcotest.(check bool) "1d sandwich" true
    (r.Alg1.value >= star -. 1e-4
    && r.Alg1.value <= (Alg1.approximation_factor 1 *. star) +. 1e-4)

let suite =
  [
    Alcotest.test_case "rejects bad n" `Quick test_rejects_bad_n;
    Alcotest.test_case "rejects outside support" `Quick test_rejects_outside_support;
    Alcotest.test_case "zero demand" `Quick test_zero_demand;
    Alcotest.test_case "D<=1 returns D" `Quick test_d_le_one_returns_d;
    Alcotest.test_case "dense-grid shortcut" `Quick test_dense_grid_shortcut;
    Alcotest.test_case "hot point scale" `Quick test_point_demand_scale;
    Alcotest.test_case "sandwich on random instances" `Quick test_sandwich_random_instances;
    Alcotest.test_case "sandwich on structured instances" `Quick test_sandwich_structured_instances;
    Alcotest.test_case "linear operation count" `Quick test_linear_ops_scaling;
    Alcotest.test_case "one-dimensional run" `Quick test_dim1;
  ]

(* --- appended: a 3-D run of the generic implementation --- *)

let test_dim3_sandwich () =
  let dm = Demand_map.of_alist 3 [ ([| 1; 1; 1 |], 300) ] in
  let r = Alg1.run ~dim:3 ~n:8 dm in
  let star = Oracle.omega_star dm in
  Alcotest.(check bool)
    (Printf.sprintf "3-D sandwich (est=%g, ω*=%g)" r.Alg1.value star)
    true
    (r.Alg1.value >= star -. 1e-4
    && r.Alg1.value <= (Alg1.approximation_factor 3 *. star) +. 1e-4)

let suite = suite @ [ Alcotest.test_case "3-D run" `Quick test_dim3_sandwich ]
