(* The constructive offline plan: full service, cube confinement, energy
   bounds, and the Theorem 1.4.1 sandwich against the LP oracle. *)

let point2 x y = [| x; y |]

let check_valid dm =
  let plan = Planner.plan dm in
  (match Planner.validate plan dm with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invalid plan: " ^ msg));
  plan

let test_empty_demand () =
  let plan = check_valid (Demand_map.empty 2) in
  Alcotest.(check int) "no energy needed" 0 (Planner.max_energy plan)

let test_single_point_small () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 3) ] in
  let plan = check_valid dm in
  (* A lone demand of 3 fits the home vehicle's budget: no relocation. *)
  Alcotest.(check int) "energy 3" 3 (Planner.max_energy plan);
  List.iter
    (fun a -> Alcotest.(check bool) "no relocation" true (a.Planner.target = None))
    plan.Planner.assignments

let test_hot_point_uses_helpers () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 400) ] in
  let plan = check_valid dm in
  let helpers =
    List.filter (fun a -> a.Planner.target <> None) plan.Planner.assignments
  in
  Alcotest.(check bool) "some vehicles relocate" true (List.length helpers > 0)

let test_structured_workloads_valid () =
  List.iter
    (fun w -> ignore (check_valid (Workload.demand w)))
    [
      Workload.square ~side:5 ~per_point:7 ();
      Workload.line ~len:12 ~per_point:9;
      Workload.point ~total:1000 ();
      Workload.square ~side:2 ~per_point:100 ();
    ]

let test_random_workloads_valid () =
  let rng = Rng.create 909 in
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 11 11) in
  for _ = 1 to 15 do
    let w = Workload.uniform ~rng ~box ~jobs:(10 + Rng.int rng 200) in
    ignore (check_valid (Workload.demand w))
  done

let test_zipf_workloads_valid () =
  let rng = Rng.create 910 in
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 15 15) in
  for _ = 1 to 10 do
    let w = Workload.zipf_sites ~rng ~box ~sites:12 ~jobs:300 ~exponent:1.4 in
    ignore (check_valid (Workload.demand w))
  done

let test_energy_within_construction_bound () =
  let rng = Rng.create 911 in
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 9 9) in
  for _ = 1 to 10 do
    let w = Workload.clustered ~rng ~box ~clusters:3 ~jobs_per_cluster:80 ~spread:1 in
    let dm = Workload.demand w in
    let plan = check_valid dm in
    Alcotest.(check bool) "max energy <= 2B + l(s-1)" true
      (float_of_int (Planner.max_energy plan) <= Planner.energy_bound plan +. 1e-9)
  done

let test_theorem_sandwich () =
  (* ω* <= measured Woff upper bound <= (2·3^l+l)·ωc + 2. *)
  let rng = Rng.create 912 in
  for _ = 1 to 8 do
    let pts =
      List.init
        (1 + Rng.int rng 5)
        (fun _ -> (point2 (Rng.int rng 6) (Rng.int rng 6), 1 + Rng.int rng 40))
    in
    let dm = Demand_map.of_alist 2 pts in
    let plan = check_valid dm in
    let measured = float_of_int (Planner.max_energy plan) in
    let star = Oracle.omega_star dm in
    Alcotest.(check bool)
      (Printf.sprintf "lower: ω* (%g) <= measured (%g)" star measured)
      true
      (star <= measured +. 1e-4);
    let cap = Planner.theorem_bound ~dim:2 plan.Planner.omega +. 2.0 in
    Alcotest.(check bool)
      (Printf.sprintf "upper: measured (%g) <= (2·3^l+l)ωc+2 (%g)" measured cap)
      true (measured <= cap +. 1e-9)
  done

let test_1d_plan () =
  let dm = Demand_map.of_alist 1 [ ([| 0 |], 60); ([| 5 |], 3) ] in
  let plan = check_valid dm in
  Alcotest.(check bool) "energy positive" true (Planner.max_energy plan > 0)

let test_3d_plan () =
  let dm = Demand_map.of_alist 3 [ ([| 0; 0; 0 |], 100); ([| 1; 2; 0 |], 5) ] in
  ignore (check_valid dm)

let prop_plan_valid_random =
  QCheck.Test.make ~name:"plan validates on random demand maps" ~count:40
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (triple (int_range 0 7) (int_range 0 7) (int_range 1 60)))
    (fun triples ->
      let dm =
        Demand_map.of_alist 2 (List.map (fun (x, y, d) -> (point2 x y, d)) triples)
      in
      let plan = Planner.plan dm in
      match Planner.validate plan dm with Ok () -> true | Error _ -> false)

let suite =
  [
    Alcotest.test_case "empty demand" `Quick test_empty_demand;
    Alcotest.test_case "single small point" `Quick test_single_point_small;
    Alcotest.test_case "hot point uses helpers" `Quick test_hot_point_uses_helpers;
    Alcotest.test_case "structured workloads valid" `Quick test_structured_workloads_valid;
    Alcotest.test_case "random workloads valid" `Quick test_random_workloads_valid;
    Alcotest.test_case "zipf workloads valid" `Quick test_zipf_workloads_valid;
    Alcotest.test_case "energy within construction bound" `Quick test_energy_within_construction_bound;
    Alcotest.test_case "theorem sandwich" `Quick test_theorem_sandwich;
    Alcotest.test_case "1d plan" `Quick test_1d_plan;
    Alcotest.test_case "3d plan" `Quick test_3d_plan;
    QCheck_alcotest.to_alcotest prop_plan_valid_random;
  ]
