(* Smart Dust (§1.2 of the thesis): a field of tiny mobile sensors
   monitors a building site.  Detection events arrive in bursts; sensors
   burn battery both to move and to process events.  Some sensors fail
   outright mid-mission — the network must shift and cover, which is
   exactly the robustness story the thesis tells about Pister's
   "Smart Dust with Legs".

   Run with: dune exec examples/smart_dust.exe *)

let () =
  let rng = Rng.create 2008 in
  let site = Box.make ~lo:[| 0; 0 |] ~hi:[| 11; 11 |] in
  (* Three simultaneous phenomena: a slow ambient drizzle of readings, a
     vibration hot spot, and a skewed set of popular corridors. *)
  let workload =
    Workload.mixture ~rng ~name:"smart-dust-site"
      [
        Workload.uniform ~rng ~box:site ~jobs:120;
        Workload.translate (Workload.point ~total:150 ()) [| 3; 8 |];
        Workload.zipf_sites ~rng ~box:site ~sites:8 ~jobs:130 ~exponent:1.5;
      ]
  in
  let demand = Workload.demand workload in
  Printf.printf "site: %d events over %d positions, hottest position %d\n"
    (Demand_map.total demand)
    (Demand_map.support_size demand)
    (Demand_map.max_demand demand);

  let base = Online.recommended workload in
  Printf.printf "battery sizing: cube side %d, capacity %.1f per sensor\n"
    base.Online.side base.Online.capacity;

  (* Mission 1: healthy network. *)
  let healthy = Online.run base workload in
  Printf.printf "healthy network: served %d/%d, %d replacements, %d messages\n"
    healthy.Online.served
    (Array.length workload.Workload.jobs)
    healthy.Online.replacements healthy.Online.messages;
  assert (Online.succeeded healthy);

  (* Mission 2: hardware trouble.  A handful of sensors die mid-mission
     and a few more are too buggy to announce their own exhaustion
     (§3.2.5 scenarios 2 and 3).  The monitoring ring must absorb both. *)
  let troubled =
    {
      base with
      Online.capacity = base.Online.capacity +. 10.0;
      faults =
        {
          Online.no_faults with
          Online.silent_initiators = [ 1; 2; 3; 4; 5 ];
          deaths = [ (50, 10); (120, 11); (200, 40) ];
          longevity = [ (60, 0.7) ];
        };
    }
  in
  let o = Online.run troubled workload in
  Printf.printf
    "with 3 deaths + 5 silent sensors: served %d/%d, %d replacements, %d \
     diffusing computations\n"
    o.Online.served
    (Array.length workload.Workload.jobs)
    o.Online.replacements o.Online.computations;
  assert (Online.succeeded o);

  (* How tight is the battery budget?  Compare against the offline lower
     bound: the fleet pays only a constant factor for being online and
     decentralized (Theorem 1.4.2). *)
  let omega_star = Oracle.omega_star demand in
  Printf.printf
    "offline LP lower bound omega* = %.2f; online battery = %.1f (factor \
     %.1f)\n"
    omega_star base.Online.capacity
    (base.Online.capacity /. omega_star);
  print_endline "smart_dust: OK"
