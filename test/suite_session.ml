(* Streaming oracle sessions: incremental ω* must be bit-identical to
   from-scratch recomputation after every insert/delete event, and a
   single-job delta must cost a bounded number of max-flow probes on the
   persistent arena. *)

let point2 x y = [| x; y |]
let m_fc = Metrics.counter "transport.feasibility_checks"
let m_probes = Metrics.counter "paramflow.probes"

let check_bit_identical msg s =
  let inc = Oracle.Session.omega_star s in
  let scratch = Oracle.omega_star (Oracle.Session.demand s) in
  if not (Float.equal inc scratch) then
    Alcotest.failf "%s: incremental %.17g <> from-scratch %.17g" msg inc scratch;
  inc

(* Hand-checkable single-site and two-site values: jobs at the origin have
   |N_0| = 1 and |N_1| = 5, so ω* = max(1, d/5) while it stays below 2. *)
let test_golden_trace () =
  let s = Oracle.Session.create (Demand_map.empty 2) in
  Alcotest.(check (float 1e-12)) "empty" 0.0 (Oracle.Session.omega_star s);
  let o = point2 0 0 in
  let expect msg v =
    Alcotest.(check (float 1e-9)) msg v (check_bit_identical msg s)
  in
  Oracle.Session.add_job s o;
  expect "1 job" 1.0;
  Oracle.Session.add_job s o;
  expect "2 jobs" 1.0;
  for _ = 3 to 6 do
    Oracle.Session.add_job s o
  done;
  expect "6 jobs" 1.2;
  Oracle.Session.remove_job s o;
  expect "back to 5" 1.0;
  Oracle.Session.add_job s (point2 1 0);
  (* J = {origin}: 5/5; J = both: 6/8 — the singleton stays binding *)
  expect "second site" 1.0;
  for _ = 1 to 5 do
    Oracle.Session.remove_job s o
  done;
  Alcotest.(check int) "origin drained" 0
    (Demand_map.value (Oracle.Session.demand s) o);
  expect "one distant job left" 1.0;
  Oracle.Session.remove_job s (point2 1 0);
  expect "empty again" 0.0;
  (* revival of a retired site must keep matching from-scratch *)
  Oracle.Session.add_job s o;
  expect "revived origin" 1.0

let test_remove_absent_raises () =
  let s = Oracle.Session.create (Demand_map.empty 2) in
  Oracle.Session.add_job s (point2 0 0);
  Alcotest.check_raises "no job there"
    (Invalid_argument "Demand_map.remove: demand would become negative")
    (fun () -> Oracle.Session.remove_job s (point2 5 5));
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Oracle.Session.add_job: dimension mismatch") (fun () ->
      Oracle.Session.add_job s [| 1; 2; 3 |])

(* After the arena is warm, one insert-then-query delta costs a bounded
   number of probes: each live bracket re-solves warm.  The exact counts
   are gated in bench (stream/churn); here we pin a generous constant. *)
let test_delta_probe_bound () =
  let s = Oracle.Session.create (Demand_map.empty 2) in
  for _ = 1 to 4 do
    Oracle.Session.add_job s (point2 0 0)
  done;
  ignore (Oracle.Session.omega_star s);
  let fc0 = Metrics.count m_fc and pr0 = Metrics.count m_probes in
  Oracle.Session.add_job s (point2 0 0);
  let v = Oracle.Session.omega_star s in
  let brackets = int_of_float (Float.floor v) + 1 in
  let fc = Metrics.count m_fc - fc0 and pr = Metrics.count m_probes - pr0 in
  Alcotest.(check int) "one warm solve per bracket" brackets fc;
  Alcotest.(check bool)
    (Printf.sprintf "a handful of probes (%d for %d brackets)" pr brackets)
    true
    (pr <= 8 * brackets)

let run_trace ~seed ~events ~side ~witness_every =
  let rng = Rng.create seed in
  let s = Oracle.Session.create (Demand_map.empty 2) in
  let live = ref [] and n_live = ref 0 in
  let ok = ref true in
  for e = 1 to events do
    if !n_live > 0 && Rng.int rng 2 = 0 then begin
      let k = Rng.int rng !n_live in
      let p = List.nth !live k in
      Oracle.Session.remove_job s p;
      live := List.filteri (fun i _ -> i <> k) !live;
      decr n_live
    end
    else begin
      let p = point2 (Rng.int rng side) (Rng.int rng side) in
      Oracle.Session.add_job s p;
      live := p :: !live;
      incr n_live
    end;
    let fc0 = Metrics.count m_fc in
    let inc = Oracle.Session.omega_star s in
    let fc = Metrics.count m_fc - fc0 in
    let scratch = Oracle.omega_star (Oracle.Session.demand s) in
    if not (Float.equal inc scratch) then begin
      ok := false;
      QCheck.Test.fail_reportf
        "event %d (seed %d): incremental %.17g <> from-scratch %.17g" e seed
        inc scratch
    end;
    (* one unsolved feasibility check per visited bracket, nothing more *)
    let brackets = int_of_float (Float.floor inc) + 1 in
    if !n_live > 0 && fc > brackets then begin
      ok := false;
      QCheck.Test.fail_reportf
        "event %d (seed %d): %d feasibility checks for %d brackets" e seed fc
        brackets
    end;
    if e mod witness_every = 0 && !n_live > 0 then begin
      match Oracle.Session.witness s with
      | None -> () (* 1/scale resolution too coarse: allowed *)
      | Some (pts, w) ->
          let dm = Oracle.Session.demand s in
          List.iter
            (fun p ->
              if Demand_map.value dm p <= 0 then begin
                ok := false;
                QCheck.Test.fail_reportf
                  "event %d (seed %d): witness point outside live support" e
                  seed
              end)
            pts;
          if Float.abs (w -. inc) > 1e-4 then begin
            ok := false;
            QCheck.Test.fail_reportf
              "event %d (seed %d): witness ω_T %.17g far from ω* %.17g" e seed
              w inc
          end
    end
  done;
  !ok

let prop_trace_bit_identical =
  QCheck.Test.make ~name:"random 10^3-event trace: session ≡ from-scratch"
    ~count:3
    QCheck.(int_range 0 9999)
    (fun seed -> run_trace ~seed ~events:1000 ~side:4 ~witness_every:127)

(* A denser board exercises multi-bracket scans and deep removals. *)
let test_dense_trace () =
  Alcotest.(check bool) "dense trace" true
    (run_trace ~seed:42 ~events:400 ~side:2 ~witness_every:61)

let test_session_metrics () =
  let ev = Metrics.counter "oracle.session_events" in
  let q = Metrics.counter "oracle.session_queries" in
  let ev0 = Metrics.count ev and q0 = Metrics.count q in
  let s = Oracle.Session.create (Demand_map.empty 2) in
  Oracle.Session.add_job s (point2 0 0);
  Oracle.Session.add_job s (point2 0 0);
  ignore (Oracle.Session.omega_star s);
  ignore (Oracle.Session.omega_star s);
  (* cached *)
  Oracle.Session.remove_job s (point2 0 0);
  ignore (Oracle.Session.omega_star s);
  Alcotest.(check int) "events counted" 3 (Metrics.count ev - ev0);
  Alcotest.(check int) "queries = dirty recomputes" 2 (Metrics.count q - q0)

let suite =
  [
    Alcotest.test_case "golden trace" `Quick test_golden_trace;
    Alcotest.test_case "remove absent raises" `Quick test_remove_absent_raises;
    Alcotest.test_case "delta probe bound" `Quick test_delta_probe_bound;
    QCheck_alcotest.to_alcotest prop_trace_bit_identical;
    Alcotest.test_case "dense trace" `Slow test_dense_trace;
    Alcotest.test_case "session metrics" `Quick test_session_metrics;
  ]
