(* Cross-module invariant properties (qcheck): the inequalities the thesis
   proves, exercised over randomized instances. *)

let point2 x y = [| x; y |]

let gen_demand =
  QCheck.Gen.(
    map
      (fun triples ->
        Demand_map.of_alist 2
          (List.map (fun (x, y, d) -> (point2 x y, d)) triples))
      (list_size (int_range 1 6)
         (triple (int_range 0 6) (int_range 0 6) (int_range 1 25))))

let arb_demand = QCheck.make ~print:(fun dm -> Format.asprintf "%a" Demand_map.pp dm) gen_demand

let prop_lower_bounds_chain =
  (* ωc <= ω* + slack and ω* <= planner peak: the full Theorem 1.4.1 chain
     on random instances. *)
  QCheck.Test.make ~name:"Thm 1.4.1 chain: ωc ⪅ ω* <= planner peak" ~count:30
    arb_demand
    (fun dm ->
      let star = Oracle.omega_star dm in
      let wc = Omega.cube_fixpoint dm in
      let peak = float_of_int (Planner.max_energy (Planner.plan dm)) in
      wc <= star +. 1.0 && star <= peak +. 1e-6)

let prop_lp_value_monotone_radius =
  QCheck.Test.make ~name:"LP (2.1) value non-increasing in the radius" ~count:20
    arb_demand
    (fun dm ->
      let v0 = Oracle.lp_value ~radius:0 dm in
      let v1 = Oracle.lp_value ~radius:1 dm in
      let v2 = Oracle.lp_value ~radius:2 dm in
      v0 +. 1e-6 >= v1 && v1 +. 1e-6 >= v2)

let prop_alg1_monotone_in_demand =
  QCheck.Test.make ~name:"Algorithm 1 estimate non-decreasing in demand" ~count:30
    arb_demand
    (fun dm ->
      let doubled =
        Demand_map.fold dm ~init:(Demand_map.empty 2) ~f:(fun acc p d ->
            Demand_map.add acc p (2 * d))
      in
      let e1 = (Alg1.run ~dim:2 ~n:8 dm).Alg1.value in
      let e2 = (Alg1.run ~dim:2 ~n:8 doubled).Alg1.value in
      e2 >= e1 -. 1e-9)

let prop_breakdown_dominates_healthy =
  QCheck.Test.make ~name:"longevity <= 1 never lowers the LP requirement"
    ~count:10 arb_demand
    (fun dm ->
      let healthy = Oracle.omega_star dm in
      let rng = Rng.create (Demand_map.total dm) in
      let table = Point.Tbl.create 16 in
      let longevity p =
        match Point.Tbl.find_opt table p with
        | Some v -> v
        | None ->
            let v = 0.3 +. Rng.float rng 0.7 in
            Point.Tbl.replace table p v;
            v
      in
      let degraded = Breakdown.lp_lower_bound ~precision:1e-3 ~longevity dm in
      degraded >= healthy -. 0.05)

let prop_transfer_lower_bound_scales =
  QCheck.Test.make ~name:"transfer lower bound non-decreasing in demand" ~count:20
    arb_demand
    (fun dm ->
      let doubled =
        Demand_map.fold dm ~init:(Demand_map.empty 2) ~f:(fun acc p d ->
            Demand_map.add acc p (2 * d))
      in
      Transfer.lower_bound doubled >= Transfer.lower_bound dm -. 1e-9)

let prop_collector_monotone_in_w =
  QCheck.Test.make ~name:"collector success monotone in capacity" ~count:30
    QCheck.(triple (int_range 2 40) (int_range 0 20) (int_range 0 100))
    (fun (n, d, wq) ->
      let w = float_of_int wq /. 4.0 in
      let demand _ = d in
      let cost = Transfer.Fixed 1.0 in
      let at v = (Transfer.Segment.simulate ~n ~demand ~cost ~w:v).Transfer.Segment.success in
      (* If it succeeds at w, it succeeds at w + 1. *)
      (not (at w)) || at (w +. 1.0))

let prop_exact_point_monotone =
  QCheck.Test.make ~name:"exact point capacity monotone in demand" ~count:50
    QCheck.(pair (int_range 1 500) (int_range 1 500))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Exact.point_capacity ~dim:2 ~demand:lo
      <= Exact.point_capacity ~dim:2 ~demand:hi +. 1e-9)

let prop_online_fleet_survival =
  (* Lemma 3.3.1's accounting: at the theorem capacity at least half the
     fleet can still serve after all jobs. *)
  QCheck.Test.make ~name:"Lemma 3.3.1: at least half the fleet survives" ~count:10
    QCheck.(int_range 50 400)
    (fun total ->
      let w = Workload.point ~total () in
      let o = Online.run (Online.recommended w) w in
      Online.succeeded o
      && 2 * o.Online.vehicles_still_serviceable >= o.Online.vehicles)

let prop_greedy_vs_protocol_both_bounded =
  QCheck.Test.make ~name:"both online strategies stay above ω*" ~count:8
    QCheck.(int_range 50 250)
    (fun total ->
      let w = Workload.point ~total () in
      let dm = Workload.demand w in
      let star = Oracle.omega_star dm in
      let _, side = Omega.cube_fixpoint_with_side dm in
      let ours = Online.min_feasible_capacity ~side w in
      let greedy = Greedy_online.min_feasible_capacity ~pad:side w in
      ours +. 0.5 >= star && greedy +. 0.5 >= star)

let suite =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_lower_bounds_chain;
      prop_lp_value_monotone_radius;
      prop_alg1_monotone_in_demand;
      prop_breakdown_dominates_healthy;
      prop_transfer_lower_bound_scales;
      prop_collector_monotone_in_w;
      prop_exact_point_monotone;
      prop_online_fleet_survival;
      prop_greedy_vs_protocol_both_bounded;
    ]
