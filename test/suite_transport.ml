(* Transportation feasibility and the exact dual identity of Lemma 2.2.2:
   min uniform supply = max_J D(J)/|N(J)|. *)

let simple_instance () =
  (* Two suppliers; supplier 0 reaches both demands, supplier 1 only the
     second.  Demands 3 and 5. *)
  let t = Transport.create ~n_suppliers:2 ~n_demands:2 in
  Transport.set_demand t 0 3;
  Transport.set_demand t 1 5;
  Transport.add_link t ~supplier:0 ~demand:0;
  Transport.add_link t ~supplier:0 ~demand:1;
  Transport.add_link t ~supplier:1 ~demand:1;
  t

let test_max_served () =
  let t = simple_instance () in
  Alcotest.(check int) "unlimited supply serves all" 8
    (Transport.max_served t ~supply:(fun _ -> 100));
  Alcotest.(check int) "tight supply" 6 (Transport.max_served t ~supply:(fun _ -> 3));
  Alcotest.(check int) "no supply" 0 (Transport.max_served t ~supply:(fun _ -> 0))

let test_feasible () =
  let t = simple_instance () in
  Alcotest.(check bool) "feasible at 4" true (Transport.feasible t ~supply:(fun _ -> 4));
  Alcotest.(check bool) "infeasible at 3" false (Transport.feasible t ~supply:(fun _ -> 3))

let test_min_uniform_supply_exact () =
  let t = simple_instance () in
  (* Optimal ω: subset {d0} needs 3/1, {d1} needs 5/2, {d0,d1} needs 8/2 = 4. *)
  match Transport.min_uniform_supply t ~scale:2 with
  | None -> Alcotest.fail "feasible instance"
  | Some v -> Alcotest.(check (float 1e-9)) "ω = 4" 4.0 v

let test_min_uniform_supply_fractional () =
  (* One supplier linked to both demands: ω = (2+3)/1 = 5.
     Two suppliers sharing: build d=1 with 3 suppliers => ω = 1/3. *)
  let t = Transport.create ~n_suppliers:3 ~n_demands:1 in
  Transport.set_demand t 0 1;
  for i = 0 to 2 do
    Transport.add_link t ~supplier:i ~demand:0
  done;
  match Transport.min_uniform_supply t ~scale:3 with
  | None -> Alcotest.fail "feasible instance"
  | Some v -> Alcotest.(check (float 1e-9)) "ω = 1/3" (1.0 /. 3.0) v

let test_min_uniform_supply_none () =
  let t = Transport.create ~n_suppliers:1 ~n_demands:2 in
  Transport.set_demand t 0 1;
  Transport.set_demand t 1 1;
  Transport.add_link t ~supplier:0 ~demand:0;
  Alcotest.(check bool) "unlinked demand" true
    (Transport.min_uniform_supply t ~scale:10 = None)

let test_min_uniform_supply_zero_demand () =
  let t = Transport.create ~n_suppliers:2 ~n_demands:2 in
  match Transport.min_uniform_supply t ~scale:10 with
  | Some v -> Alcotest.(check (float 0.0)) "zero" 0.0 v
  | None -> Alcotest.fail "zero demand is trivially feasible"

let test_dual_value_exhaustive_known () =
  let t = simple_instance () in
  Alcotest.(check (float 1e-9)) "dual = 4" 4.0 (Transport.dual_value_exhaustive t)

let random_instance rng =
  let s = 1 + Rng.int rng 5 and d = 1 + Rng.int rng 5 in
  let t = Transport.create ~n_suppliers:s ~n_demands:d in
  for j = 0 to d - 1 do
    Transport.set_demand t j (Rng.int rng 7)
  done;
  for i = 0 to s - 1 do
    for j = 0 to d - 1 do
      if Rng.bool rng then Transport.add_link t ~supplier:i ~demand:j
    done
  done;
  t

let test_primal_equals_dual_random () =
  (* LP duality (Lemma 2.2.2) checked exhaustively on random tiny
     instances, at scale lcm(1..6) so every dual denominator divides it. *)
  let rng = Rng.create 31337 in
  let scale = 60 in
  let checked = ref 0 in
  while !checked < 100 do
    let t = random_instance rng in
    let dual = Transport.dual_value_exhaustive t in
    if dual <> infinity then begin
      incr checked;
      match Transport.min_uniform_supply t ~scale with
      | None -> Alcotest.fail "dual finite but primal infeasible"
      | Some primal ->
          Alcotest.(check (float 1e-9)) "primal = dual" dual primal
    end
    else
      Alcotest.(check bool) "dual infinite iff primal infeasible" true
        (Transport.min_uniform_supply t ~scale = None)
  done

let test_add_supplier_and_links () =
  let t = Transport.create ~n_suppliers:1 ~n_demands:2 in
  Alcotest.(check int) "initial suppliers" 1 (Transport.n_suppliers t);
  Alcotest.(check int) "first grown index" 1 (Transport.add_supplier t);
  Alcotest.(check int) "second grown index" 2 (Transport.add_supplier t);
  Alcotest.(check int) "grown count" 3 (Transport.n_suppliers t);
  Alcotest.(check int) "no links yet" 0 (Transport.n_links t);
  Transport.add_link t ~supplier:2 ~demand:1;
  Transport.add_link t ~supplier:0 ~demand:0;
  Transport.add_link t ~supplier:1 ~demand:1;
  Alcotest.(check int) "three links" 3 (Transport.n_links t);
  let seen = ref [] in
  Transport.iter_links t (fun ~supplier ~demand ->
      seen := (supplier, demand) :: !seen);
  Alcotest.(check (list (pair int int)))
    "insertion order"
    [ (2, 1); (0, 0); (1, 1) ]
    (List.rev !seen);
  (* Grown suppliers behave like constructor-declared ones. *)
  Transport.set_demand t 0 2;
  Transport.set_demand t 1 4;
  Alcotest.(check int) "served via grown suppliers" 6
    (Transport.max_served t ~supply:(fun _ -> 2))

(* A naive reference for [min_uniform_supply], built from the public API:
   copy the instance with demands multiplied by [scale], then bisect the
   smallest integer uniform supply that is feasible.  This is exactly the
   search the warm-started Newton iteration replaced, so the two must
   agree bit for bit. *)
let reference_min_uniform_supply t ~scale =
  let s = Transport.n_suppliers t and d = Transport.n_demands t in
  let c = Transport.create ~n_suppliers:s ~n_demands:d in
  let linked = Array.make (max d 1) false in
  for j = 0 to d - 1 do
    Transport.set_demand c j (Transport.demand t j * scale)
  done;
  Transport.iter_links t (fun ~supplier ~demand ->
      Transport.add_link c ~supplier ~demand;
      linked.(demand) <- true);
  let unlinked = ref false in
  for j = 0 to d - 1 do
    if Transport.demand t j > 0 && not linked.(j) then unlinked := true
  done;
  if !unlinked then None
  else begin
    let lo = ref 0 and hi = ref (max 1 (Transport.total_demand c)) in
    while not (Transport.feasible c ~supply:(fun _ -> !hi)) do
      hi := !hi * 2
    done;
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Transport.feasible c ~supply:(fun _ -> mid) then hi := mid
      else lo := mid + 1
    done;
    Some (float_of_int !lo /. float_of_int scale)
  end

let prop_newton_matches_reference_bisection =
  QCheck.Test.make
    ~name:"min_uniform_supply = reference bisection (random instances)"
    ~count:150
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let t = random_instance rng in
      let scale = 60 in
      match
        ( Transport.min_uniform_supply t ~scale,
          reference_min_uniform_supply t ~scale )
      with
      | None, None -> true
      | Some a, Some b -> a = b
      | Some _, None | None, Some _ -> false)

let copy_instance t =
  let c =
    Transport.create ~n_suppliers:(Transport.n_suppliers t)
      ~n_demands:(Transport.n_demands t)
  in
  for j = 0 to Transport.n_demands t - 1 do
    Transport.set_demand c j (Transport.demand t j)
  done;
  Transport.iter_links t (fun ~supplier ~demand ->
      Transport.add_link c ~supplier ~demand);
  c

let test_empty_fast_path () =
  (* Zero total demand short-circuits before any arena is built: the
     answer is [Some 0.] and no flow runs. *)
  let runs = Metrics.counter "maxflow.runs" in
  let check_instant t =
    let before = Metrics.count runs in
    (match Transport.min_uniform_supply t ~scale:7 with
    | Some 0.0 -> ()
    | _ -> Alcotest.fail "zero-demand instance must answer Some 0.");
    Alcotest.(check int) "no flow run" before (Metrics.count runs)
  in
  check_instant (Transport.create ~n_suppliers:0 ~n_demands:0);
  let t = Transport.create ~n_suppliers:1 ~n_demands:2 in
  Transport.add_link t ~supplier:0 ~demand:0;
  check_instant t;
  Alcotest.(check (array (triple int int int))) "no breakpoints either" [||]
    (Transport.breakpoints t ~scale:7)

let test_cached_lookup_counters () =
  (* First query at a scale pays one feasibility check; repeats are pure
     breakpoint lookups; changing a demand invalidates the cache. *)
  let fc = Metrics.counter "transport.feasibility_checks" in
  let bl = Metrics.counter "transport.breakpoint_lookups" in
  let t = simple_instance () in
  let fc0 = Metrics.count fc and bl0 = Metrics.count bl in
  let a = Transport.min_uniform_supply t ~scale:2 in
  let b = Transport.min_uniform_supply t ~scale:2 in
  Alcotest.(check (option (float 1e-9))) "first answer" (Some 4.0) a;
  Alcotest.(check (option (float 1e-9))) "cached answer" (Some 4.0) b;
  Alcotest.(check int) "one real solve" 1 (Metrics.count fc - fc0);
  Alcotest.(check int) "one lookup" 1 (Metrics.count bl - bl0);
  Transport.set_demand t 0 4;
  (match Transport.min_uniform_supply t ~scale:2 with
  | Some v -> Alcotest.(check (float 1e-9)) "updated answer" 4.5 v
  | None -> Alcotest.fail "still feasible");
  Alcotest.(check int) "demand change forces a re-solve" 2
    (Metrics.count fc - fc0)

let test_extension_matches_fresh () =
  (* Growing an already-queried instance (the oracle's radius scan) and
     re-querying must match a cold solve on a fresh copy. *)
  let rng = Rng.create 99 in
  let scale = 60 in
  for _ = 1 to 30 do
    let t = random_instance rng in
    ignore (Transport.min_uniform_supply t ~scale);
    let i = Transport.add_supplier t in
    let linked_any = ref false in
    for j = 0 to Transport.n_demands t - 1 do
      if Rng.bool rng then begin
        Transport.add_link t ~supplier:i ~demand:j;
        linked_any := true
      end
    done;
    if not !linked_any && Transport.n_demands t > 0 then
      Transport.add_link t ~supplier:i ~demand:0;
    let warm = Transport.min_uniform_supply t ~scale in
    let cold = Transport.min_uniform_supply (copy_instance t) ~scale in
    Alcotest.(check (option (float 1e-9))) "warm extension = cold solve" cold
      warm
  done

let prop_lookup_matches_reference_at_random_scales =
  (* The cached sweep and its lookup path, against the bisection
     reference, at 50 random scales (not just the lcm the other property
     uses). *)
  QCheck.Test.make
    ~name:"lookup = reference bisection (random scales)" ~count:50
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 97))
    (fun (seed, scale) ->
      let rng = Rng.create seed in
      let t = random_instance rng in
      let a = Transport.min_uniform_supply t ~scale in
      let b = Transport.min_uniform_supply t ~scale in
      let r = reference_min_uniform_supply t ~scale in
      a = r && b = r)

let prop_witness_agrees_across_cores =
  (* [infeasibility_witness] reads the minimal source side of a min cut,
     which is identical for every maximum flow — so both cores must
     return the same demand set, not merely some violating set. *)
  QCheck.Test.make ~name:"infeasibility witness = across flow cores"
    ~count:100
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 3))
    (fun (seed, supply) ->
      let rng = Rng.create seed in
      let t = random_instance rng in
      let wd =
        Transport.infeasibility_witness ~core:Maxflow.Dinic t
          ~supply:(fun _ -> supply)
      in
      let wp =
        Transport.infeasibility_witness ~core:Maxflow.Push_relabel t
          ~supply:(fun _ -> supply)
      in
      wd = wp)

let test_max_served_monotone_in_supply () =
  let rng = Rng.create 4242 in
  for _ = 1 to 50 do
    let t = random_instance rng in
    let low = Transport.max_served t ~supply:(fun _ -> 2) in
    let high = Transport.max_served t ~supply:(fun _ -> 5) in
    Alcotest.(check bool) "monotone" true (low <= high);
    Alcotest.(check bool) "bounded by demand" true (high <= Transport.total_demand t)
  done

let suite =
  [
    Alcotest.test_case "max served" `Quick test_max_served;
    Alcotest.test_case "feasibility" `Quick test_feasible;
    Alcotest.test_case "min uniform supply exact" `Quick test_min_uniform_supply_exact;
    Alcotest.test_case "min uniform supply fractional" `Quick test_min_uniform_supply_fractional;
    Alcotest.test_case "unlinked demand gives None" `Quick test_min_uniform_supply_none;
    Alcotest.test_case "zero demand" `Quick test_min_uniform_supply_zero_demand;
    Alcotest.test_case "dual exhaustive known" `Quick test_dual_value_exhaustive_known;
    Alcotest.test_case "primal = dual (Lemma 2.2.2)" `Quick test_primal_equals_dual_random;
    Alcotest.test_case "served monotone in supply" `Quick test_max_served_monotone_in_supply;
    Alcotest.test_case "add_supplier and link iteration" `Quick
      test_add_supplier_and_links;
    QCheck_alcotest.to_alcotest prop_newton_matches_reference_bisection;
    Alcotest.test_case "zero demand fast path" `Quick test_empty_fast_path;
    Alcotest.test_case "cached lookup counters" `Quick
      test_cached_lookup_counters;
    Alcotest.test_case "warm extension matches fresh" `Quick
      test_extension_matches_fresh;
    QCheck_alcotest.to_alcotest prop_lookup_matches_reference_at_random_scales;
    QCheck_alcotest.to_alcotest prop_witness_agrees_across_cores;
  ]
