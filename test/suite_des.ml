(* The discrete-event simulator: delivery, FIFO per channel, determinism,
   quiescence under handler-driven message chains, and the fault-injection
   layer (drops, dups, delay spikes, partitions, crash/restart, weak
   events, livelock budget, deterministic traces). *)

let drain ?budget ?idle_ok des handler =
  match Des.run_until_quiescent ?budget ?idle_ok des ~handler with
  | Des.Quiescent -> ()
  | Des.Livelock { dispatched; pending } ->
      Alcotest.failf "unexpected livelock: %d dispatched, %d pending"
        dispatched pending

let test_delivers_all () =
  let des = Des.create ~rng:(Rng.create 1) () in
  let got = ref [] in
  for i = 1 to 5 do
    Des.send des ~src:0 ~dst:1 i
  done;
  Alcotest.(check int) "pending before run" 5 (Des.pending des);
  drain des (fun ~time:_ ~src:_ ~dst:_ m -> got := m :: !got);
  Alcotest.(check int) "all delivered" 5 (List.length !got);
  Alcotest.(check int) "counter" 5 (Des.messages_delivered des);
  Alcotest.(check int) "nothing pending" 0 (Des.pending des)

let test_fifo_per_channel () =
  let des = Des.create ~rng:(Rng.create 2) () in
  let got = ref [] in
  for i = 1 to 50 do
    Des.send des ~src:0 ~dst:1 i
  done;
  drain des (fun ~time:_ ~src:_ ~dst:_ m -> got := m :: !got);
  Alcotest.(check (list int)) "in-order delivery"
    (List.init 50 (fun i -> i + 1))
    (List.rev !got)

let test_fifo_independent_channels () =
  (* Interleave two channels; each must stay internally ordered. *)
  let des = Des.create ~rng:(Rng.create 3) () in
  let per_channel = Hashtbl.create 4 in
  for i = 1 to 30 do
    Des.send des ~src:0 ~dst:1 i;
    Des.send des ~src:2 ~dst:1 (100 + i)
  done;
  drain des (fun ~time:_ ~src ~dst:_ m ->
      let old = Option.value ~default:[] (Hashtbl.find_opt per_channel src) in
      Hashtbl.replace per_channel src (m :: old));
  let channel src = List.rev (Option.value ~default:[] (Hashtbl.find_opt per_channel src)) in
  Alcotest.(check (list int)) "channel 0" (List.init 30 (fun i -> i + 1)) (channel 0);
  Alcotest.(check (list int)) "channel 2" (List.init 30 (fun i -> 101 + i)) (channel 2)

let test_time_monotone () =
  let des = Des.create ~rng:(Rng.create 4) () in
  let last = ref neg_infinity in
  for i = 1 to 40 do
    Des.send des ~src:(i mod 3) ~dst:((i + 1) mod 3) i
  done;
  drain des (fun ~time ~src:_ ~dst:_ _ ->
      Alcotest.(check bool) "time never goes backwards" true (time >= !last);
      last := time)

let test_handler_chain_extends_run () =
  (* A relay: message k < 9 triggers a send of k+1; quiescence must reach
     the end of the chain. *)
  let des = Des.create ~rng:(Rng.create 5) () in
  let hops = ref 0 in
  Des.send des ~src:0 ~dst:1 0;
  drain des (fun ~time:_ ~src:_ ~dst m ->
      incr hops;
      if m < 9 then Des.send des ~src:dst ~dst:(dst + 1) (m + 1));
  Alcotest.(check int) "ten hops" 10 !hops

let test_send_after_ordering () =
  let des = Des.create ~rng:(Rng.create 6) () in
  let got = ref [] in
  Des.send_after des ~delay:100.0 ~src:0 ~dst:1 `Late;
  Des.send_after des ~delay:0.0 ~src:2 ~dst:1 `Early;
  drain des (fun ~time:_ ~src:_ ~dst:_ m -> got := m :: !got);
  Alcotest.(check bool) "delayed message arrives second" true
    (List.rev !got = [ `Early; `Late ])

let test_determinism () =
  let trace seed =
    let des = Des.create ~rng:(Rng.create seed) () in
    let out = ref [] in
    for i = 1 to 20 do
      Des.send des ~src:(i mod 4) ~dst:((i * 7) mod 4) i
    done;
    drain des (fun ~time ~src ~dst m -> out := (time, src, dst, m) :: !out);
    !out
  in
  Alcotest.(check bool) "identical seeded traces" true (trace 42 = trace 42);
  Alcotest.(check bool) "different seeds may reorder" true
    (List.length (trace 1) = List.length (trace 2))

let suite =
  [
    Alcotest.test_case "delivers all" `Quick test_delivers_all;
    Alcotest.test_case "fifo per channel" `Quick test_fifo_per_channel;
    Alcotest.test_case "fifo independent channels" `Quick test_fifo_independent_channels;
    Alcotest.test_case "time monotone" `Quick test_time_monotone;
    Alcotest.test_case "handler chain extends run" `Quick test_handler_chain_extends_run;
    Alcotest.test_case "send_after ordering" `Quick test_send_after_ordering;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]

(* --- appended: configuration edges --- *)

let test_bad_delay_bounds_rejected () =
  Alcotest.check_raises "max < min" (Invalid_argument "Des.create: bad delay bounds")
    (fun () -> ignore (Des.create ~min_delay:2.0 ~max_delay:1.0 ~rng:(Rng.create 0) ()));
  Alcotest.check_raises "negative min" (Invalid_argument "Des.create: bad delay bounds")
    (fun () -> ignore (Des.create ~min_delay:(-0.1) ~max_delay:1.0 ~rng:(Rng.create 0) ()))

let test_negative_delay_rejected () =
  let des = Des.create ~rng:(Rng.create 1) () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Des.send_after: negative delay") (fun () ->
      Des.send_after des ~delay:(-1.0) ~src:0 ~dst:1 ())

let test_self_messages () =
  let des = Des.create ~rng:(Rng.create 2) () in
  let got = ref 0 in
  Des.send des ~src:7 ~dst:7 ();
  drain des (fun ~time:_ ~src ~dst _ ->
      Alcotest.(check int) "src" 7 src;
      Alcotest.(check int) "dst" 7 dst;
      incr got);
  Alcotest.(check int) "delivered" 1 !got

let test_clock_advances_with_delays () =
  let des = Des.create ~min_delay:1.0 ~max_delay:1.0 ~rng:(Rng.create 3) () in
  Des.send_after des ~delay:10.0 ~src:0 ~dst:1 ();
  drain des (fun ~time:_ ~src:_ ~dst:_ _ -> ());
  Alcotest.(check bool) "clock past the delay" true (Des.now des >= 11.0)

let suite =
  suite
  @ [
      Alcotest.test_case "bad delay bounds" `Quick test_bad_delay_bounds_rejected;
      Alcotest.test_case "negative delay" `Quick test_negative_delay_rejected;
      Alcotest.test_case "self messages" `Quick test_self_messages;
      Alcotest.test_case "clock advances" `Quick test_clock_advances_with_delays;
    ]

(* --- appended: fault injection, livelock budget, traces --- *)

let sink ~time:_ ~src:_ ~dst:_ _ = ()

let test_queue_depth_gauge_tracks_dispatch () =
  (* The gauge must follow the queue both up (schedule) and down
     (dispatch): after a full drain it reads 0, not a stale peak. *)
  let g = Metrics.gauge "des.queue_depth" in
  let des = Des.create ~rng:(Rng.create 7) () in
  for i = 1 to 5 do
    Des.send des ~src:0 ~dst:1 i
  done;
  Alcotest.(check (float 0.0)) "depth after sends" 5.0 (Metrics.gauge_value g);
  drain des sink;
  Alcotest.(check (float 0.0)) "depth after drain" 0.0 (Metrics.gauge_value g);
  Alcotest.(check bool) "peak recorded" true (Des.queue_peak des >= 5)

let test_drop_everything () =
  let des =
    Des.create ~faults:(Des.faults ~drop_p:1.0 ()) ~rng:(Rng.create 8) ()
  in
  let got = ref 0 in
  for i = 1 to 20 do
    Des.send des ~src:0 ~dst:1 i
  done;
  drain des (fun ~time:_ ~src:_ ~dst:_ _ -> incr got);
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "all counted as drops" 20 (Des.drops des)

let test_duplicate_everything () =
  let des =
    Des.create ~faults:(Des.faults ~dup_p:1.0 ()) ~rng:(Rng.create 9) ()
  in
  let got = ref [] in
  for i = 1 to 10 do
    Des.send des ~src:0 ~dst:1 i
  done;
  drain des (fun ~time:_ ~src:_ ~dst:_ m -> got := m :: !got);
  Alcotest.(check int) "twice as many deliveries" 20 (List.length !got);
  Alcotest.(check int) "dups counted" 10 (Des.dups des);
  (* FIFO still holds: each copy lands right after its original. *)
  Alcotest.(check (list int)) "adjacent duplicates"
    (List.concat_map (fun i -> [ i; i ]) (List.init 10 (fun i -> i + 1)))
    (List.rev !got)

let test_delay_spike () =
  let des =
    Des.create ~min_delay:0.1 ~max_delay:0.2
      ~faults:(Des.faults ~spike_p:1.0 ~spike_delay:500.0 ())
      ~rng:(Rng.create 10) ()
  in
  Des.send des ~src:0 ~dst:1 ();
  let at = ref 0.0 in
  drain des (fun ~time ~src:_ ~dst:_ _ -> at := time);
  Alcotest.(check bool) "delivery delayed by the spike" true (!at >= 500.0)

let test_self_messages_exempt_from_faults () =
  (* Local timers must never be lost, whatever the channel profile. *)
  let des =
    Des.create ~faults:(Des.faults ~drop_p:1.0 ~dup_p:1.0 ()) ~rng:(Rng.create 11) ()
  in
  let got = ref 0 in
  Des.send des ~src:3 ~dst:3 ();
  drain des (fun ~time:_ ~src:_ ~dst:_ _ -> incr got);
  Alcotest.(check int) "delivered exactly once" 1 !got

let test_per_channel_override () =
  let des = Des.create ~rng:(Rng.create 12) () in
  Des.set_channel_faults des ~src:0 ~dst:1 (Des.faults ~drop_p:1.0 ());
  let got = ref [] in
  Des.send des ~src:0 ~dst:1 `Lossy;
  Des.send des ~src:2 ~dst:1 `Clean;
  drain des (fun ~time:_ ~src:_ ~dst:_ m -> got := m :: !got);
  Alcotest.(check bool) "only the clean channel delivers" true (!got = [ `Clean ]);
  Alcotest.(check int) "lossy channel dropped" 1 (Des.drops des)

let test_partition_and_heal () =
  let des = Des.create ~rng:(Rng.create 13) () in
  Des.partition des 0 1;
  let got = ref 0 in
  Des.send des ~src:0 ~dst:1 ();
  Des.send des ~src:1 ~dst:0 ();
  drain des (fun ~time:_ ~src:_ ~dst:_ _ -> incr got);
  Alcotest.(check int) "both directions cut" 0 !got;
  Alcotest.(check int) "partition drops counted" 2 (Des.drops des);
  Des.heal des 1 0;
  Des.send des ~src:0 ~dst:1 ();
  drain des (fun ~time:_ ~src:_ ~dst:_ _ -> incr got);
  Alcotest.(check int) "healed link delivers" 1 !got

let test_crash_restart () =
  let des = Des.create ~rng:(Rng.create 14) () in
  let restarts = ref [] in
  Des.set_restart_hook des (fun ~time id -> restarts := (time, id) :: !restarts);
  (* A pending timer of the crashed node dies with it. *)
  Des.send des ~src:1 ~dst:1 `Timer;
  Des.crash des 1;
  Alcotest.(check bool) "down" true (Des.is_down des 1);
  Des.send des ~src:0 ~dst:1 `ToDown;
  Des.send des ~src:1 ~dst:0 `FromDown;
  let got = ref 0 in
  drain des (fun ~time:_ ~src:_ ~dst:_ _ -> incr got);
  Alcotest.(check int) "nothing reaches or leaves a crashed node" 0 !got;
  Alcotest.(check int) "drops counted" 3 (Des.drops des);
  Des.restart_after des ~delay:5.0 1;
  drain des sink;
  Alcotest.(check bool) "back up" false (Des.is_down des 1);
  (match !restarts with
  | [ (t, 1) ] -> Alcotest.(check bool) "restart hook time" true (t >= 5.0)
  | _ -> Alcotest.fail "restart hook not called exactly once");
  Des.send des ~src:0 ~dst:1 `Hello;
  drain des (fun ~time:_ ~src:_ ~dst:_ _ -> incr got);
  Alcotest.(check int) "delivers after restart" 1 !got

let test_weak_events_do_not_block_quiescence () =
  let des = Des.create ~rng:(Rng.create 15) () in
  (* The keepalive sits far in the future; the drain must not chase it. *)
  Des.send_after ~weak:true des ~delay:1000.0 ~src:0 ~dst:0 `Keepalive;
  Des.send des ~src:0 ~dst:1 `Work;
  let got = ref [] in
  drain des (fun ~time:_ ~src:_ ~dst:_ m -> got := m :: !got);
  (* The strong message is drained; the keepalive stays queued. *)
  Alcotest.(check bool) "only strong work dispatched" true (!got = [ `Work ]);
  Alcotest.(check int) "weak event still pending" 1 (Des.pending des);
  (* With idle_ok false the drain digs into weak events too. *)
  let idle = ref false in
  drain des
    ~idle_ok:(fun () -> !idle)
    (fun ~time:_ ~src:_ ~dst:_ m ->
      got := m :: !got;
      idle := true);
  Alcotest.(check int) "keepalive eventually dispatched" 2 (List.length !got);
  Alcotest.(check int) "drained" 0 (Des.pending des)

let test_budget_livelock () =
  (* A handler that always reschedules itself can never quiesce; the
     budget must turn the spin into a report. *)
  let des = Des.create ~rng:(Rng.create 16) () in
  Des.send des ~src:0 ~dst:1 ();
  let result =
    Des.run_until_quiescent ~budget:100 des
      ~handler:(fun ~time:_ ~src:_ ~dst _ -> Des.send des ~src:dst ~dst:(1 - dst) ())
  in
  (match result with
  | Des.Livelock { dispatched; pending } ->
      Alcotest.(check int) "budget consumed" 100 dispatched;
      Alcotest.(check bool) "work still pending" true (pending > 0)
  | Des.Quiescent -> Alcotest.fail "expected a livelock report");
  Alcotest.check_raises "bad budget"
    (Invalid_argument "Des.run_until_quiescent: budget must be positive")
    (fun () -> ignore (Des.run_until_quiescent ~budget:0 des ~handler:sink))

let chaos_profile = Des.faults ~drop_p:0.3 ~dup_p:0.2 ~spike_p:0.1 ~spike_delay:25.0 ()

(* A small seeded protocol: relays plus timer chatter, under faults. *)
let chaos_run seed =
  let des = Des.create ~faults:chaos_profile ~rng:(Rng.create seed) () in
  Des.set_trace des true;
  for i = 0 to 19 do
    Des.send des ~src:(i mod 5) ~dst:((i + 1) mod 5) i
  done;
  drain des (fun ~time:_ ~src:_ ~dst m ->
      if m < 40 then Des.send des ~src:dst ~dst:((dst + 2) mod 5) (m + 7));
  (Des.trace des, Des.digest des, Des.drops des, Des.dups des)

let test_trace_replay_deterministic () =
  let t1, d1, drops1, dups1 = chaos_run 2024 in
  let t2, d2, drops2, dups2 = chaos_run 2024 in
  Alcotest.(check bool) "bit-identical traces" true (t1 = t2);
  Alcotest.(check int) "identical digests" d1 d2;
  Alcotest.(check int) "identical drop counts" drops1 drops2;
  Alcotest.(check int) "identical dup counts" dups1 dups2;
  Alcotest.(check bool) "faults actually fired" true (drops1 > 0 && dups1 > 0);
  let _, d3, _, _ = chaos_run 2025 in
  Alcotest.(check bool) "different seed, different digest" true (d1 <> d3);
  (* Replay feeds the recorded steps back verbatim. *)
  let replayed = ref [] in
  Des.replay t1 ~handler:(fun ~time ~src ~dst m ->
      replayed := { Des.at = time; src; dst; msg = m } :: !replayed);
  Alcotest.(check bool) "replay preserves the steps" true
    (List.rev !replayed = t1)

let suite =
  suite
  @ [
      Alcotest.test_case "queue depth gauge" `Quick test_queue_depth_gauge_tracks_dispatch;
      Alcotest.test_case "drop everything" `Quick test_drop_everything;
      Alcotest.test_case "duplicate everything" `Quick test_duplicate_everything;
      Alcotest.test_case "delay spike" `Quick test_delay_spike;
      Alcotest.test_case "self messages exempt" `Quick test_self_messages_exempt_from_faults;
      Alcotest.test_case "per-channel override" `Quick test_per_channel_override;
      Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
      Alcotest.test_case "crash and restart" `Quick test_crash_restart;
      Alcotest.test_case "weak events" `Quick test_weak_events_do_not_block_quiescence;
      Alcotest.test_case "budget livelock" `Quick test_budget_livelock;
      Alcotest.test_case "trace replay determinism" `Quick test_trace_replay_deterministic;
    ]

(* --- appended: property tests for the invariants the protocol relies on --- *)

(* Per-channel FIFO under jitter and faults: send increasing payloads on
   every channel; whatever subset survives (drops) or doubles (dups) must
   arrive in non-decreasing order with at most two copies each. *)
let prop_fifo_under_faults =
  QCheck.Test.make ~name:"per-channel FIFO survives jitter, drops and dups"
    ~count:60
    QCheck.(
      triple (int_range 0 1_000_000) (int_range 0 10) (int_range 0 10))
    (fun (seed, drop10, dup10) ->
      let faults =
        Des.faults ~drop_p:(float_of_int drop10 /. 10.0)
          ~dup_p:(float_of_int dup10 /. 10.0)
          ~spike_p:0.2 ~spike_delay:40.0 ()
      in
      let des = Des.create ~faults ~rng:(Rng.create seed) () in
      let channels = [ (0, 1); (1, 0); (2, 1); (0, 2) ] in
      for i = 0 to 29 do
        List.iter (fun (src, dst) -> Des.send des ~src ~dst i) channels
      done;
      let per_channel = Hashtbl.create 8 in
      (match Des.run_until_quiescent des ~handler:(fun ~time:_ ~src ~dst m ->
           let key = (src, dst) in
           let old = Option.value ~default:[] (Hashtbl.find_opt per_channel key) in
           Hashtbl.replace per_channel key (m :: old))
       with
      | Des.Quiescent -> ()
      | Des.Livelock _ -> QCheck.Test.fail_report "no budget given, yet livelock");
      List.for_all
        (fun key ->
          let seq =
            List.rev (Option.value ~default:[] (Hashtbl.find_opt per_channel key))
          in
          let rec ordered = function
            | a :: (b :: _ as rest) -> a <= b && ordered rest
            | _ -> true
          in
          let count x = List.length (List.filter (fun y -> y = x) seq) in
          ordered seq && List.for_all (fun x -> count x <= 2) seq)
        channels)

(* Same seed + same fault profile ⇒ the delivered event sequence is
   bit-identical, including under handler-driven sends. *)
let prop_seeded_chaos_deterministic =
  QCheck.Test.make ~name:"same seed and faults give identical traces" ~count:40
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 10))
    (fun (seed, drop10) ->
      let run () =
        let faults =
          Des.faults ~drop_p:(float_of_int drop10 /. 20.0) ~dup_p:0.15 ()
        in
        let des = Des.create ~faults ~rng:(Rng.create seed) () in
        Des.set_trace des true;
        for i = 0 to 14 do
          Des.send des ~src:(i mod 3) ~dst:((i + 1) mod 3) i
        done;
        (match Des.run_until_quiescent des ~handler:(fun ~time:_ ~src:_ ~dst m ->
             if m < 30 then Des.send des ~src:dst ~dst:((dst + 1) mod 3) (m + 5))
         with
        | Des.Quiescent -> ()
        | Des.Livelock _ -> QCheck.Test.fail_report "unexpected livelock");
        (Des.trace des, Des.digest des)
      in
      let t1, d1 = run () and t2, d2 = run () in
      t1 = t2 && d1 = d2)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_fifo_under_faults;
      QCheck_alcotest.to_alcotest prop_seeded_chaos_deterministic;
    ]

(* --- appended: time-wheel internals, bounded channel metadata, strong
   gauge semantics --- *)

(* Delays spanning six orders of magnitude walk events through every
   wheel level and the overflow chain; delivery must still be globally
   time-ordered, including for events scheduled after a rebase. *)
let test_wheel_levels_and_overflow () =
  let des = Des.create ~min_delay:0.1 ~max_delay:1.0 ~rng:(Rng.create 21) () in
  let delays = [ 0.0; 3.0; 250.0; 40_000.0; 6_000_000.0; 2_000_000_000.0 ] in
  List.iteri
    (fun i d -> Des.send_after des ~delay:d ~src:i ~dst:(10 + i) d)
    delays;
  let got = ref [] in
  let last = ref neg_infinity in
  drain des (fun ~time ~src:_ ~dst:_ d ->
      Alcotest.(check bool) "time-ordered across levels" true (time >= !last);
      last := time;
      got := d :: !got;
      (* After the far-future event (post-rebase), schedule more work;
         it must still deliver in order. *)
      if d > 1_000_000_000.0 then Des.send des ~src:50 ~dst:51 (-1.0));
  Alcotest.(check int) "all delivered" 7 (List.length !got);
  Alcotest.(check (list (float 0.0))) "payload order = delay order"
    (delays @ [ -1.0 ])
    (List.rev !got)

(* The satellite bound: 10^5 distinct channels, each touched once, must
   not leave 10^5 metadata entries behind — fronts behind the clock are
   pruned as the clock advances. *)
let test_channel_metadata_bounded () =
  let des = Des.create ~rng:(Rng.create 22) () in
  for batch = 0 to 99 do
    for i = 0 to 999 do
      let src = (batch * 1000) + i in
      Des.send des ~src ~dst:(src + 1_000_000) ()
    done;
    drain des sink
  done;
  Alcotest.(check int) "all delivered" 100_000 (Des.messages_delivered des);
  Alcotest.(check bool)
    (Printf.sprintf "metadata bounded (%d entries)" (Des.channel_meta_size des))
    true
    (Des.channel_meta_size des < 10_000);
  (* Fault overrides: healing a channel back to the default profile
     releases its entry. *)
  let before = Des.channel_meta_size des in
  for i = 0 to 999 do
    Des.set_channel_faults des ~src:i ~dst:(i + 1) (Des.faults ~drop_p:0.5 ())
  done;
  Alcotest.(check int) "overrides counted" (before + 1000)
    (Des.channel_meta_size des);
  for i = 0 to 999 do
    Des.set_channel_faults des ~src:i ~dst:(i + 1) Des.reliable
  done;
  Alcotest.(check int) "healed overrides released" before
    (Des.channel_meta_size des)

(* Pruning must be invisible to the schedule: a chatty run with and
   without intervening prunes (forced by channel churn) keeps the exact
   digest.  The digest covers (time, src, dst) of every delivery, so a
   single shifted FIFO floor would show. *)
let test_pruning_invisible_to_digest () =
  let run ~churn =
    let des = Des.create ~rng:(Rng.create 23) () in
    for round = 0 to 19 do
      for i = 0 to 9 do
        Des.send des ~src:i ~dst:((i + 1) mod 10) (round, i)
      done;
      if churn then
        (* Touch thousands of one-shot channels to push the table past
           its prune threshold. *)
        for i = 0 to 499 do
          Des.send des ~src:(1000 + (round * 500) + i) ~dst:999_999 (round, i)
        done;
      drain des sink
    done;
    Des.digest des
  in
  (* Different channel sets give different digests, so compare only the
     chatty sub-runs: replay the same ten-channel run twice with churn
     and check determinism survives pruning. *)
  Alcotest.(check bool) "churn run deterministic" true
    (run ~churn:true = run ~churn:true);
  Alcotest.(check bool) "quiet run deterministic" true
    (run ~churn:false = run ~churn:false)

(* S2: the queue-depth gauge counts strong events only, from both the
   schedule and the dispatch path; weak keepalives never show. *)
let test_queue_depth_counts_strong_only () =
  let g = Metrics.gauge "des.queue_depth" in
  let des = Des.create ~rng:(Rng.create 24) () in
  for _ = 1 to 3 do
    Des.send_after ~weak:true des ~delay:10_000.0 ~src:0 ~dst:0 `Keepalive
  done;
  Alcotest.(check (float 0.0)) "weak events invisible" 0.0
    (Metrics.gauge_value g);
  Des.send des ~src:0 ~dst:1 `Work;
  Des.send des ~src:1 ~dst:0 `Work;
  Alcotest.(check (float 0.0)) "strong events counted" 2.0
    (Metrics.gauge_value g);
  Alcotest.(check int) "strong_pending agrees" 2 (Des.strong_pending des);
  drain des sink;
  Alcotest.(check (float 0.0)) "zero after drain, keepalives queued" 0.0
    (Metrics.gauge_value g);
  Alcotest.(check int) "weak events still pending" 3 (Des.pending des);
  Alcotest.(check bool) "peak tracks the full queue" true
    (Des.queue_peak des >= 5)

(* inject + advance_until: the shard-engine primitives respect FIFO and
   the time horizon. *)
let test_inject_and_advance_until () =
  let des = Des.create ~min_delay:0.0 ~max_delay:0.0 ~rng:(Rng.create 25) () in
  Des.inject des ~time:5.0 ~src:1 ~dst:2 `B;
  Des.inject des ~time:1.0 ~src:3 ~dst:4 `A;
  Des.inject des ~time:9.0 ~src:5 ~dst:6 `C;
  (match Des.next_time des with
  | Some t -> Alcotest.(check (float 1e-6)) "next_time" 1.0 t
  | None -> Alcotest.fail "expected a pending event");
  let got = ref [] in
  let n = Des.advance_until des ~until:6.0 ~handler:(fun ~time:_ ~src:_ ~dst:_ m ->
      got := m :: !got)
  in
  Alcotest.(check int) "two events before the horizon" 2 n;
  Alcotest.(check bool) "in order" true (List.rev !got = [ `A; `B ]);
  Alcotest.(check int) "one event held back" 1 (Des.pending des);
  (* FIFO floor: an inject at a stale time on a used channel is bumped
     past the channel front. *)
  Des.inject des ~time:1.0 ~src:1 ~dst:2 `Late;
  drain des (fun ~time ~src ~dst:_ m ->
      if src = 1 && m = `Late then
        Alcotest.(check bool) "late inject after channel front" true (time > 5.0))

let test_footprint_reported () =
  let des = Des.create ~rng:(Rng.create 26) () in
  (* The restart hook is detached during measurement: a hook capturing a
     large structure must not inflate the footprint. *)
  let big = Array.make 4_000_000 0 in
  Des.set_restart_hook des (fun ~time:_ i -> big.(i) <- big.(i));
  for i = 0 to 99 do
    Des.send des ~src:i ~dst:(i + 1) ()
  done;
  let bytes = Des.footprint_bytes des in
  Alcotest.(check bool)
    (Printf.sprintf "footprint sane (%d bytes)" bytes)
    true
    (bytes > 1_000 && bytes < 4_000_000)

let suite =
  suite
  @ [
      Alcotest.test_case "wheel levels and overflow" `Quick
        test_wheel_levels_and_overflow;
      Alcotest.test_case "channel metadata bounded" `Quick
        test_channel_metadata_bounded;
      Alcotest.test_case "pruning invisible to digest" `Quick
        test_pruning_invisible_to_digest;
      Alcotest.test_case "queue depth counts strong only" `Quick
        test_queue_depth_counts_strong_only;
      Alcotest.test_case "inject and advance_until" `Quick
        test_inject_and_advance_until;
      Alcotest.test_case "footprint reported" `Quick test_footprint_reported;
    ]
