(* Conservative shard engine: cross-shard delivery, epoch/lookahead
   bookkeeping, and the headline determinism claim — per-shard digests
   are bit-identical across reruns and across Pool worker counts. *)

let shards = 4

let route p = p mod shards

(* Synthetic branching traffic: every delivered message with [hops]
   left emits one local bounce and one cross-shard hop, both through
   lossy channels, so the run exercises faults, the fault-free inject
   path, and multi-epoch barriers at once. *)
let build ~seed =
  let t =
    Shard.create ~shards ~lookahead:0.5 ~route ~make:(fun s ->
        Des.create
          ~faults:(Des.faults ~drop_p:0.05 ~dup_p:0.05 ())
          ~rng:(Rng.create (seed + (31 * s)))
          ())
  in
  Shard.set_handler t (fun ~shard ~time:_ ~src:_ ~dst hops ->
      if hops > 0 then begin
        Shard.send t ~shard ~src:dst ~dst:(dst + shards) (hops - 1);
        Shard.send t ~shard ~src:dst ~dst:(dst + 1) (hops - 1)
      end);
  for i = 0 to 7 do
    Des.send (Shard.des t (route i)) ~src:i ~dst:i 7
  done;
  t

let run_sim ?until ~workers ~seed () =
  let saved = Pool.workers () in
  Pool.set_workers workers;
  let t = build ~seed in
  let _epochs : int = Shard.run ?until t in
  Pool.set_workers saved;
  t

let delivered t =
  let n = ref 0 in
  for s = 0 to Shard.shard_count t - 1 do
    n := !n + Des.messages_delivered (Shard.des t s)
  done;
  !n

let test_traffic_crosses_shards () =
  let t = run_sim ~workers:1 ~seed:7 () in
  Alcotest.(check bool) "epochs ran" true (Shard.epochs t > 1);
  Alcotest.(check bool) "cross-shard messages moved" true
    (Shard.cross_messages t > 0);
  Alcotest.(check bool) "messages delivered" true (delivered t > 100);
  (* Every shard saw traffic: the ring hop reaches all residues. *)
  for s = 0 to shards - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "shard %d active" s)
      true
      (Des.messages_delivered (Shard.des t s) > 0)
  done

let test_digests_stable_across_reruns () =
  let a = Shard.digests (run_sim ~workers:1 ~seed:7 ()) in
  let b = Shard.digests (run_sim ~workers:1 ~seed:7 ()) in
  Alcotest.(check (array int)) "rerun digests identical" a b;
  let c = Shard.digests (run_sim ~workers:1 ~seed:8 ()) in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_digests_stable_across_workers () =
  let base = Shard.digests (run_sim ~workers:1 ~seed:11 ()) in
  List.iter
    (fun w ->
      let d = Shard.digests (run_sim ~workers:w ~seed:11 ()) in
      Alcotest.(check (array int))
        (Printf.sprintf "workers=%d matches workers=1" w)
        base d)
    [ 2; 4 ]

let test_until_horizon () =
  let t = run_sim ~until:1.0 ~workers:1 ~seed:7 () in
  let pending = ref 0 in
  for s = 0 to shards - 1 do
    pending := !pending + Des.pending (Shard.des t s)
  done;
  Alcotest.(check bool) "horizon leaves events pending" true (!pending > 0);
  (* Resuming without the horizon finishes the run with the same final
     digests as an uninterrupted one — epochs compose. *)
  let _ : int = Shard.run t in
  let full = Shard.digests (run_sim ~workers:1 ~seed:7 ()) in
  Alcotest.(check (array int)) "resumed run converges" full (Shard.digests t)

let test_create_validation () =
  let make _ = Des.create ~rng:(Rng.create 1) () in
  Alcotest.check_raises "zero shards"
    (Invalid_argument "Shard.create: need at least one shard") (fun () ->
      ignore (Shard.create ~shards:0 ~lookahead:1.0 ~route ~make));
  Alcotest.check_raises "zero lookahead"
    (Invalid_argument "Shard.create: lookahead must be positive") (fun () ->
      ignore (Shard.create ~shards:2 ~lookahead:0.0 ~route ~make))

let suite =
  [
    Alcotest.test_case "traffic crosses shards" `Quick
      test_traffic_crosses_shards;
    Alcotest.test_case "digests stable across reruns" `Quick
      test_digests_stable_across_reruns;
    Alcotest.test_case "digests stable across workers" `Quick
      test_digests_stable_across_workers;
    Alcotest.test_case "until horizon and resume" `Quick test_until_horizon;
    Alcotest.test_case "create validation" `Quick test_create_validation;
  ]
