(* The benchmark-report codec and the bench-diff regression rule:
   roundtrips, injected slowdowns/counter bloat getting flagged, missing
   scenarios, and a qcheck property that diffing a report against itself
   never regresses (the guarantee CI's gate relies on). *)

let sample_report ?(revision = "r0") ?(wall = [ 5.0; 12.0 ]) () =
  let scen i w =
    {
      Bench_report.name = Printf.sprintf "scenario-%d" i;
      wall_ms = w;
      metrics =
        [
          ("work.counter", Metrics.Count (100 * (i + 1)));
          ("work.gauge", Metrics.Level { value = 3.0; peak = 7.5 });
          ("work.timer", Metrics.Span { ns = 2.0e6 *. w; calls = 4 });
        ];
    }
  in
  Bench_report.make ~revision ~quick:true (List.mapi scen wall)

let test_roundtrip () =
  let r = sample_report () in
  match Bench_report.of_json (Bench_report.to_json r) with
  | Ok r' -> Alcotest.(check bool) "report roundtrips" true (r = r')
  | Error e -> Alcotest.fail e

let test_file_roundtrip () =
  let path = Filename.temp_file "bench" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let r = sample_report ~revision:"file-test" () in
      Bench_report.write_file path r;
      match Bench_report.read_file path with
      | Ok r' -> Alcotest.(check bool) "file roundtrip" true (r = r')
      | Error e -> Alcotest.fail e)

let test_identical_reports_clean () =
  let r = sample_report () in
  Alcotest.(check int) "self-diff is empty" 0
    (List.length (Bench_report.diff ~baseline:r ~candidate:r ()))

let test_wall_slowdown_flagged () =
  let baseline = sample_report ~wall:[ 5.0; 12.0 ] () in
  let candidate = sample_report ~wall:[ 5.0; 24.0 ] () in
  let regs = Bench_report.diff ~baseline ~candidate () in
  (* the 2x scenario trips both its wall time and its (wall-derived)
     timer span; the untouched scenario stays clean *)
  Alcotest.(check bool) "2x slowdown flagged" true
    (List.exists
       (fun r ->
         r.Bench_report.scenario = "scenario-1" && r.subject = "wall_ms")
       regs);
  Alcotest.(check bool) "untouched scenario clean" true
    (not (List.exists (fun r -> r.Bench_report.scenario = "scenario-0") regs))

let test_speedup_not_flagged () =
  let baseline = sample_report ~wall:[ 5.0; 12.0 ] () in
  let candidate = sample_report ~wall:[ 5.0; 6.0 ] () in
  Alcotest.(check int) "improvements never flagged" 0
    (List.length (Bench_report.diff ~baseline ~candidate ()))

let test_counter_bloat_flagged () =
  let baseline = sample_report () in
  let bloat s =
    {
      s with
      Bench_report.metrics =
        List.map
          (function
            | n, Metrics.Count c -> (n, Metrics.Count (2 * c))
            | m -> m)
          s.Bench_report.metrics;
    }
  in
  let candidate =
    { baseline with scenarios = List.map bloat baseline.scenarios }
  in
  let regs = Bench_report.diff ~baseline ~candidate () in
  Alcotest.(check int) "one regression per scenario" 2 (List.length regs);
  List.iter
    (fun r ->
      Alcotest.(check string) "counter is the subject" "work.counter"
        r.Bench_report.subject)
    regs

let test_missing_scenario_flagged () =
  let baseline = sample_report () in
  let candidate =
    { baseline with scenarios = [ List.hd baseline.scenarios ] }
  in
  match Bench_report.diff ~baseline ~candidate () with
  | [ r ] ->
      Alcotest.(check string) "subject" "missing" r.Bench_report.subject;
      Alcotest.(check string) "scenario" "scenario-1" r.scenario
  | regs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one regression, got %d"
           (List.length regs))

let test_new_metric_ignored () =
  (* adding instrumentation must not fail the gate against an old
     baseline that predates the metric *)
  let baseline = sample_report () in
  let extend s =
    {
      s with
      Bench_report.metrics =
        ("brand.new", Metrics.Count 999) :: s.Bench_report.metrics;
    }
  in
  let candidate =
    { baseline with scenarios = List.map extend baseline.scenarios }
  in
  Alcotest.(check int) "new metrics ignored" 0
    (List.length (Bench_report.diff ~baseline ~candidate ()))

let test_negative_tolerance_rejected () =
  let r = sample_report () in
  Alcotest.(check bool) "negative tolerance raises" true
    (try
       ignore
         (Bench_report.diff ~wall_tolerance:(-0.1) ~baseline:r ~candidate:r ());
       false
     with Invalid_argument _ -> true)

(* qcheck: bench-diff is symmetric-safe — for ANY generated report and
   ANY non-negative tolerances, diffing the report against itself yields
   no regressions (otherwise CI would flake on unchanged code). *)

let gen_sample =
  QCheck.Gen.(
    oneof
      [
        map (fun c -> Metrics.Count c) (int_range 0 1_000_000);
        map2
          (fun v p -> Metrics.Level { value = v; peak = Float.max v p })
          (float_range 0.0 1e6) (float_range 0.0 1e6);
        map2
          (fun ns calls -> Metrics.Span { ns; calls })
          (float_range 0.0 1e12) (int_range 0 10_000);
      ])

let gen_scenario =
  QCheck.Gen.(
    map3
      (fun i wall_ms samples ->
        {
          Bench_report.name = Printf.sprintf "s%d" i;
          wall_ms;
          metrics = List.mapi (fun j s -> (Printf.sprintf "m%d" j, s)) samples;
        })
      (int_range 0 1000) (float_range 0.0 1e4)
      (list_size (int_range 0 8) gen_sample))

let gen_report =
  QCheck.Gen.(
    map
      (fun scenarios ->
        (* duplicate names would make self-matching ambiguous; the bench
           harness never produces them, so neither does the generator *)
        let seen = Hashtbl.create 8 in
        let unique =
          List.filter
            (fun s ->
              let fresh = not (Hashtbl.mem seen s.Bench_report.name) in
              Hashtbl.replace seen s.Bench_report.name ();
              fresh)
            scenarios
        in
        Bench_report.make ~revision:"prop" ~quick:true unique)
      (list_size (int_range 0 6) gen_scenario))

let arb_report_and_tols =
  QCheck.make
    QCheck.Gen.(
      triple gen_report (float_range 0.0 2.0) (float_range 0.0 2.0))

let prop_self_diff_empty =
  QCheck.Test.make ~name:"bench-diff never flags an unchanged report"
    ~count:200 arb_report_and_tols
    (fun (r, wall_tolerance, metric_tolerance) ->
      Bench_report.diff ~wall_tolerance ~metric_tolerance ~baseline:r
        ~candidate:r ()
      = [])

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "identical reports clean" `Quick
      test_identical_reports_clean;
    Alcotest.test_case "2x wall slowdown flagged" `Quick
      test_wall_slowdown_flagged;
    Alcotest.test_case "speedup not flagged" `Quick test_speedup_not_flagged;
    Alcotest.test_case "counter bloat flagged" `Quick test_counter_bloat_flagged;
    Alcotest.test_case "missing scenario flagged" `Quick
      test_missing_scenario_flagged;
    Alcotest.test_case "new metric ignored" `Quick test_new_metric_ignored;
    Alcotest.test_case "negative tolerance rejected" `Quick
      test_negative_tolerance_rejected;
    QCheck_alcotest.to_alcotest prop_self_diff_empty;
  ]
