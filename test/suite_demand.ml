let point2 x y = [| x; y |]

let test_of_jobs_aggregates () =
  let dm = Demand_map.of_jobs 2 [ point2 0 0; point2 1 0; point2 0 0 ] in
  Alcotest.(check int) "d(0,0)" 2 (Demand_map.value dm (point2 0 0));
  Alcotest.(check int) "d(1,0)" 1 (Demand_map.value dm (point2 1 0));
  Alcotest.(check int) "d elsewhere" 0 (Demand_map.value dm (point2 5 5));
  Alcotest.(check int) "total" 3 (Demand_map.total dm);
  Alcotest.(check int) "max" 2 (Demand_map.max_demand dm);
  Alcotest.(check int) "support" 2 (Demand_map.support_size dm)

let test_add_zero_is_identity () =
  let dm = Demand_map.empty 2 in
  let dm' = Demand_map.add dm (point2 1 1) 0 in
  Alcotest.(check int) "no support" 0 (Demand_map.support_size dm')

let test_bounding_box () =
  let dm = Demand_map.of_alist 2 [ (point2 (-1) 2, 1); (point2 3 0, 2) ] in
  match Demand_map.bounding_box dm with
  | None -> Alcotest.fail "non-empty"
  | Some b ->
      Alcotest.(check bool) "lo" true (Point.equal b.Box.lo (point2 (-1) 0));
      Alcotest.(check bool) "hi" true (Point.equal b.Box.hi (point2 3 2))

let test_bounding_box_empty () =
  Alcotest.(check bool) "empty" true (Demand_map.bounding_box (Demand_map.empty 2) = None)

let test_workload_square () =
  let w = Workload.square ~side:3 ~per_point:2 () in
  Alcotest.(check int) "job count" 18 (Array.length w.Workload.jobs);
  let dm = Workload.demand w in
  Alcotest.(check int) "total" 18 (Demand_map.total dm);
  Alcotest.(check int) "per point" 2 (Demand_map.value dm (point2 1 1));
  Alcotest.(check int) "support" 9 (Demand_map.support_size dm)

let test_workload_line () =
  let w = Workload.line ~len:5 ~per_point:3 in
  let dm = Workload.demand w in
  Alcotest.(check int) "support" 5 (Demand_map.support_size dm);
  Alcotest.(check int) "per point" 3 (Demand_map.value dm (point2 4 0));
  (* all on the x-axis *)
  List.iter
    (fun p -> Alcotest.(check int) "y = 0" 0 p.(1))
    (Demand_map.support dm)

let test_workload_point () =
  let w = Workload.point ~total:7 () in
  let dm = Workload.demand w in
  Alcotest.(check int) "support" 1 (Demand_map.support_size dm);
  Alcotest.(check int) "all at origin" 7 (Demand_map.value dm (point2 0 0))

let test_workload_uniform_determinism () =
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 9 9) in
  let w1 = Workload.uniform ~rng:(Rng.create 5) ~box ~jobs:40 in
  let w2 = Workload.uniform ~rng:(Rng.create 5) ~box ~jobs:40 in
  Alcotest.(check bool) "same seed, same workload" true
    (Array.for_all2 Point.equal w1.Workload.jobs w2.Workload.jobs);
  Array.iter
    (fun p -> Alcotest.(check bool) "inside box" true (Box.mem box p))
    w1.Workload.jobs

let test_workload_clustered_inside_box () =
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 19 19) in
  let w =
    Workload.clustered ~rng:(Rng.create 6) ~box ~clusters:3 ~jobs_per_cluster:20
      ~spread:2
  in
  Alcotest.(check int) "job count" 60 (Array.length w.Workload.jobs);
  Array.iter
    (fun p -> Alcotest.(check bool) "clamped into box" true (Box.mem box p))
    w.Workload.jobs

let test_workload_zipf_skew () =
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 49 49) in
  let w = Workload.zipf_sites ~rng:(Rng.create 7) ~box ~sites:20 ~jobs:500 ~exponent:1.5 in
  let dm = Workload.demand w in
  Alcotest.(check int) "total preserved" 500 (Demand_map.total dm);
  Alcotest.(check bool) "top site is hot" true
    (Demand_map.max_demand dm > 500 / 20)

let test_workload_shuffled_same_demand () =
  let w = Workload.line ~len:6 ~per_point:2 in
  let s = Workload.shuffled ~rng:(Rng.create 8) w in
  let d1 = Workload.demand w and d2 = Workload.demand s in
  List.iter
    (fun p ->
      Alcotest.(check int) "same aggregated demand" (Demand_map.value d1 p)
        (Demand_map.value d2 p))
    (Demand_map.support d1);
  Alcotest.(check int) "same total" (Demand_map.total d1) (Demand_map.total d2)

let test_workload_mixture () =
  let rng = Rng.create 9 in
  let w =
    Workload.mixture ~rng ~name:"mix"
      [ Workload.line ~len:3 ~per_point:1; Workload.point ~total:4 () ]
  in
  Alcotest.(check int) "jobs merged" 7 (Array.length w.Workload.jobs)

let test_workload_translate () =
  let w = Workload.translate (Workload.point ~total:2 ()) (point2 5 7) in
  let dm = Workload.demand w in
  Alcotest.(check int) "moved" 2 (Demand_map.value dm (point2 5 7))

let prop_of_jobs_total =
  QCheck.Test.make ~name:"total demand = number of jobs" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 50) (pair (int_range (-5) 5) (int_range (-5) 5)))
    (fun coords ->
      let jobs = List.map (fun (x, y) -> point2 x y) coords in
      Demand_map.total (Demand_map.of_jobs 2 jobs) = List.length jobs)

let suite =
  [
    Alcotest.test_case "of_jobs aggregates" `Quick test_of_jobs_aggregates;
    Alcotest.test_case "add zero" `Quick test_add_zero_is_identity;
    Alcotest.test_case "bounding box" `Quick test_bounding_box;
    Alcotest.test_case "bounding box empty" `Quick test_bounding_box_empty;
    Alcotest.test_case "square workload" `Quick test_workload_square;
    Alcotest.test_case "line workload" `Quick test_workload_line;
    Alcotest.test_case "point workload" `Quick test_workload_point;
    Alcotest.test_case "uniform determinism" `Quick test_workload_uniform_determinism;
    Alcotest.test_case "clustered inside box" `Quick test_workload_clustered_inside_box;
    Alcotest.test_case "zipf skew" `Quick test_workload_zipf_skew;
    Alcotest.test_case "shuffle preserves demand" `Quick test_workload_shuffled_same_demand;
    Alcotest.test_case "mixture merges" `Quick test_workload_mixture;
    Alcotest.test_case "translate" `Quick test_workload_translate;
    QCheck_alcotest.to_alcotest prop_of_jobs_total;
  ]

(* appended: moving hotspot generator *)
let test_moving_hotspot_shape () =
  let rng = Rng.create 5 in
  let w = Workload.moving_hotspot ~rng ~start:[| 0; 0 |] ~steps:10 ~jobs_per_step:3 in
  Alcotest.(check int) "job count" 30 (Array.length w.Workload.jobs);
  (* Consecutive job groups drift by at most one step. *)
  for i = 0 to Array.length w.Workload.jobs - 2 do
    Alcotest.(check bool) "drift at most 1" true
      (Point.l1_dist w.Workload.jobs.(i) w.Workload.jobs.(i + 1) <= 1)
  done

let suite = suite @ [ Alcotest.test_case "moving hotspot shape" `Quick test_moving_hotspot_shape ]

(* appended: add/remove validation (streaming deltas) *)
let test_add_negative_raises () =
  let dm = Demand_map.empty 2 in
  Alcotest.check_raises "negative add"
    (Invalid_argument "Demand_map.add: negative demand") (fun () ->
      ignore (Demand_map.add dm (point2 0 0) (-1)))

let test_remove_semantics () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 3); (point2 1 1, 1) ] in
  let dm = Demand_map.remove dm (point2 0 0) 2 in
  Alcotest.(check int) "partial removal" 1 (Demand_map.value dm (point2 0 0));
  Alcotest.(check int) "support kept" 2 (Demand_map.support_size dm);
  let dm = Demand_map.remove dm (point2 1 1) 1 in
  Alcotest.(check int) "binding dropped at 0" 1 (Demand_map.support_size dm);
  Alcotest.(check int) "value gone" 0 (Demand_map.value dm (point2 1 1));
  let same = Demand_map.remove dm (point2 0 0) 0 in
  Alcotest.(check int) "remove 0 is identity" 1 (Demand_map.value same (point2 0 0))

let test_remove_below_zero_raises () =
  let dm = Demand_map.of_alist 2 [ (point2 0 0, 1) ] in
  Alcotest.check_raises "below zero"
    (Invalid_argument "Demand_map.remove: demand would become negative")
    (fun () -> ignore (Demand_map.remove dm (point2 0 0) 2));
  Alcotest.check_raises "absent point"
    (Invalid_argument "Demand_map.remove: demand would become negative")
    (fun () -> ignore (Demand_map.remove dm (point2 9 9) 1));
  Alcotest.check_raises "negative amount"
    (Invalid_argument "Demand_map.remove: negative demand") (fun () ->
      ignore (Demand_map.remove dm (point2 0 0) (-1)))

let suite =
  suite
  @ [
      Alcotest.test_case "add negative raises" `Quick test_add_negative_raises;
      Alcotest.test_case "remove semantics" `Quick test_remove_semantics;
      Alcotest.test_case "remove below zero raises" `Quick
        test_remove_below_zero_raises;
    ]
