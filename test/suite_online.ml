(* The Chapter 3 distributed strategy: full service at the theorem
   capacity, replacement via diffusing computations, failure scenarios,
   and the Won sandwich of Theorem 1.4.2. *)

let point2 x y = [| x; y |]

let run_recommended ?faults w =
  let cfg = Online.recommended w in
  let cfg = match faults with None -> cfg | Some f -> { cfg with Online.faults = f } in
  Online.run cfg w

let check_success name w o =
  if not (Online.succeeded o) then begin
    let first =
      match o.Online.failures with
      | [] -> "?"
      | f :: _ ->
          Printf.sprintf "job %d at %s: %s" f.Online.job
            (Point.to_string f.Online.position)
            f.Online.reason
    in
    Alcotest.fail
      (Printf.sprintf "%s: %d failures (first: %s)" name
         (List.length o.Online.failures) first)
  end;
  Alcotest.(check int)
    (name ^ ": every job served")
    (Array.length w.Workload.jobs)
    o.Online.served

let test_single_job () =
  let w = Workload.point ~total:1 () in
  let o = run_recommended w in
  check_success "single job" w o;
  Alcotest.(check int) "one vehicle fleet serves it" o.Online.served 1

let test_point_workload_with_replacements () =
  let w = Workload.point ~total:800 () in
  let o = run_recommended w in
  check_success "hot point" w o;
  Alcotest.(check bool) "replacements happened" true (o.Online.replacements > 0);
  Alcotest.(check bool) "computations ran" true (o.Online.computations > 0);
  Alcotest.(check bool) "messages flowed" true (o.Online.messages > 0)

let test_square_workload () =
  let w = Workload.square ~side:4 ~per_point:30 () in
  check_success "square" w (run_recommended w)

let test_line_workload () =
  let w = Workload.line ~len:10 ~per_point:25 in
  check_success "line" w (run_recommended w)

let test_uniform_workload () =
  let rng = Rng.create 2718 in
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 9 9) in
  let w = Workload.uniform ~rng ~box ~jobs:300 in
  check_success "uniform" w (run_recommended w)

let test_zipf_workload () =
  let rng = Rng.create 987 in
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 7 7) in
  let w = Workload.zipf_sites ~rng ~box ~sites:10 ~jobs:400 ~exponent:1.3 in
  check_success "zipf" w (run_recommended w)

let test_energy_never_exceeds_capacity () =
  let w = Workload.point ~total:500 () in
  let cfg = Online.recommended w in
  let o = Online.run cfg w in
  check_success "capacity audit" w o;
  Alcotest.(check bool) "peak use within capacity" true
    (o.Online.max_energy_used <= cfg.Online.capacity +. 1e-9)

let test_message_delay_seed_invariance_of_service () =
  (* Different message schedules must not change what gets served. *)
  let w = Workload.point ~total:300 () in
  List.iter
    (fun seed ->
      let o = run_recommended { w with Workload.name = w.Workload.name } in
      ignore seed;
      check_success "seeded run" w o)
    [ 1; 2; 3 ];
  let cfg1 = Online.recommended ~seed:11 w in
  let cfg2 = Online.recommended ~seed:22 w in
  let o1 = Online.run cfg1 w and o2 = Online.run cfg2 w in
  Alcotest.(check int) "same served count across delays" o1.Online.served
    o2.Online.served

let test_pairs_covered_after_run () =
  (* If no search starved, every pair must end with an active vehicle —
     the Lemma 3.3.1 invariant. *)
  let w = Workload.point ~total:600 () in
  let o = run_recommended w in
  check_success "coverage" w o;
  Alcotest.(check int) "no starved searches at theorem capacity" 0
    o.Online.starved_searches

let test_scenario2_silent_initiator () =
  (* The initial active at the hot point will exhaust and stay silent; the
     monitoring ring must replace it anyway. *)
  let w = Workload.point ~total:600 () in
  let base = Online.recommended w in
  (* Silence every vehicle: all done vehicles rely on their monitors. *)
  let all_ids = List.init (Online.fleet_size base w) (fun i -> i) in
  let cfg = { base with Online.faults = { Online.no_faults with Online.silent_initiators = all_ids } } in
  let o = Online.run cfg w in
  check_success "scenario 2" w o;
  Alcotest.(check bool) "replacements still happen" true (o.Online.replacements > 0)

let test_scenario3_dead_vehicles () =
  (* Kill a couple of active vehicles mid-run; monitors must recover. *)
  let w = Workload.square ~side:4 ~per_point:40 () in
  let base = Online.recommended w in
  let cfg =
    {
      base with
      Online.capacity = base.Online.capacity +. 8.0;
      faults = { Online.no_faults with Online.deaths = [ (10, 0); (30, 5) ] };
    }
  in
  let o = Online.run cfg w in
  check_success "scenario 3" w o

let test_death_before_first_job () =
  let w = Workload.point ~total:50 () in
  let base = Online.recommended w in
  (* Kill the initial active of the origin's pair before any job. *)
  let cfg =
    { base with Online.faults = { Online.no_faults with Online.deaths = [ (0, 0) ] } }
  in
  let o = Online.run cfg w in
  (* Either vehicle 0 was not the responsible active (then nothing
     changes), or the ring replaced it; both ways every job is served. *)
  check_success "death before first job" w o

let test_insufficient_capacity_fails_cleanly () =
  let w = Workload.point ~total:400 () in
  let cfg = Online.config ~capacity:4.5 ~side:4 () in
  let o = Online.run cfg w in
  Alcotest.(check bool) "some jobs fail" true (o.Online.failures <> []);
  Alcotest.(check bool) "no crash, partial service" true
    (o.Online.served > 0 && o.Online.served < 400)

let test_min_feasible_capacity_sandwich () =
  (* ω* <= Won <= measured minimal capacity <= theorem capacity. *)
  let w = Workload.point ~total:300 () in
  let dm = Workload.demand w in
  let star = Oracle.omega_star dm in
  let _, side = Omega.cube_fixpoint_with_side dm in
  let measured = Online.min_feasible_capacity ~side w in
  let bound = (Online.recommended w).Online.capacity in
  Alcotest.(check bool)
    (Printf.sprintf "ω* (%g) <= measured (%g)" star measured)
    true
    (star <= measured +. 0.5);
  Alcotest.(check bool)
    (Printf.sprintf "measured (%g) <= theorem capacity (%g)" measured bound)
    true (measured <= bound +. 1e-9)

let test_capacity_bound_formula () =
  Alcotest.(check (float 1e-12)) "2d" 38.0 (Online.capacity_bound ~dim:2 1.0);
  Alcotest.(check (float 1e-12)) "1d" 13.0 (Online.capacity_bound ~dim:1 1.0);
  Alcotest.(check (float 1e-12)) "3d" 111.0 (Online.capacity_bound ~dim:3 1.0)

let test_mixture_workload () =
  let rng = Rng.create 1123 in
  let w =
    Workload.mixture ~rng ~name:"mixed"
      [
        Workload.line ~len:6 ~per_point:15;
        Workload.translate (Workload.point ~total:120 ()) (point2 3 4);
      ]
  in
  check_success "mixture" w (run_recommended w)

let prop_random_workloads_served =
  QCheck.Test.make ~name:"recommended config serves random workloads" ~count:15
    QCheck.(pair (int_range 1 1000000) (int_range 20 150))
    (fun (seed, jobs) ->
      let rng = Rng.create seed in
      let box = Box.make ~lo:(point2 0 0) ~hi:(point2 6 6) in
      let w = Workload.clustered ~rng ~box ~clusters:2 ~jobs_per_cluster:(jobs / 2) ~spread:2 in
      let o = run_recommended w in
      Online.succeeded o && o.Online.served = Array.length w.Workload.jobs)

let suite =
  [
    Alcotest.test_case "single job" `Quick test_single_job;
    Alcotest.test_case "hot point with replacements" `Quick test_point_workload_with_replacements;
    Alcotest.test_case "square workload" `Quick test_square_workload;
    Alcotest.test_case "line workload" `Quick test_line_workload;
    Alcotest.test_case "uniform workload" `Quick test_uniform_workload;
    Alcotest.test_case "zipf workload" `Quick test_zipf_workload;
    Alcotest.test_case "energy within capacity" `Quick test_energy_never_exceeds_capacity;
    Alcotest.test_case "delay-seed invariance" `Quick test_message_delay_seed_invariance_of_service;
    Alcotest.test_case "pairs covered after run" `Quick test_pairs_covered_after_run;
    Alcotest.test_case "scenario 2: silent initiators" `Quick test_scenario2_silent_initiator;
    Alcotest.test_case "scenario 3: dead vehicles" `Quick test_scenario3_dead_vehicles;
    Alcotest.test_case "death before first job" `Quick test_death_before_first_job;
    Alcotest.test_case "insufficient capacity fails cleanly" `Quick test_insufficient_capacity_fails_cleanly;
    Alcotest.test_case "Won sandwich" `Quick test_min_feasible_capacity_sandwich;
    Alcotest.test_case "capacity bound formula" `Quick test_capacity_bound_formula;
    Alcotest.test_case "mixture workload" `Quick test_mixture_workload;
    QCheck_alcotest.to_alcotest prop_random_workloads_served;
  ]

(* --- appended: higher-dimension runs and scenario 4 (longevity) --- *)

let test_online_1d () =
  let w =
    { Workload.name = "1d-hot"; dim = 1; jobs = Array.init 200 (fun _ -> [| 0 |]) }
  in
  let o = run_recommended w in
  check_success "1-D online" w o

let test_online_3d () =
  let w =
    {
      Workload.name = "3d-burst";
      dim = 3;
      jobs = Array.init 120 (fun i -> if i mod 3 = 0 then [| 0; 0; 0 |] else [| 1; 0; 0 |]);
    }
  in
  let o = run_recommended w in
  check_success "3-D online" w o

let test_scenario4_mild_longevity_survives () =
  (* A third of the fleet breaks at half charge; with doubled capacity the
     ring and replacements absorb it. *)
  let w = Workload.square ~side:4 ~per_point:25 () in
  let base = Online.recommended w in
  let n = Online.fleet_size base w in
  let longevity =
    List.filter (fun (id, _) -> id < n) (List.init 20 (fun i -> (3 * i, 0.5)))
  in
  let cfg =
    {
      base with
      Online.capacity = 2.0 *. base.Online.capacity;
      faults = { Online.no_faults with Online.longevity };
    }
  in
  let o = Online.run cfg w in
  check_success "scenario 4 (mild)" w o

let test_scenario4_mass_breakdown_fails () =
  (* Scenario 4 proper: when a LARGE number of vehicles break, the
     constant-factor guarantee is void (§3.2.5 / Chapter 4) — the run must
     fail gracefully, not silently succeed. *)
  let w = Workload.point ~total:400 () in
  let base = Online.recommended w in
  (* Everyone breaks at 5% of charge: almost no usable energy anywhere. *)
  let longevity = List.init (Online.fleet_size base w) (fun i -> (i, 0.05)) in
  let cfg = { base with Online.faults = { Online.no_faults with Online.longevity } } in
  let o = Online.run cfg w in
  Alcotest.(check bool) "fails as the theory predicts" true
    (not (Online.succeeded o));
  Alcotest.(check bool) "still serves a prefix" true (o.Online.served > 0)

let test_longevity_zero_is_initial_breakdown () =
  (* p = 0 vehicles break on their first expenditure. *)
  let w = Workload.point ~total:60 () in
  let base = Online.recommended w in
  let cfg =
    { base with Online.faults = { Online.no_faults with Online.longevity = [ (0, 0.0) ] } }
  in
  let o = Online.run cfg w in
  (* Vehicle 0 may or may not be the responsible active; either way the
     protocol absorbs a single constant-fraction breakdown (scenario 3). *)
  check_success "single p=0 vehicle" w o

let extra_suite =
  [
    Alcotest.test_case "online 1-D" `Quick test_online_1d;
    Alcotest.test_case "online 3-D" `Quick test_online_3d;
    Alcotest.test_case "scenario 4: mild longevity" `Quick test_scenario4_mild_longevity_survives;
    Alcotest.test_case "scenario 4: mass breakdown fails" `Quick test_scenario4_mass_breakdown_fails;
    Alcotest.test_case "longevity p=0" `Quick test_longevity_zero_is_initial_breakdown;
  ]

let suite = suite @ extra_suite

let test_moving_hotspot () =
  let rng = Rng.create 999 in
  let w = Workload.moving_hotspot ~rng ~start:(point2 5 5) ~steps:40 ~jobs_per_step:8 in
  let o = run_recommended w in
  check_success "moving hotspot" w o

let suite = suite @ [ Alcotest.test_case "moving hotspot" `Quick test_moving_hotspot ]

(* --- appended: observer trace --- *)

let collect_trace w =
  let events = ref [] in
  let o = Online.run ~observer:(fun e -> events := e :: !events) (Online.recommended w) w in
  (o, List.rev !events)

let test_trace_counts_match_outcome () =
  let w = Workload.point ~total:500 () in
  let o, events = collect_trace w in
  let count f = List.length (List.filter f events) in
  Alcotest.(check int) "served events" o.Online.served
    (count (function Online.Job_served _ -> true | _ -> false));
  Alcotest.(check int) "replacement events" o.Online.replacements
    (count (function Online.Replacement _ -> true | _ -> false));
  Alcotest.(check int) "computation events" o.Online.computations
    (count (function Online.Computation_started _ -> true | _ -> false))

let test_trace_causal_order () =
  (* Every replacement of a pair must be preceded by a computation start
     and a candidate-found for that pair. *)
  let w = Workload.point ~total:800 () in
  let _, events = collect_trace w in
  let seen_start = Hashtbl.create 8 and seen_candidate = Hashtbl.create 8 in
  List.iter
    (function
      | Online.Computation_started { pair; _ } -> Hashtbl.replace seen_start pair ()
      | Online.Candidate_found { pair; _ } ->
          Alcotest.(check bool) "candidate after start" true (Hashtbl.mem seen_start pair);
          Hashtbl.replace seen_candidate pair ()
      | Online.Replacement { pair; _ } ->
          Alcotest.(check bool) "replacement after candidate" true
            (Hashtbl.mem seen_candidate pair)
      | _ -> ())
    events

let test_trace_retirement_precedes_computation () =
  let w = Workload.point ~total:600 () in
  let _, events = collect_trace w in
  (* The first computation for a pair comes after some retirement of the
     pair's vehicle (scenario 1: the done vehicle self-initiates). *)
  let retired = Hashtbl.create 8 in
  List.iter
    (function
      | Online.Vehicle_retired { pair; _ } -> Hashtbl.replace retired pair ()
      | Online.Computation_started { pair; _ } ->
          Alcotest.(check bool) "computation follows retirement" true
            (Hashtbl.mem retired pair)
      | _ -> ())
    events

let test_trace_walks_at_most_one () =
  let rng = Rng.create 321 in
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 6 6) in
  let w = Workload.uniform ~rng ~box ~jobs:200 in
  let _, events = collect_trace w in
  List.iter
    (function
      | Online.Job_served { walk; _ } ->
          Alcotest.(check bool) "pair service walks <= 1" true (walk <= 1)
      | _ -> ())
    events

let suite =
  suite
  @ [
      Alcotest.test_case "trace counts match outcome" `Quick test_trace_counts_match_outcome;
      Alcotest.test_case "trace causal order" `Quick test_trace_causal_order;
      Alcotest.test_case "trace retirement first" `Quick test_trace_retirement_precedes_computation;
      Alcotest.test_case "trace walks <= 1" `Quick test_trace_walks_at_most_one;
    ]

(* --- appended: chaos hardening (lossy channels, partitions, livelock) --- *)

let chaos = Des.faults ~drop_p:0.2 ~dup_p:0.1 ()

let test_chaos_point_serves_all () =
  (* The acceptance bar of the robustness work: drop 0.2 / dup 0.1 on
     every channel, and the ack/retry + heartbeat machinery still serves
     every job with no starved search. *)
  let w = Workload.point ~total:400 () in
  let base = Online.recommended w in
  let o = Online.run { base with Online.chaos } w in
  check_success "chaos hot point" w o;
  Alcotest.(check bool) "channels actually lossy" true (o.Online.drops > 0);
  Alcotest.(check bool) "duplicates injected" true (o.Online.dups > 0);
  Alcotest.(check bool) "retries happened" true (o.Online.retries_sent > 0);
  Alcotest.(check int) "no livelock with retries on" 0 o.Online.livelocks;
  Alcotest.(check int) "no starved search beyond the fault-free run" 0
    o.Online.starved_searches

let test_chaos_square_serves_all () =
  let w = Workload.square ~side:4 ~per_point:25 () in
  let base = Online.recommended w in
  let o = Online.run { base with Online.chaos } w in
  check_success "chaos square" w o

let test_chaos_with_deaths () =
  (* Lossy channels and mid-run deaths at once; extra capacity absorbs
     the replacements exactly as in the fault-free scenario 3. *)
  let w = Workload.square ~side:4 ~per_point:40 () in
  let base = Online.recommended w in
  let cfg =
    {
      base with
      Online.capacity = base.Online.capacity +. 8.0;
      chaos;
      faults = { Online.no_faults with Online.deaths = [ (10, 0); (30, 5) ] };
    }
  in
  check_success "chaos + deaths" w (Online.run cfg w)

let test_partitioned_link_tolerated () =
  (* Cutting one link makes one neighbor permanently unreachable; retry
     exhaustion accounts it as a negative reply and the search succeeds
     through the rest of the cube. *)
  let w = Workload.point ~total:400 () in
  let base = Online.recommended w in
  let n = Online.fleet_size base w in
  let cfg = { base with Online.partitions = [ (0, min 1 (n - 1)) ] } in
  check_success "partitioned link" w (Online.run cfg w)

let test_retries_disabled_livelock_reported () =
  (* Without the reliable layer, lossy channels strand the diffusing
     computations; the budget must end the run with a livelock report
     instead of an infinite spin, and the run still terminates with
     partial service. *)
  let w = Workload.point ~total:300 () in
  let base = Online.recommended w in
  let cfg =
    {
      base with
      Online.chaos = Des.faults ~drop_p:0.3 ~dup_p:0.1 ();
      retries = false;
      quiesce_budget = 60;
    }
  in
  let o = Online.run cfg w in
  Alcotest.(check bool) "livelock reported" true (o.Online.livelocks > 0);
  Alcotest.(check bool) "prefix still served" true (o.Online.served > 0);
  Alcotest.(check bool) "degraded, not silently fine" true
    (not (Online.succeeded o))

let test_chaos_trace_digest_deterministic () =
  (* Same seed + same fault config ⇒ bit-identical runs. *)
  let w = Workload.point ~total:300 () in
  let base = Online.recommended ~seed:7 w in
  let cfg = { base with Online.chaos } in
  let o1 = Online.run cfg w and o2 = Online.run cfg w in
  Alcotest.(check int) "identical digests" o1.Online.trace_digest
    o2.Online.trace_digest;
  Alcotest.(check int) "identical message counts" o1.Online.messages
    o2.Online.messages;
  Alcotest.(check int) "identical drops" o1.Online.drops o2.Online.drops;
  Alcotest.(check int) "identical retries" o1.Online.retries_sent
    o2.Online.retries_sent;
  let o3 = Online.run { cfg with Online.seed = 8 } w in
  Alcotest.(check bool) "different seed, different digest" true
    (o3.Online.trace_digest <> o1.Online.trace_digest)

let test_fault_plan_validation () =
  let w = Workload.point ~total:50 () in
  let base = Online.recommended w in
  let rejected what cfg =
    match Online.run cfg w with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  rejected "silent initiator out of range"
    { base with Online.faults = { Online.no_faults with Online.silent_initiators = [ 9999 ] } };
  rejected "death id out of range"
    { base with Online.faults = { Online.no_faults with Online.deaths = [ (1, 9999) ] } };
  rejected "negative death id"
    { base with Online.faults = { Online.no_faults with Online.deaths = [ (1, -2) ] } };
  rejected "longevity id out of range"
    { base with Online.faults = { Online.no_faults with Online.longevity = [ (9999, 0.5) ] } };
  rejected "partition endpoint out of range" { base with Online.partitions = [ (0, 9999) ] };
  (* The config builder rejects what it can check without a fleet. *)
  (match
     Online.config ~capacity:10.0 ~side:4
       ~faults:{ Online.no_faults with Online.longevity = [ (0, 1.5) ] }
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "longevity fraction 1.5: expected Invalid_argument");
  (match
     Online.config ~capacity:10.0 ~side:4
       ~faults:{ Online.no_faults with Online.deaths = [ (-1, 0) ] }
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative death index: expected Invalid_argument");
  (match Online.config ~capacity:10.0 ~side:4 ~quiesce_budget:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero budget: expected Invalid_argument")

let test_fleet_size_matches_run () =
  let w = Workload.square ~side:4 ~per_point:5 () in
  let cfg = Online.recommended w in
  let o = Online.run cfg w in
  Alcotest.(check int) "fleet_size agrees with the run" o.Online.vehicles
    (Online.fleet_size cfg w)

let suite =
  suite
  @ [
      Alcotest.test_case "chaos: hot point serves all" `Quick test_chaos_point_serves_all;
      Alcotest.test_case "chaos: square serves all" `Quick test_chaos_square_serves_all;
      Alcotest.test_case "chaos + deaths" `Quick test_chaos_with_deaths;
      Alcotest.test_case "partitioned link tolerated" `Quick test_partitioned_link_tolerated;
      Alcotest.test_case "retries off: livelock reported" `Quick test_retries_disabled_livelock_reported;
      Alcotest.test_case "chaos digest determinism" `Quick test_chaos_trace_digest_deterministic;
      Alcotest.test_case "fault plan validation" `Quick test_fault_plan_validation;
      Alcotest.test_case "fleet_size matches run" `Quick test_fleet_size_matches_run;
    ]

(* --- Replay determinism at fleet scale (ISSUE 10, satellite 4) ---

   A 10^4-vehicle window under the full chaos matrix at once: lossy and
   duplicating channels with delay spikes, permanent deaths, radio-outage
   crash/restarts, and severed links.  The claims under test are the
   bit-identical replay of [Online.run] and the worker-count invariance
   of [Online.run_fleet] shard digests. *)

let scale_workload () =
  let rng = Rng.create 90210 in
  let box = Box.make ~lo:(point2 0 0) ~hi:(point2 99 99) in
  let w = Workload.uniform ~rng ~box ~jobs:1200 in
  (* Pin the corners so the window is exactly 100x100 = 10^4 vehicles. *)
  {
    w with
    Workload.jobs =
      Array.append [| point2 0 0; point2 99 99 |] w.Workload.jobs;
  }

let scale_config ?(seed = 5) () =
  Online.config ~seed ~capacity:12.0 ~side:4
    ~chaos:(Des.faults ~drop_p:0.15 ~dup_p:0.05 ~spike_p:0.02 ~spike_delay:25.0 ())
    ~faults:
      {
        Online.no_faults with
        Online.deaths = [ (40, 17); (400, 7042) ];
        outages = [ (20, 101, 75.0); (300, 5003, 120.0); (700, 9898, 60.0) ];
      }
    ~partitions:[ (0, 1); (5000, 5001) ]
    ()

let test_scale_replay_determinism () =
  let w = scale_workload () in
  let cfg = scale_config () in
  Alcotest.(check int) "fleet is 10^4 vehicles" 10_000 (Online.fleet_size cfg w);
  let a = Online.run cfg w in
  let b = Online.run cfg w in
  Alcotest.(check int) "replay digest identical" a.Online.trace_digest
    b.Online.trace_digest;
  Alcotest.(check int) "replay served identical" a.Online.served b.Online.served;
  Alcotest.(check int) "replay messages identical" a.Online.messages
    b.Online.messages;
  Alcotest.(check bool) "chaos actually dropped messages" true (a.Online.drops > 0);
  Alcotest.(check bool) "chaos actually duplicated messages" true (a.Online.dups > 0);
  let c = Online.run (scale_config ~seed:6 ()) w in
  Alcotest.(check bool) "different seed differs" true
    (a.Online.trace_digest <> c.Online.trace_digest)

let test_fleet_digests_worker_invariant () =
  let w = scale_workload () in
  let cfg = scale_config () in
  let base = Online.run_fleet ~workers:1 ~shards:4 cfg w in
  Alcotest.(check int) "four bands" 4 base.Online.shard_count;
  List.iter
    (fun workers ->
      let f = Online.run_fleet ~workers ~shards:4 cfg w in
      Alcotest.(check (array int))
        (Printf.sprintf "workers=%d shard digests match workers=1" workers)
        base.Online.shard_digests f.Online.shard_digests;
      Alcotest.(check int)
        (Printf.sprintf "workers=%d aggregate digest matches" workers)
        base.Online.aggregate.Online.trace_digest
        f.Online.aggregate.Online.trace_digest;
      Alcotest.(check int)
        (Printf.sprintf "workers=%d served matches" workers)
        base.Online.aggregate.Online.served f.Online.aggregate.Online.served)
    [ 2; 4 ];
  Alcotest.(check bool) "per-vehicle footprint within budget" true
    (base.Online.bytes_per_vehicle <= 512.0)

let test_fleet_single_shard_matches_run () =
  let w = scale_workload () in
  let cfg = scale_config () in
  let o = Online.run cfg w in
  let f = Online.run_fleet ~workers:1 ~shards:1 cfg w in
  let a = f.Online.aggregate in
  Alcotest.(check int) "shards=1 digest equals run" o.Online.trace_digest
    a.Online.trace_digest;
  Alcotest.(check int) "shards=1 served equals run" o.Online.served
    a.Online.served;
  Alcotest.(check int) "shards=1 messages equal run" o.Online.messages
    a.Online.messages;
  Alcotest.(check int) "shards=1 replacements equal run" o.Online.replacements
    a.Online.replacements;
  Alcotest.(check int) "shards=1 retries equal run" o.Online.retries_sent
    a.Online.retries_sent

let test_outage_restart_recovers () =
  (* Radio silence on a vehicle of a hot-point fleet: the protocol state
     survives the crash, the restart hook re-arms the lost timers, and
     every job is still served. *)
  let w = Workload.point ~total:120 () in
  let cfg = Online.recommended w in
  let cfg =
    {
      cfg with
      Online.faults =
        { Online.no_faults with Online.outages = [ (10, 0, 50.0); (60, 3, 80.0) ] };
    }
  in
  let o = Online.run cfg w in
  check_success "outage restart" w o;
  let o' = Online.run cfg w in
  Alcotest.(check int) "outage replay deterministic" o.Online.trace_digest
    o'.Online.trace_digest

let test_outage_validation () =
  (match
     Online.config ~capacity:10.0 ~side:4
       ~faults:{ Online.no_faults with Online.outages = [ (-1, 0, 5.0) ] }
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative outage index: expected Invalid_argument");
  (match
     Online.config ~capacity:10.0 ~side:4
       ~faults:{ Online.no_faults with Online.outages = [ (3, 0, 0.0) ] }
       ()
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero outage delay: expected Invalid_argument");
  let w = Workload.point ~total:10 () in
  let cfg =
    Online.config ~capacity:10.0 ~side:4
      ~faults:{ Online.no_faults with Online.outages = [ (1, 999, 5.0) ] }
      ()
  in
  (match Online.run cfg w with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-fleet outage id: expected Invalid_argument");
  (match Online.run_fleet ~shards:0 (Online.config ~capacity:10.0 ~side:4 ()) w with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-positive shards: expected Invalid_argument")

let suite =
  suite
  @ [
      Alcotest.test_case "scale: replay determinism under combined chaos" `Quick
        test_scale_replay_determinism;
      Alcotest.test_case "scale: fleet digests invariant across workers" `Quick
        test_fleet_digests_worker_invariant;
      Alcotest.test_case "scale: single shard fleet equals run" `Quick
        test_fleet_single_shard_matches_run;
      Alcotest.test_case "outage restart recovers" `Quick
        test_outage_restart_recovers;
      Alcotest.test_case "outage validation" `Quick test_outage_validation;
    ]
