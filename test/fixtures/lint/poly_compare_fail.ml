(* Four poly-compare violations: bare compare, Stdlib.compare,
   Hashtbl.hash, and structural equality on a Point-typed field. *)

let sort_points ps = List.sort compare ps

let cmp = Stdlib.compare

let h p = Hashtbl.hash p

let same v other = v.pos = other.pos
