(* Five poly-compare violations: bare compare, Stdlib.compare,
   Hashtbl.hash, structural equality on a Point-typed field, and a
   record field tested against [] with structural equality. *)

let sort_points ps = List.sort compare ps

let cmp = Stdlib.compare

let h p = Hashtbl.hash p

let same v other = v.pos = other.pos

let clean o = o.failures = []
