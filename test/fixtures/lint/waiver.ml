(* Both waiver placements: same line and the line above.  The two
   List.sort calls are deliberate poly-compare violations that the
   waivers suppress, so this file lints clean. *)

let sorted xs = List.sort compare xs (* lint: allow poly-compare *)

(* lint: allow poly-compare *)
let also_sorted xs = List.sort compare xs
