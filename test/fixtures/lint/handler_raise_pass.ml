(* Handlers returning results/variants, and a raise that is fine
   because it is not inside a handler-convention binding. *)

let handle_query w msg =
  match msg with Some m -> Ok (w m) | None -> Error `No_message

let dispatch w ev = if ev < 0 then Error `Negative else Ok (w ev)

let helper_outside_handlers () = failwith "allowed here"
