(* Two unsafe-array violations: this file is not under lib/flow. *)

let get a i = Array.unsafe_get a i

let set b i c = Bytes.unsafe_set b i c
