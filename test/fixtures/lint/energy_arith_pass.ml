(* Checked arithmetic via Energy, and raw arithmetic on quantities that
   are not energy-like. *)

let spend v cost = Energy.sub v.energy cost

let reserve t = Energy.add t.capacity 1

let distance a b = a + b
