(* Three energy-arith violations: raw int +/-/* touching energy- or
   capacity-named state. *)

let spend v cost = v.energy - cost

let reserve t = t.capacity + 1

let scaled cap_units k = cap_units * k
