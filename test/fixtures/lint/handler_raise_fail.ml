(* Three handler-raise violations: failwith / raise / assert false
   inside bindings following the handler naming convention. *)

let handle_query w msg =
  match msg with Some m -> w m | None -> failwith "no message"

let dispatch w ev = if ev < 0 then raise Exit else w ev

let on_timeout _w = assert false
