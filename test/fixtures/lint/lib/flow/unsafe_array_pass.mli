val get : 'a array -> int -> 'a
