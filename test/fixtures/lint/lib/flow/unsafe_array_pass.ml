(* lib/flow is the sanctioned home for bounds-check-free hot loops. *)

let get a i = Array.unsafe_get a i
