(* Lives under a lib/ component but ships no .mli: one missing-mli
   violation. *)

let answer = 42
