val run : (int -> 'a) -> 'a
