(* The real lib/prelude/pool.ml is the sanctioned home of Domain/Atomic;
   this fixture mirrors its shape and must produce no diagnostics. *)

let cursor = Atomic.make 0

let run f =
  let d = Domain.spawn (fun () -> f (Atomic.fetch_and_add cursor 1)) in
  Domain.join d
