(* Two print-in-lib violations: console printing from library code. *)

let announce msg = print_endline msg

let report n = Printf.printf "n = %d\n" n
