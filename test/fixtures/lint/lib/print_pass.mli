val announce : out_channel -> string -> unit

val describe : int -> string

val pp : Format.formatter -> int -> unit
