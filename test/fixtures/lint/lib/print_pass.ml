(* Writing to an explicit channel, building strings, and formatting to a
   caller-supplied formatter are all fine in library code. *)

let announce oc msg = output_string oc msg

let describe n = Printf.sprintf "n = %d" n

let pp ppf n = Format.fprintf ppf "n = %d" n
