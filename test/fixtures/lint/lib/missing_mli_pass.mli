val answer : int
