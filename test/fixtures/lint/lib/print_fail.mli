val announce : string -> unit

val report : int -> unit
