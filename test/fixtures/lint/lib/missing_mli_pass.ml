let answer = 42
