(* lib/metrics may lock and use atomics for its registry. *)

let lock = Mutex.create ()
let hits = Atomic.make 0

let bump () =
  Mutex.lock lock;
  Atomic.incr hits;
  Mutex.unlock lock
