val bump : unit -> unit
