(* The allowed forms: dedicated comparators, Point.equal on point
   fields, and label/record punning of a *local* [compare] (which never
   denotes Stdlib.compare). *)

type 'a t = { compare : 'a -> 'a -> int; data : 'a list }

let make ~compare data = { compare; data }

let of_list ~compare xs = make ~compare xs

let same v other = Point.equal v.pos other.pos

let cmp = Int.compare
