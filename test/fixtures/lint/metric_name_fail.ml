(* Three metric-name violations: no subsystem segment, uppercase, and a
   non-literal name. *)

let m_bad1 = Metrics.counter "nodots"

let m_bad2 = Metrics.gauge "Bad.Case"

let m_bad3 = Metrics.timer ("dyn" ^ ".name")

let m_bad4 = Metrics.histogram "Histo.WrongCase"
