(* Stale waivers: the first marker waives a rule that never fires in
   this file, the second misspells the rule id — so the real violation
   on its line is still reported, and both markers surface as advisory
   unused-waiver diagnostics. *)

(* lint: allow catch-all *)
let quiet x = x + 1

let sorted xs = List.sort compare xs (* lint: allow poly-compar *)
