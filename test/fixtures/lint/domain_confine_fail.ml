(* Raw concurrency primitives outside the sanctioned modules: all three
   uses below must be flagged. *)

let cell = Atomic.make 0
let lock = Mutex.create ()
let compute () = ignore (Domain.spawn (fun () -> cell))
let use () = ignore lock
