(* Specific exception matches are fine, including constructor payload
   wildcards. *)

let parse s = try int_of_string s with Failure _ -> 0

let guarded f = try f () with Not_found | Invalid_argument _ -> -1
