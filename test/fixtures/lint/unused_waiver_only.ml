(* Advisory-only fixture: the lone stale marker is reported as
   unused-waiver but must not fail the run (the CLI exits 0). *)

(* lint: allow catch-all *)
let id x = x
