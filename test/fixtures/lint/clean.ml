(* A file cmvrp_lint accepts untouched: dedicated comparators, checked
   energy arithmetic, handler that returns a variant, specific exception
   match, well-formed metric name. *)

let total xs = List.fold_left Energy.add 0 xs

let ordered ps = List.sort Point.compare ps

let same v other = Point.equal v.pos other.pos

let handle_query w msg =
  match msg with Some m -> Ok (w m) | None -> Error `No_message

let parse s = try Some (int_of_string s) with Failure _ -> None

let m_ok = Metrics.counter "fixture.clean_metric"
