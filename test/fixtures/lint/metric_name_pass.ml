let m_ok = Metrics.counter "fixture.good_metric"

let m_ok2 = Metrics.timer "fixture.sub.timer_ns"

let m_ok3 = Metrics.histogram "fixture.latency_ns"
