(* One metric-name violation: the second registration duplicates the
   first one's name. *)

let m_a = Metrics.counter "fixture.dup_metric"

let m_b = Metrics.counter "fixture.dup_metric"
