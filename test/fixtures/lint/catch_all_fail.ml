(* One catch-all violation. *)

let parse s = try int_of_string s with _ -> 0
