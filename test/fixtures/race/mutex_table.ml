(* A global table mutated only inside closures passed to a
   lock-wrapping helper: every parallel access is guarded, so the root
   classifies mutex-guarded and there is no finding. *)

let lock = Mutex.create ()
let table : (int, int) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock lock;
  let r = f () in
  Mutex.unlock lock;
  r

let bump i = locked (fun () -> Hashtbl.replace table i i)

let run arr = Pool.map (fun i -> bump i) arr
