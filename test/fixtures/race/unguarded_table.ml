(* A global Hashtbl written directly from the Pool.map closure with no
   lock anywhere: shared-unguarded, blocking finding. *)

let cache : (int, int) Hashtbl.t = Hashtbl.create 16

let fill arr = Pool.map (fun i -> Hashtbl.replace cache i (i * i)) arr
