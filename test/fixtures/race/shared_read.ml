(* A mutable array captured by the closure but only ever read, with no
   unguarded write anywhere: shared-read, no finding. *)

let weights = Array.make 8 1

let total arr = Pool.map (fun i -> weights.(i mod 8) + i) arr
