(* Per-task state mutated through a nested local function: the table
   is defined inside the parallel closure, so even though a helper
   bound with let writes it, it is per-invocation and confined. *)

let histogram arr =
  Pool.map
    (fun i ->
      let t = Hashtbl.create 4 in
      let add k =
        Hashtbl.replace t k
          (1 + Option.value ~default:0 (Hashtbl.find_opt t k))
      in
      add (i mod 3);
      add (i mod 5);
      Hashtbl.length t)
    arr
