(* The parallel side only reads the flag — but the control side writes
   it without a guard, so the read still races: finding of kind read. *)

let flag = ref false

let enable () = flag := true

let scan arr = Pool.map (fun i -> if !flag then i else 0) arr
