(* An Atomic.t shared across domains is safe by construction: the
   analyzer classifies it atomic and stays silent. *)

let hits = Atomic.make 0

let count arr =
  Pool.map
    (fun i ->
      Atomic.incr hits;
      i)
    arr
