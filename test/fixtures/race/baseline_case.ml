(* A deliberate leak used by the suite to exercise the committed
   suppression baseline: the finding exists, but a `file:root` entry in
   the baseline swallows it (and a stale entry is reported). *)

let counter = ref 0

let run arr = Pool.map (fun i -> counter := !counter + i) arr
