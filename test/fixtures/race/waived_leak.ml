(* Identical to leaked_ref, but the definition carries a waiver
   comment: the finding is counted as waived and the run stays clean. *)

(* race: allow fixture demonstrating the waiver syntax *)
let total = ref 0

let run arr = Pool.map (fun i -> total := !total + i) arr
