(* Domain.spawn is a parallel entry like the Pool combinators: a
   Buffer mutated from the spawned closure is shared-unguarded. *)

let log_buf = Buffer.create 64

let emit msg =
  let d = Domain.spawn (fun () -> Buffer.add_string log_buf msg) in
  Domain.join d
