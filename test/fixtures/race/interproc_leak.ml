(* The closure itself looks innocent: it hands the table to a helper,
   and the helper does the writing.  The merged-parameter effect
   summary must carry the write back to the call site and report the
   table shared-unguarded. *)

let fill t i = Hashtbl.replace t i (2 * i)

let build arr =
  let t = Hashtbl.create 8 in
  let _ = Pool.map (fun i -> fill t i) arr in
  t
