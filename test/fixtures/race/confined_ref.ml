(* A ref created inside the parallel closure is per-task state: the
   analyzer must classify it confined and stay silent. *)

let sum_squares arr =
  Pool.map
    (fun i ->
      let acc = ref 0 in
      for j = 1 to i do
        acc := !acc + (j * j)
      done;
      !acc)
    arr
