(* The canonical race: a ref defined on the control domain, written by
   the closure handed to Pool.map.  Must be reported shared-unguarded
   with a capture path through Pool.map. *)

let total = ref 0

let sum arr = Pool.map (fun i -> total := !total + i) arr
