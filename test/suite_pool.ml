(* The Domain pool facade: results in input order at any width,
   sequential degradation at one worker, and the sequential
   left-to-right exception choice even under parallel execution. *)

let with_workers n f =
  let saved = Pool.workers () in
  Pool.set_workers n;
  Fun.protect ~finally:(fun () -> Pool.set_workers saved) f

exception Boom of int

let test_map_order () =
  List.iter
    (fun w ->
      with_workers w (fun () ->
          let xs = Array.init 37 (fun i -> i) in
          let ys = Pool.map (fun x -> (x * x) + 1) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "order at %d workers" w)
            (Array.init 37 (fun i -> (i * i) + 1))
            ys))
    [ 1; 2; 4 ]

let test_map_empty () =
  with_workers 2 (fun () ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map (fun x -> x) [||]))

let test_init () =
  with_workers 3 (fun () ->
      Alcotest.(check (array int))
        "init" [| 0; 1; 4; 9 |]
        (Pool.init 4 (fun i -> i * i));
      Alcotest.(check (array int)) "empty" [||] (Pool.init 0 (fun i -> i));
      match Pool.init (-1) (fun i -> i) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "negative size must raise")

let test_both () =
  with_workers 2 (fun () ->
      let a, b = Pool.both (fun () -> 6 * 7) (fun () -> "ok") in
      Alcotest.(check int) "left" 42 a;
      Alcotest.(check string) "right" "ok" b)

let test_lowest_exception_wins () =
  List.iter
    (fun w ->
      with_workers w (fun () ->
          match
            Pool.map
              (fun i -> if i = 2 || i = 5 then raise (Boom i) else i)
              (Array.init 8 (fun i -> i))
          with
          | exception Boom i ->
              Alcotest.(check int)
                (Printf.sprintf "lowest index at %d workers" w)
                2 i
          | _ -> Alcotest.fail "expected Boom"))
    [ 1; 3 ]

let test_set_workers_validation () =
  (match Pool.set_workers 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "zero workers must raise");
  Alcotest.(check bool) "default at least one" true (Pool.default_workers >= 1);
  with_workers 5 (fun () ->
      Alcotest.(check int) "width is what was set" 5 (Pool.workers ()))

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "map on empty input" `Quick test_map_empty;
    Alcotest.test_case "init" `Quick test_init;
    Alcotest.test_case "both" `Quick test_both;
    Alcotest.test_case "lowest-index exception wins" `Quick
      test_lowest_exception_wins;
    Alcotest.test_case "set_workers validation" `Quick
      test_set_workers_validation;
  ]
