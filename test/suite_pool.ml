(* The Domain pool facade: results in input order at any width,
   sequential degradation at one worker, and the sequential
   left-to-right exception choice even under parallel execution. *)

let with_workers n f =
  let saved = Pool.workers () in
  Pool.set_workers n;
  Fun.protect ~finally:(fun () -> Pool.set_workers saved) f

exception Boom of int

let test_map_order () =
  List.iter
    (fun w ->
      with_workers w (fun () ->
          let xs = Array.init 37 (fun i -> i) in
          let ys = Pool.map (fun x -> (x * x) + 1) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "order at %d workers" w)
            (Array.init 37 (fun i -> (i * i) + 1))
            ys))
    [ 1; 2; 4 ]

let test_map_empty () =
  with_workers 2 (fun () ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map (fun x -> x) [||]))

let test_init () =
  with_workers 3 (fun () ->
      Alcotest.(check (array int))
        "init" [| 0; 1; 4; 9 |]
        (Pool.init 4 (fun i -> i * i));
      Alcotest.(check (array int)) "empty" [||] (Pool.init 0 (fun i -> i));
      match Pool.init (-1) (fun i -> i) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "negative size must raise")

let test_both () =
  with_workers 2 (fun () ->
      let a, b = Pool.both (fun () -> 6 * 7) (fun () -> "ok") in
      Alcotest.(check int) "left" 42 a;
      Alcotest.(check string) "right" "ok" b)

let test_lowest_exception_wins () =
  List.iter
    (fun w ->
      with_workers w (fun () ->
          match
            Pool.map
              (fun i -> if i = 2 || i = 5 then raise (Boom i) else i)
              (Array.init 8 (fun i -> i))
          with
          | exception Boom i ->
              Alcotest.(check int)
                (Printf.sprintf "lowest index at %d workers" w)
                2 i
          | _ -> Alcotest.fail "expected Boom"))
    [ 1; 3 ]

let test_set_workers_validation () =
  (match Pool.set_workers 0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "zero workers must raise");
  Alcotest.(check bool) "default at least one" true (Pool.default_workers >= 1);
  with_workers 5 (fun () ->
      Alcotest.(check int) "width is what was set" 5 (Pool.workers ()))

let test_daemon_concurrent_clients () =
  (* The serving daemon and N pipelined clients, in one process on two
     sides of Pool.both: the daemon thunk blocks in its select loop while
     the client thunk replays a seeded mix over the Unix socket with
     --check semantics (every answer re-verified against a fresh oracle
     call, per-client FIFO order asserted by the replayer).  Pool.both
     joining proves clean shutdown leaks no domain. *)
  with_workers 4 (fun () ->
      let path = Filename.temp_file "cmvrp_pool" ".sock" in
      Sys.remove path;
      let reqs = Loadgen.queries ~seed:9 ~mix:Loadgen.Repeat_heavy ~n:48 in
      let (), result =
        Pool.both
          (fun () ->
            Daemon.run (Daemon.config ~max_batch:8 (Daemon.Unix_socket path)))
          (fun () ->
            Fun.protect
              ~finally:(fun () ->
                ignore (Loadgen.send_shutdown ~socket:path ()))
              (fun () ->
                Loadgen.replay_socket ~check:true ~socket:path ~clients:3
                  ~window:4 reqs))
      in
      match result with
      | Error e -> Alcotest.fail e
      | Ok s ->
          Alcotest.(check int) "all queries answered" 48 s.Loadgen.completed;
          Alcotest.(check int) "no error responses" 0 s.Loadgen.error_responses;
          Alcotest.(check bool) "repeat-heavy mix hits the cache" true
            (s.Loadgen.hit_rate > 0.0);
          Alcotest.(check bool) "daemon removed its socket" true
            (not (Sys.file_exists path)))

let test_daemon_per_client_streams_deterministic () =
  (* Two identical replays against two fresh daemons: the per-request
     response payloads must match run to run (cached flags and answers
     included), because batching order is arrival order and the cache is
     deterministic. *)
  with_workers 3 (fun () ->
      let one tag =
        let path = Filename.temp_file ("cmvrp_det" ^ tag) ".sock" in
        Sys.remove path;
        let reqs = Loadgen.queries ~seed:4 ~mix:Loadgen.Churn ~n:30 in
        let (), result =
          Pool.both
            (fun () ->
              Daemon.run (Daemon.config ~max_batch:4 (Daemon.Unix_socket path)))
            (fun () ->
              Fun.protect
                ~finally:(fun () ->
                  ignore (Loadgen.send_shutdown ~socket:path ()))
                (fun () ->
                  (* One client, window 1: the response stream is exactly
                     the request stream's answers in order. *)
                  Loadgen.replay_socket ~check:true ~socket:path ~clients:1
                    ~window:1 reqs))
        in
        match result with
        | Error e -> Alcotest.fail e
        | Ok s -> (s.Loadgen.completed, s.Loadgen.cached_responses)
      in
      let a = one "a" and b = one "b" in
      Alcotest.(check (pair int int)) "identical replay outcome" a b)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "map on empty input" `Quick test_map_empty;
    Alcotest.test_case "init" `Quick test_init;
    Alcotest.test_case "both" `Quick test_both;
    Alcotest.test_case "lowest-index exception wins" `Quick
      test_lowest_exception_wins;
    Alcotest.test_case "set_workers validation" `Quick
      test_set_workers_validation;
    Alcotest.test_case "daemon vs concurrent clients" `Quick
      test_daemon_concurrent_clients;
    Alcotest.test_case "daemon response streams deterministic" `Quick
      test_daemon_per_client_streams_deterministic;
  ]
