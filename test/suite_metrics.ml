(* The observability registry: counter/gauge/timer semantics, the
   disabled-mode no-op guarantee, snapshot/reset behavior, and the JSON
   codec (golden test + roundtrips).

   The registry is global, so every test namespaces its cells under
   "test." and calls Metrics.reset (the production cells registered by
   the instrumented libraries are left alone — reset only zeroes). *)

let test_counter_semantics () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.count c);
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 40;
  Alcotest.(check int) "incr + add" 42 (Metrics.count c);
  let c' = Metrics.counter "test.counter" in
  Metrics.incr c';
  Alcotest.(check int) "get-or-create aliases the same cell" 43 (Metrics.count c)

let test_kind_clash_rejected () =
  let _ = Metrics.counter "test.kind-clash" in
  Alcotest.(check bool) "re-registering as a gauge raises" true
    (try
       let _ = Metrics.gauge "test.kind-clash" in
       false
     with Invalid_argument _ -> true)

let test_gauge_peak () =
  Metrics.reset ();
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 3.0;
  Metrics.set_gauge g 10.0;
  Metrics.set_gauge g 4.0;
  Alcotest.(check (float 0.0)) "current value" 4.0 (Metrics.gauge_value g);
  Alcotest.(check (float 0.0)) "high-water mark" 10.0 (Metrics.gauge_peak g)

let test_timer_accumulates () =
  Metrics.reset ();
  let t = Metrics.timer "test.timer" in
  let result = Metrics.time t (fun () -> List.init 1000 Fun.id |> List.length) in
  Alcotest.(check int) "thunk result passes through" 1000 result;
  ignore (Metrics.time t (fun () -> ()));
  Alcotest.(check int) "two calls" 2 (Metrics.timer_calls t);
  Alcotest.(check bool) "non-negative duration" true (Metrics.timer_ns t >= 0.0)

let test_timer_records_on_exception () =
  Metrics.reset ();
  let t = Metrics.timer "test.timer-exn" in
  (try Metrics.time t (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "exceptional call still counted" 1 (Metrics.timer_calls t)

let test_disabled_is_noop () =
  Metrics.reset ();
  let c = Metrics.counter "test.disabled-counter" in
  let g = Metrics.gauge "test.disabled-gauge" in
  let t = Metrics.timer "test.disabled-timer" in
  Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () ->
      Metrics.incr c;
      Metrics.add c 10;
      Metrics.set_gauge g 5.0;
      let r = Metrics.time t (fun () -> 7) in
      Alcotest.(check int) "time still runs the thunk" 7 r);
  Alcotest.(check int) "counter untouched" 0 (Metrics.count c);
  Alcotest.(check (float 0.0)) "gauge untouched" 0.0 (Metrics.gauge_peak g);
  Alcotest.(check int) "timer untouched" 0 (Metrics.timer_calls t)

let test_instrumented_maxflow_counts () =
  (* End-to-end: running each flow core bumps its process-wide counters. *)
  Metrics.reset ();
  let run core =
    let net = Maxflow.create ~core 4 in
    ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:2);
    ignore (Maxflow.add_edge net ~src:1 ~dst:3 ~cap:2);
    ignore (Maxflow.add_edge net ~src:0 ~dst:2 ~cap:1);
    ignore (Maxflow.add_edge net ~src:2 ~dst:3 ~cap:1);
    Maxflow.max_flow net ~source:0 ~sink:3
  in
  Alcotest.(check int) "dinic flow value" 3 (run Maxflow.Dinic);
  (match Metrics.sample "maxflow.augmentations" with
  | Some (Metrics.Count n) ->
      Alcotest.(check bool) "augmentations recorded" true (n >= 2)
  | _ -> Alcotest.fail "maxflow.augmentations counter missing");
  Alcotest.(check int) "push-relabel flow value" 3 (run Maxflow.Push_relabel);
  (match Metrics.sample "maxflow.global_relabels" with
  | Some (Metrics.Count n) ->
      Alcotest.(check bool) "global relabels recorded" true (n >= 1)
  | _ -> Alcotest.fail "maxflow.global_relabels counter missing");
  match Metrics.sample "maxflow.runs" with
  | Some (Metrics.Count n) -> Alcotest.(check int) "two runs" 2 n
  | _ -> Alcotest.fail "maxflow.runs counter missing"

let test_histogram_quantiles () =
  Metrics.reset ();
  let h = Metrics.histogram "test.histogram" in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Metrics.histogram_quantile h 0.5));
  (* Buckets are 1µs·2^i: 1_500 ns lands in the 2_000 ns bucket and
     900_000 ns in the 1_024_000 ns bucket. *)
  for _ = 1 to 90 do
    Metrics.observe h 1_500.0
  done;
  for _ = 1 to 10 do
    Metrics.observe h 900_000.0
  done;
  Alcotest.(check int) "count" 100 (Metrics.histogram_count h);
  Alcotest.(check (float 1.0)) "sum" 9_135_000.0 (Metrics.histogram_sum h);
  Alcotest.(check (float 0.0)) "p50" 2_000.0 (Metrics.histogram_quantile h 0.50);
  Alcotest.(check (float 0.0)) "p90 (rank 90 still low bucket)" 2_000.0
    (Metrics.histogram_quantile h 0.90);
  Alcotest.(check (float 0.0)) "p95" 1_024_000.0
    (Metrics.histogram_quantile h 0.95);
  Alcotest.(check (float 0.0)) "p99" 1_024_000.0
    (Metrics.histogram_quantile h 0.99);
  (match Metrics.histogram_quantile h 1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantile outside [0,1] must raise");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.histogram_count h)

let test_histogram_extremes () =
  Metrics.reset ();
  let h = Metrics.histogram "test.histogram-extremes" in
  Metrics.observe h (-5.0);
  Alcotest.(check (float 0.0)) "negative clamps to the lowest bucket" 1_000.0
    (Metrics.histogram_quantile h 0.5);
  Metrics.observe h 1e18;
  Alcotest.(check bool) "huge value lands in the overflow bucket" true
    (Metrics.histogram_quantile h 1.0 >= 1e15);
  Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Metrics.set_enabled true)
    (fun () -> Metrics.observe h 1.0);
  Alcotest.(check int) "observe is a no-op while disabled" 2
    (Metrics.histogram_count h)

let test_snapshot_sorted_and_reset () =
  Metrics.reset ();
  let c = Metrics.counter "test.zz-last" in
  Metrics.incr c;
  let names = List.map fst (Metrics.snapshot ()) in
  Alcotest.(check (list string)) "sorted by name" (List.sort compare names) names;
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes but keeps the cell" 0 (Metrics.count c);
  Alcotest.(check bool) "cell still registered" true
    (List.mem "test.zz-last" (List.map fst (Metrics.snapshot ())))

let test_json_snapshot_golden () =
  Metrics.reset ();
  let c = Metrics.counter "test.golden-counter" in
  let g = Metrics.gauge "test.golden-gauge" in
  Metrics.add c 7;
  Metrics.set_gauge g 2.5;
  Metrics.set_gauge g 1.5;
  let keep = [ "test.golden-counter"; "test.golden-gauge" ] in
  let snap =
    List.filter (fun (n, _) -> List.mem n keep) (Metrics.snapshot ())
  in
  let expected =
    "{\"test.golden-counter\":{\"type\":\"counter\",\"value\":7},\
     \"test.golden-gauge\":{\"type\":\"gauge\",\"value\":1.5,\"peak\":2.5}}"
  in
  Alcotest.(check string) "golden JSON" expected
    (Json.to_string ~compact:true (Metrics.json_of_snapshot snap))

let test_json_roundtrip () =
  let samples =
    [
      Metrics.Count 42;
      Metrics.Level { value = 1.25; peak = 8.0 };
      Metrics.Span { ns = 123456.0; calls = 3 };
      Metrics.Dist
        { count = 7; sum = 9500.0; buckets = [ (1000.0, 4); (2000.0, 3) ] };
    ]
  in
  List.iter
    (fun s ->
      match Metrics.sample_of_json (Metrics.json_of_sample s) with
      | Ok s' -> Alcotest.(check bool) "sample roundtrips" true (s = s')
      | Error e -> Alcotest.fail e)
    samples

let test_json_parser () =
  let ok text expected =
    match Json.of_string text with
    | Ok v -> Alcotest.(check bool) (Printf.sprintf "parse %s" text) true (v = expected)
    | Error e -> Alcotest.fail e
  in
  ok "null" Json.Null;
  ok " [1, 2.5, \"a\\nb\", true, {}] "
    (Json.List
       [ Json.Int 1; Json.Float 2.5; Json.String "a\nb"; Json.Bool true; Json.Obj [] ]);
  ok "{\"k\": [-3e2]}" (Json.Obj [ ("k", Json.List [ Json.Float (-300.0) ]) ]);
  ok "\"\\u0041\"" (Json.String "A");
  let fails text =
    match Json.of_string text with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %s" text)
    | Error _ -> ()
  in
  fails "{";
  fails "[1,]";
  fails "nulll";
  fails "{\"a\" 1}";
  fails "1 2"

let test_json_print_parse_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "quote \" backslash \\ newline \n tab \t");
        ("n", Json.List [ Json.Int 0; Json.Int (-17); Json.Float 0.125 ]);
        ("b", Json.Bool false);
        ("z", Json.Null);
        ("nested", Json.Obj [ ("deep", Json.List [ Json.Obj [] ]) ]);
      ]
  in
  List.iter
    (fun compact ->
      match Json.of_string (Json.to_string ~compact v) with
      | Ok v' -> Alcotest.(check bool) "print/parse identity" true (v = v')
      | Error e -> Alcotest.fail e)
    [ true; false ]

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "kind clash rejected" `Quick test_kind_clash_rejected;
    Alcotest.test_case "gauge peak" `Quick test_gauge_peak;
    Alcotest.test_case "timer accumulates" `Quick test_timer_accumulates;
    Alcotest.test_case "timer on exception" `Quick test_timer_records_on_exception;
    Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "instrumented maxflow" `Quick test_instrumented_maxflow_counts;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram extremes" `Quick test_histogram_extremes;
    Alcotest.test_case "snapshot sorted, reset keeps cells" `Quick
      test_snapshot_sorted_and_reset;
    Alcotest.test_case "json snapshot golden" `Quick test_json_snapshot_golden;
    Alcotest.test_case "json sample roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parser" `Quick test_json_parser;
    Alcotest.test_case "json print/parse roundtrip" `Quick
      test_json_print_parse_roundtrip;
  ]
