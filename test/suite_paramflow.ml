(* The parametric max-flow driver behind Transport.min_uniform_supply:
   golden breakpoint families on hand-checked instances, degenerate
   solve cases on raw arenas, monotone-family invariants, the
   lookup-vs-exhaustive-dual golden, and integer-envelope completeness
   of [refine_all] against a per-level brute force. *)

let random_instance rng =
  let s = 1 + Rng.int rng 5 and d = 1 + Rng.int rng 5 in
  let t = Transport.create ~n_suppliers:s ~n_demands:d in
  for j = 0 to d - 1 do
    Transport.set_demand t j (Rng.int rng 7)
  done;
  for i = 0 to s - 1 do
    for j = 0 to d - 1 do
      if Rng.bool rng then Transport.add_link t ~supplier:i ~demand:j
    done
  done;
  t

let scaled_copy t ~scale =
  let c =
    Transport.create ~n_suppliers:(Transport.n_suppliers t)
      ~n_demands:(Transport.n_demands t)
  in
  for j = 0 to Transport.n_demands t - 1 do
    Transport.set_demand c j (Transport.demand t j * scale)
  done;
  Transport.iter_links t (fun ~supplier ~demand ->
      Transport.add_link c ~supplier ~demand);
  c

(* Two suppliers; demand 0 (6 units) reachable only from supplier 0,
   demand 1 (2 units) from both.  At scale 1 the Newton sweep probes
   level 4 = ceil(8/2) first (value 6, one source edge crossing the cut)
   and lands on the answer 6 = max_J D(J)/|N(J)| in one jump. *)
let golden_instance () =
  let t = Transport.create ~n_suppliers:2 ~n_demands:2 in
  Transport.set_demand t 0 6;
  Transport.set_demand t 1 2;
  Transport.add_link t ~supplier:0 ~demand:0;
  Transport.add_link t ~supplier:0 ~demand:1;
  Transport.add_link t ~supplier:1 ~demand:1;
  t

let bps_testable = Alcotest.(array (triple int int int))

let test_golden_family () =
  let t = golden_instance () in
  (match Transport.min_uniform_supply t ~scale:1 with
  | Some v -> Alcotest.(check (float 1e-9)) "answer at scale 1" 6.0 v
  | None -> Alcotest.fail "feasible instance");
  Alcotest.(check bps_testable) "family at scale 1"
    [| (4, 6, 1); (6, 8, 1) |]
    (Transport.breakpoints t ~scale:1);
  (* A different scale is a different cached family; levels and values
     scale with it, the answer does not. *)
  Alcotest.(check bps_testable) "family at scale 2"
    [| (8, 12, 1); (12, 16, 1) |]
    (Transport.breakpoints t ~scale:2);
  match Transport.min_uniform_supply t ~scale:2 with
  | Some v -> Alcotest.(check (float 1e-9)) "answer at scale 2" 6.0 v
  | None -> Alcotest.fail "feasible instance"

let test_degenerate_solves () =
  (* Target 0 is feasible at level 0 without touching the arena. *)
  let net = Maxflow.create 2 in
  let pf = Paramflow.create ~net ~source:0 ~sink:1 ~src_edges:[||] ~target:0 in
  Alcotest.(check (option int)) "zero target" (Some 0) (Paramflow.solve pf);
  (* No parametric edges and a positive target: no finite level. *)
  let net = Maxflow.create 2 in
  let pf = Paramflow.create ~net ~source:0 ~sink:1 ~src_edges:[||] ~target:5 in
  Alcotest.(check (option int)) "no source edges" None (Paramflow.solve pf);
  (* A slope-0 cut below the target: the parametric edge leads to a dead
     end, so F is constantly 0 and the sweep stops at the first probe. *)
  let net = Maxflow.create 3 in
  let e = Maxflow.add_edge net ~src:0 ~dst:2 ~cap:0 in
  let pf =
    Paramflow.create ~net ~source:0 ~sink:1 ~src_edges:[| e |] ~target:3
  in
  Alcotest.(check (option int)) "dead-end slope 0" None (Paramflow.solve pf);
  Alcotest.(check bool) "cached after solve" true (Paramflow.solved pf);
  Alcotest.(check bps_testable) "one slope-0 probe recorded" [| (3, 0, 0) |]
    (Paramflow.breakpoints pf)

let prop_family_monotone =
  (* Breakpoint families are cuts of a concave non-decreasing F: levels
     strictly increase, values are non-decreasing and capped by the
     target, slopes are non-increasing; the last probe is the answer
     when one exists. *)
  QCheck.Test.make ~name:"breakpoint family is monotone" ~count:100
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 20))
    (fun (seed, scale) ->
      let rng = Rng.create seed in
      let t = random_instance rng in
      let bps = Transport.breakpoints t ~scale in
      let target = Transport.total_demand t * scale in
      let ok = ref true in
      Array.iteri
        (fun i (u, v, k) ->
          if v > target || k < 0 then ok := false;
          if i > 0 then begin
            let pu, pv, pk = bps.(i - 1) in
            if u <= pu || v < pv || k > pk then ok := false
          end)
        bps;
      (match Transport.min_uniform_supply t ~scale with
      | Some a when Transport.total_demand t > 0 ->
          let last_u, last_v, _ = bps.(Array.length bps - 1) in
          if last_v <> target then ok := false;
          if a <> float_of_int last_u /. float_of_int scale then ok := false
      | Some _ -> if bps <> [||] then ok := false
      | None -> ());
      !ok)

let test_answer_matches_exhaustive_dual () =
  (* Lemma 2.2.2 golden through the parametric path: the last breakpoint
     level over scale = max_J D(J)/|N(J)| whenever the dual denominator
     divides the scale (60 = lcm(1..6) covers up to 6 suppliers). *)
  let rng = Rng.create 271828 in
  let scale = 60 in
  let checked = ref 0 in
  while !checked < 40 do
    let t = random_instance rng in
    let dual = Transport.dual_value_exhaustive t in
    if dual <> infinity && Transport.total_demand t > 0 then begin
      incr checked;
      let bps = Transport.breakpoints t ~scale in
      let last_u, _, _ = bps.(Array.length bps - 1) in
      Alcotest.(check (float 1e-9)) "last breakpoint = dual" dual
        (float_of_int last_u /. float_of_int scale)
    end
  done

let prop_envelope_complete =
  (* [refine_all] promises that between the first probe and the answer
     no integer level hides an undiscovered piece: at every such level,
     F (recomputed cold) equals the minimum over the recorded tangent
     lines. *)
  QCheck.Test.make ~name:"refined family = integer lower envelope" ~count:60
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 8))
    (fun (seed, scale) ->
      let rng = Rng.create seed in
      let t = random_instance rng in
      let bps = Transport.breakpoints t ~scale in
      let m = Array.length bps in
      if m = 0 then true
      else begin
        let c = scaled_copy t ~scale in
        let first, _, _ = bps.(0) and last, _, _ = bps.(m - 1) in
        let ok = ref true in
        for u = first to last do
          let brute = Transport.max_served c ~supply:(fun _ -> u) in
          let env =
            Array.fold_left
              (fun acc (ui, vi, ki) -> min acc (vi + (ki * (u - ui))))
              max_int bps
          in
          if brute <> env then ok := false
        done;
        !ok
      end)

let suite =
  [
    Alcotest.test_case "golden breakpoint family" `Quick test_golden_family;
    Alcotest.test_case "degenerate solves" `Quick test_degenerate_solves;
    Alcotest.test_case "answer matches exhaustive dual" `Quick
      test_answer_matches_exhaustive_dual;
    QCheck_alcotest.to_alcotest prop_family_monotone;
    QCheck_alcotest.to_alcotest prop_envelope_complete;
  ]
