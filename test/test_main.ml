let () =
  Alcotest.run "cmvrp"
    [
      ("rng", Suite_rng.suite);
      ("stats", Suite_stats.suite);
      ("table", Suite_table.suite);
      ("pool", Suite_pool.suite);
      ("grid", Suite_grid.suite);
      ("ball", Suite_ball.suite);
      ("snake", Suite_snake.suite);
      ("graph", Suite_graph.suite);
      ("flow", Suite_flow.suite);
      ("transport", Suite_transport.suite);
      ("paramflow", Suite_paramflow.suite);
      ("demand", Suite_demand.suite);
      ("io", Suite_io.suite);
      ("des", Suite_des.suite);
      ("shard", Suite_shard.suite);
      ("omega", Suite_omega.suite);
      ("oracle", Suite_oracle.suite);
      ("session", Suite_session.suite);
      ("alg1", Suite_alg1.suite);
      ("planner", Suite_planner.suite);
      ("localsearch", Suite_localsearch.suite);
      ("fig21", Suite_fig21.suite);
      ("online", Suite_online.suite);
      ("breakdown", Suite_breakdown.suite);
      ("transfer", Suite_transfer.suite);
      ("baselines", Suite_baselines.suite);
      ("gcmvrp", Suite_gcmvrp.suite);
      ("metrics", Suite_metrics.suite);
      ("serve", Suite_serve.suite);
      ("lint", Suite_lint.suite);
      ("race", Suite_race.suite);
      ("bench_report", Suite_bench_report.suite);
      ("properties", Suite_properties.suite);
    ]
